// The /sys/arv/policy/<container>/ control plane: runtime policy switching,
// validated knob writes, and cleanup on container destruction.
#include <gtest/gtest.h>

#include "src/container/container.h"
#include "src/core/policy.h"
#include "src/workloads/hogs.h"

namespace arv::vfs {
namespace {

using namespace arv::units;

struct Fixture {
  Fixture() : runtime(host) {}

  container::Container& run(container::ContainerConfig config) {
    return runtime.run(config);
  }

  std::optional<std::string> read(const std::string& path) {
    return host.sysfs().read(proc::kHostInit, path);
  }

  bool write(const std::string& path, std::string_view value) {
    return host.sysfs().write(path, value);
  }

  container::Host host;  // default: 20 CPUs, 128 GiB
  container::ContainerRuntime runtime;
};

TEST(PolicyFiles, AvailableListsTheRegistry) {
  Fixture f;
  const auto available = f.read("/sys/arv/policy/available");
  ASSERT_TRUE(available.has_value());
  for (const auto& name : core::PolicyRegistry::instance().cpu_names()) {
    EXPECT_NE(available->find(name + "\n"), std::string::npos) << name;
  }
}

TEST(PolicyFiles, SelectorsReportThePerContainerPolicy) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "a";
  config.view_params.mem_policy = "ewma";
  f.run(config);
  EXPECT_EQ(f.read("/sys/arv/policy/a/cpu"), "paper\n");
  EXPECT_EQ(f.read("/sys/arv/policy/a/mem"), "ewma\n");
}

TEST(PolicyFiles, WriteSwitchesTheLivePolicy) {
  Fixture f;
  f.run({.name = "b"});  // pre-existing peer: a registers with lower 10
  auto& a = f.run({.name = "a"});
  const auto view = a.resource_view();
  ASSERT_EQ(view->effective_cpus(), 10);  // paper starts at LOWER
  ASSERT_TRUE(f.write("/sys/arv/policy/a/cpu", "static\n"));
  EXPECT_EQ(view->cpu_policy_name(), "static");
  EXPECT_EQ(view->effective_cpus(), 20);  // re-pinned immediately
  EXPECT_EQ(f.read("/sys/arv/policy/a/cpu"), "static\n");
  // The acceptance check: keep running after the switch — the live value
  // stays inside the static bounds.
  f.host.run_for(500 * msec);
  EXPECT_GE(view->effective_cpus(), view->cpu_bounds().lower);
  EXPECT_LE(view->effective_cpus(), view->cpu_bounds().upper);
}

TEST(PolicyFiles, UnknownPolicyWriteFails) {
  Fixture f;
  f.run({.name = "a"});
  EXPECT_FALSE(f.write("/sys/arv/policy/a/cpu", "bogus"));
  EXPECT_FALSE(f.write("/sys/arv/policy/a/mem", ""));
  EXPECT_EQ(f.read("/sys/arv/policy/a/cpu"), "paper\n");
}

TEST(PolicyFiles, ContainerWithoutViewRejectsWrites) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "stock";
  config.enable_resource_view = false;
  f.run(config);
  EXPECT_EQ(f.read("/sys/arv/policy/stock/cpu"), "none\n");
  EXPECT_FALSE(f.write("/sys/arv/policy/stock/cpu", "paper"));
}

TEST(PolicyFiles, KnobWritesApplyAfterValidation) {
  Fixture f;
  auto& a = f.run({.name = "a"});
  ASSERT_TRUE(f.write("/sys/arv/policy/a/cpu_step", " 4\n"));
  EXPECT_EQ(a.resource_view()->params().cpu_step, 4);
  EXPECT_EQ(f.read("/sys/arv/policy/a/cpu_step"), "4\n");
  ASSERT_TRUE(f.write("/sys/arv/policy/a/cpu_util_threshold", "0.8"));
  EXPECT_DOUBLE_EQ(a.resource_view()->params().cpu_util_threshold, 0.8);
  ASSERT_TRUE(f.write("/sys/arv/policy/a/mem_prediction_gate", "0"));
  EXPECT_FALSE(a.resource_view()->params().mem_prediction_gate);
}

TEST(PolicyFiles, InvalidKnobWritesAreWriteErrors) {
  // The satellite regression: garbage must come back as a write error with
  // the previous configuration still live, never be silently accepted.
  Fixture f;
  auto& a = f.run({.name = "a"});
  EXPECT_FALSE(f.write("/sys/arv/policy/a/cpu_step", "0"));
  EXPECT_FALSE(f.write("/sys/arv/policy/a/cpu_step", "-3"));
  EXPECT_FALSE(f.write("/sys/arv/policy/a/cpu_step", "two"));
  EXPECT_FALSE(f.write("/sys/arv/policy/a/cpu_util_threshold", "1.5"));
  EXPECT_FALSE(f.write("/sys/arv/policy/a/cpu_util_threshold", "0"));
  EXPECT_FALSE(f.write("/sys/arv/policy/a/cpu_util_threshold", "-0.5"));
  EXPECT_FALSE(f.write("/sys/arv/policy/a/mem_growth_frac", "nan"));
  EXPECT_FALSE(f.write("/sys/arv/policy/a/mem_growth_frac", "1.01"));
  EXPECT_FALSE(f.write("/sys/arv/policy/a/ewma_alpha", "2"));
  EXPECT_FALSE(f.write("/sys/arv/policy/a/mem_prediction_gate", "2"));
  // cpu_down_threshold above cpu_util_threshold breaks the hysteresis band.
  EXPECT_FALSE(f.write("/sys/arv/policy/a/cpu_down_threshold", "0.99"));
  EXPECT_FALSE(f.write("/sys/arv/policy/a/prop_gain", "0"));
  const auto& params = a.resource_view()->params();
  EXPECT_EQ(params.cpu_step, 1);
  EXPECT_DOUBLE_EQ(params.cpu_util_threshold, 0.95);
  EXPECT_DOUBLE_EQ(params.mem_growth_frac, 0.10);
  EXPECT_TRUE(params.mem_prediction_gate);
}

TEST(PolicyFiles, StaticMemPolicyTracksRuntimeLimitWrites) {
  // Satellite: under the "static" comparator a runtime
  // memory.limit_in_bytes update must re-pin e_mem to the new hard limit,
  // end to end through the cgroup knob file and the kMemChanged event.
  Fixture f;
  container::ContainerConfig config;
  config.name = "lxcfs";
  config.mem_limit = 4 * GiB;
  config.mem_soft_limit = 1 * GiB;
  config.view_params.cpu_policy = "static";
  config.view_params.mem_policy = "static";
  auto& c = f.run(config);
  ASSERT_EQ(c.resource_view()->effective_memory(), static_cast<Bytes>(4) * GiB);
  ASSERT_TRUE(f.write("/sys/fs/cgroup/memory/lxcfs/memory.limit_in_bytes",
                      std::to_string(8LL * GiB)));
  EXPECT_EQ(c.resource_view()->effective_memory(), static_cast<Bytes>(8) * GiB);
  // And the container's own meminfo view agrees.
  const auto meminfo = f.host.sysfs().read(c.init_pid(), "/proc/meminfo");
  ASSERT_TRUE(meminfo.has_value());
  EXPECT_NE(meminfo->find("MemTotal:       8388608 kB"), std::string::npos);
}

TEST(PolicyFiles, KnobWriteInvalidatesCachedRenders) {
  // The knob files reuse the generation cache: a successful write must bump
  // the generation so the next read re-renders instead of serving the old
  // cached text.
  Fixture f;
  f.run({.name = "a"});
  ASSERT_EQ(f.read("/sys/arv/policy/a/cpu_step"), "1\n");
  ASSERT_EQ(f.read("/sys/arv/policy/a/cpu_step"), "1\n");  // cached render
  ASSERT_TRUE(f.write("/sys/arv/policy/a/cpu_step", "2"));
  EXPECT_EQ(f.read("/sys/arv/policy/a/cpu_step"), "2\n");
  // A *failed* write leaves the cache (and the value) alone.
  ASSERT_FALSE(f.write("/sys/arv/policy/a/cpu_step", "0"));
  EXPECT_EQ(f.read("/sys/arv/policy/a/cpu_step"), "2\n");
}

TEST(PolicyFiles, DecisionCountersReadableFromInsideTheContainer) {
  Fixture f;
  f.run({.name = "b"});  // pre-existing peer: a registers with lower 10
  auto& a = f.run({.name = "a"});
  // 12 busy threads saturate a's 10-CPU view while 8 host CPUs idle, so
  // Algorithm 1 sees both >95% utilization and host slack: growth decisions.
  workloads::CpuHog hog(f.host, a, 12, 3600 * sec);
  f.host.run_for(1 * sec);
  const auto grew = f.host.sysfs().read(a.init_pid(), "/sys/arv/trace/cpu_grew");
  ASSERT_TRUE(grew.has_value());
  EXPECT_GT(std::stoll(*grew), 0);
  const auto held = f.host.sysfs().read(a.init_pid(), "/sys/arv/trace/mem_held");
  ASSERT_TRUE(held.has_value());
  // Every round is accounted to exactly one reason.
  std::int64_t total = 0;
  for (const char* reason : {"grew", "shrank", "clamped", "reset", "held"}) {
    const auto value = f.host.sysfs().read(
        a.init_pid(), std::string("/sys/arv/trace/cpu_") + reason);
    ASSERT_TRUE(value.has_value()) << reason;
    total += std::stoll(*value);
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(a.resource_view()->cpu_updates()));
}

TEST(PolicyFiles, DestroyedContainerLosesItsPolicyDirectory) {
  Fixture f;
  auto& a = f.run({.name = "a"});
  ASSERT_TRUE(f.read("/sys/arv/policy/a/cpu").has_value());
  a.stop();
  EXPECT_FALSE(f.read("/sys/arv/policy/a/cpu").has_value());
  EXPECT_FALSE(f.read("/sys/arv/policy/a/cpu_step").has_value());
  EXPECT_FALSE(f.write("/sys/arv/policy/a/cpu", "static"));
}

}  // namespace
}  // namespace arv::vfs
