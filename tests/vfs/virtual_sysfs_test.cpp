#include "src/vfs/virtual_sysfs.h"

#include <gtest/gtest.h>

#include "src/container/container.h"
#include "src/workloads/hogs.h"

namespace arv::vfs {
namespace {

using namespace arv::units;

struct Fixture {
  Fixture() : host(host_config()), runtime(host) {}

  static container::HostConfig host_config() {
    container::HostConfig config;
    config.cpus = 20;
    config.ram = 128 * GiB;
    return config;
  }

  container::Container& run(container::ContainerConfig config) {
    return runtime.run(config);
  }

  container::Host host;
  container::ContainerRuntime runtime;
};

TEST(VirtualSysfs, HostSeesAllCpus) {
  Fixture f;
  const auto online = f.host.sysfs().read(proc::kHostInit,
                                          "/sys/devices/system/cpu/online");
  EXPECT_EQ(online, "0-19\n");
}

TEST(VirtualSysfs, HostMeminfoReportsTotalRam) {
  Fixture f;
  const auto meminfo = f.host.sysfs().read(proc::kHostInit, "/proc/meminfo");
  ASSERT_TRUE(meminfo.has_value());
  EXPECT_NE(meminfo->find("MemTotal:       134217728 kB"), std::string::npos);
}

TEST(VirtualSysfs, ContainerSeesEffectiveCpus) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "a";
  config.cfs_quota_us = 400000;  // 4 CPUs
  auto& c = f.run(config);
  const auto online =
      f.host.sysfs().read(c.init_pid(), "/sys/devices/system/cpu/online");
  // Single container with quota 4: lower = min(4, 20, 20) = 4.
  EXPECT_EQ(online, "0-3\n");
}

TEST(VirtualSysfs, StockContainerSeesHostView) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "stock";
  config.cfs_quota_us = 400000;
  config.enable_resource_view = false;  // plain Docker
  auto& c = f.run(config);
  const auto online =
      f.host.sysfs().read(c.init_pid(), "/sys/devices/system/cpu/online");
  EXPECT_EQ(online, "0-19\n");  // the semantic gap
}

TEST(VirtualSysfs, ContainerMeminfoReportsEffectiveMemory) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "m";
  config.mem_limit = 2 * GiB;
  config.mem_soft_limit = 1 * GiB;
  auto& c = f.run(config);
  const auto meminfo = f.host.sysfs().read(c.init_pid(), "/proc/meminfo");
  ASSERT_TRUE(meminfo.has_value());
  // Effective memory initializes to the soft limit: 1 GiB = 1048576 kB.
  EXPECT_NE(meminfo->find("MemTotal:       1048576 kB"), std::string::npos);
}

TEST(VirtualSysfs, SysconfCpusRedirected) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "a";
  config.cpuset = CpuSet::first_n(2);
  auto& c = f.run(config);
  EXPECT_EQ(f.host.sysfs().sysconf(c.init_pid(), Sysconf::kNProcessorsOnln), 2);
  EXPECT_EQ(f.host.sysfs().sysconf(proc::kHostInit, Sysconf::kNProcessorsOnln), 20);
}

TEST(VirtualSysfs, SysconfMemoryRedirected) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "a";
  config.mem_limit = 1 * GiB;
  config.mem_soft_limit = 512 * MiB;
  auto& c = f.run(config);
  const long pages = f.host.sysfs().sysconf(c.init_pid(), Sysconf::kPhysPages);
  const long page_size = f.host.sysfs().sysconf(c.init_pid(), Sysconf::kPageSize);
  EXPECT_EQ(static_cast<Bytes>(pages) * page_size, 512 * MiB);
  EXPECT_EQ(f.host.sysfs().sysconf(proc::kHostInit, Sysconf::kPhysPages) *
                static_cast<long>(units::page),
            128L * GiB);
}

TEST(VirtualSysfs, SysconfAvPhysPagesSubtractsUsage) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "a";
  config.mem_limit = 1 * GiB;
  auto& c = f.run(config);
  f.host.memory().charge(c.cgroup(), 256 * MiB);
  const long pages = f.host.sysfs().sysconf(c.init_pid(), Sysconf::kAvPhysPages);
  EXPECT_EQ(static_cast<Bytes>(pages) * units::page, 1 * GiB - 256 * MiB);
}

TEST(VirtualSysfs, ChildProcessesInheritTheView) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "a";
  config.cpuset = CpuSet::first_n(3);
  auto& c = f.run(config);
  const proc::Pid child = c.spawn_process("worker");
  EXPECT_EQ(f.host.sysfs().sysconf(child, Sysconf::kNProcessorsOnln), 3);
}

TEST(VirtualSysfs, CgroupKnobFilesReadable) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "web";
  config.cpu_shares = 2048;
  f.run(config);
  EXPECT_EQ(f.host.sysfs().read(proc::kHostInit,
                                "/sys/fs/cgroup/cpu/web/cpu.shares"),
            "2048\n");
}

TEST(VirtualSysfs, KnobWriteFlowsToCgroupAndView) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "web";
  auto& c = f.run(config);
  ASSERT_TRUE(f.host.sysfs().write("/sys/fs/cgroup/cpu/web/cpu.cfs_quota_us",
                                   "400000"));
  EXPECT_EQ(f.host.cgroups().get(c.cgroup()).cpu().cfs_quota_us, 400000);
  // The ns_monitor hook refreshed the bounds synchronously.
  EXPECT_EQ(c.resource_view()->cpu_bounds().upper, 4);
}

TEST(VirtualSysfs, KnobWriteRejectsGarbage) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "web";
  f.run(config);
  EXPECT_FALSE(f.host.sysfs().write("/sys/fs/cgroup/cpu/web/cpu.shares", "zero"));
  EXPECT_FALSE(f.host.sysfs().write("/sys/fs/cgroup/cpu/web/cpu.shares", "1"));
  EXPECT_FALSE(
      f.host.sysfs().write("/sys/fs/cgroup/cpuset/web/cpuset.cpus", "0-99"));
}

TEST(VirtualSysfs, KnobWriteAcceptsSurroundingWhitespace) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "web";
  auto& c = f.run(config);
  // `echo " 512" > cpu.shares` reaches the handler with leading whitespace;
  // the kernel accepts it, so the shim must too.
  ASSERT_TRUE(f.host.sysfs().write("/sys/fs/cgroup/cpu/web/cpu.shares", " 512\n"));
  EXPECT_EQ(f.host.cgroups().get(c.cgroup()).cpu().shares, 512);
  ASSERT_TRUE(f.host.sysfs().write("/sys/fs/cgroup/cpu/web/cpu.cfs_quota_us",
                                   "\t400000 "));
  EXPECT_EQ(f.host.cgroups().get(c.cgroup()).cpu().cfs_quota_us, 400000);
}

TEST(VirtualSysfs, CachedKnobFilesStayFreshAcrossWrites) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "web";
  config.cpu_shares = 1024;
  f.run(config);
  const std::string path = "/sys/fs/cgroup/cpu/web/cpu.shares";
  ASSERT_EQ(f.host.sysfs().read(proc::kHostInit, path), "1024\n");
  // Repeat read served from the render cache...
  const auto hits = f.host.sysfs().host_fs().render_cache_hits();
  ASSERT_EQ(f.host.sysfs().read(proc::kHostInit, path), "1024\n");
  EXPECT_GT(f.host.sysfs().host_fs().render_cache_hits(), hits);
  // ...and the write-triggered cgroup event invalidates it.
  ASSERT_TRUE(f.host.sysfs().write(path, "2048"));
  EXPECT_EQ(f.host.sysfs().read(proc::kHostInit, path), "2048\n");
}

TEST(VirtualSysfs, CpuinfoTracksEffectiveViewChanges) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "a";
  config.cfs_quota_us = 400000;  // 4 effective CPUs
  auto& c = f.run(config);
  auto count_processors = [](const std::string& text) {
    int count = 0;
    std::size_t pos = 0;
    while ((pos = text.find("processor\t:", pos)) != std::string::npos) {
      ++count;
      pos += 1;
    }
    return count;
  };
  auto read_cpuinfo = [&] {
    const auto info = f.host.sysfs().read(c.init_pid(), "/proc/cpuinfo");
    return info ? count_processors(*info) : -1;
  };
  EXPECT_EQ(read_cpuinfo(), 4);
  EXPECT_EQ(read_cpuinfo(), 4);  // memoized second read is identical
  // Shrinking the quota shrinks the view; cpuinfo must follow immediately.
  ASSERT_TRUE(
      f.host.sysfs().write("/sys/fs/cgroup/cpu/a/cpu.cfs_quota_us", "200000"));
  EXPECT_EQ(read_cpuinfo(), 2);
}

TEST(VirtualSysfs, StoppedContainerFilesDisappear) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "gone";
  auto& c = f.run(config);
  ASSERT_TRUE(f.host.sysfs().host_fs().exists("/sys/fs/cgroup/cpu/gone/cpu.shares"));
  c.stop();
  EXPECT_FALSE(f.host.sysfs().host_fs().exists("/sys/fs/cgroup/cpu/gone/cpu.shares"));
}

TEST(VirtualSysfsV2, CpuMaxRoundTrip) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "v2";
  auto& c = f.run(config);
  EXPECT_EQ(f.host.sysfs().read(proc::kHostInit,
                                "/sys/fs/cgroup/unified/v2/cpu.max"),
            "max 100000\n");
  ASSERT_TRUE(f.host.sysfs().write("/sys/fs/cgroup/unified/v2/cpu.max",
                                   "400000 100000"));
  EXPECT_EQ(f.host.cgroups().get(c.cgroup()).cpu().cfs_quota_us, 400000);
  EXPECT_EQ(f.host.sysfs().read(proc::kHostInit,
                                "/sys/fs/cgroup/unified/v2/cpu.max"),
            "400000 100000\n");
  // Writing "max" alone restores unlimited quota.
  ASSERT_TRUE(f.host.sysfs().write("/sys/fs/cgroup/unified/v2/cpu.max", "max"));
  EXPECT_EQ(f.host.cgroups().get(c.cgroup()).cpu().cfs_quota_us, kUnlimited);
}

TEST(VirtualSysfsV2, CpuMaxRejectsGarbage) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "v2";
  f.run(config);
  EXPECT_FALSE(f.host.sysfs().write("/sys/fs/cgroup/unified/v2/cpu.max", ""));
  EXPECT_FALSE(
      f.host.sysfs().write("/sys/fs/cgroup/unified/v2/cpu.max", "abc 100"));
  EXPECT_FALSE(f.host.sysfs().write("/sys/fs/cgroup/unified/v2/cpu.max",
                                    "100000 100000 extra"));
  EXPECT_FALSE(
      f.host.sysfs().write("/sys/fs/cgroup/unified/v2/cpu.max", "100000 10"));
}

TEST(VirtualSysfsV2, CpuWeightKernelMapping) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "v2";
  auto& c = f.run(config);
  // Default shares 1024 => weight 1 + 1022*9999/262142 = 39.
  EXPECT_EQ(f.host.sysfs().read(proc::kHostInit,
                                "/sys/fs/cgroup/unified/v2/cpu.weight"),
            "39\n");
  ASSERT_TRUE(f.host.sysfs().write("/sys/fs/cgroup/unified/v2/cpu.weight", "100"));
  // weight 100 => shares 2 + 99*262142/9999 = 2597.
  EXPECT_EQ(f.host.cgroups().get(c.cgroup()).cpu().shares, 2597);
  EXPECT_FALSE(
      f.host.sysfs().write("/sys/fs/cgroup/unified/v2/cpu.weight", "0"));
  EXPECT_FALSE(
      f.host.sysfs().write("/sys/fs/cgroup/unified/v2/cpu.weight", "10001"));
}

TEST(VirtualSysfsV2, MemoryFiles) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "v2";
  config.mem_limit = 2 * GiB;
  config.mem_soft_limit = 1 * GiB;
  auto& c = f.run(config);
  EXPECT_EQ(f.host.sysfs().read(proc::kHostInit,
                                "/sys/fs/cgroup/unified/v2/memory.max"),
            "2147483648\n");
  EXPECT_EQ(f.host.sysfs().read(proc::kHostInit,
                                "/sys/fs/cgroup/unified/v2/memory.low"),
            "1073741824\n");
  f.host.memory().charge(c.cgroup(), 256 * MiB);
  EXPECT_EQ(f.host.sysfs().read(proc::kHostInit,
                                "/sys/fs/cgroup/unified/v2/memory.current"),
            "268435456\n");
  ASSERT_TRUE(f.host.sysfs().write("/sys/fs/cgroup/unified/v2/memory.max",
                                   "3221225472"));
  EXPECT_EQ(f.host.cgroups().get(c.cgroup()).mem().limit_in_bytes, 3 * GiB);
}

TEST(VirtualSysfsV2, CpuStatReportsUsageAndThrottling) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "v2";
  config.cfs_quota_us = 100000;  // 1 CPU
  auto& c = f.run(config);
  workloads::CpuHog hog(f.host, c, 4, 3600 * units::sec);
  f.host.run_for(1 * units::sec);
  const auto stat =
      f.host.sysfs().read(proc::kHostInit, "/sys/fs/cgroup/unified/v2/cpu.stat");
  ASSERT_TRUE(stat.has_value());
  // ~1 CPU-second used, ~3 CPU-seconds of demand throttled away.
  EXPECT_NE(stat->find("usage_usec"), std::string::npos);
  EXPECT_NE(stat->find("throttled_usec"), std::string::npos);
  EXPECT_GT(f.host.scheduler().stats(c.cgroup()).throttled_time, 1 * units::sec);
}

TEST(VirtualSysfsV2, FilesRemovedOnStop) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "v2gone";
  auto& c = f.run(config);
  ASSERT_TRUE(
      f.host.sysfs().host_fs().exists("/sys/fs/cgroup/unified/v2gone/cpu.max"));
  c.stop();
  EXPECT_FALSE(
      f.host.sysfs().host_fs().exists("/sys/fs/cgroup/unified/v2gone/cpu.max"));
}

TEST(VirtualSysfs, CpuinfoRecordsMatchVisibleCpus) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "a";
  config.cfs_quota_us = 300000;  // 3 effective CPUs
  auto& c = f.run(config);
  const auto host_info = f.host.sysfs().read(proc::kHostInit, "/proc/cpuinfo");
  const auto container_info = f.host.sysfs().read(c.init_pid(), "/proc/cpuinfo");
  ASSERT_TRUE(host_info && container_info);
  auto count_processors = [](const std::string& text) {
    int count = 0;
    std::size_t pos = 0;
    while ((pos = text.find("processor\t:", pos)) != std::string::npos) {
      ++count;
      pos += 1;
    }
    return count;
  };
  EXPECT_EQ(count_processors(*host_info), 20);
  EXPECT_EQ(count_processors(*container_info), 3);
}

TEST(VirtualSysfs, LoadavgFilePresent) {
  Fixture f;
  const auto loadavg = f.host.sysfs().read(proc::kHostInit, "/proc/loadavg");
  ASSERT_TRUE(loadavg.has_value());
  EXPECT_NE(loadavg->find("0.00"), std::string::npos);
}

// --- /sys/arv/trace: the observability layer's pseudo-files -----------------

TEST(VirtualSysfs, ContainerReadsItsOwnTraceCounters) {
  Fixture f;  // note: no recorder needed for the per-container counters
  container::ContainerConfig config;
  config.name = "traced";
  config.cfs_quota_us = 400000;  // 4 CPUs
  config.mem_limit = 2 * GiB;
  config.mem_soft_limit = 1 * GiB;
  auto& c = f.run(config);

  auto read = [&](const char* counter) {
    return f.host.sysfs().read(c.init_pid(),
                               std::string("/sys/arv/trace/") + counter);
  };
  EXPECT_EQ(read("e_cpu"), "4\n");
  EXPECT_EQ(read("e_mem"), "1073741824\n");  // starts at the soft limit
  EXPECT_EQ(read("cpu_upper"), "4\n");
  EXPECT_EQ(read("mem_hard"), "2147483648\n");
  EXPECT_EQ(read("cpu_updates"), "0\n");
  EXPECT_EQ(read("mem_usage"), "0\n");
  EXPECT_EQ(read("no_such_counter"), std::nullopt);
}

TEST(VirtualSysfs, TraceCountersAdvanceWithTheSimulation) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "live";
  auto& c = f.run(config);
  workloads::CpuHog hog(f.host, c, 4, 3600 * sec);
  f.host.run_for(500 * msec);

  const auto updates =
      f.host.sysfs().read(c.init_pid(), "/sys/arv/trace/cpu_updates");
  ASSERT_TRUE(updates.has_value());
  EXPECT_NE(*updates, "0\n");
  const auto usage =
      f.host.sysfs().read(c.init_pid(), "/sys/arv/trace/cpu_usage");
  ASSERT_TRUE(usage.has_value());
  EXPECT_GT(std::stoll(*usage), 0);
}

TEST(VirtualSysfs, StockContainerHasNoTraceCounters) {
  Fixture f;
  container::ContainerConfig config;
  config.name = "stock";
  config.enable_resource_view = false;
  auto& c = f.run(config);
  EXPECT_EQ(f.host.sysfs().read(c.init_pid(), "/sys/arv/trace/e_cpu"),
            std::nullopt);
}

TEST(VirtualSysfs, RecorderExportsSeriesIndexHostWide) {
  container::HostConfig host_config;
  host_config.cpus = 4;
  host_config.ram = 4 * GiB;
  host_config.enable_tracing = true;
  container::Host host(host_config);
  container::ContainerRuntime runtime(host);
  runtime.run({.name = "c0"});
  host.run_for(50 * msec);

  const auto series = host.sysfs().read(proc::kHostInit, "/sys/arv/trace/series");
  ASSERT_TRUE(series.has_value());
  EXPECT_NE(series->find("sim.ticks\n"), std::string::npos);
  EXPECT_NE(series->find("c0.e_cpu\n"), std::string::npos);
  EXPECT_EQ(host.sysfs().read(proc::kHostInit, "/sys/arv/trace/samples"),
            "50\n");
}

TEST(VirtualSysfs, NoSeriesIndexWithoutRecorder) {
  Fixture f;  // tracing disabled in the fixture's host
  EXPECT_EQ(f.host.sysfs().read(proc::kHostInit, "/sys/arv/trace/series"),
            std::nullopt);
}

}  // namespace
}  // namespace arv::vfs
