#include "src/vfs/pseudo_fs.h"

#include <gtest/gtest.h>

namespace arv::vfs {
namespace {

TEST(PseudoFs, ReadRegisteredFile) {
  PseudoFs fs;
  fs.register_file("/proc/version", [] { return std::string("arv 1.0\n"); });
  EXPECT_TRUE(fs.exists("/proc/version"));
  EXPECT_EQ(fs.read("/proc/version"), "arv 1.0\n");
}

TEST(PseudoFs, MissingFileIsNullopt) {
  PseudoFs fs;
  EXPECT_FALSE(fs.exists("/nope"));
  EXPECT_EQ(fs.read("/nope"), std::nullopt);
}

TEST(PseudoFs, ProviderEvaluatedAtReadTime) {
  PseudoFs fs;
  int counter = 0;
  fs.register_file("/counter", [&] { return std::to_string(++counter); });
  EXPECT_EQ(fs.read("/counter"), "1");
  EXPECT_EQ(fs.read("/counter"), "2");
}

TEST(PseudoFs, WriteToReadOnlyFails) {
  PseudoFs fs;
  fs.register_file("/ro", [] { return std::string("x"); });
  EXPECT_FALSE(fs.write("/ro", "y"));
}

TEST(PseudoFs, WriteToMissingFails) {
  PseudoFs fs;
  EXPECT_FALSE(fs.write("/nope", "y"));
}

TEST(PseudoFs, WritableRoundTrip) {
  PseudoFs fs;
  std::string value = "1024";
  fs.register_writable(
      "/knob", [&] { return value; },
      [&](std::string_view v) {
        value = std::string(v);
        return true;
      });
  EXPECT_TRUE(fs.write("/knob", "2048"));
  EXPECT_EQ(fs.read("/knob"), "2048");
}

TEST(PseudoFs, WriteHandlerCanReject) {
  PseudoFs fs;
  fs.register_writable(
      "/strict", [] { return std::string("ok"); },
      [](std::string_view v) { return v == "ok"; });
  EXPECT_TRUE(fs.write("/strict", "ok"));
  EXPECT_FALSE(fs.write("/strict", "bad"));
}

TEST(PseudoFs, ReRegisterReplaces) {
  PseudoFs fs;
  fs.register_file("/f", [] { return std::string("old"); });
  fs.register_file("/f", [] { return std::string("new"); });
  EXPECT_EQ(fs.read("/f"), "new");
  EXPECT_EQ(fs.file_count(), 1u);
}

TEST(PseudoFs, RemoveSingle) {
  PseudoFs fs;
  fs.register_file("/a", [] { return std::string(); });
  fs.remove("/a");
  EXPECT_FALSE(fs.exists("/a"));
}

TEST(PseudoFs, RemoveSubtree) {
  PseudoFs fs;
  fs.register_file("/sys/a/x", [] { return std::string(); });
  fs.register_file("/sys/a/y", [] { return std::string(); });
  fs.register_file("/sys/ab", [] { return std::string(); });
  fs.remove_subtree("/sys/a/");
  EXPECT_FALSE(fs.exists("/sys/a/x"));
  EXPECT_FALSE(fs.exists("/sys/a/y"));
  EXPECT_TRUE(fs.exists("/sys/ab"));  // prefix is path-precise
}

TEST(PseudoFs, ListSortedByPath) {
  PseudoFs fs;
  fs.register_file("/d/b", [] { return std::string(); });
  fs.register_file("/d/a", [] { return std::string(); });
  fs.register_file("/e", [] { return std::string(); });
  const auto listed = fs.list("/d/");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], "/d/a");
  EXPECT_EQ(listed[1], "/d/b");
}

TEST(PseudoFs, GenerationCachedFileSkipsRender) {
  PseudoFs fs;
  Generation gen = 1;
  int renders = 0;
  fs.register_file(
      "/cached", [&] { ++renders; return std::to_string(renders); }, &gen);
  EXPECT_EQ(fs.read("/cached"), "1");
  EXPECT_EQ(fs.read("/cached"), "1");  // provider not re-run
  EXPECT_EQ(renders, 1);
  EXPECT_EQ(fs.render_cache_hits(), 1u);
  ++gen;  // configuration changed: next read re-renders
  EXPECT_EQ(fs.read("/cached"), "2");
  EXPECT_EQ(renders, 2);
}

TEST(PseudoFs, CachedWritableRereadsAfterGenerationBump) {
  PseudoFs fs;
  Generation gen = 1;
  std::string value = "10";
  fs.register_writable(
      "/knob", [&] { return value; },
      [&](std::string_view v) {
        value = std::string(v);
        ++gen;
        return true;
      },
      &gen);
  EXPECT_EQ(fs.read("/knob"), "10");
  EXPECT_TRUE(fs.write("/knob", "20"));
  EXPECT_EQ(fs.read("/knob"), "20");
}

TEST(PseudoFs, ReRegisterDropsStaleCachedRender) {
  PseudoFs fs;
  Generation gen = 7;
  fs.register_file("/f", [] { return std::string("old"); }, &gen);
  EXPECT_EQ(fs.read("/f"), "old");
  // Same generation value, but re-registration must start a fresh cache.
  fs.register_file("/f", [] { return std::string("new"); }, &gen);
  EXPECT_EQ(fs.read("/f"), "new");
}

TEST(PseudoFsDeath, PathsMustBeAbsolute) {
  PseudoFs fs;
  EXPECT_DEATH(fs.register_file("relative", [] { return std::string(); }), "");
}

}  // namespace
}  // namespace arv::vfs
