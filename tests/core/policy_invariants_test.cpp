// The Algorithm 1/2 safety invariants, enforced across *every* registered
// policy under randomized bounds changes and observations:
//
//   I1. LOWER <= E_CPU <= UPPER after every refresh and update.
//   I2. soft <= E_MEM <= hard after every refresh and update.
//   I3. kswapd active (or free below LOW_MARK) => the next adaptive decision
//       resets E_MEM to the soft limit ("static" is exempt by contract —
//       LXCFS never reacts to allocation).
//
// Plus the mid-run policy-switch property: invariants hold across a live
// swap to any other policy, in any direction.
#include <gtest/gtest.h>

#include "src/core/policy.h"
#include "src/core/sys_namespace.h"
#include "src/util/rng.h"

namespace arv::core {
namespace {

using namespace arv::units;

constexpr SimDuration kWindow = 24 * msec;
constexpr Bytes kTotalRam = 128 * GiB;

struct RandomDriver {
  explicit RandomDriver(std::uint64_t seed) : rng(seed), tree(20) {}

  std::shared_ptr<SysNamespace> make(const std::string& policy) {
    cg = tree.create("c");
    tree.create("peer");  // share fraction < 1 so lower < upper
    tree.set_mem_limit(cg, 8 * GiB);
    tree.set_mem_soft_limit(cg, 2 * GiB);
    Params params;
    params.cpu_policy = policy;
    params.mem_policy = policy;
    auto ns = std::make_shared<SysNamespace>(cg, params);
    ns->refresh_cpu_bounds(tree);
    ns->refresh_mem_limits(tree, kTotalRam);
    return ns;
  }

  /// One random mutation + observation round against `ns`, asserting the
  /// bounds invariants after every call that can move the effective values.
  void step(SysNamespace& ns) {
    // Occasionally shuffle the administrator settings mid-run.
    if (rng.chance(0.2)) {
      tree.set_cfs_quota(cg, rng.uniform_int(2, 20) * 100000);
      ns.refresh_cpu_bounds(tree);
      check_cpu(ns);
    }
    if (rng.chance(0.1)) {
      tree.set_mem_limit(cg, rng.uniform_int(3, 16) * GiB);
      ns.refresh_mem_limits(tree, kTotalRam);
      check_mem(ns);
    }

    CpuObservation cpu;
    cpu.window = kWindow;
    cpu.usage = static_cast<CpuTime>(
        rng.uniform(0.0, 1.05) * static_cast<double>(ns.effective_cpus()) *
        static_cast<double>(kWindow));
    cpu.host_has_slack = rng.chance(0.5);
    ns.update_cpu(cpu);
    check_cpu(ns);

    MemObservation mem;
    mem.low_mark = 1 * GiB;
    mem.high_mark = 2 * GiB;
    mem.free = rng.uniform_int(0, 64) * GiB;
    mem.usage = rng.uniform_int(0, 8) * GiB;
    mem.kswapd_active = rng.chance(0.15);
    const bool shortage = mem.free <= mem.low_mark || mem.kswapd_active;
    ns.update_mem(mem);
    check_mem(ns);
    if (shortage && adaptive) {
      // I3: every adaptive policy must fall back to the reclaim target.
      EXPECT_EQ(ns.effective_memory(), ns.mem_soft_limit());
    }
  }

  void check_cpu(const SysNamespace& ns) {
    EXPECT_GE(ns.effective_cpus(), ns.cpu_bounds().lower);
    EXPECT_LE(ns.effective_cpus(), ns.cpu_bounds().upper);
  }

  void check_mem(const SysNamespace& ns) {
    EXPECT_GE(ns.effective_memory(), ns.mem_soft_limit());
    EXPECT_LE(ns.effective_memory(), ns.mem_hard_limit());
  }

  Rng rng;
  cgroup::Tree tree;
  cgroup::CgroupId cg{};
  bool adaptive = true;
};

TEST(PolicyInvariants, HoldForEveryRegisteredPolicyUnderRandomInputs) {
  for (const auto& policy : PolicyRegistry::instance().cpu_names()) {
    SCOPED_TRACE(policy);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      RandomDriver driver(seed * 7919);
      const auto ns = driver.make(policy);
      driver.adaptive =
          PolicyRegistry::instance().make_mem(policy, Params{})->adaptive();
      for (int round = 0; round < 400; ++round) {
        driver.step(*ns);
      }
      // Liveness spot checks on top of safety: the decision counters account
      // for every round, and an adaptive policy that saw both slack and
      // pressure did *something* other than hold forever.
      EXPECT_EQ(ns->cpu_decisions().total(), ns->cpu_updates());
      EXPECT_EQ(ns->mem_decisions().total(), ns->mem_updates());
      if (driver.adaptive) {
        EXPECT_GT(ns->mem_decisions().reset, 0u);
      }
    }
  }
}

TEST(PolicyInvariants, HoldAcrossMidRunPolicySwitches) {
  const auto policies = PolicyRegistry::instance().cpu_names();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RandomDriver driver(seed * 104729);
    const auto ns = driver.make("paper");
    for (int round = 0; round < 600; ++round) {
      if (round % 50 == 25) {
        // Swap to a random registry policy, CPU and memory independently.
        const auto& cpu_policy = policies[static_cast<std::size_t>(
            driver.rng.uniform_int(0, static_cast<std::int64_t>(policies.size()) - 1))];
        const auto& mem_policy = policies[static_cast<std::size_t>(
            driver.rng.uniform_int(0, static_cast<std::int64_t>(policies.size()) - 1))];
        ASSERT_TRUE(ns->set_cpu_policy(cpu_policy));
        ASSERT_TRUE(ns->set_mem_policy(mem_policy));
        // The swap itself must land inside the bounds (e.g. "static" pins to
        // upper/hard immediately; adaptive resumes from the current value).
        driver.check_cpu(*ns);
        driver.check_mem(*ns);
        driver.adaptive = PolicyRegistry::instance()
                              .make_mem(mem_policy, Params{})
                              ->adaptive();
      }
      driver.step(*ns);
    }
  }
}

}  // namespace
}  // namespace arv::core
