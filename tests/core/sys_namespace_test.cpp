#include "src/core/sys_namespace.h"

#include <gtest/gtest.h>

namespace arv::core {
namespace {

using namespace arv::units;

constexpr SimDuration kWindow = 24 * msec;

CpuObservation busy(int e_cpu, bool slack) {
  // Utilization just above the 95% threshold for `e_cpu` effective CPUs.
  CpuObservation obs;
  obs.window = kWindow;
  obs.usage = static_cast<CpuTime>(0.99 * static_cast<double>(e_cpu) *
                                   static_cast<double>(kWindow));
  obs.host_has_slack = slack;
  return obs;
}

CpuObservation idle_obs(bool slack) {
  CpuObservation obs;
  obs.window = kWindow;
  obs.usage = 0;
  obs.host_has_slack = slack;
  return obs;
}

struct Fixture {
  explicit Fixture(int cpus = 20) : tree(cpus) {}

  std::shared_ptr<SysNamespace> make(cgroup::CgroupId id, Params params = {}) {
    auto ns = std::make_shared<SysNamespace>(id, params);
    ns->refresh_cpu_bounds(tree);
    return ns;
  }

  cgroup::Tree tree;
};

// --- Algorithm 1, lines 4-5: static bounds ---------------------------------

TEST(SysNamespaceBounds, SingleUnconstrainedContainer) {
  Fixture f;
  const auto cg = f.tree.create("a");
  const auto ns = f.make(cg);
  // Only container: share fraction = 1 => lower = upper = 20.
  EXPECT_EQ(ns->cpu_bounds().lower, 20);
  EXPECT_EQ(ns->cpu_bounds().upper, 20);
  EXPECT_EQ(ns->effective_cpus(), 20);
}

TEST(SysNamespaceBounds, ShareFractionSetsLower) {
  Fixture f;
  const auto a = f.tree.create("a");
  for (int i = 0; i < 4; ++i) {
    f.tree.create("other" + std::to_string(i));
  }
  const auto ns = f.make(a);
  // 5 equal shares on 20 CPUs: guaranteed ceil(20/5) = 4; no limit => upper 20.
  EXPECT_EQ(ns->cpu_bounds().lower, 4);
  EXPECT_EQ(ns->cpu_bounds().upper, 20);
  EXPECT_EQ(ns->effective_cpus(), 4);  // starts at LOWER (line 6)
}

TEST(SysNamespaceBounds, QuotaCapsBothBounds) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.set_cfs_quota(a, 1000000);  // 10 CPUs at 100ms period
  const auto ns = f.make(a);
  EXPECT_EQ(ns->cpu_bounds().upper, 10);
  EXPECT_LE(ns->cpu_bounds().lower, 10);
}

TEST(SysNamespaceBounds, CpusetCapsBothBounds) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.set_cpuset(a, CpuSet::first_n(2));
  const auto ns = f.make(a);
  EXPECT_EQ(ns->cpu_bounds().upper, 2);
  EXPECT_EQ(ns->cpu_bounds().lower, 2);  // share term (20) loses the min
}

TEST(SysNamespaceBounds, FractionalQuotaRoundsUpToOne) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.set_cfs_quota(a, 50000);  // half a CPU
  const auto ns = f.make(a);
  EXPECT_EQ(ns->cpu_bounds().lower, 1);
  EXPECT_EQ(ns->cpu_bounds().upper, 1);
}

TEST(SysNamespaceBounds, BoundsNeverBelowOne) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.set_cpu_shares(a, 2);  // negligible share among many
  for (int i = 0; i < 10; ++i) {
    f.tree.create("big" + std::to_string(i));
  }
  const auto ns = f.make(a);
  EXPECT_GE(ns->cpu_bounds().lower, 1);
}

// --- Algorithm 1, lines 8-17: dynamics -------------------------------------

TEST(SysNamespaceCpu, GrowsWhenBusyAndHostHasSlack) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.create("b");  // share fraction 1/2 => lower 10, upper 20
  const auto ns = f.make(a);
  ASSERT_EQ(ns->effective_cpus(), 10);
  ns->update_cpu(busy(10, /*slack=*/true));
  EXPECT_EQ(ns->effective_cpus(), 11);  // +1 per update, not more
  ns->update_cpu(busy(11, true));
  EXPECT_EQ(ns->effective_cpus(), 12);
}

TEST(SysNamespaceCpu, DoesNotGrowWhenUnderutilized) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.create("b");
  const auto ns = f.make(a);
  ns->update_cpu(idle_obs(/*slack=*/true));
  EXPECT_EQ(ns->effective_cpus(), 10);
}

TEST(SysNamespaceCpu, NeverExceedsUpper) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.set_cfs_quota(a, 400000);  // upper 4
  const auto ns = f.make(a);
  for (int i = 0; i < 20; ++i) {
    ns->update_cpu(busy(ns->effective_cpus(), true));
  }
  EXPECT_EQ(ns->effective_cpus(), 4);
}

TEST(SysNamespaceCpu, ShrinksWithoutSlackDownToLower) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.create("b");  // lower 10
  const auto ns = f.make(a);
  for (int i = 0; i < 5; ++i) {
    ns->update_cpu(busy(ns->effective_cpus(), true));
  }
  const int grown = ns->effective_cpus();
  ASSERT_GT(grown, 10);
  for (int i = 0; i < 30; ++i) {
    ns->update_cpu(busy(ns->effective_cpus(), /*slack=*/false));
  }
  EXPECT_EQ(ns->effective_cpus(), 10);  // clamped at LOWER
}

TEST(SysNamespaceCpu, ConfigChangeReclampsCurrentValue) {
  Fixture f;
  const auto a = f.tree.create("a");
  const auto ns = f.make(a);
  ASSERT_EQ(ns->effective_cpus(), 20);
  f.tree.set_cfs_quota(a, 600000);  // upper now 6
  ns->refresh_cpu_bounds(f.tree);
  EXPECT_EQ(ns->effective_cpus(), 6);
}

TEST(SysNamespaceCpu, UpdateCounterAdvances) {
  Fixture f;
  const auto a = f.tree.create("a");
  const auto ns = f.make(a);
  ns->update_cpu(idle_obs(true));
  ns->update_cpu(idle_obs(false));
  EXPECT_EQ(ns->cpu_updates(), 2u);
}

// --- Algorithm 1 invariant sweep --------------------------------------------

struct CpuSweepParam {
  int containers;
  std::int64_t quota_us;
  int cpuset_cpus;  // 0 = none
};

class Alg1Sweep : public ::testing::TestWithParam<CpuSweepParam> {};

TEST_P(Alg1Sweep, EffectiveCpuAlwaysWithinBounds) {
  const auto p = GetParam();
  Fixture f;
  const auto a = f.tree.create("a");
  for (int i = 1; i < p.containers; ++i) {
    f.tree.create("c" + std::to_string(i));
  }
  if (p.quota_us != kUnlimited) {
    f.tree.set_cfs_quota(a, p.quota_us);
  }
  if (p.cpuset_cpus > 0) {
    f.tree.set_cpuset(a, CpuSet::first_n(p.cpuset_cpus));
  }
  const auto ns = f.make(a);
  // Alternate slack/no-slack and busy/idle pseudo-randomly; invariants must
  // hold at every step.
  for (int step = 0; step < 200; ++step) {
    const bool slack = (step * 7) % 3 != 0;
    const bool is_busy = (step * 13) % 2 == 0;
    ns->update_cpu(is_busy ? busy(ns->effective_cpus(), slack) : idle_obs(slack));
    ASSERT_GE(ns->effective_cpus(), ns->cpu_bounds().lower);
    ASSERT_LE(ns->effective_cpus(), ns->cpu_bounds().upper);
    ASSERT_GE(ns->effective_cpus(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Alg1Sweep,
    ::testing::Values(CpuSweepParam{1, kUnlimited, 0},
                      CpuSweepParam{5, kUnlimited, 0},
                      CpuSweepParam{10, kUnlimited, 2},
                      CpuSweepParam{2, 400000, 0},
                      CpuSweepParam{4, 1000000, 8},
                      CpuSweepParam{8, 50000, 0},
                      CpuSweepParam{3, 200000, 1}));

// --- Algorithm 2: effective memory -----------------------------------------

struct MemFixture : Fixture {
  MemFixture() : Fixture(20) {
    cg = tree.create("a");
    tree.set_mem_limit(cg, hard);
    tree.set_mem_soft_limit(cg, soft);
    ns = std::make_shared<SysNamespace>(cg, Params{});
    ns->refresh_cpu_bounds(tree);
    ns->refresh_mem_limits(tree, total_ram);
  }

  MemObservation obs(Bytes free, Bytes usage, bool kswapd = false) const {
    MemObservation o;
    o.free = free;
    o.usage = usage;
    o.kswapd_active = kswapd;
    o.low_mark = 1 * GiB;
    o.high_mark = 2 * GiB;
    return o;
  }

  static constexpr Bytes total_ram = 128 * GiB;
  static constexpr Bytes hard = 30 * GiB;
  static constexpr Bytes soft = 15 * GiB;
  cgroup::CgroupId cg;
  std::shared_ptr<SysNamespace> ns;
};

TEST(SysNamespaceMem, InitializesToSoftLimit) {
  MemFixture f;
  EXPECT_EQ(f.ns->effective_memory(), MemFixture::soft);
  EXPECT_EQ(f.ns->mem_hard_limit(), MemFixture::hard);
}

TEST(SysNamespaceMem, GrowsTenPercentOfHeadroomWhenPressured) {
  MemFixture f;
  const Bytes before = f.ns->effective_memory();
  // Using > 90% of effective memory with plenty of free RAM.
  f.ns->update_mem(f.obs(60 * GiB, before - 1 * MiB));
  const Bytes expected_delta = (MemFixture::hard - before) / 10;
  EXPECT_NEAR(static_cast<double>(f.ns->effective_memory() - before),
              static_cast<double>(expected_delta), static_cast<double>(MiB));
}

TEST(SysNamespaceMem, NoGrowthBelowUsageThreshold) {
  MemFixture f;
  const Bytes before = f.ns->effective_memory();
  f.ns->update_mem(f.obs(60 * GiB, before / 2));
  EXPECT_EQ(f.ns->effective_memory(), before);
}

TEST(SysNamespaceMem, NeverExceedsHardLimit) {
  MemFixture f;
  for (int i = 0; i < 200; ++i) {
    f.ns->update_mem(f.obs(100 * GiB, f.ns->effective_memory()));
  }
  EXPECT_LE(f.ns->effective_memory(), MemFixture::hard);
  EXPECT_GT(f.ns->effective_memory(),
            MemFixture::hard - static_cast<Bytes>(1) * GiB);
}

TEST(SysNamespaceMem, ResetsToSoftWhenKswapdActive) {
  MemFixture f;
  f.ns->update_mem(f.obs(60 * GiB, f.ns->effective_memory()));
  ASSERT_GT(f.ns->effective_memory(), MemFixture::soft);
  f.ns->update_mem(f.obs(60 * GiB, 10 * GiB, /*kswapd=*/true));
  EXPECT_EQ(f.ns->effective_memory(), MemFixture::soft);
}

TEST(SysNamespaceMem, ResetsToSoftBelowLowWatermark) {
  MemFixture f;
  f.ns->update_mem(f.obs(60 * GiB, f.ns->effective_memory()));
  ASSERT_GT(f.ns->effective_memory(), MemFixture::soft);
  f.ns->update_mem(f.obs(512 * MiB, 10 * GiB));  // free < low mark
  EXPECT_EQ(f.ns->effective_memory(), MemFixture::soft);
}

TEST(SysNamespaceMem, PredictionGateBlocksGrowthNearHighMark) {
  MemFixture f;
  // Prime the prediction ratio: previous window saw free drop 2 GiB while
  // the container grew 1 GiB => ratio 2.
  f.ns->update_mem(f.obs(10 * GiB, 14 * GiB));
  f.ns->update_mem(f.obs(8 * GiB, 15 * GiB));
  const Bytes e_mem = f.ns->effective_memory();
  // Next window: free is barely above the high mark; a 2:1 predicted drop
  // would cross it, so growth must be blocked.
  f.ns->update_mem(f.obs(3200 * MiB, f.ns->effective_memory()));
  EXPECT_EQ(f.ns->effective_memory(), e_mem);
}

// --- First-window behavior of the line-8 prediction ratio -------------------
//
// Before any window completes there is no (prev_free, prev_usage) snapshot,
// so the prediction ratio must default to 1:1. These tests pin that down for
// the optional-based snapshots: "no previous window" is a distinct state, not
// a magic byte value.

TEST(SysNamespaceMem, FirstWindowPredictsOneToOne) {
  // delta = 10% of (30 - 15) GiB = 1.5 GiB. With ratio 1.0 the gate passes
  // iff free - 1.5 GiB > HIGH_MARK (2 GiB).
  MemFixture grows;
  grows.ns->update_mem(grows.obs(4 * GiB, 14 * GiB + 512 * MiB));
  EXPECT_GT(grows.ns->effective_memory(), MemFixture::soft);

  MemFixture blocked;
  blocked.ns->update_mem(blocked.obs(3 * GiB, 14 * GiB + 512 * MiB));
  EXPECT_EQ(blocked.ns->effective_memory(), MemFixture::soft);
}

TEST(SysNamespaceMem, ZeroUsageFirstWindowStillSeedsSnapshot) {
  MemFixture f;
  // First window: the container has touched nothing yet. Usage 0 is a legal
  // reading and must be recorded as the baseline (the old -1 sentinel made
  // this case easy to get wrong).
  f.ns->update_mem(f.obs(60 * GiB, 0));
  EXPECT_EQ(f.ns->effective_memory(), MemFixture::soft);

  // Second window: usage jumped 14.5 GiB while free fell 55 GiB — a measured
  // ratio of ~3.8:1. The predicted drop (~5.7 GiB) would push free (5 GiB)
  // below HIGH_MARK, so growth is blocked. A unit ratio would have allowed
  // it (5 - 1.5 > 2), so this only passes if the zero-usage snapshot took.
  f.ns->update_mem(f.obs(5 * GiB, 14 * GiB + 512 * MiB));
  EXPECT_EQ(f.ns->effective_memory(), MemFixture::soft);
}

TEST(SysNamespaceMem, ShortageWindowReseedsSnapshot) {
  MemFixture f;
  // A kswapd window resets e_mem and must also re-seed the snapshot so the
  // next ratio measures from the shortage window, not from before it.
  f.ns->update_mem(f.obs(10 * GiB, 5 * GiB, /*kswapd=*/true));
  ASSERT_EQ(f.ns->effective_memory(), MemFixture::soft);
  // Growth +9.5 GiB while free fell 5 GiB => ratio ~0.53, predicted drop
  // ~0.8 GiB; free (5 GiB) - 0.8 GiB > HIGH_MARK, so growth proceeds.
  f.ns->update_mem(f.obs(5 * GiB, 14 * GiB + 512 * MiB));
  EXPECT_GT(f.ns->effective_memory(), MemFixture::soft);
}

TEST(SysNamespaceMem, SoftLimitChangesReclamp) {
  MemFixture f;
  f.tree.set_mem_soft_limit(f.cg, 20 * GiB);
  f.ns->refresh_mem_limits(f.tree, MemFixture::total_ram);
  EXPECT_GE(f.ns->effective_memory(), static_cast<Bytes>(20) * GiB);
}

TEST(SysNamespaceMem, MissingSoftLimitFallsBackToHard) {
  Fixture f;
  const auto cg = f.tree.create("nolimits");
  f.tree.set_mem_limit(cg, 8 * GiB);
  auto ns = std::make_shared<SysNamespace>(cg, Params{});
  ns->refresh_mem_limits(f.tree, 128 * GiB);
  EXPECT_EQ(ns->effective_memory(), static_cast<Bytes>(8) * GiB);
  EXPECT_EQ(ns->mem_soft_limit(), static_cast<Bytes>(8) * GiB);
}

TEST(SysNamespaceMem, UnlimitedContainerSeesHostRam) {
  Fixture f;
  const auto cg = f.tree.create("free");
  auto ns = std::make_shared<SysNamespace>(cg, Params{});
  ns->refresh_mem_limits(f.tree, 128 * GiB);
  EXPECT_EQ(ns->effective_memory(), static_cast<Bytes>(128) * GiB);
}

TEST(SysNamespaceMem, PredictionGateCanBeDisabled) {
  // Same near-the-high-mark situation as PredictionGateBlocksGrowthNearHighMark,
  // but with the gate off growth proceeds regardless (the ablation knob).
  Fixture f;
  const auto cg = f.tree.create("a");
  f.tree.set_mem_limit(cg, 30 * GiB);
  f.tree.set_mem_soft_limit(cg, 15 * GiB);
  Params params;
  params.mem_prediction_gate = false;
  auto ns = std::make_shared<SysNamespace>(cg, params);
  ns->refresh_mem_limits(f.tree, 128 * GiB);
  auto obs = [&](Bytes free, Bytes usage) {
    MemObservation o;
    o.free = free;
    o.usage = usage;
    o.kswapd_active = false;
    o.low_mark = 1 * GiB;
    o.high_mark = 2 * GiB;
    return o;
  };
  ns->update_mem(obs(10 * GiB, 14 * GiB));
  ns->update_mem(obs(8 * GiB, 15 * GiB));
  const Bytes before = ns->effective_memory();
  ns->update_mem(obs(3200 * MiB, ns->effective_memory()));
  EXPECT_GT(ns->effective_memory(), before);  // grew despite the prediction
}

// --- LXCFS-style static-limit views (the "static" policy) --------------------

TEST(StaticLimitsView, ExportsQuotaCpusUnconditionally) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.create("b");  // share fraction would give 10; static view ignores it
  f.tree.set_cfs_quota(a, 1000000);  // 10 CPUs
  Params params;
  params.cpu_policy = "static";
  params.mem_policy = "static";
  auto ns = std::make_shared<SysNamespace>(a, params);
  ns->refresh_cpu_bounds(f.tree);
  EXPECT_EQ(ns->effective_cpus(), 10);
  // No amount of contention feedback moves it.
  for (int i = 0; i < 50; ++i) {
    ns->update_cpu(busy(ns->effective_cpus(), false));
  }
  EXPECT_EQ(ns->effective_cpus(), 10);
}

TEST(StaticLimitsView, ExportsHardMemoryLimit) {
  Fixture f;
  const auto cg = f.tree.create("a");
  f.tree.set_mem_limit(cg, 4 * GiB);
  f.tree.set_mem_soft_limit(cg, 1 * GiB);
  Params params;
  params.cpu_policy = "static";
  params.mem_policy = "static";
  auto ns = std::make_shared<SysNamespace>(cg, params);
  ns->refresh_mem_limits(f.tree, 128 * GiB);
  EXPECT_EQ(ns->effective_memory(), static_cast<Bytes>(4) * GiB);
  MemObservation o;
  o.free = 512 * MiB;
  o.usage = 4 * GiB;
  o.kswapd_active = true;  // would reset an adaptive view to soft
  o.low_mark = 1 * GiB;
  o.high_mark = 2 * GiB;
  ns->update_mem(o);
  EXPECT_EQ(ns->effective_memory(), static_cast<Bytes>(4) * GiB);
}

TEST(StaticLimitsView, TracksAdministratorChanges) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.set_cpuset(a, CpuSet::first_n(6));
  Params params;
  params.cpu_policy = "static";
  params.mem_policy = "static";
  auto ns = std::make_shared<SysNamespace>(a, params);
  ns->refresh_cpu_bounds(f.tree);
  EXPECT_EQ(ns->effective_cpus(), 6);
  f.tree.set_cpuset(a, CpuSet::first_n(2));
  ns->refresh_cpu_bounds(f.tree);
  EXPECT_EQ(ns->effective_cpus(), 2);  // LXCFS does follow `docker update`
}

}  // namespace
}  // namespace arv::core
