#include "src/core/ns_monitor.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "tests/testing/fake_consumer.h"

namespace arv::core {
namespace {

using arv::testing::FakeConsumer;
using namespace arv::units;

struct Fixture {
  Fixture()
      : tree(20), sched(tree, 20), mm(tree, mem_config()),
        monitor(engine, tree, sched, mm) {
    engine.add_component(&sched);
    engine.add_component(&mm);
    engine.add_component(&monitor);
  }

  static mem::Config mem_config() {
    mem::Config config;
    config.total_ram = 128 * GiB;
    return config;
  }

  std::shared_ptr<SysNamespace> add_container(const std::string& name) {
    const auto cg = tree.create(name);
    auto ns = std::make_shared<SysNamespace>(cg, Params{});
    monitor.register_ns(ns);
    return ns;
  }

  sim::Engine engine{1 * msec};
  cgroup::Tree tree;
  sched::FairScheduler sched;
  mem::MemoryManager mm;
  NsMonitor monitor;
};

TEST(NsMonitor, RegisterInitializesBoundsAndLimits) {
  Fixture f;
  const auto ns = f.add_container("a");
  EXPECT_EQ(ns->effective_cpus(), 20);
  EXPECT_EQ(ns->effective_memory(), 128 * GiB);
  EXPECT_EQ(f.monitor.registered_count(), 1u);
}

TEST(NsMonitor, LookupFindsRegistered) {
  Fixture f;
  const auto ns = f.add_container("a");
  EXPECT_EQ(f.monitor.lookup(ns->cgroup()), ns);
  EXPECT_EQ(f.monitor.lookup(999), nullptr);
}

TEST(NsMonitor, CgroupChangeRefreshesBoundsImmediately) {
  Fixture f;
  const auto ns = f.add_container("a");
  ASSERT_EQ(ns->cpu_bounds().upper, 20);
  f.tree.set_cfs_quota(ns->cgroup(), 400000);  // 4 CPUs
  // No engine run needed: the cgroup hook fires synchronously.
  EXPECT_EQ(ns->cpu_bounds().upper, 4);
  EXPECT_LE(ns->effective_cpus(), 4);
}

TEST(NsMonitor, NewContainerReshapesPeersShareFraction) {
  Fixture f;
  const auto a = f.add_container("a");
  ASSERT_EQ(a->cpu_bounds().lower, 20);
  f.add_container("b");
  // The peer ripple is coalesced: creating "b" marks the bounds dirty but
  // does O(1) immediate work; "a" still sees its old share fraction.
  EXPECT_TRUE(f.monitor.bounds_refresh_pending());
  EXPECT_EQ(a->cpu_bounds().lower, 20);
  // The next update round applies the refresh before any decisions.
  f.monitor.update_all(1 * msec);
  EXPECT_FALSE(f.monitor.bounds_refresh_pending());
  EXPECT_EQ(a->cpu_bounds().lower, 10);  // share fraction halved
}

TEST(NsMonitor, MemLimitChangeRefreshesLimits) {
  Fixture f;
  const auto ns = f.add_container("a");
  f.tree.set_mem_limit(ns->cgroup(), 2 * GiB);
  EXPECT_EQ(ns->mem_hard_limit(), static_cast<Bytes>(2) * GiB);
}

TEST(NsMonitor, DestroyUnregisters) {
  Fixture f;
  const auto ns = f.add_container("a");
  f.tree.destroy(ns->cgroup());
  EXPECT_EQ(f.monitor.registered_count(), 0u);
}

TEST(NsMonitor, PeriodicUpdatesFireAtSchedulingPeriod) {
  Fixture f;
  const auto ns = f.add_container("a");
  FakeConsumer busy(4);
  f.sched.attach(ns->cgroup(), &busy);
  // Scheduling period is 24 ms with <= 8 tasks -> ~41 updates per second.
  f.engine.run_for(1 * sec);
  EXPECT_GT(ns->cpu_updates(), 30u);
  EXPECT_LT(ns->cpu_updates(), 60u);
  EXPECT_EQ(ns->cpu_updates(), ns->mem_updates());
}

TEST(NsMonitor, EffectiveCpuTracksContention) {
  Fixture f;
  // b exists first so that a's view initializes at LOWER = 10 (line 6 of
  // Algorithm 1 runs at container creation against the current shares).
  const auto b = f.add_container("b");
  const auto a = f.add_container("a");
  // 12 busy threads on 20 CPUs: slack exists and a saturates its effective
  // CPUs, so E_a climbs from LOWER (10) until utilization falls under the
  // 95% threshold (~13).
  FakeConsumer busy_a(12);
  f.sched.attach(a->cgroup(), &busy_a);
  f.engine.run_for(2 * sec);
  EXPECT_GE(a->effective_cpus(), 12);
  EXPECT_LE(a->effective_cpus(), 14);
  // b wakes up and saturates the host: no slack anywhere, so both views
  // retreat to their guaranteed share (lines 14-15).
  FakeConsumer busy_b(20);
  f.sched.attach(b->cgroup(), &busy_b);
  f.engine.run_for(2 * sec);
  EXPECT_EQ(a->effective_cpus(), 10);
  EXPECT_EQ(b->effective_cpus(), 10);
}

TEST(NsMonitor, FixedUpdatePeriodOverridesSchedulingPeriod) {
  Fixture f;
  const auto ns = f.add_container("a");
  FakeConsumer busy(4);
  f.sched.attach(ns->cgroup(), &busy);
  f.monitor.set_fixed_update_period(100 * msec);
  f.engine.run_for(1 * sec);
  // ~10 updates instead of ~41 at the 24 ms scheduling period.
  EXPECT_GE(ns->cpu_updates(), 9u);
  EXPECT_LE(ns->cpu_updates(), 12u);
  // Restoring 0 returns to scheduling-period tracking.
  f.monitor.set_fixed_update_period(0);
  const auto before = ns->cpu_updates();
  f.engine.run_for(1 * sec);
  EXPECT_GT(ns->cpu_updates() - before, 30u);
}

TEST(NsMonitor, StaticViewRegistersButStaysStatic) {
  Fixture f;
  const auto cg = f.tree.create("lxcfs");
  Params params;
  params.cpu_policy = "static";
  params.mem_policy = "static";
  auto ns = std::make_shared<SysNamespace>(cg, params);
  f.monitor.register_ns(ns);
  EXPECT_EQ(ns->effective_cpus(), 20);  // upper bound = whole host, no limits
  FakeConsumer busy(20);
  f.sched.attach(cg, &busy);
  f.tree.create("peer");  // share fraction drops; static view ignores it
  f.engine.run_for(2 * sec);
  EXPECT_EQ(ns->effective_cpus(), 20);
}

TEST(NsMonitor, LateRegistrationWindowStartsAtRegistration) {
  Fixture f;
  f.tree.create("peer");  // share denominator: a's lower (10) < upper (20)
  f.engine.run_for(10 * sec);  // host runs long before the container starts
  const auto a = f.add_container("a");
  ASSERT_EQ(a->effective_cpus(), 10);
  FakeConsumer busy(12);
  f.sched.attach(a->cgroup(), &busy);
  // The first observation window must span registration -> first round
  // (milliseconds), not t=0 -> first round (10 s). 12 busy threads saturate
  // the e_cpu = 10 view, so Algorithm 1 grows it on the very first round; a
  // 10-second window would dilute utilization to ~0 and keep the view stuck.
  f.engine.run_for(30 * msec);
  ASSERT_GE(a->cpu_updates(), 1u);
  EXPECT_GT(a->effective_cpus(), 10);
}

TEST(NsMonitor, MonitorAttachedLateIgnoresHistoricSlack) {
  sim::Engine engine{1 * msec};
  cgroup::Tree tree(20);
  sched::FairScheduler sched(tree, 20);
  mem::MemoryManager mm(tree, Fixture::mem_config());
  engine.add_component(&sched);
  engine.add_component(&mm);
  engine.run_for(1 * sec);  // idle host: 20 CPU-seconds of slack accrue
  ASSERT_GT(sched.total_slack(), 0);

  NsMonitor monitor(engine, tree, sched, mm);
  engine.add_component(&monitor);
  const auto a_cg = tree.create("a");
  tree.create("b");  // a's lower bound (10) is below its upper (20)
  auto ns = std::make_shared<SysNamespace>(a_cg, Params{});
  monitor.register_ns(ns);
  ASSERT_EQ(ns->effective_cpus(), 10);
  // 30 threads saturate all 20 CPUs: from here on the host accrues NO slack.
  FakeConsumer busy(30);
  sched.attach(a_cg, &busy);
  engine.run_for(5 * msec);  // exactly one update round at this period
  ASSERT_GE(ns->cpu_updates(), 1u);
  // The idle second before the monitor existed must not read as "the host
  // had slack during my first window": the seeded baseline sees zero new
  // slack, so the view holds its guaranteed share instead of growing.
  EXPECT_EQ(ns->effective_cpus(), 10);
}

TEST(NsMonitor, CgroupDeletedWhileViewStillReferenced) {
  Fixture f;
  const auto a = f.add_container("a");
  const auto b = f.add_container("b");
  FakeConsumer busy(8);
  f.sched.attach(a->cgroup(), &busy);
  f.engine.run_for(1 * sec);
  const int frozen_cpus = a->effective_cpus();
  const Bytes frozen_mem = a->effective_memory();

  // A cluster-level consumer (placement, a pseudo-file render) may still
  // hold the view when the container dies. Destroying the cgroup must
  // unregister the namespace without invalidating the outstanding pointer.
  f.sched.detach(a->cgroup(), &busy);
  f.tree.destroy(a->cgroup());
  EXPECT_EQ(f.monitor.registered_count(), 1u);
  EXPECT_EQ(f.monitor.lookup(a->cgroup()), nullptr);

  // The orphaned view is frozen at its last state; update rounds neither
  // touch it nor trip over the missing cgroup.
  f.engine.run_for(1 * sec);
  EXPECT_EQ(a->effective_cpus(), frozen_cpus);
  EXPECT_EQ(a->effective_memory(), frozen_mem);
  EXPECT_GT(b->cpu_updates(), 0u);  // survivors keep updating
  EXPECT_EQ(f.monitor.views().size(), 1u);
}

TEST(NsMonitor, StallSkipsRoundsFreezesViewsThenCatchesUp) {
  Fixture f;
  f.add_container("peer");  // share denominator: a's lower < upper
  const auto a = f.add_container("a");
  FakeConsumer busy(16);
  f.sched.attach(a->cgroup(), &busy);
  f.engine.run_for(1 * sec);
  const auto updates_before = a->cpu_updates();
  const auto rounds_before = f.monitor.update_rounds();
  ASSERT_GT(updates_before, 0u);

  f.monitor.set_stalled(true);
  f.engine.run_for(1 * sec);
  EXPECT_EQ(f.monitor.update_rounds(), rounds_before);
  EXPECT_EQ(a->cpu_updates(), updates_before) << "stalled views must freeze";
  // 16 runnable tasks stretch the scheduling period to 48 ms (3 ms * nr),
  // so ~20 rounds were due across the stalled second.
  EXPECT_GT(f.monitor.stalled_rounds(), 15u);

  // Recovery: windows were not reset, so the first round spans the whole
  // stall and the view moves again immediately.
  f.monitor.set_stalled(false);
  f.engine.run_for(30 * msec);
  EXPECT_GT(a->cpu_updates(), updates_before);
  EXPECT_GT(f.monitor.update_rounds(), rounds_before);
}

// Property: whatever mix of stalls, forced rounds, registrations, and load
// shifts happens, every completed update round makes exactly one decision
// per namespace — the per-reason counters partition the update count.
TEST(NsMonitor, DecisionCountersSumToOnePerRoundUnderStalls) {
  Fixture f;
  std::vector<std::shared_ptr<SysNamespace>> views;
  std::vector<std::unique_ptr<FakeConsumer>> consumers;
  for (int i = 0; i < 3; ++i) {
    const auto ns = f.add_container("c" + std::to_string(i));
    views.push_back(ns);
    consumers.push_back(std::make_unique<FakeConsumer>(4 + 6 * i));
    f.sched.attach(ns->cgroup(), consumers.back().get());
  }
  // Alternate stalled and healthy windows; sprinkle forced rounds in both
  // (explicit update_all works even while the periodic path is wedged).
  for (int phase = 0; phase < 6; ++phase) {
    f.monitor.set_stalled(phase % 2 == 1);
    f.engine.run_for(300 * msec);
    f.monitor.update_all(f.engine.now());
  }
  f.monitor.set_stalled(false);
  f.engine.run_for(300 * msec);

  EXPECT_GT(f.monitor.stalled_rounds(), 0u);
  for (const auto& ns : views) {
    EXPECT_GT(ns->cpu_updates(), 0u);
    EXPECT_EQ(ns->cpu_decisions().total(), ns->cpu_updates())
        << "cpu decision reasons must partition the rounds";
    EXPECT_EQ(ns->mem_decisions().total(), ns->mem_updates())
        << "mem decision reasons must partition the rounds";
    EXPECT_EQ(ns->cpu_updates(), ns->mem_updates());
  }
}

TEST(NsMonitor, UpdateAllCanBeForcedManually) {
  Fixture f;
  const auto ns = f.add_container("a");
  const auto before = ns->cpu_updates();
  f.monitor.update_all(10 * msec);  // nonzero window since registration
  EXPECT_EQ(ns->cpu_updates(), before + 1);
  EXPECT_GE(f.monitor.update_rounds(), 1u);
}

}  // namespace
}  // namespace arv::core
