// The §3.2 update-timer coupling: the Ns_Monitor interval must stretch and
// shrink with the scheduler's period as the runnable task count changes.
#include <gtest/gtest.h>

#include "src/core/ns_monitor.h"
#include "src/sim/engine.h"
#include "tests/testing/fake_consumer.h"

namespace arv::core {
namespace {

using arv::testing::FakeConsumer;
using namespace arv::units;

struct Fixture {
  Fixture()
      : tree(20), sched(tree, 20), mm(tree, mem_config()),
        monitor(engine, tree, sched, mm) {
    engine.add_component(&sched);
    engine.add_component(&mm);
    engine.add_component(&monitor);
  }

  static mem::Config mem_config() {
    mem::Config config;
    config.total_ram = 32 * GiB;
    return config;
  }

  sim::Engine engine{1 * msec};
  cgroup::Tree tree;
  sched::FairScheduler sched;
  mem::MemoryManager mm;
  NsMonitor monitor;
};

TEST(UpdateTimer, IntervalStretchesWithRunnableTasks) {
  Fixture f;
  const auto cg = f.tree.create("a");
  auto ns = std::make_shared<SysNamespace>(cg, Params{});
  f.monitor.register_ns(ns);
  FakeConsumer light(4);
  f.sched.attach(cg, &light);
  f.engine.run_for(1 * sec);
  const auto updates_light = ns->cpu_updates();  // ~1s / 24ms ≈ 41

  light.set_threads(32);  // period becomes 3ms * 32 = 96ms
  const auto base = ns->cpu_updates();
  f.engine.run_for(1 * sec);
  const auto updates_heavy = ns->cpu_updates() - base;
  EXPECT_GT(updates_light, 3 * updates_heavy);
}

TEST(UpdateTimer, IntervalShrinksBackWhenLoadDrops) {
  Fixture f;
  const auto cg = f.tree.create("a");
  auto ns = std::make_shared<SysNamespace>(cg, Params{});
  f.monitor.register_ns(ns);
  FakeConsumer heavy(64);
  f.sched.attach(cg, &heavy);
  f.engine.run_for(1 * sec);
  heavy.set_threads(2);
  const auto base = ns->cpu_updates();
  f.engine.run_for(1 * sec);
  // Back at the 24 ms period: ~41 updates a second again.
  EXPECT_GT(ns->cpu_updates() - base, 30u);
}

TEST(UpdateTimer, EveryRegisteredViewUpdatedEachRound) {
  Fixture f;
  std::vector<std::shared_ptr<SysNamespace>> views;
  for (int i = 0; i < 6; ++i) {
    const auto cg = f.tree.create("c" + std::to_string(i));
    views.push_back(std::make_shared<SysNamespace>(cg, Params{}));
    f.monitor.register_ns(views.back());
  }
  f.engine.run_for(500 * msec);
  const auto expected = views.front()->cpu_updates();
  EXPECT_GT(expected, 0u);
  for (const auto& view : views) {
    EXPECT_EQ(view->cpu_updates(), expected);
  }
}

TEST(UpdateTimer, LateRegistrationCatchesTheNextRound) {
  Fixture f;
  f.engine.run_for(500 * msec);
  const auto cg = f.tree.create("late");
  auto ns = std::make_shared<SysNamespace>(cg, Params{});
  f.monitor.register_ns(ns);
  f.engine.run_for(100 * msec);
  EXPECT_GE(ns->cpu_updates(), 2u);
}

}  // namespace
}  // namespace arv::core
