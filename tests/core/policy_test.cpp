// Unit tests for the pluggable adaptation-policy layer: the registry, the
// decision-reason bookkeeping, and the behavioural contracts of the four
// built-in policies as seen through SysNamespace.
#include "src/core/policy.h"

#include <gtest/gtest.h>

#include "src/core/sys_namespace.h"

namespace arv::core {
namespace {

using namespace arv::units;

constexpr SimDuration kWindow = 24 * msec;

CpuObservation cpu_obs(double utilization, int e_cpu, bool slack) {
  CpuObservation obs;
  obs.window = kWindow;
  obs.usage = static_cast<CpuTime>(utilization * static_cast<double>(e_cpu) *
                                   static_cast<double>(kWindow));
  obs.host_has_slack = slack;
  return obs;
}

MemObservation calm_mem(Bytes free, Bytes usage) {
  MemObservation obs;
  obs.free = free;
  obs.usage = usage;
  obs.kswapd_active = false;
  obs.low_mark = 1 * GiB;
  obs.high_mark = 2 * GiB;
  return obs;
}

MemObservation pressured_mem() {
  MemObservation obs;
  obs.free = 512 * MiB;
  obs.usage = 4 * GiB;
  obs.kswapd_active = true;
  obs.low_mark = 1 * GiB;
  obs.high_mark = 2 * GiB;
  return obs;
}

struct Fixture {
  explicit Fixture(int cpus = 20) : tree(cpus) {}

  std::shared_ptr<SysNamespace> make(cgroup::CgroupId id, Params params = {}) {
    auto ns = std::make_shared<SysNamespace>(id, params);
    ns->refresh_cpu_bounds(tree);
    return ns;
  }

  cgroup::Tree tree;
};

// --- the registry -----------------------------------------------------------

TEST(PolicyRegistry, BuiltinsAreRegistered) {
  auto& registry = PolicyRegistry::instance();
  for (const char* name : {"paper", "static", "ewma", "proportional"}) {
    EXPECT_TRUE(registry.has_cpu(name)) << name;
    EXPECT_TRUE(registry.has_mem(name)) << name;
  }
  EXPECT_GE(registry.cpu_names().size(), 4u);
  EXPECT_EQ(registry.cpu_names().size(), registry.mem_names().size());
}

TEST(PolicyRegistry, UnknownNamesMakeNullptr) {
  auto& registry = PolicyRegistry::instance();
  EXPECT_FALSE(registry.has_cpu("bogus"));
  EXPECT_EQ(registry.make_cpu("bogus", Params{}), nullptr);
  EXPECT_EQ(registry.make_mem("bogus", Params{}), nullptr);
}

TEST(PolicyRegistry, InstancesReportTheirName) {
  auto& registry = PolicyRegistry::instance();
  for (const auto& name : registry.cpu_names()) {
    EXPECT_EQ(registry.make_cpu(name, Params{})->name(), name);
    EXPECT_EQ(registry.make_mem(name, Params{})->name(), name);
  }
}

TEST(PolicyRegistry, OnlyStaticIsNonAdaptive) {
  auto& registry = PolicyRegistry::instance();
  EXPECT_FALSE(registry.make_cpu("static", Params{})->adaptive());
  EXPECT_FALSE(registry.make_mem("static", Params{})->adaptive());
  EXPECT_TRUE(registry.make_cpu("paper", Params{})->adaptive());
  EXPECT_TRUE(registry.make_mem("paper", Params{})->adaptive());
}

// --- decision bookkeeping ---------------------------------------------------

TEST(Decisions, NamesAreStable) {
  EXPECT_STREQ(decision_name(Decision::kHeld), "held");
  EXPECT_STREQ(decision_name(Decision::kGrew), "grew");
  EXPECT_STREQ(decision_name(Decision::kShrank), "shrank");
  EXPECT_STREQ(decision_name(Decision::kClamped), "clamped");
  EXPECT_STREQ(decision_name(Decision::kReset), "reset");
}

TEST(Decisions, CountersTallyPerReason) {
  DecisionCounters counters;
  counters.count(Decision::kGrew);
  counters.count(Decision::kGrew);
  counters.count(Decision::kReset);
  EXPECT_EQ(counters.grew, 2u);
  EXPECT_EQ(counters.reset, 1u);
  EXPECT_EQ(counters.total(), 3u);
}

TEST(Decisions, EveryUpdateRoundIsCounted) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.create("b");  // lower 10, upper 20
  const auto ns = f.make(a);
  for (int i = 0; i < 7; ++i) {
    ns->update_cpu(cpu_obs(0.99, ns->effective_cpus(), true));
  }
  EXPECT_EQ(ns->cpu_decisions().total(), ns->cpu_updates());
  EXPECT_EQ(ns->cpu_decisions().grew, 7u);  // 10 -> 17, all real growth
}

TEST(Decisions, GrowthAgainstTheUpperBoundCountsAsClamped) {
  Fixture f;
  const auto a = f.tree.create("a");
  const auto ns = f.make(a);  // single container: lower = upper = 20
  ASSERT_EQ(ns->effective_cpus(), 20);
  ns->update_cpu(cpu_obs(0.99, 20, true));  // wants 21, bounds say 20
  EXPECT_EQ(ns->effective_cpus(), 20);
  EXPECT_EQ(ns->cpu_decisions().clamped, 1u);
  EXPECT_EQ(ns->cpu_decisions().grew, 0u);
}

TEST(Decisions, KswapdResetIsCounted) {
  Fixture f;
  const auto cg = f.tree.create("a");
  f.tree.set_mem_limit(cg, 4 * GiB);
  f.tree.set_mem_soft_limit(cg, 1 * GiB);
  const auto ns = f.make(cg);
  ns->refresh_mem_limits(f.tree, 128 * GiB);
  ns->update_mem(pressured_mem());
  EXPECT_EQ(ns->effective_memory(), static_cast<Bytes>(1) * GiB);
  EXPECT_EQ(ns->mem_decisions().reset, 1u);
}

// --- runtime policy switching ----------------------------------------------

TEST(PolicySwitch, SwitchToStaticRepinsImmediately) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.create("b");  // lower 10, upper 20
  const auto ns = f.make(a);
  ASSERT_EQ(ns->effective_cpus(), 10);  // paper: starts at LOWER
  ASSERT_TRUE(ns->set_cpu_policy("static"));
  EXPECT_EQ(ns->cpu_policy_name(), "static");
  // Not lazily at the next cgroup event — right now.
  EXPECT_EQ(ns->effective_cpus(), 20);
}

TEST(PolicySwitch, SwitchBackToPaperKeepsValueAndAdapts) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.create("b");
  const auto ns = f.make(a);
  ASSERT_TRUE(ns->set_cpu_policy("static"));
  ASSERT_EQ(ns->effective_cpus(), 20);
  ASSERT_TRUE(ns->set_cpu_policy("paper"));
  // The adaptive state resumes from the current value, inside bounds...
  EXPECT_EQ(ns->effective_cpus(), 20);
  // ...and reacts to contention again.
  ns->update_cpu(cpu_obs(0.99, 20, false));
  EXPECT_EQ(ns->effective_cpus(), 19);
}

TEST(PolicySwitch, UnknownPolicyIsRejectedWithoutSideEffects) {
  Fixture f;
  const auto a = f.tree.create("a");
  const auto ns = f.make(a);
  EXPECT_FALSE(ns->set_cpu_policy("bogus"));
  EXPECT_FALSE(ns->set_mem_policy(""));
  EXPECT_EQ(ns->cpu_policy_name(), "paper");
  EXPECT_EQ(ns->mem_policy_name(), "paper");
}

TEST(PolicySwitch, SetParamsRejectsInvalidKnobs) {
  Fixture f;
  const auto a = f.tree.create("a");
  const auto ns = f.make(a);
  Params bad;
  bad.cpu_step = 0;
  EXPECT_FALSE(ns->set_params(bad));
  bad = Params{};
  bad.cpu_util_threshold = 1.5;
  EXPECT_FALSE(ns->set_params(bad));
  bad = Params{};
  bad.mem_growth_frac = 0.0;
  EXPECT_FALSE(ns->set_params(bad));
  bad = Params{};
  bad.cpu_policy = "bogus";
  EXPECT_FALSE(ns->set_params(bad));
  EXPECT_EQ(ns->params().cpu_step, 1);  // unchanged throughout

  Params good;
  good.cpu_step = 3;
  EXPECT_TRUE(ns->set_params(good));
  EXPECT_EQ(ns->params().cpu_step, 3);
}

// --- the "static" comparator ------------------------------------------------

TEST(StaticPolicy, PinsMemoryToHardLimitAfterRuntimeLimitUpdate) {
  // The satellite regression: LXCFS follows `docker update`, so a runtime
  // memory.limit_in_bytes change must re-pin e_mem to the *new* hard limit,
  // not leave the value from construction.
  Fixture f;
  const auto cg = f.tree.create("a");
  f.tree.set_mem_limit(cg, 4 * GiB);
  f.tree.set_mem_soft_limit(cg, 1 * GiB);
  Params params;
  params.cpu_policy = "static";
  params.mem_policy = "static";
  const auto ns = f.make(cg, params);
  ns->refresh_mem_limits(f.tree, 128 * GiB);
  ASSERT_EQ(ns->effective_memory(), static_cast<Bytes>(4) * GiB);
  // Mid-run administrator change, both directions.
  f.tree.set_mem_limit(cg, 8 * GiB);
  ns->refresh_mem_limits(f.tree, 128 * GiB);
  EXPECT_EQ(ns->effective_memory(), static_cast<Bytes>(8) * GiB);
  f.tree.set_mem_limit(cg, 2 * GiB);
  ns->refresh_mem_limits(f.tree, 128 * GiB);
  EXPECT_EQ(ns->effective_memory(), static_cast<Bytes>(2) * GiB);
}

TEST(StaticPolicy, UpdatesNeverMoveTheView) {
  Fixture f;
  const auto cg = f.tree.create("a");
  f.tree.set_mem_limit(cg, 4 * GiB);
  f.tree.set_mem_soft_limit(cg, 1 * GiB);
  Params params;
  params.cpu_policy = "static";
  params.mem_policy = "static";
  const auto ns = f.make(cg, params);
  ns->refresh_mem_limits(f.tree, 128 * GiB);
  for (int i = 0; i < 20; ++i) {
    ns->update_cpu(cpu_obs(0.99, ns->effective_cpus(), i % 2 == 0));
    ns->update_mem(i % 2 == 0 ? pressured_mem()
                              : calm_mem(60 * GiB, 4 * GiB));
  }
  EXPECT_EQ(ns->effective_cpus(), 20);
  EXPECT_EQ(ns->effective_memory(), static_cast<Bytes>(4) * GiB);
  EXPECT_EQ(ns->cpu_decisions().held, 20u);
  EXPECT_EQ(ns->mem_decisions().held, 20u);
}

// --- the "ewma" policy ------------------------------------------------------

TEST(EwmaPolicy, OneBusyWindowDoesNotGrowASmoothedIdleView) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.create("b");  // lower 10, upper 20
  Params params;
  params.cpu_policy = "ewma";
  const auto ns = f.make(a, params);
  // Long idle: the EWMA settles near zero (and e_cpu rests at lower).
  for (int i = 0; i < 20; ++i) {
    ns->update_cpu(cpu_obs(0.0, ns->effective_cpus(), true));
  }
  ASSERT_EQ(ns->effective_cpus(), 10);
  // The paper policy would grow on this single 99% burst; the smoothed view
  // (0.3 * 0.99 ~= 0.30 < 0.95) holds through it.
  ns->update_cpu(cpu_obs(0.99, 10, true));
  EXPECT_EQ(ns->effective_cpus(), 10);
  // Sustained saturation does pull the EWMA over the threshold eventually.
  for (int i = 0; i < 20; ++i) {
    ns->update_cpu(cpu_obs(0.99, ns->effective_cpus(), true));
  }
  EXPECT_GT(ns->effective_cpus(), 10);
}

TEST(EwmaPolicy, ReleasesCpusOnSustainedIdleEvenWithSlack) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.create("b");
  Params params;
  params.cpu_policy = "ewma";
  const auto ns = f.make(a, params);
  // Grow to the top first.
  for (int i = 0; i < 40; ++i) {
    ns->update_cpu(cpu_obs(0.99, ns->effective_cpus(), true));
  }
  ASSERT_EQ(ns->effective_cpus(), 20);
  // The paper policy never shrinks while the host has slack; the hysteresis
  // policy hands unused CPUs back once smoothed utilization sinks below the
  // down threshold.
  for (int i = 0; i < 40; ++i) {
    ns->update_cpu(cpu_obs(0.0, ns->effective_cpus(), true));
  }
  EXPECT_EQ(ns->effective_cpus(), 10);
}

// --- the "proportional" policy ----------------------------------------------

TEST(ProportionalPolicy, StepsScaleWithUtilizationError) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.create("b");  // lower 10, upper 20
  Params params;
  params.cpu_policy = "proportional";
  const auto ns = f.make(a, params);
  ASSERT_EQ(ns->effective_cpus(), 10);
  // Pegged at 100%: error = (1.0 - 0.95)/0.05 = 1.0, step = prop_gain = 4.
  ns->update_cpu(cpu_obs(1.0, 10, true));
  EXPECT_EQ(ns->effective_cpus(), 14);
  // Barely over threshold: error ~ 0.2, step rounds to 1.
  ns->update_cpu(cpu_obs(0.96, 14, true));
  EXPECT_EQ(ns->effective_cpus(), 15);
}

TEST(ProportionalPolicy, BacksOffGeometricallyUnderSaturation) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.tree.create("b");  // lower 10, upper 20
  Params params;
  params.cpu_policy = "proportional";
  const auto ns = f.make(a, params);
  for (int i = 0; i < 10; ++i) {
    ns->update_cpu(cpu_obs(1.0, ns->effective_cpus(), true));
  }
  ASSERT_EQ(ns->effective_cpus(), 20);
  ns->update_cpu(cpu_obs(1.0, 20, false));
  EXPECT_EQ(ns->effective_cpus(), 15);  // halves the overshoot above lower
  ns->update_cpu(cpu_obs(1.0, 15, false));
  EXPECT_EQ(ns->effective_cpus(), 12);
  while (ns->effective_cpus() > 10) {
    const int before = ns->effective_cpus();
    ns->update_cpu(cpu_obs(1.0, before, false));
    ASSERT_LT(ns->effective_cpus(), before);  // monotone convergence to lower
  }
  EXPECT_EQ(ns->effective_cpus(), 10);
}

}  // namespace
}  // namespace arv::core
