#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace arv::sim {
namespace {

class Recorder : public TickComponent {
 public:
  explicit Recorder(std::string tag, std::vector<std::string>* log)
      : tag_(std::move(tag)), log_(log) {}
  void tick(SimTime now, SimDuration) override {
    log_->push_back(tag_ + "@" + std::to_string(now));
    ticks_ += 1;
  }
  std::string name() const override { return tag_; }
  int ticks() const { return ticks_; }

 private:
  std::string tag_;
  std::vector<std::string>* log_;
  int ticks_ = 0;
};

TEST(Engine, ClockAdvancesByTick) {
  Engine engine(1000);
  EXPECT_EQ(engine.now(), 0);
  engine.step();
  EXPECT_EQ(engine.now(), 1000);
  engine.step();
  EXPECT_EQ(engine.now(), 2000);
  EXPECT_EQ(engine.ticks_executed(), 2u);
}

TEST(Engine, RunForRoundsUpToWholeTicks) {
  Engine engine(1000);
  engine.run_for(2500);
  EXPECT_EQ(engine.now(), 3000);
}

TEST(Engine, ComponentsTickInRegistrationOrder) {
  Engine engine(1000);
  std::vector<std::string> log;
  Recorder a("a", &log);
  Recorder b("b", &log);
  engine.add_component(&a);
  engine.add_component(&b);
  engine.step();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "a@1000");
  EXPECT_EQ(log[1], "b@1000");
}

TEST(Engine, RemoveComponentStopsTicks) {
  Engine engine(1000);
  std::vector<std::string> log;
  Recorder a("a", &log);
  engine.add_component(&a);
  engine.step();
  engine.remove_component(&a);
  engine.step();
  EXPECT_EQ(a.ticks(), 1);
}

TEST(Engine, EventsFireAtDueTick) {
  Engine engine(1000);
  std::vector<SimTime> fired;
  engine.schedule_at(1500, [&] { fired.push_back(engine.now()); });
  engine.step();  // now = 1000, event not yet due
  EXPECT_TRUE(fired.empty());
  engine.step();  // now = 2000 >= 1500
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 2000);
}

TEST(Engine, EventsFireInTimeThenFifoOrder) {
  Engine engine(1000);
  std::vector<int> order;
  engine.schedule_at(900, [&] { order.push_back(2); });
  engine.schedule_at(500, [&] { order.push_back(1); });
  engine.schedule_at(900, [&] { order.push_back(3); });
  engine.step();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EventMayScheduleFurtherEvents) {
  Engine engine(1000);
  int fired = 0;
  engine.schedule_after(500, [&] {
    ++fired;
    engine.schedule_after(1000, [&] { ++fired; });
  });
  engine.run_for(3000);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine engine(1000);
  engine.run_for(5000);
  SimTime seen = -1;
  engine.schedule_after(2000, [&] { seen = engine.now(); });
  engine.run_for(3000);
  EXPECT_EQ(seen, 7000);
}

TEST(Engine, RunUntilPredicate) {
  Engine engine(1000);
  int counter = 0;
  engine.schedule_at(4000, [&] { counter = 1; });
  const bool hit = engine.run_until([&] { return counter == 1; }, 100000);
  EXPECT_TRUE(hit);
  EXPECT_EQ(engine.now(), 4000);
}

TEST(Engine, RunUntilDeadlineExpires) {
  Engine engine(1000);
  const bool hit = engine.run_until([] { return false; }, 5000);
  EXPECT_FALSE(hit);
  EXPECT_EQ(engine.now(), 5000);
}

TEST(Engine, PendingEventsCount) {
  Engine engine(1000);
  engine.schedule_at(10000, [] {});
  engine.schedule_at(20000, [] {});
  EXPECT_EQ(engine.pending_events(), 2u);
  engine.run_for(10000);
  EXPECT_EQ(engine.pending_events(), 1u);
}

// Runs an action on its Nth tick — for removal-during-dispatch tests.
class Trigger : public TickComponent {
 public:
  Trigger(int fire_on, std::function<void()> action)
      : fire_on_(fire_on), action_(std::move(action)) {}
  void tick(SimTime, SimDuration) override {
    if (++ticks_ == fire_on_) {
      action_();
    }
  }
  std::string name() const override { return "trigger"; }
  int ticks() const { return ticks_; }

 private:
  int fire_on_;
  std::function<void()> action_;
  int ticks_ = 0;
};

class Periodic : public TickComponent {
 public:
  explicit Periodic(SimDuration period) : period_(period) {}
  void tick(SimTime now, SimDuration dt) override {
    times_.push_back(now);
    dts_.push_back(dt);
  }
  SimDuration tick_period() const override { return period_; }
  std::string name() const override { return "periodic"; }
  void set_period(SimDuration period) { period_ = period; }
  const std::vector<SimTime>& times() const { return times_; }
  const std::vector<SimDuration>& dts() const { return dts_; }

 private:
  SimDuration period_;
  std::vector<SimTime> times_;
  std::vector<SimDuration> dts_;
};

TEST(Engine, ComponentMayRemoveItselfDuringTick) {
  Engine engine(1000);
  Trigger* self = nullptr;
  Trigger suicidal(2, [&] { engine.remove_component(self); });
  self = &suicidal;
  engine.add_component(&suicidal);
  engine.run_for(5000);  // must not crash or double-dispatch
  EXPECT_EQ(suicidal.ticks(), 2);
  EXPECT_EQ(engine.component_count(), 0u);
}

TEST(Engine, ComponentMayRemoveLaterComponentDuringTick) {
  Engine engine(1000);
  std::vector<std::string> log;
  Recorder victim("victim", &log);
  // Registered first, so it runs before `victim` in the same tick; the
  // removal must keep `victim` from being dispatched later that tick.
  Trigger assassin(1, [&] { engine.remove_component(&victim); });
  engine.add_component(&assassin);
  engine.add_component(&victim);
  engine.run_for(3000);
  EXPECT_EQ(victim.ticks(), 0);
}

TEST(Engine, ReAddedComponentTicksAgain) {
  Engine engine(1000);
  std::vector<std::string> log;
  Recorder a("a", &log);
  engine.add_component(&a);
  engine.step();
  engine.remove_component(&a);
  engine.add_component(&a);
  engine.step();
  EXPECT_EQ(a.ticks(), 2);
}

TEST(Engine, PeriodicComponentFiresAtItsPeriod) {
  Engine engine(1000);
  Periodic slow(3000);
  engine.add_component(&slow);
  engine.run_for(10000);
  // First dispatch at the tick after registration, then every period.
  EXPECT_EQ(slow.times(), (std::vector<SimTime>{1000, 4000, 7000, 10000}));
  EXPECT_EQ(slow.dts(), (std::vector<SimDuration>{1000, 3000, 3000, 3000}));
}

TEST(Engine, PeriodIsReQueriedAfterEachDispatch) {
  Engine engine(1000);
  Periodic dynamic(1000);
  engine.add_component(&dynamic);
  engine.run_for(3000);  // fires at 1000, 2000, 3000
  dynamic.set_period(4000);
  // The dispatch at 4000 was queued with the old period; the new period is
  // picked up when it fires, so the following dispatch lands at 8000.
  engine.run_for(8000);
  EXPECT_EQ(dynamic.times(),
            (std::vector<SimTime>{1000, 2000, 3000, 4000, 8000}));
}

TEST(Engine, SubTickPeriodClampsToTickLength) {
  Engine engine(1000);
  Periodic eager(1);  // wants sub-tick cadence; engine can't go finer
  engine.add_component(&eager);
  engine.run_for(3000);
  EXPECT_EQ(eager.times(), (std::vector<SimTime>{1000, 2000, 3000}));
}

TEST(Engine, AdvanceClockJumpsWithoutDispatching) {
  Engine engine(1000);
  std::vector<std::string> log;
  Recorder a("a", &log);
  engine.add_component(&a);
  engine.advance_clock(5000);
  EXPECT_EQ(engine.now(), 5000);
  EXPECT_EQ(engine.ticks_executed(), 5u);
  EXPECT_TRUE(log.empty()) << "a jump must not dispatch anything";
  engine.advance_clock(5000);  // no-op jump to the present
  EXPECT_EQ(engine.now(), 5000);
}

TEST(Engine, AdvanceClockRetimesOverdueDispatchEntries) {
  Engine engine(1000);
  Periodic every(0);      // due every tick
  Periodic sparse(10000); // periodic, due at 10000
  engine.add_component(&every);
  engine.add_component(&sparse);
  engine.advance_clock(4000);
  engine.step();  // now = 5000
  // The per-tick component resumes with dt = one tick — `last` was reset to
  // the jump target, so the frozen gap is not double-counted into dt (the
  // caller accounts for the gap analytically instead).
  EXPECT_EQ(every.times(), (std::vector<SimTime>{5000}));
  EXPECT_EQ(every.dts(), (std::vector<SimDuration>{1000}));
  // The sparse component's *first* dispatch (due the tick after
  // registration, per the engine's first-dispatch rule) also fell inside
  // the gap, so it too was re-timed to the tick after the jump; its period
  // governs from there.
  engine.run_for(10000);  // now = 15000
  EXPECT_EQ(sparse.times(), (std::vector<SimTime>{5000, 15000}));
  EXPECT_EQ(sparse.dts(), (std::vector<SimDuration>{1000, 10000}));
}

TEST(Engine, AdvanceClockRefusesToSkipDueEvents) {
  Engine engine(1000);
  engine.schedule_at(3000, [] {});
  engine.advance_clock(2000);  // up to (not past) the event is fine
  EXPECT_EQ(engine.now(), 2000);
  EXPECT_DEATH(engine.advance_clock(4000), "due one-shot event");
}

TEST(Engine, SelfReschedulingTimerPattern) {
  Engine engine(1000);
  int fires = 0;
  std::function<void()> reschedule = [&] {
    ++fires;
    if (fires < 5) {
      engine.schedule_after(2000, reschedule);
    }
  };
  engine.schedule_after(2000, reschedule);
  engine.run_for(20000);
  EXPECT_EQ(fires, 5);
}

}  // namespace
}  // namespace arv::sim
