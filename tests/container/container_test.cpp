#include "src/container/container.h"

#include <gtest/gtest.h>

namespace arv::container {
namespace {

using namespace arv::units;

struct Fixture {
  Fixture() : host(config()), runtime(host) {}

  static HostConfig config() {
    HostConfig c;
    c.cpus = 8;
    c.ram = 16 * GiB;
    return c;
  }

  Host host;
  ContainerRuntime runtime;
};

TEST(Container, RunCreatesCgroupWithLimits) {
  Fixture f;
  ContainerConfig config;
  config.name = "db";
  config.cpu_shares = 512;
  config.cfs_quota_us = 200000;
  config.cpuset = CpuSet::first_n(4);
  config.mem_limit = 4 * GiB;
  config.mem_soft_limit = 2 * GiB;
  auto& c = f.runtime.run(config);
  const auto& cg = f.host.cgroups().get(c.cgroup());
  EXPECT_EQ(cg.name(), "db");
  EXPECT_EQ(cg.cpu().shares, 512);
  EXPECT_EQ(cg.cpu().cfs_quota_us, 200000);
  EXPECT_EQ(cg.cpu().cpuset.count(), 4);
  EXPECT_EQ(cg.mem().limit_in_bytes, 4 * GiB);
  EXPECT_EQ(cg.mem().soft_limit_in_bytes, 2 * GiB);
}

TEST(Container, InitProcessAliveAndInNamespaces) {
  Fixture f;
  auto& c = f.runtime.run({});
  auto& processes = f.host.processes();
  EXPECT_TRUE(processes.alive(c.init_pid()));
  EXPECT_TRUE(processes.in_container(c.init_pid()));
  // The bootstrap init is dead; the workload owns the namespaces (§3.2).
  const auto sys_ns =
      processes.namespace_of(c.init_pid(), proc::Namespace::Kind::kSys);
  ASSERT_NE(sys_ns, nullptr);
  EXPECT_EQ(sys_ns->owner(), c.init_pid());
  EXPECT_TRUE(processes.alive(sys_ns->owner()));
}

TEST(Container, ResourceViewRegisteredWithMonitor) {
  Fixture f;
  auto& c = f.runtime.run({});
  ASSERT_NE(c.resource_view(), nullptr);
  EXPECT_EQ(f.host.monitor().lookup(c.cgroup()), c.resource_view());
}

TEST(Container, ResourceViewOptional) {
  Fixture f;
  ContainerConfig config;
  config.enable_resource_view = false;
  auto& c = f.runtime.run(config);
  EXPECT_EQ(c.resource_view(), nullptr);
  EXPECT_EQ(f.host.monitor().registered_count(), 0u);
  EXPECT_FALSE(f.host.processes().in_container(c.init_pid()));
}

TEST(Container, SpawnProcessInheritsContainer) {
  Fixture f;
  auto& c = f.runtime.run({});
  const proc::Pid child = c.spawn_process("worker");
  EXPECT_EQ(f.host.processes().get(child).cgroup, c.cgroup());
  EXPECT_TRUE(f.host.processes().in_container(child));
  // Virtual PID assigned inside the container's PID namespace.
  const auto pid_ns = std::dynamic_pointer_cast<proc::PidNamespace>(
      f.host.processes().namespace_of(child, proc::Namespace::Kind::kPid));
  ASSERT_NE(pid_ns, nullptr);
  EXPECT_GT(pid_ns->vpid_of(child), 0);
}

TEST(Container, UpdateKnobsPropagateToView) {
  Fixture f;
  auto& c = f.runtime.run({});
  c.update_cfs_quota(200000);  // 2 CPUs
  EXPECT_EQ(c.resource_view()->cpu_bounds().upper, 2);
  c.update_mem_limit(1 * GiB);
  EXPECT_EQ(c.resource_view()->mem_hard_limit(), static_cast<Bytes>(1) * GiB);
  c.update_cpu_shares(256);
  EXPECT_EQ(f.host.cgroups().get(c.cgroup()).cpu().shares, 256);
  c.update_cpuset(CpuSet::first_n(1));
  EXPECT_EQ(c.resource_view()->cpu_bounds().upper, 1);
  c.update_mem_soft_limit(512 * MiB);
  EXPECT_EQ(c.resource_view()->mem_soft_limit(), 512 * MiB);
}

TEST(Container, StopKillsTasksAndDestroysCgroup) {
  Fixture f;
  auto& c = f.runtime.run({});
  const auto cg = c.cgroup();
  const auto init = c.init_pid();
  c.spawn_process("worker");
  c.stop();
  EXPECT_FALSE(c.running());
  EXPECT_FALSE(f.host.cgroups().exists(cg));
  EXPECT_FALSE(f.host.processes().alive(init));
  EXPECT_EQ(f.host.monitor().registered_count(), 0u);
}

TEST(Container, StopReleasesChargedMemory) {
  Fixture f;
  auto& c = f.runtime.run({});
  f.host.memory().charge(c.cgroup(), 1 * GiB);
  const Bytes free_before_stop = f.host.memory().free_memory();
  c.stop();
  EXPECT_EQ(f.host.memory().free_memory(), free_before_stop + 1 * GiB);
}

TEST(Container, StopIsIdempotent) {
  Fixture f;
  auto& c = f.runtime.run({});
  c.stop();
  c.stop();  // no crash
  EXPECT_FALSE(c.running());
}

TEST(ContainerRuntime, FindByName) {
  Fixture f;
  ContainerConfig config;
  config.name = "x";
  f.runtime.run(config);
  EXPECT_NE(f.runtime.find("x"), nullptr);
  EXPECT_EQ(f.runtime.find("nope"), nullptr);
  EXPECT_EQ(f.runtime.count(), 1u);
}

TEST(ContainerRuntime, ManyContainersShareFractionUpdates) {
  Fixture f;
  auto& first = f.runtime.run({ .name = "c0" });
  EXPECT_EQ(first.resource_view()->cpu_bounds().lower, 8);
  for (int i = 1; i < 4; ++i) {
    ContainerConfig config;
    config.name = "c" + std::to_string(i);
    f.runtime.run(config);
  }
  // 4 equal containers on 8 CPUs: guaranteed share = 2. The peer ripple is
  // coalesced, so it lands at the next monitor update round, not inline in
  // run() — drive the engine past one scheduling period.
  f.host.engine().run_for(50 * msec);
  EXPECT_EQ(first.resource_view()->cpu_bounds().lower, 2);
}

}  // namespace
}  // namespace arv::container
