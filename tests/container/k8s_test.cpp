#include "src/container/k8s.h"

#include <gtest/gtest.h>

namespace arv::container {
namespace {

using namespace arv::units;

TEST(K8sMapping, SharesFromCpuRequest) {
  K8sResources r;
  r.request_millicpu = 500;  // "500m"
  const auto config = pod_container("web", r);
  EXPECT_EQ(config.cpu_shares, 512);  // 500 * 1024 / 1000
  EXPECT_EQ(config.cfs_quota_us, kUnlimited);
}

TEST(K8sMapping, TinyRequestClampsToKernelMinimum) {
  K8sResources r;
  r.request_millicpu = 1;
  EXPECT_EQ(pod_container("x", r).cpu_shares, 2);
}

TEST(K8sMapping, QuotaFromCpuLimit) {
  K8sResources r;
  r.limit_millicpu = 2500;  // "2.5" cores
  const auto config = pod_container("x", r);
  EXPECT_EQ(config.cfs_period_us, 100000);
  EXPECT_EQ(config.cfs_quota_us, 250000);
}

TEST(K8sMapping, MemoryLimitsMapToHardAndSoft) {
  K8sResources r;
  r.request_memory = 1 * GiB;
  r.limit_memory = 2 * GiB;
  const auto config = pod_container("x", r);
  EXPECT_EQ(config.mem_limit, 2 * GiB);
  EXPECT_EQ(config.mem_soft_limit, 1 * GiB);
}

TEST(K8sMapping, UnsetFieldsLeaveDefaults) {
  const auto config = pod_container("x", {});
  EXPECT_EQ(config.cpu_shares, 1024);
  EXPECT_EQ(config.cfs_quota_us, kUnlimited);
  EXPECT_EQ(config.mem_limit, kUnlimited);
}

TEST(K8sMapping, ViewToggle) {
  EXPECT_TRUE(pod_container("x", {}).enable_resource_view);
  EXPECT_FALSE(pod_container("x", {}, false).enable_resource_view);
}

TEST(K8sMapping, EndToEndPodOnHost) {
  Host host;
  ContainerRuntime runtime(host);
  K8sResources r;
  r.request_millicpu = 2000;
  r.limit_millicpu = 4000;
  r.request_memory = 2 * GiB;
  r.limit_memory = 4 * GiB;
  auto& c = runtime.run(pod_container("pod-a", r));
  // The view sees the quota (4 CPUs) as upper bound and the request as the
  // soft baseline for effective memory.
  EXPECT_EQ(c.resource_view()->cpu_bounds().upper, 4);
  EXPECT_EQ(c.resource_view()->effective_memory(), static_cast<Bytes>(2) * GiB);
}

TEST(K8sQos, Classes) {
  EXPECT_EQ(qos_class({}), QosClass::kBestEffort);
  K8sResources guaranteed;
  guaranteed.limit_millicpu = 1000;
  guaranteed.request_millicpu = 1000;
  guaranteed.limit_memory = 1 * GiB;
  EXPECT_EQ(qos_class(guaranteed), QosClass::kGuaranteed);
  K8sResources burstable;
  burstable.request_millicpu = 500;
  burstable.limit_millicpu = 1000;
  burstable.limit_memory = 1 * GiB;
  EXPECT_EQ(qos_class(burstable), QosClass::kBurstable);
  K8sResources requests_only;
  requests_only.request_millicpu = 500;
  EXPECT_EQ(qos_class(requests_only), QosClass::kBurstable);
}

TEST(K8sQuantities, CpuParsing) {
  EXPECT_EQ(parse_cpu_quantity("500m"), 500);
  EXPECT_EQ(parse_cpu_quantity("2"), 2000);
  EXPECT_EQ(parse_cpu_quantity("0.5"), 500);
  EXPECT_EQ(parse_cpu_quantity("1.25"), 1250);
  EXPECT_EQ(parse_cpu_quantity(""), -1);
  EXPECT_EQ(parse_cpu_quantity("abc"), -1);
  EXPECT_EQ(parse_cpu_quantity("-1"), -1);
}

TEST(K8sQuantities, MemoryParsing) {
  EXPECT_EQ(parse_memory_quantity("512Mi"), 512 * MiB);
  EXPECT_EQ(parse_memory_quantity("4Gi"), 4 * GiB);
  EXPECT_EQ(parse_memory_quantity("1Ki"), 1024);
  EXPECT_EQ(parse_memory_quantity("1G"), 1000000000);
  EXPECT_EQ(parse_memory_quantity("128"), 128);
  EXPECT_EQ(parse_memory_quantity("1.5Gi"), 1536 * MiB);
  EXPECT_EQ(parse_memory_quantity("Mi"), -1);
  EXPECT_EQ(parse_memory_quantity("5Xi"), -1);
  EXPECT_EQ(parse_memory_quantity(""), -1);
}

TEST(K8sMappingDeath, RequestAboveLimitRejected) {
  K8sResources r;
  r.request_millicpu = 2000;
  r.limit_millicpu = 1000;
  EXPECT_DEATH(pod_container("x", r), "request exceeds limit");
}

}  // namespace
}  // namespace arv::container
