#include "src/container/k8s.h"

#include <gtest/gtest.h>

namespace arv::container {
namespace {

using namespace arv::units;

TEST(K8sMapping, SharesFromCpuRequest) {
  K8sResources r;
  r.request_millicpu = 500;  // "500m"
  const auto config = pod_container("web", r);
  EXPECT_EQ(config.cpu_shares, 512);  // 500 * 1024 / 1000
  EXPECT_EQ(config.cfs_quota_us, kUnlimited);
}

TEST(K8sMapping, TinyRequestClampsToKernelMinimum) {
  K8sResources r;
  r.request_millicpu = 1;
  EXPECT_EQ(pod_container("x", r).cpu_shares, 2);
}

TEST(K8sMapping, QuotaFromCpuLimit) {
  K8sResources r;
  r.limit_millicpu = 2500;  // "2.5" cores
  const auto config = pod_container("x", r);
  EXPECT_EQ(config.cfs_period_us, 100000);
  EXPECT_EQ(config.cfs_quota_us, 250000);
}

TEST(K8sMapping, MemoryLimitsMapToHardAndSoft) {
  K8sResources r;
  r.request_memory = 1 * GiB;
  r.limit_memory = 2 * GiB;
  const auto config = pod_container("x", r);
  EXPECT_EQ(config.mem_limit, 2 * GiB);
  EXPECT_EQ(config.mem_soft_limit, 1 * GiB);
}

TEST(K8sMapping, UnsetFieldsLeaveDefaults) {
  const auto config = pod_container("x", {});
  EXPECT_EQ(config.cpu_shares, 1024);
  EXPECT_EQ(config.cfs_quota_us, kUnlimited);
  EXPECT_EQ(config.mem_limit, kUnlimited);
}

TEST(K8sMapping, ViewToggle) {
  EXPECT_TRUE(pod_container("x", {}).enable_resource_view);
  EXPECT_FALSE(pod_container("x", {}, false).enable_resource_view);
}

TEST(K8sMapping, EndToEndPodOnHost) {
  Host host;
  ContainerRuntime runtime(host);
  K8sResources r;
  r.request_millicpu = 2000;
  r.limit_millicpu = 4000;
  r.request_memory = 2 * GiB;
  r.limit_memory = 4 * GiB;
  auto& c = runtime.run(pod_container("pod-a", r));
  // The view sees the quota (4 CPUs) as upper bound and the request as the
  // soft baseline for effective memory.
  EXPECT_EQ(c.resource_view()->cpu_bounds().upper, 4);
  EXPECT_EQ(c.resource_view()->effective_memory(), static_cast<Bytes>(2) * GiB);
}

TEST(K8sQos, Classes) {
  EXPECT_EQ(qos_class({}), QosClass::kBestEffort);
  K8sResources guaranteed;
  guaranteed.limit_millicpu = 1000;
  guaranteed.request_millicpu = 1000;
  guaranteed.limit_memory = 1 * GiB;
  EXPECT_EQ(qos_class(guaranteed), QosClass::kGuaranteed);
  K8sResources burstable;
  burstable.request_millicpu = 500;
  burstable.limit_millicpu = 1000;
  burstable.limit_memory = 1 * GiB;
  EXPECT_EQ(qos_class(burstable), QosClass::kBurstable);
  K8sResources requests_only;
  requests_only.request_millicpu = 500;
  EXPECT_EQ(qos_class(requests_only), QosClass::kBurstable);
}

TEST(K8sQos, GuaranteedRequiresLimitsOnBothResources) {
  // CPU-only limits cannot be Guaranteed: the memory limit is missing.
  K8sResources cpu_only;
  cpu_only.limit_millicpu = 1000;
  cpu_only.request_millicpu = 1000;
  EXPECT_EQ(qos_class(cpu_only), QosClass::kBurstable);
  K8sResources mem_only;
  mem_only.limit_memory = 1 * GiB;
  EXPECT_EQ(qos_class(mem_only), QosClass::kBurstable);
}

TEST(K8sQos, GuaranteedWithRequestsDefaultedFromLimits) {
  // Kubernetes defaults unset requests to the limits, so limits-only pods
  // are Guaranteed even though no request was written.
  K8sResources limits_only;
  limits_only.limit_millicpu = 2000;
  limits_only.limit_memory = 4 * GiB;
  EXPECT_EQ(qos_class(limits_only), QosClass::kGuaranteed);
}

TEST(K8sQos, RequestBelowLimitOnEitherResourceIsBurstable) {
  K8sResources cpu_gap;
  cpu_gap.request_millicpu = 500;
  cpu_gap.limit_millicpu = 1000;
  cpu_gap.request_memory = 1 * GiB;
  cpu_gap.limit_memory = 1 * GiB;
  EXPECT_EQ(qos_class(cpu_gap), QosClass::kBurstable);
  K8sResources mem_gap;
  mem_gap.request_millicpu = 1000;
  mem_gap.limit_millicpu = 1000;
  mem_gap.request_memory = 1 * GiB;
  mem_gap.limit_memory = 2 * GiB;
  EXPECT_EQ(qos_class(mem_gap), QosClass::kBurstable);
}

struct QuantityCase {
  const char* text;
  std::int64_t expect;
};

TEST(K8sQuantities, CpuParsing) {
  const QuantityCase kCases[] = {
      // Milli form and plain/fractional cores.
      {"500m", 500},
      {"250m", 250},
      {"0m", 0},
      {"2", 2000},
      {"0.5", 500},
      {"1.25", 1250},
      {"0.1", 100},
      // Decimal-exponent forms (valid Kubernetes quantities).
      {"1e2", 100000},
      {"2E1", 20000},
      {"5e-1", 500},
      // Malformed.
      {"", -1},
      {"abc", -1},
      {"-1", -1},
      {"-500m", -1},
      {"1..5", -1},
      {".", -1},
      {"1 ", -1},
      {" 1", -1},
      {"+1", -1},
      {"0x10", -1},
      {"inf", -1},
      {"nan", -1},
      {"2u", -1},
      {"1e", -1},
      // Overflow: must reject, never wrap negative.
      {"9223372036854775808", -1},
      {"1e300", -1},
  };
  for (const QuantityCase& c : kCases) {
    EXPECT_EQ(parse_cpu_quantity(c.text), c.expect) << "input: \"" << c.text
                                                    << "\"";
  }
}

TEST(K8sQuantities, MemoryParsing) {
  const QuantityCase kCases[] = {
      // Binary suffixes — the full Kubernetes set.
      {"1Ki", 1024},
      {"512Mi", 512 * MiB},
      {"4Gi", 4 * GiB},
      {"1.5Gi", 1536 * MiB},
      {"2Ti", 2LL * 1024 * GiB},
      {"1Pi", 1LL << 50},
      {"1Ei", 1LL << 60},
      // Decimal suffixes.
      {"1k", 1000},
      {"1K", 1000},
      {"5M", 5000000},
      {"1G", 1000000000},
      {"2T", 2000000000000LL},
      {"3P", 3000000000000000LL},
      {"1E", 1000000000000000000LL},
      // Plain bytes and exponent forms.
      {"128", 128},
      {"128974848e0", 128974848},
      {"1e9", 1000000000},
      {"1.5e3", 1500},
      {"12E6", 12000000},
      // Malformed.
      {"", -1},
      {"Mi", -1},
      {"5Xi", -1},
      {"1..5Gi", -1},
      {"-1Gi", -1},
      {"1e3Gi", -1},  // exponent and suffix cannot combine
      {"1 Gi", -1},
      {"1Gi ", -1},
      {"inf", -1},
      {"1e", -1},  // no exponent digits, and "e" is not a suffix
      // Overflow: must reject, never wrap negative.
      {"8Ei", -1},    // exactly 2^63
      {"16E", -1},
      {"9223372036854775808", -1},
      {"1e300", -1},
      {"10000000P", -1},
  };
  for (const QuantityCase& c : kCases) {
    EXPECT_EQ(parse_memory_quantity(c.text), c.expect) << "input: \"" << c.text
                                                       << "\"";
  }
}

TEST(K8sMappingDeath, RequestAboveLimitRejected) {
  K8sResources r;
  r.request_millicpu = 2000;
  r.limit_millicpu = 1000;
  EXPECT_DEATH(pod_container("x", r), "request exceeds limit");
}

}  // namespace
}  // namespace arv::container
