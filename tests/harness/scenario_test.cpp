#include "src/harness/scenario.h"

#include <gtest/gtest.h>

#include "src/workloads/java_suites.h"
#include "src/workloads/npb.h"

namespace arv::harness {
namespace {

using namespace arv::units;

jvm::JavaWorkload quick_java() {
  jvm::JavaWorkload w;
  w.name = "quick";
  w.total_work = 1 * sec;
  w.mutator_threads = 4;
  w.alloc_per_cpu_sec = 128 * MiB;
  w.live_set = 32 * MiB;
  return w;
}

TEST(JvmScenario, RunsSingleInstanceToCompletion) {
  JvmScenario scenario;
  JvmInstanceConfig config;
  config.container.name = "solo";
  config.flags.kind = jvm::JvmKind::kAdaptive;
  config.workload = quick_java();
  scenario.add(config);
  scenario.run();
  const auto results = scenario.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].container, "solo");
  EXPECT_EQ(results[0].benchmark, "quick");
  EXPECT_TRUE(results[0].stats.completed);
}

TEST(JvmScenario, RunsColocatedInstances) {
  JvmScenario scenario;
  for (int i = 0; i < 3; ++i) {
    JvmInstanceConfig config;
    config.container.name = "c" + std::to_string(i);
    config.flags.kind = jvm::JvmKind::kAdaptive;
    config.workload = quick_java();
    scenario.add(config);
  }
  scenario.run();
  for (const auto& result : scenario.results()) {
    EXPECT_TRUE(result.stats.completed) << result.container;
  }
  // Colocation slows everyone down relative to 20 idle cores, but all finish.
  EXPECT_EQ(scenario.size(), 3u);
}

TEST(JvmScenario, CpuHogCompetesForCpu) {
  const auto run_with_hog = [](bool hog) {
    JvmScenario scenario;
    JvmInstanceConfig config;
    config.container.name = "jvm";
    config.flags.kind = jvm::JvmKind::kAdaptive;
    config.workload = quick_java();
    // Demand more than the fair share so contention actually bites.
    config.workload.mutator_threads = 20;
    const auto idx = scenario.add(config);
    if (hog) {
      scenario.add_cpu_hog({}, 20, 3600 * sec);
    }
    scenario.run();
    return scenario.jvm(idx).stats().exec_time();
  };
  EXPECT_GT(run_with_hog(true), run_with_hog(false));
}

TEST(JvmScenario, MemHogCreatesPressure) {
  JvmScenario scenario;
  JvmInstanceConfig config;
  config.container.name = "jvm";
  config.flags.kind = jvm::JvmKind::kAdaptive;
  config.workload = quick_java();
  scenario.add(config);
  container::ContainerConfig hog_config;
  hog_config.name = "pressure";
  scenario.add_mem_hog(hog_config, 100 * GiB, 50 * GiB);
  scenario.run();
  ASSERT_NE(scenario.runtime().find("pressure"), nullptr);
  EXPECT_GT(scenario.host().memory().usage(
                scenario.runtime().find("pressure")->cgroup()),
            0);
}

TEST(JvmScenarioDeath, DeadlineAborts) {
  JvmScenario scenario;
  JvmInstanceConfig config;
  config.workload = quick_java();
  config.workload.total_work = 3600 * sec;
  scenario.add(config);
  EXPECT_DEATH(scenario.run(1 * sec), "deadline");
}

TEST(OmpScenario, RunsToCompletion) {
  OmpScenario scenario;
  OmpInstanceConfig config;
  config.container.name = "npb";
  config.strategy = omp::TeamStrategy::kAdaptive;
  config.workload.regions = 4;
  config.workload.region_work = 50 * msec;
  scenario.add(config);
  scenario.run();
  const auto results = scenario.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].stats.exec_time(), 0);
  EXPECT_EQ(results[0].stats.regions_done, 4);
}

TEST(HeapTimeline, SamplesAtInterval) {
  JvmScenario scenario;
  JvmInstanceConfig config;
  config.flags.kind = jvm::JvmKind::kAdaptive;
  config.workload = quick_java();
  const auto idx = scenario.add(config);
  HeapTimeline timeline(scenario.host(), scenario.jvm(idx), 100 * msec);
  scenario.host().run_for(1 * sec);
  // ~10 samples over one second.
  EXPECT_GE(timeline.samples().size(), 9u);
  EXPECT_LE(timeline.samples().size(), 11u);
  for (const auto& sample : timeline.samples()) {
    EXPECT_GE(sample.committed, sample.used);
    EXPECT_GE(sample.virtual_max, sample.committed);
  }
}

}  // namespace
}  // namespace arv::harness
