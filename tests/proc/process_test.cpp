#include "src/proc/process.h"

#include <gtest/gtest.h>

namespace arv::proc {
namespace {

TEST(PidNamespace, AssignsSequentialVpids) {
  PidNamespace ns;
  EXPECT_EQ(ns.assign_vpid(100), 1);
  EXPECT_EQ(ns.assign_vpid(200), 2);
  EXPECT_EQ(ns.vpid_of(100), 1);
  EXPECT_EQ(ns.host_of(2), 200);
}

TEST(PidNamespace, RemoveAndUnknownLookups) {
  PidNamespace ns;
  ns.assign_vpid(100);
  ns.remove(100);
  EXPECT_EQ(ns.vpid_of(100), -1);
  EXPECT_EQ(ns.host_of(1), -1);
  EXPECT_EQ(ns.size(), 0u);
  ns.remove(999);  // no-op
}

TEST(ProcessTable, HostInitExists) {
  ProcessTable table;
  EXPECT_TRUE(table.alive(kHostInit));
  EXPECT_EQ(table.get(kHostInit).comm, "init");
  EXPECT_EQ(table.live_count(), 1u);
}

TEST(ProcessTable, ForkInheritsCgroupAndComm) {
  ProcessTable table;
  const Pid child = table.fork(kHostInit);
  EXPECT_TRUE(table.alive(child));
  EXPECT_EQ(table.get(child).parent, kHostInit);
  EXPECT_EQ(table.get(child).cgroup, cgroup::kRootCgroup);
  table.set_cgroup(child, 7);
  const Pid grandchild = table.fork(child);
  EXPECT_EQ(table.get(grandchild).cgroup, 7);
}

TEST(ProcessTable, ExecveRenames) {
  ProcessTable table;
  const Pid p = table.fork(kHostInit);
  table.execve(p, "java");
  EXPECT_EQ(table.get(p).comm, "java");
}

TEST(ProcessTable, ExitReparentsChildren) {
  ProcessTable table;
  const Pid parent = table.fork(kHostInit);
  const Pid child = table.fork(parent);
  table.exit(parent);
  EXPECT_FALSE(table.alive(parent));
  EXPECT_EQ(table.get(child).parent, kHostInit);
}

TEST(ProcessTable, PidNamespaceMembershipOnFork) {
  ProcessTable table;
  const Pid boot = table.fork(kHostInit);
  table.set_namespace(boot, std::make_shared<PidNamespace>());
  const auto ns = std::dynamic_pointer_cast<PidNamespace>(
      table.namespace_of(boot, Namespace::Kind::kPid));
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(ns->vpid_of(boot), 1);  // creator is vpid 1
  const Pid child = table.fork(boot);
  EXPECT_EQ(ns->vpid_of(child), 2);
}

TEST(ProcessTable, ExitRemovesFromPidNamespace) {
  ProcessTable table;
  const Pid boot = table.fork(kHostInit);
  table.set_namespace(boot, std::make_shared<PidNamespace>());
  const Pid child = table.fork(boot);
  const auto ns = std::dynamic_pointer_cast<PidNamespace>(
      table.namespace_of(boot, Namespace::Kind::kPid));
  table.exit(child);
  EXPECT_EQ(ns->vpid_of(child), -1);
}

TEST(ProcessTable, NamespaceOwnershipTransfersOnExecAfterOwnerDeath) {
  // The §3.2 scenario: bootstrap init creates the namespace, forks the
  // workload, dies; the workload's exec() must take over ownership.
  ProcessTable table;
  const Pid boot = table.fork(kHostInit);
  auto ns = std::make_shared<PidNamespace>();
  table.set_namespace(boot, ns);
  EXPECT_EQ(ns->owner(), boot);

  const Pid workload = table.fork(boot);
  table.exit(boot);
  EXPECT_EQ(ns->owner(), boot);  // still the dead task, pre-exec
  table.execve(workload, "app");
  EXPECT_EQ(ns->owner(), workload);  // transferred
}

TEST(ProcessTable, ExecDoesNotStealFromLiveOwner) {
  ProcessTable table;
  const Pid boot = table.fork(kHostInit);
  auto ns = std::make_shared<PidNamespace>();
  table.set_namespace(boot, ns);
  const Pid workload = table.fork(boot);
  table.execve(workload, "app");  // boot still alive
  EXPECT_EQ(ns->owner(), boot);
}

TEST(ProcessTable, InContainerRequiresSysNamespace) {
  ProcessTable table;
  const Pid p = table.fork(kHostInit);
  EXPECT_FALSE(table.in_container(p));
  // Any Namespace of kind kSys flips the predicate. Use a plain Namespace.
  class SysNs : public Namespace {
   public:
    SysNs() : Namespace(Kind::kSys) {}
  };
  table.set_namespace(p, std::make_shared<SysNs>());
  EXPECT_TRUE(table.in_container(p));
  // Children inherit containment.
  const Pid child = table.fork(p);
  EXPECT_TRUE(table.in_container(child));
  EXPECT_FALSE(table.in_container(kHostInit));
}

TEST(ProcessTable, TasksInCgroupListsLiveOnly) {
  ProcessTable table;
  const Pid a = table.fork(kHostInit);
  const Pid b = table.fork(kHostInit);
  table.set_cgroup(a, 3);
  table.set_cgroup(b, 3);
  table.exit(b);
  const auto tasks = table.tasks_in_cgroup(3);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0], a);
}

TEST(ProcessTable, ChildrenOfSkipsDead) {
  ProcessTable table;
  const Pid parent = table.fork(kHostInit);
  const Pid c1 = table.fork(parent);
  const Pid c2 = table.fork(parent);
  table.exit(c1);
  const auto children = table.children_of(parent);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0], c2);
}

TEST(ProcessTableDeath, ForkFromDeadParentAborts) {
  ProcessTable table;
  const Pid p = table.fork(kHostInit);
  table.exit(p);
  EXPECT_DEATH(table.fork(p), "dead");
}

TEST(ProcessTableDeath, DoubleExitAborts) {
  ProcessTable table;
  const Pid p = table.fork(kHostInit);
  table.exit(p);
  EXPECT_DEATH(table.exit(p), "double exit");
}

TEST(ProcessTableDeath, HostInitCannotExit) {
  ProcessTable table;
  EXPECT_DEATH(table.exit(kHostInit), "host init");
}

}  // namespace
}  // namespace arv::proc
