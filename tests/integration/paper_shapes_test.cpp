// Scaled-down versions of the paper's headline results, run as tests so a
// regression in any layer that would invalidate EXPERIMENTS.md fails CI.
#include <gtest/gtest.h>

#include "src/harness/scenario.h"
#include "src/workloads/java_suites.h"
#include "src/workloads/npb.h"

namespace arv {
namespace {

using namespace arv::units;
using harness::JvmInstanceConfig;
using harness::JvmScenario;
using harness::OmpInstanceConfig;
using harness::OmpScenario;

jvm::JavaWorkload shrunk(const jvm::JavaWorkload& w, SimDuration work) {
  jvm::JavaWorkload copy = w;
  copy.total_work = work;
  return copy;
}

/// Mean exec time over all JVMs in a scenario of `n` identical colocated
/// containers running `w` with `flags`.
double colocated_mean_exec(const jvm::JavaWorkload& w, jvm::JvmFlags flags,
                           int n, bool resource_view) {
  JvmScenario scenario;
  for (int i = 0; i < n; ++i) {
    JvmInstanceConfig config;
    config.container.name = "c" + std::to_string(i);
    config.container.enable_resource_view = resource_view;
    config.flags = flags;
    config.flags.xmx = 3 * min_heap_of(w);  // §5.1 methodology
    config.workload = w;
    scenario.add(config);
  }
  scenario.run();
  double total = 0;
  for (const auto& result : scenario.results()) {
    EXPECT_TRUE(result.stats.completed) << result.container;
    total += static_cast<double>(result.stats.exec_time());
  }
  return total / n;
}

TEST(PaperShapes, Figure6AdaptiveBeatsVanillaWhenColocated) {
  // 5 identical containers on 20 cores: the adaptive JVM (E_CPU-sized GC)
  // must beat the vanilla static JVM (15 GC threads each).
  const auto w = shrunk(*workloads::find_java_workload("h2"), 4 * sec);
  const double vanilla = colocated_mean_exec(
      w, {.kind = jvm::JvmKind::kVanilla8, .dynamic_gc_threads = false}, 5,
      /*resource_view=*/false);
  const double adaptive = colocated_mean_exec(
      w, {.kind = jvm::JvmKind::kAdaptive}, 5, /*resource_view=*/true);
  EXPECT_LT(adaptive, vanilla);
}

TEST(PaperShapes, Figure6DynamicSitsBetween) {
  const auto w = shrunk(*workloads::find_java_workload("lusearch"), 3 * sec);
  const double vanilla = colocated_mean_exec(
      w, {.kind = jvm::JvmKind::kVanilla8, .dynamic_gc_threads = false}, 5, false);
  const double dynamic = colocated_mean_exec(
      w, {.kind = jvm::JvmKind::kVanilla8, .dynamic_gc_threads = true}, 5, false);
  const double adaptive = colocated_mean_exec(
      w, {.kind = jvm::JvmKind::kAdaptive}, 5, true);
  EXPECT_LE(dynamic, vanilla * 1.02);  // dynamic helps (or at least not hurts)
  EXPECT_LT(adaptive, dynamic * 1.02);
}

TEST(PaperShapes, Figure8AdaptiveExploitsFreedCpus) {
  // One DaCapo container + 9 staggered sysbench containers, all with equal
  // shares. JVM 10 pins GC threads at 2 from static shares; adaptive tracks
  // the CPUs freed as sysbench programs finish and must win on GC time.
  const auto w = shrunk(*workloads::find_java_workload("sunflow"), 6 * sec);
  const auto run_one = [&](jvm::JvmFlags flags, bool view) {
    JvmScenario scenario;
    // The sysbench co-runners exist before java starts: JDK 10's launch-time
    // share fraction must see all ten containers (2 CPUs' worth each).
    for (int i = 0; i < 9; ++i) {
      // Staggered completion: budgets from 1 to 9 CPU-seconds.
      scenario.add_cpu_hog({}, 4, (i + 1) * sec);
    }
    JvmInstanceConfig config;
    config.container.name = "dacapo";
    config.container.enable_resource_view = view;
    config.flags = flags;
    config.flags.xmx = 3 * min_heap_of(w);
    config.workload = w;
    const auto idx = scenario.add(config);
    scenario.run();
    return scenario.jvm(idx).stats();
  };
  const auto jvm10 = run_one({.kind = jvm::JvmKind::kJdk10}, false);
  const auto adaptive = run_one({.kind = jvm::JvmKind::kAdaptive}, true);
  EXPECT_LT(adaptive.gc_time(), jvm10.gc_time());
}

TEST(PaperShapes, Figure10DynamicOpenMpIsWorst) {
  // Figure 10(b): one container with a 4-core quota on a 20-core host.
  // libgomp's dynamic heuristic reads *host* load and CPUs => worst.
  const auto w = *workloads::find_npb("cg");
  const auto run_one = [&](omp::TeamStrategy strategy, bool view) {
    OmpScenario scenario;
    OmpInstanceConfig config;
    config.container.name = "npb";
    config.container.cfs_quota_us = 400000;
    config.container.enable_resource_view = view;
    config.strategy = strategy;
    config.workload = w;
    const auto idx = scenario.add(config);
    scenario.run();
    return scenario.process(idx).stats().exec_time();
  };
  const auto time_static = run_one(omp::TeamStrategy::kStatic, false);
  const auto time_adaptive = run_one(omp::TeamStrategy::kAdaptive, true);
  EXPECT_LT(time_adaptive, time_static);
}

TEST(PaperShapes, Figure11ElasticHeapAvoidsJdk9StyleOom) {
  // h2 in a 1 GiB container: JDK 9 sizes the heap to 256 MiB and dies with
  // OOM; the elastic heap respects the real limit and completes. Enough
  // mutator work that h2's promotion stream materializes its live set.
  const auto w = shrunk(*workloads::find_java_workload("h2"), 8 * sec);
  JvmScenario scenario;
  JvmInstanceConfig jdk9;
  jdk9.container.name = "jdk9";
  jdk9.container.mem_limit = 1 * GiB;
  jdk9.container.enable_resource_view = false;
  jdk9.flags.kind = jvm::JvmKind::kJdk9;
  jdk9.workload = w;
  const auto i9 = scenario.add(jdk9);
  JvmInstanceConfig elastic;
  elastic.container.name = "elastic";
  elastic.container.mem_limit = 1 * GiB;
  elastic.container.mem_soft_limit = 800 * MiB;
  elastic.flags.kind = jvm::JvmKind::kAdaptive;
  elastic.flags.elastic_heap = true;
  elastic.workload = w;
  const auto ie = scenario.add(elastic);
  scenario.run();
  EXPECT_TRUE(scenario.jvm(i9).stats().oom_error);
  EXPECT_TRUE(scenario.jvm(ie).stats().completed);
}

TEST(PaperShapes, Figure11ElasticHeapAvoidsSwapCollapse) {
  // xalan (allocation-heavy) in a 1 GiB container: vanilla JDK 8 balloons
  // the heap from host RAM and collapses into swap; elastic stays inside
  // the limit and finishes an order of magnitude faster.
  const auto w = shrunk(*workloads::find_java_workload("xalan"), 2 * sec);
  const auto run_one = [&](jvm::JvmFlags flags, bool view,
                           Bytes soft) {
    JvmScenario scenario;
    JvmInstanceConfig config;
    config.container.name = "x";
    config.container.mem_limit = 1 * GiB;
    if (soft > 0) {
      config.container.mem_soft_limit = soft;
    }
    config.container.enable_resource_view = view;
    config.flags = flags;
    config.workload = w;
    const auto idx = scenario.add(config);
    scenario.run(7200 * sec);
    return scenario.jvm(idx).stats();
  };
  const auto vanilla =
      run_one({.kind = jvm::JvmKind::kVanilla8}, false, 0);
  const auto elastic = run_one(
      {.kind = jvm::JvmKind::kAdaptive, .elastic_heap = true}, true, 800 * MiB);
  EXPECT_TRUE(elastic.completed);
  ASSERT_GE(vanilla.exec_time(), 0);
  EXPECT_GT(vanilla.stall_time, 0);  // the vanilla run swapped
  EXPECT_LT(elastic.exec_time() * 3, vanilla.exec_time());
}

TEST(PaperShapes, Figure12FiveElasticContainersSurvive) {
  // §5.3: five leak-style micro-benchmarks, 30 GiB hard / 15 GiB soft each,
  // on a 128 GiB host. Elastic JVMs converge below their hard limits and
  // complete; the aggregate never OOM-kills anyone.
  auto w = workloads::alloc_microbench();
  w.total_work = 20 * sec;            // scaled down for CI
  w.alloc_per_cpu_sec = 1 * GiB;      // ~20 GiB touched per container
  JvmScenario scenario;
  for (int i = 0; i < 5; ++i) {
    JvmInstanceConfig config;
    config.container.name = "c" + std::to_string(i);
    config.container.mem_limit = 30 * GiB;
    config.container.mem_soft_limit = 15 * GiB;
    config.flags.kind = jvm::JvmKind::kAdaptive;
    config.flags.elastic_heap = true;
    config.workload = w;
    scenario.add(config);
  }
  scenario.run(7200 * sec);
  for (const auto& result : scenario.results()) {
    EXPECT_TRUE(result.stats.completed) << result.container;
    EXPECT_FALSE(result.stats.killed) << result.container;
  }
  EXPECT_EQ(scenario.host().memory().oom_kills(), 0u);
}

}  // namespace
}  // namespace arv
