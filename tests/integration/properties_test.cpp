// System-wide property tests: invariants that must hold for any container
// configuration, plus bit-for-bit determinism of the whole stack.
#include <gtest/gtest.h>

#include "src/container/container.h"
#include "src/harness/scenario.h"
#include "src/util/rng.h"
#include "src/workloads/hogs.h"
#include "src/workloads/java_suites.h"
#include "tests/testing/trace_matchers.h"

namespace arv {
namespace {

using namespace arv::units;

struct RandomScenarioParam {
  std::uint64_t seed;
  int containers;
};

class RandomizedStack : public ::testing::TestWithParam<RandomScenarioParam> {};

TEST_P(RandomizedStack, GlobalInvariantsHoldUnderRandomConfigs) {
  const auto param = GetParam();
  Rng rng(param.seed);
  container::HostConfig host_config;
  host_config.cpus = static_cast<int>(rng.uniform_int(2, 32));
  host_config.ram = rng.uniform_int(4, 64) * GiB;
  container::Host host(host_config);
  container::ContainerRuntime runtime(host);

  std::vector<container::Container*> containers;
  std::vector<std::unique_ptr<workloads::CpuHog>> hogs;
  std::vector<std::unique_ptr<workloads::MemHog>> mem_hogs;
  for (int i = 0; i < param.containers; ++i) {
    container::ContainerConfig config;
    config.name = "c" + std::to_string(i);
    config.cpu_shares = rng.uniform_int(2, 4096);
    if (rng.chance(0.5)) {
      config.cfs_quota_us = rng.uniform_int(1, 10) * 100000;
    }
    if (rng.chance(0.3)) {
      config.cpuset = CpuSet::first_n(
          static_cast<int>(rng.uniform_int(1, host_config.cpus)));
    }
    if (rng.chance(0.5)) {
      config.mem_limit = rng.uniform_int(1, 4) * GiB;
      config.mem_soft_limit = config.mem_limit / 2;
    }
    auto& c = runtime.run(config);
    containers.push_back(&c);
    hogs.push_back(std::make_unique<workloads::CpuHog>(
        host, c, static_cast<int>(rng.uniform_int(1, 8)), 3600 * sec));
    if (rng.chance(0.5)) {
      mem_hogs.push_back(std::make_unique<workloads::MemHog>(
          host, c, rng.uniform_int(64, 2048) * MiB, 1 * GiB));
    }
  }

  for (int step = 0; step < 20; ++step) {
    host.run_for(100 * msec);
    CpuTime usage_total = 0;
    for (const auto* c : containers) {
      const auto view = c->resource_view();
      // Algorithm 1 invariants.
      ASSERT_GE(view->effective_cpus(), 1);
      ASSERT_GE(view->effective_cpus(), view->cpu_bounds().lower);
      ASSERT_LE(view->effective_cpus(), view->cpu_bounds().upper);
      ASSERT_LE(view->cpu_bounds().upper, host_config.cpus);
      // Algorithm 2 invariants.
      ASSERT_GE(view->effective_memory(), view->mem_soft_limit());
      ASSERT_LE(view->effective_memory(), view->mem_hard_limit());
      // Memory accounting invariants.
      const auto cg = c->cgroup();
      const Bytes hard = host.cgroups().get(cg).mem().limit_in_bytes;
      ASSERT_LE(host.memory().usage(cg), hard);
      usage_total += host.scheduler().total_usage(cg);
    }
    // CPU conservation: total granted never exceeds elapsed capacity.
    const CpuTime capacity =
        static_cast<CpuTime>(host_config.cpus) * host.now();
    ASSERT_LE(usage_total, capacity + host.now() / 100);
    // Free memory never negative.
    ASSERT_GE(host.memory().free_memory(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedStack,
                         ::testing::Values(RandomScenarioParam{1, 2},
                                           RandomScenarioParam{2, 5},
                                           RandomScenarioParam{3, 8},
                                           RandomScenarioParam{4, 3},
                                           RandomScenarioParam{5, 10},
                                           RandomScenarioParam{6, 1},
                                           RandomScenarioParam{7, 6}));

// The same invariants, but asserted over the *recorded trace* with per-tick
// sampling — so a violation at any tick is caught, not just at the 100 ms
// probe points above, and the update-round correlation (±1 step per round,
// reset exactly when kswapd was seen by the update) is checked too.
class RandomizedTrace : public ::testing::TestWithParam<RandomScenarioParam> {};

TEST_P(RandomizedTrace, TraceInvariantsHoldUnderRandomConfigs) {
  namespace trace = arv::testing::trace;
  const auto param = GetParam();
  Rng rng(param.seed * 7919 + 17);
  container::HostConfig host_config;
  host_config.cpus = static_cast<int>(rng.uniform_int(2, 16));
  host_config.ram = rng.uniform_int(2, 16) * GiB;
  host_config.enable_tracing = true;  // sample_interval 0: every tick
  container::Host host(host_config);
  container::ContainerRuntime runtime(host);

  std::vector<std::string> names;
  std::vector<std::unique_ptr<workloads::CpuHog>> hogs;
  std::vector<std::unique_ptr<workloads::MemHog>> mem_hogs;
  for (int i = 0; i < param.containers; ++i) {
    container::ContainerConfig config;
    config.name = "c" + std::to_string(i);
    config.cpu_shares = rng.uniform_int(2, 4096);
    if (rng.chance(0.5)) {
      config.cfs_quota_us = rng.uniform_int(1, 10) * 100000;
    }
    // Always set memory limits so the soft-limit reset is exercised.
    config.mem_limit = rng.uniform_int(1, 4) * GiB;
    config.mem_soft_limit = config.mem_limit / 2;
    auto& c = runtime.run(config);
    names.push_back(c.name());
    hogs.push_back(std::make_unique<workloads::CpuHog>(
        host, c, static_cast<int>(rng.uniform_int(1, 8)), 3600 * sec));
    // Memory hogs sized against the whole host, so several of them drive
    // free memory through the kswapd watermarks.
    mem_hogs.push_back(std::make_unique<workloads::MemHog>(
        host, c, rng.uniform_int(256, 3072) * MiB, 1 * GiB));
  }

  host.run_for(2 * units::sec);

  const obs::TraceRecorder& rec = *host.trace();
  ASSERT_EQ(rec.sample_count(), 2000u);
  EXPECT_TRUE(trace::AllCountersMonotonic(rec));
  for (const std::string& n : names) {
    // Algorithm 1: e_cpu confined to [LOWER, UPPER], moving at most
    // cpu_step per completed update round.
    EXPECT_TRUE(trace::WithinBounds(rec, n + ".e_cpu", n + ".cpu_lower",
                                    n + ".cpu_upper"));
    EXPECT_TRUE(trace::StepBounded(rec, n + ".e_cpu", n + ".cpu_updates",
                                   core::Params{}.cpu_step));
    // Algorithm 2: e_mem confined to [soft, hard]; any update round that
    // observed kswapd reclaiming must land exactly on the soft limit.
    EXPECT_TRUE(trace::WithinBounds(rec, n + ".e_mem", n + ".mem_soft",
                                    n + ".mem_hard"));
    EXPECT_TRUE(trace::ResetsUnderPressure(rec, n + ".e_mem", n + ".mem_soft",
                                           n + ".mem_updates",
                                           "mem.kswapd_active"));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedTrace,
                         ::testing::Values(RandomScenarioParam{1, 2},
                                           RandomScenarioParam{2, 4},
                                           RandomScenarioParam{3, 6},
                                           RandomScenarioParam{4, 3},
                                           RandomScenarioParam{5, 8},
                                           RandomScenarioParam{6, 1},
                                           RandomScenarioParam{7, 5}));

struct DeterminismProbe {
  SimDuration exec_time;
  SimDuration gc_time;
  int minor_gcs;
  CpuTime usage;
};

DeterminismProbe run_probe() {
  harness::JvmScenario scenario;
  for (int i = 0; i < 3; ++i) {
    harness::JvmInstanceConfig config;
    config.container.name = "c" + std::to_string(i);
    config.flags.kind = jvm::JvmKind::kAdaptive;
    // xalan: 16 mutators x 3 containers oversubscribe the host, so shares
    // and contention actually shape the outcome.
    config.workload = *workloads::find_java_workload("xalan");
    config.workload.total_work = 2 * sec;
    config.flags.xmx = 3 * jvm::min_heap_of(config.workload);
    scenario.add(config);
  }
  scenario.run();
  const auto& stats = scenario.jvm(0).stats();
  DeterminismProbe probe;
  probe.exec_time = stats.exec_time();
  probe.gc_time = stats.gc_time();
  probe.minor_gcs = stats.minor_gcs;
  probe.usage = scenario.host().scheduler().total_usage(1);
  return probe;
}

TEST(Determinism, IdenticalRunsProduceIdenticalResults) {
  const auto a = run_probe();
  const auto b = run_probe();
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.gc_time, b.gc_time);
  EXPECT_EQ(a.minor_gcs, b.minor_gcs);
  EXPECT_EQ(a.usage, b.usage);
}

TEST(Determinism, ResultsDependOnConfigurationOnly) {
  // Changing an unrelated container's shares must change the outcome
  // (sanity check that the probe actually exercises contention).
  const auto baseline = run_probe();
  harness::JvmScenario scenario;
  for (int i = 0; i < 3; ++i) {
    harness::JvmInstanceConfig config;
    config.container.name = "c" + std::to_string(i);
    config.container.cpu_shares = i == 1 ? 4096 : 1024;
    config.flags.kind = jvm::JvmKind::kAdaptive;
    config.workload = *workloads::find_java_workload("xalan");
    config.workload.total_work = 2 * sec;
    config.flags.xmx = 3 * jvm::min_heap_of(config.workload);
    scenario.add(config);
  }
  scenario.run();
  EXPECT_NE(scenario.jvm(0).stats().exec_time(), baseline.exec_time);
}

}  // namespace
}  // namespace arv
