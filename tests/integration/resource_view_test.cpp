// Full-stack integration tests: containers + scheduler + memory + monitor +
// virtual sysfs behaving as §3 describes, with real (simulated) load.
#include <gtest/gtest.h>

#include "src/container/container.h"
#include "src/workloads/hogs.h"

namespace arv {
namespace {

using namespace arv::units;

container::HostConfig paper_host() {
  container::HostConfig config;
  config.cpus = 20;          // dual 10-core Xeon
  config.ram = 128 * GiB;    // §5.1
  return config;
}

TEST(ResourceViewIntegration, FiveEqualContainersConvergeToFourCpus) {
  // The §2.2 motivating setup: 5 containers with equal shares on 20 cores,
  // all saturating. Effective CPU must converge to 20/5 = 4 each.
  container::Host host(paper_host());
  container::ContainerRuntime runtime(host);
  std::vector<container::Container*> containers;
  std::vector<std::unique_ptr<workloads::CpuHog>> hogs;
  for (int i = 0; i < 5; ++i) {
    container::ContainerConfig config;
    config.name = "c" + std::to_string(i);
    auto& c = runtime.run(config);
    containers.push_back(&c);
    hogs.push_back(std::make_unique<workloads::CpuHog>(host, c, 20, 36000 * sec));
  }
  // Views start wherever creation-time shares put them and step down by one
  // per update period (~300 ms at 100 runnable tasks); give them time.
  host.run_for(10 * sec);
  for (const auto* c : containers) {
    EXPECT_EQ(c->resource_view()->effective_cpus(), 4) << c->name();
  }
}

TEST(ResourceViewIntegration, EffectiveCpuExpandsWhenPeersGoIdle) {
  // Figure 8's mechanism: as co-runners finish, the remaining container's
  // effective CPU climbs above its static share.
  container::Host host(paper_host());
  container::ContainerRuntime runtime(host);
  auto& main_c = runtime.run({.name = "main"});
  // 16 threads, not 20: a fully-saturating workload would itself consume all
  // slack, and Algorithm 1 only grows E while the host has idle capacity.
  workloads::CpuHog main_load(host, main_c, 16, 3600 * sec);
  std::vector<std::unique_ptr<workloads::CpuHog>> peers;
  std::vector<container::Container*> peer_containers;
  for (int i = 0; i < 9; ++i) {
    container::ContainerConfig config;
    config.name = "peer" + std::to_string(i);
    auto& c = runtime.run(config);
    peer_containers.push_back(&c);
    // Peers burn ~3 s of wall time (2 CPUs' worth of fair share each).
    peers.push_back(std::make_unique<workloads::CpuHog>(host, c, 2, 6 * sec));
  }
  host.run_for(2500 * msec);
  const int during = main_c.resource_view()->effective_cpus();
  EXPECT_LE(during, 3);  // ten-way share of 20 cores
  host.run_for(20 * sec);  // peers done; slack appears
  const int after = main_c.resource_view()->effective_cpus();
  EXPECT_GE(after, 15);  // expands toward the whole host
}

TEST(ResourceViewIntegration, QuotaBoundsEffectiveCpuDespiteSlack) {
  container::Host host(paper_host());
  container::ContainerRuntime runtime(host);
  container::ContainerConfig config;
  config.name = "capped";
  config.cfs_quota_us = 400000;  // 4 CPUs
  auto& c = runtime.run(config);
  workloads::CpuHog load(host, c, 20, 3600 * sec);
  host.run_for(3 * sec);
  EXPECT_EQ(c.resource_view()->effective_cpus(), 4);
}

TEST(ResourceViewIntegration, SysconfSeesLiveUpdates) {
  container::Host host(paper_host());
  container::ContainerRuntime runtime(host);
  auto& a = runtime.run({.name = "a"});
  workloads::CpuHog load_a(host, a, 20, 3600 * sec);
  host.run_for(1 * sec);
  const long solo = host.sysfs().sysconf(a.init_pid(), vfs::Sysconf::kNProcessorsOnln);
  EXPECT_EQ(solo, 20);
  // A second saturating container appears: the view must shrink toward 10.
  auto& b = runtime.run({.name = "b"});
  workloads::CpuHog load_b(host, b, 20, 3600 * sec);
  host.run_for(3 * sec);
  const long shared = host.sysfs().sysconf(a.init_pid(), vfs::Sysconf::kNProcessorsOnln);
  EXPECT_EQ(shared, 10);
}

TEST(ResourceViewIntegration, EffectiveMemoryGrowsWithUsage) {
  container::Host host(paper_host());
  container::ContainerRuntime runtime(host);
  container::ContainerConfig config;
  config.name = "db";
  config.mem_limit = 8 * GiB;
  config.mem_soft_limit = 2 * GiB;
  auto& c = runtime.run(config);
  EXPECT_EQ(c.resource_view()->effective_memory(), 2 * GiB);
  // Fill memory to > 90% of effective; plenty of host RAM free.
  workloads::MemHog hog(host, c, 7 * GiB, 4 * GiB);
  host.run_for(20 * sec);
  EXPECT_GT(c.resource_view()->effective_memory(), 6 * GiB);
  EXPECT_LE(c.resource_view()->effective_memory(), 8 * GiB);
}

TEST(ResourceViewIntegration, EffectiveMemoryResetsUnderHostPressure) {
  container::HostConfig host_config = paper_host();
  host_config.ram = 8 * GiB;  // small host so pressure is reachable
  container::Host host(host_config);
  container::ContainerRuntime runtime(host);
  container::ContainerConfig config;
  config.name = "victim";
  config.mem_limit = 6 * GiB;
  config.mem_soft_limit = 1 * GiB;
  auto& c = runtime.run(config);
  workloads::MemHog own_load(host, c, 5 * GiB, 4 * GiB);
  host.run_for(10 * sec);
  const Bytes before_pressure = c.resource_view()->effective_memory();
  ASSERT_GT(before_pressure, 3 * GiB);
  // A second container floods RAM so demand permanently exceeds physical
  // memory: kswapd keeps reclaiming and the view collapses to the soft
  // limit (plus at most one 10%-of-headroom growth step between resets).
  auto& flood_c = runtime.run({.name = "flood"});
  workloads::MemHog flood(host, flood_c, 7 * GiB, 8 * GiB);
  host.run_for(10 * sec);
  EXPECT_LT(c.resource_view()->effective_memory(), 2 * GiB);
  EXPECT_LT(c.resource_view()->effective_memory(), before_pressure);
  EXPECT_GE(host.memory().kswapd_wakeups(), 1u);
}

TEST(ResourceViewIntegration, ContainerChurnKeepsViewsConsistent) {
  container::Host host(paper_host());
  container::ContainerRuntime runtime(host);
  auto& stable = runtime.run({.name = "stable"});
  for (int round = 0; round < 5; ++round) {
    container::ContainerConfig config;
    config.name = "ephemeral";
    auto& c = runtime.run(config);
    host.run_for(100 * msec);
    EXPECT_EQ(stable.resource_view()->cpu_bounds().lower, 10);
    c.stop();
    host.run_for(100 * msec);
    EXPECT_EQ(stable.resource_view()->cpu_bounds().lower, 20);
  }
}

TEST(ResourceViewIntegration, UpdateTimerFollowsLoad) {
  // §3.2: the update interval stretches as runnable tasks grow.
  container::Host host(paper_host());
  container::ContainerRuntime runtime(host);
  auto& c = runtime.run({.name = "busy"});
  workloads::CpuHog hog(host, c, 40, 3600 * sec);  // 40 runnable tasks
  host.run_for(100 * msec);
  EXPECT_EQ(host.scheduler().scheduling_period(), 120 * msec);  // 3ms * 40
}

}  // namespace
}  // namespace arv
