// Randomized (fixed-seed) stress tests: throw thousands of random but valid
// operations at individual components and check their invariants hold.
#include <gtest/gtest.h>

#include "src/cgroup/cgroup.h"
#include "src/jvm/heap.h"
#include "src/mem/memory_manager.h"
#include "src/util/cpuset.h"
#include "src/util/rng.h"
#include "src/vfs/pseudo_fs.h"

namespace arv {
namespace {

using namespace arv::units;

TEST(Fuzz, CpuSetParseFormatRoundTrip) {
  Rng rng(0xC0FFEE);
  for (int round = 0; round < 500; ++round) {
    CpuSet original;
    const int bits = static_cast<int>(rng.uniform_int(0, 32));
    for (int i = 0; i < bits; ++i) {
      original.set(static_cast<int>(rng.uniform_int(0, CpuSet::kMaxCpus - 1)));
    }
    const auto reparsed = CpuSet::parse(original.to_string());
    ASSERT_TRUE(reparsed.has_value()) << original.to_string();
    ASSERT_EQ(*reparsed, original) << original.to_string();
  }
}

TEST(Fuzz, CpuSetParseNeverCrashesOnGarbage) {
  Rng rng(0xBADF00D);
  const char alphabet[] = "0123456789-, abzXY;";
  for (int round = 0; round < 2000; ++round) {
    std::string text;
    const int len = static_cast<int>(rng.uniform_int(0, 12));
    for (int i = 0; i < len; ++i) {
      text += alphabet[rng.uniform_int(0, static_cast<int>(sizeof(alphabet)) - 2)];
    }
    const auto parsed = CpuSet::parse(text);  // must not crash or hang
    if (parsed) {
      // Anything parseable must round-trip to a canonical form that parses
      // to the same mask.
      const auto again = CpuSet::parse(parsed->to_string());
      ASSERT_TRUE(again.has_value());
      ASSERT_EQ(*again, *parsed);
    }
  }
}

TEST(Fuzz, MemoryManagerAccountingBalances) {
  Rng rng(0x5EED);
  cgroup::Tree tree(4);
  mem::Config config;
  config.total_ram = 4 * GiB;
  config.swap_size = 8 * GiB;
  mem::MemoryManager mm(tree, config);

  constexpr int kCgroups = 4;
  std::vector<cgroup::CgroupId> ids;
  std::vector<Bytes> charged(kCgroups, 0);
  for (int i = 0; i < kCgroups; ++i) {
    const auto id = tree.create("c" + std::to_string(i));
    if (rng.chance(0.5)) {
      tree.set_mem_limit(id, rng.uniform_int(64, 1024) * MiB);
      tree.set_mem_soft_limit(id, 32 * MiB);
    }
    ids.push_back(id);
  }

  for (int op = 0; op < 5000; ++op) {
    const int k = static_cast<int>(rng.uniform_int(0, kCgroups - 1));
    const auto id = ids[static_cast<std::size_t>(k)];
    if (mm.oom_killed(id)) {
      continue;
    }
    const double dice = rng.uniform();
    if (dice < 0.45) {
      const Bytes bytes = rng.uniform_int(1, 32) * MiB;
      if (mm.charge(id, bytes) != mem::ChargeResult::kOomKilled) {
        charged[static_cast<std::size_t>(k)] += page_align_up(bytes);
      }
    } else if (dice < 0.75) {
      const Bytes committed = mm.committed(id);
      if (committed > 0) {
        const Bytes bytes =
            std::min(committed, rng.uniform_int(1, 64) * MiB);
        mm.uncharge(id, bytes);
        charged[static_cast<std::size_t>(k)] -= page_align_up(bytes);
      }
    } else if (dice < 0.9) {
      mm.touch(id, rng.uniform_int(0, 128) * MiB);
    } else {
      mm.tick(op, 1000);
    }

    // Invariants after every operation.
    ASSERT_GE(mm.free_memory(), 0);
    for (int j = 0; j < kCgroups; ++j) {
      const auto cj = ids[static_cast<std::size_t>(j)];
      if (mm.oom_killed(cj)) {
        continue;
      }
      // resident + swapped == everything successfully charged.
      ASSERT_EQ(mm.committed(cj), charged[static_cast<std::size_t>(j)]);
      // Residency never exceeds the hard limit.
      const Bytes hard = tree.get(cj).mem().limit_in_bytes;
      ASSERT_LE(mm.usage(cj), hard);
    }
  }
}

TEST(Fuzz, HeapOperationsPreserveGeometry) {
  Rng rng(0xFEED);
  cgroup::Tree tree(4);
  mem::Config config;
  config.total_ram = 64 * GiB;
  mem::MemoryManager mm(tree, config);
  const auto cg = tree.create("jvm");
  jvm::Heap heap(mm, cg, 8 * GiB, 256 * MiB);

  for (int op = 0; op < 5000; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.4) {
      heap.allocate(rng.uniform_int(0, 8) * MiB);
    } else if (dice < 0.55) {
      const Bytes survivors = rng.uniform_int(0, 4) * MiB;
      const Bytes promoted = rng.uniform_int(0, 4) * MiB;
      heap.finish_minor(survivors, promoted);
    } else if (dice < 0.65) {
      heap.finish_major(std::min<Bytes>(heap.old_used(), 64 * MiB),
                        heap.survivor_used() / 2);
    } else if (dice < 0.8) {
      heap.resize_young(rng.uniform_int(1, 3000) * MiB);
    } else if (dice < 0.95) {
      heap.resize_old(rng.uniform_int(1, 6000) * MiB);
    } else {
      heap.set_virtual_max(rng.uniform_int(256, 8192) * MiB);
    }

    // Geometry invariants.
    ASSERT_LE(heap.committed(), heap.reserved());
    ASSERT_LE(heap.virtual_max(), heap.reserved());
    ASSERT_GE(heap.young_committed(), heap.eden_used() + heap.survivor_used());
    ASSERT_LE(heap.eden_used(), heap.eden_capacity());
    ASSERT_GE(heap.old_committed(), 0);
    // The cgroup charge mirrors committed space exactly.
    ASSERT_EQ(mm.usage(cg) + mm.swapped(cg), heap.committed());
  }
}

TEST(Fuzz, PseudoFsRandomOps) {
  Rng rng(0xF5);
  vfs::PseudoFs fs;
  std::vector<std::string> registered;
  for (int op = 0; op < 3000; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.4 || registered.empty()) {
      std::string path = "/d" + std::to_string(rng.uniform_int(0, 9)) + "/f" +
                         std::to_string(rng.uniform_int(0, 99));
      fs.register_file(path, [path] { return path; });
      registered.push_back(path);
    } else if (dice < 0.7) {
      const auto& path = registered[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(registered.size()) - 1))];
      const auto content = fs.read(path);
      if (fs.exists(path)) {
        ASSERT_TRUE(content.has_value());
        ASSERT_EQ(*content, path);  // provider returns its own path
      }
    } else if (dice < 0.85) {
      const auto& path = registered[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(registered.size()) - 1))];
      fs.remove(path);
    } else {
      fs.remove_subtree("/d" + std::to_string(rng.uniform_int(0, 9)) + "/");
    }
    // list() must agree with exists() for every listed path.
    for (const auto& path : fs.list("/")) {
      ASSERT_TRUE(fs.exists(path));
    }
  }
}

}  // namespace
}  // namespace arv
