// The §1 related-work comparison as an executable test: stock sysfs vs
// LXCFS-style static limits vs the paper's adaptive view, same runtime.
#include <gtest/gtest.h>

#include "src/harness/scenario.h"
#include "src/workloads/java_suites.h"

namespace arv {
namespace {

using namespace arv::units;

double run_view_mode(const jvm::JavaWorkload& w, bool view,
                     const std::string& policy) {
  harness::JvmScenario scenario;
  for (int i = 0; i < 5; ++i) {
    harness::JvmInstanceConfig config;
    config.container.name = "c" + std::to_string(i);
    config.container.cfs_quota_us = 1000000;  // 10-core limit, 4 effective
    config.container.enable_resource_view = view;
    config.use_policy(policy);
    config.flags.kind = jvm::JvmKind::kAdaptive;
    config.flags.dynamic_gc_threads = false;
    config.flags.xmx = 3 * jvm::min_heap_of(w);
    config.workload = w;
    scenario.add(config);
  }
  scenario.run();
  double total = 0;
  for (const auto& result : scenario.results()) {
    EXPECT_TRUE(result.stats.completed);
    total += static_cast<double>(result.stats.exec_time());
  }
  return total / 5;
}

TEST(ViewModes, AdaptiveBeatsStaticBeatsNone) {
  const auto w = [] {
    auto workload = *workloads::find_java_workload("xalan");
    workload.total_work = 3 * sec;
    return workload;
  }();
  const double none = run_view_mode(w, false, "paper");
  const double lxcfs = run_view_mode(w, true, "static");
  const double adaptive = run_view_mode(w, true, "paper");
  // Static limits already help (10 < 20 GC threads), the effective view
  // helps more (4 effective CPUs).
  EXPECT_LT(lxcfs, none);
  EXPECT_LT(adaptive, lxcfs);
}

TEST(ViewModes, StaticViewThroughSysconf) {
  container::Host host;
  container::ContainerRuntime runtime(host);
  container::ContainerConfig config;
  config.name = "lxcfs";
  config.cfs_quota_us = 600000;
  config.mem_limit = 3 * GiB;
  config.mem_soft_limit = 1 * GiB;
  config.view_params.cpu_policy = "static";
  config.view_params.mem_policy = "static";
  auto& c = runtime.run(config);
  // LXCFS semantics: the *limits*, not effective values — memory reads the
  // hard limit even though the adaptive view would start at the soft limit.
  EXPECT_EQ(host.sysfs().sysconf(c.init_pid(), vfs::Sysconf::kNProcessorsOnln), 6);
  EXPECT_EQ(host.sysfs().sysconf(c.init_pid(), vfs::Sysconf::kPhysPages) *
                static_cast<long>(units::page),
            3L * GiB);
  // And it never moves with contention.
  auto& noisy = runtime.run({.name = "noisy"});
  (void)noisy;
  host.run_for(2 * sec);
  EXPECT_EQ(host.sysfs().sysconf(c.init_pid(), vfs::Sysconf::kNProcessorsOnln), 6);
}

}  // namespace
}  // namespace arv
