#include "src/omp/omp_runtime.h"

#include <gtest/gtest.h>

#include "src/workloads/hogs.h"

namespace arv::omp {
namespace {

using namespace arv::units;

struct Fixture {
  explicit Fixture(int cpus = 8) : host(host_config(cpus)), runtime(host) {}

  static container::HostConfig host_config(int cpus) {
    container::HostConfig config;
    config.cpus = cpus;
    config.ram = 16 * GiB;
    return config;
  }

  OmpWorkload tiny() {
    OmpWorkload w;
    w.name = "unit";
    w.regions = 5;
    w.region_work = 40 * msec;
    w.serial_frac = 0.1;
    return w;
  }

  void run_to_completion(OmpProcess& p, SimDuration limit = 600 * sec) {
    host.engine().run_until([&] { return p.finished(); }, host.now() + limit);
  }

  container::Host host;
  container::ContainerRuntime runtime;
};

TEST(OmpProcess, CompletesAllRegions) {
  Fixture f;
  auto& c = f.runtime.run({});
  OmpProcess p(f.host, c, TeamStrategy::kStatic, f.tiny());
  f.run_to_completion(p);
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(p.stats().regions_done, 5);
  EXPECT_GT(p.stats().exec_time(), 0);
  EXPECT_EQ(p.team_size_trace().size(), 5u);
}

TEST(OmpProcess, StaticTeamMatchesOnlineCpus) {
  Fixture f;
  container::ContainerConfig config;
  config.enable_resource_view = false;  // stock container: host view
  auto& c = f.runtime.run(config);
  OmpProcess p(f.host, c, TeamStrategy::kStatic, f.tiny());
  f.run_to_completion(p);
  for (const int team : p.team_size_trace()) {
    EXPECT_EQ(team, 8);
  }
}

TEST(OmpProcess, AdaptiveTeamMatchesEffectiveCpus) {
  Fixture f;
  container::ContainerConfig config;
  config.cfs_quota_us = 200000;  // 2 CPUs
  auto& c = f.runtime.run(config);
  OmpProcess p(f.host, c, TeamStrategy::kAdaptive, f.tiny());
  f.run_to_completion(p);
  for (const int team : p.team_size_trace()) {
    EXPECT_LE(team, 3);  // E_CPU-sized (2, +1 adaptive wiggle)
    EXPECT_GE(team, 1);
  }
}

TEST(OmpProcess, DynamicSubtractsLoadavg) {
  Fixture f;
  // Saturate the host with a CPU hog so loadavg rises, then start the OMP
  // program: dynamic teams must shrink well below the CPU count.
  container::ContainerConfig hog_config;
  hog_config.name = "hog";
  hog_config.enable_resource_view = false;
  auto& hog_c = f.runtime.run(hog_config);
  workloads::CpuHog hog(f.host, hog_c, 8, 3600 * sec);
  f.host.run_for(5 * sec);  // let loadavg build up
  container::ContainerConfig config;
  config.name = "omp";
  config.enable_resource_view = false;
  auto& c = f.runtime.run(config);
  OmpProcess p(f.host, c, TeamStrategy::kDynamic, f.tiny());
  f.run_to_completion(p);
  ASSERT_FALSE(p.team_size_trace().empty());
  for (const int team : p.team_size_trace()) {
    EXPECT_LT(team, 8);
  }
}

TEST(OmpProcess, FixedTeamRespected) {
  Fixture f;
  auto& c = f.runtime.run({});
  OmpProcess p(f.host, c, TeamStrategy::kFixed, f.tiny(), 3);
  f.run_to_completion(p);
  for (const int team : p.team_size_trace()) {
    EXPECT_EQ(team, 3);
  }
}

TEST(OmpProcess, OverthreadedTeamIsSlower) {
  // One container limited to 2 CPUs: a 16-thread team (static, host view)
  // must lose to a 2-thread team (adaptive) on the same workload.
  auto run_with = [](TeamStrategy strategy, bool view) {
    Fixture f(16);
    container::ContainerConfig config;
    config.cfs_quota_us = 200000;  // 2 CPUs
    config.enable_resource_view = view;
    auto& c = f.runtime.run(config);
    OmpWorkload w;
    w.regions = 10;
    w.region_work = 100 * msec;
    w.serial_frac = 0.05;
    OmpProcess p(f.host, c, strategy, w);
    f.host.engine().run_until([&] { return p.finished(); }, 3600 * sec);
    return p.stats().exec_time();
  };
  const SimDuration oblivious = run_with(TeamStrategy::kStatic, false);
  const SimDuration adaptive = run_with(TeamStrategy::kAdaptive, true);
  EXPECT_LT(adaptive, oblivious);
}

TEST(OmpProcess, RunnableThreadsTrackPhase) {
  Fixture f;
  auto& c = f.runtime.run({});
  OmpProcess p(f.host, c, TeamStrategy::kFixed, f.tiny(), 4);
  EXPECT_EQ(p.runnable_threads(), 1);  // serial prologue
  f.run_to_completion(p);
  EXPECT_EQ(p.runnable_threads(), 0);
}

}  // namespace
}  // namespace arv::omp
