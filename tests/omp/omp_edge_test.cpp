// OpenMP runtime edge cases.
#include <gtest/gtest.h>

#include "src/omp/omp_runtime.h"

namespace arv::omp {
namespace {

using namespace arv::units;

struct Fixture {
  Fixture() : host(host_config()), runtime(host) {}

  static container::HostConfig host_config() {
    container::HostConfig config;
    config.cpus = 8;
    config.ram = 8 * GiB;
    return config;
  }

  container::Host host;
  container::ContainerRuntime runtime;
};

TEST(OmpEdge, SingleRegionProgram) {
  Fixture f;
  auto& c = f.runtime.run({});
  OmpWorkload w;
  w.regions = 1;
  w.region_work = 80 * msec;
  OmpProcess p(f.host, c, TeamStrategy::kAdaptive, w);
  f.host.engine().run_until([&] { return p.finished(); }, 60 * sec);
  EXPECT_EQ(p.stats().regions_done, 1);
  EXPECT_EQ(p.team_size_trace().size(), 1u);
}

TEST(OmpEdge, ZeroSerialFractionStillProgresses) {
  Fixture f;
  auto& c = f.runtime.run({});
  OmpWorkload w;
  w.regions = 3;
  w.region_work = 40 * msec;
  w.serial_frac = 0.0;
  OmpProcess p(f.host, c, TeamStrategy::kFixed, w, 4);
  f.host.engine().run_until([&] { return p.finished(); }, 60 * sec);
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(p.stats().regions_done, 3);
}

TEST(OmpEdge, TeamSizeReEvaluatedPerRegion) {
  // The container's quota is lifted mid-run; later regions must see the
  // larger effective CPU count (per-region team sizing, §4.1).
  Fixture f;
  container::ContainerConfig config;
  config.cfs_quota_us = 200000;  // 2 CPUs
  auto& c = f.runtime.run(config);
  OmpWorkload w;
  w.regions = 40;
  w.region_work = 100 * msec;
  OmpProcess p(f.host, c, TeamStrategy::kAdaptive, w);
  f.host.run_for(2 * sec);
  c.update_cfs_quota(kUnlimited);
  f.host.engine().run_until([&] { return p.finished(); }, 600 * sec);
  const auto& trace = p.team_size_trace();
  ASSERT_GE(trace.size(), 10u);
  EXPECT_LE(trace.front(), 3);       // quota era
  EXPECT_GE(trace.back(), 6);        // expanded era
}

TEST(OmpEdge, ExecTimeScalesInverselyWithCpus) {
  auto run_with_quota = [](std::int64_t quota) {
    Fixture f;
    container::ContainerConfig config;
    config.cfs_quota_us = quota;
    auto& c = f.runtime.run(config);
    OmpWorkload w;
    w.regions = 10;
    w.region_work = 200 * msec;
    w.alpha = 0.0;
    w.serial_frac = 0.001;
    OmpProcess p(f.host, c, TeamStrategy::kAdaptive, w);
    f.host.engine().run_until([&] { return p.finished(); }, 600 * sec);
    return p.stats().exec_time();
  };
  const auto two_cpus = run_with_quota(200000);
  const auto four_cpus = run_with_quota(400000);
  EXPECT_NEAR(static_cast<double>(two_cpus) / static_cast<double>(four_cpus),
              2.0, 0.25);
}

}  // namespace
}  // namespace arv::omp
