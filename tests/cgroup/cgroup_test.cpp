#include "src/cgroup/cgroup.h"

#include <gtest/gtest.h>

namespace arv::cgroup {
namespace {

TEST(CgroupTree, RootAlwaysExists) {
  Tree tree(8);
  EXPECT_TRUE(tree.exists(kRootCgroup));
  EXPECT_EQ(tree.get(kRootCgroup).name(), "/");
}

TEST(CgroupTree, CreateAssignsSequentialIds) {
  Tree tree(8);
  const CgroupId a = tree.create("a");
  const CgroupId b = tree.create("b");
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(tree.get(a).parent(), kRootCgroup);
}

TEST(CgroupTree, FindByName) {
  Tree tree(8);
  const CgroupId a = tree.create("web");
  EXPECT_EQ(tree.find("web"), a);
  EXPECT_EQ(tree.find("nope"), -1);
}

TEST(CgroupTree, NestedCreation) {
  Tree tree(8);
  const CgroupId parent = tree.create("parent");
  const CgroupId child = tree.create("child", parent);
  EXPECT_EQ(tree.get(child).parent(), parent);
  ASSERT_EQ(tree.get(parent).children().size(), 1u);
  EXPECT_EQ(tree.get(parent).children()[0], child);
}

TEST(CgroupTree, DestroyRemovesAndFreesName) {
  Tree tree(8);
  const CgroupId a = tree.create("a");
  tree.destroy(a);
  EXPECT_FALSE(tree.exists(a));
  EXPECT_EQ(tree.find("a"), -1);
  // Name can be reused afterwards.
  const CgroupId a2 = tree.create("a");
  EXPECT_NE(a2, a);
}

TEST(CgroupTree, DefaultKnobValues) {
  Tree tree(8);
  const CgroupId a = tree.create("a");
  EXPECT_EQ(tree.get(a).cpu().shares, 1024);
  EXPECT_EQ(tree.get(a).cpu().cfs_quota_us, kUnlimited);
  EXPECT_EQ(tree.get(a).cpu().cfs_period_us, 100000);
  EXPECT_TRUE(tree.get(a).cpu().cpuset.empty());
  EXPECT_EQ(tree.get(a).mem().limit_in_bytes, kUnlimited);
  EXPECT_EQ(tree.get(a).mem().soft_limit_in_bytes, kUnlimited);
}

TEST(CgroupTree, SettersApply) {
  Tree tree(8);
  const CgroupId a = tree.create("a");
  tree.set_cpu_shares(a, 512);
  tree.set_cfs_quota(a, 200000);
  tree.set_cfs_period(a, 50000);
  tree.set_cpuset(a, CpuSet::first_n(2));
  tree.set_mem_limit(a, 1 << 30);
  tree.set_mem_soft_limit(a, 1 << 29);
  EXPECT_EQ(tree.get(a).cpu().shares, 512);
  EXPECT_EQ(tree.get(a).cpu().cfs_quota_us, 200000);
  EXPECT_EQ(tree.get(a).cpu().cfs_period_us, 50000);
  EXPECT_EQ(tree.get(a).cpu().cpuset.count(), 2);
  EXPECT_EQ(tree.get(a).mem().limit_in_bytes, 1 << 30);
  EXPECT_EQ(tree.get(a).mem().soft_limit_in_bytes, 1 << 29);
}

TEST(CgroupTree, QuotaCpusComputation) {
  CpuConfig cfg;
  cfg.cfs_period_us = 100000;
  cfg.cfs_quota_us = 400000;
  EXPECT_EQ(cfg.quota_cpus(20), 4);
  cfg.cfs_quota_us = 50000;  // half a CPU rounds up to 1
  EXPECT_EQ(cfg.quota_cpus(20), 1);
  cfg.cfs_quota_us = kUnlimited;
  EXPECT_EQ(cfg.quota_cpus(20), 20);
  cfg.cfs_quota_us = 10000000;  // capped at online
  EXPECT_EQ(cfg.quota_cpus(20), 20);
}

TEST(CgroupTree, EffectiveCpusetIntersectsPath) {
  Tree tree(16);
  const CgroupId parent = tree.create("p");
  const CgroupId child = tree.create("c", parent);
  tree.set_cpuset(parent, *CpuSet::parse("0-7"));
  tree.set_cpuset(child, *CpuSet::parse("4-11"));
  EXPECT_EQ(tree.effective_cpuset(child).to_string(), "4-7");
}

TEST(CgroupTree, EffectiveCpusetDefaultsToAllOnline) {
  Tree tree(6);
  const CgroupId a = tree.create("a");
  EXPECT_EQ(tree.effective_cpuset(a).count(), 6);
}

TEST(CgroupTree, EffectiveQuotaTakesPathMinimum) {
  Tree tree(16);
  const CgroupId parent = tree.create("p");
  const CgroupId child = tree.create("c", parent);
  tree.set_cfs_quota(parent, 400000);  // 4 CPUs
  tree.set_cfs_quota(child, 800000);   // 8 CPUs, parent wins
  EXPECT_EQ(tree.effective_quota_cpus(child), 4);
}

TEST(CgroupTree, EffectiveBandwidthPicksTightestAncestor) {
  Tree tree(16);
  const CgroupId pod = tree.create("pod");
  const CgroupId container = tree.create("c", pod);
  // Unlimited everywhere => unlimited.
  EXPECT_EQ(tree.effective_bandwidth(container).quota_us, kUnlimited);
  // Parent: 2 CPUs; child unlimited => parent's setting binds.
  tree.set_cfs_quota(pod, 200000);
  EXPECT_EQ(tree.effective_bandwidth(container).quota_us, 200000);
  EXPECT_EQ(tree.effective_bandwidth(container).period_us, 100000);
  // Child gets a *tighter* ratio with a different period: child binds.
  tree.set_cfs_period(container, 50000);
  tree.set_cfs_quota(container, 50000);  // 1 CPU
  EXPECT_EQ(tree.effective_bandwidth(container).quota_us, 50000);
  EXPECT_EQ(tree.effective_bandwidth(container).period_us, 50000);
  // Child looser than parent: parent binds again.
  tree.set_cfs_quota(container, 400000);  // 8 CPUs at 50 ms
  EXPECT_EQ(tree.effective_bandwidth(container).quota_us, 200000);
}

TEST(CgroupTree, TotalSharesSumsNonRoot) {
  Tree tree(8);
  tree.create("a");
  const CgroupId b = tree.create("b");
  tree.set_cpu_shares(b, 2048);
  EXPECT_EQ(tree.total_shares(), 1024 + 2048);
}

TEST(CgroupTree, TotalSharesStaysConsistentUnderChurn) {
  Tree tree(8);
  std::vector<CgroupId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(tree.create("c" + std::to_string(i)));
  }
  tree.set_cpu_shares(ids[2], 512);
  tree.set_cpu_shares(ids[5], 4096);
  tree.destroy(ids[3]);
  tree.set_cpu_shares(ids[0], 2);
  tree.set_cpu_shares(kRootCgroup, 4096);  // root never enters the sum
  // The incrementally-maintained total must match a from-scratch sum.
  std::int64_t manual = 0;
  for (const CgroupId id : tree.all_ids()) {
    if (id != kRootCgroup) {
      manual += tree.get(id).cpu().shares;
    }
  }
  EXPECT_EQ(tree.total_shares(), manual);
}

TEST(CgroupTree, EventsFireOnLifecycleAndKnobs) {
  Tree tree(8);
  std::vector<Event> events;
  tree.subscribe([&](const Event& e) { events.push_back(e); });
  const CgroupId a = tree.create("a");
  tree.set_cpu_shares(a, 256);
  tree.set_mem_limit(a, 1 << 30);
  tree.destroy(a);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, EventKind::kCreated);
  EXPECT_EQ(events[1].kind, EventKind::kCpuChanged);
  EXPECT_EQ(events[2].kind, EventKind::kMemChanged);
  EXPECT_EQ(events[3].kind, EventKind::kDestroyed);
  EXPECT_EQ(events[3].id, a);
}

TEST(CgroupTree, DestroyEventCarriesNameAndPostRemovalState) {
  Tree tree(8);
  std::string seen_name;
  bool still_in_tree = true;
  std::int64_t shares_seen = -1;
  tree.subscribe([&](const Event& e) {
    if (e.kind == EventKind::kDestroyed) {
      seen_name = e.name;
      still_in_tree = tree.exists(e.id);
      shares_seen = tree.total_shares();  // must reflect the removal
    }
  });
  const CgroupId a = tree.create("gone");
  tree.create("stays");
  tree.destroy(a);
  EXPECT_EQ(seen_name, "gone");
  EXPECT_FALSE(still_in_tree);
  EXPECT_EQ(shares_seen, 1024);  // only "stays" remains
}

TEST(CgroupTree, AllIdsSkipsDestroyed) {
  Tree tree(8);
  const CgroupId a = tree.create("a");
  const CgroupId b = tree.create("b");
  tree.destroy(a);
  const auto ids = tree.all_ids();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], b);
}

TEST(CgroupTreeDeath, RejectsInvalidKnobs) {
  Tree tree(8);
  const CgroupId a = tree.create("a");
  EXPECT_DEATH(tree.set_cpu_shares(a, 1), "shares");
  EXPECT_DEATH(tree.set_cfs_period(a, 10), "period");
  EXPECT_DEATH(tree.set_cpuset(a, CpuSet::first_n(9)), "cpuset");
}

TEST(CgroupTreeDeath, DuplicateSiblingNamesRejected) {
  Tree tree(8);
  tree.create("dup");
  EXPECT_DEATH(tree.create("dup"), "unique");
}

TEST(CgroupTreeDeath, DestroyWithChildrenRejected) {
  Tree tree(8);
  const CgroupId parent = tree.create("p");
  tree.create("c", parent);
  EXPECT_DEATH(tree.destroy(parent), "children");
}

}  // namespace
}  // namespace arv::cgroup
