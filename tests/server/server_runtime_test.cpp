#include "src/server/server_runtime.h"

#include <gtest/gtest.h>

#include "src/workloads/hogs.h"

namespace arv::server {
namespace {

using namespace arv::units;

struct Fixture {
  Fixture() : host(host_config()), runtime(host) {}

  static container::HostConfig host_config() {
    container::HostConfig config;
    config.cpus = 20;
    config.ram = 128 * GiB;
    return config;
  }

  container::Host host;
  container::ContainerRuntime runtime;
};

TEST(WorkerPoolServer, DetectsHostCpusInStockContainer) {
  Fixture f;
  container::ContainerConfig config;
  config.cfs_quota_us = 400000;
  config.enable_resource_view = false;
  auto& c = f.runtime.run(config);
  WorkerPoolServer srv(f.host, c, {});
  EXPECT_EQ(srv.workers(), 20);  // the semantic gap, worker-pool flavour
}

TEST(WorkerPoolServer, DetectsEffectiveCpusBehindView) {
  Fixture f;
  container::ContainerConfig config;
  config.cfs_quota_us = 400000;
  auto& c = f.runtime.run(config);
  WorkerPoolServer srv(f.host, c, {});
  EXPECT_EQ(srv.workers(), 4);
}

TEST(WorkerPoolServer, FixedSizingRespected) {
  Fixture f;
  auto& c = f.runtime.run({});
  WebConfig config;
  config.sizing = Sizing::kFixed;
  config.fixed_workers = 7;
  WorkerPoolServer srv(f.host, c, config);
  EXPECT_EQ(srv.workers(), 7);
}

TEST(WorkerPoolServer, ServesRequestsAndRecordsLatency) {
  Fixture f;
  auto& c = f.runtime.run({});
  WebConfig config;
  config.arrivals_per_sec = 500;
  config.service_cpu = 2 * msec;
  WorkerPoolServer srv(f.host, c, config);
  f.host.run_for(5 * sec);
  // 500 req/s * 2ms = 1 CPU of demand on a 20-CPU host: keeps up easily.
  EXPECT_GT(srv.stats().completed, 2000u);
  EXPECT_NEAR(srv.stats().throughput_per_sec(5 * sec), 500.0, 25.0);
  EXPECT_LT(srv.stats().p95_ms(), 50.0);
  EXPECT_EQ(srv.dropped(), 0u);
}

TEST(WorkerPoolServer, OverloadQueuesAndDrops) {
  Fixture f;
  container::ContainerConfig config;
  config.cfs_quota_us = 100000;  // 1 CPU
  auto& c = f.runtime.run(config);
  WebConfig web;
  web.arrivals_per_sec = 2000;  // 2000 * 2ms = 4 CPUs of demand on 1
  web.service_cpu = 2 * msec;
  web.max_queue = 500;
  WorkerPoolServer srv(f.host, c, web);
  f.host.run_for(5 * sec);
  EXPECT_GT(srv.dropped(), 0u);
  EXPECT_GE(srv.queue_depth(), 400u);
  EXPECT_LT(srv.stats().throughput_per_sec(5 * sec), 700.0);
}

TEST(WorkerPoolServer, OverThreadingHurtsTailLatency) {
  // Two identical quota-limited containers under the same load; the server
  // that detects the host's 20 CPUs runs 20 workers on 2 effective CPUs.
  auto run_one = [](bool view) {
    Fixture f;
    container::ContainerConfig config;
    config.cfs_quota_us = 200000;  // 2 CPUs
    config.enable_resource_view = view;
    auto& c = f.runtime.run(config);
    WebConfig web;
    // Slight overload: the queue builds, every worker goes runnable, and
    // 20 workers on 2 effective CPUs pay the context-switch tax while
    // 2 workers do not.
    web.arrivals_per_sec = 1000;
    web.service_cpu = 25 * msec / 10;  // 2.5 ms => 2.5 CPUs of demand
    WorkerPoolServer srv(f.host, c, web);
    f.host.run_for(10 * sec);
    return std::pair{srv.stats().p95_ms(),
                     srv.stats().throughput_per_sec(10 * sec)};
  };
  const auto [oblivious_p95, oblivious_tput] = run_one(false);
  const auto [adaptive_p95, adaptive_tput] = run_one(true);
  // CFS quota bursting lets the oversized pool run wide for part of each
  // period, so the penalty is substantial rather than total: clearly worse
  // tail latency and throughput, not collapse.
  EXPECT_LT(adaptive_p95, oblivious_p95 * 0.8);
  EXPECT_GT(adaptive_tput, oblivious_tput * 1.1);
}

TEST(WorkerPoolServer, GracefulReloadTracksFreedCpus) {
  Fixture f;
  // The hog exists first, so the web container's view starts at its fair
  // share (10 of 20 CPUs).
  auto& hog_c = f.runtime.run({.name = "hog"});
  workloads::CpuHog hog(f.host, hog_c, 20, 40 * sec);
  auto& web_c = f.runtime.run({.name = "web"});
  WebConfig config;
  config.resize_interval = 500 * msec;
  // ~14 CPUs of demand: saturates the view while the hog runs, leaves
  // slack for the view to expand into once the hog retires.
  config.arrivals_per_sec = 3500;
  WorkerPoolServer srv(f.host, web_c, config);
  const int initial = srv.workers();
  EXPECT_EQ(initial, 10);
  f.host.run_for(30 * sec);  // hog retires around t=4s
  EXPECT_GT(srv.workers(), initial);
  EXPECT_GE(srv.worker_trace().size(), 2u);
}

TEST(CacheServer, DetectsHostRamInStockContainer) {
  Fixture f;
  container::ContainerConfig config;
  config.mem_limit = 2 * GiB;
  config.enable_resource_view = false;
  auto& c = f.runtime.run(config);
  CacheServer srv(f.host, c, {});
  // 50% of (128 GiB - 1 GiB): catastrophically oversized for a 2 GiB limit.
  EXPECT_GT(srv.cache_target(), 60 * GiB);
}

TEST(CacheServer, SizesToEffectiveMemoryBehindView) {
  Fixture f;
  container::ContainerConfig config;
  config.mem_limit = 2 * GiB;
  config.mem_soft_limit = 2 * GiB;
  auto& c = f.runtime.run(config);
  CacheServer srv(f.host, c, {});
  EXPECT_EQ(srv.cache_target(), (2 * GiB - 1 * GiB) / 2);
}

TEST(CacheServer, WarmCacheImprovesHitRatio) {
  Fixture f;
  auto& c = f.runtime.run({});
  CacheConfig config;
  config.dataset = 4 * GiB;
  config.sizing = Sizing::kFixed;
  config.fixed_cache = 4 * GiB;
  CacheServer srv(f.host, c, config);
  EXPECT_EQ(srv.hit_ratio(), 0.0);
  f.host.run_for(20 * sec);
  EXPECT_GT(srv.hit_ratio(), 0.9);
  EXPECT_GT(srv.stats().completed, 1000u);
}

TEST(CacheServer, OversizedCacheThrashesInSmallContainer) {
  auto run_one = [](bool view) {
    Fixture f;
    container::ContainerConfig config;
    config.mem_limit = 2 * GiB;
    config.mem_soft_limit = 2 * GiB;
    config.enable_resource_view = view;
    auto& c = f.runtime.run(config);
    CacheConfig cache;
    cache.dataset = 2 * GiB;
    CacheServer srv(f.host, c, cache);
    f.host.run_for(30 * sec);
    return srv.stats().throughput_per_sec(30 * sec);
  };
  const double oblivious = run_one(false);  // 63.5 GiB cache in 2 GiB limit
  const double adaptive = run_one(true);    // 0.5 GiB cache, no swap
  EXPECT_GT(adaptive, oblivious * 1.5);
}

TEST(CacheServer, ResizeFollowsEffectiveMemory) {
  Fixture f;
  container::ContainerConfig config;
  config.mem_limit = 8 * GiB;
  config.mem_soft_limit = 2 * GiB;
  auto& c = f.runtime.run(config);
  CacheConfig cache;
  cache.dataset = 8 * GiB;
  cache.resize_interval = 500 * msec;
  CacheServer srv(f.host, c, cache);
  const Bytes initial_target = srv.cache_target();
  EXPECT_EQ(initial_target, (2 * GiB - 1 * GiB) / 2);
  // The 50% rule alone never crosses Algorithm 2's 90% usage trigger, so
  // effective memory stays put — until something else in the container
  // (application data) builds real pressure. Then the view expands and the
  // resize loop follows it upward.
  workloads::MemHog app_data(f.host, c, 1700 * MiB, 1 * GiB);
  f.host.run_for(60 * sec);
  EXPECT_GT(srv.cache_target(), initial_target);
}

TEST(RequestStats, PercentileAndThroughput) {
  RequestStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.latency_hist.record(i * 1000);  // 1..100 ms
    stats.latency_us.add(i * 1000.0);
    ++stats.completed;
  }
  // The log-bucket sketch guarantees <= 6.25% relative error at this scale.
  EXPECT_NEAR(stats.p95_ms(), 95.0, 95.0 * 0.0625);
  EXPECT_DOUBLE_EQ(stats.throughput_per_sec(10 * sec), 10.0);
}

TEST(RequestStats, MergeFoldsHistograms) {
  RequestStats a;
  RequestStats b;
  a.latency_hist.record(1000);
  a.completed = 1;
  b.latency_hist.record(100000);
  b.completed = 1;
  a.merge(b);
  EXPECT_EQ(a.completed, 2u);
  EXPECT_EQ(a.latency_hist.count(), 2u);
  EXPECT_NEAR(a.percentile_ms(99.0), 100.0, 100.0 * 0.0625);
}

}  // namespace
}  // namespace arv::server
