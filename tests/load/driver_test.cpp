// OpenLoopDriver: exact schedule replay, open-loop semantics, per-tenant
// request conservation — calm and under fault chaos.
#include "src/load/driver.h"

#include <gtest/gtest.h>

#include <string>

#include "src/cluster/faults.h"
#include "src/cluster/pod_workloads.h"
#include "src/harness/scenario.h"
#include "src/load/trace_spec.h"

namespace arv::load {
namespace {

using namespace arv::units;

container::HostConfig small_host() {
  container::HostConfig config;
  config.cpus = 4;
  config.ram = 8 * GiB;
  return config;
}

container::K8sResources web_res() {
  container::K8sResources r;
  r.request_millicpu = 1000;
  r.request_memory = 1 * GiB;
  return r;
}

TraceSpec two_tenant_spec(ArrivalProcess process) {
  TraceSpec spec;
  spec.duration = 2 * sec;
  spec.slot = 100 * msec;
  spec.mean_rps = 400;
  spec.diurnal_amplitude = 0.4;
  spec.process = process;
  spec.seed = 77;
  spec.tenants.push_back({"api", 3.0, 1 * msec, 10 * msec, 1.3});
  spec.tenants.push_back({"batch", 1.0, 2 * msec, 30 * msec, 1.2});
  return spec;
}

TEST(OpenLoopDriver, ReplaysTheScheduleExactly) {
  const CompiledTrace trace = compile(two_tenant_spec(ArrivalProcess::kPoisson));
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  fleet.add_host(small_host());
  fleet.add_tenant("api");
  fleet.add_tenant("batch");
  ASSERT_GE(fleet.place_tenant_web_pod("api", web_res()), 0);
  ASSERT_GE(fleet.place_tenant_web_pod("batch", web_res()), 0);
  fleet.use_trace(trace);
  // Exactly one cycle: every scheduled arrival injects, none twice.
  fleet.run(trace.duration());
  EXPECT_EQ(fleet.driver()->injected("api"), trace.tenants[0].total);
  EXPECT_EQ(fleet.driver()->injected("batch"), trace.tenants[1].total);
  EXPECT_EQ(fleet.driver()->injected(), trace.total_arrivals());
  EXPECT_EQ(fleet.driver()->cycles(), 1u);
  // The driver is the router's only request source (tenant routers never
  // self-generate), so generated must equal injected per tenant.
  EXPECT_EQ(fleet.tenant_router("api")->generated(), trace.tenants[0].total);
  EXPECT_EQ(fleet.tenant_router("batch")->generated(), trace.tenants[1].total);
}

TEST(OpenLoopDriver, RepeatsCyclesAndOneShotStops) {
  const CompiledTrace trace =
      compile(two_tenant_spec(ArrivalProcess::kDeterministic));
  for (const bool repeat : {true, false}) {
    SCOPED_TRACE(repeat ? "repeat" : "one-shot");
    harness::FleetScenario fleet;
    fleet.add_host(small_host());
    fleet.add_tenant("api");
    fleet.add_tenant("batch");
    ASSERT_GE(fleet.place_tenant_web_pod("api", web_res()), 0);
    ASSERT_GE(fleet.place_tenant_web_pod("batch", web_res()), 0);
    DriverConfig config;
    config.repeat = repeat;
    fleet.use_trace(trace, config);
    fleet.run(3 * trace.duration());
    if (repeat) {
      EXPECT_EQ(fleet.driver()->cycles(), 3u);
      EXPECT_EQ(fleet.driver()->injected(), 3 * trace.total_arrivals());
    } else {
      EXPECT_EQ(fleet.driver()->injected(), trace.total_arrivals());
    }
  }
}

TEST(OpenLoopDriver, OpenLoopNeverThrottlesArrivals) {
  // One tiny replica against a heavy schedule: a closed-loop generator
  // would slow down with the server; the open-loop driver must not. The
  // overload shows up as drops/shed instead — that is the point.
  TraceSpec spec = two_tenant_spec(ArrivalProcess::kDeterministic);
  spec.mean_rps = 3000;
  spec.tenants.resize(1);
  const CompiledTrace trace = compile(spec);
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  fleet.add_tenant("api");
  server::WebConfig web;
  web.service_cpu = 20 * msec;  // far beyond one host's capacity at 3000 rps
  web.max_queue = 50;
  ASSERT_GE(fleet.place_tenant_web_pod("api", web_res(), web), 0);
  fleet.use_trace(trace);
  fleet.run(trace.duration());
  const cluster::RequestRouter& r = *fleet.tenant_router("api");
  EXPECT_EQ(r.generated(), trace.tenants[0].total);  // full schedule arrived
  EXPECT_GT(r.dropped() + r.shed(), 0u);             // and the fleet bled
}

TEST(OpenLoopDriver, PerTenantConservationUnderChaos) {
  // The per-tenant request-conservation identity — generated ==
  // routed + dropped + unroutable + shed — must survive crashes, restarts,
  // and failovers with the driver injecting through it all.
  const CompiledTrace trace = compile(two_tenant_spec(ArrivalProcess::kMmpp));
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t seed = 0xc0ffee + static_cast<std::uint64_t>(i);
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    harness::FleetScenario fleet;
    for (int h = 0; h < 4; ++h) {
      fleet.add_host(small_host());
    }
    fleet.add_tenant("api");
    fleet.add_tenant("batch");
    ASSERT_GE(fleet.place_tenant_web_pod("api", web_res()), 0);
    ASSERT_GE(fleet.place_tenant_web_pod("api", web_res()), 0);
    ASSERT_GE(fleet.place_tenant_web_pod("batch", web_res()), 0);
    fleet.use_trace(trace);
    fleet.enable_recovery();
    Rng chaos_rng(seed);
    cluster::ChaosOptions chaos;
    chaos.horizon = 2 * sec;
    fleet.enable_faults(cluster::FaultPlan::random(
        chaos_rng, chaos, fleet.cluster().host_count(),
        fleet.cluster().pod_count()));
    fleet.run(4 * sec);
    for (const std::string tenant : {"api", "batch"}) {
      const cluster::RequestRouter& r = *fleet.tenant_router(tenant);
      EXPECT_EQ(r.generated(),
                r.routed() + r.dropped() + r.unroutable() + r.shed())
          << tenant;
      EXPECT_EQ(r.generated(), fleet.driver()->injected(tenant)) << tenant;
    }
  }
}

TEST(OpenLoopDriver, InjectedCostsDriveHeterogeneousService) {
  // Bounded-Pareto costs: with a wide cost range the latency distribution
  // must be visibly heavier-tailed than with a fixed cost.
  TraceSpec narrow = two_tenant_spec(ArrivalProcess::kDeterministic);
  narrow.tenants.resize(1);
  narrow.tenants[0].cost_min = 4 * msec;
  narrow.tenants[0].cost_max = 4 * msec;
  TraceSpec wide = narrow;
  wide.tenants[0].cost_max = 200 * msec;
  auto run = [](const TraceSpec& spec) {
    harness::FleetScenario fleet;
    fleet.add_host(small_host());
    fleet.add_tenant("api");
    server::WebConfig web;
    web.service_cpu = 4 * msec;
    EXPECT_GE(fleet.place_tenant_web_pod("api", web_res(), web), 0);
    fleet.use_trace(compile(spec));
    fleet.run(4 * sec);
    return fleet.tenant_router("api")->aggregate();
  };
  const server::RequestStats fixed = run(narrow);
  const server::RequestStats pareto = run(wide);
  ASSERT_GT(fixed.completed, 0u);
  ASSERT_GT(pareto.completed, 0u);
  EXPECT_GT(pareto.percentile_ms(99.0), fixed.percentile_ms(99.0));
}

}  // namespace
}  // namespace arv::load
