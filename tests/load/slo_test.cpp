// SloAccountant: per-tenant availability/budget/burn accounting, the
// /sys/arv/slo/ control plane, and the byte-identical-trace contract for the
// whole workload engine stacked with HPA + VPA + cluster autoscaler.
#include "src/load/slo.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/pod_workloads.h"
#include "src/harness/scenario.h"
#include "src/load/driver.h"
#include "src/load/trace_spec.h"

namespace arv::load {
namespace {

using namespace arv::units;

container::HostConfig small_host() {
  container::HostConfig config;
  config.cpus = 4;
  config.ram = 8 * GiB;
  return config;
}

container::K8sResources web_res() {
  container::K8sResources r;
  r.request_millicpu = 1000;
  r.request_memory = 1 * GiB;
  return r;
}

TraceSpec gentle_spec() {
  TraceSpec spec;
  spec.duration = 2 * sec;
  spec.slot = 100 * msec;
  spec.mean_rps = 200;
  spec.diurnal_amplitude = 0.3;
  spec.seed = 11;
  spec.tenants.push_back({"api", 1.0, 1 * msec, 8 * msec, 1.3});
  return spec;
}

TEST(SloAccountant, HealthyTenantKeepsItsBudget) {
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  fleet.add_host(small_host());
  fleet.add_tenant("api");
  ASSERT_GE(fleet.place_tenant_web_pod("api", web_res()), 0);
  ASSERT_GE(fleet.place_tenant_web_pod("api", web_res()), 0);
  fleet.use_trace(compile(gentle_spec()));
  SloTarget target;
  target.availability_permille = 999;
  target.p99_target = 500 * msec;
  fleet.declare_slo("api", target);
  fleet.run(4 * sec);
  ASSERT_GT(fleet.tenant_router("api")->generated(), 0u);
  EXPECT_EQ(fleet.slo()->availability_permille("api"), 1000);
  EXPECT_EQ(fleet.slo()->budget_remaining_permille("api"), 1000);
  EXPECT_EQ(fleet.slo()->burn_rate_permille("api"), 0);
  EXPECT_GT(fleet.slo()->p99_us("api"), 0);
  EXPECT_TRUE(fleet.slo()->attaining("api"));
}

TEST(SloAccountant, StarvedTenantBurnsItsBudget) {
  // A tenant with no replicas at all: every request is unroutable, the
  // availability collapses and the budget burns to zero.
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  fleet.add_tenant("api");
  fleet.use_trace(compile(gentle_spec()));
  fleet.declare_slo("api");
  fleet.run(2 * sec);
  ASSERT_GT(fleet.tenant_router("api")->generated(), 0u);
  EXPECT_EQ(fleet.tenant_router("api")->unroutable(),
            fleet.tenant_router("api")->generated());
  EXPECT_EQ(fleet.slo()->availability_permille("api"), 0);
  EXPECT_EQ(fleet.slo()->budget_remaining_permille("api"), 0);
  EXPECT_GT(fleet.slo()->burn_rate_permille("api"), 1000);
  EXPECT_FALSE(fleet.slo()->attaining("api"));
}

TEST(SloAccountant, ControlFilesMatchAccountantState) {
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  fleet.add_tenant("api");
  ASSERT_GE(fleet.place_tenant_web_pod("api", web_res()), 0);
  fleet.use_trace(compile(gentle_spec()));
  fleet.declare_slo("api");
  // Components first fire one tick after registration, so align the run end
  // with an accounting round: rounds land at 1ms, 101ms, ..., 2001ms.
  fleet.run(2 * sec + 1 * msec);
  const vfs::PseudoFs& fs = fleet.cluster().host(0).sysfs().host_fs();
  const auto read_int = [&](const std::string& path) {
    const auto contents = fs.read(path);
    EXPECT_TRUE(contents.has_value()) << path;
    return contents ? std::stoll(*contents) : -1;
  };
  EXPECT_EQ(read_int("/sys/arv/slo/api/availability_permille"),
            fleet.slo()->availability_permille("api"));
  EXPECT_EQ(read_int("/sys/arv/slo/api/p99_us"), fleet.slo()->p99_us("api"));
  EXPECT_EQ(read_int("/sys/arv/slo/api/budget_remaining_permille"),
            fleet.slo()->budget_remaining_permille("api"));
  EXPECT_EQ(read_int("/sys/arv/slo/api/burn_rate_permille"),
            fleet.slo()->burn_rate_permille("api"));
  EXPECT_EQ(read_int("/sys/arv/slo/api/generated"),
            static_cast<std::int64_t>(fleet.tenant_router("api")->generated()));
  EXPECT_EQ(read_int("/sys/arv/slo/api/good"),
            static_cast<std::int64_t>(fleet.tenant_router("api")->routed()));
  // No admission controller in this fleet: nothing is ever degraded.
  EXPECT_EQ(read_int("/sys/arv/slo/api/degraded"), 0);
  const auto objective = fs.read("/sys/arv/slo/api/objective");
  ASSERT_TRUE(objective.has_value());
  EXPECT_NE(objective->find("availability_permille 999"), std::string::npos);
}

TEST(SloAccountant, TraceCarriesSloSeries) {
  cluster::ClusterConfig config;
  config.enable_tracing = true;
  config.trace_interval = 100 * msec;
  harness::FleetScenario fleet(config);
  fleet.add_host(small_host());
  fleet.add_tenant("api");
  ASSERT_GE(fleet.place_tenant_web_pod("api", web_res()), 0);
  fleet.use_trace(compile(gentle_spec()));
  fleet.declare_slo("api");
  fleet.run(2 * sec);
  const obs::TraceRecorder& trace = *fleet.cluster().trace();
  for (const std::string series :
       {"slo.api.p99_us", "slo.api.availability_permille",
        "slo.api.budget_remaining_permille", "slo.api.burn_rate_permille",
        "slo.api.degraded", "load.injected", "api.load.injected"}) {
    EXPECT_TRUE(trace.find(series).has_value()) << series;
  }
}

// --- the acceptance bar: thread-invariance of the full stack ------------------

struct EngineResult {
  std::string trace;
  std::string slo_render;
  std::uint64_t injected = 0;
  std::uint64_t generated = 0;
  std::uint64_t completed = 0;
  std::int64_t p99 = 0;
  std::int64_t availability = 0;
};

/// The full workload engine — two driven tenants, SLOs, per-tenant HPA, VPA,
/// cluster autoscaler — must produce byte-identical cluster traces and SLO
/// renders at any thread count.
EngineResult run_engine(int threads) {
  cluster::ClusterConfig config;
  config.seed = 42;
  config.enable_tracing = true;
  config.trace_interval = 50 * msec;
  config.threads = threads;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < 6; ++i) {
    fleet.add_host(small_host());
  }
  fleet.cluster().cordon_host(4, true);  // autoscaler headroom
  fleet.cluster().cordon_host(5, true);

  TraceSpec spec;
  spec.duration = 3 * sec;
  spec.slot = 100 * msec;
  spec.mean_rps = 600;
  spec.diurnal_amplitude = 0.6;
  FlashCrowd crowd;
  crowd.start = 1 * sec;
  crowd.ramp = 300 * msec;
  crowd.hold = 500 * msec;
  crowd.decay = 300 * msec;
  crowd.magnitude = 2.5;
  spec.flash_crowds.push_back(crowd);
  spec.seed = 4242;
  spec.tenants.push_back({"api", 3.0, 1 * msec, 12 * msec, 1.3});
  spec.tenants.push_back({"batch", 1.0, 4 * msec, 40 * msec, 1.2});

  fleet.add_tenant("api");
  fleet.add_tenant("batch");
  const int api_pod = fleet.place_tenant_web_pod("api", web_res());
  EXPECT_GE(api_pod, 0);
  EXPECT_GE(fleet.place_tenant_web_pod("batch", web_res()), 0);
  fleet.use_trace(compile(spec));
  fleet.declare_slo("api");
  fleet.declare_slo("batch");
  server::WebConfig web;
  web.service_cpu = 4 * msec;
  cluster::HpaConfig hpa;
  hpa.period = 200 * msec;
  hpa.max_replicas = 6;
  cluster::PodSpec api_template;
  api_template.resources = web_res();
  fleet.enable_tenant_hpa("api", api_template, web, hpa);
  fleet.tenant_hpa("api")->adopt(api_pod);
  fleet.enable_vpa();
  fleet.enable_cluster_autoscaler();
  fleet.run(6 * sec);

  EngineResult result;
  result.trace = fleet.cluster().trace()->to_csv();
  const vfs::PseudoFs& fs = fleet.cluster().host(0).sysfs().host_fs();
  for (const std::string tenant : {"api", "batch"}) {
    for (const std::string file :
         {"objective", "availability_permille", "p99_us",
          "budget_remaining_permille", "burn_rate_permille", "generated",
          "good"}) {
      const auto contents = fs.read("/sys/arv/slo/" + tenant + "/" + file);
      EXPECT_TRUE(contents.has_value()) << tenant << "/" << file;
      result.slo_render += tenant + "/" + file + ":" + contents.value_or("?");
    }
  }
  result.injected = fleet.driver()->injected();
  result.generated = fleet.tenant_router("api")->generated() +
                     fleet.tenant_router("batch")->generated();
  result.completed = fleet.tenant_router("api")->aggregate().completed +
                     fleet.tenant_router("batch")->aggregate().completed;
  result.p99 = fleet.slo()->p99_us("api");
  result.availability = fleet.slo()->availability_permille("api");
  // Conservation per tenant, in every threading configuration.
  for (const std::string tenant : {"api", "batch"}) {
    const cluster::RequestRouter& r = *fleet.tenant_router(tenant);
    EXPECT_EQ(r.generated(),
              r.routed() + r.dropped() + r.unroutable() + r.shed())
        << tenant;
  }
  return result;
}

TEST(SloAccountant, EngineIsByteIdenticalAcrossThreadCounts) {
  const EngineResult reference = run_engine(1);
  ASSERT_FALSE(reference.trace.empty());
  ASSERT_GT(reference.injected, 0u);
  ASSERT_GT(reference.completed, 0u);
  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const EngineResult other = run_engine(threads);
    EXPECT_EQ(reference.trace, other.trace);
    EXPECT_EQ(reference.slo_render, other.slo_render);
    EXPECT_EQ(reference.injected, other.injected);
    EXPECT_EQ(reference.generated, other.generated);
    EXPECT_EQ(reference.completed, other.completed);
    EXPECT_EQ(reference.p99, other.p99);
    EXPECT_EQ(reference.availability, other.availability);
  }
}

}  // namespace
}  // namespace arv::load
