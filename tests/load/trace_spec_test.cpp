#include "src/load/trace_spec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/util/rng.h"

namespace arv::load {
namespace {

using namespace arv::units;

// Pinned by TraceSpec.CompileGolden (values recorded from the reference
// build; any platform must reproduce them bit-for-bit).
constexpr std::uint64_t kGoldenTotal = 4962;
constexpr std::uint64_t kGoldenApi = 3685;
constexpr std::uint64_t kGoldenHead = 7851502628164928705ull;

// --- deterministic math -------------------------------------------------------

TEST(DetMath, SinPermilleHitsAnchorsExactly) {
  EXPECT_EQ(det::sin_permille(0), 0);
  EXPECT_EQ(det::sin_permille(500), 1000);
  EXPECT_EQ(det::sin_permille(1000), 0);
  EXPECT_EQ(det::sin_permille(1500), -1000);
  // Wrapping, including negatives.
  EXPECT_EQ(det::sin_permille(2500), 1000);
  EXPECT_EQ(det::sin_permille(-500), -1000);
}

TEST(DetMath, SinPermilleTracksLibmSine) {
  for (std::int64_t phase = 0; phase < 2000; phase += 7) {
    const double truth =
        std::sin(static_cast<double>(phase) * 3.14159265358979323846 / 1000.0);
    EXPECT_NEAR(static_cast<double>(det::sin_permille(phase)) / 1000.0, truth,
                0.003)
        << "phase " << phase;
  }
}

TEST(DetMath, ExpAndLnMatchLibm) {
  for (const double x : {-8.0, -2.5, -0.3, 0.0, 0.4, 1.0, 3.7, 12.0}) {
    EXPECT_NEAR(det::det_exp(x), std::exp(x), std::exp(x) * 1e-12) << x;
  }
  for (const double x : {1e-6, 0.01, 0.5, 1.0, 2.718281828, 1000.0, 1e12}) {
    EXPECT_NEAR(det::det_ln(x), std::log(x), 1e-10) << x;
  }
  EXPECT_NEAR(det::det_pow(2.0, 10.0), 1024.0, 1e-9);
  EXPECT_NEAR(det::det_pow(81.0, 0.5), 9.0, 1e-10);
}

TEST(DetMath, PoissonMeanAndDeterminism) {
  Rng rng(99);
  const double lambda = 37.5;
  std::uint64_t total = 0;
  const int draws = 4000;
  for (int i = 0; i < draws; ++i) {
    total += det::poisson(rng, lambda);
  }
  const double mean = static_cast<double>(total) / draws;
  EXPECT_NEAR(mean, lambda, lambda * 0.03);
  // Same seed => same sequence, bit for bit.
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(det::poisson(a, 3.7), det::poisson(b, 3.7));
  }
  Rng z(1);
  EXPECT_EQ(det::poisson(z, 0.0), 0u);
}

TEST(DetMath, BoundedParetoStaysInRangeAndIsHeavyTailed) {
  Rng rng(5);
  const std::int64_t lo = 1000;
  const std::int64_t hi = 100000;
  std::int64_t sum = 0;
  std::int64_t max_seen = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const std::int64_t v = det::bounded_pareto(rng, lo, hi, 1.3);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
    sum += v;
    max_seen = std::max(max_seen, v);
  }
  const double mean = static_cast<double>(sum) / draws;
  // Mass concentrates near lo but the tail reaches far: the heavy-tail
  // signature (mean well below the midpoint, max near the cap).
  EXPECT_LT(mean, 12000.0);
  EXPECT_GT(mean, static_cast<double>(lo));
  EXPECT_GT(max_seen, hi / 2);
}

// --- compilation --------------------------------------------------------------

TraceSpec small_spec() {
  TraceSpec spec;
  spec.duration = 10 * sec;
  spec.slot = 100 * msec;
  spec.mean_rps = 500;
  spec.diurnal_amplitude = 0.5;
  spec.seed = 1234;
  spec.tenants.push_back({"api", 3.0, 1 * msec, 20 * msec, 1.3});
  spec.tenants.push_back({"batch", 1.0, 5 * msec, 80 * msec, 1.1});
  return spec;
}

TEST(TraceSpec, CompileIsDeterministic) {
  const TraceSpec spec = small_spec();
  const CompiledTrace a = compile(spec);
  const CompiledTrace b = compile(spec);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].tenant, b.tenants[i].tenant);
    EXPECT_EQ(a.tenants[i].arrivals, b.tenants[i].arrivals);
    EXPECT_EQ(a.tenants[i].total, b.tenants[i].total);
  }
}

TEST(TraceSpec, CompileGolden) {
  // Pinned output of a fixed spec+seed: the schedule must be identical on
  // every platform, compiler, and build type — the golden half of the
  // byte-identical-trace contract for the workload engine. If this fails,
  // some arithmetic stopped being deterministic; do not just re-pin it.
  const CompiledTrace trace = compile(small_spec());
  ASSERT_EQ(trace.tenants.size(), 2u);
  ASSERT_EQ(trace.tenants[0].arrivals.size(), 100u);
  EXPECT_EQ(trace.slot, 100 * msec);
  const std::uint64_t total = trace.total_arrivals();
  const std::uint64_t api = trace.tenants[0].total;
  const std::uint64_t batch = trace.tenants[1].total;
  EXPECT_EQ(api + batch, total);
  // Cycle mean is 500 rps over 10 s => ~5000 arrivals, 3:1 tenant split.
  EXPECT_NEAR(static_cast<double>(total), 5000.0, 300.0);
  EXPECT_NEAR(static_cast<double>(api) / static_cast<double>(total), 0.75,
              0.05);
  // The exact pinned values (recorded from the reference build).
  EXPECT_EQ(total, kGoldenTotal);
  EXPECT_EQ(api, kGoldenApi);
  std::uint64_t head = 0;
  for (std::size_t s = 0; s < 10; ++s) {
    head = head * 131 + trace.tenants[0].arrivals[s];
  }
  EXPECT_EQ(head, kGoldenHead);
}

TEST(TraceSpec, DeterministicProcessEmitsExactCounts) {
  TraceSpec spec = small_spec();
  spec.process = ArrivalProcess::kDeterministic;
  spec.diurnal_amplitude = 0.0;
  const CompiledTrace trace = compile(spec);
  // Flat 500 rps split 3:1 over 10 s: totals are exact, not statistical.
  EXPECT_EQ(trace.tenants[0].total, 3750u);
  EXPECT_EQ(trace.tenants[1].total, 1250u);
}

TEST(TraceSpec, DiurnalShapePeaksMidCycle) {
  TraceSpec spec = small_spec();
  spec.process = ArrivalProcess::kDeterministic;
  spec.diurnal_amplitude = 0.8;
  const CompiledTrace trace = compile(spec);
  const auto& a = trace.tenants[0].arrivals;
  // sin peaks at 1/4 cycle and troughs at 3/4: slot 25 must far exceed 75.
  EXPECT_GT(a[25], a[75] * 3);
}

TEST(TraceSpec, FlashCrowdMultipliesitsWindow) {
  TraceSpec base = small_spec();
  base.process = ArrivalProcess::kDeterministic;
  base.diurnal_amplitude = 0.0;
  TraceSpec spiked = base;
  FlashCrowd crowd;
  crowd.start = 4 * sec;
  crowd.ramp = 1 * sec;
  crowd.hold = 1 * sec;
  crowd.decay = 1 * sec;
  crowd.magnitude = 3.0;
  spiked.flash_crowds.push_back(crowd);
  const CompiledTrace calm = compile(base);
  const CompiledTrace hot = compile(spiked);
  // Inside the hold window demand triples; outside it nothing changes.
  EXPECT_NEAR(static_cast<double>(hot.tenants[0].arrivals[52]),
              3.0 * static_cast<double>(calm.tenants[0].arrivals[52]), 2.0);
  EXPECT_EQ(hot.tenants[0].arrivals[10], calm.tenants[0].arrivals[10]);
  EXPECT_EQ(hot.tenants[0].arrivals[90], calm.tenants[0].arrivals[90]);
}

TEST(TraceSpec, MmppBurstsRaiseTheMean) {
  TraceSpec calm = small_spec();
  calm.diurnal_amplitude = 0.0;
  TraceSpec bursty = calm;
  bursty.process = ArrivalProcess::kMmpp;
  bursty.burst_multiplier = 4.0;
  bursty.burst_on_slots = 10.0;
  bursty.burst_off_slots = 30.0;
  const std::uint64_t calm_total = compile(calm).total_arrivals();
  const std::uint64_t bursty_total = compile(bursty).total_arrivals();
  // Bursts only ever add demand on top of the baseline profile.
  EXPECT_GT(bursty_total, calm_total);
}

TEST(TraceSpec, CsvRoundTripsExactly) {
  const CompiledTrace trace = compile(small_spec());
  std::ostringstream out;
  save_csv(trace, out);
  std::istringstream in(out.str());
  const CompiledTrace loaded = load_csv(in);
  EXPECT_EQ(loaded.slot, trace.slot);
  ASSERT_EQ(loaded.tenants.size(), trace.tenants.size());
  for (std::size_t i = 0; i < trace.tenants.size(); ++i) {
    EXPECT_EQ(loaded.tenants[i].tenant, trace.tenants[i].tenant);
    EXPECT_EQ(loaded.tenants[i].cost_min, trace.tenants[i].cost_min);
    EXPECT_EQ(loaded.tenants[i].cost_max, trace.tenants[i].cost_max);
    EXPECT_EQ(loaded.tenants[i].arrivals, trace.tenants[i].arrivals);
    EXPECT_EQ(loaded.tenants[i].total, trace.tenants[i].total);
  }
}

}  // namespace
}  // namespace arv::load
