#include "src/mem/memory_manager.h"

#include <gtest/gtest.h>

namespace arv::mem {
namespace {

using namespace arv::units;

Config small_config() {
  Config config;
  config.total_ram = 1 * GiB;
  config.swap_size = 2 * GiB;
  config.swap_bandwidth_per_sec = 100 * MiB;
  config.kswapd_batch = 16 * MiB;
  return config;
}

struct Fixture {
  Fixture() : tree(4), mm(tree, small_config()) {}
  cgroup::Tree tree;
  MemoryManager mm;
};

TEST(MemoryManager, WatermarksOrdered) {
  Fixture f;
  const auto& marks = f.mm.watermarks();
  EXPECT_GT(marks.low, marks.min);
  EXPECT_GT(marks.high, marks.low);
  EXPECT_LT(marks.high, f.mm.total_ram());
}

TEST(MemoryManager, ChargeAndUncharge) {
  Fixture f;
  const auto cg = f.tree.create("a");
  EXPECT_EQ(f.mm.charge(cg, 100 * MiB), ChargeResult::kOk);
  EXPECT_EQ(f.mm.usage(cg), 100 * MiB);
  EXPECT_EQ(f.mm.free_memory(), f.mm.total_ram() - 100 * MiB);
  f.mm.uncharge(cg, 40 * MiB);
  EXPECT_EQ(f.mm.usage(cg), 60 * MiB);
}

TEST(MemoryManager, ChargeRoundsUpToPages) {
  Fixture f;
  const auto cg = f.tree.create("a");
  f.mm.charge(cg, 1);
  EXPECT_EQ(f.mm.usage(cg), page);
}

TEST(MemoryManager, HardLimitForcesSwap) {
  Fixture f;
  const auto cg = f.tree.create("a");
  f.tree.set_mem_limit(cg, 100 * MiB);
  EXPECT_EQ(f.mm.charge(cg, 150 * MiB), ChargeResult::kSwapped);
  EXPECT_EQ(f.mm.usage(cg), 100 * MiB);  // resident capped at hard limit
  EXPECT_EQ(f.mm.swapped(cg), 50 * MiB);
  EXPECT_EQ(f.mm.committed(cg), 150 * MiB);
}

TEST(MemoryManager, HardLimitWithoutSwapOomKills) {
  Fixture f;
  Config config = small_config();
  config.swap_size = 0;
  MemoryManager mm(f.tree, config);
  const auto cg = f.tree.create("a");
  f.tree.set_mem_limit(cg, 64 * MiB);
  EXPECT_EQ(mm.charge(cg, 128 * MiB), ChargeResult::kOomKilled);
  EXPECT_TRUE(mm.oom_killed(cg));
  EXPECT_EQ(mm.oom_kills(), 1u);
  // Further charges are refused.
  EXPECT_EQ(mm.charge(cg, 1 * MiB), ChargeResult::kOomKilled);
}

TEST(MemoryManager, UnchargeFreesSwapFirst) {
  Fixture f;
  const auto cg = f.tree.create("a");
  f.tree.set_mem_limit(cg, 100 * MiB);
  f.mm.charge(cg, 150 * MiB);
  f.mm.uncharge(cg, 60 * MiB);
  EXPECT_EQ(f.mm.swapped(cg), 0);
  EXPECT_EQ(f.mm.usage(cg), 90 * MiB);
}

TEST(MemoryManager, TouchResidentOnlyIsFree) {
  Fixture f;
  const auto cg = f.tree.create("a");
  f.mm.charge(cg, 100 * MiB);
  EXPECT_EQ(f.mm.touch(cg, 100 * MiB), 0);
}

TEST(MemoryManager, TouchSwappedStalls) {
  Fixture f;
  const auto cg = f.tree.create("a");
  f.tree.set_mem_limit(cg, 100 * MiB);
  f.mm.charge(cg, 200 * MiB);  // 100 resident, 100 swapped
  const SimDuration stall = f.mm.touch(cg, 100 * MiB);
  EXPECT_GT(stall, 0);
}

TEST(MemoryManager, TouchAtHardLimitThrashes) {
  Fixture f;
  const auto cg = f.tree.create("a");
  f.tree.set_mem_limit(cg, 100 * MiB);
  f.mm.charge(cg, 200 * MiB);
  const Bytes swapped_before = f.mm.swapped(cg);
  const SimDuration stall = f.mm.touch(cg, 200 * MiB);
  // Thrash: residency unchanged, double I/O cost paid.
  EXPECT_EQ(f.mm.swapped(cg), swapped_before);
  // 50% of the touch faults (100 MiB), in and back out at 100 MiB/s each way.
  EXPECT_NEAR(static_cast<double>(stall), 2.0 * 1e6, 2e5);
}

TEST(MemoryManager, TouchBelowHardLimitSwapsBackIn) {
  Fixture f;
  const auto cg = f.tree.create("a");
  f.tree.set_mem_limit(cg, 300 * MiB);
  f.mm.charge(cg, 200 * MiB);
  // Manufacture swapped pages via a tighter limit then relax it.
  f.tree.set_mem_limit(cg, 100 * MiB);
  f.mm.charge(cg, 0);  // no-op charge; swap-out happens on breach only
  f.tree.set_mem_limit(cg, 300 * MiB);
  // Build swap state directly: charge beyond 100 while limited.
  f.tree.set_mem_limit(cg, 150 * MiB);
  f.mm.charge(cg, 100 * MiB);  // total 300 committed, 150 resident max
  EXPECT_GT(f.mm.swapped(cg), 0);
  f.tree.set_mem_limit(cg, 2 * GiB);
  const Bytes swapped_before = f.mm.swapped(cg);
  f.mm.touch(cg, 300 * MiB);
  EXPECT_LT(f.mm.swapped(cg), swapped_before);  // pages came home
}

TEST(MemoryManager, KswapdWakesBelowLowWatermark) {
  Fixture f;
  const auto hog = f.tree.create("hog");
  f.tree.set_mem_soft_limit(hog, 200 * MiB);
  // 1 GiB RAM, low mark ~30 MiB: charge until free < low.
  f.mm.charge(hog, 1000 * MiB);
  EXPECT_LT(f.mm.free_memory(), f.mm.watermarks().low);
  f.mm.tick(0, 1000);
  EXPECT_TRUE(f.mm.kswapd_active());
  EXPECT_EQ(f.mm.kswapd_wakeups(), 1u);
  // Run kswapd until it recovers the high watermark.
  for (int i = 0; i < 100 && f.mm.kswapd_active(); ++i) {
    f.mm.tick(i, 1000);
  }
  EXPECT_FALSE(f.mm.kswapd_active());
  EXPECT_GE(f.mm.free_memory(), f.mm.watermarks().high);
  // Reclaim came from the over-soft-limit cgroup.
  EXPECT_GT(f.mm.swapped(hog), 0);
}

TEST(MemoryManager, KswapdSparesCgroupsUnderSoftLimit) {
  Fixture f;
  const auto polite = f.tree.create("polite");
  const auto hog = f.tree.create("hog");
  f.tree.set_mem_soft_limit(polite, 500 * MiB);
  f.tree.set_mem_soft_limit(hog, 100 * MiB);
  f.mm.charge(polite, 300 * MiB);  // under its soft limit
  f.mm.charge(hog, 715 * MiB);     // way over; free drops below `low`
  for (int i = 0; i < 200; ++i) {
    f.mm.tick(i, 1000);
  }
  EXPECT_EQ(f.mm.swapped(polite), 0);
  EXPECT_GT(f.mm.swapped(hog), 0);
}

TEST(MemoryManager, DirectReclaimBelowMinWatermark) {
  Fixture f;
  const auto a = f.tree.create("a");
  // Exhaust RAM in one charge: direct reclaim must trigger inside charge().
  const auto result = f.mm.charge(a, f.mm.total_ram());
  EXPECT_EQ(result, ChargeResult::kSwapped);
  EXPECT_GE(f.mm.direct_reclaims(), 1u);
}

TEST(MemoryManager, GlobalOomWhenNothingReclaimable) {
  Fixture f;
  Config config = small_config();
  config.swap_size = 0;  // nowhere to reclaim to
  MemoryManager mm(f.tree, config);
  const auto a = f.tree.create("a");
  mm.charge(a, 900 * MiB);
  const auto b = f.tree.create("b");
  mm.charge(b, 400 * MiB);  // pushes past physical RAM
  EXPECT_GE(mm.oom_kills(), 1u);
  // The largest consumer was the victim.
  EXPECT_TRUE(mm.oom_killed(a));
}

// Determinism pin: on equal committed size the global OOM killer takes the
// LOWEST cgroup id. Chaos runs replay byte-identically only because the
// victim is a pure function of the accounting state — this test freezes
// that tie-break.
TEST(MemoryManager, GlobalOomTieBreaksOnLowestCgroupId) {
  Fixture f;
  Config config = small_config();
  config.swap_size = 0;
  MemoryManager mm(f.tree, config);
  const auto first = f.tree.create("first");
  const auto second = f.tree.create("second");
  ASSERT_LT(first, second);
  // Identical committed sizes, then a third charge pushes past RAM.
  mm.charge(first, 500 * MiB);
  mm.charge(second, 500 * MiB);
  const auto trigger = f.tree.create("trigger");
  mm.charge(trigger, 200 * MiB);
  ASSERT_GE(mm.oom_kills(), 1u);
  EXPECT_TRUE(mm.oom_killed(first)) << "tie must go to the lowest id";
  EXPECT_FALSE(mm.oom_killed(second));
}

TEST(MemoryManager, HostReservationShrinksFree) {
  Fixture f;
  f.mm.reserve_host_memory(512 * MiB);
  EXPECT_EQ(f.mm.free_memory(), f.mm.total_ram() - 512 * MiB);
}

TEST(MemoryManager, UnknownCgroupReadsZero) {
  Fixture f;
  EXPECT_EQ(f.mm.usage(42), 0);
  EXPECT_EQ(f.mm.swapped(42), 0);
  EXPECT_FALSE(f.mm.oom_killed(42));
}

TEST(MemoryManagerDeath, UnchargeMoreThanChargedAborts) {
  Fixture f;
  const auto a = f.tree.create("a");
  f.mm.charge(a, 10 * MiB);
  EXPECT_DEATH(f.mm.uncharge(a, 20 * MiB), "uncharging");
}

}  // namespace
}  // namespace arv::mem
