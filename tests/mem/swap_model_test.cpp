// Swap-device and watermark edge cases beyond the basic MemoryManager tests.
#include <gtest/gtest.h>

#include "src/mem/memory_manager.h"

namespace arv::mem {
namespace {

using namespace arv::units;

TEST(SwapModel, SwapExhaustionEscalatesToOomKill) {
  cgroup::Tree tree(4);
  Config config;
  config.total_ram = 1 * GiB;
  config.swap_size = 256 * MiB;  // tiny swap
  MemoryManager mm(tree, config);
  const auto cg = tree.create("greedy");
  tree.set_mem_limit(cg, 512 * MiB);
  // 512 MiB resident + 256 MiB swapped fits; the next page over does not.
  EXPECT_EQ(mm.charge(cg, 768 * MiB), ChargeResult::kSwapped);
  EXPECT_EQ(mm.charge(cg, 64 * MiB), ChargeResult::kOomKilled);
  EXPECT_TRUE(mm.oom_killed(cg));
}

TEST(SwapModel, StallScalesWithBandwidth) {
  cgroup::Tree tree(4);
  for (const Bytes bandwidth : {Bytes(10) * MiB, Bytes(100) * MiB}) {
    Config config;
    config.total_ram = 1 * GiB;
    config.swap_bandwidth_per_sec = bandwidth;
    MemoryManager mm(tree, config);
    const auto cg = tree.create("c" + std::to_string(bandwidth));
    tree.set_mem_limit(cg, 100 * MiB);
    mm.charge(cg, 200 * MiB);  // half swapped
    const SimDuration stall = mm.touch(cg, 200 * MiB);
    // 100 MiB faults at `bandwidth`, thrashing doubles it.
    const double expected =
        2.0 * 100.0 * static_cast<double>(MiB) / static_cast<double>(bandwidth) * 1e6;
    EXPECT_NEAR(static_cast<double>(stall), expected, expected * 0.1);
  }
}

TEST(SwapModel, ZeroBandwidthMeansFreeSwap) {
  cgroup::Tree tree(4);
  Config config;
  config.total_ram = 1 * GiB;
  config.swap_bandwidth_per_sec = 0;  // instantaneous swap (modeling off)
  MemoryManager mm(tree, config);
  const auto cg = tree.create("a");
  tree.set_mem_limit(cg, 64 * MiB);
  mm.charge(cg, 128 * MiB);
  EXPECT_EQ(mm.touch(cg, 128 * MiB), 0);
}

TEST(SwapModel, TouchZeroOrUncommittedIsFree) {
  cgroup::Tree tree(4);
  Config config;
  config.total_ram = 1 * GiB;
  MemoryManager mm(tree, config);
  const auto cg = tree.create("a");
  EXPECT_EQ(mm.touch(cg, 0), 0);
  EXPECT_EQ(mm.touch(cg, 1 * GiB), 0);  // nothing committed at all
}

TEST(SwapModel, KswapdReclaimRespectsBatchSize) {
  cgroup::Tree tree(4);
  Config config;
  config.total_ram = 1 * GiB;
  config.kswapd_batch = 8 * MiB;
  MemoryManager mm(tree, config);
  const auto hog = tree.create("hog");
  tree.set_mem_soft_limit(hog, 100 * MiB);
  mm.charge(hog, 1010 * MiB);  // free < low watermark
  mm.tick(0, 1000);
  ASSERT_TRUE(mm.kswapd_active());
  const Bytes swapped_first = mm.swapped(hog);
  EXPECT_GT(swapped_first, 0);
  EXPECT_LE(swapped_first, 9 * MiB);  // one batch (page rounding slack)
  mm.tick(1, 1000);
  EXPECT_GT(mm.swapped(hog), swapped_first);  // keeps going
}

TEST(SwapModel, HostReservationTriggersWatermarks) {
  cgroup::Tree tree(4);
  Config config;
  config.total_ram = 4 * GiB;
  MemoryManager mm(tree, config);
  const auto cg = tree.create("a");
  tree.set_mem_soft_limit(cg, 64 * MiB);
  mm.charge(cg, 512 * MiB);
  EXPECT_FALSE(mm.kswapd_active());
  // Reserve almost everything: free drops below `low` (3% = ~123 MiB).
  mm.reserve_host_memory(3520 * MiB);
  mm.tick(0, 1000);
  EXPECT_TRUE(mm.kswapd_active());
}

TEST(SwapModel, UnchargeWhileSwappedKeepsGlobalBalance) {
  cgroup::Tree tree(4);
  Config config;
  config.total_ram = 1 * GiB;
  MemoryManager mm(tree, config);
  const auto cg = tree.create("a");
  tree.set_mem_limit(cg, 100 * MiB);
  mm.charge(cg, 300 * MiB);  // 100 resident + 200 swapped
  const Bytes free_before = mm.free_memory();
  mm.uncharge(cg, 250 * MiB);  // eats all swap + 50 MiB resident
  EXPECT_EQ(mm.swapped(cg), 0);
  EXPECT_EQ(mm.usage(cg), 50 * MiB);
  EXPECT_EQ(mm.free_memory(), free_before + 50 * MiB);
}

}  // namespace
}  // namespace arv::mem
