#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace arv {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(Ema, FirstSamplePrimes) {
  Ema ema(0.9);
  EXPECT_FALSE(ema.primed());
  ema.add(10.0);
  EXPECT_TRUE(ema.primed());
  EXPECT_DOUBLE_EQ(ema.value(), 10.0);
}

TEST(Ema, ConvergesTowardConstant) {
  Ema ema(0.9);
  ema.add(0.0);
  for (int i = 0; i < 200; ++i) {
    ema.add(100.0);
  }
  EXPECT_NEAR(ema.value(), 100.0, 0.01);
}

TEST(Ema, DecayControlsMemory) {
  Ema fast(0.5);
  Ema slow(0.99);
  fast.add(0.0);
  slow.add(0.0);
  for (int i = 0; i < 10; ++i) {
    fast.add(100.0);
    slow.add(100.0);
  }
  EXPECT_GT(fast.value(), slow.value());
}

TEST(Ema, Reset) {
  Ema ema(0.9);
  ema.add(42.0);
  ema.reset();
  EXPECT_FALSE(ema.primed());
  EXPECT_EQ(ema.value(), 0.0);
}

TEST(Percentile, EmptyIsZero) { EXPECT_EQ(percentile({}, 50.0), 0.0); }

TEST(Percentile, SingleElement) { EXPECT_EQ(percentile({7.0}, 99.0), 7.0); }

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  // sorted: 10, 20; p50 -> halfway
  EXPECT_DOUBLE_EQ(percentile({20.0, 10.0}, 50.0), 15.0);
}

}  // namespace
}  // namespace arv
