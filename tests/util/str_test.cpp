#include "src/util/str.h"

#include <gtest/gtest.h>

namespace arv {
namespace {

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strf("%lld", 1234567890123LL), "1234567890123");
}

TEST(Strf, EmptyFormat) { EXPECT_EQ(strf("%s", ""), ""); }

TEST(Strf, LongOutput) {
  const std::string big(5000, 'a');
  EXPECT_EQ(strf("%s", big.c_str()).size(), 5000u);
}

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, EmptyInput) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Trim, StripsWhitespaceBothEnds) {
  EXPECT_EQ(trim("  hello \n"), "hello");
  EXPECT_EQ(trim("\t\r\n x \t"), "x");
}

TEST(Trim, AllWhitespaceBecomesEmpty) { EXPECT_EQ(trim(" \n\t "), ""); }

TEST(Trim, NoWhitespaceUnchanged) { EXPECT_EQ(trim("abc"), "abc"); }

TEST(Trim, InternalWhitespaceKept) { EXPECT_EQ(trim(" a b "), "a b"); }

}  // namespace
}  // namespace arv
