#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace arv {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(7);
  const auto first = rng.next_u64();
  rng.next_u64();
  rng.reseed(7);
  EXPECT_EQ(rng.next_u64(), first);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
  }
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, UniformDoubleRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(10.0, 20.0);
    ASSERT_GE(v, 10.0);
    ASSERT_LT(v, 20.0);
  }
}

TEST(Rng, UniformMeanRoughlyCentered) {
  Rng rng(17);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-0.5));
  EXPECT_TRUE(rng.chance(1.5));
}

TEST(Rng, ChanceProbabilityRoughlyRespected) {
  Rng rng(23);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.chance(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.02);
}

TEST(Rng, JitterStaysWithinSpread) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.jitter(100.0, 0.1);
    ASSERT_GE(v, 90.0);
    ASSERT_LE(v, 110.0 + 1e-9);
  }
}

}  // namespace
}  // namespace arv
