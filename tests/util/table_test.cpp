#include "src/util/table.h"

#include <gtest/gtest.h>

namespace arv {
namespace {

TEST(Table, AsciiAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22    |"), std::string::npos);
}

TEST(Table, HeaderSeparatorPresent) {
  Table t({"x"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, RowCount) {
  Table t({"a", "b"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, AddRowValuesFormatsPrecision) {
  Table t({"a", "b"});
  t.add_row_values({1.23456, 2.0}, 3);
  const std::string out = t.to_csv();
  EXPECT_NE(out.find("1.235,2.000"), std::string::npos);
}

TEST(Table, CsvBasic) {
  Table t({"h1", "h2"});
  t.add_row({"a", "b"});
  EXPECT_EQ(t.to_csv(), "h1,h2\na,b\n");
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"h"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  const std::string out = t.to_csv();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(FormatBytes, Plain) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(0), "0B");
}

TEST(FormatBytes, Scaled) {
  EXPECT_EQ(format_bytes(1024), "1.00KiB");
  EXPECT_EQ(format_bytes(1536), "1.50KiB");
  EXPECT_EQ(format_bytes(3LL * 1024 * 1024 * 1024), "3.00GiB");
}

TEST(FormatDuration, Microseconds) { EXPECT_EQ(format_duration_us(900), "900us"); }

TEST(FormatDuration, Milliseconds) { EXPECT_EQ(format_duration_us(2500), "2.50ms"); }

TEST(FormatDuration, Seconds) { EXPECT_EQ(format_duration_us(1500000), "1.50s"); }

}  // namespace
}  // namespace arv
