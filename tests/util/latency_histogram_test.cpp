#include "src/util/latency_histogram.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/rng.h"
#include "src/util/stats.h"

namespace arv::util {
namespace {

TEST(LatencyHistogram, EmptyReportsZeroes) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(50.0), 0);
  EXPECT_EQ(h.count_above(0), 0u);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Below 2 * kSubBuckets every value owns its own bucket: the sketch
  // degrades to an exact histogram.
  LatencyHistogram h;
  for (std::int64_t v = 0; v < 2 * LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_lower(LatencyHistogram::bucket_of(v)), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper(LatencyHistogram::bucket_of(v)), v);
    h.record(v);
  }
  EXPECT_EQ(h.percentile(50.0), 15);
  EXPECT_EQ(h.percentile(100.0), 31);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 31);
}

TEST(LatencyHistogram, BucketGeometryIsConsistent) {
  // Every probed value must land inside its claimed bucket, and buckets
  // must tile the axis: upper(i) + 1 == lower(i + 1).
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t v = rng.uniform_int(0, std::int64_t{1} << 62);
    const std::size_t b = LatencyHistogram::bucket_of(v);
    ASSERT_LT(b, LatencyHistogram::kBucketCount);
    EXPECT_LE(LatencyHistogram::bucket_lower(b), v);
    EXPECT_GE(LatencyHistogram::bucket_upper(b), v);
  }
  for (std::size_t b = 0; b + 1 < LatencyHistogram::kBucketCount; ++b) {
    EXPECT_EQ(LatencyHistogram::bucket_upper(b) + 1,
              LatencyHistogram::bucket_lower(b + 1));
  }
}

TEST(LatencyHistogram, RelativeErrorIsBounded) {
  // The documented contract: the bucket upper bound never exceeds the true
  // value by more than 1/kSubBuckets (6.25%).
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t v = rng.uniform_int(1, std::int64_t{1} << 56);
    const std::size_t b = LatencyHistogram::bucket_of(v);
    const std::int64_t upper = LatencyHistogram::bucket_upper(b);
    EXPECT_LE(upper - v,
              v / LatencyHistogram::kSubBuckets)
        << "value " << v << " bucket upper " << upper;
  }
}

TEST(LatencyHistogram, PercentileTracksExactNearestRank) {
  // Against the exact full-sample percentile the histogram replaces: the
  // sketch must stay within its relative error bound, never below.
  Rng rng(23);
  LatencyHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(100, 2000000);  // 0.1 ms .. 2 s
    h.record(v);
    samples.push_back(static_cast<double>(v));
  }
  for (const double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double exact = percentile(samples, p);
    const auto sketch = static_cast<double>(h.percentile(p));
    // The two use different rank conventions (nearest-rank vs interpolated),
    // so allow one order-statistic gap of slop besides the bucket bound.
    EXPECT_GE(sketch, exact * 0.99) << "p" << p;
    EXPECT_LE(sketch,
              exact * (1.0 + 1.0 / LatencyHistogram::kSubBuckets) * 1.01)
        << "p" << p;
  }
}

TEST(LatencyHistogram, PercentileIsClampedToObservedMax) {
  LatencyHistogram h;
  h.record(1000000);
  // One sample: every percentile is that sample, not its bucket's upper end.
  EXPECT_EQ(h.percentile(50.0), 1000000);
  EXPECT_EQ(h.percentile(100.0), 1000000);
}

TEST(LatencyHistogram, RecordNMatchesRepeatedRecord) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 10; ++i) {
    a.record(5000);
  }
  b.record_n(5000, 10);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.percentile(99.0), b.percentile(99.0));
}

/// Structural equality through the public surface: aggregates plus the
/// cumulative distribution probed at every bucket boundary.
void expect_same_distribution(const LatencyHistogram& a,
                              const LatencyHistogram& b) {
  ASSERT_EQ(a.count(), b.count());
  ASSERT_EQ(a.sum(), b.sum());
  ASSERT_EQ(a.min(), b.min());
  ASSERT_EQ(a.max(), b.max());
  for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; i += 7) {
    ASSERT_EQ(a.count_above(LatencyHistogram::bucket_upper(i)),
              b.count_above(LatencyHistogram::bucket_upper(i)))
        << "bucket " << i;
  }
}

TEST(LatencyHistogram, MergeIsExactAndAssociative) {
  Rng rng(31);
  LatencyHistogram parts[3];
  LatencyHistogram whole;
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 1000; ++i) {
      const std::int64_t v = rng.uniform_int(0, 10000000);
      parts[p].record(v);
      whole.record(v);
    }
  }
  // (a + b) + c
  LatencyHistogram left = parts[0];
  left.merge(parts[1]);
  left.merge(parts[2]);
  // a + (b + c)
  LatencyHistogram right_tail = parts[1];
  right_tail.merge(parts[2]);
  LatencyHistogram right = parts[0];
  right.merge(right_tail);
  expect_same_distribution(left, right);
  // Both must equal recording every sample into one histogram directly.
  expect_same_distribution(left, whole);
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram h;
  h.record(123456);
  h.record(789);
  LatencyHistogram empty;
  LatencyHistogram merged = h;
  merged.merge(empty);
  expect_same_distribution(h, merged);
  LatencyHistogram other;
  other.merge(h);
  expect_same_distribution(h, other);
}

TEST(LatencyHistogram, CountAboveUndercountsByAtMostOneBucket) {
  LatencyHistogram h;
  for (std::int64_t v = 1; v <= 1000; ++v) {
    h.record(v * 1000);
  }
  // Threshold mid-range: the count must be within one bucket's population
  // of the true strict count.
  const std::int64_t threshold = 500000;
  std::uint64_t exact = 0;
  for (std::int64_t v = 1; v <= 1000; ++v) {
    if (v * 1000 > threshold) {
      ++exact;
    }
  }
  const std::uint64_t sketch = h.count_above(threshold);
  EXPECT_LE(sketch, exact);
  // One straddling bucket at ~500k is at most 500k/16 wide => <= ~32 samples
  // at 1k spacing.
  EXPECT_GE(sketch + 40, exact);
}

TEST(LatencyHistogram, DeltaViewIsolatesTheWindow) {
  // count_since/percentile_since against an older snapshot of the same
  // cumulative stream must see exactly the samples recorded in between —
  // the windowed-p99 primitive the overload controller's pressure signal
  // uses on round-over-round snapshots.
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) {
    h.record(1000);  // old regime: 1ms
  }
  const LatencyHistogram baseline = h;
  LatencyHistogram window_only;
  Rng rng(47);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.uniform_int(50000, 400000);  // new: 50-400ms
    h.record(v);
    window_only.record(v);
  }
  EXPECT_EQ(h.count_since(baseline), 500u);
  for (const double p : {50.0, 90.0, 99.0}) {
    EXPECT_EQ(h.percentile_since(baseline, p), window_only.percentile(p))
        << "p" << p;
  }
  // The cumulative percentile is still dominated by the old regime; the
  // delta view is what sees the shift.
  EXPECT_LT(h.percentile(50.0), 2000);
  EXPECT_GT(h.percentile_since(baseline, 50.0), 50000);
}

TEST(LatencyHistogram, DeltaAgainstSelfOrEmptyIsConsistent) {
  LatencyHistogram h;
  h.record(123);
  h.record(456789);
  // Against itself: an empty window.
  EXPECT_EQ(h.count_since(h), 0u);
  // Against an empty baseline: the whole stream.
  const LatencyHistogram empty;
  EXPECT_EQ(h.count_since(empty), h.count());
  EXPECT_EQ(h.percentile_since(empty, 99.0), h.percentile(99.0));
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(99.0), 0);
}

}  // namespace
}  // namespace arv::util
