#include "src/util/cpuset.h"

#include <gtest/gtest.h>

namespace arv {
namespace {

TEST(CpuSet, DefaultIsEmpty) {
  CpuSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.span(), 0);
  EXPECT_EQ(s.to_string(), "");
}

TEST(CpuSet, FirstN) {
  const CpuSet s = CpuSet::first_n(4);
  EXPECT_EQ(s.count(), 4);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.span(), 4);
}

TEST(CpuSet, SetAndClear) {
  CpuSet s;
  s.set(5);
  EXPECT_TRUE(s.contains(5));
  EXPECT_EQ(s.count(), 1);
  s.clear(5);
  EXPECT_TRUE(s.empty());
}

TEST(CpuSet, ContainsOutOfRangeIsFalse) {
  const CpuSet s = CpuSet::first_n(8);
  EXPECT_FALSE(s.contains(-1));
  EXPECT_FALSE(s.contains(CpuSet::kMaxCpus));
  EXPECT_FALSE(s.contains(100000));
}

TEST(CpuSet, ParseSingle) {
  const auto s = CpuSet::parse("3");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->count(), 1);
  EXPECT_TRUE(s->contains(3));
}

TEST(CpuSet, ParseRange) {
  const auto s = CpuSet::parse("0-3");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->count(), 4);
}

TEST(CpuSet, ParseMixed) {
  const auto s = CpuSet::parse("0-2,5,8-9");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->count(), 6);
  EXPECT_TRUE(s->contains(5));
  EXPECT_TRUE(s->contains(9));
  EXPECT_FALSE(s->contains(4));
}

TEST(CpuSet, ParseTrailingNewlineTolerated) {
  const auto s = CpuSet::parse("0-19\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->count(), 20);
}

TEST(CpuSet, ParseEmptyGivesEmptyMask) {
  const auto s = CpuSet::parse("");
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->empty());
}

TEST(CpuSet, ParseRejectsMalformed) {
  EXPECT_FALSE(CpuSet::parse("a").has_value());
  EXPECT_FALSE(CpuSet::parse("1-").has_value());
  EXPECT_FALSE(CpuSet::parse("3-1").has_value());
  EXPECT_FALSE(CpuSet::parse("1,,2").has_value());
  EXPECT_FALSE(CpuSet::parse("-1").has_value());
  EXPECT_FALSE(CpuSet::parse("1;2").has_value());
}

TEST(CpuSet, ParseRejectsOutOfRange) {
  EXPECT_FALSE(CpuSet::parse("256").has_value());
  EXPECT_FALSE(CpuSet::parse("0-999").has_value());
}

TEST(CpuSet, ToStringCollapsesRuns) {
  CpuSet s;
  for (const int cpu : {0, 1, 2, 5, 8, 9}) {
    s.set(cpu);
  }
  EXPECT_EQ(s.to_string(), "0-2,5,8-9");
}

TEST(CpuSet, RoundTrip) {
  const char* cases[] = {"0", "0-7", "1,3,5", "0-3,10-12,255"};
  for (const char* text : cases) {
    const auto parsed = CpuSet::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->to_string(), text);
  }
}

TEST(CpuSet, Intersection) {
  const CpuSet a = *CpuSet::parse("0-5");
  const CpuSet b = *CpuSet::parse("4-9");
  EXPECT_EQ((a & b).to_string(), "4-5");
}

TEST(CpuSet, Union) {
  const CpuSet a = *CpuSet::parse("0-1");
  const CpuSet b = *CpuSet::parse("3");
  EXPECT_EQ((a | b).to_string(), "0-1,3");
}

TEST(CpuSet, Equality) {
  EXPECT_EQ(*CpuSet::parse("0-3"), CpuSet::first_n(4));
  EXPECT_NE(*CpuSet::parse("0-2"), CpuSet::first_n(4));
}

TEST(CpuSet, SpanVersusCount) {
  const CpuSet s = *CpuSet::parse("10,20");
  EXPECT_EQ(s.count(), 2);
  EXPECT_EQ(s.span(), 21);
}

}  // namespace
}  // namespace arv
