// Scheduler dynamics that the basic tests don't reach: knob changes while
// running, quota/period alignment, extreme weights, consumer churn.
#include <gtest/gtest.h>

#include "src/sched/fair_scheduler.h"
#include "src/sim/engine.h"
#include "tests/testing/fake_consumer.h"

namespace arv::sched {
namespace {

using arv::testing::FakeConsumer;
using namespace arv::units;

struct Fixture {
  explicit Fixture(int cpus) : tree(cpus), sched(tree, cpus) {
    engine.add_component(&sched);
  }
  sim::Engine engine{1 * msec};
  cgroup::Tree tree;
  FairScheduler sched;
};

TEST(SchedDynamics, QuotaChangeMidFlightTakesEffectNextPeriod) {
  Fixture f(8);
  const auto a = f.tree.create("a");
  FakeConsumer ca(8);
  f.sched.attach(a, &ca);
  f.engine.run_for(1 * sec);
  const CpuTime unrestricted = ca.total();
  EXPECT_EQ(unrestricted, 8 * sec);
  f.tree.set_cfs_quota(a, 200000);  // 2 CPUs from now on
  f.engine.run_for(1 * sec);
  const CpuTime second_phase = ca.total() - unrestricted;
  EXPECT_NEAR(static_cast<double>(second_phase), static_cast<double>(2 * sec),
              static_cast<double>(250 * msec));  // first period still burning old runtime
}

TEST(SchedDynamics, ShortPeriodRefillsProportionally) {
  Fixture f(8);
  const auto a = f.tree.create("a");
  f.tree.set_cfs_period(a, 10000);  // 10 ms period
  f.tree.set_cfs_quota(a, 5000);    // half a CPU
  FakeConsumer ca(4);
  f.sched.attach(a, &ca);
  f.engine.run_for(1 * sec);
  EXPECT_NEAR(static_cast<double>(ca.total()), static_cast<double>(sec / 2),
              static_cast<double>(20 * msec));
}

TEST(SchedDynamics, SharesChangeShiftsAllocationImmediately) {
  Fixture f(4);
  const auto a = f.tree.create("a");
  const auto b = f.tree.create("b");
  FakeConsumer ca(4);
  FakeConsumer cb(4);
  f.sched.attach(a, &ca);
  f.sched.attach(b, &cb);
  f.engine.run_for(1 * sec);
  const double before =
      static_cast<double>(ca.total()) / static_cast<double>(cb.total());
  EXPECT_NEAR(before, 1.0, 0.05);
  f.tree.set_cpu_shares(a, 3072);  // 3:1
  const CpuTime a0 = ca.total();
  const CpuTime b0 = cb.total();
  f.engine.run_for(1 * sec);
  const double after = static_cast<double>(ca.total() - a0) /
                       static_cast<double>(cb.total() - b0);
  EXPECT_NEAR(after, 3.0, 0.1);
}

TEST(SchedDynamics, ExtremeWeightStillConserves) {
  Fixture f(4);
  const auto whale = f.tree.create("whale");
  const auto shrimp = f.tree.create("shrimp");
  f.tree.set_cpu_shares(whale, 262144);
  f.tree.set_cpu_shares(shrimp, 2);
  FakeConsumer cw(8);
  FakeConsumer cs(8);
  f.sched.attach(whale, &cw);
  f.sched.attach(shrimp, &cs);
  f.engine.run_for(1 * sec);
  // Conservation holds and the shrimp still gets *something* (water-filling
  // always offers each hungry claimant its weighted share).
  EXPECT_NEAR(static_cast<double>(cw.total() + cs.total()),
              static_cast<double>(4 * sec), static_cast<double>(10 * msec));
  EXPECT_GT(cs.total(), 0);
  EXPECT_GT(cw.total(), cs.total() * 100);
}

TEST(SchedDynamics, CpusetChangeMidFlight) {
  Fixture f(8);
  const auto a = f.tree.create("a");
  FakeConsumer ca(8);
  f.sched.attach(a, &ca);
  f.engine.run_for(100 * msec);
  EXPECT_EQ(ca.total(), 8 * 100 * msec);
  f.tree.set_cpuset(a, CpuSet::first_n(2));
  const CpuTime before = ca.total();
  f.engine.run_for(100 * msec);
  EXPECT_EQ(ca.total() - before, 2 * 100 * msec);
}

TEST(SchedDynamics, ConsumerChurnKeepsAccounting) {
  Fixture f(4);
  const auto a = f.tree.create("a");
  for (int round = 0; round < 10; ++round) {
    FakeConsumer transient(2);
    f.sched.attach(a, &transient);
    f.engine.run_for(50 * msec);
    f.sched.detach(a, &transient);
    f.engine.run_for(10 * msec);
  }
  // Cumulative usage equals 10 rounds of 2 CPUs for 50 ms each.
  EXPECT_EQ(f.sched.total_usage(a), 10 * 2 * 50 * msec);
}

TEST(SchedDynamics, ThrottledTimeAccumulatesOnlyUnderQuota) {
  Fixture f(8);
  const auto free_cg = f.tree.create("free");
  const auto capped = f.tree.create("capped");
  f.tree.set_cfs_quota(capped, 100000);  // 1 CPU
  FakeConsumer cf(2);
  FakeConsumer cc(4);
  f.sched.attach(free_cg, &cf);
  f.sched.attach(capped, &cc);
  f.engine.run_for(1 * sec);
  EXPECT_EQ(f.sched.throttled_time(free_cg), 0);
  // 4 threads wanted, 1 CPU granted: ~3 CPU-seconds of demand throttled.
  EXPECT_NEAR(static_cast<double>(f.sched.throttled_time(capped)),
              static_cast<double>(3 * sec), static_cast<double>(300 * msec));
}

TEST(SchedDynamics, NestedCgroupInheritsParentConstraints) {
  // A consumer attached to a *child* cgroup is bounded by the parent's
  // cpuset and quota (effective_* walk the path to the root).
  Fixture f(8);
  const auto parent = f.tree.create("pod");
  const auto child = f.tree.create("container", parent);
  f.tree.set_cpuset(parent, CpuSet::first_n(4));
  f.tree.set_cfs_quota(parent, 200000);  // 2 CPUs
  FakeConsumer cc(8);
  f.sched.attach(child, &cc);
  f.engine.run_for(1 * sec);
  // The child itself has no limits; the parent's quota binds.
  EXPECT_NEAR(static_cast<double>(cc.total()), static_cast<double>(2 * sec),
              static_cast<double>(100 * msec));
  // Tightening the child below the parent binds further.
  f.tree.set_cpuset(child, CpuSet::first_n(1));
  const CpuTime before = cc.total();
  f.engine.run_for(1 * sec);
  EXPECT_NEAR(static_cast<double>(cc.total() - before),
              static_cast<double>(1 * sec), static_cast<double>(50 * msec));
}

TEST(SchedDynamics, ZeroThreadConsumerCoexistsWithBusyOne) {
  Fixture f(2);
  const auto a = f.tree.create("a");
  FakeConsumer idle(0);
  FakeConsumer busy(2);
  f.sched.attach(a, &idle);
  f.sched.attach(a, &busy);
  f.engine.run_for(100 * msec);
  EXPECT_EQ(idle.total(), 0);
  EXPECT_EQ(busy.total(), 2 * 100 * msec);
}

}  // namespace
}  // namespace arv::sched
