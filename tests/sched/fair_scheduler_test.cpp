#include "src/sched/fair_scheduler.h"

#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "tests/testing/fake_consumer.h"

namespace arv::sched {
namespace {

using arv::testing::FakeConsumer;
using namespace arv::units;

constexpr SimDuration kTick = 1 * msec;

/// Drives `scheduler` for `ticks` ticks of 1 ms.
void run_ticks(sim::Engine& engine, int ticks) {
  engine.run_for(ticks * kTick);
}

struct Fixture {
  explicit Fixture(int cpus) : tree(cpus), sched(tree, cpus) {
    engine.add_component(&sched);
  }
  sim::Engine engine{kTick};
  cgroup::Tree tree;
  FairScheduler sched;
};

TEST(FairScheduler, SingleContainerGetsItsDemand) {
  Fixture f(4);
  const auto cg = f.tree.create("a");
  FakeConsumer consumer(2);
  f.sched.attach(cg, &consumer);
  run_ticks(f.engine, 100);
  // 2 threads on 4 CPUs: demand fully met, 100 ticks * 2ms.
  EXPECT_EQ(consumer.total(), 200 * msec);
  EXPECT_EQ(f.sched.total_usage(cg), 200 * msec);
}

TEST(FairScheduler, DemandCappedByOnlineCpus) {
  Fixture f(4);
  const auto cg = f.tree.create("a");
  FakeConsumer consumer(16);
  f.sched.attach(cg, &consumer);
  run_ticks(f.engine, 50);
  EXPECT_EQ(consumer.total(), 4 * 50 * msec);
}

TEST(FairScheduler, EqualSharesSplitEqually) {
  Fixture f(4);
  const auto a = f.tree.create("a");
  const auto b = f.tree.create("b");
  FakeConsumer ca(8);
  FakeConsumer cb(8);
  f.sched.attach(a, &ca);
  f.sched.attach(b, &cb);
  run_ticks(f.engine, 100);
  EXPECT_NEAR(static_cast<double>(ca.total()), static_cast<double>(cb.total()),
              static_cast<double>(2 * msec));
  EXPECT_NEAR(static_cast<double>(ca.total() + cb.total()),
              static_cast<double>(400 * msec), static_cast<double>(msec));
}

TEST(FairScheduler, SharesWeightAllocation) {
  Fixture f(6);
  const auto a = f.tree.create("a");
  const auto b = f.tree.create("b");
  f.tree.set_cpu_shares(a, 2048);
  f.tree.set_cpu_shares(b, 1024);
  FakeConsumer ca(8);
  FakeConsumer cb(8);
  f.sched.attach(a, &ca);
  f.sched.attach(b, &cb);
  run_ticks(f.engine, 100);
  // 2:1 split of 6 CPUs => 4 vs 2.
  const double ratio =
      static_cast<double>(ca.total()) / static_cast<double>(cb.total());
  EXPECT_NEAR(ratio, 2.0, 0.05);
}

TEST(FairScheduler, WorkConservingWhenPeerIsIdle) {
  Fixture f(4);
  const auto a = f.tree.create("a");
  const auto b = f.tree.create("b");
  FakeConsumer ca(8);
  FakeConsumer cb(0);  // idle container
  f.sched.attach(a, &ca);
  f.sched.attach(b, &cb);
  run_ticks(f.engine, 50);
  // a soaks up the whole machine despite equal shares.
  EXPECT_EQ(ca.total(), 4 * 50 * msec);
  EXPECT_EQ(cb.total(), 0);
}

TEST(FairScheduler, QuotaThrottles) {
  Fixture f(8);
  const auto a = f.tree.create("a");
  f.tree.set_cfs_quota(a, 200000);  // 2 CPUs worth per 100ms period
  FakeConsumer ca(8);
  f.sched.attach(a, &ca);
  run_ticks(f.engine, 1000);  // 10 periods
  // 2 CPUs * 1s = 2s of CPU time despite 8 runnable threads.
  EXPECT_NEAR(static_cast<double>(ca.total()), static_cast<double>(2 * sec),
              static_cast<double>(40 * msec));
  EXPECT_GT(f.sched.throttled_time(a), 0);
}

TEST(FairScheduler, QuotaRefillsEachPeriod) {
  Fixture f(8);
  const auto a = f.tree.create("a");
  f.tree.set_cfs_quota(a, 50000);  // 0.5 CPU
  FakeConsumer ca(4);
  f.sched.attach(a, &ca);
  run_ticks(f.engine, 100);  // one period
  const CpuTime after_one = ca.total();
  run_ticks(f.engine, 100);  // second period
  EXPECT_NEAR(static_cast<double>(ca.total()), 2.0 * static_cast<double>(after_one),
              static_cast<double>(5 * msec));
}

TEST(FairScheduler, CpusetCapsAllocation) {
  Fixture f(8);
  const auto a = f.tree.create("a");
  f.tree.set_cpuset(a, CpuSet::first_n(2));
  FakeConsumer ca(8);
  f.sched.attach(a, &ca);
  run_ticks(f.engine, 100);
  EXPECT_EQ(ca.total(), 2 * 100 * msec);
}

TEST(FairScheduler, OverlappingCpusetsShareTheirCpus) {
  Fixture f(8);
  const auto a = f.tree.create("a");
  const auto b = f.tree.create("b");
  // Both pinned to the same two CPUs; six other CPUs stay idle.
  f.tree.set_cpuset(a, *CpuSet::parse("0-1"));
  f.tree.set_cpuset(b, *CpuSet::parse("0-1"));
  FakeConsumer ca(4);
  FakeConsumer cb(4);
  f.sched.attach(a, &ca);
  f.sched.attach(b, &cb);
  run_ticks(f.engine, 100);
  // The pair cannot exceed the 2 pinned CPUs even though the host has 8.
  EXPECT_NEAR(static_cast<double>(ca.total() + cb.total()),
              static_cast<double>(2 * 100 * msec), static_cast<double>(2 * msec));
  EXPECT_NEAR(static_cast<double>(ca.total()), static_cast<double>(cb.total()),
              static_cast<double>(2 * msec));
}

TEST(FairScheduler, DisjointCpusetsDoNotCompete) {
  Fixture f(4);
  const auto a = f.tree.create("a");
  const auto b = f.tree.create("b");
  f.tree.set_cpuset(a, *CpuSet::parse("0-1"));
  f.tree.set_cpuset(b, *CpuSet::parse("2-3"));
  FakeConsumer ca(4);
  FakeConsumer cb(1);
  f.sched.attach(a, &ca);
  f.sched.attach(b, &cb);
  run_ticks(f.engine, 100);
  EXPECT_EQ(ca.total(), 2 * 100 * msec);  // capped by own mask
  EXPECT_EQ(cb.total(), 1 * 100 * msec);  // single thread
}

TEST(FairScheduler, SlackAccountsIdleCapacity) {
  Fixture f(4);
  const auto a = f.tree.create("a");
  FakeConsumer ca(1);
  f.sched.attach(a, &ca);
  run_ticks(f.engine, 10);
  // 3 of 4 CPUs idle each tick.
  EXPECT_EQ(f.sched.total_slack(), 3 * 10 * msec);
  EXPECT_EQ(f.sched.last_tick_slack(), 3 * msec);
}

TEST(FairScheduler, NoSlackWhenSaturated) {
  Fixture f(2);
  const auto a = f.tree.create("a");
  FakeConsumer ca(4);
  f.sched.attach(a, &ca);
  run_ticks(f.engine, 10);
  EXPECT_EQ(f.sched.last_tick_slack(), 0);
}

TEST(FairScheduler, MultipleConsumersSplitByThreads) {
  Fixture f(4);
  const auto a = f.tree.create("a");
  FakeConsumer c1(3);
  FakeConsumer c2(1);
  f.sched.attach(a, &c1);
  f.sched.attach(a, &c2);
  run_ticks(f.engine, 100);
  const double ratio =
      static_cast<double>(c1.total()) / static_cast<double>(c2.total());
  EXPECT_NEAR(ratio, 3.0, 0.05);
}

TEST(FairScheduler, DetachStopsGrants) {
  Fixture f(2);
  const auto a = f.tree.create("a");
  FakeConsumer ca(2);
  f.sched.attach(a, &ca);
  run_ticks(f.engine, 10);
  const CpuTime before = ca.total();
  f.sched.detach(a, &ca);
  run_ticks(f.engine, 10);
  EXPECT_EQ(ca.total(), before);
  EXPECT_FALSE(f.sched.attached(a));
  // Historical usage survives detach.
  EXPECT_EQ(f.sched.total_usage(a), before);
}

TEST(FairScheduler, SchedulingPeriodTracksRunnableTasks) {
  Fixture f(32);
  const auto a = f.tree.create("a");
  FakeConsumer ca(4);
  f.sched.attach(a, &ca);
  run_ticks(f.engine, 1);
  EXPECT_EQ(f.sched.scheduling_period(), 24 * msec);  // <= 8 tasks
  ca.set_threads(16);
  run_ticks(f.engine, 1);
  EXPECT_EQ(f.sched.scheduling_period(), 16 * 3 * msec);
}

TEST(FairScheduler, LoadavgTracksRunnableCount) {
  Fixture f(8);
  f.sched.set_loadavg_decay(0.998);  // shorten the window for the test
  const auto a = f.tree.create("a");
  FakeConsumer ca(6);
  f.sched.attach(a, &ca);
  run_ticks(f.engine, 4000);
  EXPECT_NEAR(f.sched.loadavg(), 6.0, 0.2);
  ca.set_threads(0);
  run_ticks(f.engine, 6000);
  EXPECT_NEAR(f.sched.loadavg(), 0.0, 0.2);
}

TEST(FairScheduler, UnknownCgroupReportsZero) {
  Fixture f(2);
  EXPECT_EQ(f.sched.total_usage(999), 0);
  EXPECT_EQ(f.sched.throttled_time(999), 0);
}

TEST(FairScheduler, DestroyedCgroupSkippedGracefully) {
  Fixture f(2);
  const auto a = f.tree.create("a");
  FakeConsumer ca(2);
  f.sched.attach(a, &ca);
  run_ticks(f.engine, 5);
  f.tree.destroy(a);
  run_ticks(f.engine, 5);  // must not crash; no more grants
  EXPECT_EQ(ca.total(), 2 * 5 * msec);
}

// --- property sweep: conservation and fairness across configurations -------

struct SweepParam {
  int cpus;
  int containers;
  int threads_each;
  std::int64_t quota_us;  // kUnlimited or value
};

class SchedulerSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SchedulerSweep, ConservationAndBounds) {
  const SweepParam p = GetParam();
  Fixture f(p.cpus);
  std::vector<std::unique_ptr<FakeConsumer>> consumers;
  std::vector<cgroup::CgroupId> ids;
  for (int i = 0; i < p.containers; ++i) {
    const auto cg = f.tree.create("c" + std::to_string(i));
    if (p.quota_us != kUnlimited) {
      f.tree.set_cfs_quota(cg, p.quota_us);
    }
    consumers.push_back(std::make_unique<FakeConsumer>(p.threads_each));
    f.sched.attach(cg, consumers.back().get());
    ids.push_back(cg);
  }
  constexpr int kTicks = 200;
  run_ticks(f.engine, kTicks);

  // Conservation: total grants + slack == capacity (within rounding).
  CpuTime granted = 0;
  for (const auto& c : consumers) {
    granted += c->total();
  }
  const CpuTime capacity = static_cast<CpuTime>(p.cpus) * kTicks * msec;
  EXPECT_LE(granted, capacity + p.cpus * kTicks);  // rounding slop
  EXPECT_NEAR(static_cast<double>(granted + f.sched.total_slack()),
              static_cast<double>(capacity), static_cast<double>(p.cpus * kTicks));

  // No container exceeds its thread demand or its quota.
  for (std::size_t i = 0; i < consumers.size(); ++i) {
    EXPECT_LE(consumers[i]->total(),
              static_cast<CpuTime>(p.threads_each) * kTicks * msec + kTicks);
    if (p.quota_us != kUnlimited) {
      const CpuTime quota_cap = p.quota_us * (kTicks / 100) + p.quota_us;
      EXPECT_LE(consumers[i]->total(), quota_cap);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SchedulerSweep,
    ::testing::Values(SweepParam{1, 1, 1, kUnlimited},
                      SweepParam{4, 2, 8, kUnlimited},
                      SweepParam{20, 5, 10, kUnlimited},
                      SweepParam{20, 10, 2, kUnlimited},
                      SweepParam{8, 3, 4, 200000},
                      SweepParam{16, 4, 16, 400000},
                      SweepParam{2, 6, 3, 50000},
                      SweepParam{32, 8, 8, kUnlimited}));

}  // namespace
}  // namespace arv::sched
