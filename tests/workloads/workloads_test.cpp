#include <gtest/gtest.h>

#include "src/workloads/dockerhub.h"
#include "src/workloads/hogs.h"
#include "src/workloads/java_suites.h"
#include "src/workloads/npb.h"

namespace arv::workloads {
namespace {

using namespace arv::units;

TEST(JavaSuites, DacapoHasThePaperBenchmarks) {
  const auto suite = dacapo_suite();
  ASSERT_EQ(suite.size(), 5u);
  const char* expected[] = {"h2", "jython", "lusearch", "sunflow", "xalan"};
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].name, expected[i]);
  }
}

TEST(JavaSuites, SpecjvmHasThePaperBenchmarks) {
  const auto suite = specjvm_suite();
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "compiler.compiler");
  EXPECT_EQ(suite[2].name, "mpegaudio");
}

TEST(JavaSuites, HibenchHasThePaperBenchmarks) {
  const auto suite = hibench_suite();
  ASSERT_EQ(suite.size(), 4u);
  for (const auto& w : suite) {
    EXPECT_GE(w.live_set, 2 * GiB);  // big-data scale
  }
}

TEST(JavaSuites, AllParametersSane) {
  for (const auto& suite : {dacapo_suite(), specjvm_suite(), hibench_suite()}) {
    for (const auto& w : suite) {
      EXPECT_GT(w.total_work, 0) << w.name;
      EXPECT_GE(w.mutator_threads, 1) << w.name;
      EXPECT_GT(w.alloc_per_cpu_sec, 0) << w.name;
      EXPECT_GT(w.live_set, 0) << w.name;
      EXPECT_GT(w.survival_ratio, 0.0) << w.name;
      EXPECT_LT(w.survival_ratio, 1.0) << w.name;
      EXPECT_GE(w.gc_alpha, 0.0) << w.name;
      EXPECT_GT(min_heap_of(w), w.live_set) << w.name;
    }
  }
}

TEST(JavaSuites, H2IsTheOomCandidate) {
  // Figure 2(b)/11: h2's live set must exceed a 256 MiB JDK-9 heap but fit
  // under a 1 GiB hard limit.
  const auto h2 = find_java_workload("h2");
  ASSERT_TRUE(h2.has_value());
  EXPECT_GT(h2->live_set, 256 * MiB);
  EXPECT_LT(h2->live_set, 1 * GiB);
}

TEST(JavaSuites, LusearchAndXalanAreAllocationHeavy) {
  const auto lusearch = find_java_workload("lusearch");
  const auto h2 = find_java_workload("h2");
  ASSERT_TRUE(lusearch && h2);
  EXPECT_GT(lusearch->alloc_per_cpu_sec, 4 * h2->alloc_per_cpu_sec);
}

TEST(JavaSuites, FindUnknownReturnsNullopt) {
  EXPECT_FALSE(find_java_workload("not-a-benchmark").has_value());
}

TEST(JavaSuites, MicrobenchMatchesPaperShape) {
  const auto w = alloc_microbench();
  EXPECT_DOUBLE_EQ(w.live_fraction_of_alloc, 0.5);
  // ~40 GiB allocated over the run.
  const Bytes allocated = w.total_work / units::sec * w.alloc_per_cpu_sec;
  EXPECT_NEAR(static_cast<double>(allocated), static_cast<double>(40 * GiB),
              static_cast<double>(2 * GiB));
}

TEST(Npb, SuiteHasNineKernels) {
  const auto suite = npb_suite();
  ASSERT_EQ(suite.size(), 9u);
  const char* expected[] = {"is", "ep", "cg", "mg", "ft", "ua", "bt", "sp", "lu"};
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].name, expected[i]);
  }
}

TEST(Npb, EpIsEmbarrassinglyParallel) {
  const auto ep = find_npb("ep");
  ASSERT_TRUE(ep.has_value());
  for (const auto& w : npb_suite()) {
    if (w.name != "ep") {
      EXPECT_LT(ep->serial_frac, w.serial_frac) << w.name;
      EXPECT_LT(ep->alpha, w.alpha) << w.name;
    }
  }
}

TEST(Npb, FindUnknownReturnsNullopt) { EXPECT_FALSE(find_npb("zz").has_value()); }

TEST(Dockerhub, ExactlyOneHundredImages) {
  EXPECT_EQ(dockerhub_top100().size(), 100u);
}

TEST(Dockerhub, SixtyTwoAffected) { EXPECT_EQ(total_affected(), 62); }

TEST(Dockerhub, AllJavaAndPhpAffected) {
  for (const auto& image : dockerhub_top100()) {
    if (image.language == Language::kJava || image.language == Language::kPhp) {
      EXPECT_TRUE(image.affected) << image.name;
    }
  }
}

TEST(Dockerhub, MajorityOfCppAffected) {
  const auto counts = count_by_language();
  const auto& cpp = counts.at(Language::kCpp);
  EXPECT_GT(cpp.affected, cpp.unaffected);
}

TEST(Dockerhub, HalfOfCAffected) {
  const auto counts = count_by_language();
  const auto& c = counts.at(Language::kC);
  EXPECT_EQ(c.affected, c.unaffected);
}

TEST(Dockerhub, AffectedImagesDocumentTheirProbe) {
  for (const auto& image : dockerhub_top100()) {
    if (image.affected) {
      EXPECT_FALSE(image.probe.empty()) << image.name;
    } else {
      EXPECT_TRUE(image.probe.empty()) << image.name;
    }
  }
}

TEST(Dockerhub, SevenLanguagesCovered) {
  EXPECT_EQ(count_by_language().size(), 7u);
}

TEST(CpuHog, BurnsBudgetThenIdles) {
  container::HostConfig hc;
  hc.cpus = 4;
  hc.ram = 4 * GiB;
  container::Host host(hc);
  container::ContainerRuntime runtime(host);
  auto& c = runtime.run({});
  workloads::CpuHog hog(host, c, 2, 1 * sec);
  EXPECT_EQ(hog.runnable_threads(), 2);
  host.engine().run_until([&] { return hog.finished(); }, 60 * sec);
  EXPECT_TRUE(hog.finished());
  EXPECT_EQ(hog.runnable_threads(), 0);
  // 2 threads at full speed: ~0.5s wall.
  EXPECT_NEAR(static_cast<double>(hog.finish_time()), 0.5e6, 0.05e6);
}

TEST(MemHog, ChargesUpToFootprint) {
  container::HostConfig hc;
  hc.cpus = 2;
  hc.ram = 4 * GiB;
  container::Host host(hc);
  container::ContainerRuntime runtime(host);
  auto& c = runtime.run({});
  workloads::MemHog hog(host, c, 1 * GiB, 2 * GiB);
  host.run_for(3 * sec);
  EXPECT_NEAR(static_cast<double>(hog.charged()), static_cast<double>(1 * GiB),
              static_cast<double>(64 * MiB));
  EXPECT_EQ(host.memory().usage(c.cgroup()), hog.charged());
}

}  // namespace
}  // namespace arv::workloads
