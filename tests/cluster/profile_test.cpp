// ProfileStore + profile-driven consumers (`ctest -L profile`): integer
// percentiles and burstiness over the sliding window, service correlation
// from shared arrival streams, pruning and baseline-reset semantics, the
// "profile" placement strategy's anti-colocation, the rebalancer's profiled
// victim selection, and the bounded usage-baseline tracking the fallback
// path relies on.
#include "src/cluster/profile.h"

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/fleet_view.h"
#include "src/cluster/placement.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/rebalancer.h"
#include "src/cluster/router.h"
#include "src/cluster/scheduler.h"
#include "src/harness/scenario.h"

namespace arv::cluster {
namespace {

using namespace arv::units;

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

container::HostConfig small_host(int cpus = 4, Bytes ram = 8 * GiB) {
  container::HostConfig config;
  config.cpus = cpus;
  config.ram = ram;
  return config;
}

ProfileConfig fast_profiles() {
  ProfileConfig config;
  config.period = 50 * msec;
  config.window_rounds = 16;
  config.min_samples = 4;
  return config;
}

// --- percentiles and burstiness ---------------------------------------------

TEST(ProfileStore, SteadyHogProfilesFlat) {
  Cluster cluster;
  cluster.add_host(small_host());
  const int pod = cluster.create_pod(0, {"hog", res(500, 512 * MiB)},
                                     cpu_hog_workload(2, 1000 * sec));
  ProfileStore profiles(cluster, fast_profiles());
  cluster.add_component(&profiles);
  cluster.run_for(2 * sec);

  const PodProfile p = profiles.profile(pod);
  ASSERT_GT(p.samples, 0) << "window never filled to min_samples";
  // Two always-runnable threads on four idle CPUs burn ~2 CPUs per round.
  EXPECT_GT(p.cpu_p50_millicpu, 1500);
  EXPECT_LE(p.cpu_p95_millicpu, 2500);
  EXPECT_GE(p.cpu_p95_millicpu, p.cpu_p50_millicpu);
  // A pure CPU hog commits no memory; the percentiles just stay ordered.
  EXPECT_GE(p.mem_p95, p.mem_p50);
  // A steady burner is flat: p95/p50 stays at (or just above) parity.
  EXPECT_LT(p.burst_permille, 1300);
  EXPECT_GE(p.burst_permille, 1000);
}

TEST(ProfileStore, OnOffLoadReadsAsBursty) {
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  fleet.enable_router(0.0);
  fleet.enable_profiles(fast_profiles());
  server::WebConfig web;
  web.service_cpu = 8 * msec;
  const int pod = fleet.place_web_pod("effective", res(1000, 1 * GiB), web);
  ASSERT_GE(pod, 0);
  // Square-wave demand: bursts of traffic separated by silence, so the
  // window holds both busy and idle rounds.
  for (int cycle = 0; cycle < 4; ++cycle) {
    fleet.router()->set_rate(200.0);
    fleet.run(200 * msec);
    fleet.router()->set_rate(0.0);
    fleet.run(200 * msec);
  }
  const PodProfile p = fleet.profiles()->profile(pod);
  ASSERT_GT(p.samples, 0);
  EXPECT_GT(p.cpu_p95_millicpu, p.cpu_p50_millicpu);
  EXPECT_GT(p.burst_permille, 1500) << "square wave must profile as spiky";
}

// --- correlation ------------------------------------------------------------

TEST(ProfileStore, SharedArrivalStreamCorrelatesServices) {
  // Two services behind one router share its on/off arrival stream, so their
  // round-usage series rise and fall together; a steady hog service stays
  // flat and correlates with nothing.
  //
  // The web runtime's listener thread is always schedulable, so an idle web
  // pod burns a constant ~1000m floor; usage only co-varies when bursts push
  // queue depth past one worker. 20ms of service per request at 200/s split
  // over two replicas does that, and the longer off-phase drains the queues
  // so the floor is actually revisited.
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  fleet.add_host(small_host());
  fleet.enable_router(0.0);
  fleet.enable_profiles(fast_profiles());
  server::WebConfig web;
  web.service_cpu = 20 * msec;
  PodSpec a;
  a.name = "a-0";
  a.service = "svc-a";
  a.resources = res(500, 512 * MiB);
  const int pod_a = fleet.scheduler().place("effective", a, web_replica(web));
  ASSERT_GE(pod_a, 0);
  fleet.router()->add_replica(pod_a);
  PodSpec b;
  b.name = "b-0";
  b.service = "svc-b";
  b.resources = res(500, 512 * MiB);
  const int pod_b = fleet.scheduler().place("effective", b, web_replica(web));
  ASSERT_GE(pod_b, 0);
  fleet.router()->add_replica(pod_b);
  PodSpec c;
  c.name = "c-0";
  c.service = "svc-c";
  c.resources = res(500, 512 * MiB);
  const int pod_c =
      fleet.scheduler().place("effective", c, cpu_hog_workload(1, 1000 * sec));
  ASSERT_GE(pod_c, 0);

  for (int cycle = 0; cycle < 4; ++cycle) {
    fleet.router()->set_rate(200.0);
    fleet.run(200 * msec);
    fleet.router()->set_rate(0.0);
    fleet.run(300 * msec);
  }
  const ProfileStore& profiles = *fleet.profiles();
  EXPECT_GT(profiles.service_correlation_permille("svc-a", "svc-b"), 300);
  EXPECT_EQ(profiles.service_correlation_permille("svc-a", "svc-c"), 0)
      << "a flat series co-varies with nothing";
  EXPECT_EQ(profiles.service_correlation_permille("svc-a", "nope"), 0);
  EXPECT_GT(profiles.pod_correlation_permille(pod_a, pod_b), 300);
  EXPECT_EQ(profiles.pod_correlation_permille(pod_a, 999), 0);
}

// --- lifecycle: pruning and relocation ---------------------------------------

TEST(ProfileStore, StoppedPodsArePruned) {
  Cluster cluster;
  cluster.add_host(small_host());
  const int a = cluster.create_pod(0, {"a", res(200, 256 * MiB)},
                                   cpu_hog_workload(1, 1000 * sec));
  const int b = cluster.create_pod(0, {"b", res(200, 256 * MiB)},
                                   cpu_hog_workload(1, 1000 * sec));
  ProfileStore profiles(cluster, fast_profiles());
  cluster.add_component(&profiles);
  cluster.run_for(1 * sec);
  EXPECT_EQ(profiles.tracked_pods(), 2);
  EXPECT_GT(profiles.profile(a).samples, 0);
  cluster.stop_pod(a);
  cluster.run_for(200 * msec);
  EXPECT_EQ(profiles.tracked_pods(), 1);
  EXPECT_EQ(profiles.profile(a).samples, 0);
  EXPECT_GT(profiles.profile(b).samples, 0);
}

TEST(ProfileStore, MigrationResetsTheBaselineNotTheWindow) {
  ClusterConfig config;
  config.migration_freeze = 10 * msec;  // land within one profile round
  Cluster cluster(config);
  cluster.add_host(small_host());
  cluster.add_host(small_host());
  const int pod = cluster.create_pod(0, {"hog", res(500, 512 * MiB)},
                                     cpu_hog_workload(2, 1000 * sec));
  ProfileStore profiles(cluster, fast_profiles());
  cluster.add_component(&profiles);
  cluster.run_for(1 * sec);
  const int before = profiles.profile(pod).samples;
  ASSERT_GT(before, 0);

  cluster.migrate_pod(pod, 1);
  cluster.run_for(200 * msec);
  const PodProfile after = profiles.profile(pod);
  // The window survived the move (no restart from zero samples), and the
  // baseline reset on landing: the relocation itself must not read as a
  // burst beyond what two runnable threads can actually burn.
  EXPECT_GT(after.samples, 0);
  EXPECT_LE(after.cpu_p95_millicpu, 2500);
}

// --- the "profile" placement strategy ----------------------------------------

TEST(ProfileStrategy, RegisteredAndNamed) {
  auto& registry = PlacementRegistry::instance();
  ASSERT_TRUE(registry.has("profile"));
  auto strategy = registry.make("profile");
  ASSERT_NE(strategy, nullptr);
  EXPECT_EQ(strategy->name(), "profile");
}

TEST(ProfileStrategy, SpreadsReplicasOfOneService) {
  // Two identical hosts: the same-service penalty must push the second
  // replica of "web" onto the other machine even though the first host
  // still has plenty of raw headroom.
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  fleet.add_host(small_host());
  fleet.enable_profiles(fast_profiles());
  fleet.use_placement("profile");
  PodSpec first;
  first.name = "web-0";
  first.service = "web";
  first.resources = res(500, 512 * MiB);
  const int a = fleet.scheduler().place("profile", first);
  ASSERT_GE(a, 0);
  fleet.run(100 * msec);
  PodSpec second;
  second.name = "web-1";
  second.service = "web";
  second.resources = res(500, 512 * MiB);
  const int b = fleet.scheduler().place("profile", second);
  ASSERT_GE(b, 0);
  EXPECT_NE(fleet.cluster().pod(a).host, fleet.cluster().pod(b).host);
}

TEST(ProfileStrategy, AvoidsTheHostOfACorrelatedService) {
  // svc-a (host 0) and svc-b (host 2) burst together — one shared router
  // stream; svc-c (host 1) is a steady, uncorrelated hog. A new svc-b
  // replica sees three penalties: corr(a,b) on host 0, zero on host 1, the
  // same-service 1000 on host 2 — so the *correlation alone* must push it
  // onto host 1, even though the hog leaves host 1 with the least raw slack.
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  fleet.add_host(small_host());
  fleet.add_host(small_host());
  fleet.enable_router(0.0);
  fleet.enable_profiles(fast_profiles());
  server::WebConfig web;
  web.service_cpu = 20 * msec;  // bursts must clear the 1000m listener floor
  PodSpec a;
  a.name = "a-0";
  a.service = "svc-a";
  a.resources = res(500, 512 * MiB);
  const int pod_a = fleet.cluster().create_pod(0, a, web_replica(web));
  fleet.router()->add_replica(pod_a);
  PodSpec b;
  b.name = "b-0";
  b.service = "svc-b";
  b.resources = res(500, 512 * MiB);
  const int pod_b = fleet.cluster().create_pod(2, b, web_replica(web));
  fleet.router()->add_replica(pod_b);
  PodSpec c;
  c.name = "c-0";
  c.service = "svc-c";
  c.resources = res(500, 512 * MiB);
  fleet.cluster().create_pod(1, c, cpu_hog_workload(1, 1000 * sec));

  for (int cycle = 0; cycle < 4; ++cycle) {
    fleet.router()->set_rate(200.0);
    fleet.run(200 * msec);
    fleet.router()->set_rate(0.0);
    fleet.run(300 * msec);
  }
  ASSERT_GT(fleet.profiles()->service_correlation_permille("svc-a", "svc-b"),
            300);

  PodSpec replica;
  replica.name = "b-1";
  replica.service = "svc-b";
  replica.resources = res(500, 512 * MiB);
  const int placed = fleet.scheduler().place("profile", replica);
  ASSERT_GE(placed, 0);
  EXPECT_EQ(fleet.cluster().pod(placed).host, 1)
      << "correlated host 0 and same-service host 2 must both be avoided";
}

// --- the rebalancer's profiled victim ----------------------------------------

TEST(Rebalancer, EvictsTheProfiledHotPodNotTheBigRequest) {
  // Host 0 (4 CPUs): a three-thread hog burning 3000m that declares a
  // *small* request, next to a zero-traffic web pod with a big request
  // whose always-runnable listener burns the fourth CPU — so the host has
  // no idle time and the rebalancer trips. The request-driven victim would
  // be the web pod (800m > 300m); the profiled victim is the hog
  // (p95 3000m > 1000m).
  Cluster cluster;
  cluster.add_host(small_host());
  cluster.add_host(small_host());
  const int hog = cluster.create_pod(0, {"hog", res(300, 512 * MiB)},
                                     cpu_hog_workload(3, 10000 * sec));
  server::WebConfig quiet_web;
  quiet_web.arrivals_per_sec = 0.0;  // idle: only the listener floor burns
  const int quiet = cluster.create_pod(0, {"quiet", res(800, 512 * MiB)},
                                       web_standalone(quiet_web));
  ProfileStore profiles(cluster, fast_profiles());
  cluster.add_component(&profiles);
  RebalanceConfig rebalance;
  rebalance.period = 100 * msec;
  rebalance.saturated_rounds = 3;
  rebalance.cooldown = 1 * sec;
  rebalance.min_residency = 500 * msec;
  Rebalancer rebalancer(cluster, rebalance);
  cluster.add_component(&rebalancer);
  cluster.run_for(5 * sec);

  EXPECT_GE(rebalancer.migrations(), 1u);
  EXPECT_EQ(cluster.pod(hog).host, 1) << "the hot pod must be the victim";
  EXPECT_EQ(cluster.pod(quiet).host, 0);
  // The profiled path keeps no per-round usage baselines at all.
  EXPECT_EQ(rebalancer.tracked_pods(), 0);
}

TEST(Rebalancer, UsageBaselinesStayBoundedWithoutProfiles) {
  // Regression for the fallback victim signal: baselines must be pruned as
  // pods stop, so pod_last_usage_ never outlives the fleet's running set.
  Cluster cluster;
  cluster.add_host(small_host());
  std::vector<int> pods;
  for (int i = 0; i < 3; ++i) {
    pods.push_back(cluster.create_pod(0,
                                      {"p" + std::to_string(i),
                                       res(200, 256 * MiB)},
                                      cpu_hog_workload(1, 1000 * sec)));
  }
  RebalanceConfig rebalance;
  rebalance.period = 100 * msec;
  Rebalancer rebalancer(cluster, rebalance);
  cluster.add_component(&rebalancer);
  cluster.run_for(500 * msec);
  EXPECT_EQ(rebalancer.tracked_pods(), 3);
  cluster.stop_pod(pods[0]);
  cluster.stop_pod(pods[1]);
  cluster.run_for(300 * msec);
  EXPECT_EQ(rebalancer.tracked_pods(), 1)
      << "baselines of stopped pods must be pruned";
}

// --- scenario knobs -----------------------------------------------------------

TEST(FleetScenario, PlacementDefaultAndProfileKnobs) {
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  EXPECT_EQ(fleet.profiles(), nullptr);
  fleet.enable_profiles(fast_profiles());
  ASSERT_NE(fleet.profiles(), nullptr);
  EXPECT_EQ(fleet.cluster().profiles(), fleet.profiles());

  // The strategy-less overloads route through use_placement's default.
  const int a = fleet.place_pod(res(200, 256 * MiB));
  ASSERT_GE(a, 0);
  fleet.use_placement("profile");
  const int b = fleet.place_pod(res(200, 256 * MiB),
                                cpu_hog_workload(1, 10 * sec));
  ASSERT_GE(b, 0);
  fleet.run(500 * msec);
  EXPECT_GT(fleet.profiles()->rounds(), 0u);
  // Rows in the shared snapshot carry the profiled percentiles.
  const FleetView& view = fleet.cluster().fleet_view();
  EXPECT_GT(view.pods[static_cast<std::size_t>(b)].samples, 0);
  EXPECT_EQ(view.profiles, fleet.profiles());
}

}  // namespace
}  // namespace arv::cluster
