// Cluster mechanics and the determinism contract: same seed, same fleet —
// byte-identical cluster trace; hosts sharing a cluster stay byte-identical
// to the same hosts run solo (no hidden cross-host state).
#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include <string>

#include "src/cluster/pod_workloads.h"
#include "src/cluster/scheduler.h"
#include "src/container/k8s.h"
#include "src/workloads/hogs.h"

namespace arv::cluster {
namespace {

using namespace arv::units;

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

container::HostConfig small_host(int cpus, Bytes ram) {
  container::HostConfig config;
  config.cpus = cpus;
  config.ram = ram;
  return config;
}

TEST(Cluster, StepsHostsInLockstep) {
  Cluster cluster;
  cluster.add_host(small_host(2, 4 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.run_for(50 * msec);
  EXPECT_EQ(cluster.now(), 50 * msec);
  EXPECT_EQ(cluster.host(0).now(), 50 * msec);
  EXPECT_EQ(cluster.host(1).now(), 50 * msec);
}

TEST(Cluster, FreshHostsReportFullyIdleWindow) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  const HostView view = cluster.host_view(0);
  EXPECT_EQ(view.slack_millicpu, 4000);  // 4 CPUs fully idle
  EXPECT_EQ(view.capacity_millicpu, 4000);
  EXPECT_EQ(view.pods, 0);
}

TEST(Cluster, LedgerTracksPodLifecycle) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  PodSpec spec;
  spec.resources = res(1500, 1 * GiB);
  const int pod = cluster.create_pod(0, spec);
  EXPECT_EQ(cluster.host_view(0).requested_millicpu, 1500);
  EXPECT_EQ(cluster.host_view(0).requested_memory, 1 * GiB);
  EXPECT_EQ(cluster.pods_on(0), 1);
  EXPECT_TRUE(cluster.pod(pod).running());
  cluster.stop_pod(pod);
  EXPECT_EQ(cluster.host_view(0).requested_millicpu, 0);
  EXPECT_EQ(cluster.pods_on(0), 0);
  EXPECT_FALSE(cluster.pod(pod).running());
  EXPECT_FALSE(cluster.pod(pod).in_flight());
}

TEST(Cluster, MigrationPaysFreezeThenLands) {
  ClusterConfig config;
  config.migration_freeze = 50 * msec;
  Cluster cluster(config);
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  PodSpec spec;
  spec.resources = res(500, 512 * MiB);
  const int pod =
      cluster.create_pod(0, spec, mem_hog_workload(256 * MiB, 1 * GiB));
  cluster.run_for(1 * sec);  // hog charges memory => migration has state to move

  cluster.migrate_pod(pod, 1);
  EXPECT_TRUE(cluster.pod(pod).in_flight());
  EXPECT_EQ(cluster.pod(pod).host, 1);
  // The target slot is reserved for the whole flight.
  EXPECT_EQ(cluster.host_view(1).requested_millicpu, 500);
  EXPECT_EQ(cluster.host_view(0).requested_millicpu, 0);
  EXPECT_EQ(cluster.migrations(), 1u);

  // Freeze = base + committed/bandwidth > base; not landed after base alone.
  cluster.run_for(config.migration_freeze);
  EXPECT_TRUE(cluster.pod(pod).in_flight());
  cluster.run_for(5 * sec);
  EXPECT_TRUE(cluster.pod(pod).running());
  EXPECT_EQ(cluster.pod(pod).migrations, 1);
  EXPECT_EQ(cluster.pods_on(1), 1);
  EXPECT_EQ(cluster.pods_on(0), 0);
}

// The acceptance-criteria determinism pin: an entire fleet — placement with
// rng tie-breaks, web replicas, hogs, migrations, tracing — run twice from
// the same seed must produce byte-identical cluster traces.
std::pair<std::string, std::string> run_traced_fleet() {
  ClusterConfig config;
  config.enable_tracing = true;
  config.trace_interval = 10 * msec;
  config.seed = 99;
  Cluster cluster(config);
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  ClusterScheduler scheduler(cluster);
  server::WebConfig web;
  web.arrivals_per_sec = 200;
  scheduler.place("requests", {"web-a", res(1000, 1 * GiB)},
                  web_standalone(web));
  scheduler.place("effective", {"web-b", res(1000, 1 * GiB)},
                  web_standalone(web));
  scheduler.place("requests", {"hog", res(500, 512 * MiB)},
                  cpu_hog_workload(2, 1 * sec));
  cluster.run_for(500 * msec);
  const int migrant = 2;
  if (cluster.pod(migrant).running() && cluster.pod(migrant).host == 0) {
    cluster.migrate_pod(migrant, 1);
  }
  cluster.run_for(2 * sec);
  return {cluster.trace()->to_csv(), cluster.trace()->to_json()};
}

TEST(ClusterDeterminism, SameSeedSameByteIdenticalTrace) {
  const auto [csv_a, json_a] = run_traced_fleet();
  const auto [csv_b, json_b] = run_traced_fleet();
  EXPECT_EQ(csv_a, csv_b);
  EXPECT_EQ(json_a, json_b);
  EXPECT_GT(csv_a.size(), 100u);  // the trace actually recorded something
}

// Satellite regression: two hosts inside one cluster must behave exactly as
// the same two hosts run solo — interleaved stepping shares no state (no
// globals, no cross-host leakage). Byte-identical host traces are the pin.
std::string solo_host_trace(int cpus, Bytes ram, int hog_threads) {
  container::HostConfig config = small_host(cpus, ram);
  config.enable_tracing = true;
  config.trace.sample_interval = 10 * msec;
  container::Host host(config);
  container::ContainerRuntime runtime(host);
  container::K8sResources r = res(1000, 1 * GiB);
  auto& c = runtime.run(container::pod_container("pod-under-test", r));
  workloads::CpuHog hog(host, c, hog_threads, 2 * sec);
  host.run_for(3 * sec);
  return host.trace()->to_csv();
}

TEST(ClusterDeterminism, InterleavedHostsMatchSoloRunsByteForByte) {
  ClusterConfig cluster_config;
  Cluster cluster(cluster_config);
  container::HostConfig host_a = small_host(2, 4 * GiB);
  host_a.enable_tracing = true;
  host_a.trace.sample_interval = 10 * msec;
  container::HostConfig host_b = small_host(6, 8 * GiB);
  host_b.enable_tracing = true;
  host_b.trace.sample_interval = 10 * msec;
  cluster.add_host(host_a);
  cluster.add_host(host_b);
  // The same container + workload each solo run creates, via the same
  // pod_container mapping.
  PodSpec spec_a;
  spec_a.name = "pod-under-test";
  spec_a.resources = res(1000, 1 * GiB);
  cluster.create_pod(0, spec_a, cpu_hog_workload(1, 2 * sec));
  PodSpec spec_b;
  spec_b.name = "pod-under-test";
  spec_b.resources = res(1000, 1 * GiB);
  cluster.create_pod(1, spec_b, cpu_hog_workload(4, 2 * sec));
  cluster.run_for(3 * sec);

  EXPECT_EQ(cluster.host(0).trace()->to_csv(), solo_host_trace(2, 4 * GiB, 1));
  EXPECT_EQ(cluster.host(1).trace()->to_csv(), solo_host_trace(6, 8 * GiB, 4));
}

}  // namespace
}  // namespace arv::cluster
