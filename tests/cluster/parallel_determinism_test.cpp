// Parallel determinism battery (`ctest -L parallel`): the cluster's sharded
// host phase must be invisible in every observable. Fleets — golden and
// randomized, calm and under fault chaos — are replayed at thread counts
// 1/2/4/8 and with the idle-host skip on and off; traces must come out
// byte-identical and every conservation counter equal. Seed coverage scales
// with ARV_CHAOS_ITERS like the chaos suite.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "src/cluster/faults.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/recovery.h"
#include "src/cluster/router.h"
#include "src/container/host.h"
#include "src/harness/scenario.h"
#include "src/sim/worker_pool.h"

namespace arv::cluster {
namespace {

using namespace arv::units;

int sweep_iterations() {
  const char* env = std::getenv("ARV_CHAOS_ITERS");
  if (env == nullptr) {
    return 3;
  }
  const int iters = std::atoi(env);
  return iters > 0 ? iters : 3;
}

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

container::HostConfig small_host() {
  container::HostConfig config;
  config.cpus = 4;
  config.ram = 8 * GiB;
  return config;
}

/// Everything a run observably produces. Two runs of the same fleet must
/// compare equal on all of it, whatever the thread count or skip setting.
struct FleetResult {
  std::string trace;
  std::uint64_t hosts_skipped = 0;
  std::uint64_t migrations = 0;
  std::uint64_t pod_crashes = 0;
  std::uint64_t host_crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t failovers = 0;
  std::uint64_t generated = 0;
  std::uint64_t routed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t unroutable = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::vector<CpuTime> slack_totals;  ///< per host, analytic (no sync)
};

void expect_equal(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.hosts_skipped, b.hosts_skipped);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.pod_crashes, b.pod_crashes);
  EXPECT_EQ(a.host_crashes, b.host_crashes);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.routed, b.routed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.unroutable, b.unroutable);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.slack_totals, b.slack_totals);
}

struct FleetOptions {
  int threads = 1;
  bool skip_idle_hosts = true;
  int hosts = 4;
  int busy_hosts = 2;           ///< hosts that receive pods; the rest idle
  std::uint64_t chaos_seed = 0; ///< 0 = fault-free
  SimDuration run = 4 * sec;
};

/// One full fleet: router + recovery + rebalancer + web replicas and hogs on
/// the first `busy_hosts` hosts, optional randomized fault plan.
FleetResult run_fleet(const FleetOptions& options) {
  ClusterConfig config;
  config.seed = 42;
  config.enable_tracing = true;
  config.trace_interval = 10 * msec;
  config.threads = options.threads;
  config.skip_idle_hosts = options.skip_idle_hosts;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < options.hosts; ++i) {
    fleet.add_host(small_host());
  }
  RouterConfig router;
  router.arrivals_per_sec = 300;
  router.max_retries = 2;
  fleet.enable_router(router);
  DetectorConfig detector;
  detector.period = 100 * msec;
  detector.miss_threshold = 2;
  RestartConfig restart;
  restart.period = 50 * msec;
  restart.backoff_base = 100 * msec;
  restart.backoff_cap = 1 * sec;
  fleet.enable_recovery(detector, restart);
  RebalanceConfig rebalance;
  rebalance.period = 250 * msec;
  fleet.enable_rebalancer(rebalance);

  Cluster& cluster = fleet.cluster();
  server::WebConfig web;
  web.service_cpu = 6 * msec;
  web.max_queue = 100;
  const int busy = std::min(options.busy_hosts, options.hosts);
  for (int h = 0; h < busy; ++h) {
    const int pod = cluster.create_pod(
        h, {"web-" + std::to_string(h), res(1000, 1 * GiB)}, web_replica(web));
    EXPECT_TRUE(fleet.router()->add_replica(pod));
  }
  cluster.create_pod(0, {"hog", res(500, 512 * MiB)},
                     cpu_hog_workload(1, 60 * sec));
  if (options.chaos_seed != 0) {
    Rng chaos_rng(options.chaos_seed);
    ChaosOptions chaos;
    chaos.horizon = options.run / 2;  // leave a recovery tail
    fleet.enable_faults(FaultPlan::random(chaos_rng, chaos, options.hosts,
                                          cluster.pod_count()));
  }
  fleet.run(options.run);

  FleetResult result;
  result.trace = cluster.trace()->to_csv();
  result.hosts_skipped = cluster.hosts_skipped();
  result.migrations = cluster.migrations();
  result.pod_crashes = cluster.pod_crashes();
  result.host_crashes = cluster.host_crashes();
  result.restarts = cluster.restarts();
  result.failovers = cluster.failovers();
  const RequestRouter& r = *fleet.router();
  result.generated = r.generated();
  result.routed = r.routed();
  result.dropped = r.dropped();
  result.unroutable = r.unroutable();
  result.shed = r.shed();
  result.completed = r.aggregate().completed;
  // Request conservation must hold in every configuration, not only in the
  // serial one the chaos suite verifies.
  EXPECT_EQ(result.generated,
            result.routed + result.dropped + result.unroutable + result.shed);
  for (int i = 0; i < cluster.host_count(); ++i) {
    result.slack_totals.push_back(cluster.host_slack_total(i));
  }
  return result;
}

/// Drop one column (by header name) from a trace CSV — used to compare
/// skip-on vs skip-off runs, whose only legitimate difference is the
/// cluster.hosts_skipped series itself.
std::string strip_column(const std::string& csv, const std::string& column) {
  std::istringstream in(csv);
  std::string line;
  std::string out;
  std::size_t drop = std::string::npos;
  bool header = true;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string field;
    std::vector<std::string> row;
    while (std::getline(fields, field, ',')) {
      row.push_back(field);
    }
    if (header) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (row[i] == column) {
          drop = i;
        }
      }
      EXPECT_NE(drop, std::string::npos) << "column not found: " << column;
      header = false;
    }
    std::string joined;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i == drop) {
        continue;
      }
      if (!joined.empty()) {
        joined += ',';
      }
      joined += row[i];
    }
    out += joined;
    out += '\n';
  }
  return out;
}

// --- the golden sweep -------------------------------------------------------

TEST(ParallelDeterminism, GoldenFleetIsByteIdenticalAcrossThreadCounts) {
  FleetOptions options;
  options.threads = 1;
  const FleetResult reference = run_fleet(options);
  ASSERT_FALSE(reference.trace.empty());
  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    options.threads = threads;
    expect_equal(reference, run_fleet(options));
  }
}

TEST(ParallelDeterminism, RandomizedFleetsAndFaultPlansAreThreadInvariant) {
  const int iters = sweep_iterations();
  const int alt_threads[] = {2, 4, 8};
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = 0x9a7a11e1u + static_cast<std::uint64_t>(i);
    SCOPED_TRACE("sweep seed " + std::to_string(seed));
    FleetOptions options;
    // Fleet shape varies with the seed so the sweep covers different
    // host/pod/fault geometries, not one fixture many times.
    options.hosts = 3 + static_cast<int>(seed % 5);
    options.busy_hosts = 1 + static_cast<int>(seed % 3);
    options.chaos_seed = seed;
    options.threads = 1;
    const FleetResult serial = run_fleet(options);
    options.threads = alt_threads[i % 3];
    expect_equal(serial, run_fleet(options));
  }
}

// --- the quiescence fast path -----------------------------------------------

TEST(ParallelDeterminism, IdleHostSkipIsExact) {
  FleetOptions options;
  options.threads = 2;
  options.hosts = 12;
  options.busy_hosts = 2;
  options.skip_idle_hosts = true;
  const FleetResult on = run_fleet(options);
  options.skip_idle_hosts = false;
  const FleetResult off = run_fleet(options);
  // Ten of twelve hosts never receive work: the fast path must have fired
  // heavily with the skip on, and not at all with it off.
  EXPECT_GT(on.hosts_skipped, 0u);
  EXPECT_EQ(off.hosts_skipped, 0u);
  // Everything else — including per-host slack series for the frozen hosts
  // — must be identical; only the skip counter's own column may differ.
  EXPECT_EQ(strip_column(on.trace, "cluster.hosts_skipped"),
            strip_column(off.trace, "cluster.hosts_skipped"));
  EXPECT_EQ(on.slack_totals, off.slack_totals);
  EXPECT_EQ(on.migrations, off.migrations);
  EXPECT_EQ(on.generated, off.generated);
  EXPECT_EQ(on.completed, off.completed);
}

TEST(ParallelDeterminism, AdvanceIdleMatchesTickByTickExactly) {
  container::HostConfig config;
  config.cpus = 8;
  config.ram = 16 * GiB;
  container::Host stepped(config);
  container::Host jumped(config);
  ASSERT_TRUE(jumped.quiescent());
  const SimDuration span = 500 * msec;
  stepped.run_for(span);
  jumped.advance_idle(span);
  EXPECT_EQ(stepped.now(), jumped.now());
  EXPECT_EQ(stepped.engine().ticks_executed(), jumped.engine().ticks_executed());
  EXPECT_EQ(stepped.scheduler().total_slack(), jumped.scheduler().total_slack());
  EXPECT_EQ(stepped.scheduler().last_tick_slack(),
            jumped.scheduler().last_tick_slack());
  EXPECT_EQ(stepped.scheduler().nr_running(), jumped.scheduler().nr_running());
  // Bit-exact, not approximately equal: accrue_idle replays the loadavg
  // decay sample by sample so later arithmetic diverges nowhere.
  EXPECT_EQ(stepped.scheduler().loadavg(), jumped.scheduler().loadavg());
  EXPECT_EQ(stepped.memory().free_memory(), jumped.memory().free_memory());
}

// --- fault ordering vs the host phase ---------------------------------------

/// A serial-phase spy registered *before* the fault injector: at every
/// component round it demands that each host — through the syncing accessor,
/// the same single serialization point the fault machinery uses — stands
/// exactly at cluster time. If the worker pool ever leaked a half-stepped or
/// lagging host into the serial phases, a crash fired right after this probe
/// would observe it; this pins that it cannot.
class PhaseProbe final : public sim::TickComponent {
 public:
  explicit PhaseProbe(Cluster& cluster) : cluster_(cluster) {}

  void tick(SimTime now, SimDuration /*dt*/) override {
    ++rounds_;
    EXPECT_EQ(now, cluster_.now());
    for (int i = 0; i < cluster_.host_count(); ++i) {
      EXPECT_EQ(cluster_.host(i).now(), now) << "host " << i;
    }
  }
  std::string name() const override { return "test.phase_probe"; }
  SimDuration tick_period() const override { return 0; }

  std::uint64_t rounds() const { return rounds_; }

 private:
  Cluster& cluster_;
  std::uint64_t rounds_ = 0;
};

TEST(ParallelDeterminism, FaultsObserveFullySteppedHostsOnly) {
  auto run = [](int threads) {
    ClusterConfig config;
    config.seed = 42;
    config.enable_tracing = true;
    config.trace_interval = 10 * msec;
    config.threads = threads;
    harness::FleetScenario fleet(config);
    for (int i = 0; i < 4; ++i) {
      fleet.add_host(small_host());
    }
    fleet.enable_router(200.0);
    fleet.enable_recovery();
    Cluster& cluster = fleet.cluster();
    server::WebConfig web;
    web.service_cpu = 5 * msec;
    for (int h = 0; h < 2; ++h) {
      const int pod = cluster.create_pod(
          h, {"web-" + std::to_string(h), res(1000, 1 * GiB)},
          web_replica(web));
      EXPECT_TRUE(fleet.router()->add_replica(pod));
    }
    PhaseProbe probe(cluster);
    cluster.add_component(&probe);  // before the injector => runs first
    FaultPlan plan;
    plan.add({FaultEvent::Kind::kPodCrash, 200 * msec, -1, 0, 0, 0, 0});
    plan.add({FaultEvent::Kind::kHostCrash, 300 * msec, 1, -1, 500 * msec, 0, 0});
    plan.add({FaultEvent::Kind::kMonitorStall, 350 * msec, 3, -1, 200 * msec, 0, 0});
    plan.add({FaultEvent::Kind::kMemoryPressure, 400 * msec, 2, -1, 300 * msec, 0, 800});
    fleet.enable_faults(plan);
    fleet.run(2 * sec);
    EXPECT_GT(probe.rounds(), 0u);
    EXPECT_TRUE(fleet.injector()->done());
    EXPECT_EQ(cluster.host_crashes(), 1u);
    EXPECT_TRUE(cluster.host_up(1));  // rebooted
    return cluster.trace()->to_csv();
  };
  // The probe syncs every host every tick; that must not perturb anything
  // (sync is an exact replay), so the run still matches across threads.
  const std::string serial = run(1);
  const std::string parallel = run(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_FALSE(serial.empty());
}

// --- worker pool edges ------------------------------------------------------

TEST(ParallelDeterminism, MoreThreadsThanHosts) {
  FleetOptions options;
  options.hosts = 2;
  options.busy_hosts = 2;
  options.run = 1 * sec;
  options.threads = 1;
  const FleetResult serial = run_fleet(options);
  options.threads = 8;  // six shards own no hosts at all
  expect_equal(serial, run_fleet(options));
}

TEST(ParallelDeterminism, AutoThreadsResolvesAndMatchesSerial) {
  FleetOptions options;
  options.hosts = 3;
  options.run = 1 * sec;
  options.threads = 1;
  const FleetResult serial = run_fleet(options);
  options.threads = 0;  // auto
  expect_equal(serial, run_fleet(options));
}

TEST(ParallelDeterminism, WorkerPoolRunsEveryShardAndIsReusable) {
  sim::WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<int> hits(4, 0);
  for (int round = 0; round < 100; ++round) {
    pool.run([&hits](int shard) { ++hits[static_cast<std::size_t>(shard)]; });
  }
  for (const int count : hits) {
    EXPECT_EQ(count, 100);
  }
  EXPECT_GE(sim::WorkerPool::default_threads(), 1);
  EXPECT_LE(sim::WorkerPool::default_threads(), 16);
}

}  // namespace
}  // namespace arv::cluster
