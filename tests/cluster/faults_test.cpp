// FaultInjector mechanics: each fault kind fires at its scheduled time,
// recovers on schedule, and the cluster's crash primitives keep the pod
// ledger and request accounting consistent through it all.
#include "src/cluster/faults.h"

#include <gtest/gtest.h>

#include "src/cluster/pod_workloads.h"
#include "src/cluster/scheduler.h"
#include "src/container/host.h"
#include "src/core/ns_monitor.h"
#include "src/mem/memory_manager.h"

namespace arv::cluster {
namespace {

using namespace arv::units;

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

container::HostConfig small_host(int cpus, Bytes ram) {
  container::HostConfig config;
  config.cpus = cpus;
  config.ram = ram;
  return config;
}

TEST(Cluster, CrashPodKeepsLedgerSlotAndHarvestsStats) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  server::WebConfig web;
  web.arrivals_per_sec = 200;
  const int pod = cluster.create_pod(0, {"web", res(1000, 1 * GiB)},
                                     web_standalone(web));
  cluster.run_for(1 * sec);
  ASSERT_GT(cluster.pod(pod).workload->request_sink()->stats().completed, 0u);

  cluster.crash_pod(pod);
  EXPECT_FALSE(cluster.pod(pod).running());
  EXPECT_TRUE(cluster.pod(pod).failed);
  EXPECT_FALSE(cluster.pod(pod).in_flight());
  EXPECT_EQ(cluster.pod(pod).host, 0);
  EXPECT_EQ(cluster.pod_crashes(), 1u);
  // The slot stays reserved for the restart, and history was harvested.
  EXPECT_EQ(cluster.host_view(0).requested_millicpu, 1000);
  EXPECT_EQ(cluster.pods_on(0), 1);
  EXPECT_GT(cluster.pod(pod).archived.completed, 0u);

  cluster.restart_pod(pod);
  EXPECT_TRUE(cluster.pod(pod).running());
  EXPECT_FALSE(cluster.pod(pod).failed);
  EXPECT_EQ(cluster.pod(pod).restarts, 1);
  EXPECT_EQ(cluster.host_view(0).requested_millicpu, 1000);
  cluster.run_for(1 * sec);
  EXPECT_GT(cluster.pod(pod).workload->request_sink()->stats().completed, 0u);
}

TEST(Cluster, CrashHostFailsItsPodsAndBlocksPlacement) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  const int a = cluster.create_pod(0, {"a", res(500, 512 * MiB)},
                                   cpu_hog_workload(1, 10 * sec));
  const int b = cluster.create_pod(0, {"b", res(500, 512 * MiB)},
                                   cpu_hog_workload(1, 10 * sec));
  cluster.run_for(100 * msec);

  cluster.crash_host(0);
  EXPECT_FALSE(cluster.host_up(0));
  EXPECT_TRUE(cluster.host_up(1));
  EXPECT_TRUE(cluster.pod(a).failed);
  EXPECT_TRUE(cluster.pod(b).failed);
  EXPECT_EQ(cluster.host_crashes(), 1u);
  EXPECT_FALSE(cluster.host_view(0).up);

  // The fleet stays in lockstep: the down host's clock keeps advancing.
  cluster.run_for(100 * msec);
  EXPECT_EQ(cluster.host(0).now(), cluster.host(1).now());

  cluster.reboot_host(0);
  EXPECT_TRUE(cluster.host_up(0));
  // Pods do not auto-restart on reboot; that is the RestartManager's call.
  EXPECT_TRUE(cluster.pod(a).failed);
  cluster.restart_pod(a);
  cluster.restart_pod(b);
  EXPECT_TRUE(cluster.pod(a).running());
  EXPECT_TRUE(cluster.pod(b).running());
}

TEST(Cluster, CrashHostLosesInFlightMigrationTowardIt) {
  ClusterConfig config;
  config.migration_freeze = 100 * msec;
  Cluster cluster(config);
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  const int pod = cluster.create_pod(0, {"p", res(500, 512 * MiB)},
                                     mem_hog_workload(128 * MiB, 1 * GiB));
  cluster.run_for(500 * msec);
  cluster.migrate_pod(pod, 1);
  ASSERT_TRUE(cluster.pod(pod).in_flight());

  cluster.crash_host(1);
  // The flight was toward the dead host: the pod fails in place there.
  EXPECT_TRUE(cluster.pod(pod).failed);
  EXPECT_FALSE(cluster.pod(pod).in_flight());
  EXPECT_EQ(cluster.pod(pod).host, 1);
  cluster.run_for(1 * sec);  // the due time passes without a landing
  EXPECT_FALSE(cluster.pod(pod).running());

  // Failover rescues it onto the surviving host.
  cluster.failover_pod(pod, 0);
  EXPECT_TRUE(cluster.pod(pod).running());
  EXPECT_EQ(cluster.pod(pod).host, 0);
  EXPECT_EQ(cluster.pod(pod).failovers, 1);
  EXPECT_EQ(cluster.host_view(1).requested_millicpu, 0);
  EXPECT_EQ(cluster.host_view(0).requested_millicpu, 500);
}

TEST(FaultInjector, FiresEventsOnScheduleAndRecovers) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  const int pod = cluster.create_pod(0, {"p", res(500, 512 * MiB)},
                                     cpu_hog_workload(1, 60 * sec));

  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kHostCrash;
  crash.at = 100 * msec;
  crash.host = 1;
  crash.duration = 300 * msec;  // reboots at 400ms
  plan.add(crash);
  FaultEvent kill;
  kill.kind = FaultEvent::Kind::kPodCrash;
  kill.at = 200 * msec;
  kill.pod = pod;
  plan.add(kill);
  FaultInjector injector(cluster, std::move(plan));
  cluster.add_component(&injector);

  cluster.run_for(150 * msec);
  EXPECT_FALSE(cluster.host_up(1));
  EXPECT_FALSE(cluster.pod(pod).failed);
  cluster.run_for(150 * msec);
  EXPECT_TRUE(cluster.pod(pod).failed);
  EXPECT_FALSE(injector.done());
  cluster.run_for(200 * msec);
  EXPECT_TRUE(cluster.host_up(1));  // rebooted on schedule
  EXPECT_TRUE(injector.done());
  EXPECT_EQ(injector.injected(), 2u);
  EXPECT_EQ(injector.skipped(), 0u);
}

TEST(FaultInjector, SkipsEventsWithNoEffect) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kHostCrash;
  crash.at = 10 * msec;
  crash.host = 0;
  plan.add(crash);
  plan.add(crash);  // second crash of the same (already down) host
  FaultEvent kill;
  kill.kind = FaultEvent::Kind::kPodCrash;
  kill.at = 20 * msec;
  kill.pod = 7;  // never created
  plan.add(kill);
  FaultInjector injector(cluster, std::move(plan));
  cluster.add_component(&injector);
  cluster.run_for(100 * msec);
  EXPECT_EQ(injector.injected(), 1u);
  EXPECT_EQ(injector.skipped(), 2u);
  EXPECT_FALSE(cluster.host_up(0));
  // A permanent crash (duration 0) schedules no reboot, so nothing is
  // outstanding once the plan drains.
  EXPECT_TRUE(injector.done());
}

TEST(FaultInjector, MemoryPressureEngagesReclaimThenLifts) {
  Cluster cluster;
  cluster.add_host(small_host(4, 4 * GiB));
  // A resident workload to reclaim from.
  cluster.create_pod(0, {"m", res(500, 2 * GiB)},
                     mem_hog_workload(1 * GiB, 8 * GiB));
  cluster.run_for(500 * msec);
  ASSERT_EQ(cluster.host(0).memory().kswapd_wakeups(), 0u);

  FaultPlan plan;
  FaultEvent pressure;
  pressure.kind = FaultEvent::Kind::kMemoryPressure;
  pressure.at = 600 * msec;
  pressure.host = 0;
  pressure.permille = 900;  // pin 90% of RAM
  pressure.duration = 400 * msec;
  plan.add(pressure);
  FaultInjector injector(cluster, std::move(plan));
  cluster.add_component(&injector);

  cluster.run_for(500 * msec);
  EXPECT_GT(cluster.host(0).memory().kswapd_wakeups(), 0u)
      << "pinning 90% of RAM must push free memory below the low watermark";
  cluster.run_for(1 * sec);
  EXPECT_TRUE(injector.done());
  // Reservation lifted: free memory recovers well past the pinned level.
  EXPECT_GT(cluster.host(0).memory().free_memory(),
            static_cast<Bytes>(1 * GiB));
}

TEST(FaultInjector, MonitorStallFreezesViewsThenCatchesUp) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.create_pod(0, {"p", res(1000, 1 * GiB)},
                     cpu_hog_workload(2, 60 * sec));
  cluster.run_for(200 * msec);
  core::NsMonitor& monitor = cluster.host(0).monitor();
  const std::uint64_t rounds_before = monitor.update_rounds();
  ASSERT_GT(rounds_before, 0u);

  FaultPlan plan;
  FaultEvent stall;
  stall.kind = FaultEvent::Kind::kMonitorStall;
  stall.at = 250 * msec;
  stall.host = 0;
  stall.duration = 300 * msec;
  plan.add(stall);
  FaultInjector injector(cluster, std::move(plan));
  cluster.add_component(&injector);

  cluster.run_for(300 * msec);  // inside the stall window
  EXPECT_TRUE(monitor.stalled());
  EXPECT_GT(monitor.stalled_rounds(), 0u);
  const std::uint64_t rounds_stalled = monitor.update_rounds();
  cluster.run_for(500 * msec);  // stall lifts at 550ms
  EXPECT_FALSE(monitor.stalled());
  EXPECT_GT(monitor.update_rounds(), rounds_stalled)
      << "monitor must resume update rounds after the stall lifts";
  EXPECT_TRUE(injector.done());
}

TEST(FaultPlan, RandomPlanIsDeterministicInTheSeed) {
  ChaosOptions options;
  Rng a(123);
  Rng b(123);
  const FaultPlan plan_a = FaultPlan::random(a, options, 4, 10);
  const FaultPlan plan_b = FaultPlan::random(b, options, 4, 10);
  ASSERT_EQ(plan_a.events.size(), plan_b.events.size());
  EXPECT_EQ(plan_a.events.size(),
            static_cast<std::size_t>(options.host_crashes +
                                     options.pod_crashes +
                                     options.pressure_spikes +
                                     options.monitor_stalls));
  for (std::size_t i = 0; i < plan_a.events.size(); ++i) {
    EXPECT_EQ(plan_a.events[i].kind, plan_b.events[i].kind);
    EXPECT_EQ(plan_a.events[i].at, plan_b.events[i].at);
    EXPECT_EQ(plan_a.events[i].host, plan_b.events[i].host);
    EXPECT_EQ(plan_a.events[i].pod, plan_b.events[i].pod);
    EXPECT_EQ(plan_a.events[i].duration, plan_b.events[i].duration);
    EXPECT_LT(plan_a.events[i].at, options.horizon);
  }
}

// Satellite regression: stopping a pod mid-flight used to double-book the
// target ledger (the reservation leaked) and crash on the null container.
TEST(Cluster, StopPodInFlightReleasesTargetReservation) {
  ClusterConfig config;
  config.migration_freeze = 100 * msec;
  Cluster cluster(config);
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  const int pod = cluster.create_pod(0, {"p", res(700, 512 * MiB)},
                                     mem_hog_workload(128 * MiB, 1 * GiB));
  cluster.run_for(500 * msec);
  cluster.migrate_pod(pod, 1);
  ASSERT_TRUE(cluster.pod(pod).in_flight());
  ASSERT_EQ(cluster.host_view(1).requested_millicpu, 700);

  cluster.stop_pod(pod);
  EXPECT_FALSE(cluster.pod(pod).in_flight());
  EXPECT_FALSE(cluster.pod(pod).running());
  EXPECT_EQ(cluster.pod(pod).host, -1);
  EXPECT_EQ(cluster.host_view(0).requested_millicpu, 0);
  EXPECT_EQ(cluster.host_view(1).requested_millicpu, 0);
  EXPECT_EQ(cluster.pods_on(0), 0);
  EXPECT_EQ(cluster.pods_on(1), 0);
  // The cancelled landing must never materialize.
  cluster.run_for(2 * sec);
  EXPECT_FALSE(cluster.pod(pod).running());
  EXPECT_EQ(cluster.pods_on(1), 0);
}

TEST(Cluster, StopFailedPodReleasesSlot) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  const int pod = cluster.create_pod(0, {"p", res(500, 512 * MiB)},
                                     cpu_hog_workload(1, 10 * sec));
  cluster.run_for(100 * msec);
  cluster.crash_pod(pod);
  ASSERT_TRUE(cluster.pod(pod).failed);
  cluster.stop_pod(pod);  // operator deletes the crashed pod
  EXPECT_FALSE(cluster.pod(pod).failed);
  EXPECT_EQ(cluster.pod(pod).host, -1);
  EXPECT_EQ(cluster.host_view(0).requested_millicpu, 0);
  EXPECT_EQ(cluster.pods_on(0), 0);
}

}  // namespace
}  // namespace arv::cluster
