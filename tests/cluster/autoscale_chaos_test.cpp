// Chaos with every control loop closed: the chaos fleet plus HPA, VPA, and
// cluster autoscaler, replayed under random fault plans. The conservation
// identities and the byte-identical-trace contract must survive the
// autoscalers mutating replica counts, cgroup limits, and the active fleet
// concurrently with crashes and recovery. (The all-pods-running convergence
// check from the base suite does not apply: a scale-down legitimately stops
// pods.)
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/cluster/autoscale.h"
#include "src/cluster/faults.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/recovery.h"
#include "src/cluster/router.h"
#include "src/harness/scenario.h"

namespace arv::cluster {
namespace {

using namespace arv::units;

int chaos_iterations() {
  const char* env = std::getenv("ARV_CHAOS_ITERS");
  if (env == nullptr) {
    return 2;
  }
  const int iters = std::atoi(env);
  return iters > 0 ? iters : 2;
}

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

container::HostConfig small_host() {
  container::HostConfig config;
  config.cpus = 4;
  config.ram = 8 * GiB;
  return config;
}

constexpr int kHosts = 4;  // 3 active + 1 parked for the CA to grow into
constexpr SimDuration kHorizon = 3 * sec;
constexpr SimDuration kRunFor = 10 * sec;

std::string run_autoscaled_chaos(std::uint64_t chaos_seed, bool verify,
                                 int threads = 1) {
  ClusterConfig config;
  config.seed = 42;
  config.enable_tracing = true;
  config.trace_interval = 10 * msec;
  config.threads = threads;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < kHosts; ++i) {
    fleet.add_host(small_host());
  }
  fleet.cluster().cordon_host(kHosts - 1, true);

  RouterConfig router;
  router.arrivals_per_sec = 900;
  router.max_retries = 2;
  router.breaker_threshold = 5;
  router.breaker_open = 300 * msec;
  fleet.enable_router(router);
  DetectorConfig detector;
  detector.period = 100 * msec;
  detector.miss_threshold = 2;
  RestartConfig restart;
  restart.period = 50 * msec;
  restart.backoff_base = 100 * msec;
  restart.backoff_cap = 2 * sec;
  fleet.enable_recovery(detector, restart);

  Cluster& cluster = fleet.cluster();
  server::WebConfig web;
  web.service_cpu = 6 * msec;
  web.max_queue = 100;
  PodSpec replica;
  replica.name = "web";
  replica.resources = res(1000, 1 * GiB);
  replica.cpu_mode = CpuMode::kBurstable;
  HpaConfig hpa;
  hpa.period = 250 * msec;
  hpa.min_replicas = 2;
  hpa.max_replicas = 6;
  hpa.request_cpu = 6 * msec;
  hpa.up_stabilization = 250 * msec;
  hpa.down_stabilization = 2 * sec;
  fleet.enable_hpa(replica, web, hpa);
  for (int h = 0; h < 2; ++h) {
    PodSpec seed = replica;
    seed.name = "web-seed-" + std::to_string(h);
    const int pod = cluster.create_pod(h, seed, web_replica(web));
    EXPECT_TRUE(fleet.router()->add_replica(pod));
    fleet.hpa()->adopt(pod);
  }
  VpaConfig vpa;
  vpa.period = 100 * msec;
  vpa.window_rounds = 10;
  vpa.recommend_every = 5;
  fleet.enable_vpa(vpa);
  CaConfig ca;
  ca.period = 500 * msec;
  ca.min_hosts = 1;
  ca.band_rounds = 2;
  ca.cooldown = 1 * sec;
  fleet.enable_cluster_autoscaler(ca);

  cluster.create_pod(0, {"hog", res(500, 512 * MiB)},
                     cpu_hog_workload(1, 60 * sec));
  cluster.create_pod(1, {"resident", res(500, 2 * GiB)},
                     mem_hog_workload(1 * GiB, 4 * GiB));

  Rng chaos_rng(chaos_seed);
  ChaosOptions options;
  options.horizon = kHorizon;
  fleet.enable_faults(
      FaultPlan::random(chaos_rng, options, kHosts, cluster.pod_count()));
  fleet.run(kRunFor);

  if (verify) {
    const RequestRouter& r = *fleet.router();
    // Request conservation holds with replicas appearing (scale-up) and
    // disappearing (scale-down teardown harvests into Pod::archived).
    EXPECT_EQ(r.generated(),
              r.routed() + r.dropped() + r.unroutable() + r.shed());
    const server::RequestStats agg = r.aggregate();
    EXPECT_EQ(agg.arrived, r.attempts());
    EXPECT_EQ(agg.dropped, r.attempts() - r.routed());
    std::uint64_t lost = 0;
    for (int id = 0; id < cluster.pod_count(); ++id) {
      lost += cluster.pod(id).lost;
    }
    EXPECT_EQ(r.routed(), agg.completed + r.queued() + lost);

    // The per-host ledger stays a pure recount of pod assignments, however
    // many landings the three loops and the fault plan interleaved.
    for (int h = 0; h < cluster.host_count(); ++h) {
      std::int64_t millicpu = 0;
      Bytes memory = 0;
      int count = 0;
      for (int id = 0; id < cluster.pod_count(); ++id) {
        const Pod& pod = cluster.pod(id);
        if (pod.host == h) {
          millicpu += pod.spec.resources.request_millicpu;
          memory += pod.spec.resources.request_memory;
          ++count;
        }
      }
      const HostView view = cluster.host_view(h);
      EXPECT_EQ(view.requested_millicpu, millicpu) << "ledger drift on h" << h;
      EXPECT_EQ(view.requested_memory, memory) << "ledger drift on h" << h;
      EXPECT_EQ(cluster.pods_on(h), count) << "pod count drift on h" << h;
    }

    // The plan drained and every crashed machine rebooted. (Pods may be
    // legitimately stopped by scale-down, so no all-running check — the HPA
    // floor stands in for it.)
    EXPECT_TRUE(fleet.injector()->done());
    for (int h = 0; h < cluster.host_count(); ++h) {
      EXPECT_TRUE(cluster.host_up(h)) << "h" << h << " never rebooted";
    }
    EXPECT_GE(fleet.hpa()->replicas(), hpa.min_replicas);
    EXPECT_GE(cluster.active_hosts(), ca.min_hosts);
  }
  return cluster.trace()->to_csv();
}

TEST(AutoscaleChaos, InvariantsHoldAndTracesAreByteIdentical) {
  const int iters = chaos_iterations();
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = 0xa5ca1e00u + static_cast<std::uint64_t>(i);
    SCOPED_TRACE("autoscale chaos seed " + std::to_string(seed));
    const std::string first =
        run_autoscaled_chaos(seed, /*verify=*/true, /*threads=*/4);
    const std::string second =
        run_autoscaled_chaos(seed, /*verify=*/false, /*threads=*/1);
    ASSERT_EQ(first, second)
        << "autoscaler + chaos must replay byte-identically, whatever the "
           "thread count";
    ASSERT_FALSE(first.empty());
  }
}

}  // namespace
}  // namespace arv::cluster
