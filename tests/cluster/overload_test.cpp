// Overload control plane: admission shedding by criticality, per-tenant
// token buckets, the fleet-wide retry budget, adaptive AIMD concurrency
// limits, brownout degradation (and its SLO partial-weight booking), the
// config-clamping regressions, the half-open-breaker single-probe pin, and
// the metastable flash-crowd scenario with byte-identical traces at every
// thread count.
#include "src/cluster/overload.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/pod_workloads.h"
#include "src/cluster/router.h"
#include "src/cluster/scheduler.h"
#include "src/harness/scenario.h"
#include "src/load/trace_spec.h"

namespace arv::cluster {
namespace {

using namespace arv::units;

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

container::HostConfig small_host(int cpus = 4, Bytes ram = 8 * GiB) {
  container::HostConfig config;
  config.cpus = cpus;
  config.ram = ram;
  return config;
}

// --- satellite regressions: config validation -------------------------------

// A RouterConfig full of out-of-range knobs used to ARV_ASSERT-abort in the
// router constructor; it now clamps to the nearest legal value, documented by
// RouterConfig::validated().
TEST(RouterConfigValidation, ClampsInvalidKnobs) {
  RouterConfig bad;
  bad.arrivals_per_sec = -10;
  bad.max_retries = -3;
  bad.breaker_threshold = 0;
  bad.breaker_open = -5 * msec;

  const RouterConfig v = bad.validated();
  EXPECT_EQ(v.arrivals_per_sec, 0);
  EXPECT_EQ(v.max_retries, 0);
  EXPECT_EQ(v.breaker_threshold, 1);
  EXPECT_EQ(v.breaker_open, RouterConfig{}.breaker_open);

  // The constructor applies the same clamp: constructing from the bad config
  // must not abort, and the router must run with the clamped knobs.
  Cluster cluster;
  cluster.add_host(small_host());
  RequestRouter router(cluster, bad);
  cluster.add_component(&router);
  EXPECT_EQ(router.config().arrivals_per_sec, 0);
  EXPECT_EQ(router.config().max_retries, 0);
  EXPECT_EQ(router.config().breaker_threshold, 1);
  EXPECT_EQ(router.config().breaker_open, RouterConfig{}.breaker_open);
  cluster.run_for(100 * msec);  // rate 0: generates nothing, crashes nothing
  EXPECT_EQ(router.generated(), 0u);
}

TEST(AdmissionConfigValidation, ClampsInvalidKnobs) {
  AdmissionConfig bad;
  bad.period = -1;
  bad.queue_ref_depth = 0;
  bad.p99_ref = 0;
  bad.shed_enter_permille = -5;
  bad.shed_step_permille = 0;
  bad.shed_exit_margin_permille = -1;
  bad.release_rounds = 0;
  bad.brownout_enter_permille = -7;
  bad.brownout_exit_permille = 900;  // above enter: clamped down to it
  bad.brownout_rounds = -2;
  bad.retry_budget_permille = -100;
  bad.retry_budget_cap = 0;
  bad.retry_budget_floor = -4;
  bad.initial_limit = 0;
  bad.min_limit = -2;
  bad.limit_increase = 0;
  bad.limit_decrease_permille = 1500;  // >= 1000 would never decrease
  bad.latency_tolerance_permille = 10;  // < 1000 would flag calm as congested
  bad.min_window_rounds = 0;

  const AdmissionConfig d;
  const AdmissionConfig v = bad.validated();
  EXPECT_EQ(v.period, d.period);
  EXPECT_EQ(v.queue_ref_depth, 1);
  EXPECT_EQ(v.p99_ref, d.p99_ref);
  EXPECT_EQ(v.shed_enter_permille, 1);
  EXPECT_EQ(v.shed_step_permille, 1);
  EXPECT_EQ(v.shed_exit_margin_permille, 0);
  EXPECT_EQ(v.release_rounds, 1);
  EXPECT_EQ(v.brownout_enter_permille, 0);
  EXPECT_EQ(v.brownout_exit_permille, 0);  // clamped into [0, enter]
  EXPECT_EQ(v.brownout_rounds, 1);
  EXPECT_EQ(v.retry_budget_permille, 0);
  EXPECT_EQ(v.retry_budget_cap, 1);
  EXPECT_EQ(v.retry_budget_floor, 0);
  EXPECT_EQ(v.min_limit, 1);
  EXPECT_EQ(v.initial_limit, 1);  // raised to min_limit
  EXPECT_EQ(v.limit_increase, 1);
  EXPECT_EQ(v.limit_decrease_permille, 999);
  EXPECT_EQ(v.latency_tolerance_permille, 1000);
  EXPECT_EQ(v.min_window_rounds, 1);

  // Constructor applies the clamp; the controller is usable as configured.
  Cluster cluster;
  cluster.add_host(small_host());
  AdmissionController admission(cluster, bad);
  EXPECT_EQ(admission.config().queue_ref_depth, 1);
  EXPECT_EQ(admission.config().retry_budget_cap, 1);
}

TEST(Criticality, DerivesFromSloObjective) {
  EXPECT_EQ(criticality_for_slo(1000), Criticality::kCritical);
  EXPECT_EQ(criticality_for_slo(999), Criticality::kCritical);
  EXPECT_EQ(criticality_for_slo(995), Criticality::kNormal);
  EXPECT_EQ(criticality_for_slo(990), Criticality::kNormal);
  EXPECT_EQ(criticality_for_slo(970), Criticality::kBatch);
  EXPECT_EQ(criticality_for_slo(950), Criticality::kBatch);
  EXPECT_EQ(criticality_for_slo(900), Criticality::kBestEffort);
  EXPECT_STREQ(criticality_name(Criticality::kCritical), "critical");
  EXPECT_STREQ(criticality_name(Criticality::kBestEffort), "best_effort");
}

// --- per-tenant token buckets ------------------------------------------------

TEST(AdmissionController, TokenBucketLimitsTenantRate) {
  Cluster cluster;
  cluster.add_host(small_host());
  ClusterScheduler scheduler(cluster);
  RouterConfig rc;
  rc.arrivals_per_sec = 0;  // driven by hand
  RequestRouter router(cluster, rc);
  cluster.add_component(&router);
  AdmissionController admission(cluster);
  cluster.add_component(&admission);
  admission.register_tenant("api", router);
  TenantRate rate;
  rate.tokens_per_sec = 100;
  rate.burst_tokens = 2;
  admission.set_rate_limit("api", rate);

  server::WebConfig web;
  web.service_cpu = 1 * msec;
  const int pod = scheduler.place("requests", {"web", res(1000, 1 * GiB)},
                                  web_replica(web));
  ASSERT_GE(pod, 0);
  ASSERT_TRUE(router.add_replica(pod));

  // Burst of 10 at t=0: exactly the 2 burst tokens are admitted.
  for (int i = 0; i < 10; ++i) {
    router.inject(cluster.now());
  }
  EXPECT_EQ(admission.tenant_admitted("api"), 2u);
  EXPECT_EQ(admission.tenant_rejected("api"), 8u);
  EXPECT_EQ(admission.rejected_rate(), 8u);
  EXPECT_EQ(admission.rejected_pressure(), 0u);

  // 100ms later the bucket refilled 10 tokens but holds at most the burst.
  cluster.run_for(100 * msec);
  for (int i = 0; i < 3; ++i) {
    router.inject(cluster.now());
  }
  EXPECT_EQ(admission.tenant_admitted("api"), 4u);
  EXPECT_EQ(admission.tenant_rejected("api"), 9u);

  // The front-door identity: every generated request is admitted or rejected,
  // and admitted requests flow into the old disposition partition.
  EXPECT_EQ(router.generated(), 13u);
  EXPECT_EQ(router.admitted(), 4u);
  EXPECT_EQ(router.rejected(), 9u);
  EXPECT_EQ(router.generated(), router.admitted() + router.rejected());
  EXPECT_EQ(router.admitted(), router.routed() + router.dropped() +
                                   router.unroutable() + router.shed());
}

// --- criticality shedding ----------------------------------------------------

// Pressure past the first band sheds best-effort while critical traffic still
// flows; release is slow (hysteresis) and full escalation sheds everything.
TEST(AdmissionController, ShedsLowestCriticalityFirstAndReleasesSlowly) {
  Cluster cluster;
  cluster.add_host(small_host());
  ClusterScheduler scheduler(cluster);
  RouterConfig rc;
  rc.arrivals_per_sec = 0;
  RequestRouter crit_router(cluster, rc);
  RequestRouter be_router(cluster, rc);
  cluster.add_component(&crit_router);
  cluster.add_component(&be_router);
  AdmissionConfig ac;
  ac.queue_ref_depth = 8;
  ac.p99_ref = 100 * sec;  // isolate the queue term of the pressure signal
  ac.adaptive_limits = false;
  AdmissionController admission(cluster, ac);
  cluster.add_component(&admission);
  admission.register_tenant("crit", crit_router, Criticality::kCritical);
  admission.register_tenant("be", be_router, Criticality::kBestEffort);

  server::WebConfig web;
  web.service_cpu = 200 * msec;
  web.max_queue = 100;
  const int crit_pod = scheduler.place(
      "requests", {"crit-web", res(1000, 1 * GiB)}, web_replica(web));
  const int be_pod = scheduler.place(
      "requests", {"be-web", res(1000, 1 * GiB)}, web_replica(web));
  ASSERT_GE(crit_pod, 0);
  ASSERT_GE(be_pod, 0);
  ASSERT_TRUE(crit_router.add_replica(crit_pod));
  ASSERT_TRUE(be_router.add_replica(be_pod));

  // 20 queued requests against 2 live replicas and a reference depth of 8:
  // pressure 20*1000/16 = 1250, inside band 1 only.
  for (int i = 0; i < 20; ++i) {
    be_router.inject(cluster.now());
  }
  cluster.run_for(150 * msec);
  EXPECT_EQ(admission.shed_level(), 1);
  EXPECT_TRUE(admission.shedding(Criticality::kBestEffort));
  EXPECT_FALSE(admission.shedding(Criticality::kBatch));
  EXPECT_FALSE(admission.shedding(Criticality::kCritical));
  be_router.inject(cluster.now());
  crit_router.inject(cluster.now());
  EXPECT_EQ(admission.tenant_rejected("be"), 1u);
  EXPECT_EQ(admission.tenant_rejected("crit"), 0u);
  EXPECT_EQ(admission.tenant_admitted("crit"), 1u);
  EXPECT_GT(admission.rejected_pressure(), 0u);

  // Drain: the level releases only after `release_rounds` calm rounds, then
  // best-effort traffic is admitted again.
  const std::uint64_t be_admitted_before = admission.tenant_admitted("be");
  cluster.run_for(4 * sec);
  EXPECT_EQ(admission.shed_level(), 0);
  be_router.inject(cluster.now());
  EXPECT_EQ(admission.tenant_admitted("be"), be_admitted_before + 1);

  // Fast attack: a flood that crosses every band escalates straight to
  // shedding everything, including critical.
  for (int i = 0; i < 100; ++i) {
    be_router.inject(cluster.now());
  }
  cluster.run_for(110 * msec);
  EXPECT_EQ(admission.shed_level(), kCriticalityClasses);
  EXPECT_TRUE(admission.shedding(Criticality::kCritical));
  const std::uint64_t crit_rejected_before =
      admission.tenant_rejected("crit");
  crit_router.inject(cluster.now());
  EXPECT_EQ(admission.tenant_rejected("crit"), crit_rejected_before + 1);
}

// --- fleet-wide retry budget -------------------------------------------------

TEST(AdmissionController, RetryBudgetArithmeticAndFloorRearm) {
  Cluster cluster;
  cluster.add_host(small_host(2, 4 * GiB));
  AdmissionConfig ac;
  ac.retry_budget_cap = 5;
  ac.retry_budget_permille = 100;  // 10 successes buy one retry
  ac.retry_budget_floor = 2;
  AdmissionController admission(cluster, ac);
  cluster.add_component(&admission);

  // The budget starts at its cap; spending it dry denies further retries.
  EXPECT_EQ(admission.retry_tokens_milli(), 5000);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(admission.allow_retry()) << i;
  }
  EXPECT_FALSE(admission.allow_retry());
  EXPECT_EQ(admission.retry_tokens_milli(), 0);
  EXPECT_EQ(admission.retries_allowed(), 5u);
  EXPECT_EQ(admission.retries_denied(), 1u);

  // Successes refill fractionally: 9 are not enough for a whole token, the
  // 10th is.
  for (int i = 0; i < 9; ++i) {
    admission.on_success();
  }
  EXPECT_FALSE(admission.allow_retry());
  admission.on_success();
  EXPECT_TRUE(admission.allow_retry());

  // The per-round floor re-arms a trickle even with zero successes.
  cluster.run_for(150 * msec);
  EXPECT_EQ(admission.retry_tokens_milli(), 2000);

  // And the cap bounds the stored burst no matter how many successes land.
  for (int i = 0; i < 1000; ++i) {
    admission.on_success();
  }
  EXPECT_EQ(admission.retry_tokens_milli(), 5000);
}

// With the budget dry, a refused request is dropped instead of multiplying
// into a retry storm across the fleet.
TEST(AdmissionController, RetryBudgetBoundsRetryAmplification) {
  Cluster cluster;
  cluster.add_host(small_host());
  ClusterScheduler scheduler(cluster);
  RouterConfig rc;
  rc.arrivals_per_sec = 0;
  rc.max_retries = 3;
  rc.breaker_threshold = 1000000;  // isolate the retry path from breakers
  RequestRouter router(cluster, rc);
  cluster.add_component(&router);
  AdmissionConfig ac;
  ac.retry_budget_cap = 2;
  ac.retry_budget_permille = 0;  // no refill from successes
  ac.retry_budget_floor = 0;     // no re-arm: the 2 initial tokens are it
  AdmissionController admission(cluster, ac);
  cluster.add_component(&admission);
  admission.register_tenant("api", router);

  server::WebConfig web;
  web.service_cpu = 1 * sec;
  web.max_queue = 1;
  const int a = scheduler.place("requests", {"web-a", res(1000, 1 * GiB)},
                                web_replica(web));
  const int b = scheduler.place("requests", {"web-b", res(1000, 1 * GiB)},
                                web_replica(web));
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  ASSERT_TRUE(router.add_replica(a));
  ASSERT_TRUE(router.add_replica(b));

  // Fill both depth-1 queues, then offer three doomed requests. Each wants
  // one failover retry (two replicas); the budget covers exactly two.
  router.inject(cluster.now());
  router.inject(cluster.now());
  EXPECT_EQ(router.routed(), 2u);
  for (int i = 0; i < 3; ++i) {
    router.inject(cluster.now());
  }
  EXPECT_EQ(router.dropped(), 3u);
  EXPECT_EQ(router.retries(), 2u);
  EXPECT_EQ(admission.retries_allowed(), 2u);
  EXPECT_EQ(admission.retries_denied(), 1u);
  EXPECT_EQ(admission.retry_tokens_milli(), 0);
  // Attempt accounting: 1 each for the two routed, 2 for the two retried
  // drops, 1 for the budget-denied drop.
  EXPECT_EQ(router.attempts(), 7u);
  EXPECT_EQ(router.generated(), router.admitted() + router.rejected());
  EXPECT_EQ(router.admitted(), router.routed() + router.dropped() +
                                   router.unroutable() + router.shed());
}

// --- half-open breaker probe accounting (satellite audit) --------------------

// Pin: a half-open breaker admits exactly ONE probe per batch. The probe's
// refusal re-opens the breaker at the batch's timestamp, so every remaining
// same-tick request is shed at the front door instead of hammering the
// still-full replica with a probe each.
TEST(RequestRouterBreaker, HalfOpenAdmitsSingleProbePerBatch) {
  Cluster cluster;
  cluster.add_host(small_host());
  ClusterScheduler scheduler(cluster);
  RouterConfig rc;
  rc.arrivals_per_sec = 0;
  rc.max_retries = 0;
  rc.breaker_threshold = 1;
  rc.breaker_open = 100 * msec;
  RequestRouter router(cluster, rc);
  cluster.add_component(&router);
  server::WebConfig web;
  web.service_cpu = 10 * sec;  // the queue stays full for the whole test
  web.max_queue = 1;
  const int pod = scheduler.place("requests", {"web", res(1000, 1 * GiB)},
                                  web_replica(web));
  ASSERT_GE(pod, 0);
  ASSERT_TRUE(router.add_replica(pod));

  router.inject(cluster.now());  // fills the depth-1 queue
  router.inject(cluster.now());  // refused: breaker trips open
  ASSERT_EQ(router.breaker_trips(), 1u);
  ASSERT_EQ(router.breaker(pod), BreakerState::kOpen);

  // Past breaker_open the breaker is due for half-open. A batch of 8 arrives
  // in one tick: the first promotes to half-open and probes (refused, since
  // the 10s request still owns the queue), which re-opens the breaker; the
  // other 7 must be shed without a probe each.
  cluster.run_for(150 * msec);
  const std::uint64_t attempts_before = router.attempts();
  const std::uint64_t dropped_before = router.dropped();
  const std::uint64_t shed_before = router.shed();
  const std::vector<CpuTime> costs(8, 0);
  router.inject_batch(cluster.now(), costs.data(), costs.size());
  EXPECT_EQ(router.attempts(), attempts_before + 1)
      << "a half-open breaker must admit exactly one probe per batch";
  EXPECT_EQ(router.dropped(), dropped_before + 1);
  EXPECT_EQ(router.shed(), shed_before + 7);
  EXPECT_EQ(router.breaker(pod), BreakerState::kOpen);
}

// --- adaptive concurrency limits ---------------------------------------------

TEST(AdmissionController, AdaptiveLimitCapsQueueAndRecovers) {
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  RouterConfig rc;
  rc.arrivals_per_sec = 1200;  // far beyond one replica's capacity
  rc.max_retries = 0;
  rc.breaker_threshold = 1000000;  // isolate AIMD from breaker shedding
  fleet.enable_router(rc);
  AdmissionConfig ac;
  ac.shed_enter_permille = 1000000;     // no front-door shedding
  ac.brownout_enter_permille = 1000000;  // no brownout: pure AIMD
  fleet.enable_admission(ac);
  server::WebConfig web;
  web.service_cpu = 20 * msec;
  web.max_queue = 10000;  // without AIMD this absorbs minutes of doomed work
  const int pod = fleet.place_web_pod("effective", res(2000, 2 * GiB), web);
  ASSERT_GE(pod, 0);

  fleet.run(3 * sec);
  server::WorkerPoolServer* sink =
      fleet.cluster().pod(pod).workload->request_sink();
  ASSERT_NE(sink, nullptr);
  // The multiplicative decrease walked the limit far below its initial 64,
  // turning the 10k queue into fast local refusals.
  EXPECT_LE(static_cast<int>(sink->queue_limit()), 32);
  EXPECT_GE(static_cast<int>(sink->queue_limit()),
            fleet.admission()->config().min_limit);
  EXPECT_LE(sink->queue_depth(), sink->queue_limit());
  EXPECT_GT(fleet.router()->dropped(), 0u)
      << "the bounded queue must refuse the excess";
  EXPECT_EQ(fleet.admission()->queue_limit_total(),
            static_cast<std::int64_t>(sink->queue_limit()));

  // Load returns to sane levels: additive increase recovers the headroom.
  fleet.router()->set_rate(20);
  fleet.run(5 * sec);
  EXPECT_GT(static_cast<int>(sink->queue_limit()), 64);
}

// --- brownout + SLO partial weight -------------------------------------------

load::DriverConfig one_pass() {
  load::DriverConfig config;
  config.repeat = false;  // go quiet after the trace: counters settle
  return config;
}

load::TraceSpec gentle_spec() {
  load::TraceSpec spec;
  spec.duration = 2 * sec;
  spec.slot = 100 * msec;
  spec.mean_rps = 200;
  spec.diurnal_amplitude = 0.3;
  spec.seed = 11;
  spec.tenants.push_back({"api", 1.0, 1 * msec, 8 * msec, 1.3});
  return spec;
}

TEST(AdmissionController, BrownoutDegradesAndSloBooksPartialWeight) {
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  AdmissionConfig ac;
  ac.brownout_enter_permille = 0;  // test hook: brownout always armed
  ac.brownout_rounds = 1;
  fleet.enable_admission(ac);
  fleet.add_tenant("api");
  ASSERT_GE(fleet.place_tenant_web_pod("api", res(1000, 1 * GiB)), 0);
  fleet.use_trace(load::compile(gentle_spec()), one_pass());
  load::SloTarget target;
  target.availability_permille = 999;
  target.p99_target = 500 * msec;
  target.degraded_weight_permille = 500;
  fleet.declare_slo("api", target);
  fleet.run(4 * sec);

  const RequestRouter& r = *fleet.tenant_router("api");
  ASSERT_GT(r.generated(), 0u);
  EXPECT_TRUE(fleet.admission()->brownout());
  EXPECT_GT(fleet.admission()->brownout_entries(), 0u);
  // Every request routed under brownout was served degraded; the sink-side
  // count (surviving harvest) matches the router's disposition exactly.
  EXPECT_GT(r.degraded(), 0u);
  EXPECT_LE(r.degraded(), r.routed());
  EXPECT_EQ(r.aggregate().degraded, r.degraded());
  // declare_slo derived the criticality class from the 99.9% objective.
  EXPECT_EQ(fleet.admission()->tenant_criticality("api"),
            Criticality::kCritical);

  // The accountant books each degraded reply at half a failure.
  EXPECT_EQ(fleet.slo()->degraded("api"), r.degraded());
  const std::int64_t generated = static_cast<std::int64_t>(r.generated());
  const std::int64_t bad_milli =
      static_cast<std::int64_t>(r.generated() - r.routed()) * 1000 +
      static_cast<std::int64_t>(r.degraded()) * 500;
  EXPECT_EQ(fleet.slo()->availability_permille("api"),
            (generated * 1000 - bad_milli) / generated);
  EXPECT_LT(fleet.slo()->availability_permille("api"), 1000);
  EXPECT_LT(fleet.slo()->budget_remaining_permille("api"), 1000);
  EXPECT_FALSE(fleet.slo()->attaining("api"));
}

TEST(AdmissionController, ZeroDegradedWeightKeepsBrownoutFree) {
  // Same brownout run with weight 0: degraded replies are as good as full
  // ones, so the healthy tenant keeps its whole budget.
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  AdmissionConfig ac;
  ac.brownout_enter_permille = 0;
  ac.brownout_rounds = 1;
  fleet.enable_admission(ac);
  fleet.add_tenant("api");
  ASSERT_GE(fleet.place_tenant_web_pod("api", res(1000, 1 * GiB)), 0);
  fleet.use_trace(load::compile(gentle_spec()), one_pass());
  load::SloTarget target;
  target.availability_permille = 999;
  target.p99_target = 500 * msec;
  target.degraded_weight_permille = 0;
  fleet.declare_slo("api", target);
  fleet.run(4 * sec);

  const RequestRouter& r = *fleet.tenant_router("api");
  ASSERT_GT(r.degraded(), 0u);
  ASSERT_EQ(r.routed(), r.generated());  // gentle load: nothing refused
  EXPECT_EQ(fleet.slo()->availability_permille("api"), 1000);
  EXPECT_EQ(fleet.slo()->budget_remaining_permille("api"), 1000);
  EXPECT_TRUE(fleet.slo()->attaining("api"));
}

// --- observability -----------------------------------------------------------

TEST(AdmissionController, TraceSeriesAndControlFilesExposeState) {
  ClusterConfig cc;
  cc.enable_tracing = true;
  cc.trace_interval = 100 * msec;
  harness::FleetScenario fleet(cc);
  fleet.add_host(small_host());
  fleet.enable_admission();
  fleet.add_tenant("api");
  ASSERT_GE(fleet.place_tenant_web_pod("api", res(1000, 1 * GiB)), 0);
  fleet.use_trace(load::compile(gentle_spec()), one_pass());
  fleet.declare_slo("api");
  // Injection ends at 2s; the last admission round snapshots the settled
  // counters, so file contents equal the live telemetry.
  fleet.run(2 * sec + 1 * msec);

  const obs::TraceRecorder& trace = *fleet.cluster().trace();
  for (const std::string series :
       {"admission.pressure_permille", "admission.shed_level",
        "admission.admitted", "admission.rejected", "overload.brownout",
        "overload.retry_tokens_milli", "overload.retries_denied",
        "overload.queue_limit_total", "overload.windowed_p99_us"}) {
    EXPECT_TRUE(trace.find(series).has_value()) << series;
  }

  const vfs::PseudoFs& fs = fleet.cluster().host(0).sysfs().host_fs();
  const auto read_int = [&](const std::string& path) {
    const auto contents = fs.read(path);
    EXPECT_TRUE(contents.has_value()) << path;
    return contents ? std::stoll(*contents) : -1;
  };
  const AdmissionController& adm = *fleet.admission();
  EXPECT_EQ(read_int("/sys/arv/admission/admitted"),
            static_cast<std::int64_t>(adm.admitted()));
  EXPECT_EQ(read_int("/sys/arv/admission/rejected"),
            static_cast<std::int64_t>(adm.rejected()));
  EXPECT_EQ(read_int("/sys/arv/admission/pressure_permille"),
            adm.pressure_permille());
  EXPECT_EQ(read_int("/sys/arv/admission/shed_level"), adm.shed_level());
  EXPECT_EQ(read_int("/sys/arv/admission/retry_tokens_milli"),
            adm.retry_tokens_milli());
  EXPECT_EQ(read_int("/sys/arv/admission/queue_limit_total"),
            adm.queue_limit_total());
  const auto criticality = fs.read("/sys/arv/admission/api/criticality");
  ASSERT_TRUE(criticality.has_value());
  EXPECT_EQ(*criticality, "critical\n");
  EXPECT_EQ(read_int("/sys/arv/admission/api/admitted"),
            static_cast<std::int64_t>(adm.tenant_admitted("api")));
  EXPECT_EQ(read_int("/sys/arv/admission/api/rejected"),
            static_cast<std::int64_t>(adm.tenant_rejected("api")));
}

// --- the metastable-failure scenario -----------------------------------------

struct GuardedResult {
  std::string trace;
  std::uint64_t generated = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t routed = 0;
  std::uint64_t degraded = 0;
  std::int64_t crit_availability = 0;
  std::int64_t be_availability = 0;
};

/// Flash crowd (3x offered load) colliding with a host crash at the peak —
/// the classic metastable trigger — with every overload guard enabled. The
/// guards must shed strictly by criticality, keep every conservation
/// identity, and stay byte-identical at any thread count.
GuardedResult run_metastable(int threads) {
  ClusterConfig config;
  config.seed = 42;
  config.enable_tracing = true;
  config.trace_interval = 50 * msec;
  config.threads = threads;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < 4; ++i) {
    fleet.add_host(small_host());
  }
  AdmissionConfig ac;
  ac.queue_ref_depth = 16;
  fleet.enable_admission(ac);
  RouterConfig rc;
  rc.max_retries = 2;
  rc.breaker_threshold = 5;
  rc.breaker_open = 300 * msec;
  fleet.add_tenant("critical", rc);
  fleet.add_tenant("batch", rc);
  fleet.add_tenant("besteffort", rc);
  server::WebConfig web;
  web.service_cpu = 6 * msec;
  // max_queue caps the AIMD limit, which caps the queue-pressure term at
  // 4*32*1000/(4*16) = 2000 permille — band 3. Critical traffic (band 4,
  // 2500) can then only be shed by a sustained windowed-p99 blowup, which
  // the guards exist to prevent: the test asserts they do.
  web.max_queue = 32;
  EXPECT_GE(fleet.place_tenant_web_pod("critical", res(1000, 1 * GiB), web),
            0);
  EXPECT_GE(fleet.place_tenant_web_pod("critical", res(1000, 1 * GiB), web),
            0);
  EXPECT_GE(fleet.place_tenant_web_pod("batch", res(1000, 1 * GiB), web), 0);
  EXPECT_GE(fleet.place_tenant_web_pod("besteffort", res(1000, 1 * GiB), web),
            0);

  load::TraceSpec spec;
  spec.duration = 3 * sec;
  spec.slot = 100 * msec;
  spec.mean_rps = 900;
  spec.diurnal_amplitude = 0.2;
  load::FlashCrowd crowd;
  crowd.start = 1 * sec;
  crowd.ramp = 200 * msec;
  crowd.hold = 600 * msec;
  crowd.decay = 300 * msec;
  crowd.magnitude = 4.0;
  spec.flash_crowds.push_back(crowd);
  spec.seed = 77;
  spec.tenants.push_back({"critical", 2.0, 1 * msec, 10 * msec, 1.3});
  spec.tenants.push_back({"batch", 1.0, 2 * msec, 16 * msec, 1.2});
  spec.tenants.push_back({"besteffort", 1.0, 1 * msec, 8 * msec, 1.3});
  fleet.use_trace(load::compile(spec), one_pass());

  load::SloTarget crit_slo;
  crit_slo.availability_permille = 999;  // -> Criticality::kCritical
  crit_slo.p99_target = 400 * msec;
  fleet.declare_slo("critical", crit_slo);
  load::SloTarget batch_slo;
  batch_slo.availability_permille = 955;  // -> Criticality::kBatch
  batch_slo.p99_target = 800 * msec;
  fleet.declare_slo("batch", batch_slo);
  load::SloTarget be_slo;
  be_slo.availability_permille = 900;  // -> Criticality::kBestEffort
  be_slo.p99_target = 800 * msec;
  fleet.declare_slo("besteffort", be_slo);

  DetectorConfig detector;
  detector.period = 100 * msec;
  detector.miss_threshold = 2;
  fleet.enable_recovery(detector);

  // The metastable trigger: a host dies right at the crowd's peak.
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kHostCrash;
  crash.at = 1300 * msec;
  crash.host = 1;
  crash.duration = 800 * msec;  // reboots; recovery restores its pods
  plan.add(crash);
  fleet.enable_faults(plan);

  fleet.run(6 * sec);

  const AdmissionController& adm = *fleet.admission();
  GuardedResult result;
  result.trace = fleet.cluster().trace()->to_csv();
  std::uint64_t tenant_admitted_sum = 0;
  std::uint64_t tenant_rejected_sum = 0;
  for (const std::string tenant : {"critical", "batch", "besteffort"}) {
    SCOPED_TRACE(tenant);
    const RequestRouter& r = *fleet.tenant_router(tenant);
    // The extended conservation identities, per tenant, under full chaos.
    EXPECT_EQ(r.generated(), r.admitted() + r.rejected());
    EXPECT_EQ(r.admitted(), r.routed() + r.dropped() + r.unroutable() +
                                r.shed());
    EXPECT_EQ(r.aggregate().degraded, r.degraded());
    EXPECT_LE(r.degraded(), r.routed());
    result.generated += r.generated();
    result.admitted += r.admitted();
    result.rejected += r.rejected();
    result.routed += r.routed();
    result.degraded += r.degraded();
    tenant_admitted_sum += adm.tenant_admitted(tenant);
    tenant_rejected_sum += adm.tenant_rejected(tenant);
  }
  EXPECT_EQ(adm.admitted(), tenant_admitted_sum);
  EXPECT_EQ(adm.rejected(), tenant_rejected_sum);

  // The guards engaged, and shed strictly by class: best-effort paid, the
  // critical tenant's reject *rate* stayed strictly below it (and tiny).
  EXPECT_GT(adm.rejected_pressure(), 0u);
  const std::uint64_t gen_crit = fleet.tenant_router("critical")->generated();
  const std::uint64_t gen_be = fleet.tenant_router("besteffort")->generated();
  const std::uint64_t rej_crit = adm.tenant_rejected("critical");
  const std::uint64_t rej_be = adm.tenant_rejected("besteffort");
  EXPECT_GT(rej_be, 0u) << "pressure never shed best-effort traffic";
  EXPECT_LT(rej_crit * gen_be, rej_be * gen_crit)
      << "critical must shed at a strictly lower rate than best-effort";
  EXPECT_LE(rej_crit * 20, gen_crit)
      << "critical traffic shed more than 5% at the front door";

  // The crash was real and recovered from.
  EXPECT_EQ(fleet.cluster().host_crashes(), 1u);
  EXPECT_GT(fleet.cluster().restarts() + fleet.cluster().failovers(), 0u);
  EXPECT_TRUE(fleet.injector()->done());

  result.crit_availability = fleet.slo()->availability_permille("critical");
  result.be_availability = fleet.slo()->availability_permille("besteffort");
  // The flash crowd offers 4x capacity for over a second while a quarter of
  // the fleet is down: some damage is physics. The guards' job is to aim
  // that damage away from the critical tenant, which the relative
  // assertions above pin; the absolute floor only rules out a collapse.
  EXPECT_GE(result.crit_availability, 600);
  EXPECT_GT(result.crit_availability, result.be_availability)
      << "criticality ordering must show up in the attained availability";
  return result;
}

TEST(Overload, MetastableFlashCrowdIsContainedByGuards) {
  const GuardedResult reference = run_metastable(1);
  ASSERT_FALSE(reference.trace.empty());
  ASSERT_GT(reference.generated, 0u);
  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const GuardedResult other = run_metastable(threads);
    EXPECT_EQ(reference.trace, other.trace);
    EXPECT_EQ(reference.generated, other.generated);
    EXPECT_EQ(reference.admitted, other.admitted);
    EXPECT_EQ(reference.rejected, other.rejected);
    EXPECT_EQ(reference.routed, other.routed);
    EXPECT_EQ(reference.degraded, other.degraded);
    EXPECT_EQ(reference.crit_availability, other.crit_availability);
    EXPECT_EQ(reference.be_availability, other.be_availability);
  }
}

}  // namespace
}  // namespace arv::cluster
