// Rebalancer: a skewed fleet triggers at least one corrective migration, the
// hysteresis keeps the count bounded, and a balanced fleet is left alone.
#include "src/cluster/rebalancer.h"

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/pod_workloads.h"

namespace arv::cluster {
namespace {

using namespace arv::units;

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

container::HostConfig small_host(int cpus, Bytes ram) {
  container::HostConfig config;
  config.cpus = cpus;
  config.ram = ram;
  return config;
}

RebalanceConfig fast_rebalance() {
  RebalanceConfig config;
  config.period = 100 * msec;
  config.saturated_rounds = 3;
  config.cooldown = 1 * sec;
  config.min_residency = 500 * msec;
  return config;
}

TEST(Rebalancer, MigratesOffASaturatedHostBoundedly) {
  // Host 0: two hog pods that together oversubscribe its 2 CPUs forever.
  // Host 1: idle. The rebalancer must move exactly one of them across —
  // at least one migration, and no thrash (both hosts then have work).
  Cluster cluster;
  cluster.add_host(small_host(2, 8 * GiB));
  cluster.add_host(small_host(2, 8 * GiB));
  PodSpec a;
  a.resources = res(500, 512 * MiB);
  cluster.create_pod(0, a, cpu_hog_workload(2, 10000 * sec));
  PodSpec b;
  b.resources = res(500, 512 * MiB);
  cluster.create_pod(0, b, cpu_hog_workload(2, 10000 * sec));

  Rebalancer rebalancer(cluster, fast_rebalance());
  cluster.add_component(&rebalancer);
  cluster.run_for(10 * sec);

  EXPECT_GE(rebalancer.migrations(), 1u);
  EXPECT_LE(rebalancer.migrations(), 3u) << "rebalancer is oscillating";
  EXPECT_EQ(cluster.pods_on(0), 1);
  EXPECT_EQ(cluster.pods_on(1), 1);
}

TEST(Rebalancer, LeavesABalancedFleetAlone) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  // One light pod per host: plenty of slack everywhere.
  PodSpec a;
  a.resources = res(500, 512 * MiB);
  cluster.create_pod(0, a, cpu_hog_workload(1, 10000 * sec));
  PodSpec b;
  b.resources = res(500, 512 * MiB);
  cluster.create_pod(1, b, cpu_hog_workload(1, 10000 * sec));

  Rebalancer rebalancer(cluster, fast_rebalance());
  cluster.add_component(&rebalancer);
  cluster.run_for(10 * sec);
  EXPECT_EQ(rebalancer.migrations(), 0u);
}

TEST(Rebalancer, HoldsWhenNoTargetHasHeadroom) {
  // Both hosts saturated: migrating would only shuffle pain around, so the
  // rebalancer must do nothing.
  Cluster cluster;
  cluster.add_host(small_host(2, 8 * GiB));
  cluster.add_host(small_host(2, 8 * GiB));
  for (int host = 0; host < 2; ++host) {
    PodSpec spec;
    spec.resources = res(500, 512 * MiB);
    cluster.create_pod(host, spec, cpu_hog_workload(4, 10000 * sec));
  }
  Rebalancer rebalancer(cluster, fast_rebalance());
  cluster.add_component(&rebalancer);
  cluster.run_for(5 * sec);
  EXPECT_EQ(rebalancer.migrations(), 0u);
  EXPECT_GE(rebalancer.saturated_rounds(0), 3);  // it *did* see the pressure
}

TEST(Rebalancer, RespectsMinResidency) {
  // Saturated host, idle target, but a residency floor longer than the run:
  // the victim is too young to move.
  Cluster cluster;
  cluster.add_host(small_host(2, 8 * GiB));
  cluster.add_host(small_host(2, 8 * GiB));
  PodSpec spec;
  spec.resources = res(500, 512 * MiB);
  cluster.create_pod(0, spec, cpu_hog_workload(4, 10000 * sec));
  RebalanceConfig config = fast_rebalance();
  config.min_residency = 3600 * sec;
  Rebalancer rebalancer(cluster, config);
  cluster.add_component(&rebalancer);
  cluster.run_for(5 * sec);
  EXPECT_EQ(rebalancer.migrations(), 0u);
}

}  // namespace
}  // namespace arv::cluster
