// Placement strategies: registry plumbing, requests-based packing,
// QoS-ordered batch placement, and the effective strategy's preference for
// observed headroom over declared bookkeeping.
#include "src/cluster/placement.h"

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/fleet_view.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/scheduler.h"

namespace arv::cluster {
namespace {

using namespace arv::units;

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

PodSpec spec(std::int64_t millicpu, Bytes memory) {
  PodSpec s;
  s.resources = res(millicpu, memory);
  return s;
}

container::HostConfig small_host(int cpus, Bytes ram) {
  container::HostConfig config;
  config.cpus = cpus;
  config.ram = ram;
  return config;
}

TEST(PlacementRegistry, BuiltinsRegistered) {
  auto& registry = PlacementRegistry::instance();
  EXPECT_TRUE(registry.has("requests"));
  EXPECT_TRUE(registry.has("effective"));
  EXPECT_FALSE(registry.has("nope"));
  EXPECT_EQ(registry.make("nope"), nullptr);
  auto requests = registry.make("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->name(), "requests");
}

TEST(PlacementRegistry, CustomStrategyIsSelectable) {
  // A one-off strategy that always picks host 0, registered by name the way
  // PR 3's adaptation policies are.
  class FirstHost final : public PlacementStrategy {
   public:
    std::string name() const override { return "first-host"; }
    int select(const PodSpec&, const FleetView& fleet, Rng&) const override {
      return fleet.hosts.empty() ? -1 : 0;
    }
  };
  PlacementRegistry::instance().register_strategy(
      "first-host", [] { return std::make_unique<FirstHost>(); });
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  ClusterScheduler scheduler(cluster);
  const int pod = scheduler.place("first-host", spec(100, 128 * MiB));
  ASSERT_GE(pod, 0);
  EXPECT_EQ(cluster.pod(pod).host, 0);
}

TEST(PickBest, SkipsInfeasibleAndIsDeterministic) {
  Rng rng_a(7);
  Rng rng_b(7);
  const std::vector<std::int64_t> scores = {-1, 50, 900, 900, -1};
  const int a = pick_best(scores, rng_a);
  const int b = pick_best(scores, rng_b);
  EXPECT_EQ(a, b);           // same seed, same tie-break
  EXPECT_TRUE(a == 2 || a == 3);  // one of the tied maxima
  Rng rng_c(1);
  EXPECT_EQ(pick_best({-1, -1}, rng_c), -1);
  EXPECT_EQ(pick_best({}, rng_c), -1);
}

TEST(RequestsStrategy, PacksOntoTheFullerHost) {
  Cluster cluster;
  cluster.add_host(small_host(8, 16 * GiB));
  cluster.add_host(small_host(8, 16 * GiB));
  ClusterScheduler scheduler(cluster);
  // Seed host 0 with load so MostAllocated scoring prefers it.
  const int first = scheduler.place("requests", spec(2000, 2 * GiB));
  ASSERT_GE(first, 0);
  const int seeded_host = cluster.pod(first).host;
  const int second = scheduler.place("requests", spec(1000, 1 * GiB));
  ASSERT_GE(second, 0);
  EXPECT_EQ(cluster.pod(second).host, seeded_host);
}

TEST(RequestsStrategy, RefusesOverCapacityAndCountsUnschedulable) {
  Cluster cluster;
  cluster.add_host(small_host(2, 4 * GiB));
  ClusterScheduler scheduler(cluster);
  ASSERT_GE(scheduler.place("requests", spec(1500, 1 * GiB)), 0);
  // 1500m + 1000m > 2000m capacity: nothing fits.
  EXPECT_EQ(scheduler.place("requests", spec(1000, 1 * GiB)), -1);
  EXPECT_EQ(scheduler.unschedulable(), 1u);
  // Memory axis is enforced independently of CPU.
  EXPECT_EQ(scheduler.place("requests", spec(100, 8 * GiB)), -1);
  EXPECT_EQ(scheduler.unschedulable(), 2u);
}

TEST(RequestsStrategy, BatchPlacesBestEffortLast) {
  // One host with room for one 800m pod. A BestEffort-adjacent burstable pod
  // is submitted FIRST, a Guaranteed pod second; QoS-ordered placement must
  // give the Guaranteed pod the slot anyway.
  Cluster cluster;
  cluster.add_host(small_host(1, 4 * GiB));
  ClusterScheduler scheduler(cluster);

  PodSpec burstable = spec(800, 512 * MiB);  // requests only => Burstable
  PodSpec guaranteed;
  guaranteed.resources.request_millicpu = 800;
  guaranteed.resources.limit_millicpu = 800;
  guaranteed.resources.request_memory = 512 * MiB;
  guaranteed.resources.limit_memory = 512 * MiB;

  const auto placed =
      scheduler.place_all("requests", {burstable, guaranteed});
  ASSERT_EQ(placed.size(), 2u);
  EXPECT_EQ(placed[0], -1) << "burstable pod should lose the only slot";
  ASSERT_GE(placed[1], 0) << "guaranteed pod must place first";
  EXPECT_EQ(cluster.pod(placed[1]).host, 0);
}

TEST(RequestsStrategy, QueueRanksFollowQosClasses) {
  auto strategy = PlacementRegistry::instance().make("requests");
  ASSERT_NE(strategy, nullptr);
  PodSpec guaranteed;
  guaranteed.resources.limit_millicpu = 1000;
  guaranteed.resources.limit_memory = 1 * GiB;
  PodSpec burstable = spec(500, 1 * GiB);
  PodSpec best_effort;  // no requests, no limits
  EXPECT_LT(strategy->queue_rank(guaranteed), strategy->queue_rank(burstable));
  EXPECT_LT(strategy->queue_rank(burstable), strategy->queue_rank(best_effort));
}

TEST(EffectiveStrategy, PrefersObservedIdleOverDeclaredRoom) {
  // Host 0 carries a pod with a *tiny* declared request but a hog that
  // saturates every CPU; host 1 is genuinely idle. The declared ledger says
  // host 0 is nearly empty, the observed slack says it is full.
  Cluster cluster;
  const int busy = cluster.add_host(small_host(4, 8 * GiB));
  const int idle = cluster.add_host(small_host(4, 8 * GiB));
  ClusterScheduler scheduler(cluster);
  ASSERT_GE(scheduler.place("requests", spec(100, 128 * MiB),
                            cpu_hog_workload(8, 10000 * sec)),
            0);
  ASSERT_EQ(cluster.pod(0).host, busy);  // MostAllocated picks the seeded host
  cluster.run_for(500 * msec);  // let the observation window see the hog

  const int placed = scheduler.place("effective", spec(100, 128 * MiB));
  ASSERT_GE(placed, 0);
  EXPECT_EQ(cluster.pod(placed).host, idle);
}

TEST(EffectiveStrategy, UnschedulableWhenEveryHostIsSaturated) {
  Cluster cluster;
  cluster.add_host(small_host(2, 4 * GiB));
  ClusterScheduler scheduler(cluster);
  ASSERT_GE(scheduler.place("requests", spec(100, 128 * MiB),
                            cpu_hog_workload(4, 10000 * sec)),
            0);
  cluster.run_for(500 * msec);
  EXPECT_EQ(scheduler.place("effective", spec(100, 128 * MiB)), -1);
  EXPECT_EQ(scheduler.unschedulable(), 1u);
}

TEST(EffectiveStrategy, AcceptsOnOvercommittedButIdleHost) {
  // The converse of the semantic gap: requests sum beyond capacity, actual
  // usage zero. "requests" refuses, "effective" keeps placing.
  Cluster cluster;
  cluster.add_host(small_host(2, 4 * GiB));
  ClusterScheduler scheduler(cluster);
  ASSERT_GE(scheduler.place("requests", spec(1800, 1 * GiB)), 0);  // no workload
  cluster.run_for(500 * msec);
  EXPECT_EQ(scheduler.place("requests", spec(1000, 1 * GiB)), -1);
  EXPECT_GE(scheduler.place("effective", spec(1000, 1 * GiB)), 0);
}

// --- frac_permille at storage-class magnitudes -------------------------------
// Regression: the old implementation computed part * 1000 / whole in int64,
// which wraps once part exceeds ~9.2 PB (int64_max / 1000) — exactly the
// byte scale of free_memory / capacity_memory on large-storage hosts, where
// the garbage ratio silently corrupted every memory-headroom score.

constexpr Bytes TiB = 1024 * GiB;
constexpr Bytes PiB = 1024 * TiB;
constexpr Bytes EiB = 1024 * PiB;

TEST(FracPermille, SurvivesPetabyteMagnitudes) {
  // part * 1000 overflows int64 for every case below; the ratios must still
  // be exact.
  EXPECT_EQ(frac_permille(512 * PiB, 1024 * PiB), 500);
  EXPECT_EQ(frac_permille(1 * EiB, 2 * EiB), 500);
  EXPECT_EQ(frac_permille(3 * EiB, 4 * EiB), 750);
  EXPECT_EQ(frac_permille(7 * PiB, 8 * PiB), 875);
  EXPECT_EQ(frac_permille(10 * PiB, 1 * EiB), 9);
}

TEST(FracPermille, ClampsDegenerateInputs) {
  EXPECT_EQ(frac_permille(0, 100), 0);
  EXPECT_EQ(frac_permille(-5, 100), 0);
  EXPECT_EQ(frac_permille(100, 0), 0);
  EXPECT_EQ(frac_permille(100, -1), 0);
  EXPECT_EQ(frac_permille(200, 100), 1000);
  EXPECT_EQ(frac_permille(100, 100), 1000);
  EXPECT_EQ(frac_permille(7, 9), 777);  // truncation, not rounding
}

TEST(EffectiveStrategy, ScoresCorrectlyAtPetabyteCapacities) {
  // Two hand-built views whose *memory* headrooms decide the winner, at a
  // capacity where the old math overflowed. h1 has more free bytes but a
  // tighter CPU bottleneck; h0 must win on min(cpu, mem) headroom.
  auto strategy = PlacementRegistry::instance().make("effective");
  ASSERT_NE(strategy, nullptr);
  HostView h0;
  h0.index = 0;
  h0.capacity_millicpu = 64000;
  h0.capacity_memory = 1 * EiB;
  h0.slack_millicpu = 32000;      // 500 permille
  h0.free_memory = 768 * PiB;     // ~750 permille -> score 500
  HostView h1 = h0;
  h1.index = 1;
  h1.slack_millicpu = 16000;      // 250 permille
  h1.free_memory = 896 * PiB;     // ~875 permille -> score 250
  Rng rng(1);
  const PodSpec pod = spec(1000, 1 * GiB);
  const FleetView fleet = FleetView::from_hosts({h0, h1});
  EXPECT_EQ(strategy->select(pod, fleet, rng), 0);
}

}  // namespace
}  // namespace arv::cluster
