// FleetView battery (`ctest -L fleetview`): the shared cluster snapshot must
// be invisible in every observable. The same fleet — profile placement, all
// control loops on — is replayed at thread counts 1/2/4/8 and must produce
// byte-identical traces *and* byte-identical /sys/arv/fleet/ renders; the
// incremental row-copy refresh must equal a forced full re-observe; the
// generation must advance only on content change so pseudo-file renders
// cache; and a serial-phase probe pins that components always read a
// snapshot standing at cluster time.
#include "src/cluster/fleet_view.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/profile.h"
#include "src/cluster/router.h"
#include "src/container/host.h"
#include "src/harness/scenario.h"

namespace arv::cluster {
namespace {

using namespace arv::units;

int sweep_iterations() {
  const char* env = std::getenv("ARV_CHAOS_ITERS");
  if (env == nullptr) {
    return 2;
  }
  const int iters = std::atoi(env);
  return iters > 0 ? iters : 2;
}

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

container::HostConfig small_host(int cpus = 4, Bytes ram = 8 * GiB) {
  container::HostConfig config;
  config.cpus = cpus;
  config.ram = ram;
  return config;
}

HostView idle_view(int index, std::int64_t capacity_millicpu = 4000,
                   Bytes capacity_memory = 8 * GiB) {
  HostView view;
  view.index = index;
  view.capacity_millicpu = capacity_millicpu;
  view.capacity_memory = capacity_memory;
  view.slack_millicpu = capacity_millicpu;
  view.free_memory = capacity_memory;
  return view;
}

// --- snapshot-object units --------------------------------------------------

TEST(FleetView, FromHostsWrapsHandBuiltViews) {
  const FleetView fleet = FleetView::from_hosts({idle_view(0), idle_view(1)});
  EXPECT_EQ(fleet.host_count(), 2);
  EXPECT_EQ(fleet.pod_count(), 0);
  EXPECT_EQ(fleet.hosts[1].index, 1);
  EXPECT_EQ(fleet.service_name(-1), "?");
}

TEST(FleetView, ClaimChargesTheHostAndAddsASyntheticRow) {
  FleetView fleet = FleetView::from_hosts({idle_view(0)});
  PodSpec spec;
  spec.name = "web-0";
  spec.service = "web";
  spec.resources = res(1000, 1 * GiB);
  fleet.claim(0, spec);
  const HostView& view = fleet.hosts[0];
  EXPECT_EQ(view.requested_millicpu, 1000);
  EXPECT_EQ(view.requested_memory, 1 * GiB);
  EXPECT_EQ(view.slack_millicpu, 3000);
  EXPECT_EQ(view.free_memory, 7 * GiB);
  EXPECT_EQ(view.pods, 1);
  ASSERT_EQ(fleet.pod_count(), 1);
  const PodRow& row = fleet.pods[0];
  EXPECT_EQ(row.id, -1);  // synthetic: not a real pod yet
  EXPECT_EQ(row.host, 0);
  EXPECT_TRUE(row.running);
  EXPECT_EQ(fleet.service_name(row.service), "web");
}

TEST(FleetView, ReserveDeductsOnlyObservedAxes) {
  FleetView fleet = FleetView::from_hosts({idle_view(0)});
  fleet.reserve(0, res(1500, 2 * GiB));
  const HostView& view = fleet.hosts[0];
  EXPECT_EQ(view.slack_millicpu, 2500);
  EXPECT_EQ(view.free_memory, 6 * GiB);
  EXPECT_EQ(view.requested_millicpu, 0);  // ledger untouched
  EXPECT_EQ(view.pods, 0);
  // Deductions clamp at zero — an over-reserve never goes negative.
  fleet.reserve(0, res(1000000, 1024 * GiB));
  EXPECT_EQ(fleet.hosts[0].slack_millicpu, 0);
  EXPECT_EQ(fleet.hosts[0].free_memory, 0);
}

TEST(FleetView, SameContentIgnoresGenerationAndTimestamp) {
  FleetView a = FleetView::from_hosts({idle_view(0)});
  FleetView b = FleetView::from_hosts({idle_view(0)});
  b.generation = 42;
  b.at = 1 * sec;
  EXPECT_TRUE(a.same_content(b));
  b.hosts[0].slack_millicpu -= 1;
  EXPECT_FALSE(a.same_content(b));
}

TEST(FleetViewDiff, ReportsAddedRemovedAndMovedPods) {
  FleetView prev = FleetView::from_hosts({idle_view(0), idle_view(1)});
  FleetView cur = prev;
  auto row = [](int id, int host) {
    PodRow r;
    r.id = id;
    r.host = host;
    r.running = host >= 0;
    return r;
  };
  prev.pods = {row(0, 0), row(1, 0), row(2, 1)};
  prev.generation = 7;
  cur.pods = {row(0, 1), row(1, -1), row(2, 1), row(3, 0)};
  cur.generation = 9;
  const FleetViewDiff diff = cur.diff(prev);
  EXPECT_EQ(diff.from, 7u);
  EXPECT_EQ(diff.to, 9u);
  EXPECT_EQ(diff.added, std::vector<int>{3});
  EXPECT_EQ(diff.removed, std::vector<int>{1});
  ASSERT_EQ(diff.moved.size(), 1u);
  EXPECT_EQ(diff.moved[0], (PodMove{0, 0, 1}));
  EXPECT_TRUE(diff.hosts.empty()) << "zero-delta hosts must be omitted";
  EXPECT_FALSE(diff.empty());
  const std::string rendered = diff.render();
  EXPECT_NE(rendered.find("+pod3"), std::string::npos);
  EXPECT_NE(rendered.find("-pod1"), std::string::npos);
  EXPECT_NE(rendered.find("pod0 h0->h1"), std::string::npos);
}

TEST(FleetViewDiff, IdenticalSnapshotsDiffEmpty) {
  FleetView fleet = FleetView::from_hosts({idle_view(0)});
  EXPECT_TRUE(fleet.diff(fleet).empty());
}

// --- generation + render caching --------------------------------------------

TEST(FleetViewGeneration, StableOnAnIdleFleet) {
  Cluster cluster;
  cluster.add_host(small_host());
  cluster.add_host(small_host());
  cluster.run_for(300 * msec);
  const vfs::Generation settled = cluster.fleet_generation();
  EXPECT_GT(settled, 0u);  // the first refresh did publish content
  cluster.run_for(500 * msec);
  // Nothing moved: window rolls re-observe rows but the content — and hence
  // the generation — must not change.
  EXPECT_EQ(cluster.fleet_generation(), settled);
}

TEST(FleetViewGeneration, AdvancesWhenAPodLands) {
  Cluster cluster;
  cluster.add_host(small_host());
  cluster.run_for(100 * msec);
  const vfs::Generation before = cluster.fleet_generation();
  cluster.create_pod(0, {"web", res(500, 512 * MiB)},
                     cpu_hog_workload(1, 10 * sec));
  cluster.step();
  EXPECT_GT(cluster.fleet_generation(), before);
}

TEST(FleetViewGeneration, RowsAreReusedForQuiescentHosts) {
  ClusterConfig config;
  config.skip_idle_hosts = true;
  Cluster cluster(config);
  for (int i = 0; i < 4; ++i) {
    cluster.add_host(small_host());
  }
  cluster.create_pod(0, {"hog", res(500, 512 * MiB)},
                     cpu_hog_workload(1, 60 * sec));
  cluster.run_for(500 * msec);
  // Three of four hosts never receive work; their rows must have been copied
  // forward, not re-observed, on (nearly) every refresh.
  EXPECT_GT(cluster.fleet_rows_reused(), 0u);
}

TEST(FleetViewFiles, RenderAndCacheOnTheGeneration) {
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  fleet.place_pod("effective", res(500, 512 * MiB),
                  cpu_hog_workload(1, 60 * sec));
  fleet.run(200 * msec);
  Cluster& cluster = fleet.cluster();
  const vfs::PseudoFs& fs = cluster.host(0).sysfs().host_fs();

  const auto generation = fs.read("/sys/arv/fleet/generation");
  ASSERT_TRUE(generation.has_value());
  EXPECT_EQ(*generation,
            std::to_string(cluster.fleet_generation()) + "\n");

  const auto hosts = fs.read("/sys/arv/fleet/hosts");
  ASSERT_TRUE(hosts.has_value());
  EXPECT_NE(hosts->find("generation"), std::string::npos);
  const auto pods = fs.read("/sys/arv/fleet/pods");
  ASSERT_TRUE(pods.has_value());
  EXPECT_NE(pods->find("pod0"), std::string::npos);

  // Re-reading without a generation change must serve the cached render.
  const std::uint64_t hits = fs.render_cache_hits();
  EXPECT_EQ(fs.read("/sys/arv/fleet/hosts"), hosts);
  EXPECT_EQ(fs.read("/sys/arv/fleet/pods"), pods);
  EXPECT_GE(fs.render_cache_hits(), hits + 2);

  // An idle stretch: the generation holds, so renders stay cached.
  fleet.run(300 * msec);
  const std::uint64_t idle_hits = fs.render_cache_hits();
  EXPECT_EQ(*fs.read("/sys/arv/fleet/generation"),
            std::to_string(cluster.fleet_generation()) + "\n");
  EXPECT_GE(fs.render_cache_hits(), idle_hits + 1);
}

TEST(FleetViewFiles, DiffFileReportsTheChangeThatMadeTheGeneration) {
  harness::FleetScenario fleet;
  fleet.add_host(small_host());
  fleet.add_host(small_host());
  fleet.run(100 * msec);
  const int pod = fleet.place_pod("effective", res(500, 512 * MiB),
                                  cpu_hog_workload(1, 60 * sec));
  ASSERT_GE(pod, 0);
  // Read right after the landing tick: the diff renders against the snapshot
  // published at the previous boundary, so this is the generation whose
  // change *is* the landing. (Later generations — window rolls, memory
  // charges — publish their own deltas and the landing scrolls out.)
  Cluster& cluster = fleet.cluster();
  cluster.step();
  const auto diff = cluster.host(0).sysfs().host_fs().read("/sys/arv/fleet/diff");
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("+pod" + std::to_string(pod)), std::string::npos);
}

// --- incremental refresh vs full re-observe ---------------------------------

/// Forces a full row re-observe plus a mid-tick refresh every component
/// round. If copying rows of provably-unchanged hosts ever diverged from
/// re-observing them, a fleet running this spy would trace differently from
/// one without it.
class FullRebuildSpy final : public sim::TickComponent {
 public:
  explicit FullRebuildSpy(Cluster& cluster) : cluster_(cluster) {}

  void tick(SimTime now, SimDuration /*dt*/) override {
    cluster_.invalidate_fleet_view();
    const FleetView& fleet = cluster_.fleet_view();
    EXPECT_EQ(fleet.at, now);
    EXPECT_GE(fleet.generation, last_generation_);
    last_generation_ = fleet.generation;
  }
  std::string name() const override { return "test.full_rebuild_spy"; }
  SimDuration tick_period() const override { return 0; }

 private:
  Cluster& cluster_;
  vfs::Generation last_generation_ = 0;
};

struct SweepResult {
  std::string trace;
  std::string hosts_render;
  std::string pods_render;
  vfs::Generation generation = 0;
  std::uint64_t rows_reused = 0;
  std::uint64_t migrations = 0;
  std::uint64_t routed = 0;
};

SweepResult run_sweep_fleet(int threads, bool full_rebuild_every_round,
                            std::uint64_t chaos_seed = 0) {
  ClusterConfig config;
  config.seed = 42;
  config.enable_tracing = true;
  config.trace_interval = 10 * msec;
  config.threads = threads;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < 4; ++i) {
    fleet.add_host(small_host());
  }
  fleet.enable_router(250.0);
  fleet.enable_recovery();
  RebalanceConfig rebalance;
  rebalance.period = 250 * msec;
  fleet.enable_rebalancer(rebalance);
  ProfileConfig profiles;
  profiles.period = 50 * msec;
  profiles.window_rounds = 16;
  profiles.min_samples = 4;
  fleet.enable_profiles(profiles);
  fleet.use_placement("profile");

  Cluster& cluster = fleet.cluster();
  FullRebuildSpy spy(cluster);
  if (full_rebuild_every_round) {
    cluster.add_component(&spy);
  }
  server::WebConfig web;
  web.service_cpu = 6 * msec;
  web.max_queue = 100;
  for (int i = 0; i < 2; ++i) {
    EXPECT_GE(fleet.place_web_pod(res(1000, 1 * GiB), web), 0);
  }
  EXPECT_GE(fleet.place_pod(res(500, 512 * MiB),
                            cpu_hog_workload(1, 60 * sec)),
            0);
  if (chaos_seed != 0) {
    Rng chaos_rng(chaos_seed);
    ChaosOptions chaos;
    chaos.horizon = 1 * sec;
    fleet.enable_faults(
        FaultPlan::random(chaos_rng, chaos, 4, cluster.pod_count()));
  }
  fleet.run(2 * sec);

  SweepResult result;
  result.trace = cluster.trace()->to_csv();
  const FleetView& final_view = cluster.fleet_view();
  result.hosts_render = final_view.render_hosts();
  result.pods_render = final_view.render_pods();
  result.generation = cluster.fleet_generation();
  result.rows_reused = cluster.fleet_rows_reused();
  result.migrations = cluster.migrations();
  result.routed = fleet.router()->routed();
  return result;
}

TEST(FleetViewDeterminism, ByteIdenticalAcrossThreadCounts) {
  const SweepResult reference = run_sweep_fleet(1, false);
  ASSERT_FALSE(reference.trace.empty());
  ASSERT_FALSE(reference.hosts_render.empty());
  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const SweepResult other = run_sweep_fleet(threads, false);
    EXPECT_EQ(reference.trace, other.trace);
    EXPECT_EQ(reference.hosts_render, other.hosts_render);
    EXPECT_EQ(reference.pods_render, other.pods_render);
    EXPECT_EQ(reference.generation, other.generation);
    EXPECT_EQ(reference.rows_reused, other.rows_reused);
    EXPECT_EQ(reference.migrations, other.migrations);
    EXPECT_EQ(reference.routed, other.routed);
  }
}

TEST(FleetViewDeterminism, IncrementalRefreshEqualsFullRebuild) {
  // Same fleet, one run copying rows of provably-unchanged hosts, the other
  // forced to re-observe every row every round. Every observable — trace
  // included — must match; only the reuse counter itself may differ.
  const SweepResult incremental = run_sweep_fleet(2, false);
  const SweepResult full = run_sweep_fleet(2, true);
  EXPECT_EQ(incremental.trace, full.trace);
  EXPECT_EQ(incremental.hosts_render, full.hosts_render);
  EXPECT_EQ(incremental.pods_render, full.pods_render);
  EXPECT_EQ(incremental.generation, full.generation);
  EXPECT_EQ(incremental.migrations, full.migrations);
  EXPECT_EQ(incremental.routed, full.routed);
  // Both runs reuse rows at refresh boundaries (the exact counts differ —
  // the spy's mid-round rebuild absorbs profile invalidations the plain run
  // pays for at its next boundary); what matters is the path is exercised.
  EXPECT_GT(incremental.rows_reused, 0u);
  EXPECT_GT(full.rows_reused, 0u);
}

TEST(FleetViewDeterminism, ChaosFleetsAreThreadInvariant) {
  const int iters = sweep_iterations();
  const int alt_threads[] = {2, 4, 8};
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = 0xf1ee7u + static_cast<std::uint64_t>(i);
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    const SweepResult serial = run_sweep_fleet(1, false, seed);
    const SweepResult parallel =
        run_sweep_fleet(alt_threads[i % 3], false, seed);
    EXPECT_EQ(serial.trace, parallel.trace);
    EXPECT_EQ(serial.hosts_render, parallel.hosts_render);
    EXPECT_EQ(serial.pods_render, parallel.pods_render);
    EXPECT_EQ(serial.generation, parallel.generation);
    EXPECT_EQ(serial.migrations, parallel.migrations);
  }
}

// --- serial-phase contract ----------------------------------------------------

/// Registered before the fault machinery: at every component round the
/// snapshot must stand exactly at cluster time, list every host, and carry a
/// well-formed CSR index — even right before a crash lands.
class SnapshotProbe final : public sim::TickComponent {
 public:
  explicit SnapshotProbe(Cluster& cluster) : cluster_(cluster) {}

  void tick(SimTime now, SimDuration /*dt*/) override {
    ++rounds_;
    const FleetView& fleet = cluster_.fleet_view();
    EXPECT_EQ(fleet.at, now);
    EXPECT_EQ(fleet.host_count(), cluster_.host_count());
    EXPECT_EQ(fleet.pod_count(), cluster_.pod_count());
    ASSERT_EQ(fleet.host_pod_offsets.size(),
              static_cast<std::size_t>(fleet.host_count() + 1));
    for (int h = 0; h < fleet.host_count(); ++h) {
      for (int i = fleet.host_pod_offsets[static_cast<std::size_t>(h)];
           i < fleet.host_pod_offsets[static_cast<std::size_t>(h) + 1]; ++i) {
        const int pod = fleet.host_pod_ids[static_cast<std::size_t>(i)];
        EXPECT_EQ(fleet.pods[static_cast<std::size_t>(pod)].host, h);
      }
    }
  }
  std::string name() const override { return "test.snapshot_probe"; }
  SimDuration tick_period() const override { return 0; }

  std::uint64_t rounds() const { return rounds_; }

 private:
  Cluster& cluster_;
  std::uint64_t rounds_ = 0;
};

TEST(FleetViewDeterminism, SnapshotIsCoherentEveryRoundUnderFaults) {
  ClusterConfig config;
  config.seed = 42;
  config.threads = 4;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < 3; ++i) {
    fleet.add_host(small_host());
  }
  fleet.enable_router(150.0);
  fleet.enable_recovery();
  Cluster& cluster = fleet.cluster();
  SnapshotProbe probe(cluster);
  cluster.add_component(&probe);
  server::WebConfig web;
  web.service_cpu = 5 * msec;
  for (int h = 0; h < 2; ++h) {
    const int pod = cluster.create_pod(
        h, {"web-" + std::to_string(h), res(1000, 1 * GiB)}, web_replica(web));
    EXPECT_TRUE(fleet.router()->add_replica(pod));
  }
  FaultPlan plan;
  plan.add({FaultEvent::Kind::kPodCrash, 200 * msec, -1, 0, 0, 0, 0});
  plan.add({FaultEvent::Kind::kHostCrash, 300 * msec, 1, -1, 500 * msec, 0, 0});
  fleet.enable_faults(plan);
  fleet.run(2 * sec);
  EXPECT_GT(probe.rounds(), 0u);
  EXPECT_TRUE(fleet.injector()->done());
  EXPECT_EQ(cluster.host_crashes(), 1u);
}

}  // namespace
}  // namespace arv::cluster
