// Chaos suite: randomized fault plans replayed against a full fleet (router,
// detector, restart manager, and the whole overload control plane —
// admission, retry budget, adaptive limits, brownout) must (a) be
// byte-identical under the same seed, (b) conserve every request through the
// extended front-door identities, (c) keep the pod ledger consistent, and
// (d) converge back to a fully-running fleet once the plan drains. Iteration
// count scales with ARV_CHAOS_ITERS (CI runs hundreds; the default keeps
// local runs fast).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/cluster/faults.h"
#include "src/cluster/overload.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/recovery.h"
#include "src/cluster/router.h"
#include "src/harness/scenario.h"

namespace arv::cluster {
namespace {

using namespace arv::units;

int chaos_iterations() {
  const char* env = std::getenv("ARV_CHAOS_ITERS");
  if (env == nullptr) {
    return 3;
  }
  const int iters = std::atoi(env);
  return iters > 0 ? iters : 3;
}

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

container::HostConfig small_host() {
  container::HostConfig config;
  config.cpus = 4;
  config.ram = 8 * GiB;
  return config;
}

constexpr int kHosts = 3;
constexpr SimDuration kHorizon = 3 * sec;
constexpr SimDuration kRunFor = 10 * sec;  // horizon + recovery tail

/// Build the reference fleet, replay a random plan drawn from `chaos_seed`,
/// optionally verify the invariants, and return the cluster trace CSV.
/// `threads` sizes the host-phase worker pool — results must not depend on
/// it, which the soak below pins by replaying every plan at a different
/// thread count.
std::string run_chaos(std::uint64_t chaos_seed, bool verify, int threads = 1) {
  ClusterConfig config;
  config.seed = 42;
  config.enable_tracing = true;
  config.trace_interval = 10 * msec;
  config.threads = threads;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < kHosts; ++i) {
    fleet.add_host(small_host());
  }
  RouterConfig router;
  // Overloads the fleet only in degraded mode: three replicas absorb the
  // stream, a lone survivor cannot — that is what exercises refusal, retry,
  // breaker, and shed paths under chaos.
  router.arrivals_per_sec = 900;
  router.max_retries = 2;
  router.breaker_threshold = 5;
  router.breaker_open = 300 * msec;
  fleet.enable_router(router);
  // Every overload guard armed: the conservation identities below must hold
  // with admission shedding, the retry budget, AIMD limits, and brownout all
  // active under fault chaos.
  fleet.enable_admission();
  DetectorConfig detector;
  detector.period = 100 * msec;
  detector.miss_threshold = 2;
  RestartConfig restart;
  restart.period = 50 * msec;
  restart.backoff_base = 100 * msec;
  restart.backoff_cap = 2 * sec;
  fleet.enable_recovery(detector, restart);

  Cluster& cluster = fleet.cluster();
  server::WebConfig web;
  web.service_cpu = 6 * msec;
  web.max_queue = 100;
  for (int h = 0; h < kHosts; ++h) {
    const int pod = cluster.create_pod(
        h, {"web-" + std::to_string(h), res(1000, 1 * GiB)},
        web_replica(web));
    EXPECT_TRUE(fleet.router()->add_replica(pod));
  }
  cluster.create_pod(0, {"hog", res(500, 512 * MiB)},
                     cpu_hog_workload(1, 60 * sec));
  cluster.create_pod(1, {"resident", res(500, 2 * GiB)},
                     mem_hog_workload(1 * GiB, 4 * GiB));

  Rng chaos_rng(chaos_seed);
  ChaosOptions options;
  options.horizon = kHorizon;
  fleet.enable_faults(
      FaultPlan::random(chaos_rng, options, kHosts, cluster.pod_count()));
  fleet.run(kRunFor);

  if (verify) {
    const RequestRouter& r = *fleet.router();
    // --- request conservation, front door: every generated request is
    // admitted or rejected, and every admitted request has exactly one
    // disposition.
    EXPECT_EQ(r.generated(), r.admitted() + r.rejected());
    EXPECT_EQ(r.admitted(),
              r.routed() + r.dropped() + r.unroutable() + r.shed());
    const AdmissionController& adm = *fleet.admission();
    EXPECT_EQ(adm.admitted(), r.admitted());
    EXPECT_EQ(adm.rejected(), r.rejected());
    // --- attempt-level: every injection attempt landed in some sink's
    // arrived counter (live or archived), refusals in its dropped counter.
    const server::RequestStats agg = r.aggregate();
    EXPECT_EQ(agg.arrived, r.attempts());
    EXPECT_EQ(agg.dropped, r.attempts() - r.routed());
    // --- brownout accounting: every degraded service matches a degraded
    // routing decision, through any number of harvests.
    EXPECT_EQ(agg.degraded, r.degraded());
    EXPECT_LE(r.degraded(), r.routed());
    // --- routed requests either completed, are still queued, or died with
    // a torn-down sink (migration/crash/stop) — none vanish.
    std::uint64_t lost = 0;
    for (int id = 0; id < cluster.pod_count(); ++id) {
      lost += cluster.pod(id).lost;
    }
    EXPECT_EQ(r.routed(), agg.completed + r.queued() + lost);

    // --- pod ledger consistency: the per-host declared-request ledger must
    // equal a recount over pod assignments, whatever crashed or moved.
    for (int h = 0; h < cluster.host_count(); ++h) {
      std::int64_t millicpu = 0;
      Bytes memory = 0;
      int count = 0;
      for (int id = 0; id < cluster.pod_count(); ++id) {
        const Pod& pod = cluster.pod(id);
        if (pod.host == h) {
          millicpu += pod.spec.resources.request_millicpu;
          memory += pod.spec.resources.request_memory;
          ++count;
        }
      }
      const HostView view = cluster.host_view(h);
      EXPECT_EQ(view.requested_millicpu, millicpu) << "ledger drift on h" << h;
      EXPECT_EQ(view.requested_memory, memory) << "ledger drift on h" << h;
      EXPECT_EQ(cluster.pods_on(h), count) << "pod count drift on h" << h;
    }

    // --- post-fault convergence: the plan drained, every host rebooted,
    // and recovery brought every pod back up.
    EXPECT_TRUE(fleet.injector()->done());
    for (int h = 0; h < cluster.host_count(); ++h) {
      EXPECT_TRUE(cluster.host_up(h)) << "h" << h << " never rebooted";
    }
    for (int id = 0; id < cluster.pod_count(); ++id) {
      EXPECT_TRUE(cluster.pod(id).running())
          << "pod " << id << " not recovered " << (kRunFor - kHorizon) / sec
          << "s after the last fault";
    }
    // Every pod crash was answered by a restart or a failover.
    if (cluster.pod_crashes() + cluster.host_crashes() > 0) {
      EXPECT_GT(cluster.restarts() + cluster.failovers(), 0u);
    }
  }
  return cluster.trace()->to_csv();
}

TEST(Chaos, InvariantsHoldAndTracesAreByteIdentical) {
  const int iters = chaos_iterations();
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = 0xc7a05000u + static_cast<std::uint64_t>(i);
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    // The first run exercises the parallel host phase; the replay runs
    // serial. Both verify — the conservation identities must hold at either
    // thread count — and trace equality pins both the seed-replay contract
    // and the thread-count-invariance contract under full fault chaos.
    const std::string first = run_chaos(seed, /*verify=*/true, /*threads=*/4);
    const std::string second = run_chaos(seed, /*verify=*/true, /*threads=*/1);
    ASSERT_EQ(first, second)
        << "same seed + same plan must replay byte-identically, "
           "whatever the thread count";
    ASSERT_FALSE(first.empty());
  }
}

TEST(Chaos, DifferentSeedsProduceDifferentPlans) {
  const std::string a = run_chaos(1, /*verify=*/false);
  const std::string b = run_chaos(2, /*verify=*/false);
  EXPECT_NE(a, b) << "chaos plans should vary with the seed";
}

// A fault-free run through the same harness pins the baseline the chaos
// iterations degrade from: nothing shed, nothing unroutable, no recovery
// activity, all replicas healthy.
TEST(Chaos, FaultFreeBaselineIsClean) {
  ClusterConfig config;
  config.seed = 42;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < kHosts; ++i) {
    fleet.add_host(small_host());
  }
  RouterConfig router;
  router.arrivals_per_sec = 900;
  fleet.enable_router(router);
  fleet.enable_recovery();
  server::WebConfig web;
  web.service_cpu = 6 * msec;
  web.max_queue = 100;
  for (int h = 0; h < kHosts; ++h) {
    const int pod = fleet.cluster().create_pod(
        h, {"web-" + std::to_string(h), res(1000, 1 * GiB)},
        web_replica(web));
    ASSERT_TRUE(fleet.router()->add_replica(pod));
  }
  fleet.run(5 * sec);
  EXPECT_EQ(fleet.router()->unroutable(), 0u);
  EXPECT_EQ(fleet.router()->shed(), 0u);
  EXPECT_EQ(fleet.router()->dropped(), 0u);
  EXPECT_EQ(fleet.router()->breaker_trips(), 0u);
  EXPECT_EQ(fleet.cluster().restarts(), 0u);
  EXPECT_EQ(fleet.cluster().failovers(), 0u);
  EXPECT_EQ(fleet.detector()->declarations(), 0u);
  const server::RequestStats agg = fleet.router()->aggregate();
  EXPECT_EQ(agg.arrived, fleet.router()->routed());
  EXPECT_GT(agg.completed, 0u);
}

}  // namespace
}  // namespace arv::cluster
