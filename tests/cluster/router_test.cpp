// RequestRouter: join-shortest-queue balancing, unroutable accounting, and
// request-stats continuity across a replica migration. Plus the FleetScenario
// builder that wires all of it together.
#include "src/cluster/router.h"

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/scheduler.h"
#include "src/harness/scenario.h"

namespace arv::cluster {
namespace {

using namespace arv::units;

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

container::HostConfig small_host(int cpus, Bytes ram) {
  container::HostConfig config;
  config.cpus = cpus;
  config.ram = ram;
  return config;
}

server::WebConfig replica_web() {
  server::WebConfig web;
  web.service_cpu = 4 * msec;
  return web;
}

TEST(RequestRouter, BalancesAcrossReplicas) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  ClusterScheduler scheduler(cluster);
  RouterConfig config;
  config.arrivals_per_sec = 400;
  RequestRouter router(cluster, config);
  cluster.add_component(&router);
  const int a = scheduler.place("requests", {"web-a", res(1000, 1 * GiB)},
                                web_replica(replica_web()));
  const int b = scheduler.place("requests", {"web-b", res(1000, 1 * GiB)},
                                web_replica(replica_web()));
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  router.add_replica(a);
  router.add_replica(b);
  cluster.run_for(5 * sec);

  EXPECT_EQ(router.unroutable(), 0u);
  EXPECT_GT(router.routed(), 1900u);  // ~400/s for 5s
  const auto& stats_a = cluster.pod(a).workload->request_sink()->stats();
  const auto& stats_b = cluster.pod(b).workload->request_sink()->stats();
  EXPECT_GT(stats_a.completed, 0u);
  EXPECT_GT(stats_b.completed, 0u);
  // JSQ keeps the split close to even on symmetric replicas.
  const auto hi = std::max(stats_a.arrived, stats_b.arrived);
  const auto lo = std::min(stats_a.arrived, stats_b.arrived);
  EXPECT_LT(hi - lo, hi / 4) << "arrivals skewed: " << stats_a.arrived
                             << " vs " << stats_b.arrived;
  const server::RequestStats total = router.aggregate();
  EXPECT_EQ(total.arrived, stats_a.arrived + stats_b.arrived);
}

TEST(RequestRouter, CountsUnroutableWhenNoReplicaIsUp) {
  Cluster cluster;
  cluster.add_host(small_host(2, 4 * GiB));
  RouterConfig config;
  config.arrivals_per_sec = 100;
  RequestRouter router(cluster, config);
  cluster.add_component(&router);
  cluster.run_for(1 * sec);
  EXPECT_EQ(router.routed(), 0u);
  EXPECT_GE(router.unroutable(), 99u);
}

TEST(RequestRouter, StatsSurviveReplicaMigration) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  ClusterScheduler scheduler(cluster);
  RouterConfig config;
  config.arrivals_per_sec = 200;
  RequestRouter router(cluster, config);
  cluster.add_component(&router);
  const int pod = scheduler.place("requests", {"web", res(1000, 1 * GiB)},
                                  web_replica(replica_web()));
  ASSERT_GE(pod, 0);
  router.add_replica(pod);
  cluster.run_for(2 * sec);
  const std::uint64_t before = router.aggregate().completed;
  ASSERT_GT(before, 0u);

  cluster.migrate_pod(pod, cluster.pod(pod).host == 0 ? 1 : 0);
  cluster.run_for(3 * sec);  // freeze passes, replica resumes on the target
  const server::RequestStats after = router.aggregate();
  EXPECT_TRUE(cluster.pod(pod).running());
  EXPECT_GT(after.completed, before)
      << "migrated replica stopped serving, or its history was lost";
  // Requests that arrived during the freeze had no replica to go to.
  EXPECT_GT(router.unroutable(), 0u);
}

// Satellite regression: enrolling the same pod twice used to double its
// arrivals (two JSQ entries over one queue) and double-count its history in
// aggregate(). Duplicates are now rejected.
TEST(RequestRouter, RejectsDuplicateReplica) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  ClusterScheduler scheduler(cluster);
  RouterConfig config;
  config.arrivals_per_sec = 100;
  RequestRouter router(cluster, config);
  cluster.add_component(&router);
  const int pod = scheduler.place("requests", {"web", res(1000, 1 * GiB)},
                                  web_replica(replica_web()));
  ASSERT_GE(pod, 0);
  EXPECT_TRUE(router.add_replica(pod));
  EXPECT_FALSE(router.add_replica(pod));
  cluster.run_for(1 * sec);
  // One rotation entry: history counted once.
  const auto& live = cluster.pod(pod).workload->request_sink()->stats();
  EXPECT_EQ(router.aggregate().arrived, live.arrived);
}

// An overloaded replica refuses injections once its accept queue fills; the
// breaker opens after `breaker_threshold` consecutive refusals, sheds load
// while open, probes half-open after `breaker_open`, and closes again once
// the replica drains. Shed (breaker open) stays distinct from unroutable
// (no replica exists).
TEST(RequestRouter, BreakerTripsShedsAndRecloses) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  ClusterScheduler scheduler(cluster);
  RouterConfig config;
  config.arrivals_per_sec = 2000;  // far beyond one replica's capacity
  config.max_retries = 0;
  config.breaker_threshold = 5;
  config.breaker_open = 200 * msec;
  RequestRouter router(cluster, config);
  cluster.add_component(&router);
  server::WebConfig web = replica_web();
  web.service_cpu = 20 * msec;  // ~200/s capacity
  web.max_queue = 10;           // overflows almost immediately
  const int pod = scheduler.place("requests", {"web", res(2000, 1 * GiB)},
                                  web_replica(web));
  ASSERT_GE(pod, 0);
  ASSERT_TRUE(router.add_replica(pod));
  cluster.run_for(5 * sec);

  EXPECT_GT(router.dropped(), 0u) << "refused injections must be dropped";
  EXPECT_GT(router.breaker_trips(), 0u);
  EXPECT_GT(router.breaker_closes(), 0u)
      << "the replica drains while the breaker is open; the half-open probe "
         "must find it serving again";
  EXPECT_GT(router.shed(), 0u) << "requests during open windows are shed";
  EXPECT_EQ(router.unroutable(), 0u)
      << "the replica existed throughout; nothing was unroutable";
  // Dispositions still partition the generated stream.
  EXPECT_EQ(router.generated(), router.routed() + router.dropped() +
                                    router.unroutable() + router.shed());
  // The breaker saved the replica from most of the overload: shed at the
  // front door instead of hammering a full queue.
  EXPECT_GT(router.shed(), router.dropped());
}

// Retries move a refused request to the next-best replica instead of
// dropping it. The first replica's accept queue is capped at one, so it
// keeps *looking* shortest to JSQ while actually full; the healthy second
// replica must absorb every refusal.
TEST(RequestRouter, RetryFailsOverToNextBestReplica) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  ClusterScheduler scheduler(cluster);
  RouterConfig config;
  config.arrivals_per_sec = 1500;
  config.max_retries = 1;
  config.breaker_threshold = 1000000;  // isolate the retry path
  RequestRouter router(cluster, config);
  cluster.add_component(&router);
  server::WebConfig slow = replica_web();
  slow.service_cpu = 50 * msec;
  slow.max_queue = 1;  // full at depth 1: still the JSQ favourite
  server::WebConfig fast = replica_web();
  fast.service_cpu = 2 * msec;  // ~75% utilised: depth is often >= 1
  const int a = scheduler.place("requests", {"slow", res(2000, 1 * GiB)},
                                web_replica(slow));
  const int b = scheduler.place("requests", {"fast", res(2000, 1 * GiB)},
                                web_replica(fast));
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  ASSERT_TRUE(router.add_replica(a));
  ASSERT_TRUE(router.add_replica(b));
  cluster.run_for(3 * sec);

  EXPECT_GT(router.retries(), 0u);
  EXPECT_EQ(router.dropped(), 0u)
      << "with a healthy second replica every refusal must be retried away";
  EXPECT_EQ(router.generated(), router.routed() + router.shed());
}

TEST(FleetScenario, BuildsARunningFleet) {
  cluster::ClusterConfig config;
  config.enable_tracing = true;
  harness::FleetScenario fleet(config);
  fleet.add_host(small_host(4, 8 * GiB));
  fleet.add_host(small_host(4, 8 * GiB));
  fleet.enable_router(300);
  fleet.enable_rebalancer();
  ASSERT_GE(fleet.place_web_pod("effective", res(1000, 1 * GiB),
                                replica_web()),
            0);
  ASSERT_GE(fleet.place_web_pod("effective", res(1000, 1 * GiB),
                                replica_web()),
            0);
  ASSERT_GE(fleet.place_pod("requests", res(500, 512 * MiB),
                            cpu_hog_workload(1, 1 * sec)),
            0);
  fleet.run(3 * sec);

  EXPECT_EQ(fleet.cluster().now(), 3 * sec);
  const server::RequestStats total = fleet.router()->aggregate();
  EXPECT_GT(total.completed, 500u);
  EXPECT_GT(total.latency_us.count(), 0u);
  EXPECT_NE(fleet.cluster().trace(), nullptr);
}

}  // namespace
}  // namespace arv::cluster
