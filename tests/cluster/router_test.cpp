// RequestRouter: join-shortest-queue balancing, unroutable accounting, and
// request-stats continuity across a replica migration. Plus the FleetScenario
// builder that wires all of it together.
#include "src/cluster/router.h"

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/scheduler.h"
#include "src/harness/scenario.h"

namespace arv::cluster {
namespace {

using namespace arv::units;

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

container::HostConfig small_host(int cpus, Bytes ram) {
  container::HostConfig config;
  config.cpus = cpus;
  config.ram = ram;
  return config;
}

server::WebConfig replica_web() {
  server::WebConfig web;
  web.service_cpu = 4 * msec;
  return web;
}

TEST(RequestRouter, BalancesAcrossReplicas) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  ClusterScheduler scheduler(cluster);
  RouterConfig config;
  config.arrivals_per_sec = 400;
  RequestRouter router(cluster, config);
  cluster.add_component(&router);
  const int a = scheduler.place("requests", {"web-a", res(1000, 1 * GiB)},
                                web_replica(replica_web()));
  const int b = scheduler.place("requests", {"web-b", res(1000, 1 * GiB)},
                                web_replica(replica_web()));
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  router.add_replica(a);
  router.add_replica(b);
  cluster.run_for(5 * sec);

  EXPECT_EQ(router.unroutable(), 0u);
  EXPECT_GT(router.routed(), 1900u);  // ~400/s for 5s
  const auto& stats_a = cluster.pod(a).workload->request_sink()->stats();
  const auto& stats_b = cluster.pod(b).workload->request_sink()->stats();
  EXPECT_GT(stats_a.completed, 0u);
  EXPECT_GT(stats_b.completed, 0u);
  // JSQ keeps the split close to even on symmetric replicas.
  const auto hi = std::max(stats_a.arrived, stats_b.arrived);
  const auto lo = std::min(stats_a.arrived, stats_b.arrived);
  EXPECT_LT(hi - lo, hi / 4) << "arrivals skewed: " << stats_a.arrived
                             << " vs " << stats_b.arrived;
  const server::RequestStats total = router.aggregate();
  EXPECT_EQ(total.arrived, stats_a.arrived + stats_b.arrived);
}

TEST(RequestRouter, CountsUnroutableWhenNoReplicaIsUp) {
  Cluster cluster;
  cluster.add_host(small_host(2, 4 * GiB));
  RouterConfig config;
  config.arrivals_per_sec = 100;
  RequestRouter router(cluster, config);
  cluster.add_component(&router);
  cluster.run_for(1 * sec);
  EXPECT_EQ(router.routed(), 0u);
  EXPECT_GE(router.unroutable(), 99u);
}

TEST(RequestRouter, StatsSurviveReplicaMigration) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  ClusterScheduler scheduler(cluster);
  RouterConfig config;
  config.arrivals_per_sec = 200;
  RequestRouter router(cluster, config);
  cluster.add_component(&router);
  const int pod = scheduler.place("requests", {"web", res(1000, 1 * GiB)},
                                  web_replica(replica_web()));
  ASSERT_GE(pod, 0);
  router.add_replica(pod);
  cluster.run_for(2 * sec);
  const std::uint64_t before = router.aggregate().completed;
  ASSERT_GT(before, 0u);

  cluster.migrate_pod(pod, cluster.pod(pod).host == 0 ? 1 : 0);
  cluster.run_for(3 * sec);  // freeze passes, replica resumes on the target
  const server::RequestStats after = router.aggregate();
  EXPECT_TRUE(cluster.pod(pod).running());
  EXPECT_GT(after.completed, before)
      << "migrated replica stopped serving, or its history was lost";
  // Requests that arrived during the freeze had no replica to go to.
  EXPECT_GT(router.unroutable(), 0u);
}

TEST(FleetScenario, BuildsARunningFleet) {
  cluster::ClusterConfig config;
  config.enable_tracing = true;
  harness::FleetScenario fleet(config);
  fleet.add_host(small_host(4, 8 * GiB));
  fleet.add_host(small_host(4, 8 * GiB));
  fleet.enable_router(300);
  fleet.enable_rebalancer();
  ASSERT_GE(fleet.place_web_pod("effective", res(1000, 1 * GiB),
                                replica_web()),
            0);
  ASSERT_GE(fleet.place_web_pod("effective", res(1000, 1 * GiB),
                                replica_web()),
            0);
  ASSERT_GE(fleet.place_pod("requests", res(500, 512 * MiB),
                            cpu_hog_workload(1, 1 * sec)),
            0);
  fleet.run(3 * sec);

  EXPECT_EQ(fleet.cluster().now(), 3 * sec);
  const server::RequestStats total = fleet.router()->aggregate();
  EXPECT_GT(total.completed, 500u);
  EXPECT_GT(total.latency_us.count(), 0u);
  EXPECT_NE(fleet.cluster().trace(), nullptr);
}

}  // namespace
}  // namespace arv::cluster
