// Failure recovery: the FailureDetector's declare-then-evacuate loop and the
// RestartManager's CrashLoopBackOff, including OOM-kill conversion.
#include "src/cluster/recovery.h"

#include <gtest/gtest.h>

#include "src/cluster/faults.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/scheduler.h"
#include "src/container/host.h"
#include "src/harness/scenario.h"
#include "src/mem/memory_manager.h"

namespace arv::cluster {
namespace {

using namespace arv::units;

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

container::HostConfig small_host(int cpus, Bytes ram) {
  container::HostConfig config;
  config.cpus = cpus;
  config.ram = ram;
  return config;
}

TEST(FailureDetector, DeclaresAfterMissThresholdThenFailsOver) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  const int pod = cluster.create_pod(0, {"p", res(500, 512 * MiB)},
                                     cpu_hog_workload(1, 60 * sec));
  DetectorConfig config;
  config.period = 100 * msec;
  config.miss_threshold = 3;
  FailureDetector detector(cluster, config);
  cluster.add_component(&detector);
  cluster.run_for(500 * msec);
  EXPECT_EQ(detector.declarations(), 0u);

  cluster.crash_host(0);
  // Two rounds down: still within the blip window, nothing moves.
  cluster.run_for(200 * msec);
  EXPECT_EQ(detector.declarations(), 0u);
  EXPECT_TRUE(cluster.pod(pod).failed);
  // The third missed round declares the host dead and evacuates.
  cluster.run_for(200 * msec);
  EXPECT_EQ(detector.declarations(), 1u);
  EXPECT_EQ(detector.failovers_initiated(), 1u);
  EXPECT_TRUE(cluster.pod(pod).running());
  EXPECT_EQ(cluster.pod(pod).host, 1);
  EXPECT_EQ(cluster.failovers(), 1u);
  EXPECT_EQ(detector.declared_dead(), 1);
  EXPECT_TRUE(detector.is_declared_dead(0));

  cluster.reboot_host(0);
  cluster.run_for(200 * msec);
  EXPECT_EQ(detector.declared_dead(), 0);
}

TEST(FailureDetector, FastRebootIsABlipNotACrash) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(4, 8 * GiB));
  const int pod = cluster.create_pod(0, {"p", res(500, 512 * MiB)},
                                     cpu_hog_workload(1, 60 * sec));
  DetectorConfig config;
  config.period = 100 * msec;
  config.miss_threshold = 5;
  FailureDetector detector(cluster, config);
  cluster.add_component(&detector);
  cluster.run_for(100 * msec);

  cluster.crash_host(0);
  cluster.run_for(200 * msec);  // back up well inside the window
  cluster.reboot_host(0);
  cluster.run_for(1 * sec);
  EXPECT_EQ(detector.declarations(), 0u);
  EXPECT_EQ(detector.failovers_initiated(), 0u);
  // The pod still failed (the crash killed it) but stays on its host for
  // the cheaper restart-in-place path.
  EXPECT_TRUE(cluster.pod(pod).failed);
  EXPECT_EQ(cluster.pod(pod).host, 0);
}

TEST(FailureDetector, DefersWhenNoTargetFitsAndRetries) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  cluster.add_host(small_host(1, 1 * GiB));  // too small for the refugee
  cluster.add_host(small_host(4, 8 * GiB));  // big, but full for now
  const int filler = cluster.create_pod(2, {"filler", res(3500, 6 * GiB)},
                                        cpu_hog_workload(1, 60 * sec));
  const int pod = cluster.create_pod(0, {"p", res(3000, 4 * GiB)},
                                     cpu_hog_workload(2, 60 * sec));
  DetectorConfig config;
  config.period = 100 * msec;
  config.miss_threshold = 2;
  config.strategy = "requests";  // feasibility on declared requests
  FailureDetector detector(cluster, config);
  cluster.add_component(&detector);
  cluster.run_for(100 * msec);

  cluster.crash_host(0);
  cluster.run_for(1 * sec);
  EXPECT_EQ(detector.failovers_initiated(), 0u);
  EXPECT_GT(detector.deferred(), 0u);
  EXPECT_TRUE(cluster.pod(pod).failed);

  // Capacity appears (the filler is deleted): the next round places it.
  cluster.stop_pod(filler);
  cluster.run_for(300 * msec);
  EXPECT_TRUE(cluster.pod(pod).running());
  EXPECT_EQ(cluster.pod(pod).host, 2);
  EXPECT_EQ(detector.failovers_initiated(), 1u);
}

TEST(RestartManager, RestartsAfterBackoff) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  const int pod = cluster.create_pod(0, {"p", res(500, 512 * MiB)},
                                     cpu_hog_workload(1, 60 * sec));
  RestartConfig config;
  config.period = 50 * msec;
  config.backoff_base = 200 * msec;
  RestartManager manager(cluster, config);
  cluster.add_component(&manager);
  cluster.run_for(100 * msec);

  cluster.crash_pod(pod);
  cluster.run_for(100 * msec);  // backoff not yet served
  EXPECT_FALSE(cluster.pod(pod).running());
  EXPECT_EQ(manager.crash_streak(pod), 1);
  cluster.run_for(300 * msec);
  EXPECT_TRUE(cluster.pod(pod).running());
  EXPECT_EQ(manager.restarts_issued(), 1u);
  EXPECT_EQ(cluster.pod(pod).restarts, 1);
}

TEST(RestartManager, BackoffDoublesAndCaps) {
  Cluster cluster;
  RestartConfig config;
  config.backoff_base = 100 * msec;
  config.backoff_cap = 1 * sec;
  RestartManager manager(cluster, config);
  EXPECT_EQ(manager.backoff_for(1), 100 * msec);
  EXPECT_EQ(manager.backoff_for(2), 200 * msec);
  EXPECT_EQ(manager.backoff_for(3), 400 * msec);
  EXPECT_EQ(manager.backoff_for(4), 800 * msec);
  EXPECT_EQ(manager.backoff_for(5), 1 * sec);
  EXPECT_EQ(manager.backoff_for(50), 1 * sec);  // capped, no overflow
}

TEST(RestartManager, CrashLoopBacksOffExponentially) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  const int pod = cluster.create_pod(0, {"p", res(500, 512 * MiB)},
                                     cpu_hog_workload(1, 600 * sec));
  RestartConfig config;
  config.period = 10 * msec;
  config.backoff_base = 100 * msec;
  config.backoff_cap = 2 * sec;
  config.reset_after = 600 * sec;  // never resets within this test
  RestartManager manager(cluster, config);
  cluster.add_component(&manager);

  // Crash the pod the moment it comes back, five times over; each recovery
  // must take longer than the last.
  SimTime last_recovery = 0;
  SimDuration last_outage = 0;
  for (int round = 0; round < 5; ++round) {
    cluster.crash_pod(pod);
    const SimTime crashed = cluster.now();
    while (!cluster.pod(pod).running()) {
      cluster.step();
      ASSERT_LT(cluster.now(), crashed + 10 * sec) << "restart never came";
    }
    const SimDuration outage = cluster.now() - crashed;
    if (round > 0) {
      EXPECT_GT(outage, last_outage) << "backoff did not grow on round "
                                     << round;
    }
    last_outage = outage;
    last_recovery = cluster.now();
  }
  EXPECT_EQ(manager.crash_streak(pod), 5);
  EXPECT_EQ(cluster.pod(pod).restarts, 5);
  (void)last_recovery;
}

TEST(RestartManager, StableRunResetsTheStreak) {
  Cluster cluster;
  cluster.add_host(small_host(4, 8 * GiB));
  const int pod = cluster.create_pod(0, {"p", res(500, 512 * MiB)},
                                     cpu_hog_workload(1, 600 * sec));
  RestartConfig config;
  config.period = 10 * msec;
  config.backoff_base = 100 * msec;
  config.reset_after = 1 * sec;
  RestartManager manager(cluster, config);
  cluster.add_component(&manager);

  cluster.crash_pod(pod);
  cluster.run_for(500 * msec);
  ASSERT_TRUE(cluster.pod(pod).running());
  ASSERT_EQ(manager.crash_streak(pod), 1);
  cluster.run_for(2 * sec);  // stable past reset_after
  EXPECT_EQ(manager.crash_streak(pod), 0);
}

TEST(RestartManager, ConvertsOomKillToCrashLoop) {
  Cluster cluster;
  container::HostConfig host = small_host(4, 2 * GiB);
  host.mem.swap_size = 0;  // no swap: exhausting RAM means an OOM kill
  cluster.add_host(host);
  // A hog that charges far past physical memory with no swap to absorb it:
  // the memory manager eventually OOM-kills the cgroup.
  const int pod = cluster.create_pod(0, {"glutton", res(500, 512 * MiB)},
                                     mem_hog_workload(16 * GiB, 8 * GiB));
  RestartConfig config;
  config.period = 50 * msec;
  config.backoff_base = 100 * msec;
  RestartManager manager(cluster, config);
  cluster.add_component(&manager);
  cluster.run_for(60 * sec);

  EXPECT_GT(manager.oom_crashes(), 0u)
      << "the glutton should have been OOM-killed and noticed";
  EXPECT_GT(manager.restarts_issued(), 0u);
  EXPECT_EQ(cluster.pod_crashes(), manager.oom_crashes());
}

TEST(FleetScenario, RecoveryKeepsServiceAvailableThroughHostCrash) {
  ClusterConfig cluster_config;
  cluster_config.seed = 7;
  harness::FleetScenario fleet(cluster_config);
  fleet.add_host(small_host(4, 8 * GiB));
  fleet.add_host(small_host(4, 8 * GiB));
  RouterConfig router;
  router.arrivals_per_sec = 400;
  fleet.enable_router(router);
  DetectorConfig detector;
  detector.period = 100 * msec;
  detector.miss_threshold = 2;
  RestartConfig restart;
  restart.period = 50 * msec;
  fleet.enable_recovery(detector, restart);
  server::WebConfig web;
  web.service_cpu = 4 * msec;
  // Pin one replica per host (strategy tie-breaks could co-locate them, and
  // the test needs a survivor).
  const int a = fleet.cluster().create_pod(0, {"web-a", res(1000, 1 * GiB)},
                                           web_replica(web));
  const int b = fleet.cluster().create_pod(1, {"web-b", res(1000, 1 * GiB)},
                                           web_replica(web));
  ASSERT_TRUE(fleet.router()->add_replica(a));
  ASSERT_TRUE(fleet.router()->add_replica(b));
  fleet.run(2 * sec);
  const std::uint64_t routed_before = fleet.router()->routed();
  ASSERT_GT(routed_before, 0u);

  // Kill whichever host holds pod 0; the detector evacuates, the router
  // keeps serving from the survivor, and no request is ever unroutable.
  fleet.cluster().crash_host(fleet.cluster().pod(0).host);
  fleet.run(3 * sec);
  EXPECT_GT(fleet.cluster().failovers(), 0u);
  EXPECT_TRUE(fleet.cluster().pod(0).running());
  EXPECT_TRUE(fleet.cluster().pod(1).running());
  EXPECT_GT(fleet.router()->routed(), routed_before);
  EXPECT_EQ(fleet.router()->unroutable(), 0u)
      << "one replica survived the crash; nothing should be unroutable";
}

TEST(FailureDetector, SimultaneousDeathsDoNotStackRefugeesOnOneTarget) {
  // Regression: the detector used to re-read host_views() after every
  // failover inside one evacuation round. The re-read restored the target's
  // *observed* slack (the refugee just landed and has burned nothing yet),
  // so every refugee of the round scored the same idle host best and piled
  // onto it, blowing straight past the headroom that made it attractive.
  // The fix claims each landing against the round's working views instead.
  Cluster cluster;
  cluster.add_host(small_host(8, 8 * GiB));  // dies
  cluster.add_host(small_host(8, 8 * GiB));  // dies
  cluster.add_host(small_host(8, 8 * GiB));  // idle: 8000m observed slack
  cluster.add_host(small_host(8, 8 * GiB));  // busy: ~2000m observed slack
  const int a = cluster.create_pod(0, {"a", res(7000, 512 * MiB)},
                                   cpu_hog_workload(7, 600 * sec));
  const int b = cluster.create_pod(1, {"b", res(7000, 512 * MiB)},
                                   cpu_hog_workload(7, 600 * sec));
  cluster.create_pod(3, {"busy", res(1000, 512 * MiB)},
                     cpu_hog_workload(6, 600 * sec));
  DetectorConfig config;
  config.period = 100 * msec;
  config.miss_threshold = 2;
  FailureDetector detector(cluster, config);
  cluster.add_component(&detector);
  cluster.run_for(1 * sec);  // observation windows see the real usage

  // Both hosts die in the same tick; both pods race for new homes in the
  // same evacuation round.
  cluster.crash_host(0);
  cluster.crash_host(1);
  cluster.run_for(1 * sec);

  ASSERT_TRUE(cluster.pod(a).running());
  ASSERT_TRUE(cluster.pod(b).running());
  EXPECT_EQ(cluster.failovers(), 2u);
  // The first refugee takes the idle host and consumes its headroom; the
  // claimed view must push the second to the busy-but-feasible one.
  EXPECT_NE(cluster.pod(a).host, cluster.pod(b).host)
      << "both refugees stacked onto one target from a stale view";
  EXPECT_EQ(cluster.pod(a).host, 2);
  EXPECT_EQ(cluster.pod(b).host, 3);
}

}  // namespace
}  // namespace arv::cluster
