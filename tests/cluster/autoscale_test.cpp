// Closed-loop autoscaling on effective views: the HorizontalAutoscaler's
// demand tracking (up under load, down after the lull, stabilization and
// surge clamps), the VerticalRecommender's live cgroup rewrites (quota-capped
// vs burstable), the ClusterAutoscaler's hysteresis-banded add/drain, the
// /sys/arv control-plane files, and the byte-identical-trace contract with
// all three loops enabled.
#include "src/cluster/autoscale.h"

#include <gtest/gtest.h>

#include <string>

#include "src/cgroup/cgroup.h"
#include "src/cluster/pod_workloads.h"
#include "src/cluster/router.h"
#include "src/container/host.h"
#include "src/harness/scenario.h"
#include "src/vfs/virtual_sysfs.h"

namespace arv::cluster {
namespace {

using namespace arv::units;

container::K8sResources res(std::int64_t millicpu, Bytes memory) {
  container::K8sResources r;
  r.request_millicpu = millicpu;
  r.request_memory = memory;
  return r;
}

container::HostConfig small_host(int cpus, Bytes ram) {
  container::HostConfig config;
  config.cpus = cpus;
  config.ram = ram;
  return config;
}

PodSpec web_template(CpuMode mode = CpuMode::kQuotaCapped) {
  PodSpec spec;
  spec.name = "web";
  spec.resources = res(1000, 256 * MiB);
  spec.cpu_mode = mode;
  return spec;
}

server::WebConfig web_config() {
  server::WebConfig web;
  web.service_cpu = 4 * msec;
  web.max_queue = 1000;
  return web;
}

/// Fleet with a router at `rate`, one seed replica on h0 adopted by an HPA
/// configured for fast tests (200 ms rounds, 1 s scale-down window).
struct HpaFleet {
  explicit HpaFleet(double rate, HpaConfig config = fast_config(),
                    int hosts = 4)
      : fleet() {
    for (int i = 0; i < hosts; ++i) {
      fleet.add_host(small_host(4, 8 * GiB));
    }
    fleet.enable_router(rate);
    seed = fleet.cluster().create_pod(0, web_template(), web_replica(web_config()));
    EXPECT_TRUE(fleet.router()->add_replica(seed));
    fleet.enable_hpa(web_template(), web_config(), config);
    fleet.hpa()->adopt(seed);
  }

  static HpaConfig fast_config() {
    HpaConfig config;
    config.period = 200 * msec;
    config.min_replicas = 1;
    config.max_replicas = 8;
    config.request_cpu = 4 * msec;  // matches web_config().service_cpu
    config.up_stabilization = 200 * msec;
    config.down_stabilization = 1 * sec;
    return config;
  }

  harness::FleetScenario fleet;
  int seed = -1;
};

TEST(Hpa, TracksDiurnalDemandUpAndBackDown) {
  HpaFleet f(/*rate=*/40);
  HorizontalAutoscaler& hpa = *f.fleet.hpa();

  // Quiet phase: one replica absorbs 40/s * 4ms = 16% of one core.
  f.fleet.run(1 * sec);
  EXPECT_EQ(hpa.replicas(), 1);
  EXPECT_EQ(hpa.scale_ups(), 0u);

  // Peak: 3000/s * 4ms = 12 cores of demand — far beyond one replica's
  // effective capacity, whatever its view converged to.
  f.fleet.router()->set_rate(3000);
  f.fleet.run(2 * sec);
  EXPECT_GE(hpa.replicas(), 3);
  EXPECT_GE(hpa.scale_ups(), 2u);
  const int peak = hpa.replicas();

  // Lull: demand collapses; after the scale-down window drains the peak
  // recommendations, replicas walk back down (max_scale_down per round).
  f.fleet.router()->set_rate(40);
  f.fleet.run(4 * sec);
  EXPECT_LT(hpa.replicas(), peak);
  EXPECT_LE(hpa.replicas(), 2);
  EXPECT_GE(hpa.scale_downs(), 1u);
  // Stopped replicas stay enrolled; the rotation never shrinks.
  EXPECT_EQ(f.fleet.router()->replica_count(), 1 + static_cast<int>(hpa.scale_ups()));
}

TEST(Hpa, ClampsAtMaxReplicas) {
  HpaConfig config = HpaFleet::fast_config();
  config.max_replicas = 3;
  config.up_stabilization = 0;
  HpaFleet f(/*rate=*/20000, config);
  f.fleet.run(2 * sec);
  EXPECT_EQ(f.fleet.hpa()->replicas(), 3);
  EXPECT_EQ(f.fleet.hpa()->desired(), 3);  // the clamp, not the raw demand
}

TEST(Hpa, UpStabilizationHoldsBriefBreaches) {
  HpaConfig config = HpaFleet::fast_config();
  config.up_stabilization = 5 * sec;  // longer than the whole run
  HpaFleet f(/*rate=*/20000, config);
  f.fleet.run(1500 * msec);
  EXPECT_EQ(f.fleet.hpa()->replicas(), 1);
  EXPECT_EQ(f.fleet.hpa()->scale_ups(), 0u);
  EXPECT_GT(f.fleet.hpa()->held(), 0u);
  EXPECT_GT(f.fleet.hpa()->desired(), 1);  // it wanted to, and was held
}

TEST(Hpa, DefersWhenNoHostHasEffectiveSlack) {
  HpaConfig config = HpaFleet::fast_config();
  config.up_stabilization = 0;
  HpaFleet f(/*rate=*/20000, config, /*hosts=*/1);
  // Saturate the only host: the effective strategy sees no observed slack,
  // so every wanted scale-up is deferred, not placed.
  f.fleet.cluster().create_pod(0, {"hog", res(500, 256 * MiB)},
                               cpu_hog_workload(4, 600 * sec));
  f.fleet.run(2 * sec);
  EXPECT_GT(f.fleet.hpa()->deferred(), 0u);
  EXPECT_EQ(f.fleet.hpa()->replicas(), 1);
}

TEST(Vpa, RewritesQuotaCappedPodFromObservedUsage) {
  harness::FleetScenario fleet;
  fleet.add_host(small_host(4, 8 * GiB));
  VpaConfig config;
  config.window_rounds = 10;
  config.recommend_every = 2;
  fleet.enable_vpa(config);

  // Declared limit 4000m (quota 400 ms / 100 ms period); actual usage a
  // steady 2 cores. The recommender must shrink the quota toward observed
  // p95 and raise the request-derived shares toward observed p50.
  PodSpec spec;
  spec.name = "sized";
  spec.resources = res(500, 256 * MiB);
  spec.resources.limit_millicpu = 4000;
  Cluster& cluster = fleet.cluster();
  const int pod =
      cluster.create_pod(0, spec, cpu_hog_workload(2, 600 * sec));
  const cgroup::CgroupId cg = cluster.pod(pod).container->cgroup();
  EXPECT_EQ(cluster.host(0).cgroups().get(cg).cpu().cfs_quota_us, 400'000);

  fleet.run(3 * sec);
  VerticalRecommender& vpa = *fleet.vpa();
  EXPECT_GT(vpa.rewrites(), 0u);
  const auto& cpu = cluster.host(0).cgroups().get(cg).cpu();
  // ~2000m observed p95 * 1.2 margin = ~240 ms; well under the declared cap
  // and comfortably above actual burn (no self-inflicted throttling).
  EXPECT_LT(cpu.cfs_quota_us, 400'000);
  EXPECT_GT(cpu.cfs_quota_us, 200'000);
  // Shares follow observed p50 (~2000m -> ~2048), up from the declared
  // request's 512.
  EXPECT_GT(cpu.shares, 1024);
  // A hog that commits nothing gets its memory capped near the floor.
  EXPECT_NE(cluster.host(0).cgroups().get(cg).mem().limit_in_bytes,
            kUnlimited);
  // Steady usage => later recommendations sit inside the min_change band.
  EXPECT_GT(vpa.held(), 0u);
}

TEST(Vpa, BurstablePodNeverGetsAQuota) {
  harness::FleetScenario fleet;
  fleet.add_host(small_host(4, 8 * GiB));
  fleet.add_host(small_host(4, 8 * GiB));
  VpaConfig config;
  config.window_rounds = 10;
  config.recommend_every = 2;
  fleet.enable_vpa(config);

  PodSpec spec;
  spec.name = "bursty";
  spec.resources = res(500, 256 * MiB);
  spec.resources.limit_millicpu = 4000;  // would mean a 400 ms quota...
  spec.cpu_mode = CpuMode::kBurstable;   // ...but burstable strips it
  Cluster& cluster = fleet.cluster();
  const int pod =
      cluster.create_pod(0, spec, cpu_hog_workload(2, 600 * sec));
  const auto quota_of = [&](int host) {
    return cluster.host(host)
        .cgroups()
        .get(cluster.pod(pod).container->cgroup())
        .cpu()
        .cfs_quota_us;
  };
  EXPECT_EQ(quota_of(0), kUnlimited);

  fleet.run(3 * sec);
  EXPECT_EQ(quota_of(0), kUnlimited) << "VPA must not quota a burstable pod";
  EXPECT_GT(fleet.vpa()->rewrites(), 0u);  // shares/memory still managed
  EXPECT_GT(quota_of(0) == kUnlimited ? fleet.vpa()->cpu_raised() : 0u, 0u);

  // The mode is part of the spec, so it survives a re-landing.
  cluster.migrate_pod(pod, 1);
  fleet.run(1 * sec);
  ASSERT_TRUE(cluster.pod(pod).running());
  ASSERT_EQ(cluster.pod(pod).host, 1);
  EXPECT_EQ(quota_of(1), kUnlimited);
}

CaConfig fast_ca() {
  CaConfig config;
  config.period = 100 * msec;
  config.band_rounds = 2;
  config.cooldown = 300 * msec;
  return config;
}

TEST(Ca, UncordonsParkedHostWhenSlackCollapses) {
  harness::FleetScenario fleet;
  fleet.add_host(small_host(4, 8 * GiB));
  fleet.add_host(small_host(4, 8 * GiB));
  fleet.cluster().cordon_host(1, true);  // parked spare
  CaConfig config = fast_ca();
  config.cooldown = 30 * sec;  // one decision is the test; no flap-back
  fleet.enable_cluster_autoscaler(config);
  // Saturate the only active host.
  fleet.cluster().create_pod(0, {"hog", res(500, 256 * MiB)},
                             cpu_hog_workload(4, 600 * sec));

  fleet.run(2 * sec);
  ClusterAutoscaler& ca = *fleet.cluster_autoscaler();
  EXPECT_EQ(ca.hosts_added(), 1u);
  EXPECT_FALSE(fleet.cluster().host_cordoned(1));
  EXPECT_EQ(fleet.cluster().active_hosts(), 2);
  EXPECT_LT(ca.slack_permille(), 1000);
}

TEST(Ca, DrainsIdleFleetToMinHostsThroughMigration) {
  harness::FleetScenario fleet;
  for (int i = 0; i < 3; ++i) {
    fleet.add_host(small_host(4, 8 * GiB));
  }
  CaConfig config = fast_ca();
  config.min_hosts = 2;
  fleet.enable_cluster_autoscaler(config);
  // A nearly idle fleet (each hog burns 100 ms total, then sleeps). h2 ties
  // h1 on pod count; the highest index drains first, h0 (the control-plane
  // host) last.
  Cluster& cluster = fleet.cluster();
  cluster.create_pod(0, {"a", res(200, 128 * MiB)},
                     cpu_hog_workload(1, 100 * msec));
  cluster.create_pod(0, {"b", res(200, 128 * MiB)},
                     cpu_hog_workload(1, 100 * msec));
  cluster.create_pod(1, {"c", res(200, 128 * MiB)},
                     cpu_hog_workload(1, 100 * msec));
  const int evictee = cluster.create_pod(2, {"d", res(200, 128 * MiB)},
                                         cpu_hog_workload(1, 100 * msec));

  fleet.run(3 * sec);
  ClusterAutoscaler& ca = *fleet.cluster_autoscaler();
  EXPECT_EQ(ca.hosts_drained(), 1u);
  EXPECT_GE(ca.drain_migrations(), 1u);
  EXPECT_TRUE(cluster.host_cordoned(2));
  EXPECT_EQ(cluster.pods_on(2), 0);
  EXPECT_TRUE(cluster.pod(evictee).running());
  EXPECT_NE(cluster.pod(evictee).host, 2);
  // min_hosts floors the shrink: h0 and h1 stay, however idle.
  EXPECT_EQ(cluster.active_hosts(), 2);
  EXPECT_EQ(ca.draining(), -1);
}

TEST(ControlPlane, SysArvFilesExposeAutoscalerState) {
  harness::FleetScenario fleet;
  for (int i = 0; i < 2; ++i) {
    fleet.add_host(small_host(4, 8 * GiB));
  }
  fleet.enable_router(500);
  const int seed = fleet.cluster().create_pod(0, web_template(),
                                              web_replica(web_config()));
  ASSERT_TRUE(fleet.router()->add_replica(seed));
  fleet.enable_hpa(web_template(), web_config(), HpaFleet::fast_config());
  fleet.hpa()->adopt(seed);
  fleet.enable_vpa();
  fleet.enable_cluster_autoscaler();
  fleet.run(1 * sec);

  const vfs::PseudoFs& fs = fleet.cluster().host(0).sysfs().host_fs();
  const auto read_int = [&](const std::string& path) {
    const auto contents = fs.read(path);
    EXPECT_TRUE(contents.has_value()) << path;
    return contents ? std::stoll(*contents) : -1;
  };
  EXPECT_GE(read_int("/sys/arv/autoscale/web/replicas"), 1);
  EXPECT_GE(read_int("/sys/arv/autoscale/web/desired"), 1);
  EXPECT_GE(read_int("/sys/arv/autoscale/web/scale_ups"), 0);
  EXPECT_GE(read_int("/sys/arv/autoscale/web/scale_downs"), 0);
  EXPECT_GE(read_int("/sys/arv/vpa/rewrites"), 0);
  EXPECT_EQ(read_int("/sys/arv/autoscale/cluster/hosts"), 2);
  EXPECT_GE(read_int("/sys/arv/autoscale/cluster/slack_permille"), 0);
}

/// The acceptance pin for the whole subsystem: a fleet running all three
/// autoscaling loops through a rate swing must produce byte-identical traces
/// at any host-phase thread count.
std::string run_autoscaled(int threads) {
  ClusterConfig config;
  config.seed = 42;
  config.enable_tracing = true;
  config.trace_interval = 10 * msec;
  config.threads = threads;
  harness::FleetScenario fleet(config);
  for (int i = 0; i < 4; ++i) {
    fleet.add_host(small_host(4, 8 * GiB));
  }
  fleet.cluster().cordon_host(3, true);  // CA headroom
  fleet.enable_router(100);
  const int seed_pod = fleet.cluster().create_pod(0, web_template(),
                                                  web_replica(web_config()));
  EXPECT_TRUE(fleet.router()->add_replica(seed_pod));
  fleet.enable_hpa(web_template(), web_config(), HpaFleet::fast_config());
  fleet.hpa()->adopt(seed_pod);
  VpaConfig vpa;
  vpa.window_rounds = 10;
  vpa.recommend_every = 2;
  fleet.enable_vpa(vpa);
  fleet.enable_cluster_autoscaler(fast_ca());

  fleet.run(1 * sec);
  fleet.router()->set_rate(2500);  // flash crowd
  fleet.run(2 * sec);
  fleet.router()->set_rate(100);  // and the hangover
  fleet.run(2 * sec);
  EXPECT_GT(fleet.hpa()->scale_ups(), 0u);
  EXPECT_GT(fleet.vpa()->rewrites(), 0u);
  return fleet.cluster().trace()->to_csv();
}

TEST(Autoscale, TracesAreByteIdenticalAcrossThreadCounts) {
  const std::string parallel = run_autoscaled(/*threads=*/4);
  const std::string serial = run_autoscaled(/*threads=*/1);
  ASSERT_FALSE(parallel.empty());
  ASSERT_EQ(parallel, serial)
      << "autoscaler decisions must not depend on host-phase sharding";
}

}  // namespace
}  // namespace arv::cluster
