// TraceAssert — gtest predicates over a recorded trace.
//
// Each helper checks one algorithmic invariant across every sample of a
// TraceRecorder run and returns ::testing::AssertionResult, so failures
// carry the sample index, simulated time, and offending values instead of a
// bare boolean. Series are addressed by qualified name ("scope.name" for
// container series) so tests read like the invariants they encode:
//
//   EXPECT_TRUE(trace::WithinBounds(rec, "c0.e_cpu", "c0.cpu_lower",
//                                   "c0.cpu_upper"));
//
// The step/reset matchers assume per-tick sampling (sample_interval == 0):
// they correlate value changes with the update-round counters recorded in
// the same row, which is exact only when no rows are skipped.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/trace_recorder.h"

namespace arv::testing::trace {

namespace detail {

/// Resolves `name` or appends a failure message; the caller returns early
/// when the result is null.
inline const std::vector<std::int64_t>* resolve(
    const obs::TraceRecorder& rec, std::string_view name,
    ::testing::AssertionResult& failure) {
  const auto handle = rec.find(name);
  if (!handle.has_value()) {
    failure << "no series named \"" << name << "\" is registered";
    return nullptr;
  }
  return &rec.values(*handle);
}

inline SimTime time_at(const obs::TraceRecorder& rec, std::size_t row) {
  return rec.times().at(row);
}

}  // namespace detail

/// The series never decreases — the defining property of a counter.
inline ::testing::AssertionResult NonDecreasing(const obs::TraceRecorder& rec,
                                                std::string_view name) {
  auto failure = ::testing::AssertionFailure();
  const auto* values = detail::resolve(rec, name, failure);
  if (values == nullptr) {
    return failure;
  }
  for (std::size_t i = 1; i < values->size(); ++i) {
    if ((*values)[i] < (*values)[i - 1]) {
      return ::testing::AssertionFailure()
             << "counter \"" << name << "\" decreased from " << (*values)[i - 1]
             << " to " << (*values)[i] << " at sample " << i << " (t="
             << detail::time_at(rec, i) << "us)";
    }
  }
  return ::testing::AssertionSuccess();
}

/// Every series registered as a counter is monotonically non-decreasing.
inline ::testing::AssertionResult AllCountersMonotonic(
    const obs::TraceRecorder& rec) {
  for (obs::SeriesHandle h = 0; h < rec.series_count(); ++h) {
    if (rec.info(h).kind != obs::SeriesKind::kCounter) {
      continue;
    }
    auto result = NonDecreasing(rec, rec.qualified_name(h));
    if (!result) {
      return result;
    }
  }
  return ::testing::AssertionSuccess();
}

/// lower[i] <= value[i] <= upper[i] at every sample — Algorithm 1's
/// LOWER/UPPER invariant (and Algorithm 2's soft/hard one) as recorded.
inline ::testing::AssertionResult WithinBounds(const obs::TraceRecorder& rec,
                                               std::string_view value,
                                               std::string_view lower,
                                               std::string_view upper) {
  auto failure = ::testing::AssertionFailure();
  const auto* v = detail::resolve(rec, value, failure);
  const auto* lo = detail::resolve(rec, lower, failure);
  const auto* hi = detail::resolve(rec, upper, failure);
  if (v == nullptr || lo == nullptr || hi == nullptr) {
    return failure;
  }
  for (std::size_t i = 0; i < v->size(); ++i) {
    if ((*v)[i] < (*lo)[i] || (*v)[i] > (*hi)[i]) {
      return ::testing::AssertionFailure()
             << "\"" << value << "\" = " << (*v)[i] << " outside [\"" << lower
             << "\" = " << (*lo)[i] << ", \"" << upper << "\" = " << (*hi)[i]
             << "] at sample " << i << " (t=" << detail::time_at(rec, i)
             << "us)";
    }
  }
  return ::testing::AssertionSuccess();
}

/// |value[i] - value[i-1]| <= max_step * (rounds[i] - rounds[i-1]) — the
/// Algorithm 1 rule that e_cpu moves at most one step per update round.
inline ::testing::AssertionResult StepBounded(const obs::TraceRecorder& rec,
                                              std::string_view value,
                                              std::string_view rounds,
                                              std::int64_t max_step) {
  auto failure = ::testing::AssertionFailure();
  const auto* v = detail::resolve(rec, value, failure);
  const auto* r = detail::resolve(rec, rounds, failure);
  if (v == nullptr || r == nullptr) {
    return failure;
  }
  for (std::size_t i = 1; i < v->size(); ++i) {
    const std::int64_t delta = (*v)[i] - (*v)[i - 1];
    const std::int64_t magnitude = delta < 0 ? -delta : delta;
    const std::int64_t budget = max_step * ((*r)[i] - (*r)[i - 1]);
    if (magnitude > budget) {
      return ::testing::AssertionFailure()
             << "\"" << value << "\" moved by " << delta << " across "
             << ((*r)[i] - (*r)[i - 1]) << " update round(s) of \"" << rounds
             << "\" (budget " << budget << ") at sample " << i << " (t="
             << detail::time_at(rec, i) << "us)";
    }
  }
  return ::testing::AssertionSuccess();
}

/// Whenever an update round completed (rounds increased) while `active` is
/// nonzero, value[i] == target[i] — Algorithm 2's kswapd reset: an effective
/// memory recomputed during reclaim must sit exactly at the soft limit.
inline ::testing::AssertionResult ResetsUnderPressure(
    const obs::TraceRecorder& rec, std::string_view value,
    std::string_view target, std::string_view rounds,
    std::string_view active) {
  auto failure = ::testing::AssertionFailure();
  const auto* v = detail::resolve(rec, value, failure);
  const auto* t = detail::resolve(rec, target, failure);
  const auto* r = detail::resolve(rec, rounds, failure);
  const auto* a = detail::resolve(rec, active, failure);
  if (v == nullptr || t == nullptr || r == nullptr || a == nullptr) {
    return failure;
  }
  for (std::size_t i = 1; i < v->size(); ++i) {
    const bool updated = (*r)[i] > (*r)[i - 1];
    if (updated && (*a)[i] != 0 && (*v)[i] != (*t)[i]) {
      return ::testing::AssertionFailure()
             << "\"" << value << "\" = " << (*v)[i] << " but \"" << active
             << "\" is active and an update round completed, so it must equal "
             << "\"" << target << "\" = " << (*t)[i] << " at sample " << i
             << " (t=" << detail::time_at(rec, i) << "us)";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace arv::testing::trace
