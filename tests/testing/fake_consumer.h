// Shared test double: a Schedulable with a fixed thread count that just
// accumulates its grants.
#pragma once

#include "src/sched/fair_scheduler.h"

namespace arv::testing {

class FakeConsumer : public sched::Schedulable {
 public:
  explicit FakeConsumer(int threads) : threads_(threads) {}

  int runnable_threads() const override { return threads_; }

  void consume(SimTime /*now*/, SimDuration /*dt*/, CpuTime grant) override {
    total_ += grant;
    last_ = grant;
    ++consume_calls_;
  }

  CpuTime total() const { return total_; }
  CpuTime last() const { return last_; }
  int consume_calls() const { return consume_calls_; }
  void set_threads(int threads) { threads_ = threads; }

 private:
  int threads_;
  CpuTime total_ = 0;
  CpuTime last_ = 0;
  int consume_calls_ = 0;
};

}  // namespace arv::testing
