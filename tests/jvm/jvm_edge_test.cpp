// JVM edge cases: kernel OOM kill, JDK-10 end-to-end, trace contents,
// throughput accounting under stalls.
#include <gtest/gtest.h>

#include "src/jvm/jvm.h"
#include "src/workloads/hogs.h"

namespace arv::jvm {
namespace {

using namespace arv::units;

struct Fixture {
  explicit Fixture(int cpus = 8, Bytes ram = 16 * GiB)
      : host(host_config(cpus, ram)), runtime(host) {}

  static container::HostConfig host_config(int cpus, Bytes ram) {
    container::HostConfig config;
    config.cpus = cpus;
    config.ram = ram;
    config.mem.swap_size = 0;  // hard-limit breaches kill (edge-case focus)
    return config;
  }

  container::Host host;
  container::ContainerRuntime runtime;
};

JavaWorkload greedy() {
  JavaWorkload w;
  w.name = "greedy";
  w.total_work = 20 * sec;
  w.mutator_threads = 4;
  w.alloc_per_cpu_sec = 400 * MiB;
  w.live_set = 2 * GiB;
  w.survival_ratio = 0.5;
  return w;
}

TEST(JvmEdge, CgroupOomKillReportsKilled) {
  // No swap: the first charge past the hard limit kills the container, and
  // the JVM must report kKilled (not OutOfMemoryError).
  Fixture f;
  container::ContainerConfig config;
  config.mem_limit = 512 * MiB;
  config.enable_resource_view = false;
  auto& c = f.runtime.run(config);
  Jvm jvm(f.host, c, {.kind = JvmKind::kVanilla8}, greedy());  // 4 GiB max heap
  f.host.engine().run_until([&] { return jvm.finished(); }, 3600 * sec);
  EXPECT_EQ(jvm.state(), JvmState::kKilled);
  EXPECT_TRUE(jvm.stats().killed);
  EXPECT_FALSE(jvm.stats().completed);
  EXPECT_TRUE(f.host.memory().oom_killed(c.cgroup()));
}

TEST(JvmEdge, Jdk10EndToEndUsesShareDerivedThreads) {
  Fixture f(20, 64 * GiB);
  // Ten equal-share containers; only one runs Java (Figure 8's setup).
  std::vector<container::Container*> peers;
  for (int i = 0; i < 9; ++i) {
    container::ContainerConfig config;
    config.name = "peer" + std::to_string(i);
    config.enable_resource_view = false;
    peers.push_back(&f.runtime.run(config));
  }
  container::ContainerConfig config;
  config.name = "java";
  config.enable_resource_view = false;
  auto& c = f.runtime.run(config);
  auto w = greedy();
  w.live_set = 128 * MiB;
  w.survival_ratio = 0.1;
  w.total_work = 3 * sec;
  Jvm jvm(f.host, c, {.kind = JvmKind::kJdk10, .xmx = 1 * GiB}, w);
  EXPECT_EQ(jvm.launch().gc_worker_pool, 2);  // ceil(20/10) share CPUs
  f.host.engine().run_until([&] { return jvm.finished(); }, 3600 * sec);
  EXPECT_TRUE(jvm.stats().completed);
  for (const auto& sample : jvm.gc_thread_trace()) {
    EXPECT_LE(sample.workers, 2);
  }
}

TEST(JvmEdge, GcTraceDistinguishesMinorAndMajor) {
  Fixture f(8, 32 * GiB);
  container::ContainerConfig config;
  config.enable_resource_view = false;
  auto& c = f.runtime.run(config);
  auto w = greedy();
  w.live_set = 64 * MiB;
  w.survival_ratio = 0.6;  // heavy promotion => majors
  w.total_work = 6 * sec;
  Jvm jvm(f.host, c, {.kind = JvmKind::kVanilla8, .xmx = 256 * MiB}, w);
  f.host.engine().run_until([&] { return jvm.finished(); }, 3600 * sec);
  ASSERT_TRUE(jvm.stats().completed);
  int minors = 0;
  int majors = 0;
  for (const auto& sample : jvm.gc_thread_trace()) {
    (sample.phase == GcPhase::kMinor ? minors : majors) += 1;
  }
  EXPECT_EQ(minors, jvm.stats().minor_gcs);
  EXPECT_EQ(majors, jvm.stats().major_gcs);
  EXPECT_GT(majors, 0);
  EXPECT_GT(jvm.stats().major_gc_time, 0);
}

TEST(JvmEdge, StallTimeExcludedFromCpuButCountedInWall) {
  container::HostConfig host_config;
  host_config.cpus = 4;
  host_config.ram = 8 * GiB;  // swap stays enabled here
  container::Host host(host_config);
  container::ContainerRuntime runtime(host);
  container::ContainerConfig config;
  config.mem_limit = 256 * MiB;
  config.enable_resource_view = false;
  auto& c = runtime.run(config);
  auto w = greedy();
  w.live_set = 400 * MiB;  // exceeds the hard limit => swap-backed
  w.survival_ratio = 0.5;
  w.total_work = 2 * sec;
  Jvm jvm(host, c, {.kind = JvmKind::kVanilla8, .xmx = 1 * GiB}, w);
  host.engine().run_until([&] { return jvm.finished(); }, 7200 * sec);
  ASSERT_GT(jvm.stats().stall_time, 0);
  // Wall time covers CPU work plus stalls: it must exceed the pure-CPU
  // lower bound (total_work / cpus) by at least the stall time.
  EXPECT_GT(jvm.stats().exec_time(),
            2 * sec / 4 + jvm.stats().stall_time / 2);
}

TEST(JvmEdge, FinishedJvmIgnoresFurtherGrants) {
  Fixture f;
  auto& c = f.runtime.run({});
  auto w = greedy();
  w.live_set = 32 * MiB;
  w.survival_ratio = 0.05;
  w.total_work = 500 * msec;
  Jvm jvm(f.host, c, {.kind = JvmKind::kAdaptive, .xmx = 512 * MiB}, w);
  f.host.engine().run_until([&] { return jvm.finished(); }, 3600 * sec);
  const auto end_time = jvm.stats().end_time;
  const auto gcs = jvm.stats().minor_gcs;
  f.host.run_for(1 * sec);
  EXPECT_EQ(jvm.stats().end_time, end_time);
  EXPECT_EQ(jvm.stats().minor_gcs, gcs);
}

}  // namespace
}  // namespace arv::jvm
