#include "src/jvm/gc_tasks.h"

#include <gtest/gtest.h>

#include <numeric>

namespace arv::jvm {
namespace {

using namespace arv::units;

TEST(GcTaskQueue, FifoOrder) {
  GcTaskQueue q;
  q.push({GcTaskKind::kScavengeRoots, 10, 0});
  q.push({GcTaskKind::kSteal, 20, 0});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().kind, GcTaskKind::kScavengeRoots);
  EXPECT_EQ(q.pop().kind, GcTaskKind::kSteal);
  EXPECT_TRUE(q.empty());
}

TEST(GcSession, BeginFillsQueueFromLiveBytes) {
  GcSession gc;
  gc.begin(GcPhase::kMinor, 0, 4, 64 * MiB, 600, 2 * msec, 0.03, 0.25);
  EXPECT_TRUE(gc.active());
  EXPECT_EQ(gc.phase(), GcPhase::kMinor);
  EXPECT_EQ(gc.active_workers(), 4);
  // 64 MiB at 4 MiB per stripe = 16 scan tasks + 4 fixed tasks.
  EXPECT_EQ(gc.tasks_remaining(), 20u);
}

TEST(GcSession, AdvanceDrainsWorkAndScansBytes) {
  GcSession gc;
  gc.begin(GcPhase::kMinor, 0, 1, 8 * MiB, 1000 /*us per MiB*/, 0, 0.0, 0.0);
  // Total work = 8 MiB * 1000us = 8000us. One worker, full efficiency.
  Bytes scanned = 0;
  for (int tick = 0; tick < 8; ++tick) {
    scanned += gc.advance(1 * msec, 1 * msec);
  }
  EXPECT_TRUE(gc.done());
  EXPECT_EQ(scanned, 8 * MiB);
}

TEST(GcSession, FinishReportsTotals) {
  GcSession gc;
  gc.begin(GcPhase::kMajor, 100, 2, 4 * MiB, 500, 0, 0.0, 0.0);
  while (!gc.done()) {
    gc.advance(2 * msec, 1 * msec);
  }
  const GcSessionResult result = gc.finish(5100);
  EXPECT_EQ(result.phase, GcPhase::kMajor);
  EXPECT_EQ(result.start, 100);
  EXPECT_EQ(result.end, 5100);
  EXPECT_EQ(result.active_workers, 2);
  EXPECT_EQ(result.bytes_scanned, 4 * MiB);
  EXPECT_GT(result.cpu_spent, 0);
  EXPECT_FALSE(gc.active());  // reusable
}

TEST(GcSession, MoreWorkersFinishFasterUpToCpus) {
  // With alpha > 0 but enough CPUs, 4 workers beat 1 worker on wall time.
  auto run_gc = [](int workers, CpuTime grant_per_tick) {
    GcSession gc;
    gc.begin(GcPhase::kMinor, 0, workers, 32 * MiB, 1000, 0, 0.03, 0.25);
    int ticks = 0;
    while (!gc.done() && ticks < 100000) {
      gc.advance(grant_per_tick, 1 * msec);
      ++ticks;
    }
    return ticks;
  };
  const int one = run_gc(1, 1 * msec);       // 1 worker, 1 CPU
  const int four = run_gc(4, 4 * msec);      // 4 workers, 4 CPUs
  EXPECT_LT(four, one);
}

TEST(GcSession, OverthreadingHurts) {
  // 20 workers on 4 granted CPUs is slower than 4 workers on 4 CPUs.
  auto run_gc = [](int workers) {
    GcSession gc;
    gc.begin(GcPhase::kMinor, 0, workers, 32 * MiB, 1000, 0, 0.03, 0.25);
    int ticks = 0;
    while (!gc.done() && ticks < 1000000) {
      gc.advance(4 * msec, 1 * msec);  // scheduler grants 4 CPUs
      ++ticks;
    }
    return ticks;
  };
  EXPECT_GT(run_gc(20), run_gc(4));
}

TEST(GcSession, SynchronizationOverheadIsSublinear) {
  // Doubling workers with matching CPUs never doubles speed when alpha > 0.
  auto ticks_for = [](int workers) {
    GcSession gc;
    gc.begin(GcPhase::kMinor, 0, workers, 64 * MiB, 1000, 0, 0.05, 0.0);
    int ticks = 0;
    while (!gc.done() && ticks < 1000000) {
      gc.advance(static_cast<CpuTime>(workers) * msec, 1 * msec);
      ++ticks;
    }
    return ticks;
  };
  const int t4 = ticks_for(4);
  const int t8 = ticks_for(8);
  EXPECT_LT(t8, t4);            // still faster...
  EXPECT_GT(t8 * 2, t4);        // ...but less than 2x
}

TEST(GcSession, ZeroGrantMakesNoProgress) {
  GcSession gc;
  gc.begin(GcPhase::kMinor, 0, 2, 8 * MiB, 1000, 0, 0.0, 0.0);
  EXPECT_EQ(gc.advance(0, 1 * msec), 0);
  EXPECT_FALSE(gc.done());
}

TEST(GcSession, PartialTaskProgressCarries) {
  GcSession gc;
  // One 4 MiB stripe = 4000us of work; feed it 100us at a time.
  gc.begin(GcPhase::kMinor, 0, 1, 4 * MiB, 1000, 0, 0.0, 0.0);
  Bytes scanned = 0;
  int ticks = 0;
  while (!gc.done() && ticks < 10000) {
    scanned += gc.advance(100, 1 * msec);
    ++ticks;
  }
  EXPECT_TRUE(gc.done());
  EXPECT_EQ(scanned, 4 * MiB);
}

TEST(GcSession, TasksSpreadAcrossWorkers) {
  GcSession gc;
  gc.begin(GcPhase::kMinor, 0, 4, 64 * MiB, 600, 2 * msec, 0.0, 0.0);
  while (!gc.done()) {
    gc.advance(4 * msec, 1 * msec);
  }
  const auto& per_worker = gc.tasks_per_worker();
  ASSERT_EQ(per_worker.size(), 4u);
  const auto total = std::accumulate(per_worker.begin(), per_worker.end(), 0ull);
  EXPECT_EQ(total, 20u);
  for (const auto count : per_worker) {
    EXPECT_GT(count, 0u);
  }
}

TEST(HotspotDefaults, GcThreadFormula) {
  EXPECT_EQ(hotspot_default_gc_threads(1), 1);
  EXPECT_EQ(hotspot_default_gc_threads(4), 4);
  EXPECT_EQ(hotspot_default_gc_threads(8), 8);
  EXPECT_EQ(hotspot_default_gc_threads(16), 13);
  EXPECT_EQ(hotspot_default_gc_threads(20), 15);  // the paper's host
  EXPECT_EQ(hotspot_default_gc_threads(64), 43);
}

struct ActiveWorkerParam {
  int pool;
  int mutators;
  Bytes heap;
  int expected;
};

class ActiveWorkers : public ::testing::TestWithParam<ActiveWorkerParam> {};

TEST_P(ActiveWorkers, Heuristic) {
  const auto p = GetParam();
  EXPECT_EQ(hotspot_active_workers(p.pool, p.mutators, p.heap), p.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ActiveWorkers,
    ::testing::Values(
        // Tiny heap bounds workers regardless of mutators.
        ActiveWorkerParam{15, 16, 64 * MiB, 1},
        ActiveWorkerParam{15, 16, 256 * MiB, 4},
        // Mutator bound: 1 mutator => at most 2 workers.
        ActiveWorkerParam{15, 1, 10 * GiB, 2},
        // Pool clamps everything.
        ActiveWorkerParam{4, 16, 10 * GiB, 4},
        // Floor of 1.
        ActiveWorkerParam{15, 0, 1 * MiB, 1}));

TEST(GcSessionDeath, DoubleBeginAborts) {
  GcSession gc;
  gc.begin(GcPhase::kMinor, 0, 1, MiB, 100, 0, 0.0, 0.0);
  EXPECT_DEATH(gc.begin(GcPhase::kMinor, 0, 1, MiB, 100, 0, 0.0, 0.0),
               "in progress");
}

TEST(GcSessionDeath, FinishWithWorkOutstandingAborts) {
  GcSession gc;
  gc.begin(GcPhase::kMinor, 0, 1, 8 * MiB, 1000, 0, 0.0, 0.0);
  EXPECT_DEATH(gc.finish(10), "outstanding");
}

}  // namespace
}  // namespace arv::jvm
