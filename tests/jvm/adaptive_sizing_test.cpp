#include "src/jvm/adaptive_sizing.h"

#include <gtest/gtest.h>

namespace arv::jvm {
namespace {

using namespace arv::units;

MinorObservation minor_obs(SimDuration pause, SimDuration interval) {
  MinorObservation obs;
  obs.pause = pause;
  obs.mutator_interval = interval;
  obs.young_committed = 100 * MiB;
  obs.old_committed = 200 * MiB;
  obs.old_used = 50 * MiB;
  return obs;
}

TEST(AdaptiveSizePolicy, GrowsYoungWhenGcsAreBackToBack) {
  AdaptiveSizePolicy policy;
  // Interval of 10 pauses < grow_ratio (15) => grow.
  const auto d = policy.after_minor(minor_obs(10 * msec, 100 * msec));
  EXPECT_EQ(d.young_target, 150 * MiB);
  EXPECT_EQ(d.old_target, 200 * MiB);  // old untouched at 25% usage
}

TEST(AdaptiveSizePolicy, ShrinksYoungWhenMutatorRunsLong) {
  AdaptiveSizePolicy policy;
  const auto d = policy.after_minor(minor_obs(10 * msec, 2000 * msec));
  EXPECT_EQ(d.young_target, 85 * MiB);
}

TEST(AdaptiveSizePolicy, StableBetweenThresholds) {
  AdaptiveSizePolicy policy;
  const auto d = policy.after_minor(minor_obs(10 * msec, 500 * msec));
  EXPECT_EQ(d.young_target, 100 * MiB);
}

TEST(AdaptiveSizePolicy, GrowsOldAboveTrigger) {
  AdaptiveSizePolicy policy;
  auto obs = minor_obs(10 * msec, 500 * msec);
  obs.old_used = 150 * MiB;  // 75% > 70% trigger
  const auto d = policy.after_minor(obs);
  EXPECT_EQ(d.old_target, 225 * MiB);  // used * 1.5 headroom
}

TEST(AdaptiveSizePolicy, ZeroPauseHandled) {
  AdaptiveSizePolicy policy;
  const auto d = policy.after_minor(minor_obs(0, 0));
  // interval 0 < grow_ratio * max(pause,1) => grow path, no crash.
  EXPECT_GT(d.young_target, 100 * MiB);
}

TEST(AdaptiveSizePolicy, AfterMajorRecentersOld) {
  AdaptiveSizePolicy policy;
  MajorObservation obs;
  obs.old_live = 100 * MiB;
  obs.old_committed = 600 * MiB;
  obs.young_committed = 100 * MiB;
  const auto d = policy.after_major(obs);
  // live * 1.5 = 150 MiB, but never below half the current committed.
  EXPECT_EQ(d.old_target, 300 * MiB);
  obs.old_committed = 200 * MiB;
  EXPECT_EQ(policy.after_major(obs).old_target, 150 * MiB);
}

TEST(AdaptiveSizePolicy, CustomConfigRespected) {
  SizingConfig config;
  config.young_grow_factor = 2.0;
  config.grow_ratio = 50.0;
  AdaptiveSizePolicy policy(config);
  const auto d = policy.after_minor(minor_obs(10 * msec, 400 * msec));
  EXPECT_EQ(d.young_target, 200 * MiB);  // 40 pauses < 50 => grow by 2x
}

}  // namespace
}  // namespace arv::jvm
