#include "src/jvm/jvm.h"

#include <gtest/gtest.h>

#include "src/workloads/java_suites.h"

namespace arv::jvm {
namespace {

using namespace arv::units;

struct Fixture {
  explicit Fixture(int cpus = 8, Bytes ram = 32 * GiB)
      : host(host_config(cpus, ram)), runtime(host) {}

  static container::HostConfig host_config(int cpus, Bytes ram) {
    container::HostConfig config;
    config.cpus = cpus;
    config.ram = ram;
    return config;
  }

  container::Container& run(container::ContainerConfig config = {}) {
    return runtime.run(config);
  }

  JavaWorkload small_workload() {
    JavaWorkload w;
    w.name = "unit";
    w.total_work = 2 * sec;
    w.mutator_threads = 4;
    w.alloc_per_cpu_sec = 200 * MiB;
    w.live_set = 64 * MiB;
    w.survival_ratio = 0.1;
    return w;
  }

  void run_to_completion(Jvm& jvm, SimDuration limit = 600 * sec) {
    host.engine().run_until([&] { return jvm.finished(); },
                            host.now() + limit);
  }

  container::Host host;
  container::ContainerRuntime runtime;
};

TEST(Jvm, CompletesSmallWorkload) {
  Fixture f;
  auto& c = f.run();
  Jvm jvm(f.host, c, {.kind = JvmKind::kAdaptive}, f.small_workload());
  f.run_to_completion(jvm);
  EXPECT_EQ(jvm.state(), JvmState::kCompleted);
  EXPECT_TRUE(jvm.stats().completed);
  EXPECT_GT(jvm.stats().exec_time(), 0);
  EXPECT_DOUBLE_EQ(jvm.progress(), 1.0);
}

TEST(Jvm, PerformsMinorCollections) {
  Fixture f;
  auto& c = f.run();
  Jvm jvm(f.host, c, {.kind = JvmKind::kAdaptive, .xmx = 256 * MiB},
          f.small_workload());
  f.run_to_completion(jvm);
  EXPECT_GT(jvm.stats().minor_gcs, 0);
  EXPECT_GT(jvm.stats().minor_gc_time, 0);
  EXPECT_FALSE(jvm.gc_thread_trace().empty());
}

TEST(Jvm, ExecTimeScalesWithWork) {
  Fixture f;
  auto& c1 = f.run({.name = "w1"});
  auto& c2 = f.run({.name = "w2"});
  auto small = f.small_workload();
  auto big = f.small_workload();
  big.total_work = 4 * sec;
  // Run sequentially on separate fixtures to avoid interference.
  Fixture fa;
  auto& ca = fa.run();
  Jvm jvm_small(fa.host, ca, {.kind = JvmKind::kAdaptive}, small);
  fa.run_to_completion(jvm_small);
  Fixture fb;
  auto& cb = fb.run();
  Jvm jvm_big(fb.host, cb, {.kind = JvmKind::kAdaptive}, big);
  fb.run_to_completion(jvm_big);
  EXPECT_GT(jvm_big.stats().exec_time(), jvm_small.stats().exec_time());
  (void)c1;
  (void)c2;
}

TEST(Jvm, HeapStaysWithinXmx) {
  Fixture f;
  auto& c = f.run();
  Jvm jvm(f.host, c, {.kind = JvmKind::kAdaptive, .xmx = 200 * MiB},
          f.small_workload());
  bool violated = false;
  f.host.engine().run_until(
      [&] {
        violated = violated || jvm.heap().committed() > 200 * MiB + 2 * page;
        return jvm.finished();
      },
      600 * sec);
  EXPECT_FALSE(violated);
  EXPECT_EQ(jvm.state(), JvmState::kCompleted);
}

TEST(Jvm, OomWhenLiveSetExceedsHeap) {
  // The Figure 2(b) JDK-9 failure: live set cannot fit the 1/4-hard-limit
  // heap, so the JVM dies with OutOfMemoryError instead of finishing.
  Fixture f;
  container::ContainerConfig config;
  config.mem_limit = 1 * GiB;
  config.enable_resource_view = false;
  auto& c = f.run(config);
  auto w = f.small_workload();
  w.live_set = 600 * MiB;       // > 256 MiB heap
  w.alloc_per_cpu_sec = 400 * MiB;
  w.survival_ratio = 0.6;       // the live set materializes via promotion
  Jvm jvm(f.host, c, {.kind = JvmKind::kJdk9}, w);
  f.run_to_completion(jvm);
  EXPECT_EQ(jvm.state(), JvmState::kOomError);
  EXPECT_TRUE(jvm.stats().oom_error);
  EXPECT_FALSE(jvm.stats().completed);
}

TEST(Jvm, SwapsWhenHeapExceedsContainerLimit) {
  // Vanilla JDK 8 in a 1 GiB container sizes its heap from host RAM; the
  // committed heap crosses the hard limit and the container starts swapping.
  Fixture f(8, 32 * GiB);
  container::ContainerConfig config;
  config.mem_limit = 640 * MiB;
  config.enable_resource_view = false;
  auto& c = f.run(config);
  auto w = f.small_workload();
  w.live_set = 500 * MiB;  // forces committed > 640 MiB
  w.total_work = 1 * sec;
  Jvm jvm(f.host, c, {.kind = JvmKind::kVanilla8}, w);
  f.run_to_completion(jvm, 3600 * sec);
  EXPECT_GT(jvm.stats().stall_time, 0);
  EXPECT_GT(f.host.memory().swapped(c.cgroup()), 0);
}

TEST(Jvm, AdaptiveUsesEffectiveCpuForGcThreads) {
  Fixture f(20, 32 * GiB);
  container::ContainerConfig config;
  config.cfs_quota_us = 400000;  // 4 CPUs
  auto& c = f.run(config);
  auto w = f.small_workload();
  w.mutator_threads = 16;
  w.live_set = 512 * MiB;  // heap big enough not to bound workers
  Jvm jvm(f.host, c, {.kind = JvmKind::kAdaptive, .xmx = 3 * GiB}, w);
  f.run_to_completion(jvm);
  ASSERT_FALSE(jvm.gc_thread_trace().empty());
  for (const auto& sample : jvm.gc_thread_trace()) {
    EXPECT_LE(sample.workers, 4);
  }
}

TEST(Jvm, VanillaStaticWakesWholePool) {
  Fixture f(20, 32 * GiB);
  container::ContainerConfig config;
  config.enable_resource_view = false;
  auto& c = f.run(config);
  auto w = f.small_workload();
  w.mutator_threads = 16;
  w.live_set = 512 * MiB;
  Jvm jvm(f.host, c,
          {.kind = JvmKind::kVanilla8, .dynamic_gc_threads = false,
           .xmx = 3 * GiB},
          w);
  f.run_to_completion(jvm);
  ASSERT_FALSE(jvm.gc_thread_trace().empty());
  EXPECT_EQ(jvm.gc_thread_trace().front().workers, 15);
}

TEST(Jvm, ElasticHeapTracksEffectiveMemory) {
  Fixture f(8, 64 * GiB);
  container::ContainerConfig config;
  config.mem_limit = 8 * GiB;
  config.mem_soft_limit = 2 * GiB;
  auto& c = f.run(config);
  // Leak-style workload: the live set grows past the initial effective
  // memory, so the resource view (and VirtualMax with it) must expand.
  auto w = f.small_workload();
  w.total_work = 30 * sec;
  w.live_set = 256 * MiB;
  w.live_fraction_of_alloc = 0.3;
  w.survival_ratio = 0.4;
  Jvm jvm(f.host, c,
          {.kind = JvmKind::kAdaptive, .elastic_heap = true,
           .heap_poll_interval = 200 * msec},
          w);
  // VirtualMax starts at effective memory (soft limit).
  EXPECT_EQ(jvm.heap().virtual_max(), 2 * GiB);
  f.run_to_completion(jvm, 3600 * sec);
  EXPECT_EQ(jvm.state(), JvmState::kCompleted);
  // Effective memory expanded toward the hard limit as usage approached it,
  // and the heap followed.
  EXPECT_GT(jvm.heap().virtual_max(), 2 * GiB);
  EXPECT_LE(jvm.heap().virtual_max(), 8 * GiB);
}

TEST(Jvm, SampleHeapReportsGeometry) {
  Fixture f;
  auto& c = f.run();
  Jvm jvm(f.host, c, {.kind = JvmKind::kAdaptive, .xmx = 256 * MiB},
          f.small_workload());
  const auto sample = jvm.sample_heap();
  EXPECT_EQ(sample.when, f.host.now());
  EXPECT_EQ(sample.committed, jvm.heap().committed());
  EXPECT_EQ(sample.virtual_max, 256 * MiB);
}

TEST(Jvm, LiveTargetGrowsForLeakyWorkloads) {
  Fixture f;
  auto& c = f.run();
  auto w = f.small_workload();
  w.live_fraction_of_alloc = 0.5;
  Jvm jvm(f.host, c, {.kind = JvmKind::kAdaptive}, w);
  const Bytes before = jvm.live_target();
  f.host.run_for(2 * sec);
  EXPECT_GT(jvm.live_target(), before);
}

TEST(Jvm, RunnableThreadsFollowState) {
  Fixture f;
  auto& c = f.run();
  Jvm jvm(f.host, c, {.kind = JvmKind::kAdaptive}, f.small_workload());
  EXPECT_EQ(jvm.runnable_threads(), 4);  // mutating
  f.run_to_completion(jvm);
  EXPECT_EQ(jvm.runnable_threads(), 0);  // done
}

}  // namespace
}  // namespace arv::jvm
