#include "src/jvm/policy.h"

#include <gtest/gtest.h>

#include "src/workloads/java_suites.h"

namespace arv::jvm {
namespace {

using namespace arv::units;

struct Fixture {
  Fixture() : host(host_config()), runtime(host) {}

  static container::HostConfig host_config() {
    container::HostConfig config;
    config.cpus = 20;
    config.ram = 128 * GiB;
    return config;
  }

  container::Container& run(container::ContainerConfig config) {
    return runtime.run(config);
  }

  LaunchDecision launch(container::Container& c, JvmFlags flags,
                        JavaWorkload workload = {}) {
    const proc::Pid pid = c.spawn_process("probe");
    return decide_launch(host, c, pid, flags, workload);
  }

  container::Host host;
  container::ContainerRuntime runtime;
};

TEST(Jdk9CpuCount, PrefersCpusetOverQuota) {
  Fixture f;
  container::ContainerConfig config;
  config.cpuset = CpuSet::first_n(2);
  config.cfs_quota_us = 1000000;  // 10 CPUs, ignored
  auto& c = f.run(config);
  EXPECT_EQ(jdk9_cpu_count(f.host, c.cgroup()), 2);
}

TEST(Jdk9CpuCount, FallsBackToQuota) {
  Fixture f;
  container::ContainerConfig config;
  config.cfs_quota_us = 1000000;
  auto& c = f.run(config);
  EXPECT_EQ(jdk9_cpu_count(f.host, c.cgroup()), 10);
}

TEST(Jdk9CpuCount, UnconstrainedSeesHost) {
  Fixture f;
  auto& c = f.run({});
  EXPECT_EQ(jdk9_cpu_count(f.host, c.cgroup()), 20);
}

TEST(Jdk10CpuCount, ShareFractionCapsCount) {
  // The Figure 8 setup: ten equal-share containers on 20 cores => 2.
  Fixture f;
  container::Container* first = nullptr;
  for (int i = 0; i < 10; ++i) {
    container::ContainerConfig config;
    config.name = "c" + std::to_string(i);
    auto& c = f.run(config);
    if (i == 0) {
      first = &c;
    }
  }
  EXPECT_EQ(jdk10_cpu_count(f.host, first->cgroup()), 2);
}

TEST(Jdk10CpuCount, QuotaStillWinsWhenSmaller) {
  Fixture f;
  container::ContainerConfig config;
  config.cfs_quota_us = 100000;  // 1 CPU
  auto& c = f.run(config);
  f.run({.name = "peer"});
  EXPECT_EQ(jdk10_cpu_count(f.host, c.cgroup()), 1);
}

TEST(DecideLaunch, Vanilla8ProbesHostCpusInStockContainer) {
  Fixture f;
  container::ContainerConfig config;
  config.enable_resource_view = false;
  config.cfs_quota_us = 400000;  // invisible to vanilla JDK 8
  auto& c = f.run(config);
  const auto d = f.launch(c, {.kind = JvmKind::kVanilla8});
  EXPECT_EQ(d.gc_worker_pool, 15);  // hotspot formula on 20 CPUs
}

TEST(DecideLaunch, Vanilla8InAdaptiveContainerSeesEffectiveCpus) {
  Fixture f;
  container::ContainerConfig config;
  config.cfs_quota_us = 400000;  // E_CPU upper = 4
  auto& c = f.run(config);
  const auto d = f.launch(c, {.kind = JvmKind::kVanilla8});
  EXPECT_EQ(d.gc_worker_pool, 4);
}

TEST(DecideLaunch, Jdk9UsesStaticLimit) {
  Fixture f;
  container::ContainerConfig config;
  config.enable_resource_view = false;
  config.cpuset = CpuSet::first_n(10);
  auto& c = f.run(config);
  const auto d = f.launch(c, {.kind = JvmKind::kJdk9});
  EXPECT_EQ(d.gc_worker_pool, 9);  // hotspot formula: 8 + (10-8)*5/8
}

TEST(DecideLaunch, AdaptiveLaunchesMaximumPool) {
  Fixture f;
  container::ContainerConfig config;
  config.cfs_quota_us = 200000;  // tight limit now, may be lifted later
  auto& c = f.run(config);
  const auto d = f.launch(c, {.kind = JvmKind::kAdaptive});
  EXPECT_EQ(d.gc_worker_pool, 15);  // §4.1: max by online CPUs
}

TEST(DecideLaunch, Vanilla8HeapIsQuarterOfDetectedMemory) {
  Fixture f;
  container::ContainerConfig config;
  config.enable_resource_view = false;
  config.mem_limit = 1 * GiB;  // invisible
  auto& c = f.run(config);
  const auto d = f.launch(c, {.kind = JvmKind::kVanilla8});
  EXPECT_EQ(d.max_heap, 32 * GiB);  // 128/4, the Figure 2(b) mistake
}

TEST(DecideLaunch, Jdk9HeapIsQuarterOfHardLimit) {
  Fixture f;
  container::ContainerConfig config;
  config.enable_resource_view = false;
  config.mem_limit = 1 * GiB;
  auto& c = f.run(config);
  const auto d = f.launch(c, {.kind = JvmKind::kJdk9});
  EXPECT_EQ(d.max_heap, 256 * MiB);
}

TEST(DecideLaunch, XmxOverridesErgonomics) {
  Fixture f;
  auto& c = f.run({});
  const auto d = f.launch(c, {.kind = JvmKind::kVanilla8, .xmx = 2 * GiB});
  EXPECT_EQ(d.max_heap, 2 * GiB);
}

TEST(DecideLaunch, AdaptiveElasticStartsVirtualMaxAtEffectiveMemory) {
  Fixture f;
  container::ContainerConfig config;
  config.mem_limit = 30 * GiB;
  config.mem_soft_limit = 15 * GiB;
  auto& c = f.run(config);
  const auto d =
      f.launch(c, {.kind = JvmKind::kAdaptive, .elastic_heap = true});
  EXPECT_EQ(d.initial_virtual_max, 15 * GiB);     // E_MEM = soft limit
  EXPECT_GT(d.max_heap, 100 * GiB);               // reserved near phys
  EXPECT_EQ(d.initial_heap, 15 * GiB / 4);
}

TEST(DecideGcThreads, VanillaStaticUsesWholePool) {
  Fixture f;
  container::ContainerConfig config;
  config.enable_resource_view = false;
  auto& c = f.run(config);
  const proc::Pid pid = c.spawn_process("java");
  const int threads = decide_gc_threads(
      f.host, pid, {.kind = JvmKind::kVanilla8, .dynamic_gc_threads = false},
      15, 8, 10 * GiB);
  EXPECT_EQ(threads, 15);
}

TEST(DecideGcThreads, DynamicBoundsByHeapAndMutators) {
  Fixture f;
  container::ContainerConfig config;
  config.enable_resource_view = false;
  auto& c = f.run(config);
  const proc::Pid pid = c.spawn_process("java");
  const int threads = decide_gc_threads(
      f.host, pid, {.kind = JvmKind::kVanilla8, .dynamic_gc_threads = true},
      15, 8, 128 * MiB);  // tiny heap => 2 workers
  EXPECT_EQ(threads, 2);
}

TEST(DecideGcThreads, AdaptiveCapsByEffectiveCpu) {
  Fixture f;
  container::ContainerConfig config;
  config.cfs_quota_us = 400000;  // E_CPU <= 4
  auto& c = f.run(config);
  const proc::Pid pid = c.spawn_process("java");
  const int threads = decide_gc_threads(
      f.host, pid, {.kind = JvmKind::kAdaptive, .dynamic_gc_threads = true},
      15, 16, 10 * GiB);
  EXPECT_EQ(threads, 4);
}

TEST(DecideLaunchDeath, OptTunedRequiresThreadCount) {
  Fixture f;
  auto& c = f.run({});
  EXPECT_DEATH(f.launch(c, {.kind = JvmKind::kOptTuned}), "fixed_gc_threads");
}

}  // namespace
}  // namespace arv::jvm
