// Focused tests for the §4.2 elastic heap: the three shrink scenarios, the
// 10-second poll cadence, and interaction with effective memory.
#include <gtest/gtest.h>

#include "src/container/container.h"
#include "src/jvm/jvm.h"
#include "src/workloads/java_suites.h"

namespace arv::jvm {
namespace {

using namespace arv::units;

struct Fixture {
  Fixture() : host(host_config()), runtime(host) {}

  static container::HostConfig host_config() {
    container::HostConfig config;
    config.cpus = 8;
    config.ram = 64 * GiB;
    return config;
  }

  container::Host host;
  container::ContainerRuntime runtime;
};

JavaWorkload steady_workload() {
  JavaWorkload w;
  w.name = "steady";
  w.total_work = 20 * sec;
  w.mutator_threads = 4;
  w.alloc_per_cpu_sec = 256 * MiB;
  w.live_set = 256 * MiB;
  w.survival_ratio = 0.2;
  return w;
}

TEST(ElasticHeap, VirtualMaxNeverExceedsEffectiveMemoryForLong) {
  Fixture f;
  container::ContainerConfig config;
  config.mem_limit = 4 * GiB;
  config.mem_soft_limit = 1 * GiB;
  auto& c = f.runtime.run(config);
  Jvm jvm(f.host, c,
          {.kind = JvmKind::kAdaptive, .elastic_heap = true,
           .heap_poll_interval = 100 * msec},
          steady_workload());
  bool violated = false;
  f.host.engine().run_until(
      [&] {
        // Between polls VirtualMax may lag effective memory by one interval;
        // it must never exceed it by more than the last-read value.
        violated = violated ||
                   jvm.heap().virtual_max() > static_cast<Bytes>(4) * GiB;
        return jvm.finished();
      },
      3600 * sec);
  EXPECT_FALSE(violated);
  EXPECT_TRUE(jvm.stats().completed);
}

TEST(ElasticHeap, ShrinkCase1OnlyMovesLimits) {
  // Effective memory drops but stays above committed: nothing visible
  // happens to committed space.
  Fixture f;
  container::ContainerConfig config;
  config.mem_limit = 8 * GiB;
  config.mem_soft_limit = 6 * GiB;
  auto& c = f.runtime.run(config);
  auto w = steady_workload();
  Jvm jvm(f.host, c,
          {.kind = JvmKind::kAdaptive, .elastic_heap = true,
           .heap_poll_interval = 100 * msec},
          w);
  f.host.run_for(2 * sec);
  const Bytes committed = jvm.heap().committed();
  ASSERT_LT(committed, static_cast<Bytes>(2) * GiB);
  // Lower the soft limit so effective memory resets below 6 GiB but above
  // the committed heap: only the limits move.
  c.update_mem_soft_limit(3 * GiB);
  f.host.run_for(1 * sec);
  EXPECT_GE(jvm.heap().virtual_max(), static_cast<Bytes>(3) * GiB);
  EXPECT_EQ(jvm.state() == JvmState::kMutating ||
                jvm.state() == JvmState::kInGc ||
                jvm.state() == JvmState::kCompleted,
            true);
}

TEST(ElasticHeap, ShrinkCase2ReleasesCommitted) {
  Fixture f;
  container::ContainerConfig config;
  config.mem_limit = 8 * GiB;
  config.mem_soft_limit = 8 * GiB;  // start with a big view
  auto& c = f.runtime.run(config);
  // Quiet workload: little allocation and almost no survivors, so the used
  // floors cannot keep the committed space up after the shrink.
  auto w = steady_workload();
  w.total_work = 60 * sec;
  w.alloc_per_cpu_sec = 64 * MiB;
  w.survival_ratio = 0.02;
  Jvm jvm(f.host, c,
          {.kind = JvmKind::kAdaptive, .elastic_heap = true, .xms = 4 * GiB,
           .heap_poll_interval = 100 * msec},
          w);
  f.host.run_for(1 * sec);
  const Bytes committed_before = jvm.heap().committed();
  ASSERT_GT(committed_before, static_cast<Bytes>(3) * GiB);
  // Administrator slashes both limits; used stays far below 1 GiB, so the
  // next poll shrinks committed space without requiring a collection.
  c.update_mem_soft_limit(1 * GiB);
  c.update_mem_limit(1 * GiB);
  f.host.run_for(1 * sec);
  EXPECT_LE(jvm.heap().committed(), static_cast<Bytes>(1) * GiB + 2 * MiB);
  EXPECT_LE(f.host.memory().usage(c.cgroup()),
            static_cast<Bytes>(1) * GiB + 2 * MiB);
}

TEST(ElasticHeap, ShrinkCase3TriggersCollections) {
  Fixture f;
  container::ContainerConfig config;
  config.mem_limit = 8 * GiB;
  config.mem_soft_limit = 8 * GiB;
  auto& c = f.runtime.run(config);
  // Garbage-heavy workload: old gen accumulates dead promotions that a
  // forced major collection can reclaim.
  auto w = steady_workload();
  w.total_work = 60 * sec;
  w.survival_ratio = 0.5;
  w.live_set = 512 * MiB;
  Jvm jvm(f.host, c,
          {.kind = JvmKind::kAdaptive, .elastic_heap = true,
           .heap_poll_interval = 100 * msec},
          w);
  // Let the old generation fill with promoted-but-dead data.
  f.host.engine().run_until(
      [&] { return jvm.heap().old_used() > static_cast<Bytes>(2) * GiB; },
      3600 * sec);
  const int majors_before = jvm.stats().major_gcs;
  const Bytes used_before = jvm.heap().used();

  // New limit sits below the current *used* space: case 3 — the poll must
  // force major collections until the live data (512 MiB plus whatever the
  // young generation holds mid-mutation) fits under it.
  c.update_mem_soft_limit(1 * GiB);
  c.update_mem_limit(15 * GiB / 10);  // 1.5 GiB
  f.host.run_for(6 * sec);
  EXPECT_GT(jvm.stats().major_gcs, majors_before);
  EXPECT_LT(jvm.heap().used(), used_before / 2);
  EXPECT_LE(jvm.heap().virtual_max(), static_cast<Bytes>(15) * GiB / 10);
}

TEST(ElasticHeap, PollIntervalRespected) {
  Fixture f;
  container::ContainerConfig config;
  config.mem_limit = 4 * GiB;
  config.mem_soft_limit = 2 * GiB;
  auto& c = f.runtime.run(config);
  auto w = steady_workload();
  w.total_work = 120 * sec;  // must still be running at the 10 s poll
  Jvm slow_poll(f.host, c,
                {.kind = JvmKind::kAdaptive, .elastic_heap = true,
                 .heap_poll_interval = 10 * sec},
                w);
  // Raise the hard limit; the view reacts instantly but the heap only at
  // the next poll, which is 10 simulated seconds away.
  f.host.run_for(1 * sec);
  const Bytes vmax_before = slow_poll.heap().virtual_max();
  c.update_mem_soft_limit(3 * GiB);
  f.host.run_for(2 * sec);
  EXPECT_EQ(slow_poll.heap().virtual_max(), vmax_before);  // not yet polled
  f.host.run_for(9 * sec);
  EXPECT_GT(slow_poll.heap().virtual_max(), vmax_before);  // polled
}

TEST(ElasticHeap, NonElasticAdaptiveKeepsStaticVirtualMax) {
  Fixture f;
  container::ContainerConfig config;
  config.mem_limit = 4 * GiB;
  config.mem_soft_limit = 1 * GiB;
  auto& c = f.runtime.run(config);
  Jvm jvm(f.host, c, {.kind = JvmKind::kAdaptive, .elastic_heap = false},
          steady_workload());
  const Bytes vmax = jvm.heap().virtual_max();
  f.host.run_for(5 * sec);
  EXPECT_EQ(jvm.heap().virtual_max(), vmax);
}

}  // namespace
}  // namespace arv::jvm
