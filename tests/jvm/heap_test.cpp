#include "src/jvm/heap.h"

#include <gtest/gtest.h>

#include "src/cgroup/cgroup.h"

namespace arv::jvm {
namespace {

using namespace arv::units;

struct Fixture {
  Fixture() : tree(8), mm(tree, mem_config()), cg(tree.create("jvm")) {}

  static mem::Config mem_config() {
    mem::Config config;
    config.total_ram = 8 * GiB;
    config.swap_size = 8 * GiB;
    return config;
  }

  cgroup::Tree tree;
  mem::MemoryManager mm;
  cgroup::CgroupId cg;
};

TEST(Heap, InitialGeometryKeepsRatio) {
  Fixture f;
  Heap heap(f.mm, f.cg, 3 * GiB, 300 * MiB);
  EXPECT_EQ(heap.reserved(), 3 * GiB);
  EXPECT_EQ(heap.virtual_max(), 3 * GiB);
  EXPECT_NEAR(static_cast<double>(heap.old_committed()),
              2.0 * static_cast<double>(heap.young_committed()),
              static_cast<double>(MiB));
  EXPECT_NEAR(static_cast<double>(heap.committed()), static_cast<double>(300 * MiB),
              static_cast<double>(MiB));
}

TEST(Heap, CommittedMemoryChargedToCgroup) {
  Fixture f;
  {
    Heap heap(f.mm, f.cg, 1 * GiB, 120 * MiB);
    EXPECT_EQ(f.mm.usage(f.cg), heap.committed());
  }
  // Destructor releases the charge.
  EXPECT_EQ(f.mm.usage(f.cg), 0);
}

TEST(Heap, AllocateFillsEdenUntilFailure) {
  Fixture f;
  Heap heap(f.mm, f.cg, 1 * GiB, 120 * MiB);
  const Bytes eden = heap.eden_capacity();
  EXPECT_TRUE(heap.allocate(eden / 2));
  EXPECT_TRUE(heap.allocate(eden / 2));
  EXPECT_FALSE(heap.allocate(MiB));  // full
  EXPECT_EQ(heap.eden_used(), eden / 2 * 2);
  EXPECT_GT(heap.eden_room(), -1);
}

TEST(Heap, FinishMinorMovesSurvivorsAndPromotes) {
  Fixture f;
  Heap heap(f.mm, f.cg, 1 * GiB, 300 * MiB);
  heap.allocate(40 * MiB);
  heap.finish_minor(/*survivors=*/4 * MiB, /*promoted=*/2 * MiB);
  EXPECT_EQ(heap.eden_used(), 0);
  EXPECT_EQ(heap.survivor_used(), 4 * MiB);
  EXPECT_EQ(heap.old_used(), 2 * MiB);
  heap.finish_minor(3 * MiB, 4 * MiB);
  EXPECT_EQ(heap.old_used(), 6 * MiB);
}

TEST(Heap, FinishMajorCompacts) {
  Fixture f;
  Heap heap(f.mm, f.cg, 1 * GiB, 300 * MiB);
  heap.finish_minor(10 * MiB, 100 * MiB);
  heap.finish_major(/*old_live=*/60 * MiB, /*survivor_live=*/5 * MiB);
  EXPECT_EQ(heap.old_used(), 60 * MiB);
  EXPECT_EQ(heap.survivor_used(), 5 * MiB);
}

TEST(Heap, ResizeYoungGrowsAndCharges) {
  Fixture f;
  Heap heap(f.mm, f.cg, 2 * GiB, 120 * MiB);
  const Bytes before = heap.young_committed();
  ASSERT_TRUE(heap.resize_young(before * 2));
  EXPECT_EQ(heap.young_committed(), before * 2);
  EXPECT_EQ(f.mm.usage(f.cg), heap.committed());
}

TEST(Heap, ResizeYoungClampedToYoungMax) {
  Fixture f;
  Heap heap(f.mm, f.cg, 900 * MiB, 300 * MiB);
  ASSERT_TRUE(heap.resize_young(10 * GiB));
  EXPECT_EQ(heap.young_committed(), heap.young_max());
}

TEST(Heap, ShrinkNeverDropsBelowUsed) {
  Fixture f;
  Heap heap(f.mm, f.cg, 1 * GiB, 600 * MiB);
  heap.allocate(50 * MiB);
  heap.finish_minor(20 * MiB, 0);
  ASSERT_TRUE(heap.resize_young(1 * MiB));
  EXPECT_GE(heap.young_committed(), 20 * MiB);
  heap.finish_minor(0, 100 * MiB);
  ASSERT_TRUE(heap.resize_old(1 * MiB));
  EXPECT_GE(heap.old_committed(), 100 * MiB);
}

TEST(Heap, PromotionWouldFailDetection) {
  Fixture f;
  Heap heap(f.mm, f.cg, 300 * MiB, 300 * MiB);
  EXPECT_FALSE(heap.promotion_would_fail(10 * MiB));
  EXPECT_TRUE(heap.promotion_would_fail(heap.old_committed() + MiB));
}

TEST(Heap, VirtualMaxRaiseJustAdjustsLimits) {
  Fixture f;
  Heap heap(f.mm, f.cg, 2 * GiB, 300 * MiB);
  heap.set_virtual_max(1 * GiB);
  EXPECT_EQ(heap.set_virtual_max(2 * GiB), ResizeOutcome::kLimitsAdjusted);
  EXPECT_EQ(heap.virtual_max(), 2 * GiB);
  EXPECT_EQ(heap.young_max(), 2 * GiB / 3);
}

TEST(Heap, VirtualMaxClampedToReserved) {
  Fixture f;
  Heap heap(f.mm, f.cg, 1 * GiB, 120 * MiB);
  heap.set_virtual_max(4 * GiB);
  EXPECT_EQ(heap.virtual_max(), 1 * GiB);
}

TEST(Heap, VirtualMaxShrinkCase1LimitsOnly) {
  // Committed far below the new limit: only the red dotted lines move.
  Fixture f;
  Heap heap(f.mm, f.cg, 2 * GiB, 120 * MiB);
  const Bytes committed = heap.committed();
  EXPECT_EQ(heap.set_virtual_max(1 * GiB), ResizeOutcome::kLimitsAdjusted);
  EXPECT_EQ(heap.committed(), committed);
}

TEST(Heap, VirtualMaxShrinkCase2ReleasesFreeCommitted) {
  Fixture f;
  Heap heap(f.mm, f.cg, 2 * GiB, 1800 * MiB);  // large committed, unused
  EXPECT_EQ(heap.set_virtual_max(600 * MiB), ResizeOutcome::kCommittedShrunk);
  EXPECT_LE(heap.committed(), 600 * MiB + 2 * page);
  EXPECT_EQ(f.mm.usage(f.cg), heap.committed());
}

TEST(Heap, VirtualMaxShrinkCase3RequiresGc) {
  Fixture f;
  Heap heap(f.mm, f.cg, 2 * GiB, 1800 * MiB);
  heap.finish_minor(0, /*promoted=*/500 * MiB);  // old_used = 500 MiB
  // New old_max = 2/3 * 600 MiB = 400 MiB < 500 MiB used.
  EXPECT_EQ(heap.set_virtual_max(600 * MiB), ResizeOutcome::kGcRequired);
}

TEST(Heap, HardLimitBreachMarksOomKilled) {
  Fixture f;
  mem::Config config;
  config.total_ram = 8 * GiB;
  config.swap_size = 0;  // no swap => hard-limit breach kills
  mem::MemoryManager mm(f.tree, config);
  f.tree.set_mem_limit(f.cg, 256 * MiB);
  Heap heap(mm, f.cg, 2 * GiB, 64 * MiB);
  EXPECT_FALSE(heap.oom_killed());
  heap.resize_old(1 * GiB);
  EXPECT_TRUE(heap.oom_killed());
}

TEST(Heap, EdenCapacityIsFractionOfYoung) {
  Fixture f;
  Heap heap(f.mm, f.cg, 1 * GiB, 300 * MiB);
  EXPECT_NEAR(static_cast<double>(heap.eden_capacity()),
              0.8 * static_cast<double>(heap.young_committed()),
              static_cast<double>(page));
}

}  // namespace
}  // namespace arv::jvm
