// Determinism and observation-only guarantees of the tracing layer.
//
// Two contracts, both load-bearing for golden-trace testing:
//   1. The same scenario produces byte-identical CSV/JSON traces on every
//      run (otherwise goldens would flake).
//   2. Tracing never changes simulation behavior: a run with tracing on
//      finishes in exactly the same final state as a run with tracing off.
#include <gtest/gtest.h>

#include "src/harness/scenario.h"
#include "src/workloads/java_suites.h"

namespace arv {
namespace {

using namespace arv::units;

struct FinalState {
  SimDuration exec_time = 0;
  SimDuration gc_time = 0;
  int minor_gcs = 0;
  CpuTime jvm_cpu_usage = 0;
  int e_cpu = 0;
  Bytes e_mem = 0;
  Bytes host_free = 0;
  SimTime end = 0;

  bool operator==(const FinalState&) const = default;
};

struct RunOutput {
  FinalState state;
  std::string csv;
  std::string json;
};

// A contended mixed scenario: an adaptive JVM, a CPU hog, and a memory hog,
// so every traced subsystem (scheduler, kswapd, monitor, JVM) does real work.
RunOutput run_scenario(bool tracing) {
  container::HostConfig host_config;
  host_config.cpus = 6;
  host_config.ram = 4 * GiB;
  host_config.enable_tracing = tracing;
  harness::JvmScenario scenario(host_config);

  scenario.add_cpu_hog({}, 4, 2 * sec);
  container::ContainerConfig hog;
  hog.name = "memhog";
  scenario.add_mem_hog(hog, 2 * GiB, 512 * MiB);

  harness::JvmInstanceConfig config;
  config.container.name = "jvm";
  config.container.mem_limit = 2 * GiB;
  config.container.mem_soft_limit = 1 * GiB;
  config.flags.kind = jvm::JvmKind::kAdaptive;
  config.flags.elastic_heap = true;
  config.flags.heap_poll_interval = 500 * msec;
  config.workload = *workloads::find_java_workload("xalan");
  config.workload.total_work = 1 * sec;
  config.flags.xmx = 3 * jvm::min_heap_of(config.workload);
  const auto idx = scenario.add(config);
  scenario.run(600 * sec);

  RunOutput out;
  const auto& stats = scenario.jvm(idx).stats();
  out.state.exec_time = stats.exec_time();
  out.state.gc_time = stats.gc_time();
  out.state.minor_gcs = stats.minor_gcs;
  const container::Container* jvm_container = scenario.runtime().find("jvm");
  out.state.jvm_cpu_usage =
      scenario.host().scheduler().total_usage(jvm_container->cgroup());
  const auto view = jvm_container->resource_view();
  out.state.e_cpu = view->effective_cpus();
  out.state.e_mem = view->effective_memory();
  out.state.host_free = scenario.host().memory().free_memory();
  out.state.end = scenario.host().now();
  if (tracing) {
    out.csv = scenario.host().trace()->to_csv();
    out.json = scenario.host().trace()->to_json();
  }
  return out;
}

TEST(TraceDeterminism, ByteIdenticalTracesAcrossRuns) {
  const auto a = run_scenario(true);
  const auto b = run_scenario(true);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.json, b.json);
  EXPECT_FALSE(a.csv.empty());
  EXPECT_FALSE(a.json.empty());
}

TEST(TraceDeterminism, TracingIsObservationOnly) {
  const auto traced = run_scenario(true);
  const auto untraced = run_scenario(false);
  EXPECT_EQ(traced.state, untraced.state)
      << "enabling tracing changed simulation behavior";
}

}  // namespace
}  // namespace arv
