// Golden-trace regression tests for Algorithms 1 & 2.
//
// Each test runs a scaled-down version of one paper figure's scenario with
// tracing on, serializes the full trace to CSV, and compares it
// byte-for-byte against a checked-in golden under tests/obs/golden/. The
// simulation is deterministic, so any drift in scheduler accounting, kswapd
// behavior, or the Algorithm 1/2 update rules shows up as a line diff
// anchored to a simulated timestamp.
//
// Regeneration (after an *intentional* model change):
//   ARV_REGOLDEN=1 ctest --test-dir build -R GoldenTrace
// then inspect the golden diff in git before committing — the diff IS the
// behavior change. See docs/OBSERVABILITY.md.
#include <gtest/gtest.h>

#include "src/harness/scenario.h"
#include "src/obs/golden.h"
#include "src/workloads/java_suites.h"

namespace arv {
namespace {

using namespace arv::units;

std::string golden_path(const char* file) {
  return std::string(ARV_GOLDEN_DIR) + "/" + file;
}

container::HostConfig traced_host(int cpus, Bytes ram) {
  container::HostConfig config;
  config.cpus = cpus;
  config.ram = ram;
  config.enable_tracing = true;
  config.trace.sample_interval = 100 * msec;
  return config;
}

// Figure 6 (scaled down): three colocated adaptive JVMs with equal shares.
// Their e_cpu series must show the containers negotiating the host between
// GC bursts — the "dynamic parallelism" the paper plots.
std::string fig6_trace(const core::Params& params) {
  harness::JvmScenario scenario(traced_host(8, 16 * GiB));
  for (int i = 0; i < 3; ++i) {
    harness::JvmInstanceConfig config;
    config.container.name = "c" + std::to_string(i);
    config.container.view_params = params;
    config.flags.kind = jvm::JvmKind::kAdaptive;
    config.workload = *workloads::find_java_workload("sunflow");
    config.workload.total_work = 3 * sec;
    config.flags.xmx = 3 * jvm::min_heap_of(config.workload);
    scenario.add(config);
  }
  scenario.run(600 * sec);
  return scenario.host().trace()->to_csv();
}

// Figure 8 (scaled down): one adaptive JVM plus three staggered sysbench
// hogs; e_cpu climbs step-by-step as each hog exhausts its budget and frees
// CPUs.
std::string fig8_trace(const core::Params& params) {
  harness::JvmScenario scenario(traced_host(8, 16 * GiB));
  for (int i = 0; i < 3; ++i) {
    scenario.add_cpu_hog({}, 4, (i + 1) * 2 * sec);
  }
  harness::JvmInstanceConfig config;
  config.container.name = "dacapo";
  config.container.view_params = params;
  config.flags.kind = jvm::JvmKind::kAdaptive;
  config.workload = *workloads::find_java_workload("sunflow");
  config.workload.total_work = 6 * sec;
  config.flags.xmx = 3 * jvm::min_heap_of(config.workload);
  scenario.add(config);
  scenario.run(600 * sec);
  return scenario.host().trace()->to_csv();
}

// Figure 12 (scaled down): an elastic-heap JVM under a memory hog on a small
// host. e_mem ramps by 10%-of-headroom steps while free memory lasts and
// snaps back to the soft limit when kswapd wakes.
std::string fig12_trace(const core::Params& params) {
  container::HostConfig host_config = traced_host(4, 4 * GiB);
  // An HDD-speed swap would stretch the pressured phase over minutes of
  // simulated time; an SSD-ish rate keeps the golden small while preserving
  // the grow/reset shape.
  host_config.mem.swap_bandwidth_per_sec = 256 * MiB;
  harness::JvmScenario scenario(host_config);
  harness::JvmInstanceConfig config;
  config.container.name = "heap";
  config.container.mem_limit = 2 * GiB;
  config.container.mem_soft_limit = 1 * GiB;
  config.container.view_params = params;
  config.flags.kind = jvm::JvmKind::kAdaptive;
  config.flags.elastic_heap = true;
  config.flags.heap_poll_interval = 250 * msec;
  config.workload.name = "microleak";
  config.workload.total_work = 8 * sec;
  config.workload.mutator_threads = 2;
  config.workload.alloc_per_cpu_sec = 256 * MiB;
  config.workload.live_set = 64 * MiB;
  config.workload.survival_ratio = 0.55;
  config.workload.live_fraction_of_alloc = 0.25;
  scenario.add(config);

  container::ContainerConfig hog;
  hog.name = "hog";
  scenario.add_mem_hog(hog, 3 * GiB, 1 * GiB);
  scenario.try_run(600 * sec);
  return scenario.host().trace()->to_csv();
}

TEST(GoldenTrace, Fig6DynamicParallelism) {
  const auto result = obs::compare_golden(
      golden_path("fig6_dynamic_parallelism.csv"), fig6_trace(core::Params{}));
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(GoldenTrace, Fig8CpuSharesAdaptation) {
  const auto result = obs::compare_golden(golden_path("fig8_cpu_shares.csv"),
                                          fig8_trace(core::Params{}));
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(GoldenTrace, Fig12ElasticHeapTimeline) {
  const auto result = obs::compare_golden(golden_path("fig12_elastic_heap.csv"),
                                          fig12_trace(core::Params{}));
  EXPECT_TRUE(result.ok) << result.message;
}

// --- perturbation: the goldens must be sensitive to the paper's constants --

TEST(GoldenTrace, PerturbedCpuThresholdFailsLoudly) {
  if (obs::regenerate_requested()) {
    GTEST_SKIP() << "ARV_REGOLDEN set: would overwrite the golden with a "
                    "perturbed trace";
  }
  core::Params params;
  params.cpu_util_threshold = 0.5;  // Algorithm 1 default: 0.95
  const auto result =
      obs::compare_golden(golden_path("fig8_cpu_shares.csv"), fig8_trace(params));
  EXPECT_FALSE(result.ok)
      << "trace is insensitive to cpu_util_threshold — the golden would not "
         "catch an Algorithm 1 regression";
  EXPECT_NE(result.message.find("line"), std::string::npos)
      << "failure must carry a line diff, got: " << result.message;
}

TEST(GoldenTrace, PerturbedMemGrowthFailsLoudly) {
  if (obs::regenerate_requested()) {
    GTEST_SKIP() << "ARV_REGOLDEN set: would overwrite the golden with a "
                    "perturbed trace";
  }
  core::Params params;
  params.mem_growth_frac = 0.5;  // Algorithm 2 default: 0.10
  const auto result = obs::compare_golden(golden_path("fig12_elastic_heap.csv"),
                                          fig12_trace(params));
  EXPECT_FALSE(result.ok)
      << "trace is insensitive to mem_growth_frac — the golden would not "
         "catch an Algorithm 2 regression";
  EXPECT_NE(result.message.find("line"), std::string::npos)
      << "failure must carry a line diff, got: " << result.message;
}

}  // namespace
}  // namespace arv
