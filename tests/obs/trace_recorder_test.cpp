// Unit tests for the TraceRecorder sampling core and its serializers, plus
// the TraceAssert matchers themselves.
#include "src/obs/trace_recorder.h"

#include <gtest/gtest.h>

#include "src/container/container.h"
#include "src/obs/golden.h"
#include "src/sim/engine.h"
#include "tests/testing/trace_matchers.h"

namespace arv::obs {
namespace {

using namespace arv::units;

TEST(TraceRecorder, SamplesEveryTickByDefault) {
  sim::Engine engine;
  TraceRecorder rec;
  std::int64_t gauge = 5;
  const auto h = rec.add_gauge("g", "", [&] { return gauge; });
  engine.add_component(&rec);

  engine.run_for(3 * msec);
  ASSERT_EQ(rec.sample_count(), 3u);
  EXPECT_EQ(rec.times(), (std::vector<SimTime>{1000, 2000, 3000}));
  gauge = 9;
  engine.run_for(1 * msec);
  EXPECT_EQ(rec.values(h), (std::vector<std::int64_t>{5, 5, 5, 9}));
  EXPECT_EQ(rec.latest(h), 9);
}

TEST(TraceRecorder, SampleIntervalSkipsTicks) {
  sim::Engine engine;
  TraceRecorder rec(TraceConfig{.sample_interval = 2 * msec});
  rec.add_gauge("g", "", [] { return 1; });
  engine.add_component(&rec);

  engine.run_for(6 * msec);
  // First due tick is t=1ms, then every 2ms from there.
  EXPECT_EQ(rec.times(), (std::vector<SimTime>{1000, 3000, 5000}));
}

TEST(TraceRecorder, RetiredSeriesRepeatsLastValueWithoutProbing) {
  sim::Engine engine;
  TraceRecorder rec;
  int probes = 0;
  const auto h = rec.add_gauge("g", "", [&] {
    ++probes;
    return 42;
  });
  engine.add_component(&rec);

  engine.run_for(2 * msec);
  rec.retire(h);
  engine.run_for(2 * msec);
  EXPECT_EQ(probes, 2);
  EXPECT_EQ(rec.values(h), (std::vector<std::int64_t>{42, 42, 42, 42}));
}

TEST(TraceRecorder, MidRunRegistrationBackfillsZeros) {
  sim::Engine engine;
  TraceRecorder rec;
  rec.add_gauge("first", "", [] { return 1; });
  engine.add_component(&rec);

  engine.run_for(2 * msec);
  const auto late = rec.add_gauge("late", "", [] { return 7; });
  engine.run_for(1 * msec);
  EXPECT_EQ(rec.values(late), (std::vector<std::int64_t>{0, 0, 7}));
}

TEST(TraceRecorder, QualifiedNamesAndLookup) {
  TraceRecorder rec;
  const auto host_series = rec.add_counter("ticks", "", [] { return 0; });
  const auto scoped = rec.add_gauge("e_cpu", "c0", [] { return 0; });

  EXPECT_EQ(rec.qualified_name(host_series), "ticks");
  EXPECT_EQ(rec.qualified_name(scoped), "c0.e_cpu");
  EXPECT_EQ(rec.find("c0.e_cpu"), std::optional<SeriesHandle>(scoped));
  EXPECT_EQ(rec.find("nope"), std::nullopt);
  EXPECT_EQ(rec.series_names(),
            (std::vector<std::string>{"ticks", "c0.e_cpu"}));
  EXPECT_EQ(rec.series_names("c0"), (std::vector<std::string>{"c0.e_cpu"}));
  EXPECT_EQ(rec.info(scoped).kind, SeriesKind::kGauge);
  EXPECT_EQ(rec.info(host_series).kind, SeriesKind::kCounter);
}

TEST(TraceRecorder, CsvSerializesExactly) {
  TraceRecorder rec;
  std::int64_t v = 3;
  rec.add_gauge("g", "", [&] { return v; });
  rec.add_counter("n", "c1", [] { return 10; });
  rec.sample_now(0);
  v = -4;
  rec.sample_now(1000);

  EXPECT_EQ(rec.to_csv(),
            "time_us,g,c1.n\n"
            "0,3,10\n"
            "1000,-4,10\n");
}

TEST(TraceRecorder, JsonSerializesExactly) {
  TraceRecorder rec;
  rec.add_counter("n", "c1", [] { return 10; });
  rec.sample_now(500);

  EXPECT_EQ(rec.to_json(),
            "{\"times\":[500],\"series\":[{\"name\":\"c1.n\","
            "\"kind\":\"counter\",\"scope\":\"c1\",\"values\":[10]}]}");
}

TEST(TraceRecorder, HostWiresKernelSeriesWhenEnabled) {
  container::HostConfig config;
  config.cpus = 4;
  config.ram = 4 * GiB;
  config.enable_tracing = true;
  container::Host host(config);
  ASSERT_NE(host.trace(), nullptr);

  container::ContainerRuntime runtime(host);
  runtime.run({.name = "c0"});
  host.run_for(100 * msec);

  const TraceRecorder& rec = *host.trace();
  EXPECT_EQ(rec.sample_count(), 100u);
  // One series from each hooked subsystem.
  for (const char* name :
       {"sim.ticks", "sched.slack_total", "sched.nr_running", "mem.free",
        "mem.kswapd_active", "core.update_rounds", "c0.e_cpu", "c0.e_mem",
        "c0.cpu_updates", "c0.mem_updates", "c0.cpu_usage", "c0.mem_usage"}) {
    EXPECT_TRUE(rec.find(name).has_value()) << "missing series " << name;
  }
  // sim.ticks counts the recorder's own tick too, sampled post-increment.
  EXPECT_EQ(rec.latest(*rec.find("sim.ticks")), 100);
}

TEST(TraceRecorder, DisabledHostHasNoRecorder) {
  container::Host host;
  EXPECT_EQ(host.trace(), nullptr);
}

TEST(TraceRecorder, StoppedContainerSeriesRetireAndFlatline) {
  container::HostConfig config;
  config.cpus = 2;
  config.ram = 2 * GiB;
  config.enable_tracing = true;
  container::Host host(config);
  container::ContainerRuntime runtime(host);
  auto& c = runtime.run({.name = "gone"});
  host.run_for(10 * msec);
  const auto h = host.trace()->find("gone.e_cpu");
  const auto hm = host.trace()->find("gone.mem_usage");
  ASSERT_TRUE(h.has_value());
  ASSERT_TRUE(hm.has_value());
  const std::int64_t before = host.trace()->latest(*h);
  const std::int64_t mem_before = host.trace()->latest(*hm);

  c.stop();  // retires the container's series; stop() also uncharges memory
  host.run_for(10 * msec);
  EXPECT_EQ(host.trace()->sample_count(), 20u);
  EXPECT_EQ(host.trace()->latest(*h), before);
  EXPECT_EQ(host.trace()->latest(*hm), mem_before);
}

// --- TraceAssert matchers ---------------------------------------------------

TEST(TraceMatchers, NonDecreasingFlagsRegression) {
  TraceRecorder rec;
  std::int64_t n = 0;
  rec.add_counter("n", "", [&] { return n; });
  n = 1;
  rec.sample_now(0);
  n = 3;
  rec.sample_now(1000);
  EXPECT_TRUE(arv::testing::trace::NonDecreasing(rec, "n"));
  EXPECT_TRUE(arv::testing::trace::AllCountersMonotonic(rec));

  n = 2;
  rec.sample_now(2000);
  const auto result = arv::testing::trace::NonDecreasing(rec, "n");
  EXPECT_FALSE(result);
  EXPECT_NE(std::string(result.message()).find("decreased"), std::string::npos);
  EXPECT_FALSE(arv::testing::trace::AllCountersMonotonic(rec));
}

TEST(TraceMatchers, WithinBoundsFlagsEscape) {
  TraceRecorder rec;
  std::int64_t v = 5;
  rec.add_gauge("v", "", [&] { return v; });
  rec.add_gauge("lo", "", [] { return 2; });
  rec.add_gauge("hi", "", [] { return 6; });
  rec.sample_now(0);
  EXPECT_TRUE(arv::testing::trace::WithinBounds(rec, "v", "lo", "hi"));

  v = 7;
  rec.sample_now(1000);
  EXPECT_FALSE(arv::testing::trace::WithinBounds(rec, "v", "lo", "hi"));
  EXPECT_FALSE(arv::testing::trace::WithinBounds(rec, "missing", "lo", "hi"));
}

TEST(TraceMatchers, StepBoundedCountsUpdateRounds) {
  TraceRecorder rec;
  std::int64_t v = 4;
  std::int64_t rounds = 0;
  rec.add_gauge("v", "", [&] { return v; });
  rec.add_counter("rounds", "", [&] { return rounds; });
  rec.sample_now(0);
  v = 3;  // one step down, but no update round completed
  rec.sample_now(1000);
  EXPECT_FALSE(arv::testing::trace::StepBounded(rec, "v", "rounds", 1));

  v = 4;
  rounds = 1;  // back up within one round: allowed
  rec.sample_now(2000);
  TraceRecorder clean;
  std::int64_t cv = 4;
  std::int64_t crounds = 0;
  clean.add_gauge("v", "", [&] { return cv; });
  clean.add_counter("rounds", "", [&] { return crounds; });
  clean.sample_now(0);
  cv = 5;
  crounds = 1;
  clean.sample_now(1000);
  EXPECT_TRUE(arv::testing::trace::StepBounded(clean, "v", "rounds", 1));
}

TEST(TraceMatchers, ResetsUnderPressureChecksUpdatedSamplesOnly) {
  TraceRecorder rec;
  std::int64_t v = 30;
  std::int64_t target = 15;
  std::int64_t rounds = 0;
  std::int64_t active = 0;
  rec.add_gauge("v", "", [&] { return v; });
  rec.add_gauge("target", "", [&] { return target; });
  rec.add_counter("rounds", "", [&] { return rounds; });
  rec.add_gauge("active", "", [&] { return active; });
  rec.sample_now(0);

  // Pressure without an update round: nothing to check.
  active = 1;
  rec.sample_now(1000);
  EXPECT_TRUE(arv::testing::trace::ResetsUnderPressure(rec, "v", "target",
                                                       "rounds", "active"));

  // An update round under pressure that did NOT reset: violation.
  rounds = 1;
  rec.sample_now(2000);
  EXPECT_FALSE(arv::testing::trace::ResetsUnderPressure(rec, "v", "target",
                                                        "rounds", "active"));

  // The reset itself satisfies the matcher.
  v = 15;
  rounds = 2;
  rec.sample_now(3000);
  TraceRecorder ok;
  ok.add_gauge("v", "", [&] { return v; });
  ok.add_gauge("target", "", [&] { return target; });
  ok.add_counter("rounds", "", [&] { return rounds; });
  ok.add_gauge("active", "", [&] { return active; });
  ok.sample_now(0);
  rounds = 3;
  ok.sample_now(1000);
  EXPECT_TRUE(arv::testing::trace::ResetsUnderPressure(ok, "v", "target",
                                                       "rounds", "active"));
}

// --- golden helpers ---------------------------------------------------------

TEST(Golden, DiffReportsFirstMismatchWithLineNumbers) {
  const std::string expected = "a\nb\nc\n";
  const std::string actual = "a\nB\nc\n";
  const std::string diff = diff_lines(expected, actual);
  EXPECT_NE(diff.find("line 2"), std::string::npos);
  EXPECT_NE(diff.find("B"), std::string::npos);
  EXPECT_TRUE(diff_lines(expected, expected).empty());
}

TEST(Golden, DiffReportsTrailingNewlineOnlyMismatch) {
  const std::string diff = diff_lines("a\nb\n", "a\nb");
  EXPECT_FALSE(diff.empty());
  EXPECT_NE(diff.find("trailing newline"), std::string::npos);
}

TEST(Golden, MissingGoldenFailsWithInstructions) {
  if (regenerate_requested()) {
    GTEST_SKIP() << "ARV_REGOLDEN set: compare_golden would create the file";
  }
  const auto result =
      compare_golden("/nonexistent-dir/never-written.csv", "x\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("ARV_REGOLDEN"), std::string::npos);
}

}  // namespace
}  // namespace arv::obs
