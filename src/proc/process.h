// Process and namespace model.
//
// A deliberately small task_struct analogue: enough to reproduce the
// container-lifetime problem the paper solves in §3.2. Containers are
// ephemeral — the init process that creates the per-container namespaces
// exec()s the user command and dies, so a kernel-side updater would lose its
// handle to the sys_namespace. The paper's fix, reproduced here verbatim in
// ProcessTable::execve(): when a task exec()s and the owning init of a
// namespace is TASK_DEAD, ownership transfers to the exec()ing task, which
// becomes the container's new init.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cgroup/cgroup.h"
#include "src/util/types.h"

namespace arv::proc {

using Pid = std::int32_t;
inline constexpr Pid kHostInit = 1;

/// Base class for all namespace objects. Each instance tracks its owning
/// task — the paper's sys_namespace needs a live owner so the kernel can
/// find and update it from outside the container.
class Namespace {
 public:
  enum class Kind { kPid, kMount, kNet, kUts, kUser, kSys };

  explicit Namespace(Kind kind) : kind_(kind) {}
  virtual ~Namespace() = default;
  Namespace(const Namespace&) = delete;
  Namespace& operator=(const Namespace&) = delete;

  Kind kind() const { return kind_; }
  Pid owner() const { return owner_; }
  void set_owner(Pid pid) { owner_ = pid; }

 private:
  Kind kind_;
  Pid owner_ = kHostInit;
};

/// PID namespace: maps host pids to per-container virtual pids starting at 1.
class PidNamespace final : public Namespace {
 public:
  PidNamespace() : Namespace(Kind::kPid) {}

  /// Register a host pid; assigns the next virtual pid (init gets vpid 1).
  Pid assign_vpid(Pid host_pid);
  void remove(Pid host_pid);

  /// Virtual pid for a host pid, or -1 if not a member.
  Pid vpid_of(Pid host_pid) const;
  /// Host pid for a virtual pid, or -1.
  Pid host_of(Pid vpid) const;
  std::size_t size() const { return host_to_vpid_.size(); }

 private:
  Pid next_vpid_ = 1;
  std::map<Pid, Pid> host_to_vpid_;
  std::map<Pid, Pid> vpid_to_host_;
};

enum class TaskState { kRunning, kDead };

struct Task {
  Pid pid = -1;
  Pid parent = -1;
  std::string comm = "init";
  TaskState state = TaskState::kRunning;
  cgroup::CgroupId cgroup = cgroup::kRootCgroup;
  /// Namespaces by kind; tasks share instances via shared_ptr, exactly like
  /// the kernel's reference-counted nsproxy.
  std::map<Namespace::Kind, std::shared_ptr<Namespace>> namespaces;
};

class ProcessTable {
 public:
  /// Creates the host init task (pid 1) in the root namespaces.
  ProcessTable();

  /// Fork: child inherits parent's namespaces, cgroup, and comm. If the
  /// parent is in a PID namespace, the child is registered there too.
  Pid fork(Pid parent);

  /// Exec: replaces the task image (renames comm) and applies the paper's
  /// ownership-transfer rule — any namespace of this task whose owner is
  /// dead (or unknown) becomes owned by this task.
  void execve(Pid pid, const std::string& comm);

  /// Exit: marks the task dead, removes it from its PID namespace, and
  /// reparents its children to the host init.
  void exit(Pid pid);

  bool alive(Pid pid) const;
  bool exists(Pid pid) const;
  const Task& get(Pid pid) const;

  void set_cgroup(Pid pid, cgroup::CgroupId id);

  /// unshare()-style: give the task a new namespace instance of its kind,
  /// owned by the task. For PID namespaces the task becomes vpid 1.
  void set_namespace(Pid pid, std::shared_ptr<Namespace> ns);

  /// The task's namespace of `kind`, or nullptr if it only has the initial
  /// (host) namespaces for that kind.
  std::shared_ptr<Namespace> namespace_of(Pid pid, Namespace::Kind kind) const;

  /// A task is "in a container" when it has a private sys namespace — the
  /// predicate the virtual sysfs uses to decide whether to redirect queries.
  bool in_container(Pid pid) const;

  std::vector<Pid> tasks_in_cgroup(cgroup::CgroupId id) const;
  std::vector<Pid> children_of(Pid pid) const;
  std::size_t live_count() const;

 private:
  Task& get_mutable(Pid pid);

  Pid next_pid_ = kHostInit;
  std::map<Pid, Task> tasks_;
};

}  // namespace arv::proc
