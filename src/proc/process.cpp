#include "src/proc/process.h"

#include <algorithm>

#include "src/util/assert.h"

namespace arv::proc {

Pid PidNamespace::assign_vpid(Pid host_pid) {
  ARV_ASSERT_MSG(host_to_vpid_.find(host_pid) == host_to_vpid_.end(),
                 "host pid already in this namespace");
  const Pid vpid = next_vpid_++;
  host_to_vpid_[host_pid] = vpid;
  vpid_to_host_[vpid] = host_pid;
  return vpid;
}

void PidNamespace::remove(Pid host_pid) {
  const auto it = host_to_vpid_.find(host_pid);
  if (it == host_to_vpid_.end()) {
    return;
  }
  vpid_to_host_.erase(it->second);
  host_to_vpid_.erase(it);
}

Pid PidNamespace::vpid_of(Pid host_pid) const {
  const auto it = host_to_vpid_.find(host_pid);
  return it == host_to_vpid_.end() ? -1 : it->second;
}

Pid PidNamespace::host_of(Pid vpid) const {
  const auto it = vpid_to_host_.find(vpid);
  return it == vpid_to_host_.end() ? -1 : it->second;
}

ProcessTable::ProcessTable() {
  Task init;
  init.pid = next_pid_++;
  init.parent = init.pid;
  init.comm = "init";
  tasks_[init.pid] = std::move(init);
}

Pid ProcessTable::fork(Pid parent) {
  ARV_ASSERT_MSG(alive(parent), "cannot fork a dead or unknown task");
  const Task& parent_task = get(parent);
  Task child;
  child.pid = next_pid_++;
  child.parent = parent;
  child.comm = parent_task.comm;
  child.cgroup = parent_task.cgroup;
  child.namespaces = parent_task.namespaces;
  if (auto pid_ns = std::dynamic_pointer_cast<PidNamespace>(
          namespace_of(parent, Namespace::Kind::kPid))) {
    pid_ns->assign_vpid(child.pid);
  }
  const Pid pid = child.pid;
  tasks_[pid] = std::move(child);
  return pid;
}

void ProcessTable::execve(Pid pid, const std::string& comm) {
  ARV_ASSERT_MSG(alive(pid), "cannot exec in a dead task");
  Task& task = get_mutable(pid);
  task.comm = comm;
  // The paper's §3.2 fix: "change the ownership of sys_namespace to the
  // current task when the state of the original init process changes to
  // TASK_DEAD". Applied uniformly to every namespace the task carries.
  for (auto& [kind, ns] : task.namespaces) {
    const Pid owner = ns->owner();
    if (owner == pid || !alive(owner)) {
      ns->set_owner(pid);
    }
  }
}

void ProcessTable::exit(Pid pid) {
  ARV_ASSERT_MSG(pid != kHostInit, "host init does not exit");
  ARV_ASSERT_MSG(alive(pid), "double exit");
  Task& task = get_mutable(pid);
  task.state = TaskState::kDead;
  if (auto pid_ns = std::dynamic_pointer_cast<PidNamespace>(
          namespace_of(pid, Namespace::Kind::kPid))) {
    pid_ns->remove(pid);
  }
  for (auto& [other_pid, other] : tasks_) {
    if (other.parent == pid && other.state == TaskState::kRunning) {
      other.parent = kHostInit;
    }
  }
}

bool ProcessTable::alive(Pid pid) const {
  const auto it = tasks_.find(pid);
  return it != tasks_.end() && it->second.state == TaskState::kRunning;
}

bool ProcessTable::exists(Pid pid) const { return tasks_.find(pid) != tasks_.end(); }

const Task& ProcessTable::get(Pid pid) const {
  const auto it = tasks_.find(pid);
  ARV_ASSERT_MSG(it != tasks_.end(), "unknown pid");
  return it->second;
}

Task& ProcessTable::get_mutable(Pid pid) {
  const auto it = tasks_.find(pid);
  ARV_ASSERT_MSG(it != tasks_.end(), "unknown pid");
  return it->second;
}

void ProcessTable::set_cgroup(Pid pid, cgroup::CgroupId id) {
  get_mutable(pid).cgroup = id;
}

void ProcessTable::set_namespace(Pid pid, std::shared_ptr<Namespace> ns) {
  ARV_ASSERT(ns != nullptr);
  Task& task = get_mutable(pid);
  ns->set_owner(pid);
  if (auto pid_ns = std::dynamic_pointer_cast<PidNamespace>(ns)) {
    pid_ns->assign_vpid(pid);  // the creator becomes vpid 1
  }
  task.namespaces[ns->kind()] = std::move(ns);
}

std::shared_ptr<Namespace> ProcessTable::namespace_of(Pid pid,
                                                      Namespace::Kind kind) const {
  const Task& task = get(pid);
  const auto it = task.namespaces.find(kind);
  return it == task.namespaces.end() ? nullptr : it->second;
}

bool ProcessTable::in_container(Pid pid) const {
  return exists(pid) && namespace_of(pid, Namespace::Kind::kSys) != nullptr;
}

std::vector<Pid> ProcessTable::tasks_in_cgroup(cgroup::CgroupId id) const {
  std::vector<Pid> out;
  for (const auto& [pid, task] : tasks_) {
    if (task.cgroup == id && task.state == TaskState::kRunning) {
      out.push_back(pid);
    }
  }
  return out;
}

std::vector<Pid> ProcessTable::children_of(Pid pid) const {
  std::vector<Pid> out;
  for (const auto& [child_pid, task] : tasks_) {
    if (task.parent == pid && child_pid != pid &&
        task.state == TaskState::kRunning) {
      out.push_back(child_pid);
    }
  }
  return out;
}

std::size_t ProcessTable::live_count() const {
  return static_cast<std::size_t>(
      std::count_if(tasks_.begin(), tasks_.end(), [](const auto& entry) {
        return entry.second.state == TaskState::kRunning;
      }));
}

}  // namespace arv::proc
