// Mini-OpenMP runtime (§4.1, OpenMP case study).
//
// A program is a sequence of parallel regions separated by serial sections.
// At each region entry the runtime picks a team size:
//
//   static    OMP_DYNAMIC=false: one thread per online CPU (via sysconf,
//             so a stock container sees the *host* CPU count);
//   dynamic   libgomp's gomp_dynamic_max_threads: n_onln - loadavg;
//   adaptive  the paper's change: team = E_CPU ("we substitute n_onln with
//             E_CPU and remove the second term of the formula");
//   fixed     OMP_NUM_THREADS pinned by the user.
//
// Region progress uses the same efficiency curve as the GC model: sub-linear
// scaling in team size plus an oversubscription penalty when the team
// exceeds the CPUs actually granted.
#pragma once

#include <string>
#include <vector>

#include "src/container/container.h"
#include "src/obs/trace_recorder.h"
#include "src/sched/fair_scheduler.h"
#include "src/util/types.h"

namespace arv::omp {

enum class TeamStrategy { kStatic, kDynamic, kAdaptive, kFixed };

struct OmpWorkload {
  std::string name = "synthetic";
  int regions = 40;
  /// Parallel CPU work per region (total across the team).
  SimDuration region_work = 250 * units::msec;
  /// Serial CPU work between regions, as a fraction of region_work.
  double serial_frac = 0.05;
  /// Parallel-efficiency loss per extra team member.
  double alpha = 0.02;
  /// Oversubscription penalty per thread beyond granted CPUs. OpenMP teams
  /// degrade more gently than GC workers (no shared task queue), so this is
  /// an order of magnitude below the JVM's gc_beta.
  double beta = 0.03;
};

struct OmpStats {
  SimTime start_time = 0;
  SimTime end_time = -1;
  int regions_done = 0;
  SimDuration exec_time() const { return end_time >= 0 ? end_time - start_time : -1; }
};

class OmpProcess : public sched::Schedulable {
 public:
  OmpProcess(container::Host& host, container::Container& target,
             TeamStrategy strategy, OmpWorkload workload, int fixed_threads = 0);
  ~OmpProcess() override;
  OmpProcess(const OmpProcess&) = delete;
  OmpProcess& operator=(const OmpProcess&) = delete;

  // --- sched::Schedulable ----------------------------------------------------
  int runnable_threads() const override;
  void consume(SimTime now, SimDuration dt, CpuTime grant) override;

  bool finished() const { return phase_ == Phase::kDone; }
  const OmpStats& stats() const { return stats_; }
  const OmpWorkload& workload() const { return workload_; }
  const std::vector<int>& team_size_trace() const { return team_sizes_; }
  TeamStrategy strategy() const { return strategy_; }

 private:
  enum class Phase { kSerial, kParallel, kDone };

  /// gomp_dynamic_max_threads / the paper's substitution.
  int choose_team_size() const;
  void enter_region(SimTime now);

  container::Host& host_;
  container::Container& container_;
  proc::Pid pid_;
  TeamStrategy strategy_;
  OmpWorkload workload_;
  int fixed_threads_;

  Phase phase_ = Phase::kSerial;
  int region_index_ = 0;
  int team_size_ = 1;
  CpuTime phase_remaining_ = 0;
  OmpStats stats_;
  std::vector<int> team_sizes_;
  bool attached_ = false;
  obs::TraceRecorder* trace_ = nullptr;  ///< host's recorder; may be null
  std::vector<obs::SeriesHandle> trace_handles_;
};

}  // namespace arv::omp
