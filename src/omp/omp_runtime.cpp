#include "src/omp/omp_runtime.h"

#include <algorithm>
#include <cmath>

#include "src/util/assert.h"

namespace arv::omp {

OmpProcess::OmpProcess(container::Host& host, container::Container& target,
                       TeamStrategy strategy, OmpWorkload workload,
                       int fixed_threads)
    : host_(host),
      container_(target),
      pid_(target.spawn_process("omp:" + workload.name)),
      strategy_(strategy),
      workload_(std::move(workload)),
      fixed_threads_(fixed_threads) {
  ARV_ASSERT(workload_.regions >= 1);
  if (strategy_ == TeamStrategy::kFixed) {
    ARV_ASSERT_MSG(fixed_threads_ >= 1, "kFixed requires OMP_NUM_THREADS");
  }
  stats_.start_time = host_.now();
  phase_ = Phase::kSerial;
  phase_remaining_ = static_cast<CpuTime>(
      static_cast<double>(workload_.region_work) * workload_.serial_frac);
  if (phase_remaining_ <= 0) {
    phase_remaining_ = 1;
  }
  host_.scheduler().attach(container_.cgroup(), this);
  attached_ = true;

  if ((trace_ = host_.trace()) != nullptr) {
    const std::string& scope = container_.name();
    trace_handles_.push_back(trace_->add_gauge("omp.team_size", scope, [this] {
      return phase_ == Phase::kParallel ? team_size_ : 0;
    }));
    trace_handles_.push_back(trace_->add_counter(
        "omp.regions_done", scope, [this] { return stats_.regions_done; }));
    trace_handles_.push_back(trace_->add_gauge(
        "omp.in_parallel", scope,
        [this] { return phase_ == Phase::kParallel ? 1 : 0; }));
  }
}

OmpProcess::~OmpProcess() {
  if (attached_) {
    host_.scheduler().detach(container_.cgroup(), this);
  }
  if (trace_ != nullptr) {
    for (const obs::SeriesHandle handle : trace_handles_) {
      trace_->retire(handle);
    }
  }
}

int OmpProcess::runnable_threads() const {
  switch (phase_) {
    case Phase::kSerial:
      return 1;
    case Phase::kParallel:
      return team_size_;
    case Phase::kDone:
      return 0;
  }
  return 0;
}

int OmpProcess::choose_team_size() const {
  const int n_onln = static_cast<int>(
      host_.sysfs().sysconf(pid_, vfs::Sysconf::kNProcessorsOnln));
  switch (strategy_) {
    case TeamStrategy::kStatic:
      return std::max(1, n_onln);
    case TeamStrategy::kDynamic: {
      // libgomp: n_onln - loadavg, floored at 1. The load average includes
      // every runnable task on the host, which is exactly why the paper
      // finds this heuristic misfires in multi-tenant hosts (§5.2).
      const int load = static_cast<int>(std::lround(host_.scheduler().loadavg()));
      return std::max(1, n_onln - load);
    }
    case TeamStrategy::kAdaptive:
      // n_onln through the container's virtual sysfs *is* E_CPU.
      return std::max(1, n_onln);
    case TeamStrategy::kFixed:
      return fixed_threads_;
  }
  return 1;
}

void OmpProcess::enter_region(SimTime /*now*/) {
  team_size_ = choose_team_size();
  team_sizes_.push_back(team_size_);
  phase_ = Phase::kParallel;
  phase_remaining_ = workload_.region_work;
}

void OmpProcess::consume(SimTime now, SimDuration dt, CpuTime grant) {
  if (phase_ == Phase::kDone || grant <= 0) {
    return;
  }
  CpuTime useful = grant;
  if (phase_ == Phase::kParallel) {
    const double granted_cpus = static_cast<double>(grant) / static_cast<double>(dt);
    const double oversub =
        std::max(0.0, static_cast<double>(team_size_) - granted_cpus);
    const double efficiency =
        1.0 / (1.0 + workload_.alpha * static_cast<double>(team_size_ - 1)) /
        (1.0 + workload_.beta * oversub);
    useful = static_cast<CpuTime>(static_cast<double>(grant) * efficiency);
  }
  phase_remaining_ -= useful;
  if (phase_remaining_ > 0) {
    return;
  }

  // Phase complete; residual work beyond the boundary is discarded (at most
  // one tick's worth — noise at the model's granularity).
  if (phase_ == Phase::kSerial) {
    enter_region(now);
    return;
  }
  stats_.regions_done += 1;
  region_index_ += 1;
  if (region_index_ >= workload_.regions) {
    phase_ = Phase::kDone;
    stats_.end_time = now;
    return;
  }
  phase_ = Phase::kSerial;
  phase_remaining_ = std::max<CpuTime>(
      1, static_cast<CpuTime>(static_cast<double>(workload_.region_work) *
                              workload_.serial_frac));
}

}  // namespace arv::omp
