#include "src/container/container.h"

#include "src/util/assert.h"
#include "src/util/log.h"

namespace arv::container {

Container::Container(Host& host, const ContainerConfig& config)
    : host_(host), config_(config) {
  auto& tree = host_.cgroups();
  auto& processes = host_.processes();

  // 1. Create the control group and apply the requested limits.
  cgroup_ = tree.create(config_.name);
  tree.set_cpu_shares(cgroup_, config_.cpu_shares);
  if (config_.cfs_quota_us != kUnlimited) {
    tree.set_cfs_period(cgroup_, config_.cfs_period_us);
    tree.set_cfs_quota(cgroup_, config_.cfs_quota_us);
  }
  if (!config_.cpuset.empty()) {
    tree.set_cpuset(cgroup_, config_.cpuset);
  }
  if (config_.mem_limit != kUnlimited) {
    tree.set_mem_limit(cgroup_, config_.mem_limit);
  }
  if (config_.mem_soft_limit != kUnlimited) {
    tree.set_mem_soft_limit(cgroup_, config_.mem_soft_limit);
  }
  host_.sysfs().export_cgroup_files(cgroup_);

  // 2. §3.2 launch sequence: a bootstrap init sets up the namespaces...
  const proc::Pid bootstrap = processes.fork(proc::kHostInit);
  processes.set_cgroup(bootstrap, cgroup_);
  processes.set_namespace(bootstrap, std::make_shared<proc::PidNamespace>());
  if (config_.enable_resource_view) {
    view_ = std::make_shared<core::SysNamespace>(cgroup_, config_.view_params);
    processes.set_namespace(bootstrap, view_);
    host_.monitor().register_ns(view_);
  }

  // ...forks the workload, exits, and the workload's exec() takes over the
  // namespace ownership (the paper's TASK_DEAD handover).
  init_pid_ = processes.fork(bootstrap);
  processes.exit(bootstrap);
  processes.execve(init_pid_, config_.name + "/init");
  if (view_) {
    ARV_ASSERT_MSG(view_->owner() == init_pid_,
                   "sys_namespace ownership must transfer to the new init");
  }

  // 3. Per-container consumption series, retired again in stop() so a
  // stopped container's columns flatline by recorder guarantee rather than
  // by relying on the accessors keeping per-cgroup accounting forever.
  if ((trace_ = host_.trace()) != nullptr) {
    Host* h = &host_;
    const cgroup::CgroupId cg = cgroup_;
    trace_handles_.push_back(trace_->add_counter(
        "cpu_usage", config_.name,
        [h, cg] { return h->scheduler().total_usage(cg); }));
    trace_handles_.push_back(trace_->add_counter(
        "cpu_throttled", config_.name,
        [h, cg] { return h->scheduler().throttled_time(cg); }));
    trace_handles_.push_back(
        trace_->add_gauge("mem_usage", config_.name,
                          [h, cg] { return h->memory().usage(cg); }));
    trace_handles_.push_back(
        trace_->add_gauge("mem_swapped", config_.name,
                          [h, cg] { return h->memory().swapped(cg); }));
  }
  running_ = true;
}

proc::Pid Container::spawn_process(const std::string& comm) {
  ARV_ASSERT_MSG(running_, "container is stopped");
  const proc::Pid pid = host_.processes().fork(init_pid_);
  host_.processes().execve(pid, comm);
  return pid;
}

void Container::update_cpu_shares(std::int64_t shares) {
  host_.cgroups().set_cpu_shares(cgroup_, shares);
}

void Container::update_cfs_quota(std::int64_t quota_us) {
  host_.cgroups().set_cfs_quota(cgroup_, quota_us);
}

void Container::update_cpuset(const CpuSet& mask) {
  host_.cgroups().set_cpuset(cgroup_, mask);
}

void Container::update_mem_limit(Bytes limit) {
  host_.cgroups().set_mem_limit(cgroup_, limit);
}

void Container::update_mem_soft_limit(Bytes soft) {
  host_.cgroups().set_mem_soft_limit(cgroup_, soft);
}

void Container::stop() {
  if (!running_) {
    return;
  }
  auto& processes = host_.processes();
  for (const proc::Pid pid : processes.tasks_in_cgroup(cgroup_)) {
    processes.exit(pid);
  }
  // Release any memory still charged to the cgroup before destroying it.
  auto& memory = host_.memory();
  const Bytes committed = memory.committed(cgroup_);
  if (committed > 0) {
    memory.uncharge(cgroup_, committed);
  }
  host_.cgroups().destroy(cgroup_);  // fires kDestroyed -> monitor/vfs cleanup
  if (trace_ != nullptr) {
    for (const obs::SeriesHandle handle : trace_handles_) {
      trace_->retire(handle);
    }
    trace_handles_.clear();
  }
  running_ = false;
  ARV_LOG(kDebug, "container", "stopped %s", config_.name.c_str());
}

Container& ContainerRuntime::run(const ContainerConfig& config,
                                 const std::string& command) {
  ContainerConfig named = config;
  if (named.name.empty()) {
    named.name = "c" + std::to_string(auto_name_counter_++);
  }
  auto container = std::make_unique<Container>(host_, named);
  host_.processes().execve(container->init_pid(), command);
  containers_.push_back(std::move(container));
  return *containers_.back();
}

Container* ContainerRuntime::find(const std::string& name) {
  for (const auto& container : containers_) {
    if (container->name() == name) {
      return container.get();
    }
  }
  return nullptr;
}

}  // namespace arv::container
