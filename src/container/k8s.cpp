#include "src/container/k8s.h"

#include <cctype>
#include <charconv>

#include "src/util/assert.h"

namespace arv::container {

QosClass qos_class(const K8sResources& r) {
  const bool any = r.request_millicpu > 0 || r.limit_millicpu > 0 ||
                   r.request_memory > 0 || r.limit_memory > 0;
  if (!any) {
    return QosClass::kBestEffort;
  }
  // Guaranteed: limits set for both resources and requests equal to them
  // (unset requests default to limits).
  const bool cpu_guaranteed =
      r.limit_millicpu > 0 &&
      (r.request_millicpu == 0 || r.request_millicpu == r.limit_millicpu);
  const bool mem_guaranteed =
      r.limit_memory > 0 &&
      (r.request_memory == 0 || r.request_memory == r.limit_memory);
  return cpu_guaranteed && mem_guaranteed ? QosClass::kGuaranteed
                                          : QosClass::kBurstable;
}

ContainerConfig pod_container(const std::string& name, const K8sResources& r,
                              bool enable_view) {
  ARV_ASSERT(r.request_millicpu >= 0 && r.limit_millicpu >= 0);
  ARV_ASSERT(r.request_memory >= 0 && r.limit_memory >= 0);
  ARV_ASSERT_MSG(r.limit_millicpu == 0 || r.request_millicpu <= r.limit_millicpu,
                 "cpu request exceeds limit");
  ARV_ASSERT_MSG(r.limit_memory == 0 || r.request_memory <= r.limit_memory,
                 "memory request exceeds limit");
  ContainerConfig config;
  config.name = name;
  config.enable_resource_view = enable_view;
  if (r.request_millicpu > 0) {
    // kubelet: MilliCPUToShares, clamped to the kernel minimum of 2.
    config.cpu_shares = std::max<std::int64_t>(2, r.request_millicpu * 1024 / 1000);
  }
  if (r.limit_millicpu > 0) {
    // kubelet: MilliCPUToQuota with the default 100 ms period.
    config.cfs_period_us = 100'000;
    config.cfs_quota_us = r.limit_millicpu * config.cfs_period_us / 1000;
  }
  if (r.limit_memory > 0) {
    config.mem_limit = r.limit_memory;
  }
  if (r.request_memory > 0) {
    config.mem_soft_limit = r.request_memory;
  }
  return config;
}

std::int64_t parse_cpu_quantity(const std::string& text) {
  if (text.empty()) {
    return -1;
  }
  if (text.back() == 'm') {
    std::int64_t milli = 0;
    const auto* end = text.data() + text.size() - 1;
    const auto [ptr, ec] = std::from_chars(text.data(), end, milli);
    return ec == std::errc{} && ptr == end && milli >= 0 ? milli : -1;
  }
  // Whole (or fractional) cores.
  double cores = 0;
  try {
    std::size_t used = 0;
    cores = std::stod(text, &used);
    if (used != text.size() || cores < 0) {
      return -1;
    }
  } catch (...) {
    return -1;
  }
  return static_cast<std::int64_t>(cores * 1000.0 + 0.5);
}

Bytes parse_memory_quantity(const std::string& text) {
  if (text.empty()) {
    return -1;
  }
  std::size_t pos = 0;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.')) {
    ++pos;
  }
  if (pos == 0) {
    return -1;
  }
  double value = 0;
  try {
    std::size_t used = 0;
    value = std::stod(text.substr(0, pos), &used);
    if (used != pos || value < 0) {
      return -1;
    }
  } catch (...) {
    return -1;
  }
  const std::string suffix = text.substr(pos);
  double scale = 1.0;
  if (suffix == "") {
    scale = 1.0;
  } else if (suffix == "Ki") {
    scale = 1024.0;
  } else if (suffix == "Mi") {
    scale = 1024.0 * 1024.0;
  } else if (suffix == "Gi") {
    scale = 1024.0 * 1024.0 * 1024.0;
  } else if (suffix == "Ti") {
    scale = 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else if (suffix == "k" || suffix == "K") {
    scale = 1e3;
  } else if (suffix == "M") {
    scale = 1e6;
  } else if (suffix == "G") {
    scale = 1e9;
  } else if (suffix == "T") {
    scale = 1e12;
  } else {
    return -1;
  }
  return static_cast<Bytes>(value * scale);
}

}  // namespace arv::container
