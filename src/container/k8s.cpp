#include "src/container/k8s.h"

#include <cctype>
#include <charconv>
#include <cmath>

#include "src/util/assert.h"

namespace arv::container {

QosClass qos_class(const K8sResources& r) {
  const bool any = r.request_millicpu > 0 || r.limit_millicpu > 0 ||
                   r.request_memory > 0 || r.limit_memory > 0;
  if (!any) {
    return QosClass::kBestEffort;
  }
  // Guaranteed: limits set for both resources and requests equal to them
  // (unset requests default to limits).
  const bool cpu_guaranteed =
      r.limit_millicpu > 0 &&
      (r.request_millicpu == 0 || r.request_millicpu == r.limit_millicpu);
  const bool mem_guaranteed =
      r.limit_memory > 0 &&
      (r.request_memory == 0 || r.request_memory == r.limit_memory);
  return cpu_guaranteed && mem_guaranteed ? QosClass::kGuaranteed
                                          : QosClass::kBurstable;
}

ContainerConfig pod_container(const std::string& name, const K8sResources& r,
                              bool enable_view) {
  ARV_ASSERT(r.request_millicpu >= 0 && r.limit_millicpu >= 0);
  ARV_ASSERT(r.request_memory >= 0 && r.limit_memory >= 0);
  ARV_ASSERT_MSG(r.limit_millicpu == 0 || r.request_millicpu <= r.limit_millicpu,
                 "cpu request exceeds limit");
  ARV_ASSERT_MSG(r.limit_memory == 0 || r.request_memory <= r.limit_memory,
                 "memory request exceeds limit");
  ContainerConfig config;
  config.name = name;
  config.enable_resource_view = enable_view;
  if (r.request_millicpu > 0) {
    // kubelet: MilliCPUToShares, clamped to the kernel minimum of 2.
    config.cpu_shares = std::max<std::int64_t>(2, r.request_millicpu * 1024 / 1000);
  }
  if (r.limit_millicpu > 0) {
    // kubelet: MilliCPUToQuota with the default 100 ms period.
    config.cfs_period_us = 100'000;
    config.cfs_quota_us = r.limit_millicpu * config.cfs_period_us / 1000;
  }
  if (r.limit_memory > 0) {
    config.mem_limit = r.limit_memory;
  }
  if (r.request_memory > 0) {
    config.mem_soft_limit = r.request_memory;
  }
  return config;
}

namespace {

/// 2^63 as a double: any result at or above this cannot be represented in a
/// signed 64-bit quantity, and casting it would be undefined behaviour (in
/// practice, a wrapped negative). Parsers reject instead.
constexpr double kInt64Overflow = 9223372036854775808.0;

/// Length of the mantissa prefix (digits and at most one dot) of `text`;
/// 0 means there is no leading number at all.
std::size_t mantissa_length(const std::string& text) {
  std::size_t pos = 0;
  bool dot = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (c == '.') {
      if (dot) {
        return 0;  // "1..5" and friends
      }
      dot = true;
    } else if (!std::isdigit(static_cast<unsigned char>(c))) {
      break;
    }
    ++pos;
  }
  return pos == 1 && dot ? 0 : pos;  // a lone "." is not a number
}

/// True when text[pos..] is a decimal-exponent tail ("e3", "E-2", "e+6")
/// that runs to the end of the string. A bare "E" is *not* an exponent —
/// it is the exa suffix — which is why the digits are required.
bool is_exponent_tail(const std::string& text, std::size_t pos) {
  if (pos >= text.size() || (text[pos] != 'e' && text[pos] != 'E')) {
    return false;
  }
  std::size_t digit = pos + 1;
  if (digit < text.size() && (text[digit] == '+' || text[digit] == '-')) {
    ++digit;
  }
  if (digit == text.size()) {
    return false;
  }
  for (std::size_t i = digit; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
      return false;
    }
  }
  return true;
}

/// `strtod` over exactly `text`, rejecting anything stod would wave through
/// that a Kubernetes quantity forbids (whitespace, signs, hex, inf/nan).
bool parse_number(const std::string& text, double* out) {
  const std::size_t mantissa = mantissa_length(text);
  if (mantissa == 0) {
    return false;
  }
  if (mantissa != text.size() && !is_exponent_tail(text, mantissa)) {
    return false;
  }
  try {
    std::size_t used = 0;
    *out = std::stod(text, &used);
    return used == text.size() && std::isfinite(*out) && *out >= 0;
  } catch (...) {
    return false;
  }
}

}  // namespace

std::int64_t parse_cpu_quantity(const std::string& text) {
  if (text.empty()) {
    return -1;
  }
  if (text.back() == 'm') {
    std::int64_t milli = 0;
    const auto* end = text.data() + text.size() - 1;
    const auto [ptr, ec] = std::from_chars(text.data(), end, milli);
    return ec == std::errc{} && ptr == end && milli >= 0 ? milli : -1;
  }
  // Whole (or fractional) cores, exponent forms included ("0.5", "2", "1e2").
  double cores = 0;
  if (!parse_number(text, &cores)) {
    return -1;
  }
  const double milli = cores * 1000.0 + 0.5;
  if (milli >= kInt64Overflow) {
    return -1;  // would wrap negative in the cast
  }
  return static_cast<std::int64_t>(milli);
}

Bytes parse_memory_quantity(const std::string& text) {
  if (text.empty()) {
    return -1;
  }
  const std::size_t pos = mantissa_length(text);
  if (pos == 0) {
    return -1;
  }
  // Decimal-exponent form ("128974848e0", "1e9"): the exponent *is* the
  // scale, so it must end the string — no suffix can follow.
  if (is_exponent_tail(text, pos)) {
    double value = 0;
    if (!parse_number(text, &value) || value >= kInt64Overflow) {
      return -1;
    }
    return static_cast<Bytes>(value);
  }
  double value = 0;
  if (!parse_number(text.substr(0, pos), &value)) {
    return -1;
  }
  const std::string suffix = text.substr(pos);
  double scale = 1.0;
  if (suffix == "") {
    scale = 1.0;
  } else if (suffix == "Ki") {
    scale = 1024.0;
  } else if (suffix == "Mi") {
    scale = 1024.0 * 1024.0;
  } else if (suffix == "Gi") {
    scale = 1024.0 * 1024.0 * 1024.0;
  } else if (suffix == "Ti") {
    scale = 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else if (suffix == "Pi") {
    scale = 1024.0 * 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else if (suffix == "Ei") {
    scale = 1024.0 * 1024.0 * 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else if (suffix == "k" || suffix == "K") {
    scale = 1e3;
  } else if (suffix == "M") {
    scale = 1e6;
  } else if (suffix == "G") {
    scale = 1e9;
  } else if (suffix == "T") {
    scale = 1e12;
  } else if (suffix == "P") {
    scale = 1e15;
  } else if (suffix == "E") {
    scale = 1e18;
  } else {
    return -1;
  }
  const double bytes = value * scale;
  if (bytes >= kInt64Overflow) {
    return -1;  // "16E", "8Ei": reject instead of wrapping negative
  }
  return static_cast<Bytes>(bytes);
}

}  // namespace arv::container
