// Container + ContainerRuntime — a docker-like front end over the simulated
// kernel: `run` creates the cgroup, performs the namespace-setup /
// exec / init-handover dance of §3.2, exports the cgroup knob files into
// sysfs, and (optionally) attaches the adaptive resource view.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/container/host.h"
#include "src/core/params.h"
#include "src/core/sys_namespace.h"
#include "src/obs/trace_recorder.h"
#include "src/util/cpuset.h"
#include "src/util/types.h"

namespace arv::container {

struct ContainerConfig {
  /// Empty => the runtime assigns "c<N>" (docker-style auto-naming).
  std::string name;
  /// cpu.shares (docker run --cpu-shares).
  std::int64_t cpu_shares = 1024;
  /// cpu.cfs_quota_us (docker run --cpu-quota); kUnlimited disables.
  std::int64_t cfs_quota_us = kUnlimited;
  SimDuration cfs_period_us = 100'000;
  /// cpuset.cpus (docker run --cpuset-cpus); empty = all online CPUs.
  CpuSet cpuset;
  /// memory.limit_in_bytes (docker run --memory); kUnlimited disables.
  Bytes mem_limit = kUnlimited;
  /// memory.soft_limit_in_bytes (docker run --memory-reservation).
  Bytes mem_soft_limit = kUnlimited;
  /// Create the per-container sys_namespace (the paper's system). When
  /// false the container behaves like stock Docker: host-wide sysfs values.
  bool enable_resource_view = true;
  core::Params view_params;
};

class Container {
 public:
  Container(Host& host, const ContainerConfig& config);

  const std::string& name() const { return config_.name; }
  cgroup::CgroupId cgroup() const { return cgroup_; }
  /// The container's init process (the exec()ed workload, per §3.2).
  proc::Pid init_pid() const { return init_pid_; }
  bool running() const { return running_; }

  /// The adaptive resource view; nullptr when enable_resource_view is off.
  std::shared_ptr<core::SysNamespace> resource_view() const { return view_; }

  /// Fork an additional process inside the container (inherits namespaces).
  proc::Pid spawn_process(const std::string& comm);

  // --- docker update analogues ---------------------------------------------
  void update_cpu_shares(std::int64_t shares);
  void update_cfs_quota(std::int64_t quota_us);
  void update_cpuset(const CpuSet& mask);
  void update_mem_limit(Bytes limit);
  void update_mem_soft_limit(Bytes soft);

  /// Terminate all container tasks and destroy the cgroup.
  void stop();

 private:
  friend class ContainerRuntime;

  Host& host_;
  ContainerConfig config_;
  cgroup::CgroupId cgroup_ = -1;
  proc::Pid init_pid_ = -1;
  std::shared_ptr<core::SysNamespace> view_;
  obs::TraceRecorder* trace_ = nullptr;  ///< host's recorder; may be null
  std::vector<obs::SeriesHandle> trace_handles_;
  bool running_ = false;
};

/// Factory owning the containers it creates (docker daemon analogue).
class ContainerRuntime {
 public:
  explicit ContainerRuntime(Host& host) : host_(host) {}

  /// docker run: create cgroup + namespaces, exec the workload, hand over
  /// init ownership. The returned reference stays valid for the runtime's
  /// lifetime.
  Container& run(const ContainerConfig& config, const std::string& command = "app");

  Container* find(const std::string& name);
  std::size_t count() const { return containers_.size(); }

 private:
  Host& host_;
  std::vector<std::unique_ptr<Container>> containers_;
  int auto_name_counter_ = 0;
};

}  // namespace arv::container
