// Kubernetes-style resource specification mapping.
//
// The paper's introduction motivates the work with cluster managers (Mesos,
// YARN, Kubernetes) that use containers as their allocation unit. This
// helper reproduces how kubelet translates a pod container's
// `resources.requests` / `resources.limits` into cgroup knobs:
//
//   cpu.shares        = requests.cpu (milli) * 1024 / 1000   (min 2)
//   cpu.cfs_quota_us  = limits.cpu (milli) * period / 1000
//   memory.limit      = limits.memory
//   memory.soft_limit = requests.memory
//
// so that experiments (and users) can express scenarios in familiar
// Kubernetes units and get exactly the cgroup configuration a real node
// would apply — including the semantic gap that comes with it.
#pragma once

#include <cstdint>
#include <string>

#include "src/container/container.h"

namespace arv::container {

struct K8sResources {
  /// requests.cpu in millicores ("500m" => 500); 0 = unset.
  std::int64_t request_millicpu = 0;
  /// limits.cpu in millicores; 0 = unset (no quota).
  std::int64_t limit_millicpu = 0;
  /// requests.memory in bytes; 0 = unset.
  Bytes request_memory = 0;
  /// limits.memory in bytes; 0 = unset (no hard limit).
  Bytes limit_memory = 0;
};

/// QoS class, derived exactly as Kubernetes does.
enum class QosClass { kGuaranteed, kBurstable, kBestEffort };

QosClass qos_class(const K8sResources& resources);

/// Translate a pod-container spec into a ContainerConfig (kubelet's cgroup
/// mapping). The adaptive resource view is enabled by default — pass
/// `enable_view = false` for a stock-Kubernetes container.
ContainerConfig pod_container(const std::string& name, const K8sResources& resources,
                              bool enable_view = true);

/// Parse Kubernetes quantity strings: "500m"/"2" for CPU (millicores),
/// "512Mi"/"4Gi"/"1G" for memory (bytes). Returns -1 on malformed input.
std::int64_t parse_cpu_quantity(const std::string& text);
Bytes parse_memory_quantity(const std::string& text);

}  // namespace arv::container
