#include "src/container/host.h"

#include "src/util/assert.h"

namespace arv::container {
namespace {

mem::Config with_ram(mem::Config config, Bytes ram) {
  config.total_ram = ram;
  return config;
}

}  // namespace

HostSnapshot Host::snapshot() const {
  HostSnapshot snap;
  snap.cpus = config_.cpus;
  snap.ram = config_.ram;
  snap.total_slack = scheduler_.total_slack();
  snap.last_tick_slack = scheduler_.last_tick_slack();
  snap.free_memory = memory_.free_memory();
  snap.nr_running = scheduler_.nr_running();
  for (const auto& ns : monitor_.views()) {
    ContainerViewInfo info;
    info.cgroup = ns->cgroup();
    info.name = tree_.exists(info.cgroup) ? tree_.get(info.cgroup).name()
                                          : "cgroup" + std::to_string(info.cgroup);
    info.e_cpu = ns->effective_cpus();
    info.e_mem = ns->effective_memory();
    snap.views.push_back(std::move(info));
  }
  return snap;
}

bool Host::quiescent() const {
  return engine_.pending_events() == 0 &&
         engine_.component_count() == 3 &&  // scheduler + memory + monitor only
         trace_ == nullptr && monitor_.registered_count() == 0 &&
         !monitor_.stalled() && !memory_.kswapd_active() &&
         memory_.free_memory() >= memory_.watermarks().low &&
         scheduler_.idle();
}

void Host::advance_idle(SimTime to) {
  ARV_ASSERT_MSG(quiescent(), "advance_idle on a non-quiescent host");
  if (to <= engine_.now()) {
    return;
  }
  scheduler_.accrue_idle(to - engine_.now(), config_.tick);
  engine_.advance_clock(to);
}

Host::Host(const HostConfig& config)
    : config_(config),
      engine_(config.tick),
      tree_(config.cpus),
      scheduler_(tree_, config.cpus),
      memory_(tree_, with_ram(config.mem, config.ram)),
      processes_(),
      monitor_(engine_, tree_, scheduler_, memory_),
      sysfs_(processes_, tree_, scheduler_, memory_, monitor_) {
  engine_.add_component(&scheduler_);
  engine_.add_component(&memory_);
  engine_.add_component(&monitor_);
  if (config.enable_tracing) {
    trace_ = std::make_unique<obs::TraceRecorder>(config.trace);
    trace_->add_counter("sim.ticks", "", [this] {
      return static_cast<std::int64_t>(engine_.ticks_executed());
    });
    scheduler_.register_trace(*trace_);
    memory_.register_trace(*trace_);
    monitor_.set_decision_series(config.trace_decision_series);
    monitor_.set_trace(trace_.get());
    sysfs_.attach_trace(trace_.get());
    // Registered last: samples see the tick's fully-updated state.
    engine_.add_component(trace_.get());
  }
}

}  // namespace arv::container
