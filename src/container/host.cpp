#include "src/container/host.h"

namespace arv::container {
namespace {

mem::Config with_ram(mem::Config config, Bytes ram) {
  config.total_ram = ram;
  return config;
}

}  // namespace

Host::Host(const HostConfig& config)
    : config_(config),
      engine_(config.tick),
      tree_(config.cpus),
      scheduler_(tree_, config.cpus),
      memory_(tree_, with_ram(config.mem, config.ram)),
      processes_(),
      monitor_(engine_, tree_, scheduler_, memory_),
      sysfs_(processes_, tree_, scheduler_, memory_, monitor_) {
  engine_.add_component(&scheduler_);
  engine_.add_component(&memory_);
  engine_.add_component(&monitor_);
  if (config.enable_tracing) {
    trace_ = std::make_unique<obs::TraceRecorder>(config.trace);
    trace_->add_counter("sim.ticks", "", [this] {
      return static_cast<std::int64_t>(engine_.ticks_executed());
    });
    scheduler_.register_trace(*trace_);
    memory_.register_trace(*trace_);
    monitor_.set_decision_series(config.trace_decision_series);
    monitor_.set_trace(trace_.get());
    sysfs_.attach_trace(trace_.get());
    // Registered last: samples see the tick's fully-updated state.
    engine_.add_component(trace_.get());
  }
}

}  // namespace arv::container
