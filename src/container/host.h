// Host — the simulated machine: engine + kernel subsystems wired together.
//
// Owns the cgroup tree, the CFS-like scheduler, the memory manager, the
// process table, the Ns_Monitor, and the virtual sysfs, and registers the
// tick components in model order (scheduler grants CPU, then memory runs
// kswapd, then the monitor recomputes resource views).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/cgroup/cgroup.h"
#include "src/core/ns_monitor.h"
#include "src/mem/memory_manager.h"
#include "src/obs/trace_recorder.h"
#include "src/proc/process.h"
#include "src/sched/fair_scheduler.h"
#include "src/sim/engine.h"
#include "src/vfs/virtual_sysfs.h"

namespace arv::container {

struct HostConfig {
  int cpus = 20;                        ///< the paper's dual 10-core Xeon
  Bytes ram = 128 * units::GiB;         ///< the paper's testbed memory
  mem::Config mem;                      ///< total_ram is overwritten from `ram`
  SimDuration tick = 1 * units::msec;
  /// Attach the observability layer: every kernel subsystem registers its
  /// series with a TraceRecorder that samples after the Ns_Monitor each
  /// tick. Off by default — tracing must never change behaviour either way.
  bool enable_tracing = false;
  obs::TraceConfig trace;               ///< sampling cadence when tracing
  /// Also trace the per-container decision-reason counters
  /// (cpu_grew/mem_reset/...). Off by default: the extra columns would
  /// change the CSV schema pre-policy golden traces were recorded with.
  bool trace_decision_series = false;
};

/// One container's effective view as seen from outside the host.
struct ContainerViewInfo {
  cgroup::CgroupId cgroup = -1;
  std::string name;
  int e_cpu = 0;
  Bytes e_mem = 0;
};

/// Point-in-time host load summary for cluster-level consumers (placement,
/// rebalancing, routing): the *observed* signals — slack, free memory, the
/// per-container effective views — rather than declared requests/limits.
struct HostSnapshot {
  int cpus = 0;
  Bytes ram = 0;
  CpuTime total_slack = 0;      ///< cumulative idle capacity (scheduler)
  CpuTime last_tick_slack = 0;  ///< idle capacity during the latest tick
  Bytes free_memory = 0;
  int nr_running = 0;
  std::vector<ContainerViewInfo> views;  ///< one per registered sys_namespace
};

class Host {
 public:
  explicit Host(const HostConfig& config = {});
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  sim::Engine& engine() { return engine_; }
  cgroup::Tree& cgroups() { return tree_; }
  sched::FairScheduler& scheduler() { return scheduler_; }
  mem::MemoryManager& memory() { return memory_; }
  proc::ProcessTable& processes() { return processes_; }
  core::NsMonitor& monitor() { return monitor_; }
  vfs::VirtualSysfs& sysfs() { return sysfs_; }

  /// The trace recorder, or nullptr when tracing is disabled.
  obs::TraceRecorder* trace() { return trace_.get(); }
  const obs::TraceRecorder* trace() const { return trace_.get(); }

  int cpus() const { return config_.cpus; }
  Bytes ram() const { return config_.ram; }
  SimTime now() const { return engine_.now(); }
  void run_for(SimDuration duration) { engine_.run_for(duration); }

  /// Observed load summary (see HostSnapshot). Read-only.
  HostSnapshot snapshot() const;

  /// True when stepping this host would provably change nothing but the
  /// clock and idle-slack counters: no pending one-shot events, no
  /// components beyond the three base subsystems (so no workloads and no
  /// trace recorder), no registered container views, no reclaim in flight
  /// or due, and no runnable CPU consumer. The cluster's idle-host skip
  /// freezes exactly the hosts for which this holds; advance_idle() later
  /// replays the frozen interval in O(1) per subsystem.
  bool quiescent() const;

  /// Fast-forward a quiescent host's clock to `to`, applying the interval's
  /// cumulative effects analytically (idle slack accrual, loadavg decay).
  /// Asserts quiescent(); no-op when already at `to`.
  void advance_idle(SimTime to);

 private:
  HostConfig config_;
  sim::Engine engine_;
  cgroup::Tree tree_;
  sched::FairScheduler scheduler_;
  mem::MemoryManager memory_;
  proc::ProcessTable processes_;
  core::NsMonitor monitor_;
  vfs::VirtualSysfs sysfs_;
  std::unique_ptr<obs::TraceRecorder> trace_;  ///< null when tracing is off
};

}  // namespace arv::container
