// Server-runtime case studies beyond the paper's two (§4): the
// auto-configuration patterns that make 62 of the DockerHub top-100 images
// "affected" (Figure 1) are mostly these two:
//
//   * WorkerPoolServer — httpd/nginx-style: `worker_processes auto;` spawns
//     one worker per *detected* CPU at startup. In a container that detects
//     the host's CPUs and over-threads; with the adaptive view it sizes to
//     effective CPUs, and can re-size on a graceful reload.
//
//   * CacheServer — MongoDB/WiredTiger-style: cache bytes = 50% of
//     (detected RAM − 1 GiB). Detecting host RAM inside a small container
//     commits a cache far beyond the memory limit and thrashes; the
//     adaptive view right-sizes it and follows effective memory.
//
// Both serve an open-loop request stream so the damage is measured the way
// operators feel it: throughput and tail latency.
#pragma once

#include <deque>
#include <vector>

#include "src/container/container.h"
#include "src/sched/fair_scheduler.h"
#include "src/util/latency_histogram.h"
#include "src/util/stats.h"
#include "src/util/types.h"

namespace arv::server {

/// How a server decides its resource-dependent knob at startup.
enum class Sizing {
  kDetected,  ///< probe through sysconf (host values in a stock container,
              ///< effective values behind the adaptive view)
  kFixed,     ///< operator-pinned value
};

struct RequestStats {
  std::uint64_t completed = 0;
  std::uint64_t arrived = 0;
  /// Arrivals refused at the accept queue. Lives in the stats block (not a
  /// bare server counter) so drops survive the archive/merge pipeline that
  /// carries a replica's history across migrations and crashes.
  std::uint64_t dropped = 0;
  /// Accepted arrivals served in brownout mode (a cheaper, degraded
  /// response). A subset of arrived/completed, tracked here so the split
  /// survives archive/merge like drops do.
  std::uint64_t degraded = 0;
  RunningStats latency_us;
  /// Per-request latency distribution. A bounded log-bucket sketch (<= 6.25%
  /// relative error, exact merge) instead of a raw sample vector: at the
  /// workload engine's millions-of-requests scale a full sample log is O(n)
  /// memory and the old bounded reservoir truncated exactly the tail that
  /// p99 accounting needs.
  util::LatencyHistogram latency_hist;

  double p95_ms() const;
  /// Nearest-rank latency percentile in milliseconds, p in [0, 100].
  double percentile_ms(double p) const;
  double throughput_per_sec(SimDuration elapsed) const;

  /// Fold another stats block into this one (cluster-level aggregation and
  /// carrying a migrated replica's history forward).
  void merge(const RequestStats& other);
};

struct WebConfig {
  Sizing sizing = Sizing::kDetected;
  int fixed_workers = 0;          ///< for kFixed
  /// Open-loop request rate the server generates itself. 0 means arrivals
  /// are externally driven (a cluster RequestRouter calling inject_request).
  double arrivals_per_sec = 800;
  SimDuration service_cpu = 4 * units::msec;  ///< CPU per request
  double alpha = 0.01;  ///< per-worker coordination overhead
  double beta = 0.08;   ///< oversubscription penalty
  /// Re-read the CPU count and resize the pool this often (graceful
  /// reload); 0 disables re-sizing (size once at startup, like stock httpd).
  SimDuration resize_interval = 0;
  std::size_t max_queue = 10000;  ///< accept queue bound; beyond = drops
  /// CPU cost of a degraded (brownout) response, as a permille fraction of
  /// the request's full cost — the cheaper reply a replica serves when the
  /// overload controller has turned brownout on.
  std::int64_t degraded_cost_permille = 400;
};

class WorkerPoolServer : public sched::Schedulable {
 public:
  WorkerPoolServer(container::Host& host, container::Container& target,
                   WebConfig config);
  ~WorkerPoolServer() override;
  WorkerPoolServer(const WorkerPoolServer&) = delete;
  WorkerPoolServer& operator=(const WorkerPoolServer&) = delete;

  // --- sched::Schedulable ---------------------------------------------------
  int runnable_threads() const override;
  void consume(SimTime now, SimDuration dt, CpuTime grant) override;

  /// Externally-driven arrival (request routing): enqueue one request that
  /// arrived `now`. Honors the accept-queue bound; false when dropped.
  /// `cost` is the request's CPU demand; 0 means the config's service_cpu
  /// (the open-loop workload engine injects heavy-tailed per-request costs).
  /// `degraded` serves the brownout response instead: the resolved cost is
  /// scaled by degraded_cost_permille and the request counts as degraded.
  bool inject_request(SimTime now, CpuTime cost = 0, bool degraded = false);

  /// Adaptive accept-queue bound (the overload controller's AIMD knob).
  /// Clamped to [1, config.max_queue]; starts at max_queue, so without a
  /// controller the behaviour is the static bound.
  void set_queue_limit(std::size_t limit);
  std::size_t queue_limit() const { return queue_limit_; }

  int workers() const { return workers_; }
  std::size_t queue_depth() const { return queue_.size(); }
  std::uint64_t dropped() const { return stats_.dropped; }
  const RequestStats& stats() const { return stats_; }
  const std::vector<int>& worker_trace() const { return worker_trace_; }

 private:
  /// One accepted request: arrival time plus its (possibly heterogeneous)
  /// CPU cost, resolved at admission so the drain loop never re-derives it.
  struct QueuedRequest {
    SimTime arrival = 0;
    CpuTime cost = 0;
  };

  int detect_workers() const;
  void admit_arrivals(SimTime now, SimDuration dt);

  container::Host& host_;
  container::Container& container_;
  proc::Pid pid_;
  WebConfig config_;
  int workers_;
  std::size_t queue_limit_;
  std::deque<QueuedRequest> queue_;
  CpuTime current_request_progress_ = 0;
  SimTime next_resize_ = 0;
  double arrival_accumulator_ = 0;
  RequestStats stats_;
  std::vector<int> worker_trace_;
  bool attached_ = false;
};

struct CacheConfig {
  Sizing sizing = Sizing::kDetected;
  Bytes fixed_cache = 0;  ///< for kFixed
  double arrivals_per_sec = 400;
  SimDuration service_cpu = 2 * units::msec;  ///< CPU per request (hit)
  /// Extra CPU per miss (index walk) plus backing-store stall.
  SimDuration miss_extra_cpu = 2 * units::msec;
  SimDuration miss_stall = 3 * units::msec;
  Bytes dataset = 8 * units::GiB;  ///< hot data the cache covers
  int worker_threads = 8;
  /// Re-read effective memory and resize the cache this often; 0 = never.
  SimDuration resize_interval = 0;
};

class CacheServer : public sched::Schedulable {
 public:
  CacheServer(container::Host& host, container::Container& target,
              CacheConfig config);
  ~CacheServer() override;
  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  // --- sched::Schedulable ---------------------------------------------------
  int runnable_threads() const override;
  void consume(SimTime now, SimDuration dt, CpuTime grant) override;

  Bytes cache_target() const { return cache_target_; }
  Bytes cache_committed() const { return cache_committed_; }
  double hit_ratio() const;
  const RequestStats& stats() const { return stats_; }

 private:
  /// WiredTiger's rule: 50% of (detected RAM - 1 GiB), floor 256 MiB.
  Bytes detect_cache_bytes() const;
  void grow_cache(SimTime now, SimDuration dt, CpuTime grant);

  container::Host& host_;
  container::Container& container_;
  proc::Pid pid_;
  CacheConfig config_;
  Bytes cache_target_;
  Bytes cache_committed_ = 0;
  double arrival_accumulator_ = 0;
  std::deque<SimTime> queue_;
  CpuTime current_request_progress_ = 0;
  SimTime stalled_until_ = 0;
  SimTime next_resize_ = 0;
  RequestStats stats_;
  bool attached_ = false;
};

}  // namespace arv::server
