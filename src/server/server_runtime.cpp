#include "src/server/server_runtime.h"

#include <algorithm>
#include <cmath>

#include "src/util/assert.h"

namespace arv::server {
namespace {

double efficiency(int threads, double granted_cpus, double alpha, double beta) {
  const double oversub = std::max(0.0, static_cast<double>(threads) - granted_cpus);
  return 1.0 / (1.0 + alpha * static_cast<double>(threads - 1)) /
         (1.0 + beta * oversub);
}

void record_latency(RequestStats& stats, SimTime now, SimTime arrival) {
  const SimDuration latency = now - arrival;
  stats.latency_us.add(static_cast<double>(latency));
  stats.latency_hist.record(latency);
  ++stats.completed;
}

}  // namespace

double RequestStats::p95_ms() const { return percentile_ms(95.0); }

double RequestStats::percentile_ms(double p) const {
  return static_cast<double>(latency_hist.percentile(p)) / 1000.0;
}

void RequestStats::merge(const RequestStats& other) {
  completed += other.completed;
  arrived += other.arrived;
  dropped += other.dropped;
  degraded += other.degraded;
  latency_us.merge(other.latency_us);
  latency_hist.merge(other.latency_hist);
}

double RequestStats::throughput_per_sec(SimDuration elapsed) const {
  if (elapsed <= 0) {
    return 0;
  }
  return static_cast<double>(completed) /
         (static_cast<double>(elapsed) / static_cast<double>(units::sec));
}

// --- WorkerPoolServer ---------------------------------------------------------

WorkerPoolServer::WorkerPoolServer(container::Host& host,
                                   container::Container& target, WebConfig config)
    : host_(host),
      container_(target),
      pid_(target.spawn_process("httpd")),
      config_(config),
      workers_(detect_workers()),
      queue_limit_(config.max_queue) {
  ARV_ASSERT(config_.arrivals_per_sec >= 0);  // 0 = router-driven arrivals
  ARV_ASSERT(config_.service_cpu > 0);
  ARV_ASSERT(config_.max_queue >= 1);
  ARV_ASSERT(config_.degraded_cost_permille >= 1 &&
             config_.degraded_cost_permille <= 1000);
  worker_trace_.push_back(workers_);
  if (config_.resize_interval > 0) {
    next_resize_ = host_.now() + config_.resize_interval;
  }
  host_.scheduler().attach(container_.cgroup(), this);
  attached_ = true;
}

WorkerPoolServer::~WorkerPoolServer() {
  if (attached_) {
    host_.scheduler().detach(container_.cgroup(), this);
  }
}

int WorkerPoolServer::detect_workers() const {
  if (config_.sizing == Sizing::kFixed) {
    ARV_ASSERT_MSG(config_.fixed_workers >= 1, "kFixed requires fixed_workers");
    return config_.fixed_workers;
  }
  // `worker_processes auto;` — one worker per CPU the server can see.
  return std::max(1, static_cast<int>(host_.sysfs().sysconf(
                         pid_, vfs::Sysconf::kNProcessorsOnln)));
}

int WorkerPoolServer::runnable_threads() const {
  // A worker is runnable while it has a request; the rest block in accept().
  // The listener/event thread is always schedulable — it is what admits
  // new connections (and in this model, what receives the tick).
  return std::max(1, static_cast<int>(std::min<std::size_t>(
                         static_cast<std::size_t>(workers_), queue_.size())));
}

void WorkerPoolServer::admit_arrivals(SimTime now, SimDuration dt) {
  arrival_accumulator_ += config_.arrivals_per_sec * static_cast<double>(dt) /
                          static_cast<double>(units::sec);
  while (arrival_accumulator_ >= 1.0) {
    arrival_accumulator_ -= 1.0;
    ++stats_.arrived;
    if (queue_.size() >= queue_limit_) {
      ++stats_.dropped;  // listen backlog overflow
      continue;
    }
    queue_.push_back({now, config_.service_cpu});
  }
}

bool WorkerPoolServer::inject_request(SimTime now, CpuTime cost, bool degraded) {
  ++stats_.arrived;
  if (queue_.size() >= queue_limit_) {
    ++stats_.dropped;
    return false;
  }
  CpuTime resolved = cost > 0 ? cost : config_.service_cpu;
  if (degraded) {
    resolved = std::max<CpuTime>(
        1, resolved * config_.degraded_cost_permille / 1000);
    ++stats_.degraded;
  }
  queue_.push_back({now, resolved});
  return true;
}

void WorkerPoolServer::set_queue_limit(std::size_t limit) {
  queue_limit_ = std::clamp<std::size_t>(limit, 1, config_.max_queue);
}

void WorkerPoolServer::consume(SimTime now, SimDuration dt, CpuTime grant) {
  admit_arrivals(now, dt);
  if (config_.resize_interval > 0 && now >= next_resize_) {
    next_resize_ = now + config_.resize_interval;
    const int detected = detect_workers();
    if (detected != workers_) {
      workers_ = detected;  // graceful reload
      worker_trace_.push_back(workers_);
    }
  }
  if (grant <= 0 || queue_.empty()) {
    return;
  }
  const int active = runnable_threads();
  const double granted_cpus = static_cast<double>(grant) / static_cast<double>(dt);
  CpuTime useful =
      static_cast<CpuTime>(static_cast<double>(grant) *
                           efficiency(std::max(1, active), granted_cpus,
                                      config_.alpha, config_.beta)) +
      current_request_progress_;
  current_request_progress_ = 0;
  while (useful > 0 && !queue_.empty()) {
    if (useful >= queue_.front().cost) {
      useful -= queue_.front().cost;
      record_latency(stats_, now, queue_.front().arrival);
      queue_.pop_front();
    } else {
      current_request_progress_ = useful;
      useful = 0;
    }
  }
}

// --- CacheServer ---------------------------------------------------------------

CacheServer::CacheServer(container::Host& host, container::Container& target,
                         CacheConfig config)
    : host_(host),
      container_(target),
      pid_(target.spawn_process("mongod")),
      config_(config),
      cache_target_(detect_cache_bytes()) {
  ARV_ASSERT(config_.arrivals_per_sec > 0);
  if (config_.resize_interval > 0) {
    next_resize_ = host_.now() + config_.resize_interval;
  }
  host_.scheduler().attach(container_.cgroup(), this);
  attached_ = true;
}

CacheServer::~CacheServer() {
  if (attached_) {
    host_.scheduler().detach(container_.cgroup(), this);
    // An OOM kill may have reaped the cgroup's pages behind our back;
    // release only what is still on the manager's books.
    const Bytes release = std::min(
        cache_committed_, host_.memory().committed(container_.cgroup()));
    if (release > 0) {
      host_.memory().uncharge(container_.cgroup(), release);
    }
  }
}

Bytes CacheServer::detect_cache_bytes() const {
  if (config_.sizing == Sizing::kFixed) {
    ARV_ASSERT_MSG(config_.fixed_cache > 0, "kFixed requires fixed_cache");
    return config_.fixed_cache;
  }
  const Bytes detected_ram =
      static_cast<Bytes>(host_.sysfs().sysconf(pid_, vfs::Sysconf::kPhysPages)) *
      units::page;
  // WiredTiger: 50% of (RAM - 1 GiB), floor 256 MiB.
  return std::max<Bytes>(256 * units::MiB, (detected_ram - units::GiB) / 2);
}

double CacheServer::hit_ratio() const {
  // The cache covers a fraction of the hot dataset; the *resident* part is
  // what actually serves hits (swapped cache pages are as slow as misses).
  const Bytes resident = std::min(host_.memory().usage(container_.cgroup()),
                                  cache_committed_);
  return std::min(1.0, static_cast<double>(resident) /
                           static_cast<double>(config_.dataset));
}

void CacheServer::grow_cache(SimTime now, SimDuration /*dt*/, CpuTime grant) {
  if (host_.memory().oom_killed(container_.cgroup())) {
    return;  // the books were zeroed by the kill; never uncharge from them
  }
  if (cache_committed_ >= cache_target_) {
    // Shrink promptly when the target dropped (resize/reload).
    if (cache_committed_ > cache_target_) {
      host_.memory().uncharge(container_.cgroup(),
                              cache_committed_ - cache_target_);
      cache_committed_ = cache_target_;
    }
    return;
  }
  // Warm the cache at 512 MiB per CPU-second of service work.
  const Bytes step = std::min(cache_target_ - cache_committed_,
                              grant * 512 * units::MiB / units::sec);
  if (step <= 0) {
    return;
  }
  const auto result = host_.memory().charge(container_.cgroup(), step);
  if (result != mem::ChargeResult::kOomKilled) {
    cache_committed_ += page_align_up(step);
  }
  (void)now;
}

int CacheServer::runnable_threads() const {
  if (host_.now() < stalled_until_) {
    return 0;
  }
  return static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(config_.worker_threads), queue_.size() + 1));
}

void CacheServer::consume(SimTime now, SimDuration dt, CpuTime grant) {
  arrival_accumulator_ += config_.arrivals_per_sec * static_cast<double>(dt) /
                          static_cast<double>(units::sec);
  while (arrival_accumulator_ >= 1.0) {
    arrival_accumulator_ -= 1.0;
    ++stats_.arrived;
    queue_.push_back(now);
  }
  if (config_.resize_interval > 0 && now >= next_resize_) {
    next_resize_ = now + config_.resize_interval;
    cache_target_ = detect_cache_bytes();
  }
  if (now < stalled_until_ || grant <= 0) {
    return;
  }
  grow_cache(now, dt, grant);

  // Touching the resident cache faults back anything kswapd stole.
  const Bytes touched = cache_committed_ * grant / (5 * units::sec);
  const SimDuration swap_stall = host_.memory().touch(container_.cgroup(), touched);
  if (swap_stall > 0) {
    stalled_until_ = now + swap_stall;
    return;
  }

  const double hit = hit_ratio();
  const auto cost = static_cast<CpuTime>(
      static_cast<double>(config_.service_cpu) +
      (1.0 - hit) * static_cast<double>(config_.miss_extra_cpu));
  CpuTime useful = grant + current_request_progress_;
  current_request_progress_ = 0;
  SimDuration stall_debt = 0;
  while (useful > 0 && !queue_.empty()) {
    if (useful >= cost) {
      useful -= cost;
      record_latency(stats_, now, queue_.front());
      queue_.pop_front();
      stall_debt += static_cast<SimDuration>(
          (1.0 - hit) * static_cast<double>(config_.miss_stall));
    } else {
      current_request_progress_ = useful;
      useful = 0;
    }
  }
  if (stall_debt > 0) {
    stalled_until_ = now + stall_debt;
  }
}

}  // namespace arv::server
