#include "src/load/trace_spec.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/util/assert.h"

namespace arv::load {
namespace det {

std::int64_t sin_permille(std::int64_t phase) {
  phase %= 2000;
  if (phase < 0) {
    phase += 2000;
  }
  const bool negative = phase >= 1000;
  const std::int64_t x = negative ? phase - 1000 : phase;  // [0, 1000]
  // Bhaskara I in permille of the half period: u = x(1000-x) peaks at
  // 250000, and sin = 4000u / (1250000 - u) hits exactly 1000 there.
  const std::int64_t u = x * (1000 - x);
  const std::int64_t value = 4000 * u / (1250000 - u);
  return negative ? -value : value;
}

double det_exp(double x) {
  // Range-reduce into |r| <= 0.5 with x = k*ln2 + r, then Taylor-sum r and
  // scale by 2^k. ln2 is a literal, the loop is value-terminated on exactly
  // representable comparisons, and every op is IEEE +,*,/ — bit-stable.
  constexpr double kLn2 = 0.6931471805599453;
  ARV_ASSERT_MSG(x > -700.0 && x < 700.0, "det_exp out of range");
  const double kd = x / kLn2;
  // Round-to-nearest without libm: shift through int64 (|k| < 1011).
  const auto k = static_cast<int>(kd >= 0 ? kd + 0.5 : kd - 0.5);
  const double r = x - static_cast<double>(k) * kLn2;
  double term = 1.0;
  double sum = 1.0;
  for (int n = 1; n <= 30; ++n) {
    term = term * r / static_cast<double>(n);
    const double next = sum + term;
    if (next == sum) {
      break;
    }
    sum = next;
  }
  // 2^k by repeated squaring of exact powers of two.
  double scale = 1.0;
  double base = k >= 0 ? 2.0 : 0.5;
  for (int e = k >= 0 ? k : -k; e > 0; e >>= 1) {
    if ((e & 1) != 0) {
      scale *= base;
    }
    base *= base;
  }
  return sum * scale;
}

double det_ln(double x) {
  ARV_ASSERT_MSG(x > 0.0, "det_ln requires x > 0");
  constexpr double kLn2 = 0.6931471805599453;
  // Reduce to m in [sqrt(1/2), sqrt(2)) with x = m * 2^e — powers of two
  // are exact, so the reduction introduces no rounding.
  int e = 0;
  double m = x;
  while (m >= 1.4142135623730951) {
    m *= 0.5;
    ++e;
  }
  while (m < 0.7071067811865476) {
    m *= 2.0;
    --e;
  }
  // ln(m) = 2 atanh(t), t = (m-1)/(m+1), |t| < 0.172 so the odd series
  // converges in a handful of terms.
  const double t = (m - 1.0) / (m + 1.0);
  const double t2 = t * t;
  double term = t;
  double sum = t;
  for (int n = 3; n <= 41; n += 2) {
    term *= t2;
    const double next = sum + term / static_cast<double>(n);
    if (next == sum) {
      break;
    }
    sum = next;
  }
  return 2.0 * sum + static_cast<double>(e) * kLn2;
}

double det_pow(double x, double p) { return det_exp(p * det_ln(x)); }

std::uint64_t poisson(Rng& rng, double lambda) {
  ARV_ASSERT(lambda >= 0.0);
  // Knuth inversion underflows for large lambda, so draw in chunks of at
  // most 8 (Poisson is additive over independent chunks).
  std::uint64_t count = 0;
  while (lambda > 0.0) {
    const double chunk = lambda > 8.0 ? 8.0 : lambda;
    lambda -= chunk;
    const double limit = det_exp(-chunk);
    double p = 1.0;
    for (;;) {
      p *= rng.uniform();
      if (p <= limit) {
        break;
      }
      ++count;
    }
  }
  return count;
}

std::int64_t bounded_pareto_quantile(double u, std::int64_t lo,
                                     std::int64_t hi, double alpha) {
  ARV_ASSERT(lo > 0 && hi >= lo);
  if (hi == lo) {
    return lo;
  }
  if (alpha <= 0.0) {
    return (lo + hi) / 2;
  }
  const double l = static_cast<double>(lo);
  const double h = static_cast<double>(hi);
  // Inverse CDF of the bounded Pareto: x = (-(u*h^a - u*l^a - h^a) /
  // (h^a * l^a))^(-1/a) — heavy tail below hi, mass concentrated near lo.
  const double la = det_pow(l, alpha);
  const double ha = det_pow(h, alpha);
  const double x =
      det_pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  const auto v = static_cast<std::int64_t>(x);
  return std::clamp(v, lo, hi);
}

std::int64_t bounded_pareto(Rng& rng, std::int64_t lo, std::int64_t hi,
                            double alpha) {
  return bounded_pareto_quantile(rng.uniform(), lo, hi, alpha);
}

}  // namespace det

SimDuration CompiledTrace::duration() const {
  if (tenants.empty()) {
    return 0;
  }
  return slot * static_cast<SimDuration>(tenants.front().arrivals.size());
}

std::uint64_t CompiledTrace::total_arrivals() const {
  std::uint64_t total = 0;
  for (const TenantSchedule& t : tenants) {
    total += t.total;
  }
  return total;
}

const TenantSchedule* CompiledTrace::find(const std::string& tenant) const {
  for (const TenantSchedule& t : tenants) {
    if (t.tenant == tenant) {
      return &t;
    }
  }
  return nullptr;
}

namespace {

/// The deterministic rate profile at slot s: diurnal sinusoid times the
/// flash-crowd envelope, in arrivals/sec (all tenants combined).
double profile_rps(const TraceSpec& spec, std::size_t s, std::size_t slots) {
  // Diurnal: permille phase across the cycle, `diurnal_periods` periods.
  const std::int64_t phase =
      static_cast<std::int64_t>(s) * 2000 * spec.diurnal_periods /
      static_cast<std::int64_t>(slots);
  double rate =
      spec.mean_rps *
      (1.0 + spec.diurnal_amplitude *
                 static_cast<double>(det::sin_permille(phase)) / 1000.0);
  // Flash crowds: piecewise-linear ramp/hold/decay multiplier on top.
  const SimTime at = static_cast<SimTime>(s) * spec.slot;
  for (const FlashCrowd& crowd : spec.flash_crowds) {
    const SimTime t = at - crowd.start;
    if (t < 0 || t >= crowd.ramp + crowd.hold + crowd.decay) {
      continue;
    }
    double level = 1.0;
    if (t < crowd.ramp) {
      level = static_cast<double>(t) / static_cast<double>(crowd.ramp);
    } else if (t >= crowd.ramp + crowd.hold) {
      const SimTime into = t - crowd.ramp - crowd.hold;
      level = 1.0 - static_cast<double>(into) /
                        static_cast<double>(crowd.decay);
    }
    rate *= 1.0 + (crowd.magnitude - 1.0) * level;
  }
  return rate < 0.0 ? 0.0 : rate;
}

}  // namespace

CompiledTrace compile(const TraceSpec& spec) {
  ARV_ASSERT(spec.duration > 0 && spec.slot > 0);
  ARV_ASSERT_MSG(spec.duration % spec.slot == 0,
                 "slot must divide the cycle duration");
  ARV_ASSERT_MSG(!spec.tenants.empty(), "a trace needs at least one tenant");
  const auto slots = static_cast<std::size_t>(spec.duration / spec.slot);
  double weight_sum = 0.0;
  for (const TenantMix& t : spec.tenants) {
    ARV_ASSERT_MSG(t.weight > 0.0, "tenant weights must be positive");
    ARV_ASSERT(t.cost_min > 0 && t.cost_max >= t.cost_min);
    weight_sum += t.weight;
  }

  CompiledTrace trace;
  trace.slot = spec.slot;
  const double slot_sec =
      static_cast<double>(spec.slot) / static_cast<double>(units::sec);

  // MMPP burst envelope is shared across tenants (a burst is a burst of
  // *users*), drawn once from its own rng stream so adding tenants never
  // shifts the burst pattern.
  std::vector<double> burst(slots, 1.0);
  if (spec.process == ArrivalProcess::kMmpp) {
    ARV_ASSERT(spec.burst_on_slots > 0.0 && spec.burst_off_slots > 0.0);
    Rng rng(spec.seed ^ 0x6d6d7070ULL);  // "mmpp"
    bool on = false;
    for (std::size_t s = 0; s < slots; ++s) {
      const double flip = on ? 1.0 / spec.burst_on_slots
                             : 1.0 / spec.burst_off_slots;
      if (rng.chance(flip)) {
        on = !on;
      }
      burst[s] = on ? spec.burst_multiplier : 1.0;
    }
  }

  for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
    const TenantMix& mix = spec.tenants[i];
    TenantSchedule schedule;
    schedule.tenant = mix.name;
    schedule.cost_min = mix.cost_min;
    schedule.cost_max = mix.cost_max;
    schedule.cost_alpha = mix.cost_alpha;
    schedule.arrivals.resize(slots, 0);
    // A per-tenant stream keyed by seed + index: tenants are independent
    // Poisson thinnings of the shared profile.
    Rng rng(spec.seed + 0x9e3779b97f4a7c15ULL * (i + 1));
    const double share = mix.weight / weight_sum;
    double carry = 0.0;  // kDeterministic fractional remainder
    for (std::size_t s = 0; s < slots; ++s) {
      const double lambda =
          profile_rps(spec, s, slots) * burst[s] * share * slot_sec;
      std::uint64_t n = 0;
      if (spec.process == ArrivalProcess::kDeterministic) {
        carry += lambda;
        n = static_cast<std::uint64_t>(carry);
        carry -= static_cast<double>(n);
      } else {
        n = det::poisson(rng, lambda);
      }
      ARV_ASSERT_MSG(n <= 0xffffffffULL, "slot arrival count overflow");
      schedule.arrivals[s] = static_cast<std::uint32_t>(n);
      schedule.total += n;
    }
    trace.tenants.push_back(std::move(schedule));
  }
  return trace;
}

void save_csv(const CompiledTrace& trace, std::ostream& out) {
  out << "# arv-trace v1 slot_us=" << trace.slot << "\n";
  out << "tenant,cost_min_us,cost_max_us,cost_alpha_milli,slots\n";
  for (const TenantSchedule& t : trace.tenants) {
    out << t.tenant << ',' << t.cost_min << ',' << t.cost_max << ','
        << static_cast<std::int64_t>(t.cost_alpha * 1000.0) << ','
        << t.arrivals.size() << "\n";
  }
  out << "tenant,slot,arrivals\n";
  for (const TenantSchedule& t : trace.tenants) {
    for (std::size_t s = 0; s < t.arrivals.size(); ++s) {
      if (t.arrivals[s] == 0) {
        continue;  // sparse: empty slots are implicit
      }
      out << t.tenant << ',' << s << ',' << t.arrivals[s] << "\n";
    }
  }
}

CompiledTrace load_csv(std::istream& in) {
  CompiledTrace trace;
  std::string line;
  ARV_ASSERT_MSG(static_cast<bool>(std::getline(in, line)),
                 "empty trace file");
  const std::string magic = "# arv-trace v1 slot_us=";
  ARV_ASSERT_MSG(line.rfind(magic, 0) == 0, "not an arv-trace file");
  trace.slot = std::stoll(line.substr(magic.size()));
  ARV_ASSERT(trace.slot > 0);
  // Tenant table.
  ARV_ASSERT(static_cast<bool>(std::getline(in, line)));  // header
  while (std::getline(in, line)) {
    if (line == "tenant,slot,arrivals") {
      break;
    }
    std::istringstream row(line);
    std::string name, field;
    ARV_ASSERT(static_cast<bool>(std::getline(row, name, ',')));
    TenantSchedule schedule;
    schedule.tenant = name;
    ARV_ASSERT(static_cast<bool>(std::getline(row, field, ',')));
    schedule.cost_min = std::stoll(field);
    ARV_ASSERT(static_cast<bool>(std::getline(row, field, ',')));
    schedule.cost_max = std::stoll(field);
    ARV_ASSERT(static_cast<bool>(std::getline(row, field, ',')));
    schedule.cost_alpha = static_cast<double>(std::stoll(field)) / 1000.0;
    ARV_ASSERT(static_cast<bool>(std::getline(row, field, ',')));
    schedule.arrivals.resize(static_cast<std::size_t>(std::stoull(field)), 0);
    trace.tenants.push_back(std::move(schedule));
  }
  // Arrival rows.
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream row(line);
    std::string name, field;
    ARV_ASSERT(static_cast<bool>(std::getline(row, name, ',')));
    TenantSchedule* schedule = nullptr;
    for (TenantSchedule& t : trace.tenants) {
      if (t.tenant == name) {
        schedule = &t;
        break;
      }
    }
    ARV_ASSERT_MSG(schedule != nullptr, "arrival row for unknown tenant");
    ARV_ASSERT(static_cast<bool>(std::getline(row, field, ',')));
    const auto s = static_cast<std::size_t>(std::stoull(field));
    ARV_ASSERT_MSG(s < schedule->arrivals.size(), "slot out of range");
    ARV_ASSERT(static_cast<bool>(std::getline(row, field, ',')));
    const auto n = std::stoull(field);
    schedule->arrivals[s] = static_cast<std::uint32_t>(n);
    schedule->total += n;
  }
  return trace;
}

}  // namespace arv::load
