#include "src/load/slo.h"

#include <algorithm>

#include "src/container/host.h"
#include "src/util/assert.h"

namespace arv::load {
namespace {

/// The designated control-plane host whose sysfs serves /sys/arv/slo/.
constexpr int kControlHost = 0;

}  // namespace

SloAccountant::SloAccountant(cluster::Cluster& cluster, SloConfig config)
    : cluster_(cluster), config_(config) {
  ARV_ASSERT(config_.period > 0);
  ARV_ASSERT(config_.burn_window >= config_.period);
}

SloAccountant::~SloAccountant() {
  if (cluster_.host_count() > kControlHost) {
    cluster_.host(kControlHost)
        .sysfs()
        .remove_control_subtree("/sys/arv/slo/");
  }
}

void SloAccountant::declare(const std::string& tenant,
                            cluster::RequestRouter& router, SloTarget target) {
  ARV_ASSERT_MSG(find(tenant) == nullptr, "tenant already declared");
  ARV_ASSERT(target.availability_permille > 0 &&
             target.availability_permille <= 1000);
  ARV_ASSERT(target.p99_target > 0);
  ARV_ASSERT(target.degraded_weight_permille >= 0 &&
             target.degraded_weight_permille <= 1000);
  tenants_.push_back(Tenant{});
  Tenant& t = tenants_.back();
  t.name = tenant;
  t.router = &router;
  t.target = target;

  if (obs::TraceRecorder* rec = cluster_.trace()) {
    const std::string scope = "slo." + tenant;
    rec->add_gauge("p99_us", scope, [&t] { return t.p99; });
    rec->add_gauge("availability_permille", scope,
                   [&t] { return t.availability; });
    rec->add_gauge("budget_remaining_permille", scope,
                   [&t] { return t.budget_remaining; });
    rec->add_gauge("burn_rate_permille", scope, [&t] { return t.burn_rate; });
    rec->add_gauge("degraded", scope,
                   [&t] { return static_cast<std::int64_t>(t.degraded); });
  }
  if (cluster_.host_count() > kControlHost) {
    vfs::VirtualSysfs& sysfs = cluster_.host(kControlHost).sysfs();
    const std::string prefix = "/sys/arv/slo/" + tenant + "/";
    sysfs.register_control_file(
        prefix + "objective",
        [&t] {
          return "availability_permille " +
                 std::to_string(t.target.availability_permille) +
                 "\np99_target_us " + std::to_string(t.target.p99_target) +
                 "\n";
        },
        &t.gen);
    sysfs.register_control_file(
        prefix + "availability_permille",
        [&t] { return std::to_string(t.availability) + "\n"; }, &t.gen);
    sysfs.register_control_file(
        prefix + "p99_us", [&t] { return std::to_string(t.p99) + "\n"; },
        &t.gen);
    sysfs.register_control_file(
        prefix + "budget_remaining_permille",
        [&t] { return std::to_string(t.budget_remaining) + "\n"; }, &t.gen);
    sysfs.register_control_file(
        prefix + "burn_rate_permille",
        [&t] { return std::to_string(t.burn_rate) + "\n"; }, &t.gen);
    sysfs.register_control_file(
        prefix + "generated",
        [&t] { return std::to_string(t.generated) + "\n"; }, &t.gen);
    sysfs.register_control_file(
        prefix + "good", [&t] { return std::to_string(t.good) + "\n"; },
        &t.gen);
    sysfs.register_control_file(
        prefix + "degraded",
        [&t] { return std::to_string(t.degraded) + "\n"; }, &t.gen);
  }
}

const SloAccountant::Tenant* SloAccountant::find(
    const std::string& tenant) const {
  for (const Tenant& t : tenants_) {
    if (t.name == tenant) {
      return &t;
    }
  }
  return nullptr;
}

void SloAccountant::refresh(Tenant& t, SimTime now) {
  const std::uint64_t generated = t.router->generated();
  const std::uint64_t good = t.router->routed();
  const std::uint64_t degraded = t.router->degraded();
  // Failure mass in milli-failures: a hard failure (dropped, rejected,
  // unroutable, shed) costs 1000, a degraded (brownout) reply costs its
  // configured partial weight. Exactly the old books when degraded == 0.
  const std::int64_t bad_milli =
      static_cast<std::int64_t>(generated - good) * 1000 +
      static_cast<std::int64_t>(degraded) * t.target.degraded_weight_permille;

  const std::int64_t availability =
      generated == 0
          ? 1000
          : (static_cast<std::int64_t>(generated) * 1000 - bad_milli) /
                static_cast<std::int64_t>(generated);

  // Lifetime error budget: how much of the allowed failure mass is left.
  const std::int64_t allowed_milli =
      (1000 - t.target.availability_permille) *
      static_cast<std::int64_t>(generated);
  std::int64_t remaining = 1000;
  if (allowed_milli > 0) {
    remaining = std::clamp<std::int64_t>(
        (allowed_milli - bad_milli) * 1000 / allowed_milli, 0, 1000);
  } else if (bad_milli > 0) {
    remaining = 0;  // any failure with a zero-tolerance budget
  }

  // Trailing burn rate: bad-vs-allowed over the window, 1000 = at pace.
  t.window.push_back({now, static_cast<std::int64_t>(generated), bad_milli});
  while (t.window.size() > 1 && t.window.front()[0] + config_.burn_window < now) {
    t.window.pop_front();
  }
  const std::int64_t window_generated = t.window.back()[1] - t.window.front()[1];
  const std::int64_t window_bad_milli =
      t.window.back()[2] - t.window.front()[2];
  const std::int64_t window_allowed_milli =
      (1000 - t.target.availability_permille) * window_generated;
  std::int64_t burn = 0;
  if (window_allowed_milli > 0) {
    burn = window_bad_milli * 1000 / window_allowed_milli;
  } else if (window_bad_milli > 0) {
    burn = 1000000;  // zero tolerance, nonzero failures: off the chart
  }

  // p99 over the tenant's aggregate latency distribution (live sinks merged
  // with migration-archived history — the user's view, not one replica's).
  const server::RequestStats agg = t.router->aggregate();
  const std::int64_t p99 =
      agg.latency_hist.count() == 0 ? 0 : agg.latency_hist.percentile(99.0);

  const bool changed = generated != t.generated || good != t.good ||
                       degraded != t.degraded ||
                       availability != t.availability || p99 != t.p99 ||
                       remaining != t.budget_remaining || burn != t.burn_rate;
  t.generated = generated;
  t.good = good;
  t.degraded = degraded;
  t.availability = availability;
  t.budget_remaining = remaining;
  t.burn_rate = burn;
  if (p99 > static_cast<std::int64_t>(t.target.p99_target)) {
    ++t.violations;  // one per accounting round spent over the objective
  }
  t.p99 = p99;
  if (changed) {
    ++t.gen;  // invalidate this tenant's cached renders, and only then
  }
}

void SloAccountant::tick(SimTime now, SimDuration /*dt*/) {
  for (Tenant& t : tenants_) {
    refresh(t, now);
  }
}

std::uint64_t SloAccountant::degraded(const std::string& tenant) const {
  const Tenant* t = find(tenant);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  return t->degraded;
}

std::int64_t SloAccountant::availability_permille(
    const std::string& tenant) const {
  const Tenant* t = find(tenant);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  return t->availability;
}

std::int64_t SloAccountant::p99_us(const std::string& tenant) const {
  const Tenant* t = find(tenant);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  return t->p99;
}

std::int64_t SloAccountant::budget_remaining_permille(
    const std::string& tenant) const {
  const Tenant* t = find(tenant);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  return t->budget_remaining;
}

std::int64_t SloAccountant::burn_rate_permille(
    const std::string& tenant) const {
  const Tenant* t = find(tenant);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  return t->burn_rate;
}

std::uint64_t SloAccountant::p99_violations(const std::string& tenant) const {
  const Tenant* t = find(tenant);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  return t->violations;
}

bool SloAccountant::attaining(const std::string& tenant) const {
  const Tenant* t = find(tenant);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  return t->availability >= t->target.availability_permille &&
         t->p99 <= static_cast<std::int64_t>(t->target.p99_target);
}

}  // namespace arv::load
