// SloAccountant — per-tenant service-level objective accounting.
//
// Each tenant declares an SLO (availability target + p99 latency target);
// the accountant folds that tenant's router dispositions and latency
// histogram into the SRE error-budget vocabulary:
//
//   availability   good/generated, in permille (good = routed; everything
//                  else — dropped, rejected, unroutable, shed — burns
//                  budget, and a degraded (brownout) reply burns a
//                  configurable partial weight of one failure).
//   error budget   allowed bad = (1000 - target) * generated (milli-
//                  failures); remaining = 1 - bad/allowed, clamped to
//                  [0, 1000] permille.
//   burn rate      bad-vs-allowed over a trailing window, in permille of the
//                  sustainable rate: 1000 = burning exactly at budget pace,
//                  higher = the budget dies before the day does (the
//                  multi-window alert signal from the SRE workbook).
//   p99            the tenant's aggregate latency histogram percentile
//                  against the declared target.
//
// All arithmetic is integer permille over counters the serial phase already
// maintains, so the accountant sits inside the byte-identical-trace
// contract. Results surface twice: as cluster trace series
// (slo.<tenant>.{p99_us,availability_permille,budget_remaining_permille})
// and as /sys/arv/slo/<tenant>/ control-plane files on the designated
// control host, render-cached behind a generation that bumps only when a
// tenant's numbers actually change.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/router.h"
#include "src/sim/engine.h"
#include "src/vfs/virtual_sysfs.h"

namespace arv::load {

struct SloTarget {
  /// Availability objective in permille (999 = 99.9%).
  std::int64_t availability_permille = 999;
  /// Latency objective: the tenant's p99 should stay under this.
  SimDuration p99_target = 250 * units::msec;
  /// Budget weight of a degraded (brownout) response, in permille of a full
  /// failure: 0 = degraded replies are as good as full ones, 1000 = as bad
  /// as a drop. The default books a browned-out reply as half a failure.
  std::int64_t degraded_weight_permille = 500;
};

struct SloConfig {
  /// Accounting-round length.
  SimDuration period = 100 * units::msec;
  /// Trailing window for the burn rate.
  SimDuration burn_window = 10 * units::sec;
};

class SloAccountant : public sim::TickComponent {
 public:
  explicit SloAccountant(cluster::Cluster& cluster, SloConfig config = {});
  ~SloAccountant() override;

  /// Declare one tenant's objective over the router fronting its replicas.
  /// Registers the tenant's trace series and /sys/arv/slo/<tenant>/ files.
  void declare(const std::string& tenant, cluster::RequestRouter& router,
               SloTarget target = {});

  // --- sim::TickComponent ---------------------------------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "cluster.slo"; }
  SimDuration tick_period() const override { return config_.period; }

  // --- per-tenant queries (last completed round) ----------------------------
  int tenant_count() const { return static_cast<int>(tenants_.size()); }
  /// Routed requests served degraded (brownout), as of the last round.
  std::uint64_t degraded(const std::string& tenant) const;
  std::int64_t availability_permille(const std::string& tenant) const;
  std::int64_t p99_us(const std::string& tenant) const;
  std::int64_t budget_remaining_permille(const std::string& tenant) const;
  std::int64_t burn_rate_permille(const std::string& tenant) const;
  /// Rounds in which the tenant's p99 exceeded its target, cumulative.
  std::uint64_t p99_violations(const std::string& tenant) const;
  /// True when the tenant currently meets both objectives.
  bool attaining(const std::string& tenant) const;

 private:
  struct Tenant {
    std::string name;
    cluster::RequestRouter* router = nullptr;
    SloTarget target;
    // Last-round snapshot (what queries, series, and files serve).
    std::uint64_t generated = 0;
    std::uint64_t good = 0;
    std::uint64_t degraded = 0;
    std::int64_t availability = 1000;  ///< permille
    std::int64_t p99 = 0;              ///< microseconds
    std::int64_t budget_remaining = 1000;
    std::int64_t burn_rate = 0;
    std::uint64_t violations = 0;
    /// Trailing (time, generated, bad_milli) checkpoints for the burn
    /// window; bad is in milli-failures so degraded partial weights stay
    /// integer-exact.
    std::deque<std::array<std::int64_t, 3>> window;
    /// Render-cache generation for this tenant's files.
    vfs::Generation gen = 1;
  };

  const Tenant* find(const std::string& tenant) const;
  void refresh(Tenant& tenant, SimTime now);

  cluster::Cluster& cluster_;
  SloConfig config_;
  /// Deque: declare() must never move an already-registered tenant (its
  /// generation address is cached by the vfs layer).
  std::deque<Tenant> tenants_;
};

}  // namespace arv::load
