// TraceSpec — a compact, seed-deterministic description of a day of demand.
//
// The workload engine (DESIGN.md §14) separates *what the users do* from
// *how the fleet reacts*: a TraceSpec declares the demand shape — a diurnal
// sinusoid, flash-crowd spikes, Poisson or Markov-modulated (MMPP) session
// arrivals, a bounded-Pareto per-request cost, and per-tenant mix weights —
// and compile() lowers it to an integer per-slot arrival schedule the
// OpenLoopDriver replays tick by tick. Compilation happens once, before time
// advances, so the per-tick fast path is pure table lookup.
//
// Everything here is bit-deterministic across platforms and thread counts:
// the sinusoid is integer Bhaskara-I (no libm), the Poisson/Pareto samplers
// draw from the repo's own xoshiro Rng through series-based exp/ln built
// from IEEE-exact +,*,/ only, and the compiled schedule is integer counts.
// The same spec + seed therefore compiles to the same schedule everywhere —
// the property the golden compile test and the byte-identical-trace tests
// pin.
//
// Real traces replay through the same machinery: save_csv/load_csv round-trip
// a compiled schedule, so a production arrival log binned into slots drops in
// wherever a synthetic spec would.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/types.h"

namespace arv::load {

// --- deterministic math (exposed for tests) ----------------------------------
namespace det {

/// Integer Bhaskara-I sine over a full period expressed in permille:
/// phase in [0, 2000) -> sin in [-1000, 1000]. Out-of-range phases wrap.
/// Max error vs true sine is ~0.2% — indistinguishable at schedule
/// granularity, and exactly reproducible on every platform (pure int64).
std::int64_t sin_permille(std::int64_t phase);

/// exp(x) by fixed-rule Taylor summation (IEEE +,*,/ only; no libm, so the
/// bits match across platforms). Accurate to ~1e-15 relative for |x| <= 16.
double det_exp(double x);

/// ln(x) for x > 0 via atanh series after power-of-two range reduction.
double det_ln(double x);

/// x^p for x > 0: det_exp(p * det_ln(x)).
double det_pow(double x, double p);

/// Poisson(lambda) by chunked Knuth inversion (sums Poisson(<=8) chunks, so
/// it never underflows); draws only uniform doubles from `rng`.
std::uint64_t poisson(Rng& rng, double lambda);

/// Bounded Pareto(alpha) on [lo, hi] by inverse CDF — the heavy-tailed
/// per-request cost. alpha <= 0 degenerates to the midpoint.
std::int64_t bounded_pareto(Rng& rng, std::int64_t lo, std::int64_t hi,
                            double alpha);

/// The inverse CDF itself at quantile u in [0, 1) — for precomputing cost
/// lookup tables (the injection fast path samples a table instead of paying
/// det_pow per request).
std::int64_t bounded_pareto_quantile(double u, std::int64_t lo,
                                     std::int64_t hi, double alpha);

}  // namespace det

// --- the spec ----------------------------------------------------------------

/// One flash crowd: demand ramps linearly to `magnitude` x the baseline,
/// holds, and decays back. Offsets are within the cycle.
struct FlashCrowd {
  SimTime start = 0;
  SimDuration ramp = 2 * units::sec;
  SimDuration hold = 5 * units::sec;
  SimDuration decay = 3 * units::sec;
  /// Peak multiplier applied to the diurnal baseline (2.0 = double demand).
  double magnitude = 2.0;
};

/// How session arrivals are drawn around the deterministic rate profile.
enum class ArrivalProcess {
  kDeterministic,  ///< exactly round(lambda) per slot — analytic baselines
  kPoisson,        ///< independent Poisson counts per slot
  kMmpp,           ///< 2-state Markov-modulated Poisson (bursty sessions)
};

/// One tenant's share of the mix. Weights are relative; each tenant's slot
/// rate is `weight / sum(weights)` of the total profile (independent Poisson
/// thinning, so per-tenant streams are independent given the profile).
struct TenantMix {
  std::string name;
  double weight = 1.0;
  /// Per-request CPU cost: bounded Pareto on [cost_min, cost_max].
  CpuTime cost_min = 1 * units::msec;
  CpuTime cost_max = 50 * units::msec;
  double cost_alpha = 1.3;  ///< tail index; smaller = heavier tail
};

struct TraceSpec {
  /// One replay cycle — the engine's (possibly compressed) "day". The driver
  /// loops it, so a 60 s cycle replayed for 10 minutes is ten days.
  SimDuration duration = 60 * units::sec;
  /// Schedule resolution; must divide `duration` and be a multiple of the
  /// cluster tick (the driver spreads each slot's count across its ticks).
  SimDuration slot = 100 * units::msec;
  /// Cycle-average total arrival rate, all tenants combined.
  double mean_rps = 1000.0;
  /// Diurnal swing: rate = mean * (1 + amplitude * sin(...)) with
  /// `diurnal_periods` full periods per cycle. 0 flattens the day.
  double diurnal_amplitude = 0.5;
  int diurnal_periods = 1;
  std::vector<FlashCrowd> flash_crowds;
  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// MMPP burst state: rate multiplier while "on", and mean sojourn times
  /// (exponential, in slots) for the off->on / on->off transitions.
  double burst_multiplier = 3.0;
  double burst_on_slots = 20.0;   ///< mean burst length, in slots
  double burst_off_slots = 80.0;  ///< mean gap between bursts, in slots
  std::uint64_t seed = 42;
  std::vector<TenantMix> tenants;
};

// --- the compiled schedule ---------------------------------------------------

/// One tenant's integer arrival schedule: arrivals[s] sessions during slot s.
struct TenantSchedule {
  std::string tenant;
  CpuTime cost_min = 0;
  CpuTime cost_max = 0;
  double cost_alpha = 1.0;
  std::vector<std::uint32_t> arrivals;
  std::uint64_t total = 0;  ///< sum of arrivals
};

/// A compiled trace: per-tenant per-slot integer arrival counts. This is the
/// only thing the driver consumes — synthetic specs and replayed CSV logs
/// are indistinguishable past this point.
struct CompiledTrace {
  SimDuration slot = 0;
  std::vector<TenantSchedule> tenants;

  SimDuration duration() const;  ///< slot * slots-per-tenant
  std::uint64_t total_arrivals() const;
  const TenantSchedule* find(const std::string& tenant) const;
};

/// Lower a spec to its arrival schedule. Pure function of (spec, spec.seed):
/// the same spec compiles to the same schedule on every platform.
CompiledTrace compile(const TraceSpec& spec);

/// Serialize a compiled trace as CSV (`tenant,slot,arrivals` long format
/// with a header carrying the slot length and cost model), and read one
/// back. load_csv(save_csv(t)) reproduces t exactly.
void save_csv(const CompiledTrace& trace, std::ostream& out);
CompiledTrace load_csv(std::istream& in);

}  // namespace arv::load
