// OpenLoopDriver — replays a compiled trace into the fleet, open-loop.
//
// A cluster tick component that injects each tenant's arrival schedule
// through that tenant's RequestRouter. Open-loop means arrivals *never* wait
// on completions: a melting fleet keeps receiving the full schedule and the
// damage shows up as drops and queue growth, exactly how a saturated service
// experiences the internet (closed-loop generators famously hide this —
// coordinated omission).
//
// The driver runs in the cluster's serial component phase (the same
// `!in_host_phase_` ordering pin every mutator relies on), reads the slot
// table compiled ahead of time, and spreads each slot's integer count across
// the slot's ticks exactly (sum of per-tick shares == the slot count). Costs
// are drawn per request from a per-tenant rng stream at injection time —
// deterministic, because injection order is fixed by (tenant registration
// order, tick). Traces are therefore byte-identical at any thread count.
//
// Fast path: per tick the driver fills one pooled cost buffer per tenant and
// hands it to RequestRouter::inject_batch — no per-request allocation, one
// fleet-snapshot pull per batch. The driver times itself (wall clock) so
// benchmarks can report generator overhead against the step loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/router.h"
#include "src/load/trace_spec.h"
#include "src/sim/engine.h"

namespace arv::load {

struct DriverConfig {
  /// Replay the cycle forever (true) or go quiet after one pass (false).
  bool repeat = true;
};

class OpenLoopDriver : public sim::TickComponent {
 public:
  OpenLoopDriver(cluster::Cluster& cluster, CompiledTrace trace,
                 DriverConfig config = {});

  /// Bind one tenant's schedule to the router that fronts that tenant's
  /// replicas. The trace must contain the tenant; a tenant may be bound
  /// once. Unbound tenants in the trace are simply not replayed.
  void bind(const std::string& tenant, cluster::RequestRouter& router);

  // --- sim::TickComponent ---------------------------------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "cluster.load"; }
  SimDuration tick_period() const override { return 0; }  // every tick

  // --- telemetry ------------------------------------------------------------
  std::uint64_t injected() const;  ///< all tenants
  std::uint64_t injected(const std::string& tenant) const;
  /// Completed replay cycles ("days").
  std::uint64_t cycles() const { return cycles_; }
  /// Wall-clock microseconds of generator bookkeeping — cursor math, exact
  /// slot spreading, cost sampling, batch fill. The inject_batch call itself
  /// is excluded: routing and service are the *workload being simulated*,
  /// not driver overhead, and they happen identically whatever generates the
  /// arrivals. For the bench's driver-vs-step accounting. Not traced (wall
  /// time is machine-dependent; it must never enter the trace contract).
  std::int64_t wall_us() const { return wall_ns_ / 1000; }

  const CompiledTrace& trace() const { return trace_; }

 private:
  struct Binding {
    const TenantSchedule* schedule = nullptr;
    cluster::RequestRouter* router = nullptr;
    Rng cost_rng;
    /// Bounded-Pareto inverse CDF precomputed at kCostQuantiles midpoints:
    /// a per-request cost draw is one rng call and one table lookup instead
    /// of two det_pow evaluations — the difference between the generator
    /// costing ~50% and <10% of step wall-clock at 1M+ requests/day.
    std::vector<CpuTime> cost_table;
    std::uint64_t injected = 0;
  };
  static constexpr std::size_t kCostQuantiles = 1024;

  cluster::Cluster& cluster_;
  CompiledTrace trace_;
  DriverConfig config_;
  std::vector<Binding> bindings_;  ///< injection order = bind order
  /// Ticks dispatched so far — the schedule cursor. Counting ticks (rather
  /// than anchoring on SimTime) keeps the slot math exact whatever time the
  /// driver was registered at.
  std::uint64_t tick_count_ = 0;
  std::uint64_t cycles_ = 0;
  /// Nanosecond accumulator: per-tick bookkeeping is often sub-microsecond,
  /// so accumulating truncated microseconds would undercount to ~zero.
  std::int64_t wall_ns_ = 0;
  /// Pooled per-tick cost batch (capacity persists across ticks, so steady
  /// state injects with zero allocation).
  std::vector<CpuTime> cost_batch_;
};

}  // namespace arv::load
