#include "src/load/driver.h"

#include <chrono>

#include "src/util/assert.h"

namespace arv::load {

OpenLoopDriver::OpenLoopDriver(cluster::Cluster& cluster, CompiledTrace trace,
                               DriverConfig config)
    : cluster_(cluster), trace_(std::move(trace)), config_(config) {
  ARV_ASSERT_MSG(!trace_.tenants.empty(), "empty trace");
  ARV_ASSERT_MSG(trace_.slot % cluster_.config().tick == 0,
                 "trace slot must be a multiple of the cluster tick");
  for (const TenantSchedule& t : trace_.tenants) {
    ARV_ASSERT_MSG(t.arrivals.size() == trace_.tenants.front().arrivals.size(),
                   "tenant schedules must cover the same cycle");
  }
  if (obs::TraceRecorder* rec = cluster_.trace()) {
    rec->add_counter("load.injected", "", [this] {
      return static_cast<std::int64_t>(injected());
    });
    rec->add_counter("load.cycles", "", [this] {
      return static_cast<std::int64_t>(cycles_);
    });
  }
}

void OpenLoopDriver::bind(const std::string& tenant,
                          cluster::RequestRouter& router) {
  const TenantSchedule* schedule = trace_.find(tenant);
  ARV_ASSERT_MSG(schedule != nullptr, "trace has no such tenant");
  for (const Binding& b : bindings_) {
    ARV_ASSERT_MSG(b.schedule != schedule, "tenant already bound");
  }
  Binding binding;
  binding.schedule = schedule;
  binding.router = &router;
  // A cost stream per tenant, keyed by the tenant name so rebinding order
  // never changes the costs a tenant's requests draw.
  std::uint64_t key = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char c : tenant) {
    key = (key ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  binding.cost_rng.reseed(key);
  binding.cost_table.reserve(kCostQuantiles);
  for (std::size_t i = 0; i < kCostQuantiles; ++i) {
    const double u = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(kCostQuantiles);
    binding.cost_table.push_back(det::bounded_pareto_quantile(
        u, schedule->cost_min, schedule->cost_max, schedule->cost_alpha));
  }
  bindings_.push_back(std::move(binding));
  if (obs::TraceRecorder* rec = cluster_.trace()) {
    // Capture by index: later bind() calls may reallocate bindings_.
    const std::size_t index = bindings_.size() - 1;
    rec->add_counter("load.injected", tenant, [this, index] {
      return static_cast<std::int64_t>(bindings_[index].injected);
    });
  }
}

std::uint64_t OpenLoopDriver::injected() const {
  std::uint64_t total = 0;
  for (const Binding& b : bindings_) {
    total += b.injected;
  }
  return total;
}

std::uint64_t OpenLoopDriver::injected(const std::string& tenant) const {
  for (const Binding& b : bindings_) {
    if (b.schedule->tenant == tenant) {
      return b.injected;
    }
  }
  return 0;
}

void OpenLoopDriver::tick(SimTime now, SimDuration dt) {
  // Wall accounting charges only the driver's own bookkeeping; the clock is
  // paused around inject_batch (routing + service are the simulated
  // workload, not generator overhead).
  auto mark = std::chrono::steady_clock::now();
  const auto charge = [this, &mark] {
    const auto t = std::chrono::steady_clock::now();
    wall_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(t - mark)
                    .count();
    mark = t;
  };
  ARV_ASSERT(dt > 0 && trace_.slot % dt == 0);
  const auto ticks_per_slot = static_cast<std::uint64_t>(trace_.slot / dt);
  const std::uint64_t slots = trace_.tenants.front().arrivals.size();
  const std::uint64_t ticks_per_cycle = slots * ticks_per_slot;
  const std::uint64_t cursor = tick_count_ % ticks_per_cycle;
  ++tick_count_;
  if (!config_.repeat && cycles_ > 0) {
    charge();
    return;  // one pass only; the day is over
  }
  const auto s = static_cast<std::size_t>(cursor / ticks_per_slot);
  const std::uint64_t k = cursor % ticks_per_slot;
  for (Binding& binding : bindings_) {
    const std::uint64_t a = binding.schedule->arrivals[s];
    // Exact spreading: tick k of T gets A(k+1)/T - Ak/T arrivals, which
    // telescopes to exactly A over the slot — no request is ever created
    // or lost by the tick subdivision.
    const std::uint64_t n =
        a * (k + 1) / ticks_per_slot - a * k / ticks_per_slot;
    if (n == 0) {
      continue;
    }
    cost_batch_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto q = static_cast<std::size_t>(binding.cost_rng.uniform_int(
          0, static_cast<std::int64_t>(kCostQuantiles) - 1));
      cost_batch_.push_back(binding.cost_table[q]);
    }
    charge();
    binding.router->inject_batch(now, cost_batch_.data(), cost_batch_.size());
    mark = std::chrono::steady_clock::now();  // injection is off the clock
    binding.injected += n;
  }
  if (cursor + 1 == ticks_per_cycle) {
    ++cycles_;
  }
  charge();
}

}  // namespace arv::load
