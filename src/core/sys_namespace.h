// SysNamespace — the paper's central data structure (§3.1).
//
// One instance per container. Maintains the container's *effective* CPU
// count (Algorithm 1) and *effective* memory size (Algorithm 2), i.e. the
// resources the container can actually use right now given its cgroup
// limits, its share of contention, and the host's current slack. The
// Ns_Monitor drives the periodic updates; the virtual sysfs answers
// application queries from these values.
//
// Since the policy refactor, SysNamespace owns only the static bounds, the
// effective state, and the decision bookkeeping; *how* the effective values
// move lives in the pluggable CpuPolicy/MemPolicy instances (policy.h).
// Policies return unclamped intents; SysNamespace clamps them into the
// bounds and records the clamp in the per-reason decision counters.
#pragma once

#include <memory>
#include <string>

#include "src/core/params.h"
#include "src/core/policy.h"
#include "src/proc/process.h"
#include "src/util/types.h"

namespace arv::core {

class SysNamespace final : public proc::Namespace {
 public:
  /// `params` must be valid() and name registered policies.
  SysNamespace(cgroup::CgroupId cgroup, Params params);
  ~SysNamespace() override;

  cgroup::CgroupId cgroup() const { return cgroup_; }

  // --- queries (what the virtual sysfs exports) ----------------------------
  int effective_cpus() const { return e_cpu_; }
  Bytes effective_memory() const { return e_mem_; }
  CpuBounds cpu_bounds() const { return bounds_; }
  Bytes mem_soft_limit() const { return soft_limit_; }
  Bytes mem_hard_limit() const { return hard_limit_; }

  // --- policy management (runtime-writable via /sys/arv/policy/<c>/) -------
  const Params& params() const { return params_; }
  const std::string& cpu_policy_name() const { return params_.cpu_policy; }
  const std::string& mem_policy_name() const { return params_.mem_policy; }

  /// Swap one policy for a freshly-created instance of `name`, immediately
  /// re-deriving the effective value under the new policy. False (and no
  /// change) if `name` is not registered.
  bool set_cpu_policy(const std::string& name);
  bool set_mem_policy(const std::string& name);

  /// Replace the knob set. Recreates both policies (they capture Params at
  /// construction), so smoothing/prediction state restarts. False (and no
  /// change) if `next` fails valid() or names an unregistered policy.
  bool set_params(const Params& next);

  // --- configuration-change hooks (called by Ns_Monitor) -------------------
  /// Recompute Algorithm 1's static bounds from cgroup settings. `total_ram`
  /// caps the memory limits; `total_shares` is Σ cpu.shares over containers.
  void refresh_cpu_bounds(const cgroup::Tree& tree);
  void refresh_mem_limits(const cgroup::Tree& tree, Bytes total_ram);

  // --- periodic updates (called by Ns_Monitor every scheduling period) -----
  /// One CPU-policy decision (Algorithm 1's lines 8-17 slot), clamped into
  /// [lower, upper].
  void update_cpu(const CpuObservation& obs);

  /// One memory-policy decision (Algorithm 2's slot), clamped into
  /// [soft, hard]. No-op until the limits are first refreshed.
  void update_mem(const MemObservation& obs);

  std::uint64_t cpu_updates() const { return cpu_updates_; }
  std::uint64_t mem_updates() const { return mem_updates_; }

  /// Per-reason tallies of every update_cpu()/update_mem() round.
  const DecisionCounters& cpu_decisions() const { return cpu_decisions_; }
  const DecisionCounters& mem_decisions() const { return mem_decisions_; }

 private:
  void apply_cpu_bounds();
  void apply_mem_limits();
  MemBounds mem_bounds() const { return {soft_limit_, hard_limit_}; }

  cgroup::CgroupId cgroup_;
  Params params_;

  std::unique_ptr<CpuPolicy> cpu_policy_;
  std::unique_ptr<MemPolicy> mem_policy_;

  CpuBounds bounds_;
  int e_cpu_ = 1;

  Bytes soft_limit_ = 0;
  Bytes hard_limit_ = 0;
  Bytes e_mem_ = 0;

  std::uint64_t cpu_updates_ = 0;
  std::uint64_t mem_updates_ = 0;
  DecisionCounters cpu_decisions_;
  DecisionCounters mem_decisions_;
};

}  // namespace arv::core
