// SysNamespace — the paper's central data structure (§3.1).
//
// One instance per container. Maintains the container's *effective* CPU
// count (Algorithm 1) and *effective* memory size (Algorithm 2), i.e. the
// resources the container can actually use right now given its cgroup
// limits, its share of contention, and the host's current slack. The
// Ns_Monitor drives the periodic updates; the virtual sysfs answers
// application queries from these values.
#pragma once

#include <optional>

#include "src/core/params.h"
#include "src/proc/process.h"
#include "src/util/types.h"

namespace arv::core {

/// Static CPU bounds derived from cgroup settings (Algorithm 1, lines 4-5).
struct CpuBounds {
  int lower = 1;
  int upper = 1;
};

/// Inputs to one effective-CPU update (Algorithm 1, lines 8-17).
struct CpuObservation {
  CpuTime usage;        ///< container CPU time consumed in the window
  SimDuration window;   ///< window length t
  bool host_has_slack;  ///< pslack > 0 during the window
};

/// Inputs to one effective-memory update (Algorithm 2).
struct MemObservation {
  Bytes free;           ///< system-wide current free memory (cfree)
  Bytes usage;          ///< container's current memory usage (cmem)
  bool kswapd_active;   ///< kswapd currently reclaiming
  Bytes low_mark;       ///< LOW_MARK watermark
  Bytes high_mark;      ///< HIGH_MARK watermark
};

class SysNamespace final : public proc::Namespace {
 public:
  SysNamespace(cgroup::CgroupId cgroup, Params params);

  cgroup::CgroupId cgroup() const { return cgroup_; }

  // --- queries (what the virtual sysfs exports) ----------------------------
  int effective_cpus() const { return e_cpu_; }
  Bytes effective_memory() const { return e_mem_; }
  CpuBounds cpu_bounds() const { return bounds_; }
  Bytes mem_soft_limit() const { return soft_limit_; }
  Bytes mem_hard_limit() const { return hard_limit_; }

  // --- configuration-change hooks (called by Ns_Monitor) -------------------
  /// Recompute Algorithm 1's static bounds from cgroup settings. `total_ram`
  /// caps the memory limits; `total_shares` is Σ cpu.shares over containers.
  void refresh_cpu_bounds(const cgroup::Tree& tree);
  void refresh_mem_limits(const cgroup::Tree& tree, Bytes total_ram);

  // --- periodic updates (called by Ns_Monitor every scheduling period) -----
  /// Algorithm 1 lines 8-17: one ±1 adjustment based on window utilization.
  void update_cpu(const CpuObservation& obs);

  /// Algorithm 2: grow toward the hard limit under the prediction gate, or
  /// reset to the soft limit while kswapd reclaims.
  void update_mem(const MemObservation& obs);

  std::uint64_t cpu_updates() const { return cpu_updates_; }
  std::uint64_t mem_updates() const { return mem_updates_; }

 private:
  cgroup::CgroupId cgroup_;
  Params params_;

  CpuBounds bounds_;
  int e_cpu_ = 1;

  Bytes soft_limit_ = 0;
  Bytes hard_limit_ = 0;
  Bytes e_mem_ = 0;
  /// Previous-window snapshots for the line-8 prediction ratio. Empty until
  /// the first update_mem() window completes, so byte value 0 (a legal
  /// usage/free reading) is never conflated with "no previous window".
  std::optional<Bytes> prev_free_;
  std::optional<Bytes> prev_usage_;

  std::uint64_t cpu_updates_ = 0;
  std::uint64_t mem_updates_ = 0;
};

}  // namespace arv::core
