// The pluggable adaptation-policy layer.
//
// The paper's Algorithms 1/2 are one point in a design space that follow-up
// work explores aggressively (ARC-V's per-workload vertical adaptivity,
// "CPU-Limits kill Performance"'s replaceable control models). This layer
// opens that space: a CpuPolicy decides the next effective-CPU value and a
// MemPolicy the next effective-memory value from (bounds, observation,
// current state); SysNamespace owns one instance of each, clamps their
// decisions into the static bounds, and counts the decision reasons.
//
// Policies are stateful per-container objects (the paper's memory policy
// carries the previous-window prediction snapshot; the EWMA policy carries
// its smoothed utilization), created from the name-keyed PolicyRegistry so
// new control strategies are one-file additions instead of core surgery.
//
// Built-in policies:
//   "paper"        Algorithms 1/2 exactly as published (the default).
//   "static"       LXCFS / cgroup-namespace comparator: export the
//                  administrator-set limits, never react to allocation.
//   "ewma"         Hysteresis on EWMA-smoothed utilization with separate
//                  up/down thresholds — no ±1 oscillation under bursty load.
//   "proportional" ARC-V-style: steps proportional to the utilization error
//                  instead of fixed ±1.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/params.h"
#include "src/util/types.h"

namespace arv::core {

/// Static CPU bounds derived from cgroup settings (Algorithm 1, lines 4-5).
struct CpuBounds {
  int lower = 1;
  int upper = 1;
};

/// Inputs to one effective-CPU update (Algorithm 1, lines 8-17).
struct CpuObservation {
  CpuTime usage;        ///< container CPU time consumed in the window
  SimDuration window;   ///< window length t
  bool host_has_slack;  ///< pslack > 0 during the window
};

/// Inputs to one effective-memory update (Algorithm 2).
struct MemObservation {
  Bytes free;           ///< system-wide current free memory (cfree)
  Bytes usage;          ///< container's current memory usage (cmem)
  bool kswapd_active;   ///< kswapd currently reclaiming
  Bytes low_mark;       ///< LOW_MARK watermark
  Bytes high_mark;      ///< HIGH_MARK watermark
};

/// Why a policy's update moved (or did not move) the effective value. The
/// kClamped reason is assigned by SysNamespace when the static bounds, not
/// the policy, determined the final value.
enum class Decision {
  kHeld,
  kGrew,
  kShrank,
  kClamped,
  kReset,
};

/// Stable lower-case label ("held", "grew", ...) for traces and pseudo-files.
const char* decision_name(Decision d);

/// Per-reason counters, advanced once per update_cpu()/update_mem() round.
struct DecisionCounters {
  std::uint64_t held = 0;
  std::uint64_t grew = 0;
  std::uint64_t shrank = 0;
  std::uint64_t clamped = 0;
  std::uint64_t reset = 0;

  void count(Decision d);
  std::uint64_t total() const { return held + grew + shrank + clamped + reset; }
};

struct CpuDecision {
  int e_cpu = 1;
  Decision reason = Decision::kHeld;
};

struct MemDecision {
  Bytes e_mem = 0;
  Decision reason = Decision::kHeld;
};

/// The memory limits a MemPolicy decides within (Algorithm 2's [soft, hard]).
struct MemBounds {
  Bytes soft = 0;
  Bytes hard = 0;
};

/// Vertical-adaptivity policy for effective CPUs. Implementations may return
/// values outside [bounds.lower, bounds.upper]; SysNamespace clamps and
/// records the clamp as the decision reason.
class CpuPolicy {
 public:
  virtual ~CpuPolicy() = default;

  /// Registry name this instance was created under.
  virtual std::string name() const = 0;

  /// False for comparators that export static limits and never react to
  /// allocation (invariant tests skip the adaptivity checks for these).
  virtual bool adaptive() const { return true; }

  /// Re-derive the exported value after a bounds change (container creation
  /// included; `current` is the pre-refresh value). Not counted as an update.
  virtual CpuDecision on_bounds(const CpuBounds& bounds, int current) = 0;

  /// One periodic decision (Algorithm 1's line 8-17 slot).
  virtual CpuDecision update(const CpuBounds& bounds, const CpuObservation& obs,
                             int current) = 0;
};

/// Vertical-adaptivity policy for effective memory; same contract as
/// CpuPolicy, over [bounds.soft, bounds.hard].
class MemPolicy {
 public:
  virtual ~MemPolicy() = default;

  virtual std::string name() const = 0;
  virtual bool adaptive() const { return true; }

  /// Re-derive the exported value after a limit change (`current` is 0 before
  /// the first refresh).
  virtual MemDecision on_limits(const MemBounds& bounds, Bytes current) = 0;

  /// One periodic decision (Algorithm 2's slot).
  virtual MemDecision update(const MemBounds& bounds, const MemObservation& obs,
                             Bytes current) = 0;
};

/// Name-keyed factory registry. Factories receive the container's Params so
/// every policy shares the same ablation knobs. The built-in policies above
/// are registered on first use; callers may add their own.
class PolicyRegistry {
 public:
  using CpuFactory = std::function<std::unique_ptr<CpuPolicy>(const Params&)>;
  using MemFactory = std::function<std::unique_ptr<MemPolicy>(const Params&)>;

  /// The process-wide registry (the simulation is single-threaded).
  static PolicyRegistry& instance();

  /// Register/replace a factory under `name`.
  void register_cpu(const std::string& name, CpuFactory factory);
  void register_mem(const std::string& name, MemFactory factory);

  bool has_cpu(const std::string& name) const;
  bool has_mem(const std::string& name) const;

  /// Instantiate a policy; nullptr for unknown names.
  std::unique_ptr<CpuPolicy> make_cpu(const std::string& name,
                                      const Params& params) const;
  std::unique_ptr<MemPolicy> make_mem(const std::string& name,
                                      const Params& params) const;

  /// Registered names, sorted.
  std::vector<std::string> cpu_names() const;
  std::vector<std::string> mem_names() const;

 private:
  PolicyRegistry();

  std::map<std::string, CpuFactory> cpu_;
  std::map<std::string, MemFactory> mem_;
};

}  // namespace arv::core
