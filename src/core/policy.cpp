#include "src/core/policy.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "src/util/assert.h"

namespace arv::core {
namespace {

double utilization_of(const CpuObservation& obs, int current) {
  const double capacity =
      static_cast<double>(current) * static_cast<double>(obs.window);
  return static_cast<double>(obs.usage) / capacity;
}

/// Algorithm 2 lines 8-9: the free-memory impact predictor, shared by every
/// adaptive memory policy. Tracks the previous window's (free, usage)
/// snapshot and scales a candidate growth delta by how much free memory
/// moved per byte of container growth last window.
class GrowthPredictor {
 public:
  /// Predicted system-free-memory drop if `delta` bytes were granted now.
  /// Degenerate windows (container shrank or free memory grew) presume 1:1.
  Bytes predicted_drop(const MemObservation& obs, Bytes delta) const {
    double ratio = 1.0;
    if (prev_free_.has_value() && prev_usage_.has_value() &&
        obs.usage > *prev_usage_ && *prev_free_ > obs.free) {
      ratio = static_cast<double>(*prev_free_ - obs.free) /
              static_cast<double>(obs.usage - *prev_usage_);
    }
    return static_cast<Bytes>(ratio * static_cast<double>(delta));
  }

  /// End-of-update snapshot. Only taken when usage actually moved: heap
  /// growth is bursty relative to the update period, and a zero-delta window
  /// would collapse the prediction ratio to its default, hiding the
  /// free-memory drain that co-growing containers cause.
  void note(const MemObservation& obs) {
    if (!prev_usage_.has_value() || obs.usage != *prev_usage_) {
      prev_free_ = obs.free;
      prev_usage_ = obs.usage;
    }
  }

  /// A shortage window resets e_mem and must also re-seed the snapshot so
  /// the next ratio measures from the shortage window, not from before it.
  void reseed(const MemObservation& obs) {
    prev_free_ = obs.free;
    prev_usage_ = obs.usage;
  }

 private:
  std::optional<Bytes> prev_free_;
  std::optional<Bytes> prev_usage_;
};

// --- "paper": Algorithms 1/2 exactly as published ----------------------------

class PaperCpuPolicy final : public CpuPolicy {
 public:
  explicit PaperCpuPolicy(const Params& params) : params_(params) {}

  std::string name() const override { return "paper"; }

  CpuDecision on_bounds(const CpuBounds& bounds, int current) override {
    // Line 6 applies at creation; later setting changes keep the adaptive
    // state (SysNamespace clamps into the new range).
    return {current == 0 ? bounds.lower : current, Decision::kHeld};
  }

  CpuDecision update(const CpuBounds& bounds, const CpuObservation& obs,
                     int current) override {
    if (obs.host_has_slack) {
      // Lines 9-12: grow while the container saturates its effective CPUs
      // and the host has idle capacity it could soak up (work conservation).
      if (utilization_of(obs, current) > params_.cpu_util_threshold) {
        return {current + params_.cpu_step, Decision::kGrew};
      }
      return {current, Decision::kHeld};
    }
    // Lines 14-15: the host is saturated; back off toward the guaranteed
    // share so containers converge on an interference-free concurrency.
    if (current > bounds.lower) {
      return {current - params_.cpu_step, Decision::kShrank};
    }
    return {current, Decision::kHeld};
  }

 private:
  Params params_;
};

class PaperMemPolicy final : public MemPolicy {
 public:
  explicit PaperMemPolicy(const Params& params) : params_(params) {}

  std::string name() const override { return "paper"; }

  MemDecision on_limits(const MemBounds& bounds, Bytes current) override {
    // Algorithm 2, line 3: initialize to the soft limit; on limit changes,
    // SysNamespace re-clamps into the valid range.
    return {current == 0 ? bounds.soft : current, Decision::kHeld};
  }

  MemDecision update(const MemBounds& bounds, const MemObservation& obs,
                     Bytes current) override {
    if (obs.free <= obs.low_mark || obs.kswapd_active) {
      // Lines 13-14: memory shortage — fall back to the reclaim target so
      // the runtime sheds the memory kswapd is about to steal anyway.
      predictor_.reseed(obs);
      return {bounds.soft, Decision::kReset};
    }
    Bytes next = current;
    Decision reason = Decision::kHeld;
    if (current < bounds.hard &&
        static_cast<double>(obs.usage) >
            params_.mem_use_threshold * static_cast<double>(current)) {
      // Line 7: step toward the hard limit by 10% of the remaining headroom.
      const Bytes delta = std::max<Bytes>(
          units::page,
          static_cast<Bytes>(static_cast<double>(bounds.hard - current) *
                             params_.mem_growth_frac));
      // Line 9: only grow if the predicted free memory stays above
      // HIGH_MARK, i.e. growth will not wake kswapd.
      if (!params_.mem_prediction_gate ||
          obs.free - predictor_.predicted_drop(obs, delta) > obs.high_mark) {
        next = current + delta;
        reason = Decision::kGrew;
      }
    }
    predictor_.note(obs);
    return {next, reason};
  }

 private:
  Params params_;
  GrowthPredictor predictor_;
};

// --- "static": the LXCFS / cgroup-namespace comparator -----------------------

class StaticCpuPolicy final : public CpuPolicy {
 public:
  explicit StaticCpuPolicy(const Params&) {}

  std::string name() const override { return "static"; }
  bool adaptive() const override { return false; }

  CpuDecision on_bounds(const CpuBounds& bounds, int) override {
    // Export the administrator-set limit (quota/cpuset), nothing else.
    return {bounds.upper, Decision::kHeld};
  }

  CpuDecision update(const CpuBounds&, const CpuObservation&,
                     int current) override {
    return {current, Decision::kHeld};  // static views never react
  }
};

class StaticMemPolicy final : public MemPolicy {
 public:
  explicit StaticMemPolicy(const Params&) {}

  std::string name() const override { return "static"; }
  bool adaptive() const override { return false; }

  MemDecision on_limits(const MemBounds& bounds, Bytes) override {
    // Pin to the hard limit on *every* refresh — a runtime
    // `memory.limit_in_bytes` update must re-pin, exactly like LXCFS
    // following `docker update`, not only the refresh at construction.
    return {bounds.hard, Decision::kHeld};
  }

  MemDecision update(const MemBounds&, const MemObservation&,
                     Bytes current) override {
    return {current, Decision::kHeld};
  }
};

// --- "ewma": hysteresis on smoothed utilization ------------------------------

class EwmaCpuPolicy final : public CpuPolicy {
 public:
  explicit EwmaCpuPolicy(const Params& params) : params_(params) {}

  std::string name() const override { return "ewma"; }

  CpuDecision on_bounds(const CpuBounds& bounds, int current) override {
    return {current == 0 ? bounds.lower : current, Decision::kHeld};
  }

  CpuDecision update(const CpuBounds& bounds, const CpuObservation& obs,
                     int current) override {
    const double util = utilization_of(obs, current);
    smoothed_ = seeded_
                    ? params_.ewma_alpha * util +
                          (1.0 - params_.ewma_alpha) * smoothed_
                    : util;
    seeded_ = true;
    if (!obs.host_has_slack) {
      // Work conservation is not negotiable: a saturated host still demands
      // the back-off toward the guaranteed share.
      if (current > bounds.lower) {
        return {current - params_.cpu_step, Decision::kShrank};
      }
      return {current, Decision::kHeld};
    }
    // Hysteresis band: grow only when *smoothed* utilization crosses the up
    // threshold, release only when it falls below the down threshold. A
    // single idle (or busy) window inside the band moves nothing — the ±1
    // oscillation the raw threshold produces under bursty load.
    if (smoothed_ > params_.cpu_util_threshold) {
      return {current + params_.cpu_step, Decision::kGrew};
    }
    if (smoothed_ < params_.cpu_down_threshold && current > bounds.lower) {
      return {current - params_.cpu_step, Decision::kShrank};
    }
    return {current, Decision::kHeld};
  }

 private:
  Params params_;
  double smoothed_ = 0.0;
  bool seeded_ = false;
};

class EwmaMemPolicy final : public MemPolicy {
 public:
  explicit EwmaMemPolicy(const Params& params) : params_(params) {}

  std::string name() const override { return "ewma"; }

  MemDecision on_limits(const MemBounds& bounds, Bytes current) override {
    return {current == 0 ? bounds.soft : current, Decision::kHeld};
  }

  MemDecision update(const MemBounds& bounds, const MemObservation& obs,
                     Bytes current) override {
    if (obs.free <= obs.low_mark || obs.kswapd_active) {
      predictor_.reseed(obs);
      return {bounds.soft, Decision::kReset};
    }
    const double frac =
        static_cast<double>(obs.usage) / static_cast<double>(current);
    smoothed_ = seeded_
                    ? params_.ewma_alpha * frac +
                          (1.0 - params_.ewma_alpha) * smoothed_
                    : frac;
    seeded_ = true;
    Bytes next = current;
    Decision reason = Decision::kHeld;
    if (current < bounds.hard && smoothed_ > params_.mem_use_threshold) {
      const Bytes delta = std::max<Bytes>(
          units::page,
          static_cast<Bytes>(static_cast<double>(bounds.hard - current) *
                             params_.mem_growth_frac));
      if (!params_.mem_prediction_gate ||
          obs.free - predictor_.predicted_drop(obs, delta) > obs.high_mark) {
        next = current + delta;
        reason = Decision::kGrew;
      }
    } else if (current > bounds.soft &&
               smoothed_ < params_.mem_down_threshold) {
      // Unlike the paper (which only sheds on kswapd pressure), sustained
      // low usage hands memory back gradually — same step size, downward.
      next = current - std::max<Bytes>(
                           units::page,
                           static_cast<Bytes>(
                               static_cast<double>(current - bounds.soft) *
                               params_.mem_growth_frac));
      reason = Decision::kShrank;
    }
    predictor_.note(obs);
    return {next, reason};
  }

 private:
  Params params_;
  GrowthPredictor predictor_;
  double smoothed_ = 0.0;
  bool seeded_ = false;
};

// --- "proportional": ARC-V-style error-proportional steps --------------------

class ProportionalCpuPolicy final : public CpuPolicy {
 public:
  explicit ProportionalCpuPolicy(const Params& params) : params_(params) {}

  std::string name() const override { return "proportional"; }

  CpuDecision on_bounds(const CpuBounds& bounds, int current) override {
    return {current == 0 ? bounds.lower : current, Decision::kHeld};
  }

  CpuDecision update(const CpuBounds& bounds, const CpuObservation& obs,
                     int current) override {
    const double util = utilization_of(obs, current);
    if (obs.host_has_slack) {
      if (util > params_.cpu_util_threshold) {
        // Step size scales with how far past the threshold the window ran:
        // a container pegged at 100% on a slack host jumps several CPUs per
        // round instead of crawling up by 1.
        const double error = (util - params_.cpu_util_threshold) /
                             std::max(1e-9, 1.0 - params_.cpu_util_threshold);
        const int step = std::max(
            1, static_cast<int>(std::lround(error * params_.prop_gain)));
        return {current + step, Decision::kGrew};
      }
      return {current, Decision::kHeld};
    }
    if (current > bounds.lower) {
      // Geometric back-off: halve the distance to the guaranteed share each
      // saturated round (the error here is the overshoot above LOWER).
      const int step = std::max(1, (current - bounds.lower + 1) / 2);
      return {current - step, Decision::kShrank};
    }
    return {current, Decision::kHeld};
  }

 private:
  Params params_;
};

class ProportionalMemPolicy final : public MemPolicy {
 public:
  explicit ProportionalMemPolicy(const Params& params) : params_(params) {}

  std::string name() const override { return "proportional"; }

  MemDecision on_limits(const MemBounds& bounds, Bytes current) override {
    return {current == 0 ? bounds.soft : current, Decision::kHeld};
  }

  MemDecision update(const MemBounds& bounds, const MemObservation& obs,
                     Bytes current) override {
    if (obs.free <= obs.low_mark || obs.kswapd_active) {
      predictor_.reseed(obs);
      return {bounds.soft, Decision::kReset};
    }
    Bytes next = current;
    Decision reason = Decision::kHeld;
    const double frac =
        static_cast<double>(obs.usage) / static_cast<double>(current);
    if (current < bounds.hard && frac > params_.mem_use_threshold) {
      // The headroom fraction granted scales with the usage overshoot: a
      // container at 99% of its view gets a bigger slice than one at 91%.
      const double error = frac - params_.mem_use_threshold;
      const double grant = std::min(
          1.0, params_.mem_growth_frac * (1.0 + error * params_.prop_gain));
      const Bytes delta = std::max<Bytes>(
          units::page,
          static_cast<Bytes>(static_cast<double>(bounds.hard - current) *
                             grant));
      if (!params_.mem_prediction_gate ||
          obs.free - predictor_.predicted_drop(obs, delta) > obs.high_mark) {
        next = current + delta;
        reason = Decision::kGrew;
      }
    }
    predictor_.note(obs);
    return {next, reason};
  }

 private:
  Params params_;
  GrowthPredictor predictor_;
};

}  // namespace

const char* decision_name(Decision d) {
  switch (d) {
    case Decision::kHeld:
      return "held";
    case Decision::kGrew:
      return "grew";
    case Decision::kShrank:
      return "shrank";
    case Decision::kClamped:
      return "clamped";
    case Decision::kReset:
      return "reset";
  }
  return "unknown";
}

void DecisionCounters::count(Decision d) {
  switch (d) {
    case Decision::kHeld:
      ++held;
      break;
    case Decision::kGrew:
      ++grew;
      break;
    case Decision::kShrank:
      ++shrank;
      break;
    case Decision::kClamped:
      ++clamped;
      break;
    case Decision::kReset:
      ++reset;
      break;
  }
}

PolicyRegistry::PolicyRegistry() {
  register_cpu("paper", [](const Params& p) {
    return std::make_unique<PaperCpuPolicy>(p);
  });
  register_mem("paper", [](const Params& p) {
    return std::make_unique<PaperMemPolicy>(p);
  });
  register_cpu("static", [](const Params& p) {
    return std::make_unique<StaticCpuPolicy>(p);
  });
  register_mem("static", [](const Params& p) {
    return std::make_unique<StaticMemPolicy>(p);
  });
  register_cpu("ewma", [](const Params& p) {
    return std::make_unique<EwmaCpuPolicy>(p);
  });
  register_mem("ewma", [](const Params& p) {
    return std::make_unique<EwmaMemPolicy>(p);
  });
  register_cpu("proportional", [](const Params& p) {
    return std::make_unique<ProportionalCpuPolicy>(p);
  });
  register_mem("proportional", [](const Params& p) {
    return std::make_unique<ProportionalMemPolicy>(p);
  });
}

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

void PolicyRegistry::register_cpu(const std::string& name, CpuFactory factory) {
  ARV_ASSERT(factory != nullptr);
  cpu_[name] = std::move(factory);
}

void PolicyRegistry::register_mem(const std::string& name, MemFactory factory) {
  ARV_ASSERT(factory != nullptr);
  mem_[name] = std::move(factory);
}

bool PolicyRegistry::has_cpu(const std::string& name) const {
  return cpu_.find(name) != cpu_.end();
}

bool PolicyRegistry::has_mem(const std::string& name) const {
  return mem_.find(name) != mem_.end();
}

std::unique_ptr<CpuPolicy> PolicyRegistry::make_cpu(const std::string& name,
                                                    const Params& params) const {
  const auto it = cpu_.find(name);
  return it == cpu_.end() ? nullptr : it->second(params);
}

std::unique_ptr<MemPolicy> PolicyRegistry::make_mem(const std::string& name,
                                                    const Params& params) const {
  const auto it = mem_.find(name);
  return it == mem_.end() ? nullptr : it->second(params);
}

std::vector<std::string> PolicyRegistry::cpu_names() const {
  std::vector<std::string> names;
  names.reserve(cpu_.size());
  for (const auto& [name, factory] : cpu_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> PolicyRegistry::mem_names() const {
  std::vector<std::string> names;
  names.reserve(mem_.size());
  for (const auto& [name, factory] : mem_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace arv::core
