// Tunables of the adaptive resource view, with the paper's defaults.
#pragma once

#include "src/util/types.h"

namespace arv::core {

/// What the per-container view exports.
enum class ViewMode {
  /// The paper's system: effective capacity, continuously updated
  /// (Algorithms 1 and 2).
  kAdaptive,
  /// LXCFS / cgroup-namespace behaviour (§1): export the *static* limits
  /// set by the administrator — quota/cpuset CPUs and the hard memory
  /// limit — with no awareness of actual allocation. The paper's point is
  /// that this is not enough in a work-conserving multi-tenant host.
  kStaticLimits,
};

struct Params {
  ViewMode mode = ViewMode::kAdaptive;
  /// Algorithm 1's UTIL_THRSHD: grow effective CPU when window utilization
  /// of the current effective CPUs exceeds this (paper: 95%).
  double cpu_util_threshold = 0.95;

  /// Effective CPU changes by at most this many CPUs per update ("changes to
  /// effective CPU are limited to 1 per update to prevent abrupt
  /// fluctuations").
  int cpu_step = 1;

  /// Algorithm 2: grow effective memory when the container uses more than
  /// this fraction of it (paper: 90%).
  double mem_use_threshold = 0.90;

  /// Algorithm 2: each growth step is this fraction of the remaining
  /// headroom to the hard limit (paper: 10%).
  double mem_growth_frac = 0.10;

  /// Algorithm 2 lines 8-9: gate growth on the predicted free-memory
  /// impact staying above HIGH_MARK. Disable only for ablation — ungated
  /// growth expands straight into kswapd's territory.
  bool mem_prediction_gate = true;
};

}  // namespace arv::core
