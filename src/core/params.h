// Tunables of the adaptive resource view, with the paper's defaults.
//
// Params travel with the container (ContainerConfig::view_params): the
// policy *names* select which adaptation strategy the container runs (see
// src/core/policy.h for the registry) and the knobs parameterize whichever
// policies are selected. Both are runtime-writable through the
// /sys/arv/policy/<container>/ pseudo-files; writes that fail valid() are
// rejected with a write error, never silently accepted.
#pragma once

#include <string>

#include "src/util/types.h"

namespace arv::core {

struct Params {
  /// Registry names of the per-container adaptation policies. The paper's
  /// Algorithms 1/2 ("paper") are the default; "static" reproduces the
  /// LXCFS / cgroup-namespace behaviour of §1 (export the administrator-set
  /// limits, never react to allocation).
  std::string cpu_policy = "paper";
  std::string mem_policy = "paper";

  /// Algorithm 1's UTIL_THRSHD: grow effective CPU when window utilization
  /// of the current effective CPUs exceeds this (paper: 95%).
  double cpu_util_threshold = 0.95;

  /// Effective CPU changes by at most this many CPUs per update ("changes to
  /// effective CPU are limited to 1 per update to prevent abrupt
  /// fluctuations").
  int cpu_step = 1;

  /// Algorithm 2: grow effective memory when the container uses more than
  /// this fraction of it (paper: 90%).
  double mem_use_threshold = 0.90;

  /// Algorithm 2: each growth step is this fraction of the remaining
  /// headroom to the hard limit (paper: 10%).
  double mem_growth_frac = 0.10;

  /// Algorithm 2 lines 8-9: gate growth on the predicted free-memory
  /// impact staying above HIGH_MARK. Disable only for ablation — ungated
  /// growth expands straight into kswapd's territory.
  bool mem_prediction_gate = true;

  /// "ewma" policy: smoothing factor for the exponentially-weighted moving
  /// average of utilization (1.0 = unsmoothed, i.e. the paper's behaviour).
  double ewma_alpha = 0.30;

  /// "ewma" policy: release CPUs when *smoothed* utilization falls below
  /// this (the hysteresis band is [cpu_down_threshold, cpu_util_threshold]).
  double cpu_down_threshold = 0.50;

  /// "ewma" policy: shed effective memory toward the soft limit when the
  /// smoothed usage fraction falls below this.
  double mem_down_threshold = 0.50;

  /// "proportional" policy: gain applied to the utilization error when
  /// sizing a step (higher = more aggressive convergence).
  double prop_gain = 4.0;

  /// All knobs inside their legal ranges. SysNamespace asserts this at
  /// construction; the vfs knob files reject writes that would break it.
  bool valid() const {
    const auto unit = [](double v) { return v > 0.0 && v <= 1.0; };
    return cpu_step >= 1 && unit(cpu_util_threshold) &&
           unit(mem_use_threshold) && unit(mem_growth_frac) &&
           unit(ewma_alpha) && unit(cpu_down_threshold) &&
           unit(mem_down_threshold) && cpu_down_threshold <= cpu_util_threshold &&
           prop_gain > 0.0;
  }
};

}  // namespace arv::core
