#include "src/core/ns_monitor.h"

#include "src/util/assert.h"
#include "src/util/log.h"

namespace arv::core {

NsMonitor::NsMonitor(const sim::Engine& engine, cgroup::Tree& tree,
                     sched::FairScheduler& scheduler, mem::MemoryManager& memory)
    : engine_(engine), tree_(tree), scheduler_(scheduler), memory_(memory) {
  // The paper's kernel hook: cgroups invokes ns_monitor when a control
  // group with a sys_namespace changes.
  tree_.subscribe([this](const cgroup::Event& event) { on_cgroup_event(event); });
  // Baseline for per-round slack deltas. A monitor attached to a host that
  // already accumulated idle time must not read that history as "the host
  // had slack during my first window".
  last_slack_ = scheduler_.total_slack();
}

void NsMonitor::register_ns(const std::shared_ptr<SysNamespace>& ns) {
  ARV_ASSERT(ns != nullptr);
  const cgroup::CgroupId id = ns->cgroup();
  ARV_ASSERT_MSG(namespaces_.find(id) == namespaces_.end(),
                 "cgroup already has a sys_namespace");
  Tracked tracked;
  tracked.ns = ns;
  tracked.last_usage = scheduler_.total_usage(id);
  // First observation window opens at registration, not at t=0: without the
  // stamp a late-started container's first window spans the whole run so
  // far, diluting utilization below the Algorithm 1 grow threshold.
  tracked.last_update = engine_.now();
  auto [it, inserted] = namespaces_.emplace(id, std::move(tracked));
  ARV_ASSERT(inserted);
  ns->refresh_cpu_bounds(tree_);
  ns->refresh_mem_limits(tree_, memory_.total_ram());
  if (trace_ != nullptr) {
    register_ns_trace(it->second);
  }
}

void NsMonitor::unregister_ns(cgroup::CgroupId id) {
  const auto it = namespaces_.find(id);
  if (it == namespaces_.end()) {
    return;
  }
  if (trace_ != nullptr) {
    for (const obs::SeriesHandle handle : it->second.trace_handles) {
      trace_->retire(handle);
    }
  }
  namespaces_.erase(it);
}

void NsMonitor::set_trace(obs::TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ == nullptr) {
    return;
  }
  trace_->add_counter("core.update_rounds", "", [this] {
    return static_cast<std::int64_t>(update_rounds_);
  });
  for (auto& [id, tracked] : namespaces_) {
    register_ns_trace(tracked);
  }
}

void NsMonitor::register_ns_trace(Tracked& tracked) {
  // The probes hold their own shared_ptr: a namespace whose container dies
  // keeps answering until its series is retired in unregister_ns.
  const std::shared_ptr<SysNamespace> ns = tracked.ns;
  const std::string scope = tree_.exists(ns->cgroup())
                                ? tree_.get(ns->cgroup()).name()
                                : "cgroup" + std::to_string(ns->cgroup());
  auto& handles = tracked.trace_handles;
  handles.push_back(trace_->add_gauge(
      "e_cpu", scope, [ns] { return ns->effective_cpus(); }));
  handles.push_back(
      trace_->add_gauge("e_mem", scope, [ns] { return ns->effective_memory(); }));
  handles.push_back(trace_->add_gauge(
      "cpu_lower", scope, [ns] { return ns->cpu_bounds().lower; }));
  handles.push_back(trace_->add_gauge(
      "cpu_upper", scope, [ns] { return ns->cpu_bounds().upper; }));
  handles.push_back(trace_->add_gauge(
      "mem_soft", scope, [ns] { return ns->mem_soft_limit(); }));
  handles.push_back(trace_->add_gauge(
      "mem_hard", scope, [ns] { return ns->mem_hard_limit(); }));
  handles.push_back(trace_->add_counter("cpu_updates", scope, [ns] {
    return static_cast<std::int64_t>(ns->cpu_updates());
  }));
  handles.push_back(trace_->add_counter("mem_updates", scope, [ns] {
    return static_cast<std::int64_t>(ns->mem_updates());
  }));
  if (decision_series_) {
    // Why the effective values moved, one counter per decision reason.
    // Opt-in (HostConfig::trace_decision_series): the extra columns would
    // otherwise invalidate pre-policy golden traces.
    struct Reason {
      const char* name;
      std::uint64_t DecisionCounters::* field;
    };
    static constexpr Reason kReasons[] = {
        {"grew", &DecisionCounters::grew},
        {"shrank", &DecisionCounters::shrank},
        {"clamped", &DecisionCounters::clamped},
        {"reset", &DecisionCounters::reset},
        {"held", &DecisionCounters::held},
    };
    for (const Reason& reason : kReasons) {
      handles.push_back(trace_->add_counter(
          std::string("cpu_") + reason.name, scope, [ns, field = reason.field] {
            return static_cast<std::int64_t>(ns->cpu_decisions().*field);
          }));
      handles.push_back(trace_->add_counter(
          std::string("mem_") + reason.name, scope, [ns, field = reason.field] {
            return static_cast<std::int64_t>(ns->mem_decisions().*field);
          }));
    }
  }
}

std::vector<std::shared_ptr<SysNamespace>> NsMonitor::views() const {
  std::vector<std::shared_ptr<SysNamespace>> out;
  out.reserve(namespaces_.size());
  for (const auto& [id, tracked] : namespaces_) {
    out.push_back(tracked.ns);
  }
  return out;
}

std::shared_ptr<SysNamespace> NsMonitor::lookup(cgroup::CgroupId id) const {
  const auto it = namespaces_.find(id);
  return it == namespaces_.end() ? nullptr : it->second.ns;
}

void NsMonitor::on_cgroup_event(const cgroup::Event& event) {
  // Per-event work is O(1): refresh only the namespace whose cgroup
  // changed. Any event that can move the global share denominator marks the
  // share-fraction bounds dirty; the O(registered) ripple to every peer is
  // coalesced into one pass at the next update round.
  switch (event.kind) {
    case cgroup::EventKind::kDestroyed:
      unregister_ns(event.id);
      bounds_dirty_ = true;
      break;
    case cgroup::EventKind::kCreated:
      bounds_dirty_ = true;
      break;
    case cgroup::EventKind::kCpuChanged: {
      const auto it = namespaces_.find(event.id);
      if (it != namespaces_.end()) {
        it->second.ns->refresh_cpu_bounds(tree_);
      }
      bounds_dirty_ = true;
      break;
    }
    case cgroup::EventKind::kMemChanged: {
      const auto it = namespaces_.find(event.id);
      if (it != namespaces_.end()) {
        it->second.ns->refresh_mem_limits(tree_, memory_.total_ram());
      }
      break;
    }
  }
}

void NsMonitor::update_all(SimTime now) {
  if (bounds_dirty_) {
    // The coalesced share-fraction refresh: one pass over the registered
    // namespaces regardless of how many cgroup events landed since the last
    // round. Runs before the observations so this round's grow/shrink
    // decisions see current bounds — exactly what per-event refresh gave.
    for (auto& [id, tracked] : namespaces_) {
      tracked.ns->refresh_cpu_bounds(tree_);
    }
    bounds_dirty_ = false;
  }
  ++update_rounds_;
  const CpuTime slack_now = scheduler_.total_slack();
  const bool host_has_slack = slack_now > last_slack_;
  last_slack_ = slack_now;

  for (auto& [id, tracked] : namespaces_) {
    const CpuTime usage_now = scheduler_.total_usage(id);
    const SimDuration window = now - tracked.last_update;
    if (window > 0) {
      CpuObservation cpu_obs;
      cpu_obs.usage = usage_now - tracked.last_usage;
      cpu_obs.window = window;
      cpu_obs.host_has_slack = host_has_slack;
      tracked.ns->update_cpu(cpu_obs);
    }
    tracked.last_usage = usage_now;
    tracked.last_update = now;

    MemObservation mem_obs;
    mem_obs.free = memory_.free_memory();
    mem_obs.usage = memory_.usage(id);
    mem_obs.kswapd_active = memory_.kswapd_active();
    mem_obs.low_mark = memory_.watermarks().low;
    mem_obs.high_mark = memory_.watermarks().high;
    tracked.ns->update_mem(mem_obs);
  }
}

void NsMonitor::tick(SimTime now, SimDuration /*dt*/) {
  // The engine dispatches us once per tick_period() — the CFS scheduling
  // period, re-read after every firing (§3.2: "its update interval is set
  // to the scheduling period in Linux, during which all tasks are
  // guaranteed to run at least once").
  if (stalled_) {
    ++stalled_rounds_;
    return;
  }
  update_all(now);
}

}  // namespace arv::core
