// Ns_Monitor — the system-wide kernel daemon of §3.1/§3.2.
//
// Two responsibilities, exactly as in the paper:
//   1. React to cgroup-setting changes (container creation/termination,
//      adjusted limits) by refreshing the affected sys_namespace's static
//      bounds. This is wired through cgroup::Tree's notification hook.
//      Only the directly-changed cgroup's namespace is refreshed inline —
//      O(1) per event. The share-fraction ripple to every *other* namespace
//      (Σ cpu.shares is a global denominator) is coalesced under a dirty
//      flag and applied in one pass at the next update round, so a ramp of
//      N container creations costs O(N) total instead of O(N²).
//   2. Drive the periodic effective-CPU/effective-memory updates. The interval
//      is the CFS scheduling period (24 ms for <= 8 runnable tasks, else
//      3 ms * nr_running), re-read after every firing, "so any changes to
//      the CPU allocation of containers are immediately reflected". The same
//      interval is used for effective memory. The engine drives this cadence
//      through tick_period(): the monitor is dispatched once per scheduling
//      period rather than polling every tick.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "src/cgroup/cgroup.h"
#include "src/core/sys_namespace.h"
#include "src/mem/memory_manager.h"
#include "src/obs/trace_recorder.h"
#include "src/sched/fair_scheduler.h"
#include "src/sim/engine.h"

namespace arv::core {

class NsMonitor : public sim::TickComponent {
 public:
  /// `engine` supplies the current simulated time for registration stamps;
  /// the monitor does not schedule through it.
  NsMonitor(const sim::Engine& engine, cgroup::Tree& tree,
            sched::FairScheduler& scheduler, mem::MemoryManager& memory);

  /// Attach a container's sys_namespace to the monitor. Bounds and limits
  /// are refreshed immediately; periodic updates begin at the next firing,
  /// with the first CPU observation window starting *now* (a container
  /// registered at t=10s must not be judged on a 10-second window).
  void register_ns(const std::shared_ptr<SysNamespace>& ns);
  void unregister_ns(cgroup::CgroupId id);

  std::shared_ptr<SysNamespace> lookup(cgroup::CgroupId id) const;
  std::size_t registered_count() const { return namespaces_.size(); }

  /// All registered namespaces in cgroup-id order. Cluster-level consumers
  /// (placement, rebalancing) read each container's effective view from here.
  std::vector<std::shared_ptr<SysNamespace>> views() const;

  /// Force an immediate update round (used by tests and the overhead bench).
  /// Applies any coalesced bound refresh first.
  void update_all(SimTime now);

  /// True when a cgroup event has invalidated the share-fraction bounds and
  /// the coalesced refresh pass has not run yet.
  bool bounds_refresh_pending() const { return bounds_dirty_; }

  /// Override the update interval with a fixed period instead of tracking
  /// the scheduler's period (§3.2). 0 restores the paper's behaviour.
  /// Exists for the update-period ablation study.
  void set_fixed_update_period(SimDuration period) { fixed_period_ = period; }

  std::uint64_t update_rounds() const { return update_rounds_; }

  /// Fault injection: while stalled, scheduled update rounds are skipped and
  /// every sys_namespace keeps serving its last-computed view (stale reads —
  /// the failure mode a wedged daemon produces). Observation windows are NOT
  /// reset, so the first round after the stall spans the whole gap and
  /// catches up in one pass. Explicit update_all() calls still work.
  void set_stalled(bool stalled) { stalled_ = stalled; }
  bool stalled() const { return stalled_; }
  /// Update rounds that were due but skipped because of a stall.
  std::uint64_t stalled_rounds() const { return stalled_rounds_; }

  /// Attach the observability layer. Registers the monitor's host-wide
  /// update-round counter plus, for every current and future sys_namespace,
  /// the Algorithm 1/2 series (e_cpu, e_mem, bounds, update counters) under
  /// the owning container's name. Pass nullptr to stop registering.
  void set_trace(obs::TraceRecorder* trace);

  /// Also register the per-container decision-reason counters
  /// (cpu_grew/cpu_shrank/... and the mem_ equivalents) with the trace.
  /// Off by default so pre-policy golden traces keep their exact column
  /// set; call *before* set_trace — the flag applies at series registration.
  void set_decision_series(bool enabled) { decision_series_ = enabled; }

  // --- sim::TickComponent ---------------------------------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "core.ns_monitor"; }
  /// §3.2: one update round per CFS scheduling period.
  SimDuration tick_period() const override {
    return fixed_period_ > 0 ? fixed_period_ : scheduler_.scheduling_period();
  }

 private:
  struct Tracked {
    std::shared_ptr<SysNamespace> ns;
    CpuTime last_usage = 0;
    SimTime last_update = 0;
    std::vector<obs::SeriesHandle> trace_handles;
  };

  void on_cgroup_event(const cgroup::Event& event);
  void register_ns_trace(Tracked& tracked);

  const sim::Engine& engine_;
  cgroup::Tree& tree_;
  sched::FairScheduler& scheduler_;
  mem::MemoryManager& memory_;
  std::map<cgroup::CgroupId, Tracked> namespaces_;
  SimDuration fixed_period_ = 0;
  CpuTime last_slack_ = 0;
  bool bounds_dirty_ = false;
  bool decision_series_ = false;
  bool stalled_ = false;
  std::uint64_t update_rounds_ = 0;
  std::uint64_t stalled_rounds_ = 0;
  obs::TraceRecorder* trace_ = nullptr;  ///< not owned; may be null
};

}  // namespace arv::core
