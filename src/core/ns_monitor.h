// Ns_Monitor — the system-wide kernel daemon of §3.1/§3.2.
//
// Two responsibilities, exactly as in the paper:
//   1. React to cgroup-setting changes (container creation/termination,
//      adjusted limits) by refreshing the affected sys_namespace's static
//      bounds. This is wired through cgroup::Tree's notification hook.
//   2. Drive the periodic effective-CPU/effective-memory updates. The interval
//      is the CFS scheduling period (24 ms for <= 8 runnable tasks, else
//      3 ms * nr_running), re-read after every firing, "so any changes to
//      the CPU allocation of containers are immediately reflected". The same
//      interval is used for effective memory.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "src/cgroup/cgroup.h"
#include "src/core/sys_namespace.h"
#include "src/mem/memory_manager.h"
#include "src/obs/trace_recorder.h"
#include "src/sched/fair_scheduler.h"
#include "src/sim/engine.h"

namespace arv::core {

class NsMonitor : public sim::TickComponent {
 public:
  NsMonitor(cgroup::Tree& tree, sched::FairScheduler& scheduler,
            mem::MemoryManager& memory);

  /// Attach a container's sys_namespace to the monitor. Bounds and limits
  /// are refreshed immediately; periodic updates begin at the next firing.
  void register_ns(const std::shared_ptr<SysNamespace>& ns);
  void unregister_ns(cgroup::CgroupId id);

  std::shared_ptr<SysNamespace> lookup(cgroup::CgroupId id) const;
  std::size_t registered_count() const { return namespaces_.size(); }

  /// Force an immediate update round (used by tests and the overhead bench).
  void update_all(SimTime now);

  /// Override the update interval with a fixed period instead of tracking
  /// the scheduler's period (§3.2). 0 restores the paper's behaviour.
  /// Exists for the update-period ablation study.
  void set_fixed_update_period(SimDuration period) { fixed_period_ = period; }

  std::uint64_t update_rounds() const { return update_rounds_; }

  /// Attach the observability layer. Registers the monitor's host-wide
  /// update-round counter plus, for every current and future sys_namespace,
  /// the Algorithm 1/2 series (e_cpu, e_mem, bounds, update counters) under
  /// the owning container's name. Pass nullptr to stop registering.
  void set_trace(obs::TraceRecorder* trace);

  // --- sim::TickComponent ---------------------------------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "core.ns_monitor"; }

 private:
  struct Tracked {
    std::shared_ptr<SysNamespace> ns;
    CpuTime last_usage = 0;
    SimTime last_update = 0;
    std::vector<obs::SeriesHandle> trace_handles;
  };

  void on_cgroup_event(const cgroup::Event& event);
  void register_ns_trace(Tracked& tracked);

  cgroup::Tree& tree_;
  sched::FairScheduler& scheduler_;
  mem::MemoryManager& memory_;
  std::map<cgroup::CgroupId, Tracked> namespaces_;
  SimTime next_update_ = 0;
  SimDuration fixed_period_ = 0;
  CpuTime last_slack_ = 0;
  std::uint64_t update_rounds_ = 0;
  obs::TraceRecorder* trace_ = nullptr;  ///< not owned; may be null
};

}  // namespace arv::core
