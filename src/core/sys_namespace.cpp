#include "src/core/sys_namespace.h"

#include <algorithm>

#include "src/util/assert.h"
#include "src/util/log.h"

namespace arv::core {

SysNamespace::SysNamespace(cgroup::CgroupId cgroup, Params params)
    : proc::Namespace(Kind::kSys), cgroup_(cgroup), params_(params) {
  ARV_ASSERT(params.cpu_util_threshold > 0.0 && params.cpu_util_threshold <= 1.0);
  ARV_ASSERT(params.mem_use_threshold > 0.0 && params.mem_use_threshold <= 1.0);
  ARV_ASSERT(params.mem_growth_frac > 0.0 && params.mem_growth_frac <= 1.0);
  ARV_ASSERT(params.cpu_step >= 1);
}

void SysNamespace::refresh_cpu_bounds(const cgroup::Tree& tree) {
  if (!tree.exists(cgroup_)) {
    return;
  }
  const int online = tree.online_cpus();
  const int mask_cpus = tree.effective_cpuset(cgroup_).count();
  const int quota_cpus = tree.effective_quota_cpus(cgroup_);  // l_i / t

  // Algorithm 1, line 4: the share fraction guarantees ceil(w_i/Σw · |P|)
  // CPUs if affinity and quota permit.
  const std::int64_t shares = tree.get(cgroup_).cpu().shares;
  const std::int64_t total_shares = std::max<std::int64_t>(1, tree.total_shares());
  const int share_cpus = static_cast<int>(
      ceil_div(shares * online, total_shares));

  bounds_.lower = std::max(1, std::min({quota_cpus, mask_cpus, share_cpus}));
  // Algorithm 1, line 5.
  bounds_.upper = std::max(1, std::min(quota_cpus, mask_cpus));
  ARV_ASSERT(bounds_.lower <= bounds_.upper);

  if (params_.mode == ViewMode::kStaticLimits) {
    // LXCFS-style: export the administrator-set limit, nothing else.
    e_cpu_ = bounds_.upper;
    return;
  }
  // Line 6 applies at creation; later setting changes clamp the current
  // value into the new range without losing adaptive state.
  if (e_cpu_ == 0) {
    e_cpu_ = bounds_.lower;
  }
  e_cpu_ = std::clamp(e_cpu_, bounds_.lower, bounds_.upper);
}

void SysNamespace::refresh_mem_limits(const cgroup::Tree& tree, Bytes total_ram) {
  if (!tree.exists(cgroup_)) {
    return;
  }
  const auto& mem = tree.get(cgroup_).mem();
  hard_limit_ = std::min(mem.limit_in_bytes, total_ram);
  // A container without a soft limit effectively has soft == hard (there is
  // nothing for kswapd's soft-limit pass to reclaim down to).
  soft_limit_ = std::min(mem.soft_limit_in_bytes, hard_limit_);
  if (params_.mode == ViewMode::kStaticLimits) {
    e_mem_ = hard_limit_;
    return;
  }
  // Algorithm 2, line 3: initialize to the soft limit; on limit changes,
  // re-clamp into the valid range.
  if (e_mem_ == 0) {
    e_mem_ = soft_limit_;
  }
  e_mem_ = std::clamp(e_mem_, soft_limit_, hard_limit_);
}

void SysNamespace::update_cpu(const CpuObservation& obs) {
  ARV_ASSERT(obs.window > 0);
  ++cpu_updates_;
  if (params_.mode == ViewMode::kStaticLimits) {
    return;  // static views never react to allocation
  }
  if (obs.host_has_slack) {
    // Lines 9-12: grow while the container saturates its effective CPUs and
    // the host has idle capacity it could soak up (work conservation).
    const double capacity =
        static_cast<double>(e_cpu_) * static_cast<double>(obs.window);
    const double utilization = static_cast<double>(obs.usage) / capacity;
    if (utilization > params_.cpu_util_threshold && e_cpu_ < bounds_.upper) {
      e_cpu_ = std::min(bounds_.upper, e_cpu_ + params_.cpu_step);
    }
  } else {
    // Lines 14-15: the host is saturated; back off toward the guaranteed
    // share so containers converge on an interference-free concurrency.
    if (e_cpu_ > bounds_.lower) {
      e_cpu_ = std::max(bounds_.lower, e_cpu_ - params_.cpu_step);
    }
  }
}

void SysNamespace::update_mem(const MemObservation& obs) {
  ++mem_updates_;
  if (params_.mode == ViewMode::kStaticLimits) {
    return;  // static views never react to allocation
  }
  if (hard_limit_ <= 0) {
    return;  // limits not initialized yet
  }
  if (obs.free <= obs.low_mark || obs.kswapd_active) {
    // Line 13-14: memory shortage — fall back to the reclaim target so the
    // runtime sheds the memory kswapd is about to steal anyway.
    e_mem_ = soft_limit_;
    prev_free_ = obs.free;
    prev_usage_ = obs.usage;
    return;
  }
  if (e_mem_ < hard_limit_ &&
      static_cast<double>(obs.usage) >
          params_.mem_use_threshold * static_cast<double>(e_mem_)) {
    // Line 7: step toward the hard limit by 10% of the remaining headroom.
    const Bytes delta = std::max<Bytes>(
        units::page,
        static_cast<Bytes>(static_cast<double>(hard_limit_ - e_mem_) *
                           params_.mem_growth_frac));

    // Line 8: predict the system-free-memory impact of granting `delta`,
    // scaled by how much free memory moved per byte of container growth in
    // the previous window. Guard degenerate windows (container shrank or
    // free memory grew): then growth is presumed safe at 1:1.
    double ratio = 1.0;
    if (prev_free_.has_value() && prev_usage_.has_value() &&
        obs.usage > *prev_usage_ && *prev_free_ > obs.free) {
      ratio = static_cast<double>(*prev_free_ - obs.free) /
              static_cast<double>(obs.usage - *prev_usage_);
    }
    const Bytes predicted_drop =
        static_cast<Bytes>(ratio * static_cast<double>(delta));

    // Line 9: only grow if the predicted free memory stays above HIGH_MARK,
    // i.e. growth will not wake kswapd.
    if (!params_.mem_prediction_gate || obs.free - predicted_drop > obs.high_mark) {
      e_mem_ = std::min(hard_limit_, e_mem_ + delta);
    }
  }
  // Snapshot only when usage actually moved: heap growth is bursty relative
  // to the update period, and a zero-delta window would collapse the
  // prediction ratio to its default, hiding the free-memory drain that
  // co-growing containers cause (the very thing line 8 exists to catch).
  if (!prev_usage_.has_value() || obs.usage != *prev_usage_) {
    prev_free_ = obs.free;
    prev_usage_ = obs.usage;
  }
}

}  // namespace arv::core
