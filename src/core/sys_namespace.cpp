#include "src/core/sys_namespace.h"

#include <algorithm>

#include "src/util/assert.h"
#include "src/util/log.h"

namespace arv::core {

SysNamespace::SysNamespace(cgroup::CgroupId cgroup, Params params)
    : proc::Namespace(Kind::kSys), cgroup_(cgroup), params_(std::move(params)) {
  ARV_ASSERT(params_.valid());
  cpu_policy_ = PolicyRegistry::instance().make_cpu(params_.cpu_policy, params_);
  mem_policy_ = PolicyRegistry::instance().make_mem(params_.mem_policy, params_);
  ARV_ASSERT(cpu_policy_ != nullptr);
  ARV_ASSERT(mem_policy_ != nullptr);
}

SysNamespace::~SysNamespace() = default;

bool SysNamespace::set_cpu_policy(const std::string& name) {
  auto next = PolicyRegistry::instance().make_cpu(name, params_);
  if (next == nullptr) {
    return false;
  }
  params_.cpu_policy = name;
  cpu_policy_ = std::move(next);
  // Re-derive immediately: a switch to "static" must pin to the upper bound
  // now, not at the next cgroup event.
  apply_cpu_bounds();
  return true;
}

bool SysNamespace::set_mem_policy(const std::string& name) {
  auto next = PolicyRegistry::instance().make_mem(name, params_);
  if (next == nullptr) {
    return false;
  }
  params_.mem_policy = name;
  mem_policy_ = std::move(next);
  if (hard_limit_ > 0) {
    apply_mem_limits();
  }
  return true;
}

bool SysNamespace::set_params(const Params& next) {
  if (!next.valid()) {
    return false;
  }
  auto cpu = PolicyRegistry::instance().make_cpu(next.cpu_policy, next);
  auto mem = PolicyRegistry::instance().make_mem(next.mem_policy, next);
  if (cpu == nullptr || mem == nullptr) {
    return false;
  }
  params_ = next;
  cpu_policy_ = std::move(cpu);
  mem_policy_ = std::move(mem);
  apply_cpu_bounds();
  if (hard_limit_ > 0) {
    apply_mem_limits();
  }
  return true;
}

void SysNamespace::apply_cpu_bounds() {
  const CpuDecision d = cpu_policy_->on_bounds(bounds_, e_cpu_);
  e_cpu_ = std::clamp(d.e_cpu, bounds_.lower, bounds_.upper);
}

void SysNamespace::apply_mem_limits() {
  const MemDecision d = mem_policy_->on_limits(mem_bounds(), e_mem_);
  e_mem_ = std::clamp(d.e_mem, soft_limit_, hard_limit_);
}

void SysNamespace::refresh_cpu_bounds(const cgroup::Tree& tree) {
  if (!tree.exists(cgroup_)) {
    return;
  }
  const int online = tree.online_cpus();
  const int mask_cpus = tree.effective_cpuset(cgroup_).count();
  const int quota_cpus = tree.effective_quota_cpus(cgroup_);  // l_i / t

  // Algorithm 1, line 4: the share fraction guarantees ceil(w_i/Σw · |P|)
  // CPUs if affinity and quota permit.
  const std::int64_t shares = tree.get(cgroup_).cpu().shares;
  const std::int64_t total_shares = std::max<std::int64_t>(1, tree.total_shares());
  const int share_cpus = static_cast<int>(
      ceil_div(shares * online, total_shares));

  bounds_.lower = std::max(1, std::min({quota_cpus, mask_cpus, share_cpus}));
  // Algorithm 1, line 5.
  bounds_.upper = std::max(1, std::min(quota_cpus, mask_cpus));
  ARV_ASSERT(bounds_.lower <= bounds_.upper);

  apply_cpu_bounds();
}

void SysNamespace::refresh_mem_limits(const cgroup::Tree& tree, Bytes total_ram) {
  if (!tree.exists(cgroup_)) {
    return;
  }
  const auto& mem = tree.get(cgroup_).mem();
  hard_limit_ = std::min(mem.limit_in_bytes, total_ram);
  // A container without a soft limit effectively has soft == hard (there is
  // nothing for kswapd's soft-limit pass to reclaim down to).
  soft_limit_ = std::min(mem.soft_limit_in_bytes, hard_limit_);
  apply_mem_limits();
}

void SysNamespace::update_cpu(const CpuObservation& obs) {
  ARV_ASSERT(obs.window > 0);
  ++cpu_updates_;
  const int before = e_cpu_;
  const CpuDecision d = cpu_policy_->update(bounds_, obs, before);
  const int clamped = std::clamp(d.e_cpu, bounds_.lower, bounds_.upper);
  Decision reason = d.reason;
  if (clamped != d.e_cpu) {
    // The static bounds, not the policy, determined the final value.
    reason = Decision::kClamped;
  } else if (clamped == before &&
             (reason == Decision::kGrew || reason == Decision::kShrank)) {
    reason = Decision::kHeld;  // the intended movement went nowhere
  }
  e_cpu_ = clamped;
  cpu_decisions_.count(reason);
}

void SysNamespace::update_mem(const MemObservation& obs) {
  ++mem_updates_;
  if (hard_limit_ <= 0) {
    mem_decisions_.count(Decision::kHeld);
    return;  // limits not initialized yet
  }
  const Bytes before = e_mem_;
  const MemDecision d = mem_policy_->update(mem_bounds(), obs, before);
  const Bytes clamped = std::clamp(d.e_mem, soft_limit_, hard_limit_);
  Decision reason = d.reason;
  if (clamped != d.e_mem) {
    reason = Decision::kClamped;
  } else if (clamped == before &&
             (reason == Decision::kGrew || reason == Decision::kShrank)) {
    reason = Decision::kHeld;
  }
  e_mem_ = clamped;
  mem_decisions_.count(reason);
}

}  // namespace arv::core
