#include "src/mem/memory_manager.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/obs/trace_recorder.h"
#include "src/util/assert.h"
#include "src/util/log.h"

namespace arv::mem {

MemoryManager::MemoryManager(cgroup::Tree& tree, const Config& config)
    : tree_(tree), config_(config) {
  ARV_ASSERT(config.total_ram > 0);
  ARV_ASSERT(config.min_frac < config.low_frac && config.low_frac < config.high_frac);
  marks_.min = page_align_up(static_cast<Bytes>(
      static_cast<double>(config.total_ram) * config.min_frac));
  marks_.low = page_align_up(static_cast<Bytes>(
      static_cast<double>(config.total_ram) * config.low_frac));
  marks_.high = page_align_up(static_cast<Bytes>(
      static_cast<double>(config.total_ram) * config.high_frac));
}

CgroupMem& MemoryManager::state(cgroup::CgroupId id) { return cgroups_[id]; }

Bytes MemoryManager::hard_limit(cgroup::CgroupId id) const {
  return tree_.exists(id) ? tree_.get(id).mem().limit_in_bytes : kUnlimited;
}

Bytes MemoryManager::soft_limit(cgroup::CgroupId id) const {
  return tree_.exists(id) ? tree_.get(id).mem().soft_limit_in_bytes : kUnlimited;
}

Bytes MemoryManager::free_memory() const {
  Bytes used = host_reserved_;
  for (const auto& [id, st] : cgroups_) {
    used += st.resident;
  }
  return std::max<Bytes>(0, config_.total_ram - used);
}

Bytes MemoryManager::usage(cgroup::CgroupId id) const {
  const auto it = cgroups_.find(id);
  return it == cgroups_.end() ? 0 : it->second.resident;
}

Bytes MemoryManager::swapped(cgroup::CgroupId id) const {
  const auto it = cgroups_.find(id);
  return it == cgroups_.end() ? 0 : it->second.swapped;
}

bool MemoryManager::oom_killed(cgroup::CgroupId id) const {
  const auto it = cgroups_.find(id);
  return it != cgroups_.end() && it->second.oom_killed;
}

void MemoryManager::reserve_host_memory(Bytes bytes) {
  ARV_ASSERT(bytes >= 0);
  host_reserved_ = page_align_up(bytes);
  ARV_ASSERT_MSG(host_reserved_ <= config_.total_ram,
                 "host reservation exceeds physical memory");
}

SimDuration MemoryManager::stall_for(Bytes bytes) const {
  if (bytes <= 0 || config_.swap_bandwidth_per_sec <= 0) {
    return 0;
  }
  return bytes * units::sec / config_.swap_bandwidth_per_sec;
}

Bytes MemoryManager::swap_out(cgroup::CgroupId id, Bytes bytes) {
  CgroupMem& st = state(id);
  const Bytes room = config_.swap_size - swap_used_;
  const Bytes moved = std::min({bytes, st.resident, room});
  if (moved <= 0) {
    return 0;
  }
  st.resident -= moved;
  st.swapped += moved;
  swap_used_ += moved;
  ++st.swapout_events;
  return moved;
}

ChargeResult MemoryManager::charge(cgroup::CgroupId id, Bytes raw_bytes) {
  ARV_ASSERT(raw_bytes >= 0);
  Bytes bytes = page_align_up(raw_bytes);
  CgroupMem& st = state(id);
  if (st.oom_killed) {
    return ChargeResult::kOomKilled;
  }
  ChargeResult result = ChargeResult::kOk;

  // Hard-limit enforcement: "the container either is killed or starts
  // swapping" (§2.1). Residency is capped at the hard limit; the excess goes
  // to swap.
  const Bytes hard = hard_limit(id);
  st.resident += bytes;
  if (st.resident > hard) {
    const Bytes excess = st.resident - hard;
    const Bytes moved = swap_out(id, excess);
    if (moved < excess) {
      // Swap is off or full: the kernel OOM-kills the offender.
      st.resident -= bytes;  // roll back
      st.oom_killed = true;
      ++oom_kills_;
      ARV_LOG(kInfo, "mem", "cgroup %d OOM-killed at hard limit", id);
      return ChargeResult::kOomKilled;
    }
    result = ChargeResult::kSwapped;
  }

  // Global pressure: waking kswapd happens in tick(); but a charge that
  // would exceed physical memory cannot wait for background reclaim.
  if (free_memory() < marks_.min) {
    ++direct_reclaims_;
    const Bytes deficit = marks_.min - free_memory();
    const Bytes reclaimed = direct_reclaim(deficit);
    if (reclaimed < deficit && free_memory() <= 0) {
      oom_kill_largest();
    }
    result = ChargeResult::kSwapped;
  }
  return st.oom_killed ? ChargeResult::kOomKilled : result;
}

void MemoryManager::uncharge(cgroup::CgroupId id, Bytes raw_bytes) {
  ARV_ASSERT(raw_bytes >= 0);
  Bytes bytes = page_align_up(raw_bytes);
  CgroupMem& st = state(id);
  ARV_ASSERT_MSG(bytes <= st.resident + st.swapped,
                 "uncharging more than was charged");
  // Free swapped pages first: the kernel drops swap entries without I/O.
  const Bytes from_swap = std::min(bytes, st.swapped);
  st.swapped -= from_swap;
  swap_used_ -= from_swap;
  st.resident -= bytes - from_swap;
}

SimDuration MemoryManager::touch(cgroup::CgroupId id, Bytes bytes) {
  ARV_ASSERT(bytes >= 0);
  CgroupMem& st = state(id);
  const Bytes total = st.resident + st.swapped;
  if (total <= 0 || st.swapped <= 0 || bytes <= 0) {
    return 0;
  }
  // Uniform touch over the committed set: the swapped fraction faults.
  const double swap_frac =
      static_cast<double>(st.swapped) / static_cast<double>(total);
  Bytes faulted = page_align_up(static_cast<Bytes>(
      static_cast<double>(std::min(bytes, total)) * swap_frac));
  faulted = std::min(faulted, st.swapped);
  if (faulted <= 0) {
    return 0;
  }
  ++st.swapin_events;

  const Bytes hard = hard_limit(id);
  if (st.resident + faulted > hard) {
    // Thrashing: every page faulted in evicts another page of this cgroup.
    // Pay for the swap-in and the forced swap-out; residency is unchanged.
    return 2 * stall_for(faulted);
  }
  st.resident += faulted;
  st.swapped -= faulted;
  swap_used_ -= faulted;
  return stall_for(faulted);
}

Bytes MemoryManager::kswapd_step(Bytes target) {
  // Collect cgroups above their soft limit, with their excess.
  struct Victim {
    cgroup::CgroupId id;
    Bytes excess;
  };
  std::vector<Victim> victims;
  Bytes excess_total = 0;
  for (auto& [id, st] : cgroups_) {
    const Bytes soft = soft_limit(id);
    if (st.resident > soft) {
      const Bytes excess = st.resident - soft;
      victims.push_back({id, excess});
      excess_total += excess;
    }
  }
  if (victims.empty() || target <= 0) {
    return 0;
  }
  Bytes reclaimed = 0;
  for (const Victim& victim : victims) {
    // Proportional to excess, matching the kernel's soft-limit reclaim bias.
    const Bytes share = std::max<Bytes>(
        units::page,
        target * victim.excess / std::max<Bytes>(1, excess_total));
    reclaimed += swap_out(victim.id, std::min(share, victim.excess));
    if (reclaimed >= target) {
      break;
    }
  }
  return reclaimed;
}

Bytes MemoryManager::direct_reclaim(Bytes target) {
  // First try the polite path.
  Bytes reclaimed = kswapd_step(target);
  if (reclaimed >= target) {
    return reclaimed;
  }
  // Then indiscriminately steal from every cgroup, largest first.
  std::vector<cgroup::CgroupId> ids;
  for (const auto& [id, st] : cgroups_) {
    if (st.resident > 0) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end(), [this](cgroup::CgroupId a, cgroup::CgroupId b) {
    if (usage(a) != usage(b)) {
      return usage(a) > usage(b);
    }
    return a < b;
  });
  for (const cgroup::CgroupId id : ids) {
    if (reclaimed >= target) {
      break;
    }
    reclaimed += swap_out(id, target - reclaimed);
  }
  return reclaimed;
}

void MemoryManager::oom_kill_largest() {
  cgroup::CgroupId victim = -1;
  Bytes largest = -1;
  for (const auto& [id, st] : cgroups_) {
    // Strict > over ascending map order pins the tie-break: on equal
    // committed size the LOWEST cgroup id dies. The pin matters for the
    // determinism contract — chaos runs replay byte-identically only if
    // the OOM victim is a pure function of the accounting state.
    if (!st.oom_killed && st.resident + st.swapped > largest) {
      largest = st.resident + st.swapped;
      victim = id;
    }
  }
  if (victim < 0) {
    return;
  }
  CgroupMem& st = state(victim);
  swap_used_ -= st.swapped;
  st.resident = 0;
  st.swapped = 0;
  st.oom_killed = true;
  ++oom_kills_;
  ARV_LOG(kWarn, "mem", "global OOM: killed cgroup %d", victim);
}

void MemoryManager::register_trace(obs::TraceRecorder& trace) const {
  trace.add_gauge("mem.free", "", [this] { return free_memory(); });
  trace.add_gauge("mem.kswapd_active", "",
                  [this] { return kswapd_active_ ? 1 : 0; });
  trace.add_counter("mem.kswapd_wakeups", "", [this] {
    return static_cast<std::int64_t>(kswapd_wakeups_);
  });
  trace.add_counter("mem.direct_reclaims", "", [this] {
    return static_cast<std::int64_t>(direct_reclaims_);
  });
  trace.add_counter("mem.oom_kills", "",
                    [this] { return static_cast<std::int64_t>(oom_kills_); });
  trace.add_gauge("mem.swap_used", "", [this] { return swap_used_; });
}

void MemoryManager::tick(SimTime /*now*/, SimDuration /*dt*/) {
  const Bytes free = free_memory();
  if (!kswapd_active_ && free < marks_.low) {
    kswapd_active_ = true;
    ++kswapd_wakeups_;
  }
  if (kswapd_active_) {
    const Bytes deficit = marks_.high - free_memory();
    if (deficit <= 0) {
      kswapd_active_ = false;
    } else {
      // Scan every tick while below the high watermark, exactly like the
      // kernel's kswapd: even when one pass finds nothing above the soft
      // limits, pressure persists and pages faulted back in are re-stolen.
      kswapd_step(std::min(deficit, config_.kswapd_batch));
      kswapd_active_ = free_memory() < marks_.high;
    }
  }
}

}  // namespace arv::mem
