// MemoryManager — the simulated kernel's physical-memory and reclaim model.
//
// Reproduces the machinery Algorithm 2 of the paper observes and reacts to:
//
//   * per-cgroup resident/swapped accounting against hard and soft limits;
//   * the three kswapd watermarks (min/low/high): background reclaim starts
//     when free memory drops below `low` and steals pages from cgroups above
//     their soft limit until free memory recovers to `high`; below `min`,
//     direct reclaim indiscriminately steals from every cgroup;
//   * a swap device with a bandwidth cost model: touching swapped pages
//     stalls the toucher, and touching swapped pages while pinned at the
//     hard limit degenerates into thrashing (swap-in forces swap-out).
//
// All byte amounts are page-aligned internally.
#pragma once

#include <cstdint>
#include <map>

#include "src/cgroup/cgroup.h"
#include "src/sim/engine.h"
#include "src/util/types.h"

namespace arv::obs {
class TraceRecorder;
}

namespace arv::mem {

struct Watermarks {
  Bytes min = 0;
  Bytes low = 0;
  Bytes high = 0;
};

struct Config {
  Bytes total_ram = 128 * units::GiB;
  /// Swap capacity; 0 disables swap (hard-limit breaches then OOM-kill).
  Bytes swap_size = 64 * units::GiB;
  /// Cost of moving pages between RAM and swap, as stall time per byte.
  /// The paper's testbed swaps to a SATA HDD, and page faults are mostly
  /// random 4 KiB I/O — effective throughput sits far below the drive's
  /// sequential rate.
  Bytes swap_bandwidth_per_sec = 30 * units::MiB;
  /// How much kswapd reclaims per tick while active.
  Bytes kswapd_batch = 64 * units::MiB;
  /// Watermarks as fractions of total RAM (kernel derives them similarly
  /// from min_free_kbytes and zone size).
  double min_frac = 0.01;
  double low_frac = 0.03;
  double high_frac = 0.06;
};

/// Per-cgroup memory state.
struct CgroupMem {
  Bytes resident = 0;
  Bytes swapped = 0;
  bool oom_killed = false;
  std::uint64_t swapin_events = 0;
  std::uint64_t swapout_events = 0;
};

enum class ChargeResult { kOk, kSwapped, kOomKilled };

class MemoryManager : public sim::TickComponent {
 public:
  MemoryManager(cgroup::Tree& tree, const Config& config);

  // --- charging API used by runtimes --------------------------------------
  /// Commit `bytes` of new memory to cgroup `id`. A charge that would exceed
  /// the hard limit swaps out the excess (or OOM-kills if swap is off/full).
  /// A charge that would exhaust physical memory pushes the system below the
  /// watermarks and wakes kswapd; if even direct reclaim cannot find room,
  /// the largest over-soft-limit cgroup is OOM-killed.
  ChargeResult charge(cgroup::CgroupId id, Bytes bytes);

  /// Release committed memory (from resident first, then swap).
  void uncharge(cgroup::CgroupId id, Bytes bytes);

  /// Model the cgroup touching `bytes` of its committed set (uniformly at
  /// random over resident+swapped). Returns the stall time spent faulting
  /// swapped pages back in. Touching while pinned at the hard limit swaps an
  /// equal amount back out (thrashing: double cost, no progress).
  SimDuration touch(cgroup::CgroupId id, Bytes bytes);

  // --- observables ----------------------------------------------------------
  Bytes total_ram() const { return config_.total_ram; }
  Bytes free_memory() const;
  Bytes usage(cgroup::CgroupId id) const;    ///< resident bytes
  Bytes swapped(cgroup::CgroupId id) const;  ///< swapped-out bytes
  Bytes committed(cgroup::CgroupId id) const { return usage(id) + swapped(id); }
  bool oom_killed(cgroup::CgroupId id) const;
  const Watermarks& watermarks() const { return marks_; }

  /// True while kswapd is actively reclaiming (between crossing `low` and
  /// recovering to `high`) — Algorithm 2's reset condition.
  bool kswapd_active() const { return kswapd_active_; }
  std::uint64_t kswapd_wakeups() const { return kswapd_wakeups_; }
  std::uint64_t direct_reclaims() const { return direct_reclaims_; }
  std::uint64_t oom_kills() const { return oom_kills_; }

  /// Pin some RAM outside any cgroup (kernel/other-host usage), shrinking
  /// what containers can use. Used by experiments with background pressure.
  void reserve_host_memory(Bytes bytes);

  /// Register host-wide memory series (free memory, kswapd/reclaim/OOM
  /// activity, swap) with the observability layer. Observation-only.
  void register_trace(obs::TraceRecorder& trace) const;

  // --- sim::TickComponent ---------------------------------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "mem.mm"; }

 private:
  CgroupMem& state(cgroup::CgroupId id);
  Bytes hard_limit(cgroup::CgroupId id) const;
  Bytes soft_limit(cgroup::CgroupId id) const;

  /// Move up to `bytes` of `id`'s resident pages to swap; returns moved.
  Bytes swap_out(cgroup::CgroupId id, Bytes bytes);

  /// Background reclaim step: steal from over-soft-limit cgroups,
  /// proportionally to their excess. Returns bytes reclaimed.
  Bytes kswapd_step(Bytes target);

  /// Direct reclaim: steal from all cgroups proportionally to residency.
  Bytes direct_reclaim(Bytes target);

  void oom_kill_largest();
  SimDuration stall_for(Bytes bytes) const;

  cgroup::Tree& tree_;
  Config config_;
  Watermarks marks_;
  std::map<cgroup::CgroupId, CgroupMem> cgroups_;
  Bytes host_reserved_ = 0;
  Bytes swap_used_ = 0;
  bool kswapd_active_ = false;
  std::uint64_t kswapd_wakeups_ = 0;
  std::uint64_t direct_reclaims_ = 0;
  std::uint64_t oom_kills_ = 0;
};

}  // namespace arv::mem
