// Parameter tables for the Java benchmark suites the paper evaluates
// (§5.1): DaCapo, SPECjvm2008, HiBench, and the §5.3 allocation
// micro-benchmark.
//
// The simulator executes cost models, not bytecode, so each benchmark is a
// JavaWorkload parameter set. Parameters are chosen to match the suites'
// published characteristics *relative to each other* — live-set size,
// allocation intensity, mutator parallelism, GC scalability — because those
// ratios, not absolute times, produce the paper's effects (which
// configuration wins, where OOM/collapse happens).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/jvm/config.h"

namespace arv::workloads {

/// DaCapo benchmarks used throughout §2.2 and §5: h2, jython, lusearch,
/// sunflow, xalan.
std::vector<jvm::JavaWorkload> dacapo_suite();

/// SPECjvm2008 benchmarks of Figure 6(b): compiler.compiler, derby,
/// mpegaudio, xml.validation, xml.transform.
std::vector<jvm::JavaWorkload> specjvm_suite();

/// HiBench big-data workloads of Figure 9: nweight, als, kmeans, pagerank.
/// Much larger live sets and heaps; GC scales to more threads.
std::vector<jvm::JavaWorkload> hibench_suite();

/// Lookup by name across all suites; nullopt if unknown.
std::optional<jvm::JavaWorkload> find_java_workload(const std::string& name);

/// §5.3 micro-benchmark: 40,000 iterations, +1 MiB / -512 KiB per iteration
/// (working set grows to ~20 GiB while touching ~40 GiB).
jvm::JavaWorkload alloc_microbench();

}  // namespace arv::workloads
