// The Figure 1 study: which of the top-100 DockerHub application images are
// potentially affected by the container semantic gap.
//
// The paper's authors manually audited the source of the top 100 images for
// auto-configuration that probes kernel-reported resources (sysconf, sysfs,
// /proc). The original audit list is not published, so this module embeds a
// reconstructed dataset with the paper's reported aggregates: 100 images
// over 7 languages, 62 affected in total, all Java and PHP images affected,
// a majority of C++ images and half of C images affected.
#pragma once

#include <array>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace arv::workloads {

enum class Language { kC, kCpp, kJava, kGo, kPython, kPhp, kRuby };

std::string_view language_name(Language lang);

struct DockerImage {
  std::string_view name;
  Language language;
  /// Probes kernel-reported resource availability for auto-configuration.
  bool affected;
  /// What the image probes (empty for unaffected images).
  std::string_view probe;
};

/// The embedded 100-image dataset.
const std::vector<DockerImage>& dockerhub_top100();

struct LanguageCount {
  int affected = 0;
  int unaffected = 0;
  int total() const { return affected + unaffected; }
};

/// Aggregate per language — the bars of Figure 1.
std::map<Language, LanguageCount> count_by_language();

/// Total affected images (the paper reports 62/100).
int total_affected();

}  // namespace arv::workloads
