// NAS Parallel Benchmarks (NPB) as OpenMP workload models — Figure 10.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/omp/omp_runtime.h"

namespace arv::workloads {

/// The nine NPB kernels/pseudo-apps the paper runs: is, ep, cg, mg, ft, ua,
/// bt, sp, lu. Region structure and serial fractions reflect the published
/// profiles (ep is embarrassingly parallel; is is short and sync-heavy; the
/// pseudo-applications bt/sp/lu are long with many moderate regions).
std::vector<omp::OmpWorkload> npb_suite();

std::optional<omp::OmpWorkload> find_npb(const std::string& name);

}  // namespace arv::workloads
