#include "src/workloads/hogs.h"

#include <algorithm>

#include "src/util/assert.h"

namespace arv::workloads {

CpuHog::CpuHog(container::Host& host, container::Container& target, int threads,
               SimDuration cpu_budget)
    : host_(host), container_(target), threads_(threads), remaining_(cpu_budget) {
  ARV_ASSERT(threads >= 1);
  ARV_ASSERT(cpu_budget > 0);
  host_.scheduler().attach(container_.cgroup(), this);
  attached_ = true;
}

CpuHog::~CpuHog() {
  if (attached_) {
    host_.scheduler().detach(container_.cgroup(), this);
  }
}

int CpuHog::runnable_threads() const { return finished() ? 0 : threads_; }

void CpuHog::consume(SimTime now, SimDuration /*dt*/, CpuTime grant) {
  if (finished()) {
    return;
  }
  remaining_ -= grant;
  if (finished() && finish_time_ < 0) {
    finish_time_ = now;
  }
}

MemHog::MemHog(container::Host& host, container::Container& target, Bytes footprint,
               Bytes charge_per_sec)
    : host_(host),
      container_(target),
      footprint_(footprint),
      charge_per_sec_(charge_per_sec) {
  ARV_ASSERT(footprint > 0 && charge_per_sec > 0);
  host_.scheduler().attach(container_.cgroup(), this);
  attached_ = true;
}

MemHog::~MemHog() {
  if (attached_) {
    host_.scheduler().detach(container_.cgroup(), this);
    // An OOM kill may have reaped the cgroup's pages behind our back;
    // release only what is still on the manager's books.
    const Bytes release =
        std::min(charged_, host_.memory().committed(container_.cgroup()));
    if (release > 0) {
      host_.memory().uncharge(container_.cgroup(), release);
    }
  }
}

void MemHog::consume(SimTime now, SimDuration /*dt*/, CpuTime grant) {
  if (now < stalled_until_ || grant <= 0) {
    return;
  }
  auto& memory = host_.memory();
  if (charged_ < footprint_) {
    const Bytes step =
        std::min(footprint_ - charged_, grant * charge_per_sec_ / units::sec);
    if (memory.charge(container_.cgroup(), step) != mem::ChargeResult::kOomKilled) {
      charged_ += page_align_up(step);
    }
  }
  // Keep the working set warm so reclaimed pages fault back in.
  const Bytes touched = std::min(charged_, grant * charge_per_sec_ / units::sec);
  const SimDuration stall = memory.touch(container_.cgroup(), touched);
  if (stall > 0) {
    stalled_until_ = now + stall;
  }
}

}  // namespace arv::workloads
