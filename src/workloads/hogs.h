// Background pressure generators: a sysbench-style CPU hog (Figure 8's nine
// co-runners) and a memory hog (Figure 2(b)'s "memory-intensive workload in
// the background").
#pragma once

#include <string>

#include "src/container/container.h"
#include "src/sched/fair_scheduler.h"
#include "src/util/types.h"

namespace arv::workloads {

/// Burns `threads` CPUs' worth of work for a total CPU budget, then goes
/// idle — the sysbench cpu analogue. Figure 8 staggers several of these so
/// host CPU availability varies over the run.
class CpuHog : public sched::Schedulable {
 public:
  CpuHog(container::Host& host, container::Container& target, int threads,
         SimDuration cpu_budget);
  ~CpuHog() override;
  CpuHog(const CpuHog&) = delete;
  CpuHog& operator=(const CpuHog&) = delete;

  int runnable_threads() const override;
  void consume(SimTime now, SimDuration dt, CpuTime grant) override;

  bool finished() const { return remaining_ <= 0; }
  SimTime finish_time() const { return finish_time_; }

 private:
  container::Host& host_;
  container::Container& container_;
  int threads_;
  CpuTime remaining_;
  SimTime finish_time_ = -1;
  bool attached_ = false;
};

/// Gradually charges memory up to `footprint` and keeps touching it,
/// creating sustained global memory pressure.
class MemHog : public sched::Schedulable {
 public:
  MemHog(container::Host& host, container::Container& target, Bytes footprint,
         Bytes charge_per_sec);
  ~MemHog() override;
  MemHog(const MemHog&) = delete;
  MemHog& operator=(const MemHog&) = delete;

  int runnable_threads() const override { return 1; }
  void consume(SimTime now, SimDuration dt, CpuTime grant) override;

  Bytes charged() const { return charged_; }

 private:
  container::Host& host_;
  container::Container& container_;
  Bytes footprint_;
  Bytes charge_per_sec_;
  Bytes charged_ = 0;
  SimTime stalled_until_ = 0;
  bool attached_ = false;
};

}  // namespace arv::workloads
