#include "src/workloads/npb.h"

namespace arv::workloads {
namespace {

using omp::OmpWorkload;
using namespace arv::units;

OmpWorkload make(const char* name, int regions, SimDuration region_work,
                 double serial_frac, double alpha) {
  OmpWorkload w;
  w.name = name;
  w.regions = regions;
  w.region_work = region_work;
  w.serial_frac = serial_frac;
  w.alpha = alpha;
  return w;
}

}  // namespace

std::vector<OmpWorkload> npb_suite() {
  return {
      make("is", 30, 80 * msec, 0.020, 0.040),
      make("ep", 20, 400 * msec, 0.002, 0.004),
      make("cg", 60, 150 * msec, 0.030, 0.030),
      make("mg", 40, 200 * msec, 0.020, 0.025),
      make("ft", 30, 300 * msec, 0.015, 0.020),
      make("ua", 80, 120 * msec, 0.040, 0.035),
      make("bt", 100, 200 * msec, 0.010, 0.015),
      make("sp", 100, 180 * msec, 0.015, 0.020),
      make("lu", 100, 160 * msec, 0.020, 0.025),
  };
}

std::optional<OmpWorkload> find_npb(const std::string& name) {
  for (const auto& w : npb_suite()) {
    if (w.name == name) {
      return w;
    }
  }
  return std::nullopt;
}

}  // namespace arv::workloads
