#include "src/workloads/java_suites.h"

namespace arv::workloads {
namespace {

using jvm::JavaWorkload;
using namespace arv::units;

JavaWorkload make(const char* name, SimDuration work, int mutators,
                  Bytes alloc_rate, Bytes live, double survival, double alpha) {
  JavaWorkload w;
  w.name = name;
  w.total_work = work;
  w.mutator_threads = mutators;
  w.alloc_per_cpu_sec = alloc_rate;
  w.live_set = live;
  w.survival_ratio = survival;
  w.gc_alpha = alpha;
  return w;
}

}  // namespace

std::vector<JavaWorkload> dacapo_suite() {
  // Relative characteristics: h2 is live-set heavy (in-memory database,
  // ~0.4 GiB working set — the Figure 2(b)/11 OOM candidate); lusearch and
  // xalan are allocation-intensive with small live sets (their young
  // generations balloon under ergonomics, the Figure 11 swap-collapse
  // candidates); jython is GC-unfriendly (poor scan scalability); sunflow
  // is a parallel renderer whose GC scales well (the Figure 8(b) subject).
  return {
      // h2's live set sits between JDK 9's 256 MiB auto heap (=> OOM) and
      // the 500 MiB soft-tuned heap of Figure 2(b) (=> completes).
      make("h2", 12 * sec, 8, 150 * MiB, 300 * MiB, 0.25, 0.04),
      make("jython", 10 * sec, 4, 280 * MiB, 130 * MiB, 0.08, 0.06),
      make("lusearch", 6 * sec, 16, 1400 * MiB, 70 * MiB, 0.05, 0.05),
      make("sunflow", 9 * sec, 16, 380 * MiB, 110 * MiB, 0.07, 0.03),
      make("xalan", 8 * sec, 16, 1200 * MiB, 90 * MiB, 0.06, 0.04),
  };
}

std::vector<JavaWorkload> specjvm_suite() {
  // SPECjvm2008 is throughput-oriented; mpegaudio is compute-bound with
  // almost no allocation (its bars barely move in Figure 6(b)).
  return {
      make("compiler.compiler", 10 * sec, 16, 700 * MiB, 250 * MiB, 0.10, 0.05),
      make("derby", 11 * sec, 8, 500 * MiB, 300 * MiB, 0.12, 0.05),
      make("mpegaudio", 9 * sec, 16, 80 * MiB, 40 * MiB, 0.08, 0.05),
      make("xml.validation", 10 * sec, 16, 900 * MiB, 180 * MiB, 0.08, 0.04),
      make("xml.transform", 10 * sec, 16, 800 * MiB, 200 * MiB, 0.09, 0.04),
  };
}

std::vector<JavaWorkload> hibench_suite() {
  // Big-data workloads: multi-GiB live sets, so GC work per collection is
  // large enough to use many workers (lower alpha => better scalability),
  // which is why the adaptive gains persist at scale (§5.2 "Big data
  // applications").
  auto nweight = make("nweight", 40 * sec, 16, 1200 * MiB, 4 * GiB, 0.20, 0.015);
  auto als = make("als", 35 * sec, 16, 1024 * MiB, 3 * GiB, 0.20, 0.020);
  auto kmeans = make("kmeans", 30 * sec, 16, 800 * MiB, 2 * GiB, 0.18, 0.020);
  auto pagerank = make("pagerank", 45 * sec, 16, 1400 * MiB, 5 * GiB, 0.22, 0.015);
  for (auto* w : {&nweight, &als, &kmeans, &pagerank}) {
    w->gc_cost_per_mib = 450;  // large-heap scans stream better per byte
    w->touch_rate = 0.5;       // only part of a big working set is hot
  }
  return {nweight, als, kmeans, pagerank};
}

std::optional<JavaWorkload> find_java_workload(const std::string& name) {
  for (const auto& suite : {dacapo_suite(), specjvm_suite(), hibench_suite()}) {
    for (const auto& w : suite) {
      if (w.name == name) {
        return w;
      }
    }
  }
  if (name == "alloc-microbench") {
    return alloc_microbench();
  }
  return std::nullopt;
}

jvm::JavaWorkload alloc_microbench() {
  // §5.3: 40,000 iterations; +1 MiB allocated, -512 KiB freed per iteration.
  // Half of every allocated byte stays live => ~20 GiB working set after
  // ~40 GiB of allocation.
  JavaWorkload w;
  w.name = "alloc-microbench";
  w.total_work = 150 * sec;
  w.mutator_threads = 4;
  w.alloc_per_cpu_sec = 273 * MiB;  // ~40 GiB over the run
  w.live_set = 256 * MiB;
  w.live_fraction_of_alloc = 0.5;
  w.survival_ratio = 0.55;  // live fraction survives the nursery
  w.gc_cost_per_mib = 300;
  w.gc_alpha = 0.02;
  w.touch_rate = 0.25;  // the hot end of an ever-growing set
  return w;
}

}  // namespace arv::workloads
