#include "src/workloads/dockerhub.h"

#include "src/util/assert.h"

namespace arv::workloads {

std::string_view language_name(Language lang) {
  switch (lang) {
    case Language::kC:
      return "c";
    case Language::kCpp:
      return "c++";
    case Language::kJava:
      return "java";
    case Language::kGo:
      return "go";
    case Language::kPython:
      return "python";
    case Language::kPhp:
      return "php";
    case Language::kRuby:
      return "ruby";
  }
  return "?";
}

namespace {

constexpr std::string_view kCpuProbe = "sysconf(_SC_NPROCESSORS_ONLN)";
constexpr std::string_view kMemProbe = "sysconf(_SC_PHYS_PAGES)";
constexpr std::string_view kBothProbe = "sysconf CPU+memory";
constexpr std::string_view kJvmProbe = "JVM ergonomics (GC threads, heap = phys/4)";
constexpr std::string_view kV8Probe = "V8 heap sizing from physical memory";

std::vector<DockerImage> build_dataset() {
  std::vector<DockerImage> images;
  auto add = [&images](std::string_view name, Language lang, bool affected,
                       std::string_view probe = {}) {
    images.push_back(DockerImage{name, lang, affected, probe});
  };

  // --- Java: 25 images, all affected (JVM ergonomics) -----------------------
  for (const auto name :
       {"tomcat", "openjdk", "elasticsearch", "cassandra", "solr", "jenkins",
        "kafka", "zookeeper", "neo4j", "hadoop", "spark", "storm", "flink",
        "activemq", "jetty", "groovy", "maven", "gradle", "nifi", "logstash",
        "tika", "hbase", "hive", "wildfly", "payara"}) {
    add(name, Language::kJava, true, kJvmProbe);
  }

  // --- PHP: 9 images, all affected (opcache/worker autosizing) --------------
  for (const auto name : {"php", "wordpress", "drupal", "joomla", "nextcloud",
                          "phpmyadmin", "matomo", "mediawiki", "composer"}) {
    add(name, Language::kPhp, true, kBothProbe);
  }

  // --- C++: 16 images, 12 affected -------------------------------------------
  for (const auto name : {"mongo", "mysql", "mariadb", "rethinkdb",
                          "couchbase", "foundationdb", "arangodb", "ceph"}) {
    add(name, Language::kCpp, true, kBothProbe);
  }
  for (const auto name : {"rocksdb", "clickhouse", "scylla"}) {
    add(name, Language::kCpp, true, kMemProbe);  // cache sized from RAM
  }
  add("chrome-headless", Language::kCpp, true, kV8Probe);
  for (const auto name : {"gcc", "protobuf", "grpc", "swipl"}) {
    add(name, Language::kCpp, false);
  }

  // --- C: 14 images, 7 affected ----------------------------------------------
  for (const auto name :
       {"httpd", "nginx", "postgres", "redis", "memcached", "haproxy", "varnish"}) {
    add(name, Language::kC, true, kCpuProbe);
  }
  for (const auto name :
       {"busybox", "alpine", "debian", "ubuntu", "centos", "bash", "curl"}) {
    add(name, Language::kC, false);
  }

  // --- Go: 12 images, 4 affected (GOMAXPROCS = runtime.NumCPU) ---------------
  for (const auto name : {"influxdb", "telegraf", "consul", "vault"}) {
    add(name, Language::kGo, true, kCpuProbe);
  }
  for (const auto name : {"traefik", "registry", "etcd", "prometheus",
                          "grafana-agent", "minio", "caddy", "syncthing"}) {
    add(name, Language::kGo, false);
  }

  // --- Python: 13 images, 3 affected (worker-count autotuning) ---------------
  for (const auto name : {"celery", "gunicorn-app", "airflow"}) {
    add(name, Language::kPython, true, kCpuProbe);
  }
  for (const auto name : {"python", "django-app", "flask-app", "jupyter",
                          "ansible", "superset", "sentry", "saltstack",
                          "home-assistant", "odoo"}) {
    add(name, Language::kPython, false);
  }

  // --- Ruby: 11 images, 2 affected (puma worker autosizing) -------------------
  for (const auto name : {"discourse", "gitlab"}) {
    add(name, Language::kRuby, true, kBothProbe);
  }
  for (const auto name : {"ruby", "rails-app", "redmine", "fluentd", "jekyll",
                          "sinatra-app", "vagrant", "chef", "puppet"}) {
    add(name, Language::kRuby, false);
  }

  ARV_ASSERT_MSG(images.size() == 100, "dataset must contain exactly 100 images");
  return images;
}

}  // namespace

const std::vector<DockerImage>& dockerhub_top100() {
  static const std::vector<DockerImage> dataset = build_dataset();
  return dataset;
}

std::map<Language, LanguageCount> count_by_language() {
  std::map<Language, LanguageCount> counts;
  for (const auto& image : dockerhub_top100()) {
    auto& entry = counts[image.language];
    if (image.affected) {
      ++entry.affected;
    } else {
      ++entry.unaffected;
    }
  }
  return counts;
}

int total_affected() {
  int affected = 0;
  for (const auto& image : dockerhub_top100()) {
    affected += image.affected ? 1 : 0;
  }
  return affected;
}

}  // namespace arv::workloads
