#include "src/sim/engine.h"

#include <algorithm>

#include "src/util/assert.h"

namespace arv::sim {

Engine::Engine(SimDuration tick_length) : tick_length_(tick_length) {
  ARV_ASSERT_MSG(tick_length > 0, "tick length must be positive");
}

void Engine::add_component(TickComponent* component) {
  ARV_ASSERT(component != nullptr);
  ARV_ASSERT_MSG(registry_.find(component) == registry_.end(),
                 "component registered twice");
  const std::uint64_t seq = next_component_seq_++;
  registry_.emplace(component, seq);
  // First dispatch on the tick after registration: mid-step now_ is already
  // the current tick, between steps it is the last completed one — either
  // way now_ + tick_length_ is the next tick processed.
  dispatch_.push(Dispatch{now_ + tick_length_, seq, now_, component});
}

void Engine::remove_component(TickComponent* component) {
  // Queue entries are invalidated lazily via the registry; see Dispatch.
  registry_.erase(component);
}

void Engine::schedule_at(SimTime when, std::function<void()> fn) {
  ARV_ASSERT_MSG(when >= now_, "cannot schedule events in the past");
  events_.push(Event{when, next_seq_++, std::move(fn)});
}

void Engine::schedule_after(SimDuration delay, std::function<void()> fn) {
  ARV_ASSERT(delay >= 0);
  schedule_at(now_ + delay, std::move(fn));
}

void Engine::fire_due_events() {
  while (!events_.empty() && events_.top().when <= now_) {
    // Copy out before pop: the callback may schedule new events, which
    // mutates the queue.
    auto fn = events_.top().fn;
    events_.pop();
    fn();
  }
}

void Engine::step() {
  now_ += tick_length_;
  ++ticks_;
  fire_due_events();
  while (!dispatch_.empty() && dispatch_.top().when <= now_) {
    const Dispatch due = dispatch_.top();
    dispatch_.pop();
    const auto it = registry_.find(due.component);
    if (it == registry_.end() || it->second != due.seq) {
      continue;  // removed (or removed and re-registered) — stale entry
    }
    due.component->tick(now_, now_ - due.last);
    // tick() may have removed the component (even itself); only a
    // still-live registration is re-armed. Entries added mid-tick by
    // add_component are due next tick, so the drain terminates.
    const auto live = registry_.find(due.component);
    if (live != registry_.end() && live->second == due.seq) {
      const SimDuration period = std::max(due.component->tick_period(),
                                          tick_length_);
      dispatch_.push(Dispatch{now_ + period, due.seq, now_, due.component});
    }
  }
}

void Engine::advance_clock(SimTime to) {
  ARV_ASSERT_MSG(to >= now_, "cannot rewind the clock");
  if (to == now_) {
    return;
  }
  const SimDuration gap = to - now_;
  ARV_ASSERT_MSG(gap % tick_length_ == 0, "clock jumps are whole ticks");
  ARV_ASSERT_MSG(events_.empty() || events_.top().when > to,
                 "cannot jump past a due one-shot event");
  ticks_ += static_cast<std::uint64_t>(gap / tick_length_);
  now_ = to;
  // Re-time dispatch entries that fell due inside the gap. The queue is a
  // handful of entries (a quiescent host has only its base components), so
  // drain-and-rebuild is cheap and keeps the lazy-deletion invariants: seq
  // values are untouched, dead entries stay dead.
  std::vector<Dispatch> entries;
  entries.reserve(dispatch_.size());
  while (!dispatch_.empty()) {
    entries.push_back(dispatch_.top());
    dispatch_.pop();
  }
  for (Dispatch& entry : entries) {
    if (entry.when <= now_) {
      entry.when = now_ + tick_length_;
      entry.last = now_;
    }
    dispatch_.push(entry);
  }
}

void Engine::run_for(SimDuration duration) {
  ARV_ASSERT(duration >= 0);
  const SimTime deadline = now_ + duration;
  while (now_ < deadline) {
    step();
  }
}

bool Engine::run_until(const std::function<bool()>& done, SimTime deadline) {
  while (now_ < deadline) {
    step();
    if (done()) {
      return true;
    }
  }
  return done();
}

}  // namespace arv::sim
