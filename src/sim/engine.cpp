#include "src/sim/engine.h"

#include <algorithm>

#include "src/util/assert.h"

namespace arv::sim {

Engine::Engine(SimDuration tick_length) : tick_length_(tick_length) {
  ARV_ASSERT_MSG(tick_length > 0, "tick length must be positive");
}

void Engine::add_component(TickComponent* component) {
  ARV_ASSERT(component != nullptr);
  ARV_ASSERT_MSG(std::find(components_.begin(), components_.end(), component) ==
                     components_.end(),
                 "component registered twice");
  components_.push_back(component);
}

void Engine::remove_component(TickComponent* component) {
  components_.erase(std::remove(components_.begin(), components_.end(), component),
                    components_.end());
}

void Engine::schedule_at(SimTime when, std::function<void()> fn) {
  ARV_ASSERT_MSG(when >= now_, "cannot schedule events in the past");
  events_.push(Event{when, next_seq_++, std::move(fn)});
}

void Engine::schedule_after(SimDuration delay, std::function<void()> fn) {
  ARV_ASSERT(delay >= 0);
  schedule_at(now_ + delay, std::move(fn));
}

void Engine::fire_due_events() {
  while (!events_.empty() && events_.top().when <= now_) {
    // Copy out before pop: the callback may schedule new events, which
    // mutates the queue.
    auto fn = events_.top().fn;
    events_.pop();
    fn();
  }
}

void Engine::step() {
  now_ += tick_length_;
  ++ticks_;
  fire_due_events();
  // Snapshot so that components added/removed mid-tick take effect next tick.
  const std::vector<TickComponent*> snapshot = components_;
  for (TickComponent* component : snapshot) {
    component->tick(now_, tick_length_);
  }
}

void Engine::run_for(SimDuration duration) {
  ARV_ASSERT(duration >= 0);
  const SimTime deadline = now_ + duration;
  while (now_ < deadline) {
    step();
  }
}

bool Engine::run_until(const std::function<bool()>& done, SimTime deadline) {
  while (now_ < deadline) {
    step();
    if (done()) {
      return true;
    }
  }
  return done();
}

}  // namespace arv::sim
