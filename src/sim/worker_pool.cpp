#include "src/sim/worker_pool.h"

#include <algorithm>

#include "src/util/assert.h"

namespace arv::sim {

WorkerPool::WorkerPool(int threads) : threads_(threads) {
  ARV_ASSERT_MSG(threads >= 1, "a worker pool needs at least one shard");
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int shard = 1; shard < threads; ++shard) {
    workers_.emplace_back([this, shard] { worker_main(shard); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

int WorkerPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hw), 1, 16);
}

void WorkerPool::run(const std::function<void(int)>& fn) {
  if (threads_ == 1) {
    fn(0);  // serial engine: no pool machinery in the path at all
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ARV_ASSERT_MSG(job_ == nullptr, "WorkerPool::run is not reentrant");
    job_ = &fn;
    outstanding_ = threads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  fn(0);  // the calling thread takes shard 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
  job_ = nullptr;
}

void WorkerPool::worker_main(int shard) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      job = job_;
    }
    (*job)(shard);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --outstanding_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace arv::sim
