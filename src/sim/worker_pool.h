// WorkerPool — a fixed pool of worker threads for the cluster's parallel
// host phase.
//
// run(fn) executes fn(shard) once for every shard in [0, threads) and
// returns only when all shards finished — a fork/join barrier. Shard 0 runs
// on the calling thread, so a single-threaded pool spawns no threads at all
// and run() degenerates to a plain call: the serial engine and the
// threads=1 parallel engine are literally the same code path, which is what
// lets the determinism tests treat "serial" as just another thread count.
//
// The pool is deterministic by construction: it imposes no ordering of its
// own (shards touch disjoint data — the cluster shards hosts statically by
// index), and it is reused across ticks so thread creation cost is paid
// once per run, not per tick.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace arv::sim {

class WorkerPool {
 public:
  /// `threads` >= 1. One pool thread per shard beyond shard 0.
  explicit WorkerPool(int threads);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  int threads() const { return threads_; }

  /// Run fn(shard) for every shard in [0, threads); blocks until all
  /// shards completed. Not reentrant: one run() at a time.
  void run(const std::function<void(int)>& fn);

  /// A sensible default width for this machine: hardware concurrency
  /// clamped to [1, 16] (the host phase is memory-bound well before 16).
  static int default_threads();

 private:
  void worker_main(int shard);

  const int threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;  ///< valid while a run is live
  std::uint64_t generation_ = 0;  ///< bumped per run(); workers wait on it
  int outstanding_ = 0;           ///< pool shards still running this generation
  bool shutdown_ = false;
};

}  // namespace arv::sim
