// Deterministic tick-based simulation engine.
//
// The engine owns simulated time. Each step advances the clock by a fixed
// tick (default 1 ms, matching the granularity at which the CFS model
// redistributes CPU), fires one-shot events that became due, then calls every
// registered component's tick() in registration order. Registration order is
// therefore part of the model: the host registers scheduler -> memory ->
// monitors -> runtimes so that resource grants precede consumption.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "src/util/types.h"

namespace arv::sim {

/// Anything advanced once per tick. Components are non-owning raw pointers:
/// the host object that registers them outlives the engine run.
class TickComponent {
 public:
  virtual ~TickComponent() = default;

  /// Advance simulated state from `now - dt` to `now`.
  virtual void tick(SimTime now, SimDuration dt) = 0;

  /// Diagnostic name used in traces.
  virtual std::string name() const = 0;
};

class Engine {
 public:
  explicit Engine(SimDuration tick_length = 1 * units::msec);

  SimTime now() const { return now_; }
  SimDuration tick_length() const { return tick_length_; }

  /// Register a component; called every tick in registration order.
  void add_component(TickComponent* component);
  void remove_component(TickComponent* component);

  /// Schedule a one-shot callback at absolute simulated time `when` (>= now).
  /// Events due within a tick fire at that tick's start, in (time, FIFO)
  /// order. An event may schedule further events.
  void schedule_at(SimTime when, std::function<void()> fn);
  void schedule_after(SimDuration delay, std::function<void()> fn);

  /// Advance exactly one tick.
  void step();

  /// Run for a simulated duration (rounded up to whole ticks).
  void run_for(SimDuration duration);

  /// Run until `done()` returns true or `deadline` passes; returns true if
  /// the predicate fired. The predicate is evaluated after every tick.
  bool run_until(const std::function<bool()>& done, SimTime deadline);

  std::uint64_t ticks_executed() const { return ticks_; }
  std::size_t pending_events() const { return events_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-break for FIFO ordering at equal times
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void fire_due_events();

  SimTime now_ = 0;
  SimDuration tick_length_;
  std::uint64_t ticks_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<TickComponent*> components_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
};

}  // namespace arv::sim
