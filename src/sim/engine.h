// Deterministic tick-based simulation engine.
//
// The engine owns simulated time. Each step advances the clock by a fixed
// tick (default 1 ms, matching the granularity at which the CFS model
// redistributes CPU), fires one-shot events that became due, then dispatches
// the registered components that are due this tick.
//
// Components declare a tick period (tick_period()): 0 means "every tick"
// (the scheduler and the memory manager genuinely move state every tick),
// a positive period means the component only needs attention that often
// (the Ns_Monitor fires once per scheduling period, the trace recorder once
// per sample interval). Dispatch comes from a single due-time priority
// queue ordered by (due time, registration order), so components that are
// due on the same tick still run in registration order — the host registers
// scheduler -> memory -> monitors -> recorder so that resource grants
// precede consumption and samples see the tick's final state. The period is
// re-queried after every dispatch, so a periodic component may stretch and
// shrink its own cadence (the Ns_Monitor tracks the CFS scheduling period).
//
// With hundreds of mostly-idle components this makes a tick cost
// O(due components) instead of O(all components).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "src/util/types.h"

namespace arv::sim {

/// Anything advanced by the engine. Components are non-owning raw pointers:
/// the host object that registers them outlives the engine run.
class TickComponent {
 public:
  virtual ~TickComponent() = default;

  /// Advance simulated state from `now - dt` to `now`. `dt` is the time
  /// since this component's previous dispatch (== the engine tick length
  /// for period-0 components).
  virtual void tick(SimTime now, SimDuration dt) = 0;

  /// Diagnostic name used in traces.
  virtual std::string name() const = 0;

  /// How often the component needs tick(). 0 (the default) means every
  /// engine tick. Re-queried by the engine after each dispatch, so the
  /// period may vary over the run. A component's first dispatch is always
  /// the tick after registration, regardless of period.
  virtual SimDuration tick_period() const { return 0; }
};

class Engine {
 public:
  explicit Engine(SimDuration tick_length = 1 * units::msec);

  SimTime now() const { return now_; }
  SimDuration tick_length() const { return tick_length_; }

  /// Register a component; first dispatched on the tick after registration,
  /// then per its tick_period(). Components due on the same tick run in
  /// registration order.
  void add_component(TickComponent* component);

  /// Deregister a component. Safe to call from inside any tick() — even the
  /// component's own — and from event callbacks: a component removed
  /// mid-tick is not dispatched again, including later in the same tick.
  void remove_component(TickComponent* component);

  /// Schedule a one-shot callback at absolute simulated time `when` (>= now).
  /// Events due within a tick fire at that tick's start, in (time, FIFO)
  /// order. An event may schedule further events.
  void schedule_at(SimTime when, std::function<void()> fn);
  void schedule_after(SimDuration delay, std::function<void()> fn);

  /// Advance exactly one tick.
  void step();

  /// Jump the clock to `to` (a whole number of ticks ahead) without
  /// dispatching anything — the skipped-host fast path of the cluster's
  /// parallel engine. Only legal when every skipped tick would have been a
  /// no-op: the caller (Host::advance_idle) guarantees quiescence, and this
  /// method asserts no one-shot event was due in the gap. Component dispatch
  /// entries that fell due inside the gap are re-timed as if they had fired
  /// as no-ops: next dispatch one tick out, `last` = `to` so the next real
  /// dt does not double-count the gap (the caller applies the gap's
  /// cumulative effect, e.g. idle slack accrual, itself).
  void advance_clock(SimTime to);

  /// Run for a simulated duration (rounded up to whole ticks).
  void run_for(SimDuration duration);

  /// Run until `done()` returns true or `deadline` passes; returns true if
  /// the predicate fired. The predicate is evaluated after every tick.
  bool run_until(const std::function<bool()>& done, SimTime deadline);

  std::uint64_t ticks_executed() const { return ticks_; }
  std::size_t pending_events() const { return events_.size(); }
  std::size_t component_count() const { return registry_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-break for FIFO ordering at equal times
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  /// A component's next due dispatch. Removal is lazy: an entry whose
  /// (component, seq) no longer matches the registry is dead and skipped,
  /// so remove_component never touches the queue (and a stale entry can
  /// never dispatch a re-registered component twice).
  struct Dispatch {
    SimTime when;
    std::uint64_t seq;  // registration order; ties at equal due times
    SimTime last;       // previous dispatch time (for dt)
    TickComponent* component;
  };
  struct DispatchLater {
    bool operator()(const Dispatch& a, const Dispatch& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void fire_due_events();

  SimTime now_ = 0;
  SimDuration tick_length_;
  std::uint64_t ticks_ = 0;
  std::uint64_t next_seq_ = 0;
  /// Live components -> registration seq (the liveness check for lazy
  /// queue deletion). Never iterated, so pointer keying stays deterministic.
  std::map<TickComponent*, std::uint64_t> registry_;
  std::uint64_t next_component_seq_ = 0;
  std::priority_queue<Dispatch, std::vector<Dispatch>, DispatchLater> dispatch_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
};

}  // namespace arv::sim
