#include "src/cluster/rebalancer.h"

#include <algorithm>

#include "src/container/container.h"
#include "src/sched/fair_scheduler.h"
#include "src/util/assert.h"
#include "src/util/log.h"

namespace arv::cluster {

Rebalancer::Rebalancer(Cluster& cluster, RebalanceConfig config)
    : cluster_(cluster), config_(config) {
  ARV_ASSERT(config_.period > 0);
  ARV_ASSERT(config_.saturated_rounds >= 1);
  track_.resize(static_cast<std::size_t>(cluster_.host_count()));
  for (int i = 0; i < cluster_.host_count(); ++i) {
    track_[static_cast<std::size_t>(i)].last_total_slack =
        cluster_.host_slack_total(i);
  }
}

void Rebalancer::tick(SimTime now, SimDuration dt) {
  ARV_ASSERT_MSG(static_cast<int>(track_.size()) == cluster_.host_count(),
                 "hosts added after the rebalancer was constructed");
  // 1. Judge the round: did each host show any real idle time since the
  //    last one? total_slack is cumulative, so the round's slack is a delta.
  //    host_slack_total and the view arena never sync a host, so an
  //    all-idle fleet stays frozen through rebalancer rounds.
  for (int i = 0; i < cluster_.host_count(); ++i) {
    HostTrack& track = track_[static_cast<std::size_t>(i)];
    const CpuTime total = cluster_.host_slack_total(i);
    const CpuTime round_slack = total - track.last_total_slack;
    track.last_total_slack = total;
    const CpuTime round_capacity = static_cast<CpuTime>(
        cluster_.views()[static_cast<std::size_t>(i)].capacity_millicpu /
        1000 * dt);
    const CpuTime epsilon =
        round_capacity * config_.slack_epsilon_permille / 1000;
    if (round_slack <= epsilon) {
      ++track.saturated_rounds;
    } else {
      track.saturated_rounds = 0;
    }
  }

  // 2. Victim signal. With a ProfileStore attached the fleet rows already
  //    carry each pod's profiled p95 — no per-round sampling (or baseline
  //    retention) needed at all. Without one, refresh the per-pod usage
  //    deltas (who burned CPU this round) every round, not only when
  //    migrating, so the signal is always warm. Baselines are pruned first:
  //    only pods holding a *running* fleet row may keep one, so a
  //    stopped/migrated/crashed pod's entry never outlives the pod.
  const FleetView& fleet = cluster_.fleet_view();
  const bool profiled = cluster_.profiles() != nullptr;
  std::map<int, CpuTime> round_usage;
  if (!profiled) {
    std::erase_if(pod_last_usage_, [&fleet](const auto& entry) {
      return entry.first >= fleet.pod_count() ||
             !fleet.pods[static_cast<std::size_t>(entry.first)].running;
    });
    for (const PodRow& row : fleet.pods) {
      if (row.id < 0 || !row.running) {
        continue;
      }
      const Pod& pod = cluster_.pod(row.id);
      const CpuTime usage = cluster_.host(pod.host).scheduler().total_usage(
          pod.container->cgroup());
      const auto it = pod_last_usage_.find(row.id);
      // A freshly-landed pod has no baseline; its first round reads as zero
      // rather than as its entire lifetime burn.
      round_usage[row.id] = it == pod_last_usage_.end()
                                ? 0
                                : std::max<CpuTime>(0, usage - it->second);
      pod_last_usage_[row.id] = usage;
    }
  }

  // 3. At most one migration per round: the lowest-indexed host that has
  //    been saturated K rounds running and is out of cooldown evicts its
  //    hottest eligible pod to the roomiest feasible target.
  for (int source = 0; source < cluster_.host_count(); ++source) {
    HostTrack& track = track_[static_cast<std::size_t>(source)];
    if (!cluster_.host_up(source) ||
        track.saturated_rounds < config_.saturated_rounds ||
        now < track.cooldown_until || cluster_.pods_on(source) == 0) {
      continue;
    }

    // Victim, past its residency minimum: with profiles, the hottest pod by
    // profiled p95 (declared request until the window fills), burstiness
    // breaking ties — the spikier pod is the likelier saturation cause.
    // Without, the biggest CPU consumer this round. Ties keep the lowest id.
    int victim = -1;
    std::int64_t victim_key = -1;
    std::int64_t victim_burst = -1;
    for (const PodRow& row : fleet.pods) {
      if (row.id < 0 || !row.running || row.host != source ||
          now - row.placed_at < config_.min_residency) {
        continue;
      }
      std::int64_t key = 0;
      std::int64_t burst = 0;
      if (profiled) {
        key = row.samples > 0 ? row.cpu_p95_millicpu : row.request_millicpu;
        burst = row.burst_permille;
      } else {
        key = round_usage[row.id];
      }
      if (key > victim_key || (key == victim_key && burst > victim_burst)) {
        victim = row.id;
        victim_key = key;
        victim_burst = burst;
      }
    }
    if (victim < 0) {
      continue;
    }
    const Pod& pod = cluster_.pod(victim);
    const Bytes victim_bytes =
        cluster_.host(source).memory().committed(pod.container->cgroup());

    // Target: best observed headroom among out-of-cooldown hosts that can
    // absorb the victim's state plus the configured reserves. Ties go to
    // the lowest index — the rebalancer never draws randomness, so adding
    // it to a scenario cannot shift placement's rng stream.
    int target = -1;
    std::int64_t target_score = -1;
    for (int i = 0; i < cluster_.host_count(); ++i) {
      if (i == source || !cluster_.host_up(i) ||
          now < track_[static_cast<std::size_t>(i)].cooldown_until) {
        continue;
      }
      // The barrier-refreshed arena: same values host_view(i) would build
      // (nothing the rebalancer mutates before this point changes a view),
      // without re-deriving N views per scan.
      const HostView& view = cluster_.views()[static_cast<std::size_t>(i)];
      if (view.cordoned) {
        continue;  // the cluster autoscaler is parking or draining it
      }
      if (view.slack_millicpu < config_.target_min_slack_millicpu ||
          view.free_memory < victim_bytes + config_.target_min_free) {
        continue;
      }
      // frac_permille: byte-denominated free memory at Pi/Ei capacities
      // would overflow a plain int64 multiply (same bug as placement's
      // scoring, fixed together).
      const std::int64_t cpu_headroom =
          frac_permille(view.slack_millicpu, view.capacity_millicpu);
      const std::int64_t mem_headroom =
          frac_permille(view.free_memory - victim_bytes, view.capacity_memory);
      const std::int64_t score = std::min(cpu_headroom, mem_headroom);
      if (score > target_score) {
        target = i;
        target_score = score;
      }
    }
    if (target < 0) {
      continue;
    }

    ARV_LOG(kInfo, "rebalance",
            "h%d saturated %d rounds: migrating pod %d -> h%d", source,
            track.saturated_rounds, victim, target);
    cluster_.migrate_pod(victim, target);
    pod_last_usage_.erase(victim);  // baseline restarts on the new host
    track.saturated_rounds = 0;
    track.cooldown_until = now + config_.cooldown;
    track_[static_cast<std::size_t>(target)].cooldown_until = now + config_.cooldown;
    ++migrations_;
    break;  // one migration per round
  }
}

}  // namespace arv::cluster
