#include "src/cluster/overload.h"

#include <algorithm>

#include "src/container/host.h"
#include "src/obs/trace_recorder.h"
#include "src/server/server_runtime.h"
#include "src/util/assert.h"

namespace arv::cluster {
namespace {

/// The designated control-plane host whose sysfs serves /sys/arv/admission/.
constexpr int kControlHost = 0;

/// One admitted request spends one token; buckets store tokens in
/// milli-tokens scaled by units::sec so refill (rate_milli * elapsed_usec)
/// is exact integer arithmetic with no truncation drift.
constexpr std::int64_t kSpendScaled = 1000 * units::sec;

}  // namespace

const char* criticality_name(Criticality c) {
  switch (c) {
    case Criticality::kCritical:
      return "critical";
    case Criticality::kNormal:
      return "normal";
    case Criticality::kBatch:
      return "batch";
    case Criticality::kBestEffort:
      return "best_effort";
  }
  return "unknown";
}

Criticality criticality_for_slo(std::int64_t availability_permille) {
  if (availability_permille >= 999) {
    return Criticality::kCritical;
  }
  if (availability_permille >= 990) {
    return Criticality::kNormal;
  }
  if (availability_permille >= 950) {
    return Criticality::kBatch;
  }
  return Criticality::kBestEffort;
}

AdmissionConfig AdmissionConfig::validated() const {
  AdmissionConfig v = *this;
  const AdmissionConfig d;
  if (v.period <= 0) {
    v.period = d.period;
  }
  v.queue_ref_depth = std::max(1, v.queue_ref_depth);
  if (v.p99_ref <= 0) {
    v.p99_ref = d.p99_ref;
  }
  v.shed_enter_permille = std::max<std::int64_t>(1, v.shed_enter_permille);
  v.shed_step_permille = std::max<std::int64_t>(1, v.shed_step_permille);
  v.shed_exit_margin_permille =
      std::max<std::int64_t>(0, v.shed_exit_margin_permille);
  v.release_rounds = std::max(1, v.release_rounds);
  // brownout_enter == 0 is legal (brownout always armed — test hook).
  v.brownout_enter_permille =
      std::max<std::int64_t>(0, v.brownout_enter_permille);
  v.brownout_exit_permille = std::clamp<std::int64_t>(
      v.brownout_exit_permille, 0, v.brownout_enter_permille);
  v.brownout_rounds = std::max(1, v.brownout_rounds);
  v.retry_budget_permille = std::max<std::int64_t>(0, v.retry_budget_permille);
  v.retry_budget_floor = std::max<std::int64_t>(0, v.retry_budget_floor);
  v.retry_budget_cap =
      std::max<std::int64_t>(std::max<std::int64_t>(1, v.retry_budget_floor),
                             v.retry_budget_cap);
  v.min_limit = std::max(1, v.min_limit);
  v.initial_limit = std::max(v.min_limit, v.initial_limit);
  v.limit_increase = std::max(1, v.limit_increase);
  v.limit_decrease_permille =
      std::clamp<std::int64_t>(v.limit_decrease_permille, 1, 999);
  v.latency_tolerance_permille =
      std::max<std::int64_t>(1000, v.latency_tolerance_permille);
  v.min_window_rounds = std::max(1, v.min_window_rounds);
  return v;
}

AdmissionController::AdmissionController(Cluster& cluster,
                                         AdmissionConfig config)
    : cluster_(cluster), config_(config.validated()) {
  // Start with a full retry reserve: the budget bounds the retry *rate*
  // relative to successes; an initial reserve just lets the first failover
  // probe immediately.
  retry_tokens_milli_ = config_.retry_budget_cap * 1000;
  register_telemetry();
}

AdmissionController::~AdmissionController() {
  if (cluster_.host_count() > kControlHost) {
    cluster_.host(kControlHost)
        .sysfs()
        .remove_control_subtree("/sys/arv/admission/");
  }
}

void AdmissionController::register_telemetry() {
  if (obs::TraceRecorder* trace = cluster_.trace()) {
    trace->add_gauge("admission.pressure_permille", "",
                     [this] { return pressure_; });
    trace->add_gauge("admission.shed_level", "",
                     [this] { return static_cast<std::int64_t>(shed_level_); });
    trace->add_counter("admission.admitted", "", [this] {
      return static_cast<std::int64_t>(admitted_);
    });
    trace->add_counter("admission.rejected", "", [this] {
      return static_cast<std::int64_t>(rejected_);
    });
    trace->add_gauge("overload.brownout", "", [this] {
      return static_cast<std::int64_t>(brownout_ ? 1 : 0);
    });
    trace->add_gauge("overload.retry_tokens_milli", "",
                     [this] { return retry_tokens_milli_; });
    trace->add_counter("overload.retries_denied", "", [this] {
      return static_cast<std::int64_t>(retries_denied_);
    });
    trace->add_gauge("overload.queue_limit_total", "",
                     [this] { return queue_limit_total_; });
    trace->add_gauge("overload.windowed_p99_us", "",
                     [this] { return windowed_p99_; });
  }
  if (cluster_.host_count() > kControlHost) {
    vfs::VirtualSysfs& sysfs = cluster_.host(kControlHost).sysfs();
    const std::string prefix = "/sys/arv/admission/";
    sysfs.register_control_file(
        prefix + "pressure_permille",
        [this] { return std::to_string(snap_.pressure) + "\n"; }, &gen_);
    sysfs.register_control_file(
        prefix + "shed_level",
        [this] { return std::to_string(snap_.shed_level) + "\n"; }, &gen_);
    sysfs.register_control_file(
        prefix + "brownout",
        [this] { return std::string(snap_.brownout ? "1" : "0") + "\n"; },
        &gen_);
    sysfs.register_control_file(
        prefix + "admitted",
        [this] { return std::to_string(snap_.admitted) + "\n"; }, &gen_);
    sysfs.register_control_file(
        prefix + "rejected",
        [this] { return std::to_string(snap_.rejected) + "\n"; }, &gen_);
    sysfs.register_control_file(
        prefix + "retries_denied",
        [this] { return std::to_string(snap_.retries_denied) + "\n"; }, &gen_);
    sysfs.register_control_file(
        prefix + "retry_tokens_milli",
        [this] { return std::to_string(snap_.retry_tokens_milli) + "\n"; },
        &gen_);
    sysfs.register_control_file(
        prefix + "queue_limit_total",
        [this] { return std::to_string(snap_.queue_limit_total) + "\n"; },
        &gen_);
  }
}

int AdmissionController::register_tenant(const std::string& name,
                                         RequestRouter& router,
                                         Criticality criticality) {
  ARV_ASSERT_MSG(!name.empty(), "tenant needs a name");
  ARV_ASSERT_MSG(find(name) == nullptr, "tenant already registered");
  const int slot = static_cast<int>(tenants_.size());
  tenants_.push_back(Tenant{});
  Tenant& t = tenants_.back();
  t.name = name;
  t.router = &router;
  t.criticality = criticality;
  router.attach_admission(this, slot);
  if (cluster_.host_count() > kControlHost) {
    vfs::VirtualSysfs& sysfs = cluster_.host(kControlHost).sysfs();
    const std::string prefix = "/sys/arv/admission/" + name + "/";
    sysfs.register_control_file(
        prefix + "criticality",
        [&t] { return std::string(criticality_name(t.criticality)) + "\n"; },
        &t.gen);
    sysfs.register_control_file(
        prefix + "admitted",
        [&t] { return std::to_string(t.snap_admitted) + "\n"; }, &t.gen);
    sysfs.register_control_file(
        prefix + "rejected",
        [&t] { return std::to_string(t.snap_rejected) + "\n"; }, &t.gen);
  }
  return slot;
}

AdmissionController::Tenant* AdmissionController::find(
    const std::string& name) {
  for (Tenant& t : tenants_) {
    if (t.name == name) {
      return &t;
    }
  }
  return nullptr;
}

const AdmissionController::Tenant* AdmissionController::find(
    const std::string& name) const {
  for (const Tenant& t : tenants_) {
    if (t.name == name) {
      return &t;
    }
  }
  return nullptr;
}

void AdmissionController::set_criticality(const std::string& name,
                                          Criticality criticality) {
  Tenant* t = find(name);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  if (t->criticality != criticality) {
    t->criticality = criticality;
    ++t->gen;
  }
}

void AdmissionController::set_rate_limit(const std::string& name,
                                         TenantRate rate) {
  Tenant* t = find(name);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  ARV_ASSERT(rate.tokens_per_sec >= 0 && rate.burst_tokens >= 0);
  t->rate_milli = static_cast<std::int64_t>(rate.tokens_per_sec * 1000.0);
  t->burst_scaled =
      static_cast<std::int64_t>(rate.burst_tokens * 1000.0) * units::sec;
  t->tokens_scaled = t->burst_scaled;  // a fresh limit starts with its burst
  t->last_refill = cluster_.now();
}

Criticality AdmissionController::tenant_criticality(
    const std::string& name) const {
  const Tenant* t = find(name);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  return t->criticality;
}

std::uint64_t AdmissionController::tenant_admitted(
    const std::string& name) const {
  const Tenant* t = find(name);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  return t->admitted;
}

std::uint64_t AdmissionController::tenant_rejected(
    const std::string& name) const {
  const Tenant* t = find(name);
  ARV_ASSERT_MSG(t != nullptr, "unknown tenant");
  return t->rejected;
}

bool AdmissionController::admit(int slot, SimTime now) {
  ARV_ASSERT(slot >= 0 && slot < static_cast<int>(tenants_.size()));
  Tenant& t = tenants_[static_cast<std::size_t>(slot)];
  if (shed_level_ > 0 && shedding(t.criticality)) {
    ++rejected_;
    ++rejected_pressure_;
    ++t.rejected;
    return false;
  }
  if (t.rate_milli > 0) {
    t.tokens_scaled = std::min(
        t.burst_scaled, t.tokens_scaled + t.rate_milli * (now - t.last_refill));
    t.last_refill = now;
    if (t.tokens_scaled < kSpendScaled) {
      ++rejected_;
      ++rejected_rate_;
      ++t.rejected;
      return false;
    }
    t.tokens_scaled -= kSpendScaled;
  }
  ++admitted_;
  ++t.admitted;
  return true;
}

bool AdmissionController::allow_retry() {
  if (retry_tokens_milli_ >= 1000) {
    retry_tokens_milli_ -= 1000;
    ++retries_allowed_;
    return true;
  }
  ++retries_denied_;
  return false;
}

void AdmissionController::on_success() {
  retry_tokens_milli_ =
      std::min(config_.retry_budget_cap * 1000,
               retry_tokens_milli_ + config_.retry_budget_permille);
}

void AdmissionController::update_pressure(SimTime /*now*/) {
  std::uint64_t queued = 0;
  int live = 0;
  util::LatencyHistogram fleet;
  for (Tenant& t : tenants_) {
    queued += t.router->queued();
    live += t.router->live_replicas();
    fleet.merge(t.router->aggregate().latency_hist);
  }
  // Windowed p99: the cumulative fleet histogram minus last round's
  // snapshot isolates exactly this round's completions (teardown always
  // harvests into Pod::archived, so the merged stream is monotone).
  windowed_p99_ = fleet.count_since(fleet_prev_) == 0
                      ? 0
                      : fleet.percentile_since(fleet_prev_, 99.0);
  fleet_prev_ = fleet;
  const std::int64_t queue_permille =
      live == 0 ? 0
                : static_cast<std::int64_t>(queued) * 1000 /
                      (static_cast<std::int64_t>(live) * config_.queue_ref_depth);
  const std::int64_t latency_permille =
      windowed_p99_ * 1000 / config_.p99_ref;
  pressure_ = std::max(queue_permille, latency_permille);
}

void AdmissionController::update_shed_level() {
  // How many bands the current pressure crosses right now.
  int crossed = 0;
  while (crossed < kCriticalityClasses &&
         pressure_ >= config_.shed_enter_permille +
                          static_cast<std::int64_t>(crossed) *
                              config_.shed_step_permille) {
    ++crossed;
  }
  if (crossed > shed_level_) {
    // Fast attack: jump straight to the crossed band.
    shed_level_ = crossed;
    calm_rounds_ = 0;
    ++shed_raises_;
    return;
  }
  if (shed_level_ == 0) {
    calm_rounds_ = 0;
    return;
  }
  // Slow release: the current level disengages only after `release_rounds`
  // consecutive rounds comfortably below its own entry band.
  const std::int64_t release_below =
      config_.shed_enter_permille +
      static_cast<std::int64_t>(shed_level_ - 1) * config_.shed_step_permille -
      config_.shed_exit_margin_permille;
  if (pressure_ < release_below) {
    if (++calm_rounds_ >= config_.release_rounds) {
      --shed_level_;
      calm_rounds_ = 0;
    }
  } else {
    calm_rounds_ = 0;
  }
}

void AdmissionController::update_brownout() {
  if (!brownout_) {
    if (pressure_ >= config_.brownout_enter_permille) {
      if (++brownout_streak_ >= config_.brownout_rounds) {
        brownout_ = true;
        ++brownout_entries_;
        brownout_streak_ = 0;
      }
    } else {
      brownout_streak_ = 0;
    }
  } else {
    if (pressure_ < config_.brownout_exit_permille) {
      if (++brownout_streak_ >= config_.brownout_rounds) {
        brownout_ = false;
        brownout_streak_ = 0;
      }
    } else {
      brownout_streak_ = 0;
    }
  }
}

void AdmissionController::update_limits() {
  queue_limit_total_ = 0;
  if (!config_.adaptive_limits) {
    return;
  }
  for (Tenant& t : tenants_) {
    for (int i = 0; i < t.router->replica_count(); ++i) {
      const int pod_id = t.router->replica_pod(i);
      Pod& pod = cluster_.pod(pod_id);
      server::WorkerPoolServer* sink =
          pod.workload == nullptr ? nullptr : pod.workload->request_sink();
      LimitState& st = limits_[pod_id];
      // Per-pod cumulative latency stream: archived history + live sink.
      // Monotone across restarts/migrations by the harvest contract, so the
      // round delta is exact.
      util::LatencyHistogram hist = pod.archived.latency_hist;
      if (sink != nullptr) {
        hist.merge(sink->stats().latency_hist);
      }
      const std::uint64_t fresh = hist.count_since(st.prev);
      const std::int64_t round_p50 =
          fresh == 0 ? -1 : hist.percentile_since(st.prev, 50.0);
      st.prev = hist;
      if (st.limit == 0) {
        st.limit = config_.initial_limit;
      }
      if (round_p50 >= 0) {
        st.window.push_back(round_p50);
        while (static_cast<int>(st.window.size()) > config_.min_window_rounds) {
          st.window.pop_front();
        }
        const std::int64_t min_p50 =
            *std::min_element(st.window.begin(), st.window.end());
        if (round_p50 * 1000 <= min_p50 * config_.latency_tolerance_permille) {
          st.limit += config_.limit_increase;  // additive increase
        } else {
          st.limit = std::max<int>(
              config_.min_limit,
              static_cast<int>(static_cast<std::int64_t>(st.limit) *
                               config_.limit_decrease_permille / 1000));
        }
      } else if (sink != nullptr && sink->queue_depth() == 0) {
        st.limit += config_.limit_increase;  // idle round: recover headroom
      }
      st.limit = std::max(st.limit, config_.min_limit);
      if (sink != nullptr) {
        sink->set_queue_limit(static_cast<std::size_t>(st.limit));
        // Read back the server-side clamp so growth stops at max_queue.
        st.limit = static_cast<int>(sink->queue_limit());
        queue_limit_total_ += st.limit;
      }
    }
  }
}

void AdmissionController::tick(SimTime now, SimDuration /*dt*/) {
  update_pressure(now);
  update_shed_level();
  update_brownout();
  update_limits();
  // Per-round floor: even with zero successes the fleet keeps a trickle of
  // retry capacity, so it never stops probing for recovery.
  retry_tokens_milli_ =
      std::max(retry_tokens_milli_, config_.retry_budget_floor * 1000);

  Snapshot next;
  next.pressure = pressure_;
  next.shed_level = shed_level_;
  next.brownout = brownout_;
  next.admitted = admitted_;
  next.rejected = rejected_;
  next.retries_denied = retries_denied_;
  next.retry_tokens_milli = retry_tokens_milli_;
  next.queue_limit_total = queue_limit_total_;
  if (next.pressure != snap_.pressure || next.shed_level != snap_.shed_level ||
      next.brownout != snap_.brownout || next.admitted != snap_.admitted ||
      next.rejected != snap_.rejected ||
      next.retries_denied != snap_.retries_denied ||
      next.retry_tokens_milli != snap_.retry_tokens_milli ||
      next.queue_limit_total != snap_.queue_limit_total) {
    snap_ = next;
    ++gen_;
  }
  for (Tenant& t : tenants_) {
    if (t.snap_admitted != t.admitted || t.snap_rejected != t.rejected) {
      t.snap_admitted = t.admitted;
      t.snap_rejected = t.rejected;
      ++t.gen;
    }
  }
}

}  // namespace arv::cluster
