// FleetView — one cacheable cluster-state snapshot (ant-ray's ViewBuilder /
// ResourceAssignmentView shape, SNIPPETS.md Snippet 3).
//
// Before this object existed, every cluster component — placement, the
// rebalancer, the failure detector, the router, and all three autoscalers —
// re-walked host_views() and re-derived its own notion of fleet state.
// FleetView replaces those walks with one structure-of-arrays snapshot,
// assembled in the cluster's serial phase:
//
//   hosts   the per-host effective view (capacity, declared ledger, observed
//           slack and free memory, up/cordon state) — the same HostView rows
//           the arena always carried;
//   pods    one flattened row per pod ever created: id, current host,
//           service, declared requests, committed bytes, and — when a
//           ProfileStore is attached — usage percentiles and burst shape;
//   CSR     host_pod_offsets/host_pod_ids, pods grouped by host in id order,
//           so per-host resident scans are O(residents) not O(pods).
//
// The snapshot is generation-stamped: the generation advances only when the
// *content* changes, so pseudo-file renders of the view cache on it (the PR 2
// pattern) and an idle fleet re-renders nothing. Rows for hosts that are
// provably unchanged (frozen by the quiescence skip, no mutation since the
// last refresh) are copied from the previous snapshot, not re-observed.
// diff(prev) reports added/removed/moved pods and per-host capacity deltas —
// the cheap "what changed since your last look" API consumers poll instead of
// comparing whole snapshots.
//
// All assembly and all reads happen in the cluster's serial phases, so the
// view preserves the byte-identical-trace contract at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/placement.h"
#include "src/container/k8s.h"
#include "src/util/types.h"
#include "src/vfs/pseudo_fs.h"

namespace arv::cluster {

class ProfileStore;

/// One flattened pod row. Percentile/burst fields are zero (samples == 0)
/// until an attached ProfileStore has watched the pod long enough.
struct PodRow {
  int id = -1;
  int host = -1;     ///< current (or in-flight target) host; -1 once stopped
  int service = -1;  ///< index into FleetView::services
  // --- declared -------------------------------------------------------------
  std::int64_t request_millicpu = 0;
  Bytes request_memory = 0;
  // --- observed -------------------------------------------------------------
  Bytes committed = 0;  ///< bytes committed by the pod's cgroup right now
  std::int64_t cpu_p50_millicpu = 0;
  std::int64_t cpu_p95_millicpu = 0;
  Bytes mem_p50 = 0;
  Bytes mem_p95 = 0;
  /// Burstiness: cpu p95 / p50 in per-mille (1000 = flat, 3000 = spiky).
  std::int64_t burst_permille = 0;
  int samples = 0;  ///< profile window fill; 0 = unprofiled
  // --- state ----------------------------------------------------------------
  bool running = false;
  bool in_flight = false;  ///< mid-migration toward `host`
  bool failed = false;     ///< crashed, awaiting restart or failover
  SimTime placed_at = 0;

  bool operator==(const PodRow&) const = default;
};

/// One pod-level change between two snapshots.
struct PodMove {
  int pod = -1;
  int from = -1;
  int to = -1;

  bool operator==(const PodMove&) const = default;
};

/// One host whose view changed between two snapshots (zero-delta hosts are
/// omitted — the diff of an idle fleet is empty).
struct HostDelta {
  int host = -1;
  std::int64_t slack_delta_millicpu = 0;
  std::int64_t free_delta_bytes = 0;  ///< signed, hence not Bytes
  std::int64_t requested_delta_millicpu = 0;
  int pods_delta = 0;
  bool up_changed = false;
  bool cordon_changed = false;

  bool operator==(const HostDelta&) const = default;
};

/// What changed between two FleetView snapshots. Pod ids are ascending;
/// host deltas are in host-index order.
struct FleetViewDiff {
  vfs::Generation from = 0;
  vfs::Generation to = 0;
  std::vector<int> added;    ///< now placed, previously absent or stopped
  std::vector<int> removed;  ///< now stopped, previously placed
  std::vector<PodMove> moved;
  std::vector<HostDelta> hosts;

  bool empty() const {
    return added.empty() && removed.empty() && moved.empty() && hosts.empty();
  }
  /// One line per change ("+pod3", "-pod4", "pod5 h1->h2", "h0 ...").
  std::string render() const;
};

/// The snapshot object. Cluster::fleet_view() returns the live one; consumers
/// that place several pods in one round copy it and claim() each landing so
/// later decisions in the round see post-landing headroom.
struct FleetView {
  vfs::Generation generation = 0;
  SimTime at = 0;
  std::vector<HostView> hosts;
  std::vector<PodRow> pods;  ///< indexed by pod id (rows for stopped pods stay)
  std::vector<std::string> services;  ///< interned service names
  // CSR: pods grouped by host. host_pod_ids[host_pod_offsets[h] ..
  // host_pod_offsets[h+1]) are the ids (ascending) of pods on host h
  // (running, in flight, or failed-in-place — anything holding a ledger slot).
  std::vector<int> host_pod_offsets;
  std::vector<int> host_pod_ids;
  /// Attached profile store (may be null). Strategies use it for pairwise
  /// correlation queries the flattened rows cannot carry.
  const ProfileStore* profiles = nullptr;

  int host_count() const { return static_cast<int>(hosts.size()); }
  int pod_count() const { return static_cast<int>(pods.size()); }
  const std::string& service_name(int index) const {
    static const std::string kUnknown = "?";
    return index >= 0 && index < static_cast<int>(services.size())
               ? services[static_cast<std::size_t>(index)]
               : kUnknown;
  }

  /// Charge a pod that just landed (or will land) on `host` against this
  /// *working copy*: ledger, observed slack/free-memory, and the pod count —
  /// plus a synthetic pod row so profile-aware scoring sees the new resident.
  /// The shared claim the FailureDetector and autoscalers used to hand-roll.
  void claim(int host, const PodSpec& spec);

  /// Deduct only the *observed* axes (slack, free memory) — for pods whose
  /// ledger slot is already counted (in-flight migrations) but whose landing
  /// has not burned a cycle yet.
  void reserve(int host, const container::K8sResources& resources);

  /// Content equality, generation and timestamp excluded: the refresh uses
  /// this to decide whether the generation advances at all.
  bool same_content(const FleetView& other) const;

  /// What changed since `prev` (an older snapshot of the same cluster).
  FleetViewDiff diff(const FleetView& prev) const;

  /// Rebuild the CSR index from the pod rows (after edits to `pods`).
  void rebuild_pod_index();

  /// Intern a service name, returning its index.
  int intern_service(const std::string& name);

  // --- renders (the /sys/arv/fleet/ file bodies) ----------------------------
  std::string render_hosts() const;
  std::string render_pods() const;

  /// Test/bench constructor: wrap hand-built host views (no pods, no
  /// profiles) so strategies can be driven without a Cluster.
  static FleetView from_hosts(std::vector<HostView> host_views);
};

}  // namespace arv::cluster
