// Overload control plane — graceful degradation for the fleet's front door.
//
// The open-loop workload engine (src/load) can offer arbitrarily more load
// than the fleet's effective capacity, and PR 5's per-replica breakers only
// protect a *dead* replica from being hammered. A fleet-wide flash crowd plus
// a failover still produces the classic metastable collapse: queues bloat,
// latency explodes past every deadline, retries multiply offered load, and
// goodput stays collapsed even after the trigger passes. This subsystem is
// the four guards that keep goodput flat past saturation:
//
//   1. AdmissionController — the front door. Every request a RequestRouter
//      generates first passes (a) its tenant's token bucket and (b) the
//      criticality gate: tenants map to four classes (critical / normal /
//      batch / best-effort, derived from their SLO declarations), and when
//      the fleet pressure signal crosses hysteresis bands the controller
//      sheds the lowest class first, walking upward one band per step.
//      Pressure = max(queue depth vs a reference depth, windowed p99 vs a
//      reference target) — both from state the serial phase already owns
//      (replica accept queues + the cumulative util::LatencyHistogram, whose
//      round-over-round bucket delta gives an exact per-round p99).
//      Shedding attacks fast (level jumps up the moment a band is crossed)
//      and releases slowly (a level steps down only after `release_rounds`
//      consecutive calm rounds) so the controller cannot flap.
//
//   2. Retry budget — one fleet-wide token bucket refilled as a fraction of
//      *successful* requests (Finagle-style, default 10%). Every retry
//      beyond a request's first attempt spends a token; when the budget is
//      dry the router gives up instead of amplifying. Under total brown-off
//      a small per-round floor re-arms so probing never stops entirely.
//
//   3. Adaptive per-replica concurrency limits — an AIMD limit on each
//      WorkerPoolServer's accept queue, grown additively while the round's
//      observed p50 stays near the trailing minimum and cut multiplicatively
//      when it drifts, so the queue bound tracks what the replica can
//      actually serve. The bounded queue is what turns overload into the
//      fast, local refusals that JSQ and the breakers react to — instead of
//      a 10k-deep queue silently absorbing minutes of doomed work.
//
//   4. Brownout — under sustained pressure the controller flips the fleet
//      into degraded mode: routed requests are served at a fraction of their
//      CPU cost (WebConfig::degraded_cost_permille) and counted as
//      `degraded`, a disposition the SloAccountant books at a configurable
//      partial budget weight.
//
// Determinism: the controller mutates only inside serial phases — its own
// tick() and the routers' route_one() calls (driver injection and router
// ticks are serial-phase components). All arithmetic is integer (token
// buckets in milli-tokens with exact scaled refill), so cluster traces stay
// byte-identical at any thread count. Telemetry surfaces as admission.* /
// overload.* trace series and /sys/arv/admission/ control files on the
// designated control host.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/router.h"
#include "src/sim/engine.h"
#include "src/util/latency_histogram.h"
#include "src/vfs/virtual_sysfs.h"

namespace arv::cluster {

/// Request criticality classes, shed lowest-first under pressure.
enum class Criticality {
  kCritical = 0,    ///< shed only at the highest pressure band
  kNormal = 1,
  kBatch = 2,
  kBestEffort = 3,  ///< first to go
};
constexpr int kCriticalityClasses = 4;

const char* criticality_name(Criticality c);

/// Map a tenant's declared availability objective to a criticality class:
/// three-nines tenants are critical, two-nines normal, 95% batch, anything
/// looser best-effort.
Criticality criticality_for_slo(std::int64_t availability_permille);

struct AdmissionConfig {
  /// Control-loop round length (pressure, shed level, brownout, AIMD).
  SimDuration period = 100 * units::msec;

  // --- fleet pressure signal -------------------------------------------------
  /// Queue pressure reference: total queued requests per live replica that
  /// counts as pressure 1000 permille.
  int queue_ref_depth = 64;
  /// Latency pressure reference: the windowed (per-round) p99 that counts as
  /// pressure 1000 permille.
  SimDuration p99_ref = 250 * units::msec;

  // --- criticality shedding bands --------------------------------------------
  /// Pressure at which shed level 1 engages (best-effort drops).
  std::int64_t shed_enter_permille = 1000;
  /// Additional pressure per further level (batch, normal, critical).
  std::int64_t shed_step_permille = 500;
  /// A level disengages once pressure sits this far below its entry band.
  std::int64_t shed_exit_margin_permille = 200;
  /// Consecutive calm rounds before a level steps down (slow release).
  int release_rounds = 3;

  // --- brownout --------------------------------------------------------------
  /// Pressure that arms brownout (after `brownout_rounds` sustained rounds).
  std::int64_t brownout_enter_permille = 700;
  /// Pressure below which brownout disarms (again sustained).
  std::int64_t brownout_exit_permille = 400;
  int brownout_rounds = 3;

  // --- fleet-wide retry budget -----------------------------------------------
  /// Milli-tokens deposited per successful request (100 = 10% of successes
  /// may be retries).
  std::int64_t retry_budget_permille = 100;
  /// Budget cap, in whole tokens (bounds the stored burst of retries).
  std::int64_t retry_budget_cap = 100;
  /// Per-round re-arm floor, in whole tokens: even with zero successes this
  /// many retries per round stay possible, so the fleet keeps probing.
  std::int64_t retry_budget_floor = 2;

  // --- adaptive per-replica concurrency limits -------------------------------
  bool adaptive_limits = true;
  /// First limit applied to a replica (then AIMD takes over).
  int initial_limit = 64;
  int min_limit = 4;
  /// Additive increase per calm round.
  int limit_increase = 4;
  /// Multiplicative decrease on a congested round (limit *= this / 1000).
  std::int64_t limit_decrease_permille = 700;
  /// A round is calm while its p50 <= trailing-min p50 * this / 1000.
  std::int64_t latency_tolerance_permille = 2000;
  /// Rounds of trailing p50 minima kept as the baseline.
  int min_window_rounds = 30;

  /// Copy with every out-of-range knob clamped to its nearest legal value —
  /// same contract as RouterConfig::validated(), applied by the constructor.
  AdmissionConfig validated() const;
};

/// Per-tenant token-bucket rate limit (0 = unlimited, the default).
struct TenantRate {
  double tokens_per_sec = 0;
  double burst_tokens = 0;
};

class AdmissionController : public sim::TickComponent {
 public:
  explicit AdmissionController(Cluster& cluster, AdmissionConfig config = {});
  ~AdmissionController() override;
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Enroll one tenant (= one RequestRouter) under the front door. Attaches
  /// this controller to the router and returns the tenant's slot. Tenants
  /// registered earlier are considered first each round — registration order
  /// is part of the deterministic contract.
  int register_tenant(const std::string& name, RequestRouter& router,
                      Criticality criticality = Criticality::kNormal);

  /// Re-classify a tenant (declare_slo upgrades criticality post-hoc).
  void set_criticality(const std::string& name, Criticality criticality);
  /// Set / replace a tenant's token-bucket rate limit.
  void set_rate_limit(const std::string& name, TenantRate rate);

  // --- router-facing gates (serial phase only) -------------------------------
  /// Admission verdict for one request of tenant `slot` arriving `now`.
  bool admit(int slot, SimTime now);
  /// Spend one retry token; false = budget dry, give up.
  bool allow_retry();
  /// A request was routed successfully: refill the retry budget.
  void on_success();
  bool brownout() const { return brownout_; }

  // --- sim::TickComponent ----------------------------------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "cluster.admission"; }
  SimDuration tick_period() const override { return config_.period; }

  // --- telemetry -------------------------------------------------------------
  std::int64_t pressure_permille() const { return pressure_; }
  int shed_level() const { return shed_level_; }
  /// True when class `c` is currently being shed at the front door.
  bool shedding(Criticality c) const {
    return static_cast<int>(c) >= kCriticalityClasses - shed_level_;
  }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t rejected_pressure() const { return rejected_pressure_; }
  std::uint64_t rejected_rate() const { return rejected_rate_; }
  std::uint64_t retries_allowed() const { return retries_allowed_; }
  std::uint64_t retries_denied() const { return retries_denied_; }
  std::int64_t retry_tokens_milli() const { return retry_tokens_milli_; }
  std::uint64_t brownout_entries() const { return brownout_entries_; }
  /// Sum of the AIMD queue limits applied to live replicas last round.
  std::int64_t queue_limit_total() const { return queue_limit_total_; }
  int tenant_count() const { return static_cast<int>(tenants_.size()); }
  Criticality tenant_criticality(const std::string& name) const;
  std::uint64_t tenant_admitted(const std::string& name) const;
  std::uint64_t tenant_rejected(const std::string& name) const;

  const AdmissionConfig& config() const { return config_; }

 private:
  struct Tenant {
    std::string name;
    RequestRouter* router = nullptr;
    Criticality criticality = Criticality::kNormal;
    // Token bucket in milli-tokens scaled by units::sec: refill adds
    // rate_milli * elapsed_usec exactly (no truncation drift), one admit
    // spends 1000 * units::sec. rate_milli == 0 disables the bucket.
    std::int64_t rate_milli = 0;
    std::int64_t burst_scaled = 0;
    std::int64_t tokens_scaled = 0;
    SimTime last_refill = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    // Round snapshots served by this tenant's control files.
    std::uint64_t snap_admitted = 0;
    std::uint64_t snap_rejected = 0;
    vfs::Generation gen = 1;
  };

  /// AIMD state for one replica pod.
  struct LimitState {
    util::LatencyHistogram prev;  ///< last round's cumulative snapshot
    std::deque<std::int64_t> window;  ///< trailing round-p50 minim window
    int limit = 0;                ///< 0 = not yet initialised
  };

  Tenant* find(const std::string& name);
  const Tenant* find(const std::string& name) const;
  void update_pressure(SimTime now);
  void update_shed_level();
  void update_brownout();
  void update_limits();
  void register_telemetry();

  Cluster& cluster_;
  AdmissionConfig config_;
  /// Deque: register_tenant must never move an enrolled tenant (control-file
  /// lambdas cache its address, routers cache its slot).
  std::deque<Tenant> tenants_;
  std::unordered_map<int, LimitState> limits_;  ///< by pod id
  util::LatencyHistogram fleet_prev_;  ///< last round's fleet-wide snapshot

  std::int64_t pressure_ = 0;
  std::int64_t windowed_p99_ = 0;
  int shed_level_ = 0;
  int calm_rounds_ = 0;
  bool brownout_ = false;
  int brownout_streak_ = 0;
  std::int64_t retry_tokens_milli_ = 0;
  std::int64_t queue_limit_total_ = 0;

  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t rejected_pressure_ = 0;
  std::uint64_t rejected_rate_ = 0;
  std::uint64_t retries_allowed_ = 0;
  std::uint64_t retries_denied_ = 0;
  std::uint64_t brownout_entries_ = 0;
  std::uint64_t shed_raises_ = 0;

  /// Round snapshot served by the /sys/arv/admission/ files (control files
  /// must not read live mid-round counters, or cached renders go stale).
  struct Snapshot {
    std::int64_t pressure = 0;
    int shed_level = 0;
    bool brownout = false;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t retries_denied = 0;
    std::int64_t retry_tokens_milli = 0;
    std::int64_t queue_limit_total = 0;
  };
  Snapshot snap_;
  vfs::Generation gen_ = 1;
};

}  // namespace arv::cluster
