#include "src/cluster/cluster.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "src/cluster/profile.h"
#include "src/util/assert.h"
#include "src/util/log.h"

namespace arv::cluster {
namespace {

/// The service a pod's fleet row files under (same fallback as
/// ProfileStore::service_of — duplicated to keep the row builder free of a
/// profile-store dependency when none is attached).
const std::string& service_key(const Pod& pod) {
  return pod.spec.service.empty() ? pod.spec.name : pod.spec.service;
}

}  // namespace

Cluster::Cluster(ClusterConfig config) : config_(config), rng_(config.seed) {
  ARV_ASSERT(config_.tick > 0);
  ARV_ASSERT(config_.observe_window >= config_.tick);
  ARV_ASSERT(config_.migration_bandwidth_per_sec > 0);
  ARV_ASSERT_MSG(config_.threads >= 0, "threads must be >= 0 (0 = auto)");
  threads_ =
      config_.threads > 0 ? config_.threads : sim::WorkerPool::default_threads();
  pool_ = std::make_unique<sim::WorkerPool>(threads_);
  shard_skips_.assign(static_cast<std::size_t>(threads_), 0);
  if (config_.enable_tracing) {
    obs::TraceConfig trace_config;
    trace_config.sample_interval = config_.trace_interval;
    trace_ = std::make_unique<obs::TraceRecorder>(trace_config);
    trace_->add_counter("cluster.migrations", "", [this] {
      return static_cast<std::int64_t>(migrations_);
    });
    trace_->add_gauge("cluster.pods", "", [this] {
      std::int64_t running = 0;
      for (const Pod& pod : pods_) {
        running += pod.running() ? 1 : 0;
      }
      return running;
    });
    trace_->add_counter("cluster.faults", "", [this] {
      return static_cast<std::int64_t>(pod_crashes_ + host_crashes_);
    });
    trace_->add_counter("cluster.failovers", "", [this] {
      return static_cast<std::int64_t>(failovers_);
    });
    trace_->add_counter("pod.restarts", "", [this] {
      return static_cast<std::int64_t>(restarts_);
    });
    trace_->add_gauge("cluster.hosts_up", "", [this] {
      std::int64_t up = 0;
      for (const HostState& state : hosts_) {
        up += state.up ? 1 : 0;
      }
      return up;
    });
    trace_->add_counter("cluster.hosts_skipped", "", [this] {
      return static_cast<std::int64_t>(hosts_skipped());
    });
    if (config_.trace_timing) {
      // Wall-clock series: machine- and thread-count-dependent by nature,
      // so they live behind trace_timing (see ClusterConfig).
      trace_->add_gauge("cluster.step_ms", "",
                        [this] { return last_step_wall_us_ / 1000; });
      trace_->add_gauge("cluster.threads", "", [this] {
        return static_cast<std::int64_t>(threads_);
      });
    }
  }
}

int Cluster::add_host(container::HostConfig host_config) {
  ARV_ASSERT_MSG(now_ == 0, "add hosts before advancing the cluster clock");
  ARV_ASSERT_MSG(host_config.tick == config_.tick,
                 "host tick must match the cluster tick");
  HostState state;
  state.host = std::make_unique<container::Host>(host_config);
  state.runtime = std::make_unique<container::ContainerRuntime>(*state.host);
  // An unobserved host counts as fully idle: placement on a fresh cluster
  // must not read "no completed window yet" as "saturated".
  state.window_slack =
      static_cast<CpuTime>(host_config.cpus) * config_.observe_window;
  hosts_.push_back(std::move(state));
  const int index = static_cast<int>(hosts_.size()) - 1;
  if (trace_ != nullptr) {
    register_host_trace(index);
  }
  if (index == 0) {
    // The fleet snapshot publishes on host 0's sysfs (the control host, same
    // convention as the autoscalers). Renders cache on the fleet generation:
    // an idle fleet serves every read from the cached string.
    vfs::VirtualSysfs& sysfs = hosts_[0].host->sysfs();
    sysfs.register_control_file(
        "/sys/arv/fleet/hosts", [this] { return cur_.render_hosts(); },
        &fleet_gen_);
    sysfs.register_control_file(
        "/sys/arv/fleet/pods", [this] { return cur_.render_pods(); },
        &fleet_gen_);
    // The diff file shows the changes that produced the current generation:
    // current published snapshot vs the previous tick boundary's.
    sysfs.register_control_file(
        "/sys/arv/fleet/diff", [this] { return cur_.diff(prev_).render(); },
        &fleet_gen_);
    sysfs.register_control_file(
        "/sys/arv/fleet/generation",
        [this] { return std::to_string(fleet_gen_) + "\n"; }, &fleet_gen_);
  }
  return index;
}

void Cluster::register_host_trace(int index) {
  const std::string scope = "h" + std::to_string(index);
  trace_->add_gauge("slack_window", scope, [this, index] {
    return hosts_[static_cast<std::size_t>(index)].window_slack;
  });
  trace_->add_gauge("free_mem", scope, [this, index] {
    return hosts_[static_cast<std::size_t>(index)].host->memory().free_memory();
  });
  trace_->add_gauge("pods", scope,
                    [this, index] { return hosts_[static_cast<std::size_t>(index)].pods; });
  trace_->add_counter("slack_total", scope,
                      [this, index] { return host_slack_total(index); });
  trace_->add_gauge("up", scope, [this, index] {
    return hosts_[static_cast<std::size_t>(index)].up ? 1 : 0;
  });
}

void Cluster::add_component(sim::TickComponent* component) {
  ARV_ASSERT(component != nullptr);
  Dispatch dispatch;
  dispatch.component = component;
  dispatch.next = now_ + config_.tick;  // first dispatch on the next tick
  dispatch.last = now_;
  components_.push_back(dispatch);
}

void Cluster::step() {
  ARV_ASSERT_MSG(!hosts_.empty(), "cluster has no hosts");
  now_ += config_.tick;
  host_phase();
  // Serial phases, on this thread, in a fixed order; every stage iterates
  // hosts/pods in index order, so the merge is thread-count-invariant.
  observe_slack();
  // Migrations land before components run, so a rebalancer/router round
  // never observes a pod that should already have arrived; the fleet
  // snapshot refreshes after landing so it reflects the landed state.
  settle_migrations();
  refresh_fleet(/*boundary=*/true);
  dispatch_components();
  if (trace_ != nullptr) {
    trace_->tick(now_, config_.tick);
  }
  ++steps_;
}

void Cluster::host_phase() {
  const auto wall_start = std::chrono::steady_clock::now();
  in_host_phase_ = true;
  pool_->run([this](int shard) { host_phase_shard(shard); });
  in_host_phase_ = false;
  last_step_wall_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  host_phase_wall_us_ += last_step_wall_us_;
}

void Cluster::host_phase_shard(int shard) {
  const int count = host_count();
  std::uint64_t skipped = 0;
  for (int i = shard; i < count; i += threads_) {
    HostState& state = hosts_[static_cast<std::size_t>(i)];
    if (config_.skip_idle_hosts && state.host->quiescent()) {
      // Freeze: the host's clock stays behind; observe_slack and the trace
      // account for the gap analytically, sync_host replays it on touch.
      ++skipped;
      continue;
    }
    // A host can only fall behind while quiescent, and quiescence cannot
    // flip off spontaneously — only a serial-phase touch (which syncs) can
    // end it — so a non-skipped host is always exactly one tick behind.
    ARV_ASSERT_MSG(state.host->now() + config_.tick == now_,
                   "non-quiescent host fell behind the cluster clock");
    state.host->engine().step();
    ARV_ASSERT(state.host->now() == now_);
  }
  shard_skips_[static_cast<std::size_t>(shard)] += skipped;
}

void Cluster::sync_host(int index) {
  HostState& state = hosts_.at(static_cast<std::size_t>(index));
  if (state.host->now() < now_) {
    state.host->advance_idle(now_);
  }
}

std::uint64_t Cluster::hosts_skipped() const {
  return std::accumulate(shard_skips_.begin(), shard_skips_.end(),
                         std::uint64_t{0});
}

CpuTime Cluster::host_slack_total(int index) const {
  const HostState& state = hosts_.at(static_cast<std::size_t>(index));
  return state.host->scheduler().total_slack() +
         static_cast<CpuTime>(state.host->cpus()) * (now_ - state.host->now());
}

void Cluster::run_for(SimDuration duration) {
  const SimTime end = now_ + duration;
  while (now_ < end) {
    step();
  }
}

void Cluster::observe_slack() {
  for (HostState& state : hosts_) {
    if (state.host->now() < now_) {
      // Frozen host: the skipped tick's slack is analytic — full capacity
      // idle. last_total_slack advances in lockstep so the diff stays exact
      // when the host later syncs (advance_idle adds the same total).
      const CpuTime tick_slack =
          static_cast<CpuTime>(state.host->cpus()) * config_.tick;
      state.accum_slack += tick_slack;
      state.last_total_slack += tick_slack;
      continue;
    }
    const CpuTime total = state.host->scheduler().total_slack();
    state.accum_slack += total - state.last_total_slack;
    state.last_total_slack = total;
  }
  window_elapsed_ += config_.tick;
  if (window_elapsed_ >= config_.observe_window) {
    window_elapsed_ = 0;
    for (HostState& state : hosts_) {
      state.window_slack = state.accum_slack;
      state.accum_slack = 0;
    }
    // Every host's slack_millicpu just changed: the next fleet refresh must
    // re-observe every row, frozen hosts included.
    window_rolled_ = true;
    fleet_dirty_ = true;
  }
}

int Cluster::create_pod(int host_index, PodSpec spec, WorkloadFactory factory) {
  ARV_ASSERT_MSG(!in_host_phase_, "mutations are serial-phase only");
  ARV_ASSERT(host_index >= 0 && host_index < host_count());
  ARV_ASSERT_MSG(host_up(host_index), "cannot create a pod on a down host");
  if (spec.name.empty()) {
    spec.name = "pod-" + std::to_string(pods_.size());
  }
  Pod pod;
  pod.id = static_cast<int>(pods_.size());
  pod.spec = std::move(spec);
  pod.host = host_index;
  pod.factory = std::move(factory);
  HostState& state = hosts_[static_cast<std::size_t>(host_index)];
  state.requested_millicpu += pod.spec.resources.request_millicpu;
  state.requested_memory += pod.spec.resources.request_memory;
  ++state.pods;
  pods_.push_back(std::move(pod));
  land_pod(pods_.back());
  return pods_.back().id;
}

void Cluster::land_pod(Pod& pod) {
  sync_host(pod.host);  // a frozen target catches up before anything lands
  mark_host_dirty(pod.host);
  HostState& state = hosts_[static_cast<std::size_t>(pod.host)];
  ARV_ASSERT_MSG(state.up, "cannot land a pod on a down host");
  container::ContainerConfig cgroup_config = container::pod_container(
      pod.spec.name, pod.spec.resources, pod.spec.enable_view);
  if (!pod.spec.view_policy.empty()) {
    cgroup_config.view_params.cpu_policy = pod.spec.view_policy;
    cgroup_config.view_params.mem_policy = pod.spec.view_policy;
  }
  if (pod.spec.cpu_mode == CpuMode::kBurstable) {
    // Throttle-free mode: keep the shares weight, never set a CFS quota.
    // Applied at every landing so the mode survives migration and failover.
    cgroup_config.cfs_quota_us = kUnlimited;
  }
  pod.container = &state.runtime->run(cgroup_config);
  if (pod.factory) {
    pod.workload = pod.factory(*state.host, *pod.container);
  }
  pod.placed_at = now_;
}

void Cluster::harvest_stats(Pod& pod) {
  if (pod.workload == nullptr) {
    return;
  }
  if (server::WorkerPoolServer* sink = pod.workload->request_sink()) {
    pod.archived.merge(sink->stats());
    // Requests accepted but still queued die with the sink: teardown
    // (migration freeze, stop, crash) drops the accept queue.
    pod.lost += sink->queue_depth();
  }
}

void Cluster::stop_pod(int pod_id) {
  ARV_ASSERT_MSG(!in_host_phase_, "mutations are serial-phase only");
  Pod& pod = pods_.at(static_cast<std::size_t>(pod_id));
  ARV_ASSERT_MSG(pod.host >= 0, "pod is already stopped");
  sync_host(pod.host);
  mark_host_dirty(pod.host);
  if (pod.running()) {
    harvest_stats(pod);
    pod.workload.reset();  // detaches from the source scheduler
    pod.container->stop();
    pod.container = nullptr;
  } else if (pod.in_flight()) {
    // The flight was already harvested and torn down at departure; cancel
    // the landing so the target never materializes a stopped pod, and fall
    // through to release the reservation the migration took on the target.
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [&pod](const PendingMigration& flight) {
                                    return flight.pod == pod.id;
                                  }),
                   pending_.end());
  }
  // Failed pods only need their ledger slot released.
  HostState& state = hosts_[static_cast<std::size_t>(pod.host)];
  state.requested_millicpu -= pod.spec.resources.request_millicpu;
  state.requested_memory -= pod.spec.resources.request_memory;
  --state.pods;
  pod.host = -1;
  pod.failed = false;
}

void Cluster::migrate_pod(int pod_id, int target_host) {
  ARV_ASSERT_MSG(!in_host_phase_, "mutations are serial-phase only");
  Pod& pod = pods_.at(static_cast<std::size_t>(pod_id));
  ARV_ASSERT(target_host >= 0 && target_host < host_count());
  ARV_ASSERT_MSG(pod.running(), "cannot migrate a stopped or in-flight pod");
  ARV_ASSERT_MSG(pod.host != target_host, "pod is already on the target host");
  ARV_ASSERT_MSG(host_up(target_host), "cannot migrate toward a down host");
  mark_host_dirty(pod.host);
  mark_host_dirty(target_host);
  HostState& source = hosts_[static_cast<std::size_t>(pod.host)];
  // Cost model: freeze grows with the state that must move. Read before the
  // container (and its memory charges) is torn down.
  const Bytes state_bytes =
      source.host->memory().committed(pod.container->cgroup());
  const SimDuration freeze =
      config_.migration_freeze +
      state_bytes * units::sec / config_.migration_bandwidth_per_sec;

  harvest_stats(pod);
  pod.workload.reset();
  pod.container->stop();
  pod.container = nullptr;
  source.requested_millicpu -= pod.spec.resources.request_millicpu;
  source.requested_memory -= pod.spec.resources.request_memory;
  --source.pods;

  // Reserve the target slot for the whole flight.
  HostState& target = hosts_[static_cast<std::size_t>(target_host)];
  target.requested_millicpu += pod.spec.resources.request_millicpu;
  target.requested_memory += pod.spec.resources.request_memory;
  ++target.pods;
  pod.host = target_host;
  ++pod.migrations;
  ++migrations_;
  pending_.push_back({now_ + freeze, next_migration_seq_++, pod.id});
  ARV_LOG(kDebug, "cluster", "migrating pod %d -> h%d (freeze %lld us)",
          pod.id, target_host, static_cast<long long>(freeze));
}

void Cluster::settle_migrations() {
  if (pending_.empty()) {
    return;
  }
  // Due flights land in (due, seq) order; the vector stays tiny (a
  // rebalancer issues at most a migration or two per round).
  std::vector<PendingMigration> still_pending;
  std::vector<PendingMigration> due;
  for (const PendingMigration& flight : pending_) {
    (flight.due <= now_ ? due : still_pending).push_back(flight);
  }
  std::sort(due.begin(), due.end(),
            [](const PendingMigration& a, const PendingMigration& b) {
              return a.due != b.due ? a.due < b.due : a.seq < b.seq;
            });
  pending_ = std::move(still_pending);
  for (const PendingMigration& flight : due) {
    land_pod(pods_.at(static_cast<std::size_t>(flight.pod)));
  }
}

void Cluster::fail_pod(Pod& pod) {
  if (pod.host >= 0) {
    mark_host_dirty(pod.host);
  }
  harvest_stats(pod);
  pod.workload.reset();
  if (pod.container != nullptr) {
    pod.container->stop();
    pod.container = nullptr;
  }
  pod.failed = true;
  pod.crashed_at = now_;
}

void Cluster::crash_host(int host_index) {
  ARV_ASSERT_MSG(!in_host_phase_, "mutations are serial-phase only");
  ARV_ASSERT(host_index >= 0 && host_index < host_count());
  sync_host(host_index);  // a crash observes a host at cluster time, always
  mark_host_dirty(host_index);
  HostState& state = hosts_[static_cast<std::size_t>(host_index)];
  ARV_ASSERT_MSG(state.up, "host is already down");
  state.up = false;
  ++host_crashes_;
  for (Pod& pod : pods_) {
    if (pod.host != host_index) {
      continue;
    }
    if (pod.running()) {
      fail_pod(pod);
    } else if (pod.in_flight()) {
      // A flight toward a crashing host is lost mid-copy: the source side
      // already tore the replica down, so the pod just fails in place on
      // the (down) target and waits for failover like the rest.
      pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                    [&pod](const PendingMigration& flight) {
                                      return flight.pod == pod.id;
                                    }),
                     pending_.end());
      pod.failed = true;
      pod.crashed_at = now_;
    }
  }
  ARV_LOG(kWarn, "cluster", "host h%d crashed (%d pods lost)", host_index,
          state.pods);
}

void Cluster::reboot_host(int host_index) {
  ARV_ASSERT_MSG(!in_host_phase_, "mutations are serial-phase only");
  ARV_ASSERT(host_index >= 0 && host_index < host_count());
  sync_host(host_index);
  mark_host_dirty(host_index);
  HostState& state = hosts_[static_cast<std::size_t>(host_index)];
  ARV_ASSERT_MSG(!state.up, "host is not down");
  state.up = true;
  // Fresh boot: injected host-memory pressure does not survive a reboot.
  state.host->memory().reserve_host_memory(0);
  ARV_LOG(kInfo, "cluster", "host h%d rebooted", host_index);
}

void Cluster::cordon_host(int host_index, bool cordoned) {
  ARV_ASSERT_MSG(!in_host_phase_, "mutations are serial-phase only");
  ARV_ASSERT(host_index >= 0 && host_index < host_count());
  HostState& state = hosts_[static_cast<std::size_t>(host_index)];
  if (state.cordoned == cordoned) {
    return;
  }
  mark_host_dirty(host_index);
  state.cordoned = cordoned;
  ARV_LOG(kInfo, "cluster", "host h%d %s", host_index,
          cordoned ? "cordoned" : "uncordoned");
}

int Cluster::active_hosts() const {
  int active = 0;
  for (const HostState& state : hosts_) {
    if (state.up && !state.cordoned) {
      ++active;
    }
  }
  return active;
}

void Cluster::crash_pod(int pod_id) {
  ARV_ASSERT_MSG(!in_host_phase_, "mutations are serial-phase only");
  Pod& pod = pods_.at(static_cast<std::size_t>(pod_id));
  ARV_ASSERT_MSG(pod.running(), "cannot crash a pod that is not running");
  fail_pod(pod);
  ++pod_crashes_;
  ARV_LOG(kInfo, "cluster", "pod %d crashed on h%d", pod.id, pod.host);
}

void Cluster::restart_pod(int pod_id) {
  ARV_ASSERT_MSG(!in_host_phase_, "mutations are serial-phase only");
  Pod& pod = pods_.at(static_cast<std::size_t>(pod_id));
  ARV_ASSERT_MSG(pod.failed && pod.host >= 0, "pod is not awaiting restart");
  ARV_ASSERT_MSG(host_up(pod.host), "cannot restart a pod on a down host");
  pod.failed = false;
  ++pod.restarts;
  ++restarts_;
  land_pod(pod);
}

void Cluster::failover_pod(int pod_id, int target_host) {
  ARV_ASSERT_MSG(!in_host_phase_, "mutations are serial-phase only");
  Pod& pod = pods_.at(static_cast<std::size_t>(pod_id));
  ARV_ASSERT(target_host >= 0 && target_host < host_count());
  ARV_ASSERT_MSG(pod.failed && pod.host >= 0, "pod is not awaiting failover");
  ARV_ASSERT_MSG(host_up(target_host), "cannot fail over to a down host");
  ARV_ASSERT_MSG(pod.host != target_host, "failover target is the pod's host");
  mark_host_dirty(pod.host);
  HostState& source = hosts_[static_cast<std::size_t>(pod.host)];
  source.requested_millicpu -= pod.spec.resources.request_millicpu;
  source.requested_memory -= pod.spec.resources.request_memory;
  --source.pods;
  HostState& target = hosts_[static_cast<std::size_t>(target_host)];
  target.requested_millicpu += pod.spec.resources.request_millicpu;
  target.requested_memory += pod.spec.resources.request_memory;
  ++target.pods;
  pod.host = target_host;
  pod.failed = false;
  ++pod.failovers;
  ++failovers_;
  land_pod(pod);
  ARV_LOG(kInfo, "cluster", "pod %d failed over -> h%d", pod.id, target_host);
}

void Cluster::dispatch_components() {
  for (Dispatch& dispatch : components_) {
    if (dispatch.next > now_) {
      continue;
    }
    dispatch.component->tick(now_, now_ - dispatch.last);
    dispatch.last = now_;
    const SimDuration period =
        std::max(dispatch.component->tick_period(), config_.tick);
    dispatch.next = now_ + period;
  }
}

HostView Cluster::host_view(int index) const {
  const HostState& state = hosts_.at(static_cast<std::size_t>(index));
  HostView view;
  view.index = index;
  // Flat subsystem reads only — Host::snapshot() builds per-container name
  // strings, far too heavy for a per-tick arena refresh over 256 hosts.
  // Every field is valid for a frozen host: free memory and the ledger do
  // not change while frozen, and window_slack is maintained analytically.
  view.capacity_millicpu = static_cast<std::int64_t>(state.host->cpus()) * 1000;
  view.capacity_memory = state.host->ram();
  view.requested_millicpu = state.requested_millicpu;
  view.requested_memory = state.requested_memory;
  view.pods = state.pods;
  // window_slack is idle CPU-time over the observation window; normalize to
  // milli-CPUs (1000 = one core fully idle across the window).
  view.slack_millicpu = state.window_slack * 1000 / config_.observe_window;
  view.free_memory = state.host->memory().free_memory();
  view.up = state.up;
  view.cordoned = state.cordoned;
  return view;
}

const FleetView& Cluster::fleet_view() {
  ARV_ASSERT_MSG(!in_host_phase_, "fleet reads are serial-phase only");
  if (fleet_dirty_) {
    refresh_fleet(/*boundary=*/false);
  }
  return cur_;
}

void Cluster::invalidate_fleet_view() {
  fleet_dirty_ = true;
  for (HostState& state : hosts_) {
    ++state.view_gen;
  }
}

void Cluster::attach_profiles(const ProfileStore* profiles) {
  profiles_ = profiles;
  invalidate_fleet_view();
}

void Cluster::refresh_fleet(bool boundary) {
  // Rotate buffers so `old` holds the last published content and cur_ holds
  // recycled allocations to overwrite. Boundary refreshes publish into the
  // prev_/cur_ pair (diff's per-tick baseline); lazy mid-tick refreshes
  // recycle scratch_ and leave prev_ untouched.
  FleetView& old = boundary ? prev_ : scratch_;
  std::swap(old, cur_);
  rebuild_fleet(old);
  if (!cur_.same_content(old)) {
    ++fleet_gen_;
  }
  cur_.generation = fleet_gen_;
  cur_.at = now_;
  cur_.profiles = profiles_;
  fleet_dirty_ = false;
  window_rolled_ = false;
  for (HostState& state : hosts_) {
    state.refreshed_gen = state.view_gen;
  }
}

void Cluster::rebuild_fleet(const FleetView& old) {
  const std::size_t host_count_sz = hosts_.size();
  cur_.hosts.resize(host_count_sz);
  // A host row is re-observed only when something could have changed it:
  // the host stepped this tick, a mutator (or conservative non-const
  // accessor) touched it, or the slack window rolled for everyone. A frozen,
  // untouched host's observables are constant by the quiescence invariant,
  // so its row — and its pods' rows — are copied from the old snapshot.
  std::vector<char> rebuilt(host_count_sz, 0);
  for (std::size_t i = 0; i < host_count_sz; ++i) {
    const HostState& state = hosts_[i];
    const bool stepped = state.host->now() == now_;
    const bool touched = state.view_gen != state.refreshed_gen;
    if (!stepped && !touched && !window_rolled_ &&
        i < old.hosts.size()) {
      cur_.hosts[i] = old.hosts[i];
      ++rows_reused_;
    } else {
      cur_.hosts[i] = host_view(static_cast<int>(i));
      rebuilt[i] = 1;
    }
  }
  cur_.services = old.services;  // keeps copied rows' service indices valid
  cur_.pods.resize(pods_.size());
  for (std::size_t p = 0; p < pods_.size(); ++p) {
    const Pod& pod = pods_[p];
    const PodRow* before = p < old.pods.size() ? &old.pods[p] : nullptr;
    const bool new_host_rebuilt =
        pod.host >= 0 && rebuilt[static_cast<std::size_t>(pod.host)] != 0;
    const bool old_host_rebuilt =
        before != nullptr && before->host >= 0 &&
        before->host < static_cast<int>(host_count_sz) &&
        rebuilt[static_cast<std::size_t>(before->host)] != 0;
    if (before != nullptr && before->host == pod.host && !new_host_rebuilt &&
        !old_host_rebuilt) {
      cur_.pods[p] = *before;
      ++rows_reused_;
      continue;
    }
    PodRow row;
    row.id = pod.id;
    row.host = pod.host;
    row.service = cur_.intern_service(service_key(pod));
    row.request_millicpu = pod.spec.resources.request_millicpu;
    row.request_memory = pod.spec.resources.request_memory;
    row.running = pod.running();
    row.in_flight = pod.in_flight();
    row.failed = pod.failed;
    row.placed_at = pod.placed_at;
    if (pod.running()) {
      // Safe without syncing: committed bytes are constant while frozen.
      row.committed = hosts_[static_cast<std::size_t>(pod.host)]
                          .host->memory()
                          .committed(pod.container->cgroup());
    }
    if (profiles_ != nullptr) {
      const PodProfile profile = profiles_->profile(pod.id);
      row.cpu_p50_millicpu = profile.cpu_p50_millicpu;
      row.cpu_p95_millicpu = profile.cpu_p95_millicpu;
      row.mem_p50 = profile.mem_p50;
      row.mem_p95 = profile.mem_p95;
      row.burst_permille = profile.burst_permille;
      row.samples = profile.samples;
    }
    cur_.pods[p] = row;
  }
  cur_.rebuild_pod_index();
}

}  // namespace arv::cluster
