#include "src/cluster/router.h"

#include "src/server/server_runtime.h"
#include "src/util/assert.h"

namespace arv::cluster {

RequestRouter::RequestRouter(Cluster& cluster, RouterConfig config)
    : cluster_(cluster), config_(config) {
  ARV_ASSERT(config_.arrivals_per_sec >= 0);
}

void RequestRouter::add_replica(int pod_id) {
  server::WorkerPoolServer* s = sink(pod_id);
  ARV_ASSERT_MSG(s != nullptr || cluster_.pod(pod_id).in_flight(),
                 "replica pod has no request sink");
  replicas_.push_back(pod_id);
}

server::WorkerPoolServer* RequestRouter::sink(int pod_id) const {
  const Pod& pod = cluster_.pod(pod_id);
  return pod.workload == nullptr ? nullptr : pod.workload->request_sink();
}

void RequestRouter::tick(SimTime now, SimDuration dt) {
  accumulator_ += config_.arrivals_per_sec * static_cast<double>(dt) /
                  static_cast<double>(units::sec);
  while (accumulator_ >= 1.0) {
    accumulator_ -= 1.0;
    // Join-shortest-queue over the replicas that are up right now; ties go
    // to the earliest-added replica.
    server::WorkerPoolServer* best = nullptr;
    std::size_t best_depth = 0;
    for (const int pod_id : replicas_) {
      server::WorkerPoolServer* s = sink(pod_id);
      if (s == nullptr) {
        continue;  // stopped, or frozen mid-migration
      }
      if (best == nullptr || s->queue_depth() < best_depth) {
        best = s;
        best_depth = s->queue_depth();
      }
    }
    if (best == nullptr) {
      ++unroutable_;
      continue;
    }
    if (best->inject_request(now)) {
      ++routed_;
    } else {
      ++dropped_;
    }
  }
}

server::RequestStats RequestRouter::aggregate() const {
  server::RequestStats total;
  for (const int pod_id : replicas_) {
    total.merge(cluster_.pod(pod_id).archived);
    if (const server::WorkerPoolServer* s = sink(pod_id)) {
      total.merge(s->stats());
    }
  }
  return total;
}

}  // namespace arv::cluster
