#include "src/cluster/router.h"

#include <algorithm>

#include "src/cluster/overload.h"
#include "src/obs/trace_recorder.h"
#include "src/server/server_runtime.h"
#include "src/util/assert.h"

namespace arv::cluster {

RouterConfig RouterConfig::validated() const {
  RouterConfig v = *this;
  v.arrivals_per_sec = std::max(0.0, v.arrivals_per_sec);
  v.max_retries = std::max(0, v.max_retries);
  v.breaker_threshold = std::max(1, v.breaker_threshold);
  if (v.breaker_open <= 0) {
    v.breaker_open = RouterConfig{}.breaker_open;
  }
  return v;
}

RequestRouter::RequestRouter(Cluster& cluster, RouterConfig config)
    : cluster_(cluster), config_(config.validated()) {
  if (obs::TraceRecorder* trace = cluster_.trace()) {
    trace->add_counter("router.generated", "", [this] {
      return static_cast<std::int64_t>(generated_);
    });
    trace->add_counter("router.routed", "", [this] {
      return static_cast<std::int64_t>(routed_);
    });
    trace->add_counter("router.unroutable", "", [this] {
      return static_cast<std::int64_t>(unroutable_);
    });
    trace->add_counter("router.dropped", "", [this] {
      return static_cast<std::int64_t>(dropped_);
    });
    trace->add_counter("router.shed", "",
                       [this] { return static_cast<std::int64_t>(shed_); });
    trace->add_counter("router.retries", "", [this] {
      return static_cast<std::int64_t>(retries_);
    });
    trace->add_counter("router.rejected", "", [this] {
      return static_cast<std::int64_t>(rejected_);
    });
    trace->add_counter("router.degraded", "", [this] {
      return static_cast<std::int64_t>(degraded_);
    });
    trace->add_counter("router.breaker_trips", "", [this] {
      return static_cast<std::int64_t>(breaker_trips_);
    });
    trace->add_gauge("router.open_breakers", "",
                     [this] { return open_breakers(); });
  }
}

bool RequestRouter::add_replica(int pod_id) {
  server::WorkerPoolServer* s = sink(pod_id);
  ARV_ASSERT_MSG(s != nullptr || cluster_.pod(pod_id).in_flight(),
                 "replica pod has no request sink");
  const bool duplicate =
      std::any_of(replicas_.begin(), replicas_.end(),
                  [pod_id](const Replica& r) { return r.pod == pod_id; });
  if (duplicate) {
    return false;  // already in rotation; double arrivals would corrupt JSQ
  }
  Replica replica;
  replica.pod = pod_id;
  replicas_.push_back(replica);
  return true;
}

void RequestRouter::set_rate(double arrivals_per_sec) {
  config_.arrivals_per_sec = std::max(0.0, arrivals_per_sec);
}

void RequestRouter::attach_admission(AdmissionController* admission, int slot) {
  ARV_ASSERT_MSG(admission_ == nullptr || admission == admission_,
                 "router already has an admission controller");
  admission_ = admission;
  admission_slot_ = slot;
}

int RequestRouter::live_replicas() const {
  const FleetView& fleet = cluster_.fleet_view();
  int live = 0;
  for (const Replica& replica : replicas_) {
    if (replica.pod < fleet.pod_count() &&
        fleet.pods[static_cast<std::size_t>(replica.pod)].running &&
        sink(replica.pod) != nullptr) {
      ++live;
    }
  }
  return live;
}

server::WorkerPoolServer* RequestRouter::sink(int pod_id) const {
  Pod& pod = cluster_.pod(pod_id);
  return pod.workload == nullptr ? nullptr : pod.workload->request_sink();
}

BreakerState RequestRouter::breaker(int pod_id) const {
  for (const Replica& replica : replicas_) {
    if (replica.pod == pod_id) {
      return replica.state;
    }
  }
  ARV_ASSERT_MSG(false, "pod is not a replica of this router");
  return BreakerState::kClosed;
}

int RequestRouter::open_breakers() const {
  int open = 0;
  for (const Replica& replica : replicas_) {
    open += replica.state == BreakerState::kOpen ? 1 : 0;
  }
  return open;
}

bool RequestRouter::admits(Replica& replica, SimTime now) {
  switch (replica.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now >= replica.open_until) {
        replica.state = BreakerState::kHalfOpen;  // one probe goes through
        return true;
      }
      return false;
    case BreakerState::kHalfOpen:
      // Injection resolves synchronously, so a half-open replica has no
      // probe outstanding: the next request is (another) probe.
      return true;
  }
  return false;
}

void RequestRouter::record_success(Replica& replica) {
  replica.consecutive_failures = 0;
  if (replica.state != BreakerState::kClosed) {
    replica.state = BreakerState::kClosed;
    ++breaker_closes_;
  }
}

void RequestRouter::record_failure(Replica& replica, SimTime now) {
  ++replica.consecutive_failures;
  const bool reopen = replica.state == BreakerState::kHalfOpen;
  const bool trip = replica.state == BreakerState::kClosed &&
                    replica.consecutive_failures >= config_.breaker_threshold;
  if (reopen || trip) {
    replica.state = BreakerState::kOpen;
    replica.open_until = now + config_.breaker_open;
    ++breaker_trips_;
  }
}

void RequestRouter::route_one(SimTime now, CpuTime cost) {
  ++generated_;
  // Front-door admission (overload.h): criticality-class shedding and the
  // tenant's token bucket run before any replica is considered, so rejected
  // requests cost nothing downstream.
  if (admission_ != nullptr && !admission_->admit(admission_slot_, now)) {
    ++rejected_;
    return;
  }
  ++admitted_;
  // Live = the shared fleet snapshot shows the replica running AND its sink
  // exists right now (not stopped, crashed, or frozen mid-migration);
  // admitted = live and its breaker lets this attempt pass. The snapshot is
  // lazily fresh, so a replica that stopped earlier this round is already
  // out of rotation here — the router and the control loops act on the same
  // view of the fleet.
  const FleetView& fleet = cluster_.fleet_view();
  bool any_live = false;
  candidates_.clear();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const int pod = replicas_[i].pod;
    if (pod >= fleet.pod_count() ||
        !fleet.pods[static_cast<std::size_t>(pod)].running ||
        sink(pod) == nullptr) {
      continue;
    }
    any_live = true;
    if (admits(replicas_[i], now)) {
      candidates_.push_back(i);
    }
  }
  if (!any_live) {
    ++unroutable_;  // the fleet has no replica at all
    return;
  }
  if (candidates_.empty()) {
    ++shed_;  // replicas exist but every breaker is open: protect them
    return;
  }
  // Brownout is sampled once per request: the whole request is served
  // degraded or not, however many attempts it takes.
  const bool degraded = admission_ != nullptr && admission_->brownout();
  // Bounded retry: attempt the JSQ-best candidate, then the next-best on a
  // refused injection, never re-trying a replica within one request. Every
  // retry beyond the first attempt draws on the fleet-wide retry budget, so
  // a failover cannot multiply offered load into a retry storm.
  const int max_attempts = 1 + config_.max_retries;
  for (int attempt = 0; attempt < max_attempts && !candidates_.empty();
       ++attempt) {
    if (attempt > 0 && admission_ != nullptr && !admission_->allow_retry()) {
      break;  // budget exhausted: give up instead of amplifying
    }
    std::size_t best_pos = 0;
    std::size_t best_depth = 0;
    for (std::size_t pos = 0; pos < candidates_.size(); ++pos) {
      const std::size_t depth = sink(replicas_[candidates_[pos]].pod)->queue_depth();
      if (pos == 0 || depth < best_depth) {
        best_pos = pos;
        best_depth = depth;
      }
    }
    Replica& replica = replicas_[candidates_[best_pos]];
    ++attempts_;
    if (attempt > 0) {
      ++retries_;
    }
    if (sink(replica.pod)->inject_request(now, cost, degraded)) {
      record_success(replica);
      ++routed_;
      if (degraded) {
        ++degraded_;
      }
      if (admission_ != nullptr) {
        admission_->on_success();
      }
      return;
    }
    record_failure(replica, now);
    candidates_.erase(candidates_.begin() +
                      static_cast<std::ptrdiff_t>(best_pos));
  }
  ++dropped_;  // every allowed attempt was refused (or the budget ran dry)
}

void RequestRouter::inject_batch(SimTime now, const CpuTime* costs,
                                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    route_one(now, costs[i]);
  }
}

void RequestRouter::tick(SimTime now, SimDuration dt) {
  accumulator_ += config_.arrivals_per_sec * static_cast<double>(dt) /
                  static_cast<double>(units::sec);
  while (accumulator_ >= 1.0) {
    accumulator_ -= 1.0;
    route_one(now);
  }
}

server::RequestStats RequestRouter::aggregate() const {
  server::RequestStats total;
  for (const Replica& replica : replicas_) {
    total.merge(cluster_.pod(replica.pod).archived);
    if (const server::WorkerPoolServer* s = sink(replica.pod)) {
      total.merge(s->stats());
    }
  }
  return total;
}

std::uint64_t RequestRouter::queued() const {
  std::uint64_t depth = 0;
  for (const Replica& replica : replicas_) {
    if (const server::WorkerPoolServer* s = sink(replica.pod)) {
      depth += s->queue_depth();
    }
  }
  return depth;
}

}  // namespace arv::cluster
