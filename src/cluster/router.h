// RequestRouter — the fleet's front door.
//
// Generates an open-loop request stream (like the per-server generators in
// server_runtime, but cluster-wide) and routes each request to one replica's
// WorkerPoolServer via inject_request. The balancing rule is
// join-shortest-queue over the replicas that are currently running; ties go
// to the lowest replica index, so routing consumes no randomness and cannot
// perturb placement's rng stream.
//
// Replicas are pods (by id), not raw server pointers: a migrating replica
// simply drops out of rotation during its freeze and rejoins when it lands,
// and its request history survives in Pod::archived. A request that arrives
// while *no* replica is up counts as unroutable (the fleet-level error the
// paper's per-host metrics cannot see).
#pragma once

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/sim/engine.h"

namespace arv::cluster {

struct RouterConfig {
  /// Open-loop arrival rate across the whole fleet.
  double arrivals_per_sec = 800;
};

class RequestRouter : public sim::TickComponent {
 public:
  RequestRouter(Cluster& cluster, RouterConfig config = {});

  /// Add a pod to the rotation. The pod's workload must expose a
  /// request_sink (see PodWorkload); pods without one are rejected.
  void add_replica(int pod_id);

  // --- sim::TickComponent (dispatched by Cluster) ---------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "cluster.router"; }
  SimDuration tick_period() const override { return 0; }  // every tick

  std::uint64_t routed() const { return routed_; }
  std::uint64_t unroutable() const { return unroutable_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Fleet-wide request stats: every replica's live sink merged with the
  /// history harvested across migrations (Pod::archived).
  server::RequestStats aggregate() const;

 private:
  server::WorkerPoolServer* sink(int pod_id) const;

  Cluster& cluster_;
  RouterConfig config_;
  std::vector<int> replicas_;  ///< pod ids, rotation order = add order
  double accumulator_ = 0;
  std::uint64_t routed_ = 0;
  std::uint64_t unroutable_ = 0;
  std::uint64_t dropped_ = 0;  ///< accepted by JSQ but refused by the sink
};

}  // namespace arv::cluster
