// RequestRouter — the fleet's front door.
//
// Generates an open-loop request stream (like the per-server generators in
// server_runtime, but cluster-wide) and routes each request to one replica's
// WorkerPoolServer via inject_request. The balancing rule is
// join-shortest-queue over the replicas that are currently admitting; ties go
// to the lowest replica index, so routing consumes no randomness and cannot
// perturb placement's rng stream.
//
// Replicas are pods (by id), not raw server pointers: a migrating replica
// simply drops out of rotation during its freeze and rejoins when it lands,
// and its request history survives in Pod::archived. A request that arrives
// while *no* replica is up counts as unroutable (the fleet-level error the
// paper's per-host metrics cannot see).
//
// Failure handling (see docs/FAULTS.md): a refused injection (accept-queue
// overflow) is retried on the next-best replica, up to `max_retries` extra
// attempts per request. Each replica carries a circuit breaker —
// closed → open after `breaker_threshold` consecutive refusals, open →
// half-open after `breaker_open` elapses (one probe request), half-open →
// closed on a served probe or back to open on a refused one. When replicas
// exist but every one is dead-or-open, the request is *shed* at the front
// door, so "the fleet has no replicas" (unroutable) and "the fleet is
// protecting itself" (shed) stay distinguishable. Every decision is
// counter-driven: routing consumes no randomness even under faults.
//
// Overload (see overload.h and docs/FAULTS.md): with an AdmissionController
// attached, every generated request first passes its front door (criticality
// shedding + per-tenant token bucket → rejected), retries draw on a
// fleet-wide budget refilled by successes, and while the controller holds
// brownout every routed request is served as a degraded (cheaper) response.
#pragma once

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/sim/engine.h"

namespace arv::cluster {

class AdmissionController;

struct RouterConfig {
  /// Open-loop arrival rate across the whole fleet.
  double arrivals_per_sec = 800;
  /// Extra attempts after a refused injection (0 disables retry).
  int max_retries = 2;
  /// Consecutive refusals that open a replica's circuit breaker.
  int breaker_threshold = 5;
  /// How long an open breaker blocks a replica before one probe request is
  /// let through (half-open).
  SimDuration breaker_open = 500 * units::msec;

  /// Copy with every out-of-range knob clamped to its nearest legal value
  /// (negative rate/retries → 0, threshold < 1 → 1, non-positive
  /// breaker_open → the default). The constructor applies this, so a bad
  /// config degrades to a sane one instead of corrupting breaker state.
  RouterConfig validated() const;
};

/// One replica's circuit-breaker state (closed admits, open blocks,
/// half-open admits a single probe).
enum class BreakerState { kClosed, kOpen, kHalfOpen };

class RequestRouter : public sim::TickComponent {
 public:
  RequestRouter(Cluster& cluster, RouterConfig config = {});

  /// Add a pod to the rotation. The pod's workload must expose a
  /// request_sink (see PodWorkload); pods without one are rejected.
  /// Duplicate pod ids are rejected (false): enrolling the same replica
  /// twice would double its arrivals and corrupt JSQ + aggregate stats.
  bool add_replica(int pod_id);

  /// Change the open-loop arrival rate mid-run (diurnal curves, flash
  /// crowds). The fractional accumulator carries over, so rate changes never
  /// create or destroy requests. Negative rates clamp to zero.
  void set_rate(double arrivals_per_sec);
  double rate() const { return config_.arrivals_per_sec; }

  /// Open-loop external injection (the workload engine's front door): one
  /// request arriving `now` with its own CPU cost (0 = the replica's default
  /// service_cpu). Exactly the same disposition pipeline as self-generated
  /// arrivals — retries, breakers, shed/unroutable accounting all apply.
  void inject(SimTime now, CpuTime cost = 0) { route_one(now, cost); }

  /// Batched per-tick injection: `costs[0..n)` requests all arriving `now`.
  /// One fleet-snapshot pull serves the whole batch and the candidate
  /// scratch is pooled, so the generator side stays O(n) with no per-request
  /// allocation (the million-requests-per-sim-day fast path).
  void inject_batch(SimTime now, const CpuTime* costs, std::size_t n);

  /// Replicas currently enrolled (live or not; rotation never shrinks).
  int replica_count() const { return static_cast<int>(replicas_.size()); }
  /// Pod id of the i-th enrolled replica (rotation order).
  int replica_pod(int index) const {
    return replicas_.at(static_cast<std::size_t>(index)).pod;
  }
  /// Replicas the shared fleet snapshot shows running with a live sink — the
  /// denominator of the overload controller's queue-pressure signal.
  int live_replicas() const;

  /// Bind the front-door overload controller (see overload.h): every
  /// generated request passes its admission gate, retries draw on its
  /// fleet-wide budget, and routed requests are served degraded while it
  /// holds brownout. `slot` is this router's tenant slot in the controller.
  void attach_admission(AdmissionController* admission, int slot);

  const RouterConfig& config() const { return config_; }

  // --- sim::TickComponent (dispatched by Cluster) ---------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "cluster.router"; }
  SimDuration tick_period() const override { return 0; }  // every tick

  // --- per-request dispositions (sum to generated()) ------------------------
  // generated == admitted + rejected, and
  // admitted == routed + dropped + unroutable + shed (without an admission
  // controller every request is admitted, so the old identity still holds).
  std::uint64_t generated() const { return generated_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t routed() const { return routed_; }
  std::uint64_t unroutable() const { return unroutable_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t shed() const { return shed_; }
  /// Routed requests served as brownout (degraded) responses; <= routed().
  std::uint64_t degraded() const { return degraded_; }
  // --- attempt-level accounting ---------------------------------------------
  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t retries() const { return retries_; }
  // --- breaker telemetry ----------------------------------------------------
  std::uint64_t breaker_trips() const { return breaker_trips_; }
  std::uint64_t breaker_closes() const { return breaker_closes_; }
  BreakerState breaker(int pod_id) const;
  int open_breakers() const;

  /// Fleet-wide request stats: every replica's live sink merged with the
  /// history harvested across migrations (Pod::archived).
  server::RequestStats aggregate() const;

  /// Sum of the live replicas' accept-queue depths (requests routed but not
  /// yet completed and not lost to a teardown).
  std::uint64_t queued() const;

 private:
  struct Replica {
    int pod = -1;
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    SimTime open_until = 0;
  };

  server::WorkerPoolServer* sink(int pod_id) const;
  void route_one(SimTime now, CpuTime cost = 0);
  void record_success(Replica& replica);
  void record_failure(Replica& replica, SimTime now);
  /// Breaker gate for this attempt; promotes open → half-open when due.
  bool admits(Replica& replica, SimTime now);

  Cluster& cluster_;
  RouterConfig config_;
  AdmissionController* admission_ = nullptr;
  int admission_slot_ = -1;
  std::vector<Replica> replicas_;  ///< rotation order = add order
  /// Candidate scratch reused across route_one calls (capacity persists, so
  /// routing a request allocates nothing once the rotation is warm).
  std::vector<std::size_t> candidates_;
  double accumulator_ = 0;
  std::uint64_t generated_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t degraded_ = 0;
  std::uint64_t routed_ = 0;
  std::uint64_t unroutable_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t attempts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t breaker_trips_ = 0;
  std::uint64_t breaker_closes_ = 0;
};

}  // namespace arv::cluster
