// Placement strategies: which host should run the next pod?
//
// Cluster managers (Mesos/YARN/Kubernetes) place containers by *declared*
// requests and limits — exactly the static signal the paper's Algorithms 1/2
// show diverges from what a container can actually use. ARC-V
// (arXiv:2505.02964) and C-Balancer (arXiv:2009.08912) argue placement should
// instead consume the observed effective capacity. This registry holds both
// ends of that argument:
//
//   "requests"   kube-scheduler-style bin-packing on K8sResources requests —
//                the baseline every real cluster runs today. Feasibility and
//                scoring never look at what hosts are actually doing.
//   "effective"  scores hosts by observed slack CPU and free-memory headroom
//                (the signals the per-host Ns_Monitor machinery maintains),
//                so an overcommitted-but-idle host still accepts pods and a
//                saturated one does not.
//   "profile"    C-Balancer-style: scores on *profiled* p95 usage instead of
//                instantaneous slack, and anti-colocates pods whose services'
//                usage series are positively correlated (fleet_view.h,
//                profile.h). Falls back to request-sized estimates for
//                unprofiled pods, so it degrades to "effective"-like behavior
//                on a cold fleet.
//
// Strategies decide from one shared FleetView snapshot (fleet_view.h) rather
// than a bare host array, so a strategy may consult per-pod rows (who already
// lives where, at what profiled load) as well as per-host headroom.
//
// The name-keyed registry mirrors core::PolicyRegistry: new strategies are
// one-file additions, selected per placement call by name.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/container/k8s.h"
#include "src/util/rng.h"
#include "src/util/types.h"

namespace arv::cluster {

/// How the kubelet mapping translates the pod's CPU *limit* into cgroup
/// knobs. "CPU-Limits kill Performance" (PAPERS.md) argues CFS quota is the
/// wrong primitive: shares already guarantee the weighted fair split under
/// contention, and a hard quota only converts idle cycles into throttle
/// stalls. kBurstable keeps the shares weight but never sets cfs_quota, so a
/// pod may soak up slack past its limit; kQuotaCapped is today's default.
enum class CpuMode {
  kQuotaCapped,  ///< limit_millicpu -> cfs_quota (kubelet default)
  kBurstable,    ///< shares only, quota unlimited (throttle-free)
};

/// A pod to place: a name, the Kubernetes resource spec, the view toggle.
struct PodSpec {
  std::string name;  ///< empty => the cluster assigns "pod-<N>"
  container::K8sResources resources;
  /// Create the adaptive resource view inside the pod's container.
  bool enable_view = true;
  /// CPU-limit enforcement mode; survives migration/failover re-landings.
  CpuMode cpu_mode = CpuMode::kQuotaCapped;
  /// Service the pod belongs to: replicas of one service share it, and the
  /// profile machinery aggregates/correlates per service. Empty => the pod
  /// name (every pod its own singleton service). Last so positional
  /// aggregate initializers keep working.
  std::string service;
  /// Adaptation policy for the pod's resource view ("paper", "static", or
  /// any registered name); empty keeps the container default. Applied at
  /// every landing, so it survives migration and failover — the knob the
  /// workload benchmarks flip to compare view policies per fleet.
  std::string view_policy;
};

/// What a strategy sees about one host at decision time. Declared numbers
/// come from the cluster's own bookkeeping of placed pods; observed numbers
/// from the host's snapshot (scheduler slack, free memory).
struct HostView {
  int index = 0;
  // --- capacity ------------------------------------------------------------
  std::int64_t capacity_millicpu = 0;  ///< online CPUs * 1000
  Bytes capacity_memory = 0;           ///< physical RAM
  // --- declared (sum of requests over pods currently on the host) ---------
  std::int64_t requested_millicpu = 0;
  Bytes requested_memory = 0;
  int pods = 0;
  // --- observed ------------------------------------------------------------
  /// Idle CPU over the last observation window, in milli-CPUs (1000 = one
  /// whole core sat unused). A fresh, never-observed host reports full idle.
  std::int64_t slack_millicpu = 0;
  Bytes free_memory = 0;
  /// False while the host is crashed (fault injection). Down hosts are
  /// infeasible for every strategy, whatever their other signals say.
  bool up = true;
  /// True while the cluster autoscaler holds the host out of service
  /// (draining, or parked as spare capacity). Cordoned hosts still tick and
  /// heartbeat — they are administratively unschedulable, not dead.
  bool cordoned = false;

  /// Strategies place only on hosts that are both alive and uncordoned.
  bool schedulable() const { return up && !cordoned; }

  bool operator==(const HostView&) const = default;
};

struct FleetView;

class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;

  /// Registry name this instance was created under.
  virtual std::string name() const = 0;

  /// Batch-ordering rank: in place_all, pods place in ascending rank (stable
  /// within a rank, so submission order breaks rank ties). The default ranks
  /// everything 0; "requests" ranks by QoS class so BestEffort pods pack
  /// last, mirroring how kube-scheduler's queue orders contenders.
  virtual int queue_rank(const PodSpec& pod) const;

  /// Choose a host for `pod`, or -1 when no host fits. `fleet` is the shared
  /// cluster snapshot (fleet.hosts for headroom, fleet.pods for residents).
  /// `rng` breaks score ties (kube-scheduler also picks randomly among
  /// equal-score hosts); a strategy must consume randomness only for ties so
  /// placement stays deterministic under a fixed seed.
  virtual int select(const PodSpec& pod, const FleetView& fleet,
                     Rng& rng) const = 0;
};

/// Name-keyed strategy factory, mirroring core::PolicyRegistry. The built-in
/// strategies ("requests", "effective") are registered on first use.
class PlacementRegistry {
 public:
  using Factory = std::function<std::unique_ptr<PlacementStrategy>()>;

  /// The process-wide registry (the simulation is single-threaded).
  static PlacementRegistry& instance();

  /// Register/replace a factory under `name`.
  void register_strategy(const std::string& name, Factory factory);

  bool has(const std::string& name) const;

  /// Instantiate a strategy; nullptr for unknown names.
  std::unique_ptr<PlacementStrategy> make(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  PlacementRegistry();

  std::map<std::string, Factory> factories_;
};

/// Pick uniformly among the feasible hosts with the highest score (ties are
/// what kube-scheduler randomizes). `scores` uses < 0 for infeasible hosts.
/// Returns -1 when every host is infeasible. Shared by the built-ins.
int pick_best(const std::vector<std::int64_t>& scores, Rng& rng);

/// part/whole in per-mille, clamped to [0, 1000]. Widens through 128-bit so
/// byte-denominated inputs at Pi/Ei scale cannot overflow before the divide
/// (int64 `part * 1000` wraps past ~9.2 PB). Shared by placement scoring and
/// every cluster component that bands on slack/headroom fractions.
std::int64_t frac_permille(std::int64_t part, std::int64_t whole);

}  // namespace arv::cluster
