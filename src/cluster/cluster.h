// Cluster — a multi-host fleet on one deterministic clock.
//
// N simulated Hosts advance in lockstep. Every cluster tick runs two kinds
// of phase (see DESIGN.md §11):
//
//   1. The *host phase*: each host's engine advances one tick. Hosts are
//      independent within a tick (nothing crosses host boundaries until the
//      serial phases), so the phase is sharded statically across a fixed
//      worker pool — worker w steps hosts w, w+T, w+2T, ... — and closed
//      with a barrier. Hosts that are provably quiescent (Host::quiescent)
//      are skipped entirely: their clock freezes and the interval is
//      replayed analytically on first touch (sync-on-touch).
//   2. The *serial phases*, on the calling thread in a fixed order: slack
//      window accounting, due pod migrations, the FleetView snapshot refresh
//      (fleet_view.h — the one cluster-state object every fleet-wide
//      consumer reads), cluster-level components (rebalancer, router, fault
//      machinery), and the trace sample. Every serial stage iterates hosts
//      and pods in index order.
//
// Because the shard assignment never affects *what* a host computes — only
// *which thread* computes it — and every cross-host interaction happens in
// the index-ordered serial phases, the same configuration and seed produce
// byte-identical cluster traces at any thread count, skip setting, or
// machine: the same determinism contract the single-host layer pins with
// golden traces. threads=1 runs the shard loop inline with no pool
// machinery at all, so "the serial engine" is literally the same code path.
//
// The cluster owns the pods. A Pod couples a Kubernetes-style spec with the
// container currently realising it and the workload object running inside;
// migration is the Docker-era recipe (no live pre-copy): stop the container
// on the source, pay a freeze proportional to its committed memory, recreate
// the same cgroup configuration on the target, and re-create the workload
// from the pod's factory.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/fleet_view.h"
#include "src/container/container.h"
#include "src/container/host.h"
#include "src/obs/trace_recorder.h"
#include "src/server/server_runtime.h"
#include "src/sim/engine.h"
#include "src/sim/worker_pool.h"
#include "src/util/rng.h"

namespace arv::server {
class WorkerPoolServer;
}

namespace arv::cluster {

/// The workload running inside a pod's container. Implementations own
/// whatever Schedulable they attach (a server, a hog); destroying the object
/// must detach it, because migration destroys and re-creates workloads.
class PodWorkload {
 public:
  virtual ~PodWorkload() = default;

  /// Non-null when the workload serves an open-loop request stream the
  /// RequestRouter can target.
  virtual server::WorkerPoolServer* request_sink() { return nullptr; }
};

/// Builds a pod's workload inside a freshly-created container. Called once
/// at placement and again after every migration, so factories must be
/// re-invocable.
using WorkloadFactory =
    std::function<std::unique_ptr<PodWorkload>(container::Host&,
                                               container::Container&)>;

struct ClusterConfig {
  /// Shared tick length; every added host must be configured with the same.
  SimDuration tick = 1 * units::msec;
  /// Seeds the rng used for placement score tie-breaks.
  std::uint64_t seed = 42;
  /// Window over which per-host slack is accumulated for the "effective"
  /// strategy and the rebalancer (the observed-idle signal).
  SimDuration observe_window = 100 * units::msec;
  /// Migration cost model: freeze = base + committed_bytes / bandwidth.
  SimDuration migration_freeze = 50 * units::msec;
  Bytes migration_bandwidth_per_sec = 256 * units::MiB;
  /// Record the cluster-wide trace (per-host slack/free-mem/pods, migration
  /// and routing counters). Observation-only, like host tracing.
  bool enable_tracing = false;
  SimDuration trace_interval = 100 * units::msec;
  /// Worker threads for the host phase. 1 = step hosts inline on the
  /// calling thread; 0 = auto (hardware concurrency, clamped to 16).
  /// Changing the thread count never changes simulation results or traces.
  int threads = 1;
  /// Skip hosts whose tick would provably be a no-op (Host::quiescent):
  /// their clock freezes and catches up analytically on first touch. Exact
  /// by construction — traces are identical with the skip on or off; the
  /// flag exists so tests can pin that equivalence.
  bool skip_idle_hosts = true;
  /// Also trace wall-clock series (cluster.step_ms, cluster.threads). Off
  /// by default: wall time is machine- and thread-count-dependent, so these
  /// columns would break the byte-identical-trace contract. The always-on
  /// cluster.hosts_skipped series is deterministic and stays.
  bool trace_timing = false;
};

/// One scheduled pod. The container pointer is null while the pod is in
/// flight between hosts (migration freeze), after stop_pod, or after a
/// crash (failed == true, awaiting restart-in-place or failover).
struct Pod {
  int id = -1;
  PodSpec spec;
  int host = -1;  ///< current (or in-flight target) host; -1 once stopped
  container::Container* container = nullptr;  ///< owned by the host's runtime
  std::unique_ptr<PodWorkload> workload;
  WorkloadFactory factory;
  int migrations = 0;
  SimTime placed_at = 0;  ///< when the pod last landed on a host
  /// Request stats harvested from sinks that migration (or stop) destroyed,
  /// so fleet-level throughput/latency survive replica churn.
  server::RequestStats archived;
  /// The pod's process (or host) crashed; its host-ledger slot is retained
  /// until a RestartManager re-lands it in place or a FailureDetector fails
  /// it over to another host.
  bool failed = false;
  int restarts = 0;    ///< restart-in-place count (CrashLoopBackOff counter)
  int failovers = 0;   ///< crashes recovered by re-placement on another host
  SimTime crashed_at = 0;  ///< when the pod last crashed
  /// Requests that were queued (accepted, not yet completed) in a sink when
  /// its teardown — migration, stop, or crash — destroyed them.
  std::uint64_t lost = 0;

  bool running() const { return container != nullptr; }
  bool in_flight() const { return container == nullptr && host >= 0 && !failed; }
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- fleet topology (before run) -----------------------------------------
  /// Add one simulated machine; returns its index. `host_config.tick` must
  /// equal the cluster tick, and hosts must be added before time advances.
  int add_host(container::HostConfig host_config = {});

  int host_count() const { return static_cast<int>(hosts_.size()); }

  /// Access a host (or its runtime). Syncs a frozen host's clock first
  /// (sync-on-touch), so callers always observe a host at cluster time —
  /// the single serialization point the fault machinery relies on. The
  /// non-const overloads conservatively mark the host's fleet row stale
  /// (the caller may mutate anything behind the reference); over-marking
  /// costs a row rebuild, never a generation bump — see fleet_view().
  container::Host& host(int index) {
    sync_host(index);
    mark_host_dirty(index);
    return *hosts_.at(static_cast<std::size_t>(index)).host;
  }
  container::ContainerRuntime& runtime(int index) {
    sync_host(index);
    mark_host_dirty(index);
    return *hosts_.at(static_cast<std::size_t>(index)).runtime;
  }

  /// Register a cluster-level component (rebalancer, router), dispatched
  /// after all hosts advanced each tick — same TickComponent contract as
  /// sim::Engine (tick_period re-queried after each dispatch, registration
  /// order breaks due-time ties). Not owned.
  void add_component(sim::TickComponent* component);

  // --- time ----------------------------------------------------------------
  SimTime now() const { return now_; }
  void step();
  void run_for(SimDuration duration);

  // --- pods ----------------------------------------------------------------
  /// Create a pod on `host_index` (placement already decided — see
  /// ClusterScheduler). Returns the pod id.
  int create_pod(int host_index, PodSpec spec, WorkloadFactory factory = {});

  /// Stop the pod's container and destroy its workload. Request stats are
  /// harvested into pod.archived first. Also handles in-flight and failed
  /// pods: an in-flight stop cancels the pending landing and releases the
  /// target host's reservation (stats were already harvested at departure).
  void stop_pod(int pod_id);

  /// Stop-and-recreate migration toward `target_host`. The pod is gone from
  /// the source immediately and lands on the target after the freeze
  /// (base + committed/bandwidth); its requests are reserved on the target
  /// for the whole flight so placement cannot double-book the slot.
  void migrate_pod(int pod_id, int target_host);

  Pod& pod(int id) { return pods_.at(static_cast<std::size_t>(id)); }
  const Pod& pod(int id) const { return pods_.at(static_cast<std::size_t>(id)); }
  int pod_count() const { return static_cast<int>(pods_.size()); }
  int pods_on(int host_index) const { return hosts_.at(static_cast<std::size_t>(host_index)).pods; }
  std::uint64_t migrations() const { return migrations_; }

  // --- faults and recovery --------------------------------------------------
  /// Kill every pod on the host (their processes die; stats are harvested
  /// out-of-band, queued requests are lost) and mark the host down. Pods
  /// stay assigned to the host ledger as failed, awaiting restart-in-place
  /// (if the host reboots) or failover (FailureDetector). Migrations in
  /// flight *to* the host are lost the same way. The host's engine keeps
  /// ticking (empty) so the fleet stays in lockstep.
  void crash_host(int host_index);

  /// Bring a crashed host back as an empty machine (fresh boot: any
  /// host-memory reservation from pressure injection is cleared).
  void reboot_host(int host_index);

  bool host_up(int host_index) const {
    return hosts_.at(static_cast<std::size_t>(host_index)).up;
  }

  // --- cordon (cluster autoscaler) -----------------------------------------
  /// Administratively (un)mark a host unschedulable. A cordoned host keeps
  /// ticking and heartbeating — placement strategies just skip it, so it is
  /// parked, not dead. The ClusterAutoscaler "removes" a host by cordoning
  /// and draining it (the fleet's machine count is fixed at t=0; a parked
  /// empty host quiesces, so the skip path makes it nearly free) and "adds"
  /// one by uncordoning a parked machine.
  void cordon_host(int host_index, bool cordoned);

  bool host_cordoned(int host_index) const {
    return hosts_.at(static_cast<std::size_t>(host_index)).cordoned;
  }

  /// Hosts currently up and not cordoned — the schedulable fleet size.
  int active_hosts() const;

  /// Kill one running pod's process (the host stays up). The pod keeps its
  /// ledger slot on the host so a RestartManager can re-land it in place.
  void crash_pod(int pod_id);

  /// Re-create a failed pod's container + workload on its current host
  /// (restart-in-place; the host must be up). Increments pod.restarts.
  void restart_pod(int pod_id);

  /// Re-place a failed pod on `target_host` (which must be up) and land it
  /// immediately — the crashed replica has no state to copy, only a cold
  /// start. Moves the ledger slot and increments pod.failovers.
  void failover_pod(int pod_id, int target_host);

  std::uint64_t pod_crashes() const { return pod_crashes_; }
  std::uint64_t host_crashes() const { return host_crashes_; }
  std::uint64_t restarts() const { return restarts_; }
  std::uint64_t failovers() const { return failovers_; }

  // --- observed state ------------------------------------------------------
  /// The strategy-facing view of one host: declared request sums from the
  /// cluster ledger, observed slack/free-memory from the host subsystems.
  /// Correct for frozen hosts without syncing them (their observables are
  /// constant while frozen).
  HostView host_view(int index) const;

  /// The shared cluster snapshot (DESIGN.md §13): per-host effective views
  /// plus flattened per-pod rows, assembled in the serial phase and
  /// generation-stamped. Lazily refreshed — if anything mutated the fleet
  /// since the last refresh, the snapshot is rebuilt first (reusing rows of
  /// provably-unchanged hosts from the previous snapshot), so the returned
  /// view is always current. The generation advances only when the *content*
  /// changed. This is what every fleet-wide consumer (placement, detector,
  /// autoscalers, router) reads; consumers that place several pods in one
  /// round copy it and claim() each landing. Serial phases only.
  const FleetView& fleet_view();

  /// The snapshot published at the previous tick boundary (what diff renders
  /// against). Empty before the second step.
  const FleetView& previous_fleet_view() const { return prev_; }

  /// The fleet snapshot's content generation (backs /sys/arv/fleet/ render
  /// caching — an idle fleet re-renders nothing).
  vfs::Generation fleet_generation() const { return fleet_gen_; }

  /// Host/pod rows copied from the previous snapshot instead of re-observed,
  /// cumulative. Not traced: the count varies with the idle-skip setting.
  std::uint64_t fleet_rows_reused() const { return rows_reused_; }

  /// Force the next fleet_view() to re-observe every row (profile updates,
  /// tests). Never bumps the generation unless content actually changed.
  void invalidate_fleet_view();

  /// Attach (or detach, with nullptr) a ProfileStore whose percentiles the
  /// pod rows carry. Called by ProfileStore's constructor/destructor.
  void attach_profiles(const ProfileStore* profiles);
  const ProfileStore* profiles() const { return profiles_; }

  /// The published per-host arena — cur snapshot's host rows, refreshed at
  /// the tick boundary (and whenever a consumer pulled a fresh fleet_view()
  /// mid-round). Per-round readers that want the boundary view without
  /// forcing a refresh (the rebalancer's capacity scan, the autoscaler's
  /// slack band, the trace) read this. Empty until the first step.
  const std::vector<HostView>& views() const { return cur_.hosts; }

  // --- parallel host phase --------------------------------------------------
  /// Resolved worker count (config threads, with 0 mapped to auto).
  int threads() const { return threads_; }

  /// Cumulative count of host-ticks skipped by the quiescence fast path.
  /// Deterministic: a host's skip decision depends only on its own state,
  /// never on sharding, so this is identical at any thread count.
  std::uint64_t hosts_skipped() const;

  /// Cumulative wall-clock time spent in the (possibly parallel) host
  /// phase, and the number of cluster steps taken — the benchmark signal.
  std::int64_t host_phase_wall_us() const { return host_phase_wall_us_; }
  std::uint64_t steps_taken() const { return steps_; }

  /// Idle CPU time accumulated on the host during the last *completed*
  /// observation window (a fresh host reports a fully idle window).
  CpuTime window_slack(int index) const {
    return hosts_.at(static_cast<std::size_t>(index)).window_slack;
  }

  /// A host's cumulative idle CPU time as of cluster time, frozen hosts
  /// included: the scheduler counter plus an analytic full-capacity credit
  /// for the frozen gap (exactly what advance_idle will add on touch).
  /// Reading this never syncs the host — the cheap path for per-round
  /// slack consumers (rebalancer, trace).
  CpuTime host_slack_total(int index) const;

  Rng& rng() { return rng_; }
  const ClusterConfig& config() const { return config_; }

  /// The cluster trace recorder, or nullptr when tracing is disabled.
  obs::TraceRecorder* trace() { return trace_.get(); }
  const obs::TraceRecorder* trace() const { return trace_.get(); }

 private:
  struct HostState {
    std::unique_ptr<container::Host> host;
    std::unique_ptr<container::ContainerRuntime> runtime;
    // Declared-request ledger over the pods currently on (or in flight to)
    // the host — what the "requests" strategy packs against.
    std::int64_t requested_millicpu = 0;
    Bytes requested_memory = 0;
    int pods = 0;
    /// False between crash_host and reboot_host. A down host accepts no
    /// pods; its engine still ticks (empty) to keep the fleet in lockstep.
    bool up = true;
    /// Administratively unschedulable (see cordon_host). Orthogonal to `up`:
    /// a cordoned host is healthy, so the FailureDetector must not bury it.
    bool cordoned = false;
    // Slack observation window (integer accumulation; see window_slack()).
    CpuTime window_slack = 0;
    CpuTime accum_slack = 0;
    CpuTime last_total_slack = 0;
    /// Fleet-row staleness: view_gen bumps on every (potential) mutation of
    /// this host, refreshed_gen records view_gen at the last row rebuild.
    /// Unequal (or a host that stepped this tick, or a rolled slack window)
    /// => the refresh re-observes the row; equal => the row is copied from
    /// the previous snapshot. Starts unequal so the first refresh builds.
    std::uint64_t view_gen = 1;
    std::uint64_t refreshed_gen = 0;
  };
  struct PendingMigration {
    SimTime due = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break at equal due times
    int pod = -1;
  };
  struct Dispatch {
    sim::TickComponent* component = nullptr;
    SimTime next = 0;
    SimTime last = 0;
  };

  void host_phase();
  void host_phase_shard(int shard);
  /// Catch a frozen host's clock up to cluster time (no-op when current).
  void sync_host(int index);
  void mark_host_dirty(int index) {
    fleet_dirty_ = true;
    ++hosts_.at(static_cast<std::size_t>(index)).view_gen;
  }
  void observe_slack();
  /// Rebuild the fleet snapshot. `boundary` refreshes publish: prev_/cur_
  /// swap so diff() has a stable per-tick baseline. Mid-tick (lazy)
  /// refreshes recycle scratch_ and leave prev_ untouched.
  void refresh_fleet(bool boundary);
  /// Assemble cur_ from live state, copying rows of unchanged hosts (and
  /// their pods) from `old` instead of re-observing them.
  void rebuild_fleet(const FleetView& old);
  void settle_migrations();
  void dispatch_components();
  void land_pod(Pod& pod);
  void harvest_stats(Pod& pod);
  void fail_pod(Pod& pod);
  void register_host_trace(int index);

  ClusterConfig config_;
  Rng rng_;
  SimTime now_ = 0;
  SimDuration window_elapsed_ = 0;
  int threads_ = 1;  ///< resolved from config (0 -> auto)
  std::unique_ptr<sim::WorkerPool> pool_;
  /// True only while the worker pool is stepping hosts. Every topology or
  /// fault mutator asserts it is false: mutations are legal only in the
  /// serial phases, so a crash can never observe a half-stepped fleet.
  bool in_host_phase_ = false;
  /// Skip counts, one slot per shard so workers never contend on a counter;
  /// hosts_skipped() sums them (the sum is sharding-invariant).
  std::vector<std::uint64_t> shard_skips_;
  std::int64_t host_phase_wall_us_ = 0;
  std::int64_t last_step_wall_us_ = 0;
  std::uint64_t steps_ = 0;
  // Fleet snapshot triple-buffer: cur_ is the live snapshot, prev_ the one
  // published at the previous tick boundary, scratch_ recycles allocations
  // for mid-tick refreshes. fleet_gen_ is address-stable — the /sys/arv/
  // fleet/ pseudo-files cache renders on a pointer to it.
  FleetView cur_;
  FleetView prev_;
  FleetView scratch_;
  vfs::Generation fleet_gen_ = 0;
  bool fleet_dirty_ = true;
  bool window_rolled_ = false;
  std::uint64_t rows_reused_ = 0;
  const ProfileStore* profiles_ = nullptr;
  std::vector<HostState> hosts_;
  std::vector<Pod> pods_;
  std::vector<PendingMigration> pending_;
  std::uint64_t next_migration_seq_ = 0;
  std::vector<Dispatch> components_;
  std::uint64_t migrations_ = 0;
  std::uint64_t pod_crashes_ = 0;
  std::uint64_t host_crashes_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t failovers_ = 0;
  std::unique_ptr<obs::TraceRecorder> trace_;  ///< null when tracing is off
};

}  // namespace arv::cluster
