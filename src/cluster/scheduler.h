// ClusterScheduler — places pods on a Cluster through a named
// PlacementStrategy (kube-scheduler analogue).
//
// One instance caches strategy objects from the PlacementRegistry and keeps
// the unschedulable tally; the declared-request ledger lives in the Cluster
// so the rebalancer and migrations keep it consistent.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/placement.h"

namespace arv::cluster {

class ClusterScheduler {
 public:
  explicit ClusterScheduler(Cluster& cluster) : cluster_(cluster) {}

  /// Place one pod with the named strategy. Returns the pod id, or -1 when
  /// no host is feasible (the pod stays unscheduled — kube would park it in
  /// the pending queue; we count it and drop it).
  int place(const std::string& strategy, PodSpec spec,
            WorkloadFactory factory = {});

  /// Batch placement without workloads (placement studies): pods place in
  /// the strategy's queue_rank order — "requests" ranks by QoS class,
  /// BestEffort last, mirroring kube-scheduler's queue. Returns one pod id
  /// (or -1) per *submitted* pod, in submission order.
  std::vector<int> place_all(const std::string& strategy,
                             std::vector<PodSpec> specs);

  std::uint64_t unschedulable() const { return unschedulable_; }

 private:
  PlacementStrategy& strategy(const std::string& name);

  Cluster& cluster_;
  std::map<std::string, std::unique_ptr<PlacementStrategy>> strategies_;
  std::uint64_t unschedulable_ = 0;
};

}  // namespace arv::cluster
