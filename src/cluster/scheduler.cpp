#include "src/cluster/scheduler.h"

#include <algorithm>

#include "src/util/assert.h"

namespace arv::cluster {

PlacementStrategy& ClusterScheduler::strategy(const std::string& name) {
  auto it = strategies_.find(name);
  if (it == strategies_.end()) {
    auto made = PlacementRegistry::instance().make(name);
    ARV_ASSERT_MSG(made != nullptr, "unknown placement strategy");
    it = strategies_.emplace(name, std::move(made)).first;
  }
  return *it->second;
}

int ClusterScheduler::place(const std::string& strategy_name, PodSpec spec,
                            WorkloadFactory factory) {
  PlacementStrategy& chosen = strategy(strategy_name);
  const int host =
      chosen.select(spec, cluster_.fleet_view(), cluster_.rng());
  if (host < 0) {
    ++unschedulable_;
    return -1;
  }
  return cluster_.create_pod(host, std::move(spec), std::move(factory));
}

std::vector<int> ClusterScheduler::place_all(const std::string& strategy_name,
                                             std::vector<PodSpec> specs) {
  PlacementStrategy& chosen = strategy(strategy_name);
  std::vector<std::size_t> order(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    order[i] = i;
  }
  // Stable: equal ranks keep submission order.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return chosen.queue_rank(specs[a]) <
                            chosen.queue_rank(specs[b]);
                   });
  std::vector<int> result(specs.size(), -1);
  for (const std::size_t slot : order) {
    result[slot] = place(strategy_name, std::move(specs[slot]));
  }
  return result;
}

}  // namespace arv::cluster
