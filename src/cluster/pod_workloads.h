// PodWorkload adapters: the existing single-host workloads wrapped so the
// Cluster can own, destroy, and re-create them across migrations.
//
// Each free function returns a WorkloadFactory — the re-invocable recipe the
// Cluster stores on the Pod and calls once at placement and again after
// every migration. The objects themselves detach from the scheduler in their
// destructors, which is exactly what a migration's teardown relies on.
#pragma once

#include "src/cluster/cluster.h"
#include "src/server/server_runtime.h"
#include "src/util/types.h"

namespace arv::cluster {

/// A WorkerPoolServer replica. The router drives arrivals, so the config's
/// arrivals_per_sec is forced to 0 — a replica behind a load balancer does
/// not generate its own traffic.
WorkloadFactory web_replica(server::WebConfig config);

/// A self-driving WorkerPoolServer (keeps its own open-loop arrival stream);
/// for fleets without a router.
WorkloadFactory web_standalone(server::WebConfig config);

/// A sysbench-style CPU burner: `threads` runnable threads with a total CPU
/// budget (re-budgeted from scratch if the pod migrates).
WorkloadFactory cpu_hog_workload(int threads, SimDuration cpu_budget);

/// A memory hog charging up to `footprint` at `charge_per_sec`.
WorkloadFactory mem_hog_workload(Bytes footprint, Bytes charge_per_sec);

}  // namespace arv::cluster
