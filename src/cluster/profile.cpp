#include "src/cluster/profile.h"

#include <algorithm>
#include <vector>

#include "src/container/container.h"
#include "src/container/host.h"
#include "src/mem/memory_manager.h"
#include "src/sched/fair_scheduler.h"
#include "src/util/assert.h"

namespace arv::cluster {
namespace {

/// Nearest-rank percentile (same exact-integer form the autoscalers use):
/// 1-based rank = ceil(n * p / 100), no interpolation, no floating point.
template <typename T>
T nearest_rank(const std::deque<T>& window, int p) {
  ARV_ASSERT(!window.empty());
  std::vector<T> sorted(window.begin(), window.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t rank =
      (sorted.size() * static_cast<std::size_t>(p) + 99) / 100;
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

__extension__ using Wide = __int128;
__extension__ using UWide = unsigned __int128;

/// Exact integer square root (Newton), so correlation is bit-identical on
/// every platform — no sqrt(double) anywhere near the decision path.
UWide isqrt(UWide v) {
  if (v == 0) {
    return 0;
  }
  UWide x = v;
  UWide y = (x + 1) / 2;
  while (y < x) {
    x = y;
    y = (x + v / x) / 2;
  }
  return x;
}

/// Pearson correlation of the trailing `n` samples of two series, in
/// per-mille of [-1000, 1000]. 0 for flat series (zero variance).
std::int64_t pearson_permille(const std::deque<std::int64_t>& xs,
                              const std::deque<std::int64_t>& ys, int n) {
  Wide sx = 0;
  Wide sy = 0;
  Wide sxx = 0;
  Wide syy = 0;
  Wide sxy = 0;
  const auto x0 = xs.end() - n;
  const auto y0 = ys.end() - n;
  for (int i = 0; i < n; ++i) {
    const Wide x = *(x0 + i);
    const Wide y = *(y0 + i);
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const Wide var_x = static_cast<Wide>(n) * sxx - sx * sx;
  const Wide var_y = static_cast<Wide>(n) * syy - sy * sy;
  if (var_x <= 0 || var_y <= 0) {
    return 0;  // a flat series co-varies with nothing
  }
  const Wide num = static_cast<Wide>(n) * sxy - sx * sy;
  const Wide den = static_cast<Wide>(isqrt(static_cast<UWide>(var_x))) *
                   static_cast<Wide>(isqrt(static_cast<UWide>(var_y)));
  if (den == 0) {
    return 0;
  }
  const Wide r = num * 1000 / den;
  return std::clamp<std::int64_t>(static_cast<std::int64_t>(r), -1000, 1000);
}

}  // namespace

ProfileStore::ProfileStore(Cluster& cluster, ProfileConfig config)
    : cluster_(cluster), config_(config) {
  ARV_ASSERT(config_.period > 0);
  ARV_ASSERT(config_.window_rounds >= 2);
  ARV_ASSERT(config_.min_samples >= 2);
  ARV_ASSERT(config_.min_samples <= config_.window_rounds);
  cluster_.attach_profiles(this);
}

ProfileStore::~ProfileStore() { cluster_.attach_profiles(nullptr); }

const std::string& ProfileStore::service_of(const Pod& pod) {
  return pod.spec.service.empty() ? pod.spec.name : pod.spec.service;
}

void ProfileStore::tick(SimTime /*now*/, SimDuration dt) {
  ++rounds_;
  // Per-service round sums accumulate while pods sample; every *known*
  // service then pushes exactly one value per round (0 when idle or gone),
  // keeping all series aligned for the pairwise correlation window.
  std::map<std::string, std::int64_t> service_round;
  for (int id = 0; id < cluster_.pod_count(); ++id) {
    const Pod& pod = cluster_.pod(id);
    if (pod.host < 0) {
      track_.erase(id);  // stopped pods hold no window at all
      continue;
    }
    if (!pod.running()) {
      continue;  // in flight or failed: keep the window, skip the round
    }
    PodTrack& track = track_[id];
    const cgroup::CgroupId cg = pod.container->cgroup();
    const CpuTime usage =
        cluster_.host(pod.host).scheduler().total_usage(cg);
    if (track.host != pod.host || track.cgroup != cg) {
      // First sight, or the pod re-landed (migration/restart) since the last
      // round: reset the usage baseline so the relocation itself never reads
      // as a burst. The window survives — the usage *shape* is a property of
      // the workload, not of the host it happens to run on.
      track.host = pod.host;
      track.cgroup = cg;
      track.last_usage = usage;
      continue;
    }
    const CpuTime burned = std::max<CpuTime>(0, usage - track.last_usage);
    track.last_usage = usage;
    const std::int64_t millicpu = dt > 0 ? burned * 1000 / dt : 0;
    track.cpu_millicpu.push_back(millicpu);
    track.mem_bytes.push_back(
        cluster_.host(pod.host).memory().committed(cg));
    while (static_cast<int>(track.cpu_millicpu.size()) > config_.window_rounds) {
      track.cpu_millicpu.pop_front();
    }
    while (static_cast<int>(track.mem_bytes.size()) > config_.window_rounds) {
      track.mem_bytes.pop_front();
    }
    recompute(track);
    service_round[service_of(pod)] += millicpu;
  }
  for (const auto& [service, millicpu] : service_round) {
    service_series_[service];  // learn new services before the push loop
    (void)millicpu;
  }
  for (auto& [service, series] : service_series_) {
    const auto it = service_round.find(service);
    series.push_back(it == service_round.end() ? 0 : it->second);
    while (static_cast<int>(series.size()) > config_.window_rounds) {
      series.pop_front();
    }
  }
  // New percentiles are now visible; the next FleetView refresh must re-read
  // the rows even if nothing else in the fleet moved.
  cluster_.invalidate_fleet_view();
}

void ProfileStore::recompute(PodTrack& track) {
  const int n = static_cast<int>(track.cpu_millicpu.size());
  if (n < config_.min_samples) {
    track.cached = PodProfile{};
    return;
  }
  PodProfile p;
  p.cpu_p50_millicpu = nearest_rank(track.cpu_millicpu, 50);
  p.cpu_p95_millicpu =
      std::max(p.cpu_p50_millicpu, nearest_rank(track.cpu_millicpu, 95));
  p.mem_p50 = nearest_rank(track.mem_bytes, 50);
  p.mem_p95 = std::max(p.mem_p50, nearest_rank(track.mem_bytes, 95));
  p.burst_permille =
      p.cpu_p95_millicpu * 1000 / std::max<std::int64_t>(1, p.cpu_p50_millicpu);
  p.samples = n;
  track.cached = p;
}

PodProfile ProfileStore::profile(int pod_id) const {
  const auto it = track_.find(pod_id);
  return it == track_.end() ? PodProfile{} : it->second.cached;
}

std::int64_t ProfileStore::pod_correlation_permille(int a, int b) const {
  const auto ia = track_.find(a);
  const auto ib = track_.find(b);
  if (ia == track_.end() || ib == track_.end()) {
    return 0;
  }
  const int n = static_cast<int>(std::min(ia->second.cpu_millicpu.size(),
                                          ib->second.cpu_millicpu.size()));
  if (n < config_.min_samples) {
    return 0;
  }
  return pearson_permille(ia->second.cpu_millicpu, ib->second.cpu_millicpu, n);
}

std::int64_t ProfileStore::service_correlation_permille(
    const std::string& a, const std::string& b) const {
  const auto ia = service_series_.find(a);
  const auto ib = service_series_.find(b);
  if (ia == service_series_.end() || ib == service_series_.end()) {
    return 0;
  }
  const int n =
      static_cast<int>(std::min(ia->second.size(), ib->second.size()));
  if (n < config_.min_samples) {
    return 0;
  }
  return pearson_permille(ia->second, ib->second, n);
}

}  // namespace arv::cluster
