#include "src/cluster/autoscale.h"

#include <algorithm>
#include <limits>

#include "src/cluster/pod_workloads.h"
#include "src/container/host.h"
#include "src/mem/memory_manager.h"
#include "src/sched/fair_scheduler.h"
#include "src/util/assert.h"
#include "src/util/log.h"
#include "src/vfs/virtual_sysfs.h"

namespace arv::cluster {
namespace {

/// Nearest-rank percentile over an integer sample window: exact integer
/// ordering, no floating point, so recommendations are bit-identical on
/// every platform (the autoscalers sit inside the byte-identical-trace
/// contract).
template <typename T>
T nearest_rank(const std::deque<T>& window, int p) {
  ARV_ASSERT(!window.empty());
  std::vector<T> sorted(window.begin(), window.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t rank =
      (sorted.size() * static_cast<std::size_t>(p) + 99) / 100;  // 1-based
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

/// The designated control-plane host whose sysfs serves the cluster-level
/// /sys/arv/autoscale/ and /sys/arv/vpa/ counter files.
constexpr int kControlHost = 0;

vfs::FileProvider counter_file(const std::uint64_t& counter) {
  return [&counter] { return std::to_string(counter) + "\n"; };
}

}  // namespace

// --- HorizontalAutoscaler -----------------------------------------------------

HorizontalAutoscaler::HorizontalAutoscaler(Cluster& cluster,
                                           RequestRouter& router,
                                           PodSpec replica_template,
                                           server::WebConfig web,
                                           HpaConfig config)
    : cluster_(cluster),
      router_(router),
      template_(std::move(replica_template)),
      web_(web),
      config_(config),
      strategy_(PlacementRegistry::instance().make(config.strategy)) {
  ARV_ASSERT(config_.period > 0);
  ARV_ASSERT(config_.min_replicas >= 0);
  ARV_ASSERT(config_.max_replicas >= config_.min_replicas);
  ARV_ASSERT(config_.target_utilization_permille > 0);
  ARV_ASSERT(config_.request_cpu > 0);
  ARV_ASSERT(config_.max_surge >= 1 && config_.max_scale_down >= 1);
  ARV_ASSERT_MSG(strategy_ != nullptr, "unknown placement strategy");
  if (template_.name.empty()) {
    template_.name = "hpa";
  }
  if (template_.service.empty()) {
    // Replicas get distinct pod names (<name>-<N>); the shared service ties
    // them together for the profile machinery and "profile" placement.
    template_.service = template_.name;
  }
  // Replicas behind the router must not self-generate traffic.
  web_.arrivals_per_sec = 0;
  register_telemetry();
}

HorizontalAutoscaler::~HorizontalAutoscaler() {
  if (cluster_.host_count() > kControlHost) {
    cluster_.host(kControlHost)
        .sysfs()
        .remove_control_subtree("/sys/arv/autoscale/" + template_.name + "/");
  }
}

void HorizontalAutoscaler::register_telemetry() {
  if (obs::TraceRecorder* trace = cluster_.trace()) {
    trace->add_gauge("autoscale.replicas", template_.name,
                     [this] { return static_cast<std::int64_t>(replicas()); });
    trace->add_counter("autoscale.scale_ups", template_.name, [this] {
      return static_cast<std::int64_t>(scale_ups_);
    });
    trace->add_counter("autoscale.scale_downs", template_.name, [this] {
      return static_cast<std::int64_t>(scale_downs_);
    });
  }
  if (cluster_.host_count() > kControlHost) {
    vfs::VirtualSysfs& sysfs = cluster_.host(kControlHost).sysfs();
    const std::string prefix = "/sys/arv/autoscale/" + template_.name + "/";
    sysfs.register_control_file(prefix + "replicas", [this] {
      return std::to_string(replicas()) + "\n";
    });
    sysfs.register_control_file(prefix + "desired", [this] {
      return std::to_string(last_desired_) + "\n";
    });
    sysfs.register_control_file(prefix + "scale_ups", counter_file(scale_ups_));
    sysfs.register_control_file(prefix + "scale_downs",
                                counter_file(scale_downs_));
    sysfs.register_control_file(prefix + "held", counter_file(held_));
    sysfs.register_control_file(prefix + "deferred", counter_file(deferred_));
  }
}

void HorizontalAutoscaler::adopt(int pod_id) {
  ARV_ASSERT(pod_id >= 0 && pod_id < cluster_.pod_count());
  ARV_ASSERT_MSG(std::find(managed_.begin(), managed_.end(), pod_id) ==
                     managed_.end(),
                 "pod already managed");
  managed_.push_back(pod_id);
}

int HorizontalAutoscaler::replicas() const {
  int count = 0;
  for (const int id : managed_) {
    // Running, in flight, or failed-awaiting-recovery all hold a ledger
    // slot; only a stopped pod (host == -1) has truly left the set.
    if (cluster_.pod(id).host >= 0) {
      ++count;
    }
  }
  return count;
}

std::int64_t HorizontalAutoscaler::effective_millicpu_per_replica() const {
  std::int64_t sum = 0;
  int observed = 0;
  for (const int id : managed_) {
    const Pod& pod = cluster_.pod(id);
    if (!pod.running()) {
      continue;
    }
    if (const auto view = pod.container->resource_view()) {
      sum += static_cast<std::int64_t>(view->effective_cpus()) * 1000;
      ++observed;
    }
  }
  if (observed > 0) {
    return std::max<std::int64_t>(1, sum / observed);
  }
  // No live view to consult (views disabled, or no replica running yet):
  // fall back to the template's declared CPU, the only number left.
  const auto& r = template_.resources;
  if (r.limit_millicpu > 0) {
    return r.limit_millicpu;
  }
  if (r.request_millicpu > 0) {
    return r.request_millicpu;
  }
  return 1000;  // one core
}

int HorizontalAutoscaler::place_replica(FleetView& views) {
  PodSpec spec = template_;
  spec.name = template_.name + "-" + std::to_string(created_);
  const int target = strategy_->select(spec, views, cluster_.rng());
  if (target < 0) {
    return -1;
  }
  ++created_;
  const int pod = cluster_.create_pod(target, spec, web_replica(web_));
  managed_.push_back(pod);
  router_.add_replica(pod);
  views.claim(target, spec);
  ARV_LOG(kInfo, "hpa", "%s scaled up: pod %d -> h%d", template_.name.c_str(),
          pod, target);
  return pod;
}

void HorizontalAutoscaler::tick(SimTime now, SimDuration /*dt*/) {
  // 1. Observe demand: arrivals the router generated since the last round.
  const std::uint64_t generated = router_.generated();
  const auto arrived = static_cast<std::int64_t>(generated - last_generated_);
  last_generated_ = generated;

  // 2. Recommend: how many replicas keep demand at the target fraction of
  //    what one replica can *effectively* serve per round. All integer.
  const int current = replicas();
  const std::int64_t per_replica_millicpu = effective_millicpu_per_replica();
  const std::int64_t capacity_us = per_replica_millicpu * config_.period / 1000;
  const std::int64_t budget_us =
      std::max<std::int64_t>(1, config_.target_utilization_permille *
                                    capacity_us / 1000);
  const std::int64_t demand_us = arrived * config_.request_cpu;
  int desired = static_cast<int>((demand_us + budget_us - 1) / budget_us);
  desired = std::clamp(desired, config_.min_replicas, config_.max_replicas);
  last_desired_ = desired;

  // Trailing recommendations for the scale-down window.
  recent_desired_.emplace_back(now, desired);
  while (!recent_desired_.empty() &&
         now - recent_desired_.front().first > config_.down_stabilization) {
    recent_desired_.pop_front();
  }

  // 3. Scale up, once the breach has lasted up_stabilization. above_since_
  //    stays armed while under-provisioned, so a max_surge-limited ramp
  //    continues every round instead of re-waiting the window.
  if (desired > current) {
    if (above_since_ < 0) {
      above_since_ = now;
    }
    if (now - above_since_ < config_.up_stabilization) {
      ++held_;
      return;
    }
    const int add = std::min(desired - current, config_.max_surge);
    // A surge places several replicas in one round: copy the fleet snapshot
    // and claim() each landing so later replicas see post-landing headroom
    // (and, under "profile", their just-placed siblings).
    FleetView views = cluster_.fleet_view();
    for (int i = 0; i < add; ++i) {
      if (place_replica(views) < 0) {
        ++deferred_;  // no schedulable host fits; retry next round
        break;
      }
      ++scale_ups_;
    }
    return;
  }
  above_since_ = -1;

  // 4. Scale down to the *maximum* recommendation of the trailing window —
  //    a momentary lull never sheds capacity the window says is needed.
  int window_max = desired;
  for (const auto& [at, recommended] : recent_desired_) {
    window_max = std::max(window_max, recommended);
  }
  if (window_max >= current) {
    if (desired < current) {
      ++held_;  // raw recommendation says shrink; the window disagrees
    }
    return;
  }
  int remove = std::min(current - window_max, config_.max_scale_down);
  // Newest replicas go first (highest pod id in the managed list).
  for (auto it = managed_.rbegin(); it != managed_.rend() && remove > 0;
       ++it) {
    const Pod& pod = cluster_.pod(*it);
    if (pod.host < 0 || pod.failed) {
      continue;  // already gone, or the recovery path owns it
    }
    ARV_LOG(kInfo, "hpa", "%s scaled down: stopping pod %d",
            template_.name.c_str(), *it);
    cluster_.stop_pod(*it);
    ++scale_downs_;
    --remove;
  }
}

// --- VerticalRecommender ------------------------------------------------------

VerticalRecommender::VerticalRecommender(Cluster& cluster, VpaConfig config)
    : cluster_(cluster), config_(config) {
  ARV_ASSERT(config_.period > 0);
  ARV_ASSERT(config_.window_rounds >= 2);
  ARV_ASSERT(config_.recommend_every >= 1);
  ARV_ASSERT(config_.limit_margin_permille >= 1000);
  ARV_ASSERT(config_.min_change_permille >= 0);
  register_telemetry();
}

VerticalRecommender::~VerticalRecommender() {
  if (cluster_.host_count() > kControlHost) {
    cluster_.host(kControlHost).sysfs().remove_control_subtree(
        "/sys/arv/vpa/");
  }
}

void VerticalRecommender::register_telemetry() {
  if (obs::TraceRecorder* trace = cluster_.trace()) {
    trace->add_counter("vpa.rewrites", "", [this] {
      return static_cast<std::int64_t>(rewrites_);
    });
  }
  if (cluster_.host_count() > kControlHost) {
    vfs::VirtualSysfs& sysfs = cluster_.host(kControlHost).sysfs();
    sysfs.register_control_file("/sys/arv/vpa/rewrites",
                                counter_file(rewrites_));
    sysfs.register_control_file("/sys/arv/vpa/cpu_raised",
                                counter_file(cpu_raised_));
    sysfs.register_control_file("/sys/arv/vpa/cpu_lowered",
                                counter_file(cpu_lowered_));
    sysfs.register_control_file("/sys/arv/vpa/mem_raised",
                                counter_file(mem_raised_));
    sysfs.register_control_file("/sys/arv/vpa/mem_lowered",
                                counter_file(mem_lowered_));
    sysfs.register_control_file("/sys/arv/vpa/held", counter_file(held_));
  }
}

void VerticalRecommender::tick(SimTime /*now*/, SimDuration dt) {
  for (int id = 0; id < cluster_.pod_count(); ++id) {
    Pod& pod = cluster_.pod(id);
    if (!pod.running()) {
      track_.erase(id);  // window restarts fresh wherever the pod lands
      continue;
    }
    PodTrack& track = track_[id];
    const cgroup::CgroupId cg = pod.container->cgroup();
    container::Host& host = cluster_.host(pod.host);
    const CpuTime usage = host.scheduler().total_usage(cg);
    if (track.host != pod.host || track.cgroup != cg) {
      // First sight, or the pod re-landed (migration/restart) since the
      // last sample: reset the usage baseline, sample next round.
      track.host = pod.host;
      track.cgroup = cg;
      track.last_usage = usage;
      continue;
    }
    const CpuTime burned = std::max<CpuTime>(0, usage - track.last_usage);
    track.last_usage = usage;
    track.cpu_millicpu.push_back(dt > 0 ? burned * 1000 / dt : 0);
    track.mem_bytes.push_back(host.memory().committed(cg));
    while (static_cast<int>(track.cpu_millicpu.size()) > config_.window_rounds) {
      track.cpu_millicpu.pop_front();
    }
    while (static_cast<int>(track.mem_bytes.size()) > config_.window_rounds) {
      track.mem_bytes.pop_front();
    }
    ++track.rounds;
    const int warmup = std::max(2, config_.window_rounds / 2);
    if (track.rounds % config_.recommend_every == 0 &&
        static_cast<int>(track.cpu_millicpu.size()) >= warmup) {
      recommend(pod, track);
    }
  }
}

void VerticalRecommender::recommend(Pod& pod, PodTrack& track) {
  const std::int64_t p50_cpu = std::max(
      config_.min_millicpu, nearest_rank(track.cpu_millicpu, 50));
  const std::int64_t p95_cpu =
      std::max(p50_cpu, nearest_rank(track.cpu_millicpu, 95));
  const Bytes p50_mem =
      std::max(config_.min_memory, nearest_rank(track.mem_bytes, 50));
  const Bytes p95_mem = std::max(p50_mem, nearest_rank(track.mem_bytes, 95));

  // Hysteresis: apply only when the recommendation drifted min_change past
  // the last applied value (0 = nothing applied yet, always apply).
  const auto drifted = [this](std::int64_t proposed, std::int64_t applied) {
    if (applied <= 0) {
      return true;
    }
    const std::int64_t delta =
        proposed > applied ? proposed - applied : applied - proposed;
    // frac_permille clamps at 1000, which still reads as "drifted" for any
    // sane min_change; it is the overflow-safe ratio at byte magnitudes.
    return frac_permille(delta, applied) > config_.min_change_permille;
  };

  bool rewrote = false;

  // cpu.shares from p50 (the kubelet request mapping, driven by observation).
  const std::int64_t shares =
      std::max<std::int64_t>(2, p50_cpu * 1024 / 1000);
  if (drifted(shares, track.applied_shares)) {
    pod.container->update_cpu_shares(shares);
    (track.applied_shares > 0 && shares < track.applied_shares)
        ? ++cpu_lowered_
        : ++cpu_raised_;
    track.applied_shares = shares;
    rewrote = true;
  } else {
    ++held_;
  }

  // cfs_quota from p95 + margin — but only for quota-capped pods. Burstable
  // pods are the point of the throttle-free mode: never give them a quota.
  if (pod.spec.cpu_mode == CpuMode::kQuotaCapped) {
    const std::int64_t quota_millicpu =
        std::max(config_.min_millicpu,
                 p95_cpu * config_.limit_margin_permille / 1000);
    if (drifted(quota_millicpu, track.applied_quota_millicpu)) {
      // MilliCPUToQuota at the default 100 ms CFS period.
      pod.container->update_cfs_quota(quota_millicpu * 100'000 / 1000);
      (track.applied_quota_millicpu > 0 &&
       quota_millicpu < track.applied_quota_millicpu)
          ? ++cpu_lowered_
          : ++cpu_raised_;
      track.applied_quota_millicpu = quota_millicpu;
      rewrote = true;
    } else {
      ++held_;
    }
  }

  // Memory: soft limit at p50, hard limit at p95 + margin — floored above
  // what the pod has committed *right now*, so a shrinking recommendation
  // can never OOM-kill the pod it is sizing (it only caps future growth).
  Bytes hard =
      std::max<Bytes>(p95_mem * config_.limit_margin_permille / 1000, p50_mem);
  const Bytes committed =
      cluster_.host(track.host).memory().committed(track.cgroup);
  hard = std::max(hard, committed + committed / 8 + units::MiB);
  const Bytes soft = std::min(p50_mem, hard);
  if (drifted(static_cast<std::int64_t>(hard),
              static_cast<std::int64_t>(track.applied_hard))) {
    pod.container->update_mem_limit(hard);
    (track.applied_hard > 0 && hard < track.applied_hard) ? ++mem_lowered_
                                                          : ++mem_raised_;
    track.applied_hard = hard;
    rewrote = true;
  } else {
    ++held_;
  }
  if (drifted(static_cast<std::int64_t>(soft),
              static_cast<std::int64_t>(track.applied_soft))) {
    pod.container->update_mem_soft_limit(soft);
    track.applied_soft = soft;
    rewrote = true;
  }

  if (rewrote) {
    ++rewrites_;
    ARV_LOG(kDebug, "vpa",
            "pod %d resized: shares=%lld quota=%lldm soft=%lld hard=%lld",
            pod.id, static_cast<long long>(track.applied_shares),
            static_cast<long long>(track.applied_quota_millicpu),
            static_cast<long long>(track.applied_soft),
            static_cast<long long>(track.applied_hard));
  }
}

// --- ClusterAutoscaler --------------------------------------------------------

ClusterAutoscaler::ClusterAutoscaler(Cluster& cluster, CaConfig config)
    : cluster_(cluster),
      config_(config),
      strategy_(PlacementRegistry::instance().make(config.strategy)) {
  ARV_ASSERT(config_.period > 0);
  ARV_ASSERT(config_.min_hosts >= 1);
  ARV_ASSERT(config_.add_below_permille < config_.drain_above_permille);
  ARV_ASSERT(config_.band_rounds >= 1);
  ARV_ASSERT(config_.max_drain_migrations_per_round >= 1);
  ARV_ASSERT_MSG(strategy_ != nullptr, "unknown placement strategy");
  register_telemetry();
}

ClusterAutoscaler::~ClusterAutoscaler() {
  if (cluster_.host_count() > kControlHost) {
    cluster_.host(kControlHost).sysfs().remove_control_subtree(
        "/sys/arv/autoscale/cluster/");
  }
}

void ClusterAutoscaler::register_telemetry() {
  if (obs::TraceRecorder* trace = cluster_.trace()) {
    trace->add_gauge("autoscale.hosts", "", [this] {
      return static_cast<std::int64_t>(cluster_.active_hosts());
    });
    trace->add_counter("autoscale.hosts_added", "", [this] {
      return static_cast<std::int64_t>(hosts_added_);
    });
    trace->add_counter("autoscale.hosts_drained", "", [this] {
      return static_cast<std::int64_t>(hosts_drained_);
    });
  }
  if (cluster_.host_count() > kControlHost) {
    vfs::VirtualSysfs& sysfs = cluster_.host(kControlHost).sysfs();
    const std::string prefix = "/sys/arv/autoscale/cluster/";
    sysfs.register_control_file(prefix + "hosts", [this] {
      return std::to_string(cluster_.active_hosts()) + "\n";
    });
    sysfs.register_control_file(prefix + "slack_permille", [this] {
      return std::to_string(last_slack_permille_) + "\n";
    });
    sysfs.register_control_file(prefix + "hosts_added",
                                counter_file(hosts_added_));
    sysfs.register_control_file(prefix + "hosts_drained",
                                counter_file(hosts_drained_));
    sysfs.register_control_file(prefix + "drain_migrations",
                                counter_file(drain_migrations_));
    sysfs.register_control_file(prefix + "deferred", counter_file(deferred_));
  }
}

void ClusterAutoscaler::continue_drain(SimTime now) {
  if (!cluster_.host_up(draining_)) {
    // The victim crashed mid-drain. Its pods belong to the failure path
    // now; leave the host cordoned (it was on its way out regardless).
    draining_ = -1;
    ++drains_cancelled_;
    return;
  }
  if (cluster_.pods_on(draining_) == 0) {
    ARV_LOG(kInfo, "ca", "host h%d drained", draining_);
    ++hosts_drained_;
    draining_ = -1;
    cooldown_until_ = now + config_.cooldown;
    return;
  }
  // Evict up to the per-round budget through the normal migration path.
  // The draining host is cordoned, so the strategy can never bounce a pod
  // back onto it. Failed/in-flight pods resolve through their own paths
  // first; pods_on() keeps the drain open until the ledger is empty.
  FleetView views = cluster_.fleet_view();
  int budget = config_.max_drain_migrations_per_round;
  for (int id = 0; id < cluster_.pod_count() && budget > 0; ++id) {
    const Pod& pod = cluster_.pod(id);
    if (pod.host != draining_ || !pod.running()) {
      continue;
    }
    const int target = strategy_->select(pod.spec, views, cluster_.rng());
    if (target < 0) {
      ++deferred_;  // nowhere to put it this round; drain stays open
      continue;
    }
    ARV_LOG(kInfo, "ca", "draining h%d: migrating pod %d -> h%d", draining_,
            id, target);
    cluster_.migrate_pod(id, target);
    views.claim(target, pod.spec);
    ++drain_migrations_;
    --budget;
  }
}

void ClusterAutoscaler::tick(SimTime now, SimDuration /*dt*/) {
  if (draining_ >= 0) {
    continue_drain(now);
  }

  // Fleet-wide effective slack over the *active* hosts (parked and dead
  // machines are not capacity). The published snapshot is fresh —
  // components dispatch after the boundary fleet refresh each tick.
  if (cluster_.views().empty()) {
    (void)cluster_.fleet_view();  // tests tick before the first step
  }
  const std::vector<HostView>& views = cluster_.views();
  std::int64_t slack = 0;
  std::int64_t capacity = 0;
  for (const HostView& view : views) {
    if (!view.schedulable()) {
      continue;
    }
    slack += std::min(view.slack_millicpu, view.capacity_millicpu);
    capacity += view.capacity_millicpu;
  }
  last_slack_permille_ = frac_permille(slack, capacity);

  if (last_slack_permille_ < config_.add_below_permille) {
    ++low_rounds_;
    high_rounds_ = 0;
  } else if (last_slack_permille_ > config_.drain_above_permille) {
    ++high_rounds_;
    low_rounds_ = 0;
  } else {
    low_rounds_ = 0;
    high_rounds_ = 0;
  }

  // Starved for band_rounds: grow. Cancelling an open drain counts as the
  // grow step (the victim rejoins instantly, no machine boot needed).
  if (low_rounds_ >= config_.band_rounds && now >= cooldown_until_) {
    low_rounds_ = 0;
    if (draining_ >= 0) {
      ARV_LOG(kInfo, "ca", "slack collapsed: cancelling drain of h%d",
              draining_);
      cluster_.cordon_host(draining_, false);
      draining_ = -1;
      ++drains_cancelled_;
      cooldown_until_ = now + config_.cooldown;
      return;
    }
    int parked = -1;
    for (int i = 0; i < cluster_.host_count(); ++i) {
      if (cluster_.host_up(i) && cluster_.host_cordoned(i)) {
        parked = i;
        break;
      }
    }
    if (parked < 0) {
      ++deferred_;  // fleet is at its physical maximum
      return;
    }
    ARV_LOG(kInfo, "ca", "slack %lld‰ < %lld‰: adding host h%d",
            static_cast<long long>(last_slack_permille_),
            static_cast<long long>(config_.add_below_permille), parked);
    cluster_.cordon_host(parked, false);
    ++hosts_added_;
    cooldown_until_ = now + config_.cooldown;
    return;
  }

  // Idle for band_rounds: shrink — cordon the cheapest victim and start
  // walking its pods off through the migration path.
  if (high_rounds_ >= config_.band_rounds && now >= cooldown_until_ &&
      draining_ < 0 && cluster_.active_hosts() > config_.min_hosts) {
    high_rounds_ = 0;
    int victim = -1;
    int fewest = std::numeric_limits<int>::max();
    for (const HostView& view : views) {
      // <= prefers the highest index among ties: late machines leave first,
      // and the control-plane host (h0) leaves last.
      if (view.schedulable() && view.pods <= fewest) {
        fewest = view.pods;
        victim = view.index;
      }
    }
    if (victim < 0) {
      return;
    }
    ARV_LOG(kInfo, "ca", "slack %lld‰ > %lld‰: draining host h%d (%d pods)",
            static_cast<long long>(last_slack_permille_),
            static_cast<long long>(config_.drain_above_permille), victim,
            fewest);
    cluster_.cordon_host(victim, true);
    draining_ = victim;
  }
}

}  // namespace arv::cluster
