#include "src/cluster/fleet_view.h"

#include <algorithm>

#include "src/util/assert.h"

namespace arv::cluster {
namespace {

void append_signed(std::string& out, std::int64_t value) {
  if (value >= 0) {
    out += '+';
  }
  out += std::to_string(value);
}

}  // namespace

void FleetView::claim(int host, const PodSpec& spec) {
  HostView& view = hosts.at(static_cast<std::size_t>(host));
  const container::K8sResources& r = spec.resources;
  view.requested_millicpu += r.request_millicpu;
  view.requested_memory += r.request_memory;
  view.slack_millicpu =
      std::max<std::int64_t>(0, view.slack_millicpu - r.request_millicpu);
  view.free_memory = std::max<Bytes>(0, view.free_memory - r.request_memory);
  ++view.pods;
  // Synthetic row (id -1): not a real pod yet, but profile-aware scoring must
  // see the just-claimed resident — otherwise every replica of a surge would
  // score the host as if its siblings were not coming.
  PodRow row;
  row.host = host;
  row.service = intern_service(spec.service.empty() ? spec.name : spec.service);
  row.request_millicpu = r.request_millicpu;
  row.request_memory = r.request_memory;
  row.running = true;
  pods.push_back(row);
}

void FleetView::reserve(int host, const container::K8sResources& resources) {
  HostView& view = hosts.at(static_cast<std::size_t>(host));
  view.slack_millicpu = std::max<std::int64_t>(
      0, view.slack_millicpu - resources.request_millicpu);
  view.free_memory =
      std::max<Bytes>(0, view.free_memory - resources.request_memory);
}

bool FleetView::same_content(const FleetView& other) const {
  return hosts == other.hosts && pods == other.pods &&
         services == other.services;
}

FleetViewDiff FleetView::diff(const FleetView& prev) const {
  FleetViewDiff out;
  out.from = prev.generation;
  out.to = generation;
  for (const PodRow& row : pods) {
    if (row.id < 0) {
      continue;  // synthetic claim rows never appear in a published snapshot
    }
    const PodRow* before =
        row.id < prev.pod_count() ? &prev.pods[static_cast<std::size_t>(row.id)]
                                  : nullptr;
    const int old_host = before == nullptr ? -1 : before->host;
    if (row.host >= 0 && old_host < 0) {
      out.added.push_back(row.id);
    } else if (row.host < 0 && old_host >= 0) {
      out.removed.push_back(row.id);
    } else if (row.host >= 0 && old_host >= 0 && row.host != old_host) {
      out.moved.push_back({row.id, old_host, row.host});
    }
  }
  const int shared =
      std::min(host_count(), prev.host_count());
  for (int i = 0; i < shared; ++i) {
    const HostView& now = hosts[static_cast<std::size_t>(i)];
    const HostView& before = prev.hosts[static_cast<std::size_t>(i)];
    HostDelta delta;
    delta.host = i;
    delta.slack_delta_millicpu = now.slack_millicpu - before.slack_millicpu;
    delta.free_delta_bytes = static_cast<std::int64_t>(now.free_memory) -
                             static_cast<std::int64_t>(before.free_memory);
    delta.requested_delta_millicpu =
        now.requested_millicpu - before.requested_millicpu;
    delta.pods_delta = now.pods - before.pods;
    delta.up_changed = now.up != before.up;
    delta.cordon_changed = now.cordoned != before.cordoned;
    if (delta.slack_delta_millicpu != 0 || delta.free_delta_bytes != 0 ||
        delta.requested_delta_millicpu != 0 || delta.pods_delta != 0 ||
        delta.up_changed || delta.cordon_changed) {
      out.hosts.push_back(delta);
    }
  }
  return out;
}

void FleetView::rebuild_pod_index() {
  host_pod_offsets.assign(hosts.size() + 1, 0);
  for (const PodRow& row : pods) {
    if (row.id >= 0 && row.host >= 0) {
      ++host_pod_offsets[static_cast<std::size_t>(row.host) + 1];
    }
  }
  for (std::size_t h = 1; h < host_pod_offsets.size(); ++h) {
    host_pod_offsets[h] += host_pod_offsets[h - 1];
  }
  host_pod_ids.assign(static_cast<std::size_t>(host_pod_offsets.back()), -1);
  std::vector<int> cursor(host_pod_offsets.begin(), host_pod_offsets.end() - 1);
  for (const PodRow& row : pods) {  // pods are in id order, so buckets are too
    if (row.id >= 0 && row.host >= 0) {
      host_pod_ids[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(row.host)]++)] = row.id;
    }
  }
}

int FleetView::intern_service(const std::string& name) {
  for (std::size_t i = 0; i < services.size(); ++i) {
    if (services[i] == name) {
      return static_cast<int>(i);
    }
  }
  services.push_back(name);
  return static_cast<int>(services.size()) - 1;
}

std::string FleetView::render_hosts() const {
  std::string out = "generation " + std::to_string(generation) + "\n";
  for (const HostView& h : hosts) {
    out += "h" + std::to_string(h.index);
    out += " cap=" + std::to_string(h.capacity_millicpu) + "m/" +
           std::to_string(h.capacity_memory);
    out += " req=" + std::to_string(h.requested_millicpu) + "m/" +
           std::to_string(h.requested_memory);
    out += " slack=" + std::to_string(h.slack_millicpu) + "m";
    out += " free=" + std::to_string(h.free_memory);
    out += " pods=" + std::to_string(h.pods);
    out += h.up ? " up" : " down";
    if (h.cordoned) {
      out += " cordoned";
    }
    out += "\n";
  }
  return out;
}

std::string FleetView::render_pods() const {
  std::string out = "generation " + std::to_string(generation) + "\n";
  for (const PodRow& p : pods) {
    if (p.id < 0) {
      continue;
    }
    out += "pod" + std::to_string(p.id);
    out += " host=" + std::to_string(p.host);
    out += " svc=" + service_name(p.service);
    out += " req=" + std::to_string(p.request_millicpu) + "m/" +
           std::to_string(p.request_memory);
    out += " committed=" + std::to_string(p.committed);
    if (p.samples > 0) {
      out += " cpu_p50=" + std::to_string(p.cpu_p50_millicpu) + "m";
      out += " cpu_p95=" + std::to_string(p.cpu_p95_millicpu) + "m";
      out += " mem_p50=" + std::to_string(p.mem_p50);
      out += " mem_p95=" + std::to_string(p.mem_p95);
      out += " burst=" + std::to_string(p.burst_permille);
      out += " samples=" + std::to_string(p.samples);
    }
    if (p.running) {
      out += " running";
    } else if (p.in_flight) {
      out += " in-flight";
    } else if (p.failed) {
      out += " failed";
    } else {
      out += " stopped";
    }
    out += "\n";
  }
  return out;
}

std::string FleetViewDiff::render() const {
  std::string out = "generation " + std::to_string(from) + " -> " +
                    std::to_string(to) + "\n";
  for (const int id : added) {
    out += "+pod" + std::to_string(id) + "\n";
  }
  for (const int id : removed) {
    out += "-pod" + std::to_string(id) + "\n";
  }
  for (const PodMove& move : moved) {
    out += "pod" + std::to_string(move.pod) + " h" + std::to_string(move.from) +
           "->h" + std::to_string(move.to) + "\n";
  }
  for (const HostDelta& d : hosts) {
    out += "h" + std::to_string(d.host);
    out += " slack=";
    append_signed(out, d.slack_delta_millicpu);
    out += "m free=";
    append_signed(out, d.free_delta_bytes);
    out += " req=";
    append_signed(out, d.requested_delta_millicpu);
    out += "m pods=";
    append_signed(out, static_cast<std::int64_t>(d.pods_delta));
    if (d.up_changed) {
      out += " up-flipped";
    }
    if (d.cordon_changed) {
      out += " cordon-flipped";
    }
    out += "\n";
  }
  return out;
}

FleetView FleetView::from_hosts(std::vector<HostView> host_views) {
  FleetView view;
  view.hosts = std::move(host_views);
  view.rebuild_pod_index();
  return view;
}

}  // namespace arv::cluster
