// ProfileStore — per-pod usage profiles (C-Balancer, arXiv:2009.08912).
//
// C-Balancer's argument: scheduling from *profiles* (what a container's usage
// distribution looks like) beats scheduling from instantaneous load (what it
// happens to be doing this round). The store is an ordinary cluster tick
// component: every round it samples each running pod's CPU burn and committed
// memory, and maintains over a sliding window
//
//   * CPU p50/p95 (milli-CPUs) and memory p50/p95 (bytes), nearest-rank, all
//     integer, so profiles are bit-identical on every platform;
//   * burstiness = cpu p95 / p50, in per-mille (1000 = flat, 3000 = spiky);
//   * per-service round-usage series, from which pairwise *correlation*
//     between services is computed on demand (integer Pearson, widened
//     through __int128) — the anti-colocation signal: two services whose
//     bursts line up should not share a host.
//
// Baselines are (host, cgroup)-keyed like the VPA's: a pod that migrates or
// restarts resets its *baseline* wherever it lands, so a relocation never
// reads as a usage spike — but the percentile window survives the move (the
// usage shape is a property of the workload, not the host). Profiles for
// stopped pods are pruned.
//
// The Cluster copies the cached percentiles into FleetView pod rows at every
// refresh; the "profile" placement strategy and the Rebalancer's victim
// selection consume them from there, and reach back here only for the
// pairwise correlation queries flattened rows cannot carry.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "src/cluster/cluster.h"
#include "src/sim/engine.h"

namespace arv::cluster {

struct ProfileConfig {
  /// Sampling-round length (one usage sample per running pod per round).
  SimDuration period = 100 * units::msec;
  /// Sliding-window length, in rounds, over which percentiles are taken.
  int window_rounds = 32;
  /// Rows report as profiled (samples > 0 consumers act on) only once the
  /// window holds at least this many rounds; correlation queries likewise.
  int min_samples = 8;
};

/// The queryable per-pod result (also copied into FleetView::PodRow).
struct PodProfile {
  std::int64_t cpu_p50_millicpu = 0;
  std::int64_t cpu_p95_millicpu = 0;
  Bytes mem_p50 = 0;
  Bytes mem_p95 = 0;
  std::int64_t burst_permille = 0;  ///< cpu p95/p50 per-mille
  int samples = 0;                  ///< 0 until min_samples rounds observed
};

class ProfileStore : public sim::TickComponent {
 public:
  /// Attaches itself to the cluster (Cluster::attach_profiles) so FleetView
  /// rows carry the percentiles; detaches on destruction.
  explicit ProfileStore(Cluster& cluster, ProfileConfig config = {});
  ~ProfileStore() override;

  // --- sim::TickComponent (dispatched by Cluster) ---------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "cluster.profiles"; }
  SimDuration tick_period() const override { return config_.period; }

  // --- queries --------------------------------------------------------------
  /// The pod's cached profile; samples == 0 while unprofiled (window not yet
  /// at min_samples, pod unknown, or pod stopped).
  PodProfile profile(int pod_id) const;

  /// Pearson correlation of two pods' round-usage series over the shared
  /// window, in per-mille of [-1000, 1000]. 0 when either window is shorter
  /// than min_samples or either series is flat (no co-variation to speak of).
  std::int64_t pod_correlation_permille(int a, int b) const;

  /// Same, over the *service*-aggregated round-usage series — the signal the
  /// "profile" strategy anti-colocates on (replicas of a bursty service
  /// correlate through their shared arrival stream even when individual
  /// replicas' windows are young).
  std::int64_t service_correlation_permille(const std::string& a,
                                            const std::string& b) const;

  int min_samples() const { return config_.min_samples; }
  /// Pods currently tracked (bounded by the live — running, in-flight, or
  /// failed-awaiting-restart — pod count; stopped pods are pruned).
  int tracked_pods() const { return static_cast<int>(track_.size()); }
  std::uint64_t rounds() const { return rounds_; }

  /// The service a pod profiles under: PodSpec::service, falling back to the
  /// pod name when unset.
  static const std::string& service_of(const Pod& pod);

 private:
  struct PodTrack {
    int host = -1;  ///< baseline invalid after migration/failover/restart
    cgroup::CgroupId cgroup = 0;
    CpuTime last_usage = 0;
    std::deque<std::int64_t> cpu_millicpu;  ///< per-round usage samples
    std::deque<Bytes> mem_bytes;
    PodProfile cached;
  };

  void recompute(PodTrack& track);

  Cluster& cluster_;
  ProfileConfig config_;
  std::map<int, PodTrack> track_;  ///< pod id -> window (ordered => determinism)
  /// Per-service per-round aggregate CPU series (milli-CPUs), same window.
  std::map<std::string, std::deque<std::int64_t>> service_series_;
  std::uint64_t rounds_ = 0;
};

}  // namespace arv::cluster
