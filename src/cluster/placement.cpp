#include "src/cluster/placement.h"

#include <algorithm>

#include "src/cluster/fleet_view.h"
#include "src/cluster/profile.h"
#include "src/util/assert.h"

namespace arv::cluster {
namespace {

using container::QosClass;

int qos_rank(const PodSpec& pod) {
  switch (container::qos_class(pod.resources)) {
    case QosClass::kGuaranteed:
      return 0;
    case QosClass::kBurstable:
      return 1;
    case QosClass::kBestEffort:
      return 2;
  }
  return 2;
}

/// kube-scheduler baseline: feasibility and scoring on declared requests
/// only. Packing flavour (MostAllocated): the tightest-fitting host wins, so
/// requests concentrate and whole hosts stay free for big pods — and so the
/// strategy inherits the semantic gap when requests overstate actual usage.
class RequestsStrategy final : public PlacementStrategy {
 public:
  std::string name() const override { return "requests"; }

  int queue_rank(const PodSpec& pod) const override { return qos_rank(pod); }

  int select(const PodSpec& pod, const FleetView& fleet,
             Rng& rng) const override {
    const auto& r = pod.resources;
    const std::vector<HostView>& hosts = fleet.hosts;
    std::vector<std::int64_t> scores(hosts.size(), -1);
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      const HostView& h = hosts[i];
      if (!h.schedulable()) {
        continue;  // crashed or cordoned hosts schedule nothing
      }
      const std::int64_t cpu_after = h.requested_millicpu + r.request_millicpu;
      const Bytes mem_after = h.requested_memory + r.request_memory;
      if (cpu_after > h.capacity_millicpu || mem_after > h.capacity_memory) {
        continue;  // does not fit on declared requests
      }
      scores[i] = frac_permille(cpu_after, h.capacity_millicpu) +
                  frac_permille(mem_after, h.capacity_memory);
    }
    return pick_best(scores, rng);
  }
};

/// Effective-capacity placement: trusts what the host machinery *observes*
/// (window slack from the scheduler the Ns_Monitor reads, current free
/// memory) instead of what operators declared. A host whose declared
/// requests are oversubscribed but whose containers idle still shows slack
/// and keeps accepting pods; a host with pslack pinned at zero does not,
/// whatever its request ledger says.
class EffectiveStrategy final : public PlacementStrategy {
 public:
  /// A host must show at least this much observed idle CPU to be feasible.
  static constexpr std::int64_t kMinSlackMillicpu = 100;  // a tenth of a core
  /// Free memory kept in reserve beyond the pod's own request.
  static constexpr Bytes kMemReserve = 64 * units::MiB;

  std::string name() const override { return "effective"; }

  int select(const PodSpec& pod, const FleetView& fleet,
             Rng& rng) const override {
    const auto& r = pod.resources;
    const std::vector<HostView>& hosts = fleet.hosts;
    std::vector<std::int64_t> scores(hosts.size(), -1);
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      const HostView& h = hosts[i];
      if (!h.schedulable()) {
        continue;  // crashed or cordoned hosts schedule nothing
      }
      if (h.slack_millicpu < kMinSlackMillicpu) {
        continue;  // observed saturated: placing here only adds interference
      }
      if (h.free_memory < r.request_memory + kMemReserve) {
        continue;  // would start reclaiming immediately
      }
      // Headroom of the bottleneck resource, in per-mille of capacity. min()
      // rather than a sum: a host with idle CPUs but no free memory (or the
      // reverse) is a bad home whatever the other axis says.
      const std::int64_t cpu_headroom =
          frac_permille(h.slack_millicpu, h.capacity_millicpu);
      const std::int64_t mem_headroom =
          frac_permille(h.free_memory - r.request_memory, h.capacity_memory);
      scores[i] = std::min(cpu_headroom, mem_headroom);
    }
    return pick_best(scores, rng);
  }
};

/// Profile-driven placement (C-Balancer): score hosts on *projected* p95
/// load — the sum of residents' profiled p95s plus the incoming pod's own
/// expected p95 — instead of the instantaneous slack "effective" reads.
/// Instantaneous slack at a bursty pod's trough looks identical to real
/// headroom; the p95 sum does not. On top of the load score, anti-colocate:
/// a host already housing a replica of the same service, or of a service
/// whose usage series positively correlates with the incoming pod's, is
/// penalized in proportion — two services whose bursts line up should not
/// share a host.
class ProfileStrategy final : public PlacementStrategy {
 public:
  std::string name() const override { return "profile"; }

  int select(const PodSpec& pod, const FleetView& fleet,
             Rng& rng) const override {
    const auto& r = pod.resources;
    const std::vector<HostView>& hosts = fleet.hosts;
    const std::string& service =
        pod.service.empty() ? pod.name : pod.service;

    // One O(pods) pass: per-host projected p95 load and resident services.
    // A row counts while it holds capacity on its host — running, in flight,
    // or synthetically claimed by an earlier decision in the same round.
    std::vector<std::int64_t> projected(hosts.size(), 0);
    std::vector<std::vector<int>> residents(hosts.size());
    std::int64_t incoming_p95_sum = 0;
    int incoming_profiled = 0;
    for (const PodRow& row : fleet.pods) {
      if (row.samples > 0 && service == fleet.service_name(row.service)) {
        incoming_p95_sum += row.cpu_p95_millicpu;
        ++incoming_profiled;
      }
      if (row.host < 0 || row.host >= static_cast<int>(hosts.size()) ||
          !(row.running || row.in_flight)) {
        continue;
      }
      const std::size_t h = static_cast<std::size_t>(row.host);
      projected[h] +=
          row.samples > 0 ? row.cpu_p95_millicpu : row.request_millicpu;
      residents[h].push_back(row.service);
    }
    // The incoming pod's expected p95: the mean over profiled replicas of
    // its own service anywhere in the fleet, else its declared request.
    const std::int64_t incoming_p95 =
        incoming_profiled > 0 ? incoming_p95_sum / incoming_profiled
                              : r.request_millicpu;

    std::vector<std::int64_t> scores(hosts.size(), -1);
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      const HostView& h = hosts[i];
      // Feasibility is "effective"'s: observed signals gate admission.
      if (!h.schedulable()) {
        continue;
      }
      if (h.slack_millicpu < EffectiveStrategy::kMinSlackMillicpu) {
        continue;
      }
      if (h.free_memory < r.request_memory + EffectiveStrategy::kMemReserve) {
        continue;
      }
      const std::int64_t cpu_headroom = frac_permille(
          h.capacity_millicpu - projected[i] - incoming_p95,
          h.capacity_millicpu);
      const std::int64_t mem_headroom =
          frac_permille(h.free_memory - r.request_memory, h.capacity_memory);
      const std::int64_t base = std::min(cpu_headroom, mem_headroom);
      // Anti-colocation penalty: the worst resident decides. Same service is
      // perfectly correlated by construction (shared arrival stream).
      std::int64_t penalty = 0;
      for (const int svc : residents[i]) {
        std::int64_t corr = 0;
        if (service == fleet.service_name(svc)) {
          corr = 1000;
        } else if (fleet.profiles != nullptr) {
          corr = fleet.profiles->service_correlation_permille(
              service, fleet.service_name(svc));
        }
        penalty = std::max(penalty, corr);
      }
      // The +1000 offset keeps the penalty discriminative when projected
      // load consumes the whole machine: base bottoms out at 0 for every
      // tight host, and a clamped `base - penalty` would tie a correlated
      // host with an uncorrelated one — exactly the pair that must differ.
      // base and penalty are both in [0, 1000], so the score is too, shifted.
      scores[i] = 1000 + base - penalty;
    }
    return pick_best(scores, rng);
  }
};

}  // namespace

int PlacementStrategy::queue_rank(const PodSpec& /*pod*/) const { return 0; }

std::int64_t frac_permille(std::int64_t part, std::int64_t whole) {
  constexpr std::int64_t kScale = 1000;
  if (whole <= 0 || part <= 0) {
    return 0;
  }
  if (part >= whole) {
    return kScale;
  }
  // part < whole here, so the quotient is < kScale; only the multiply can
  // overflow int64 (at ~9.2 PB of byte headroom), hence the 128-bit detour.
  // (__extension__ keeps -Wpedantic quiet about the non-ISO 128-bit type.)
  __extension__ using Wide = unsigned __int128;
  const Wide wide = static_cast<Wide>(part) * static_cast<Wide>(kScale);
  return static_cast<std::int64_t>(wide / static_cast<Wide>(whole));
}

int pick_best(const std::vector<std::int64_t>& scores, Rng& rng) {
  std::int64_t best = -1;
  int ties = 0;
  for (const std::int64_t score : scores) {
    if (score > best) {
      best = score;
      ties = 1;
    } else if (score >= 0 && score == best) {
      ++ties;
    }
  }
  if (best < 0) {
    return -1;
  }
  // Reservoir-style single pass is overkill for a handful of hosts; pick the
  // n-th tie directly so exactly one rng draw happens per decision with ties.
  const std::int64_t pick = ties > 1 ? rng.uniform_int(0, ties - 1) : 0;
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] == best) {
      if (seen == pick) {
        return static_cast<int>(i);
      }
      ++seen;
    }
  }
  return -1;  // unreachable
}

PlacementRegistry::PlacementRegistry() {
  register_strategy("requests",
                    [] { return std::make_unique<RequestsStrategy>(); });
  register_strategy("effective",
                    [] { return std::make_unique<EffectiveStrategy>(); });
  register_strategy("profile",
                    [] { return std::make_unique<ProfileStrategy>(); });
}

PlacementRegistry& PlacementRegistry::instance() {
  static PlacementRegistry registry;
  return registry;
}

void PlacementRegistry::register_strategy(const std::string& name,
                                          Factory factory) {
  ARV_ASSERT(factory != nullptr);
  factories_[name] = std::move(factory);
}

bool PlacementRegistry::has(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::unique_ptr<PlacementStrategy> PlacementRegistry::make(
    const std::string& name) const {
  const auto it = factories_.find(name);
  return it == factories_.end() ? nullptr : it->second();
}

std::vector<std::string> PlacementRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace arv::cluster
