#include "src/cluster/faults.h"

#include <algorithm>

#include "src/container/host.h"
#include "src/core/ns_monitor.h"
#include "src/mem/memory_manager.h"
#include "src/obs/trace_recorder.h"
#include "src/util/assert.h"
#include "src/util/log.h"

namespace arv::cluster {

FaultPlan& FaultPlan::add(FaultEvent event) {
  events.push_back(event);
  return *this;
}

FaultPlan FaultPlan::random(Rng& rng, const ChaosOptions& options,
                            int host_count, int pod_count) {
  ARV_ASSERT(host_count >= 1);
  ARV_ASSERT(options.horizon > 0);
  ARV_ASSERT(options.min_reboot <= options.max_reboot);
  ARV_ASSERT(options.min_hold <= options.max_hold);
  ARV_ASSERT(options.min_pressure_permille <= options.max_pressure_permille);
  FaultPlan plan;
  const auto when = [&] { return rng.uniform_int(0, options.horizon - 1); };
  const auto which_host = [&] {
    return static_cast<int>(rng.uniform_int(0, host_count - 1));
  };
  for (int i = 0; i < options.host_crashes; ++i) {
    FaultEvent event;
    event.kind = FaultEvent::Kind::kHostCrash;
    event.at = when();
    event.host = which_host();
    event.duration = rng.uniform_int(options.min_reboot, options.max_reboot);
    plan.add(event);
  }
  for (int i = 0; i < options.pod_crashes && pod_count > 0; ++i) {
    FaultEvent event;
    event.kind = FaultEvent::Kind::kPodCrash;
    event.at = when();
    event.pod = static_cast<int>(rng.uniform_int(0, pod_count - 1));
    plan.add(event);
  }
  for (int i = 0; i < options.pressure_spikes; ++i) {
    FaultEvent event;
    event.kind = FaultEvent::Kind::kMemoryPressure;
    event.at = when();
    event.host = which_host();
    event.duration = rng.uniform_int(options.min_hold, options.max_hold);
    event.permille = static_cast<int>(rng.uniform_int(
        options.min_pressure_permille, options.max_pressure_permille));
    plan.add(event);
  }
  for (int i = 0; i < options.monitor_stalls; ++i) {
    FaultEvent event;
    event.kind = FaultEvent::Kind::kMonitorStall;
    event.at = when();
    event.host = which_host();
    event.duration = rng.uniform_int(options.min_hold, options.max_hold);
    plan.add(event);
  }
  return plan;
}

FaultInjector::FaultInjector(Cluster& cluster, FaultPlan plan)
    : cluster_(cluster), events_(std::move(plan.events)) {
  std::stable_sort(
      events_.begin(), events_.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  if (obs::TraceRecorder* trace = cluster_.trace()) {
    trace->add_counter("faults.injected", "", [this] {
      return static_cast<std::int64_t>(injected_);
    });
    trace->add_counter("faults.skipped", "", [this] {
      return static_cast<std::int64_t>(skipped_);
    });
  }
}

bool FaultInjector::done() const {
  return next_event_ == events_.size() && reboot_at_.empty() &&
         pressure_until_.empty() && stall_until_.empty();
}

void FaultInjector::recover(SimTime now) {
  for (auto it = reboot_at_.begin(); it != reboot_at_.end();) {
    if (it->second > now) {
      ++it;
      continue;
    }
    if (!cluster_.host_up(it->first)) {
      cluster_.reboot_host(it->first);
    }
    it = reboot_at_.erase(it);
  }
  for (auto it = pressure_until_.begin(); it != pressure_until_.end();) {
    if (it->second > now) {
      ++it;
      continue;
    }
    cluster_.host(it->first).memory().reserve_host_memory(0);
    it = pressure_until_.erase(it);
  }
  for (auto it = stall_until_.begin(); it != stall_until_.end();) {
    if (it->second > now) {
      ++it;
      continue;
    }
    cluster_.host(it->first).monitor().set_stalled(false);
    it = stall_until_.erase(it);
  }
}

void FaultInjector::fire(const FaultEvent& event, SimTime now) {
  switch (event.kind) {
    case FaultEvent::Kind::kHostCrash: {
      ARV_ASSERT(event.host >= 0 && event.host < cluster_.host_count());
      if (!cluster_.host_up(event.host)) {
        ++skipped_;  // already down
        return;
      }
      cluster_.crash_host(event.host);
      if (event.duration > 0) {
        reboot_at_[event.host] = now + event.duration;
      }
      // The crash wiped the machine: the pressure reservation dies with it
      // (reboot re-clears it too), and a wedged monitor daemon is "fixed"
      // by the reboot. Keep the stall until its scheduled end though — the
      // monitor keeps ticking while the host is down, which is harmless.
      ++injected_;
      break;
    }
    case FaultEvent::Kind::kPodCrash: {
      if (event.pod < 0 || event.pod >= cluster_.pod_count() ||
          !cluster_.pod(event.pod).running()) {
        ++skipped_;  // stopped, in flight, or already failed
        return;
      }
      cluster_.crash_pod(event.pod);
      ++injected_;
      break;
    }
    case FaultEvent::Kind::kMemoryPressure: {
      ARV_ASSERT(event.host >= 0 && event.host < cluster_.host_count());
      if (!cluster_.host_up(event.host)) {
        ++skipped_;  // a down host has no workloads to pressure
        return;
      }
      const Bytes ram = cluster_.host(event.host).ram();
      Bytes amount = event.bytes > 0
                         ? event.bytes
                         : ram * static_cast<Bytes>(event.permille) / 1000;
      amount = std::min(amount, ram);
      cluster_.host(event.host).memory().reserve_host_memory(amount);
      if (event.duration > 0) {
        pressure_until_[event.host] =
            std::max(pressure_until_[event.host], now + event.duration);
      }
      ARV_LOG(kDebug, "faults", "pressure on h%d: %lld bytes", event.host,
              static_cast<long long>(amount));
      ++injected_;
      break;
    }
    case FaultEvent::Kind::kMonitorStall: {
      ARV_ASSERT(event.host >= 0 && event.host < cluster_.host_count());
      cluster_.host(event.host).monitor().set_stalled(true);
      if (event.duration > 0) {
        stall_until_[event.host] =
            std::max(stall_until_[event.host], now + event.duration);
      }
      ++injected_;
      break;
    }
  }
}

void FaultInjector::tick(SimTime now, SimDuration /*dt*/) {
  // Recoveries first: a reboot scheduled for t must not be pre-empted by a
  // same-tick crash event (crash-after-reboot is the interesting order, and
  // it is also the deterministic one: plan events fire after recoveries).
  recover(now);
  while (next_event_ < events_.size() && events_[next_event_].at <= now) {
    fire(events_[next_event_], now);
    ++next_event_;
  }
}

}  // namespace arv::cluster
