#include "src/cluster/pod_workloads.h"

#include <memory>
#include <utility>

#include "src/workloads/hogs.h"

namespace arv::cluster {
namespace {

class WebWorkload final : public PodWorkload {
 public:
  WebWorkload(container::Host& host, container::Container& container,
              server::WebConfig config)
      : server_(host, container, config) {}

  server::WorkerPoolServer* request_sink() override { return &server_; }

 private:
  server::WorkerPoolServer server_;
};

class CpuHogWorkload final : public PodWorkload {
 public:
  CpuHogWorkload(container::Host& host, container::Container& container,
                 int threads, SimDuration budget)
      : hog_(host, container, threads, budget) {}

 private:
  workloads::CpuHog hog_;
};

class MemHogWorkload final : public PodWorkload {
 public:
  MemHogWorkload(container::Host& host, container::Container& container,
                 Bytes footprint, Bytes charge_per_sec)
      : hog_(host, container, footprint, charge_per_sec) {}

 private:
  workloads::MemHog hog_;
};

}  // namespace

WorkloadFactory web_replica(server::WebConfig config) {
  config.arrivals_per_sec = 0;  // the router is the only traffic source
  return [config](container::Host& host, container::Container& container) {
    return std::make_unique<WebWorkload>(host, container, config);
  };
}

WorkloadFactory web_standalone(server::WebConfig config) {
  return [config](container::Host& host, container::Container& container) {
    return std::make_unique<WebWorkload>(host, container, config);
  };
}

WorkloadFactory cpu_hog_workload(int threads, SimDuration cpu_budget) {
  return [threads, cpu_budget](container::Host& host,
                               container::Container& container) {
    return std::make_unique<CpuHogWorkload>(host, container, threads,
                                            cpu_budget);
  };
}

WorkloadFactory mem_hog_workload(Bytes footprint, Bytes charge_per_sec) {
  return [footprint, charge_per_sec](container::Host& host,
                                     container::Container& container) {
    return std::make_unique<MemHogWorkload>(host, container, footprint,
                                            charge_per_sec);
  };
}

}  // namespace arv::cluster
