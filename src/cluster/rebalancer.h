// Rebalancer — C-Balancer-style corrective migration.
//
// Placement decides once; load changes afterwards. The rebalancer watches
// each host's slack between rounds and, when a host has shown (effectively)
// zero slack for K consecutive rounds while another host has observed
// headroom, migrates one container from the saturated host to the roomiest
// one. Victim selection is profile-driven when a ProfileStore is attached
// to the cluster: the saturated host evicts its hottest pod by *profiled*
// p95 CPU (burstiness breaks ties — the spikier pod is the likelier cause
// of the saturation), falling back to the per-round usage-delta signal when
// no profiles exist. Guard rails against thrashing:
//
//   * K consecutive saturated rounds before a host qualifies as a source
//     (a single busy round never triggers a move);
//   * per-host cooldown after a migration (source and target both sit out);
//   * per-pod minimum residency (a freshly-landed pod cannot bounce);
//   * at most one migration per round, and the migration itself costs a
//     freeze proportional to the pod's committed memory (Cluster's model),
//     so even a misjudged move is paid for, not free.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/sim/engine.h"

namespace arv::cluster {

struct RebalanceConfig {
  /// Round length (how often host slack is judged).
  SimDuration period = 250 * units::msec;
  /// A host is a migration source after this many consecutive rounds with
  /// slack below slack_epsilon_frac of its round capacity.
  int saturated_rounds = 4;
  /// "Zero slack" tolerance, in per-mille of the host's round capacity:
  /// idle time under this counts as none (scheduling crumbs are not
  /// headroom). Integer so the trigger stays in exact arithmetic.
  std::int64_t slack_epsilon_permille = 10;
  /// A target must show at least this much observed idle CPU...
  std::int64_t target_min_slack_millicpu = 1000;  // one whole idle core
  /// ...and keep this much free memory beyond the pod's committed state.
  Bytes target_min_free = 256 * units::MiB;
  /// Post-migration quiet time for both the source and the target host.
  SimDuration cooldown = 2 * units::sec;
  /// A pod must have lived this long on its host before moving (again).
  SimDuration min_residency = 2 * units::sec;
};

class Rebalancer : public sim::TickComponent {
 public:
  Rebalancer(Cluster& cluster, RebalanceConfig config = {});

  // --- sim::TickComponent (dispatched by Cluster) ---------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "cluster.rebalancer"; }
  SimDuration tick_period() const override { return config_.period; }

  std::uint64_t migrations() const { return migrations_; }
  int saturated_rounds(int host) const {
    return track_.at(static_cast<std::size_t>(host)).saturated_rounds;
  }
  /// Pods with a live usage-delta baseline. Bounded by the running-pod
  /// count: baselines of stopped/migrated/crashed pods are pruned every
  /// round (and the profile-driven victim path keeps none at all).
  int tracked_pods() const { return static_cast<int>(pod_last_usage_.size()); }

 private:
  struct HostTrack {
    int saturated_rounds = 0;
    SimTime cooldown_until = 0;
    CpuTime last_total_slack = 0;
  };

  Cluster& cluster_;
  RebalanceConfig config_;
  std::vector<HostTrack> track_;
  std::map<int, CpuTime> pod_last_usage_;  ///< pod id -> cumulative CPU usage
  std::uint64_t migrations_ = 0;
};

}  // namespace arv::cluster
