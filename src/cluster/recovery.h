// Failure recovery: the control loops that pick the fleet back up after
// faults.h knocks it over.
//
//   * FailureDetector — a phi-accrual-style detector reduced to its
//     deterministic core: one observation round per `period`; a host that is
//     down for `miss_threshold` consecutive rounds is *declared* dead, and
//     from then until it comes back every failed pod stranded on it is
//     failed over to the best up host the placement strategy will accept
//     (retried each round while no host fits). Waiting M rounds instead of
//     reacting instantly is what separates a crash from a blip — a host
//     that reboots inside the window keeps its pods for the cheaper
//     restart-in-place path.
//
//   * RestartManager — the kubelet side: failed pods whose host is up are
//     restarted in place after a capped exponential backoff
//     (CrashLoopBackOff), with the backoff counter reset once a pod stays
//     up long enough. It also turns OOM kills into crashes: a running pod
//     whose cgroup was OOM-killed by the memory manager is marked failed
//     and enters the same backoff loop.
//
// Both components are counter-driven and consume no randomness beyond what
// the placement strategy draws on score ties, so recovery preserves the
// cluster's byte-identical-trace determinism contract. See docs/FAULTS.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/placement.h"
#include "src/sim/engine.h"

namespace arv::cluster {

struct DetectorConfig {
  /// Observation-round cadence (one "heartbeat" per round).
  SimDuration period = 100 * units::msec;
  /// Consecutive missed rounds before a host is declared dead.
  int miss_threshold = 3;
  /// Placement strategy used to choose failover targets ("effective" routes
  /// refugees toward observed headroom; "requests" packs declared numbers).
  std::string strategy = "effective";
};

class FailureDetector : public sim::TickComponent {
 public:
  FailureDetector(Cluster& cluster, DetectorConfig config = {});

  // --- sim::TickComponent ---------------------------------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "cluster.failure_detector"; }
  SimDuration tick_period() const override { return config_.period; }

  /// Hosts currently declared dead (down >= miss_threshold rounds).
  int declared_dead() const;
  bool is_declared_dead(int host_index) const {
    return track_.at(static_cast<std::size_t>(host_index)).declared;
  }

  std::uint64_t declarations() const { return declarations_; }
  /// Failovers this detector initiated (== the cluster counter's delta when
  /// nothing else calls failover_pod).
  std::uint64_t failovers_initiated() const { return failovers_initiated_; }
  /// Pods that were due for failover but had no feasible target that round.
  std::uint64_t deferred() const { return deferred_; }

 private:
  struct HostTrack {
    int missed = 0;
    bool declared = false;
  };

  Cluster& cluster_;
  DetectorConfig config_;
  std::unique_ptr<PlacementStrategy> strategy_;
  std::vector<HostTrack> track_;
  std::uint64_t declarations_ = 0;
  std::uint64_t failovers_initiated_ = 0;
  std::uint64_t deferred_ = 0;
};

struct RestartConfig {
  /// Scan cadence; also the resolution of the backoff delays.
  SimDuration period = 50 * units::msec;
  /// Backoff after the Nth consecutive crash: base * 2^(N-1), capped.
  SimDuration backoff_base = 100 * units::msec;
  SimDuration backoff_cap = 5 * units::sec;
  /// A pod that stays up this long after a restart leaves the crash loop
  /// (its next crash backs off from `backoff_base` again).
  SimDuration reset_after = 10 * units::sec;
};

class RestartManager : public sim::TickComponent {
 public:
  RestartManager(Cluster& cluster, RestartConfig config = {});

  // --- sim::TickComponent ---------------------------------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "cluster.restart_manager"; }
  SimDuration tick_period() const override { return config_.period; }

  std::uint64_t restarts_issued() const { return restarts_issued_; }
  /// Running pods whose cgroup the memory manager OOM-killed, converted to
  /// pod crashes by this manager.
  std::uint64_t oom_crashes() const { return oom_crashes_; }

  /// Current consecutive-crash count for a pod (0 = not in a crash loop).
  int crash_streak(int pod_id) const;
  /// The backoff delay the Nth consecutive crash earns.
  SimDuration backoff_for(int streak) const;

 private:
  struct PodTrack {
    int streak = 0;          ///< consecutive crashes without a stable run
    SimTime next_attempt = -1;  ///< -1 = no restart scheduled
  };

  PodTrack& track(int pod_id);

  Cluster& cluster_;
  RestartConfig config_;
  std::vector<PodTrack> track_;
  std::uint64_t restarts_issued_ = 0;
  std::uint64_t oom_crashes_ = 0;
};

}  // namespace arv::cluster
