#include "src/cluster/recovery.h"

#include <algorithm>

#include "src/container/host.h"
#include "src/mem/memory_manager.h"
#include "src/util/assert.h"
#include "src/util/log.h"

namespace arv::cluster {

// --- FailureDetector ----------------------------------------------------------

FailureDetector::FailureDetector(Cluster& cluster, DetectorConfig config)
    : cluster_(cluster),
      config_(config),
      strategy_(PlacementRegistry::instance().make(config.strategy)) {
  ARV_ASSERT(config_.period > 0);
  ARV_ASSERT(config_.miss_threshold >= 1);
  ARV_ASSERT_MSG(strategy_ != nullptr, "unknown placement strategy");
  track_.resize(static_cast<std::size_t>(cluster_.host_count()));
}

int FailureDetector::declared_dead() const {
  int dead = 0;
  for (const HostTrack& track : track_) {
    dead += track.declared ? 1 : 0;
  }
  return dead;
}

void FailureDetector::tick(SimTime /*now*/, SimDuration /*dt*/) {
  ARV_ASSERT_MSG(static_cast<int>(track_.size()) == cluster_.host_count(),
                 "hosts added after the detector was constructed");
  // 1. One observation round: an up host answers its heartbeat, a down one
  //    misses it. Declaration waits for miss_threshold consecutive misses
  //    so a fast reboot (a blip) never triggers failover.
  for (int i = 0; i < cluster_.host_count(); ++i) {
    HostTrack& track = track_[static_cast<std::size_t>(i)];
    if (cluster_.host_up(i)) {
      track.missed = 0;
      track.declared = false;
      continue;
    }
    ++track.missed;
    if (!track.declared && track.missed >= config_.miss_threshold) {
      track.declared = true;
      ++declarations_;
      ARV_LOG(kWarn, "detector", "h%d declared dead after %d missed rounds",
              i, track.missed);
    }
  }

  // 2. Evacuate: every failed pod stranded on a declared-dead host goes to
  //    the strategy's best up host. The fleet view is copied once and then
  //    *adjusted in place* (FleetView::claim) as refugees land. Re-reading
  //    fleet_view() after each failover — the old behaviour — is worse than
  //    useless here: the refugee has not burned a cycle yet, so the fresh
  //    read restores the target's pre-landing observed slack/free-memory and
  //    every refugee in the burst races into the same host, blowing past its
  //    real headroom. Reservations deducted up front for pods already in
  //    flight (migrations) keep their reserved-but-unobserved share from
  //    being promised twice.
  FleetView views = cluster_.fleet_view();
  for (int id = 0; id < cluster_.pod_count(); ++id) {
    const Pod& pod = cluster_.pod(id);
    if (pod.in_flight()) {
      // The ledger already counts the reservation (the snapshot includes
      // it), but the *observed* axes the effective strategy scores on do
      // not; deduct the declared request so the landing slot stays held.
      views.reserve(pod.host, pod.spec.resources);
    }
  }
  for (int id = 0; id < cluster_.pod_count(); ++id) {
    const Pod& pod = cluster_.pod(id);
    if (!pod.failed || pod.host < 0 ||
        !track_[static_cast<std::size_t>(pod.host)].declared) {
      continue;
    }
    const int target = strategy_->select(pod.spec, views, cluster_.rng());
    if (target < 0) {
      ++deferred_;
      continue;
    }
    ARV_LOG(kInfo, "detector", "failing pod %d over: h%d -> h%d", id,
            pod.host, target);
    cluster_.failover_pod(id, target);
    ++failovers_initiated_;
    // Charge the refugee against the target's view so the next refugee sees
    // the post-landing headroom, not the snapshot.
    views.claim(target, pod.spec);
  }
}

// --- RestartManager -----------------------------------------------------------

RestartManager::RestartManager(Cluster& cluster, RestartConfig config)
    : cluster_(cluster), config_(config) {
  ARV_ASSERT(config_.period > 0);
  ARV_ASSERT(config_.backoff_base > 0);
  ARV_ASSERT(config_.backoff_cap >= config_.backoff_base);
}

RestartManager::PodTrack& RestartManager::track(int pod_id) {
  if (static_cast<std::size_t>(pod_id) >= track_.size()) {
    track_.resize(static_cast<std::size_t>(pod_id) + 1);
  }
  return track_[static_cast<std::size_t>(pod_id)];
}

int RestartManager::crash_streak(int pod_id) const {
  return static_cast<std::size_t>(pod_id) < track_.size()
             ? track_[static_cast<std::size_t>(pod_id)].streak
             : 0;
}

SimDuration RestartManager::backoff_for(int streak) const {
  ARV_ASSERT(streak >= 1);
  // base * 2^(streak-1), saturating at the cap (shift bounded so a long
  // crash loop cannot overflow the integer delay).
  SimDuration delay = config_.backoff_base;
  for (int i = 1; i < streak && delay < config_.backoff_cap; ++i) {
    delay *= 2;
  }
  return std::min(delay, config_.backoff_cap);
}

void RestartManager::tick(SimTime now, SimDuration /*dt*/) {
  for (int id = 0; id < cluster_.pod_count(); ++id) {
    const Pod& pod = cluster_.pod(id);
    PodTrack& state = track(id);
    if (pod.running()) {
      if (state.streak > 0 && now - pod.placed_at >= config_.reset_after) {
        state.streak = 0;  // stable: the next crash is a fresh incident
      }
      if (!cluster_.host(pod.host).memory().oom_killed(
              pod.container->cgroup())) {
        continue;
      }
      // The kernel OOM-killed the pod's process; surface it as a crash so
      // it enters the same CrashLoopBackOff path as any other death.
      ARV_LOG(kWarn, "restart", "pod %d oom-killed on h%d", id, pod.host);
      cluster_.crash_pod(id);
      ++oom_crashes_;
    }
    if (!pod.failed || pod.host < 0 || !cluster_.host_up(pod.host)) {
      // Stopped, in flight, or stranded on a down host (the detector's
      // case). Any scheduled attempt is void — after a reboot the pod
      // re-enters backoff from scratch at the next scan.
      state.next_attempt = -1;
      continue;
    }
    if (state.next_attempt < 0) {
      ++state.streak;
      state.next_attempt = now + backoff_for(state.streak);
      continue;
    }
    if (now >= state.next_attempt) {
      state.next_attempt = -1;
      cluster_.restart_pod(id);
      ++restarts_issued_;
    }
  }
}

}  // namespace arv::cluster
