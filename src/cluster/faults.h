// Deterministic fault injection for the cluster layer.
//
// A FaultPlan is a fixed schedule of fault events — host crashes (with an
// optional reboot delay), pod process crashes, host-memory pressure spikes
// (pin RAM outside every cgroup so kswapd/OOM regimes engage), and
// Ns_Monitor stalls (the view daemon wedges; containers read stale views
// until it recovers and catches up in one round). Plans can be written by
// hand or drawn from the cluster's Rng (FaultPlan::random), and the same
// seed + plan always produces the byte-identical cluster trace: the
// injector consumes no randomness at fire time, events fire in (time,
// insertion) order, and recoveries (reboot, pressure release, un-stall) are
// applied before new events each tick, in host order.
//
// The injector only *breaks* things. Recovery of the pods themselves is the
// job of recovery.h (FailureDetector, RestartManager); docs/FAULTS.md has
// the full fault model.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/sim/engine.h"
#include "src/util/rng.h"

namespace arv::cluster {

struct FaultEvent {
  enum class Kind {
    kHostCrash,       ///< crash `host`; reboot after `duration` (0 = never)
    kPodCrash,        ///< kill `pod`'s process (no-op if not running)
    kMemoryPressure,  ///< reserve `bytes` of host RAM for `duration`
    kMonitorStall,    ///< wedge `host`'s Ns_Monitor for `duration`
  };

  Kind kind = Kind::kPodCrash;
  SimTime at = 0;
  int host = -1;  ///< kHostCrash / kMemoryPressure / kMonitorStall
  int pod = -1;   ///< kPodCrash
  /// Reboot delay / pressure hold / stall length. 0 means the fault is
  /// permanent (the host never self-reboots, the pressure/stall never
  /// lifts) — recovery must come from elsewhere (reboot_host, chaos end).
  SimDuration duration = 0;
  /// kMemoryPressure reservation. Absolute bytes, or — when bytes == 0 —
  /// `permille` of the target host's RAM, resolved at fire time (randomized
  /// plans are built before they meet a concrete fleet). Clamped to RAM.
  Bytes bytes = 0;
  int permille = 0;
};

/// Knobs for FaultPlan::random. Event times are uniform over [0, horizon);
/// durations and sizes uniform over their ranges. Everything integer, so a
/// plan is a pure function of the rng state.
struct ChaosOptions {
  SimDuration horizon = 10 * units::sec;
  int host_crashes = 1;
  int pod_crashes = 3;
  int pressure_spikes = 2;
  int monitor_stalls = 2;
  SimDuration min_reboot = 500 * units::msec;
  SimDuration max_reboot = 3 * units::sec;
  SimDuration min_hold = 200 * units::msec;  ///< pressure / stall durations
  SimDuration max_hold = 2 * units::sec;
  /// Pressure reservation as permille of the target host's RAM.
  int min_pressure_permille = 700;
  int max_pressure_permille = 950;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& add(FaultEvent event);

  /// Draw a randomized plan for a fleet of `host_count` hosts and
  /// `pod_count` pods. Deterministic in the rng state; the generated events
  /// are not sorted — the injector fires same-time events in plan order.
  static FaultPlan random(Rng& rng, const ChaosOptions& options,
                          int host_count, int pod_count);
};

/// Replays a FaultPlan against a Cluster as a cluster-level TickComponent.
class FaultInjector : public sim::TickComponent {
 public:
  /// Registers `faults.injected` / `faults.skipped` with the cluster trace
  /// when tracing is on. Events are stably sorted by time, so same-time
  /// events keep plan order.
  FaultInjector(Cluster& cluster, FaultPlan plan);

  // --- sim::TickComponent ---------------------------------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "cluster.fault_injector"; }
  SimDuration tick_period() const override { return 0; }  // every tick

  /// Events fired so far (a skipped event — crashing an already-down host,
  /// a pod that is not running — counts as skipped, not injected).
  std::uint64_t injected() const { return injected_; }
  std::uint64_t skipped() const { return skipped_; }
  /// True once every event fired and every recovery (reboot, pressure
  /// release, un-stall) has been applied — the plan is fully drained.
  bool done() const;

 private:
  void fire(const FaultEvent& event, SimTime now);
  void recover(SimTime now);

  Cluster& cluster_;
  std::vector<FaultEvent> events_;  ///< stably sorted by `at`
  std::size_t next_event_ = 0;
  // Pending recoveries, one slot per host per fault kind; map iteration is
  // host order, so recovery application is deterministic.
  std::map<int, SimTime> reboot_at_;
  std::map<int, SimTime> pressure_until_;
  std::map<int, SimTime> stall_until_;
  std::uint64_t injected_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace arv::cluster
