// Closed-loop autoscaling on effective views (ROADMAP: HPA + VPA + cluster
// autoscaler).
//
// Three tick components close the loop the paper's per-container adaptation
// opens. Each consumes the *observed* effective-capacity signals (HostView
// arena, per-container resource views, scheduler usage counters) rather than
// the declared K8sResources the kube stack scales on:
//
//   HorizontalAutoscaler  replica count per service — router-observed arrival
//                         rate vs per-replica effective capacity, with
//                         scale-up/scale-down stabilization windows and a
//                         max-surge bound (the kube HPA control shape, fed by
//                         honest signals).
//   VerticalRecommender   ARC-V-style per-pod limit rewriting: p50/p95 of
//                         observed usage over a sliding window drive live
//                         cgroup updates (cpu.shares, cfs_quota, memory
//                         soft/hard limits). Pods in CpuMode::kBurstable get
//                         shares only, never a quota — the throttle-free mode
//                         "CPU-Limits kill Performance" (PAPERS.md) argues
//                         for.
//   ClusterAutoscaler     fleet size — when fleet-wide effective slack
//                         crosses hysteresis bands, parked (cordoned) hosts
//                         are brought in or populated hosts are cordoned and
//                         drained through the existing migration path.
//
// All three are ordinary cluster components: they mutate only in the serial
// phases (the same ordering pin the FaultInjector and Rebalancer rely on),
// draw randomness only through placement tie-breaks, and therefore preserve
// the byte-identical-trace contract at any thread count. Decision counters
// surface as cluster trace series (autoscale.replicas, autoscale.hosts,
// vpa.rewrites, …) and as /sys/arv/autoscale/ + /sys/arv/vpa/ control-plane
// files on a designated host's sysfs.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/router.h"
#include "src/server/server_runtime.h"
#include "src/sim/engine.h"

namespace arv::cluster {

// --- HorizontalAutoscaler -----------------------------------------------------

struct HpaConfig {
  /// Decision-round length.
  SimDuration period = 250 * units::msec;
  int min_replicas = 1;
  int max_replicas = 16;
  /// Target utilization of per-replica *effective* capacity, per-mille. The
  /// controller sizes the service so demand lands at this fraction of what
  /// the replicas' resource views say they can actually use.
  std::int64_t target_utilization_permille = 700;
  /// CPU cost of one request; must match the replicas' WebConfig.service_cpu
  /// (the HPA has no oracle — it converts arrivals to CPU demand with this).
  SimDuration request_cpu = 4 * units::msec;
  /// Replicas added in one decision round, at most (kube maxSurge).
  int max_surge = 4;
  /// Replicas removed in one decision round, at most.
  int max_scale_down = 1;
  /// Demand must exceed capacity continuously this long before scaling up
  /// (defeats single-round spikes).
  SimDuration up_stabilization = 500 * units::msec;
  /// Scale-down uses the *maximum* desired count recommended over this
  /// trailing window (kube's stabilizationWindowSeconds), so a brief lull
  /// never sheds replicas a recovering flash crowd still needs.
  SimDuration down_stabilization = 5 * units::sec;
  /// Placement strategy for new replicas.
  std::string strategy = "effective";
};

/// Scales one service's replica set. New replicas are cloned from a PodSpec
/// template (cpu_mode included) with web_replica workloads and enrolled in
/// the router rotation; removed replicas are stopped but stay enrolled, so
/// their request history keeps counting in the fleet aggregate.
class HorizontalAutoscaler : public sim::TickComponent {
 public:
  HorizontalAutoscaler(Cluster& cluster, RequestRouter& router,
                       PodSpec replica_template, server::WebConfig web,
                       HpaConfig config = {});
  ~HorizontalAutoscaler() override;

  /// Take ownership of an already-placed replica (seed pods created before
  /// the autoscaler existed). The pod must already be in the router rotation.
  void adopt(int pod_id);

  // --- sim::TickComponent ---------------------------------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "cluster.hpa"; }
  SimDuration tick_period() const override { return config_.period; }

  // --- telemetry ------------------------------------------------------------
  /// Managed replicas currently running or in flight (the controlled count).
  int replicas() const;
  /// The controller's last raw recommendation (pre-stabilization clamp).
  int desired() const { return last_desired_; }
  std::uint64_t scale_ups() const { return scale_ups_; }      ///< pods added
  std::uint64_t scale_downs() const { return scale_downs_; }  ///< pods stopped
  /// Decisions suppressed by a stabilization window.
  std::uint64_t held() const { return held_; }
  /// Scale-ups wanted but infeasible (no schedulable host); retried.
  std::uint64_t deferred() const { return deferred_; }

 private:
  int place_replica(FleetView& views);
  /// Mean effective capacity of the running replicas, in milli-CPUs; falls
  /// back to the template's declared CPU when no replica has a live view.
  std::int64_t effective_millicpu_per_replica() const;
  void register_telemetry();

  Cluster& cluster_;
  RequestRouter& router_;
  PodSpec template_;
  server::WebConfig web_;
  HpaConfig config_;
  std::unique_ptr<PlacementStrategy> strategy_;
  std::vector<int> managed_;  ///< pod ids, in creation order
  std::uint64_t last_generated_ = 0;
  int last_desired_ = 0;
  /// Rolling (time, desired) recommendations inside down_stabilization.
  std::deque<std::pair<SimTime, int>> recent_desired_;
  SimTime above_since_ = -1;  ///< when desired first exceeded current; -1 = not
  int created_ = 0;           ///< replica name counter (never reused)
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
  std::uint64_t held_ = 0;
  std::uint64_t deferred_ = 0;
};

// --- VerticalRecommender ------------------------------------------------------

struct VpaConfig {
  /// Sampling round length (one usage sample per pod per round).
  SimDuration period = 100 * units::msec;
  /// Sliding-window length, in rounds, over which percentiles are taken.
  int window_rounds = 20;
  /// Recommend (and possibly rewrite) every this many sampling rounds.
  int recommend_every = 5;
  /// Hard limits are p95 * margin (per-mille; 1200 = +20 % headroom).
  std::int64_t limit_margin_permille = 1200;
  /// A knob is rewritten only when the recommendation drifts at least this
  /// far (per-mille) from the last applied value — ARC-V's guard against
  /// rewrite churn.
  std::int64_t min_change_permille = 100;
  /// Recommendation floors: a briefly-idle pod never gets starved to zero.
  std::int64_t min_millicpu = 100;
  Bytes min_memory = 64 * units::MiB;
};

/// Rewrites every running pod's cgroup knobs from observed usage percentiles
/// (live `docker update`, no restart): cpu.shares from p50, cfs_quota from
/// p95 (+margin) for kQuotaCapped pods only, memory soft limit from p50 and
/// hard limit from p95 (+margin, floored above current committed bytes so a
/// rewrite can never insta-OOM the pod it is sizing).
class VerticalRecommender : public sim::TickComponent {
 public:
  explicit VerticalRecommender(Cluster& cluster, VpaConfig config = {});
  ~VerticalRecommender() override;

  // --- sim::TickComponent ---------------------------------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "cluster.vpa"; }
  SimDuration tick_period() const override { return config_.period; }

  // --- telemetry ------------------------------------------------------------
  /// Pods that had at least one knob rewritten, summed over rounds.
  std::uint64_t rewrites() const { return rewrites_; }
  std::uint64_t cpu_raised() const { return cpu_raised_; }
  std::uint64_t cpu_lowered() const { return cpu_lowered_; }
  std::uint64_t mem_raised() const { return mem_raised_; }
  std::uint64_t mem_lowered() const { return mem_lowered_; }
  /// Recommendations inside the min_change hysteresis band (not applied).
  std::uint64_t held() const { return held_; }

 private:
  struct PodTrack {
    int host = -1;  ///< baseline invalid after migration/failover/restart
    cgroup::CgroupId cgroup = 0;
    CpuTime last_usage = 0;
    std::deque<std::int64_t> cpu_millicpu;  ///< per-round usage samples
    std::deque<Bytes> mem_bytes;
    int rounds = 0;
    // Last applied values; 0 = never applied (compare against the floor).
    std::int64_t applied_shares = 0;
    std::int64_t applied_quota_millicpu = 0;
    Bytes applied_soft = 0;
    Bytes applied_hard = 0;
  };

  void recommend(Pod& pod, PodTrack& track);
  void register_telemetry();

  Cluster& cluster_;
  VpaConfig config_;
  std::map<int, PodTrack> track_;
  std::uint64_t rewrites_ = 0;
  std::uint64_t cpu_raised_ = 0;
  std::uint64_t cpu_lowered_ = 0;
  std::uint64_t mem_raised_ = 0;
  std::uint64_t mem_lowered_ = 0;
  std::uint64_t held_ = 0;
};

// --- ClusterAutoscaler --------------------------------------------------------

struct CaConfig {
  /// Decision-round length.
  SimDuration period = 500 * units::msec;
  /// Never drain below this many active hosts.
  int min_hosts = 1;
  /// Fleet-wide effective slack (per-mille of active capacity) below which
  /// a parked host is brought in…
  std::int64_t add_below_permille = 150;
  /// …and above which one is cordoned and drained. The dead band between
  /// the two is the hysteresis that stops add/drain flapping.
  std::int64_t drain_above_permille = 400;
  /// Consecutive out-of-band rounds required before acting.
  int band_rounds = 3;
  /// Quiet period after any add/drain completes.
  SimDuration cooldown = 2 * units::sec;
  /// Placement strategy for drain migrations.
  std::string strategy = "effective";
  /// Drain pace (the migration path pays a freeze per pod; one per round
  /// keeps the disturbance bounded, mirroring the Rebalancer's pin).
  int max_drain_migrations_per_round = 1;
};

/// Sizes the fleet. Machines are never created or destroyed mid-run (the
/// lockstep fleet is fixed at t=0): "removing" a host cordons it and
/// migrates its pods away — once empty and parked it quiesces, so the idle
/// skip makes it nearly free — and "adding" one uncordons a parked machine.
/// Start hosts cordoned (Cluster::cordon_host) to give the autoscaler spare
/// capacity to grow into.
class ClusterAutoscaler : public sim::TickComponent {
 public:
  explicit ClusterAutoscaler(Cluster& cluster, CaConfig config = {});
  ~ClusterAutoscaler() override;

  // --- sim::TickComponent ---------------------------------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "cluster.ca"; }
  SimDuration tick_period() const override { return config_.period; }

  // --- telemetry ------------------------------------------------------------
  /// Host currently being drained, or -1.
  int draining() const { return draining_; }
  std::uint64_t hosts_added() const { return hosts_added_; }
  std::uint64_t hosts_drained() const { return hosts_drained_; }
  std::uint64_t drain_migrations() const { return drain_migrations_; }
  /// Drains abandoned because slack collapsed (or the victim crashed).
  std::uint64_t drains_cancelled() const { return drains_cancelled_; }
  /// Adds wanted with no parked host left, or drain migrations with no
  /// feasible target; retried.
  std::uint64_t deferred() const { return deferred_; }
  /// Last computed fleet slack fraction (per-mille of active capacity).
  std::int64_t slack_permille() const { return last_slack_permille_; }

 private:
  void continue_drain(SimTime now);
  void register_telemetry();

  Cluster& cluster_;
  CaConfig config_;
  std::unique_ptr<PlacementStrategy> strategy_;
  int draining_ = -1;
  int low_rounds_ = 0;
  int high_rounds_ = 0;
  SimTime cooldown_until_ = 0;
  std::int64_t last_slack_permille_ = 0;
  std::uint64_t hosts_added_ = 0;
  std::uint64_t hosts_drained_ = 0;
  std::uint64_t drain_migrations_ = 0;
  std::uint64_t drains_cancelled_ = 0;
  std::uint64_t deferred_ = 0;
};

}  // namespace arv::cluster
