// Golden-trace regression support.
//
// A golden test serializes a deterministic trace (TraceRecorder::to_csv) and
// compares it byte-for-byte against a checked-in file. On mismatch the
// failure message carries a line diff, so a perturbed Algorithm 1/2 constant
// shows up as "e_cpu stepped to 7 instead of 6 at t=1.2s" rather than a
// boolean. Regeneration: run the same tests with ARV_REGOLDEN=1 in the
// environment and the goldens are rewritten in place (see
// docs/OBSERVABILITY.md).
#pragma once

#include <string>

namespace arv::obs {

/// True when the ARV_REGOLDEN environment variable is set to anything but
/// "" or "0" — the documented golden-regeneration switch.
bool regenerate_requested();

struct GoldenResult {
  bool ok = false;
  std::string message;  ///< diff / instructions when !ok, note when ok
};

/// Compare `actual` with the file at `path`. Under ARV_REGOLDEN the file is
/// (re)written and the comparison passes. A missing golden fails with
/// regeneration instructions.
GoldenResult compare_golden(const std::string& path, const std::string& actual);

/// Line-oriented diff of two texts: the first `max_reported` differing lines
/// with 1-based line numbers, plus a summary count. Empty when equal.
std::string diff_lines(const std::string& expected, const std::string& actual,
                       int max_reported = 12);

}  // namespace arv::obs
