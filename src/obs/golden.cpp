#include "src/obs/golden.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/util/str.h"

namespace arv::obs {
namespace {

std::vector<std::string> to_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) {
    lines.push_back(current);
  }
  return lines;
}

}  // namespace

bool regenerate_requested() {
  const char* value = std::getenv("ARV_REGOLDEN");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

std::string diff_lines(const std::string& expected, const std::string& actual,
                       int max_reported) {
  const auto want = to_lines(expected);
  const auto got = to_lines(actual);
  const std::size_t rows = std::max(want.size(), got.size());
  std::string out;
  int reported = 0;
  int total = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    const std::string* w = i < want.size() ? &want[i] : nullptr;
    const std::string* g = i < got.size() ? &got[i] : nullptr;
    if (w && g && *w == *g) {
      continue;
    }
    ++total;
    if (reported >= max_reported) {
      continue;
    }
    ++reported;
    out += strf("line %zu:\n", i + 1);
    out += strf("  golden: %s\n", w ? w->c_str() : "<missing>");
    out += strf("  actual: %s\n", g ? g->c_str() : "<missing>");
  }
  if (total > reported) {
    out += strf("... and %d more differing lines\n", total - reported);
  }
  if (total > 0) {
    out += strf("(%zu golden lines vs %zu actual lines, %d differ)\n",
                want.size(), got.size(), total);
  }
  // to_lines() collapses "a" and "a\n" to the same line list, so a byte
  // mismatch can otherwise slip through with an empty diff. Report the
  // trailing-newline difference explicitly.
  const bool want_nl = !expected.empty() && expected.back() == '\n';
  const bool got_nl = !actual.empty() && actual.back() == '\n';
  if (want_nl != got_nl) {
    out += strf("trailing newline: golden %s, actual %s\n",
                want_nl ? "present" : "missing", got_nl ? "present" : "missing");
  }
  return out;
}

GoldenResult compare_golden(const std::string& path, const std::string& actual) {
  if (regenerate_requested()) {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) {
      return {false, "cannot write golden file " + path};
    }
    file << actual;
    return {true, "regenerated " + path};
  }
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return {false,
            "golden file missing: " + path +
                "\nregenerate with: ARV_REGOLDEN=1 ctest -R GoldenTrace"};
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string expected = buffer.str();
  if (expected == actual) {
    return {true, ""};
  }
  return {false, "trace diverges from golden " + path + ":\n" +
                     diff_lines(expected, actual) +
                     "if the change is intended, regenerate with: "
                     "ARV_REGOLDEN=1 ctest -R GoldenTrace"};
}

}  // namespace arv::obs
