#include "src/obs/trace_recorder.h"

#include "src/util/assert.h"

namespace arv::obs {

TraceRecorder::TraceRecorder(TraceConfig config) : config_(config) {
  ARV_ASSERT(config.sample_interval >= 0);
}

SeriesHandle TraceRecorder::add_series(SeriesInfo info, Probe probe) {
  ARV_ASSERT(probe != nullptr);
  ARV_ASSERT_MSG(!info.name.empty(), "series name must not be empty");
  Series series;
  series.info = std::move(info);
  series.probe = std::move(probe);
  // A series registered mid-run backfills zeros so every column has one
  // value per recorded row.
  series.values.assign(times_.size(), 0);
  series_.push_back(std::move(series));
  return series_.size() - 1;
}

SeriesHandle TraceRecorder::add_gauge(std::string name, std::string scope,
                                      Probe probe) {
  return add_series(SeriesInfo{std::move(name), SeriesKind::kGauge, std::move(scope)},
                    std::move(probe));
}

SeriesHandle TraceRecorder::add_counter(std::string name, std::string scope,
                                        Probe probe) {
  return add_series(
      SeriesInfo{std::move(name), SeriesKind::kCounter, std::move(scope)},
      std::move(probe));
}

void TraceRecorder::retire(SeriesHandle handle) {
  ARV_ASSERT(handle < series_.size());
  series_[handle].probe = nullptr;
}

void TraceRecorder::tick(SimTime now, SimDuration /*dt*/) {
  if (now < next_sample_) {
    return;
  }
  sample_now(now);
  next_sample_ = now + config_.sample_interval;
}

void TraceRecorder::sample_now(SimTime now) {
  times_.push_back(now);
  for (Series& series : series_) {
    if (series.probe) {
      series.values.push_back(series.probe());
    } else {
      // Retired: repeat the last live value (a finished JVM's final heap
      // size stays on the chart instead of collapsing to zero).
      series.values.push_back(series.values.empty() ? 0 : series.values.back());
    }
  }
}

const SeriesInfo& TraceRecorder::info(SeriesHandle handle) const {
  ARV_ASSERT(handle < series_.size());
  return series_[handle].info;
}

const std::vector<std::int64_t>& TraceRecorder::values(SeriesHandle handle) const {
  ARV_ASSERT(handle < series_.size());
  return series_[handle].values;
}

std::string TraceRecorder::qualified_name(SeriesHandle handle) const {
  ARV_ASSERT(handle < series_.size());
  const SeriesInfo& info = series_[handle].info;
  return info.scope.empty() ? info.name : info.scope + "." + info.name;
}

std::optional<SeriesHandle> TraceRecorder::find(std::string_view qualified) const {
  for (SeriesHandle h = 0; h < series_.size(); ++h) {
    if (qualified_name(h) == qualified) {
      return h;
    }
  }
  return std::nullopt;
}

std::vector<std::string> TraceRecorder::series_names(std::string_view scope) const {
  std::vector<std::string> out;
  for (SeriesHandle h = 0; h < series_.size(); ++h) {
    if (scope.empty() || series_[h].info.scope == scope) {
      out.push_back(qualified_name(h));
    }
  }
  return out;
}

std::int64_t TraceRecorder::latest(SeriesHandle handle) const {
  ARV_ASSERT(handle < series_.size());
  const auto& values = series_[handle].values;
  return values.empty() ? 0 : values.back();
}

std::string TraceRecorder::to_csv() const {
  std::string out = "time_us";
  for (SeriesHandle h = 0; h < series_.size(); ++h) {
    out += ',';
    out += qualified_name(h);
  }
  out += '\n';
  for (std::size_t row = 0; row < times_.size(); ++row) {
    out += std::to_string(times_[row]);
    for (const Series& series : series_) {
      out += ',';
      out += std::to_string(series.values[row]);
    }
    out += '\n';
  }
  return out;
}

namespace {

void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
}

}  // namespace

std::string TraceRecorder::to_json() const {
  std::string out = "{\"times\":[";
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(times_[i]);
  }
  out += "],\"series\":[";
  for (SeriesHandle h = 0; h < series_.size(); ++h) {
    if (h > 0) {
      out += ',';
    }
    const Series& series = series_[h];
    out += "{\"name\":";
    append_json_string(out, qualified_name(h));
    out += ",\"kind\":";
    append_json_string(
        out, series.info.kind == SeriesKind::kCounter ? "counter" : "gauge");
    out += ",\"scope\":";
    append_json_string(out, series.info.scope);
    out += ",\"values\":[";
    for (std::size_t i = 0; i < series.values.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += std::to_string(series.values[i]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace arv::obs
