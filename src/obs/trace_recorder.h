// TraceRecorder — the observability layer's per-tick sampling core.
//
// Components register typed series (gauge or counter, host-wide or scoped to
// one container) as integer-valued probes; the recorder is itself a
// sim::TickComponent that the host registers *last*, so every sample sees the
// post-update state of the tick (scheduler grants -> memory/kswapd ->
// Ns_Monitor -> sample). Sampling is strictly observation-only: probes read
// state, the recorder never writes any.
//
// Series values are int64 by design — the whole simulation is integer
// microseconds/bytes, so traces serialize bit-for-bit deterministically and
// golden-trace diffs are meaningful.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/engine.h"
#include "src/util/types.h"

namespace arv::obs {

enum class SeriesKind {
  kGauge,    ///< point-in-time value (e_cpu, free memory, team size)
  kCounter,  ///< monotonically non-decreasing (update rounds, cpu usage)
};

/// A probe reads one value from the owning component. It must be free of
/// side effects: the recorder may call it once per tick or never.
using Probe = std::function<std::int64_t()>;

/// Opaque handle identifying a registered series (stable for the recorder's
/// lifetime; series are never removed, only retired).
using SeriesHandle = std::size_t;

struct SeriesInfo {
  std::string name;   ///< short name within the scope, e.g. "e_cpu"
  SeriesKind kind = SeriesKind::kGauge;
  std::string scope;  ///< "" = host-wide, else the owning container's name
};

struct TraceConfig {
  /// Time between samples; 0 samples on every engine tick.
  SimDuration sample_interval = 0;
};

class TraceRecorder final : public sim::TickComponent {
 public:
  explicit TraceRecorder(TraceConfig config = {});

  // --- registration ---------------------------------------------------------
  SeriesHandle add_gauge(std::string name, std::string scope, Probe probe);
  SeriesHandle add_counter(std::string name, std::string scope, Probe probe);

  /// Stop sampling a series (its owner is going away). History is kept and
  /// later samples repeat the final value, so columns stay aligned.
  void retire(SeriesHandle handle);

  // --- sampling -------------------------------------------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "obs.trace"; }
  /// The engine only needs to dispatch the recorder at the sampling cadence
  /// (0 = every tick).
  SimDuration tick_period() const override { return config_.sample_interval; }

  /// Record one row right now regardless of the sample interval.
  void sample_now(SimTime now);

  // --- access ---------------------------------------------------------------
  std::size_t series_count() const { return series_.size(); }
  std::size_t sample_count() const { return times_.size(); }
  const std::vector<SimTime>& times() const { return times_; }

  const SeriesInfo& info(SeriesHandle handle) const;
  const std::vector<std::int64_t>& values(SeriesHandle handle) const;

  /// "scope.name" for container series, plain "name" for host series — the
  /// CSV column header and the lookup key for find().
  std::string qualified_name(SeriesHandle handle) const;
  std::optional<SeriesHandle> find(std::string_view qualified) const;

  /// All qualified names in registration order; `scope` filters ("" = all).
  std::vector<std::string> series_names(std::string_view scope = "") const;

  /// Most recent sampled value (0 if no samples yet).
  std::int64_t latest(SeriesHandle handle) const;

  // --- export ---------------------------------------------------------------
  /// "time_us,<col>,<col>,...\n" header plus one row per sample.
  std::string to_csv() const;
  /// {"times":[...],"series":[{"name":...,"kind":...,"scope":...,"values":[...]}]}
  std::string to_json() const;

 private:
  struct Series {
    SeriesInfo info;
    Probe probe;  ///< null once retired
    std::vector<std::int64_t> values;
  };

  SeriesHandle add_series(SeriesInfo info, Probe probe);

  TraceConfig config_;
  SimTime next_sample_ = 0;
  std::vector<SimTime> times_;
  std::vector<Series> series_;
};

}  // namespace arv::obs
