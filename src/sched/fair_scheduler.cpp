#include "src/sched/fair_scheduler.h"

#include <algorithm>
#include <cmath>

#include "src/obs/trace_recorder.h"
#include "src/util/assert.h"

namespace arv::sched {
namespace {

/// Water-filling convergence: rounds are geometric, so a dozen suffices for
/// sub-microsecond residuals at 1 ms ticks.
constexpr int kMaxRounds = 16;
constexpr double kEpsilonUs = 1e-6;

}  // namespace

FairScheduler::FairScheduler(cgroup::Tree& tree, int online_cpus)
    : tree_(tree), online_cpus_(online_cpus) {
  ARV_ASSERT(online_cpus > 0 && online_cpus <= CpuSet::kMaxCpus);
  ARV_ASSERT_MSG(online_cpus == tree.online_cpus(),
                 "scheduler and cgroup tree must agree on CPU count");
}

void FairScheduler::attach(cgroup::CgroupId id, Schedulable* consumer) {
  ARV_ASSERT(tree_.exists(id));
  ARV_ASSERT(consumer != nullptr);
  auto& entity = entities_[id];
  ARV_ASSERT_MSG(std::find(entity.consumers.begin(), entity.consumers.end(),
                           consumer) == entity.consumers.end(),
                 "consumer attached twice");
  entity.consumers.push_back(consumer);
}

void FairScheduler::detach(cgroup::CgroupId id, Schedulable* consumer) {
  const auto it = entities_.find(id);
  if (it == entities_.end()) {
    return;
  }
  auto& consumers = it->second.consumers;
  consumers.erase(std::remove(consumers.begin(), consumers.end(), consumer),
                  consumers.end());
  // Keep the entity: its cumulative stats stay readable after detach.
}

bool FairScheduler::attached(cgroup::CgroupId id) const {
  const auto it = entities_.find(id);
  return it != entities_.end() && !it->second.consumers.empty();
}

void FairScheduler::refill_quota(cgroup::CgroupId id, Entity& entity, SimTime now) {
  // Nested cgroups inherit the tightest bandwidth cap along their path.
  const auto bandwidth = tree_.effective_bandwidth(id);
  if (bandwidth.quota_us == kUnlimited) {
    entity.quota_remaining = kUnlimited;
    return;
  }
  if (now >= entity.next_refill) {
    entity.quota_remaining = bandwidth.quota_us;
    // Align the next refill to the period grid, skipping missed periods.
    const SimDuration period = bandwidth.period_us;
    entity.next_refill = now + period - (now % period);
  }
}

void FairScheduler::tick(SimTime now, SimDuration dt) {
  struct Claim {
    cgroup::CgroupId id = -1;
    Entity* entity = nullptr;
    CpuSet mask;
    double weight = 0.0;
    double demand = 0.0;  // us of CPU time wanted this tick (post caps)
    double alloc = 0.0;
    double throttled = 0.0;  // demand clipped by quota
    int runnable = 0;
  };

  std::vector<Claim> claims;
  claims.reserve(entities_.size());
  int runnable_total = 0;

  for (auto& [id, entity] : entities_) {
    if (!tree_.exists(id)) {
      continue;  // cgroup destroyed with consumers still attached
    }
    refill_quota(id, entity, now);
    entity.stats.last_tick_grant = 0;
    int runnable = 0;
    for (const Schedulable* consumer : entity.consumers) {
      runnable += consumer->runnable_threads();
    }
    if (runnable <= 0) {
      continue;
    }
    runnable_total += runnable;

    Claim claim;
    claim.id = id;
    claim.entity = &entity;
    claim.mask = tree_.effective_cpuset(id);
    ARV_ASSERT_MSG(!claim.mask.empty(), "effective cpuset must be non-empty");
    claim.weight = static_cast<double>(tree_.get(id).cpu().shares);
    claim.runnable = runnable;

    const double thread_cap =
        static_cast<double>(std::min(runnable, claim.mask.count())) *
        static_cast<double>(dt);
    double quota_cap = thread_cap;
    if (entity.quota_remaining != kUnlimited) {
      quota_cap = std::min(thread_cap, static_cast<double>(entity.quota_remaining));
    }
    claim.demand = quota_cap;
    claim.throttled = thread_cap - quota_cap;
    claims.push_back(claim);
  }

  nr_running_ = runnable_total;
  loadavg_.add(static_cast<double>(runnable_total));

  // --- per-CPU weighted water-filling --------------------------------------
  std::vector<double> cpu_capacity(static_cast<std::size_t>(online_cpus_),
                                   static_cast<double>(dt));
  for (int round = 0; round < kMaxRounds; ++round) {
    double progress = 0.0;
    for (int cpu = 0; cpu < online_cpus_; ++cpu) {
      double& capacity = cpu_capacity[static_cast<std::size_t>(cpu)];
      if (capacity <= kEpsilonUs) {
        continue;
      }
      double weight_sum = 0.0;
      for (const Claim& claim : claims) {
        if (claim.demand - claim.alloc > kEpsilonUs && claim.mask.contains(cpu)) {
          weight_sum += claim.weight;
        }
      }
      if (weight_sum <= 0.0) {
        continue;
      }
      const double available = capacity;
      double used = 0.0;
      for (Claim& claim : claims) {
        const double unmet = claim.demand - claim.alloc;
        if (unmet <= kEpsilonUs || !claim.mask.contains(cpu)) {
          continue;
        }
        const double offer = available * claim.weight / weight_sum;
        const double take = std::min(offer, unmet);
        claim.alloc += take;
        used += take;
      }
      capacity -= used;
      progress += used;
    }
    if (progress <= kEpsilonUs) {
      break;
    }
  }

  // --- accounting + delivery -----------------------------------------------
  CpuTime granted_total = 0;
  for (Claim& claim : claims) {
    const double credited = claim.alloc + claim.entity->fraction_carry;
    const auto grant = static_cast<CpuTime>(credited);  // floor
    claim.entity->fraction_carry = credited - static_cast<double>(grant);
    granted_total += grant;
    Entity& entity = *claim.entity;
    entity.stats.total_usage += grant;
    entity.stats.last_tick_grant = grant;
    entity.stats.throttled_time += static_cast<CpuTime>(std::llround(claim.throttled));
    if (entity.quota_remaining != kUnlimited) {
      entity.quota_remaining = std::max<CpuTime>(0, entity.quota_remaining - grant);
    }

    // Split the grant across consumers proportionally to runnable threads,
    // remainder to the first hungry consumer (deterministic).
    CpuTime left = grant;
    const auto consumers = entity.consumers;  // copy: consume() may detach
    for (std::size_t k = 0; k < consumers.size(); ++k) {
      const int threads = consumers[k]->runnable_threads();
      if (threads <= 0) {
        continue;
      }
      CpuTime piece = k + 1 == consumers.size()
                          ? left
                          : grant * threads / std::max(1, claim.runnable);
      piece = std::min(piece, left);
      left -= piece;
      consumers[k]->consume(now, dt, piece);
    }
  }

  const CpuTime capacity_total = static_cast<CpuTime>(online_cpus_) * dt;
  // Each claimant may release up to 1 us of credit banked from earlier
  // under-granted ticks, so the per-tick bound has that much slack; the
  // cumulative bound (tested separately) stays exact.
  ARV_ASSERT_MSG(granted_total <=
                     capacity_total + static_cast<CpuTime>(claims.size()) + 1,
                 "allocated more CPU time than physically exists");
  last_tick_slack_ = std::max<CpuTime>(0, capacity_total - granted_total);
  total_slack_ += last_tick_slack_;
}

bool FairScheduler::idle() const {
  for (const auto& [id, entity] : entities_) {
    if (!tree_.exists(id)) {
      continue;  // tick() skips destroyed cgroups too
    }
    for (const Schedulable* consumer : entity.consumers) {
      if (consumer->runnable_threads() > 0) {
        return false;
      }
    }
  }
  return true;
}

void FairScheduler::accrue_idle(SimDuration dt, SimDuration tick_length) {
  ARV_ASSERT_MSG(idle(), "accrue_idle on a scheduler with runnable work");
  ARV_ASSERT(dt > 0 && tick_length > 0 && dt % tick_length == 0);
  for (auto& [id, entity] : entities_) {
    if (!tree_.exists(id)) {
      continue;
    }
    entity.stats.last_tick_grant = 0;
  }
  nr_running_ = 0;
  // Sample-by-sample, not pow(decay, n): repeated multiplication is what a
  // tick-by-tick run produces, and traces compare bit-for-bit.
  const SimDuration ticks = dt / tick_length;
  for (SimDuration i = 0; i < ticks; ++i) {
    loadavg_.add(0.0);
  }
  last_tick_slack_ = static_cast<CpuTime>(online_cpus_) * tick_length;
  total_slack_ += static_cast<CpuTime>(online_cpus_) * dt;
}

CpuTime FairScheduler::total_usage(cgroup::CgroupId id) const {
  const auto it = entities_.find(id);
  return it == entities_.end() ? 0 : it->second.stats.total_usage;
}

CpuTime FairScheduler::throttled_time(cgroup::CgroupId id) const {
  const auto it = entities_.find(id);
  return it == entities_.end() ? 0 : it->second.stats.throttled_time;
}

EntityStats FairScheduler::stats(cgroup::CgroupId id) const {
  const auto it = entities_.find(id);
  return it == entities_.end() ? EntityStats{} : it->second.stats;
}

SimDuration FairScheduler::scheduling_period() const {
  if (nr_running_ <= 8) {
    return 24 * units::msec;
  }
  return static_cast<SimDuration>(nr_running_) * 3 * units::msec;
}

void FairScheduler::set_loadavg_decay(double decay) {
  ARV_ASSERT(decay > 0.0 && decay < 1.0);
  loadavg_ = Ema(decay);
}

void FairScheduler::register_trace(obs::TraceRecorder& trace) const {
  trace.add_counter("sched.slack_total", "", [this] { return total_slack_; });
  trace.add_gauge("sched.slack_tick", "", [this] { return last_tick_slack_; });
  trace.add_gauge("sched.nr_running", "",
                  [this] { return static_cast<std::int64_t>(nr_running_); });
  // Fixed-point milli-loads: traces stay integer-valued end to end.
  trace.add_gauge("sched.loadavg_milli", "", [this] {
    return static_cast<std::int64_t>(loadavg_.value() * 1000.0);
  });
}

}  // namespace arv::sched
