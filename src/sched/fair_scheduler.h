// FairScheduler — a fluid-flow model of the Linux Completely Fair Scheduler
// with cgroup bandwidth control.
//
// Once per tick the scheduler distributes `online_cpus * dt` microseconds of
// CPU time among the attached cgroups using per-CPU weighted water-filling:
//
//   * a cgroup's demand is min(runnable threads, |cpuset|) * dt — a thread
//     can use at most one CPU's worth of time per tick;
//   * demand is further capped by the cgroup's remaining cfs_quota in the
//     current cfs_period (throttling);
//   * each CPU's capacity is shared among the cgroups whose cpuset permits
//     that CPU, proportionally to cpu.shares, iterating until no hungry
//     cgroup can be given more (work-conserving: capacity a capped or
//     satisfied cgroup declines flows to the others).
//
// This reproduces exactly the observables Algorithms 1–2 of the paper read:
// per-container usage, system-wide slack (pslack), throttling, and the
// work-conserving "use more than your share when others are idle" behaviour.
#pragma once

#include <map>
#include <vector>

#include "src/cgroup/cgroup.h"
#include "src/sim/engine.h"
#include "src/util/stats.h"
#include "src/util/types.h"

namespace arv::obs {
class TraceRecorder;
}

namespace arv::sched {

/// A CPU-time consumer attached to a cgroup (a container's thread
/// population). Grants arrive once per tick via consume().
class Schedulable {
 public:
  virtual ~Schedulable() = default;

  /// Number of threads that would run right now. Each runnable thread can
  /// absorb at most `dt` of CPU time per tick.
  virtual int runnable_threads() const = 0;

  /// Receive `grant` microseconds of CPU time for the tick ending at `now`.
  virtual void consume(SimTime now, SimDuration dt, CpuTime grant) = 0;
};

/// Cumulative per-cgroup counters (monotonic; consumers diff them).
struct EntityStats {
  CpuTime total_usage = 0;      ///< CPU time actually granted.
  CpuTime throttled_time = 0;   ///< demand lost to quota caps.
  CpuTime last_tick_grant = 0;  ///< grant in the most recent tick.
};

class FairScheduler : public sim::TickComponent {
 public:
  FairScheduler(cgroup::Tree& tree, int online_cpus);

  // --- topology -----------------------------------------------------------
  void attach(cgroup::CgroupId id, Schedulable* consumer);
  void detach(cgroup::CgroupId id, Schedulable* consumer);
  bool attached(cgroup::CgroupId id) const;

  // --- sim::TickComponent ---------------------------------------------------
  void tick(SimTime now, SimDuration dt) override;
  std::string name() const override { return "sched.cfs"; }

  // --- observables (what sys_namespace reads) ------------------------------
  int online_cpus() const { return online_cpus_; }

  /// Cumulative granted CPU time for a cgroup (0 if never attached).
  CpuTime total_usage(cgroup::CgroupId id) const;
  CpuTime throttled_time(cgroup::CgroupId id) const;
  EntityStats stats(cgroup::CgroupId id) const;

  /// Cumulative system-wide unused capacity — the paper's pslack source.
  CpuTime total_slack() const { return total_slack_; }

  /// Unused capacity during the most recent tick only.
  CpuTime last_tick_slack() const { return last_tick_slack_; }

  /// Runnable-thread count observed at the last tick (system-wide).
  int nr_running() const { return nr_running_; }

  /// True when no live cgroup has a runnable consumer: a tick right now
  /// would grant nothing and bank one full tick of slack. One leg of
  /// Host::quiescent(), which gates the cluster's idle-host skip.
  bool idle() const;

  /// Apply the cumulative effect of `dt / tick_length` consecutive idle
  /// ticks in one call — the catch-up half of the cluster's skipped-host
  /// fast path. Reproduces tick()'s idle behaviour exactly (slack accrual,
  /// loadavg decay sample-by-sample so floating point matches a real
  /// tick-by-tick run, grant zeroing); quota refills are skipped because
  /// refill_quota realigns to the period grid on the next active tick
  /// anyway. Asserts idle().
  void accrue_idle(SimDuration dt, SimDuration tick_length);

  /// Linux CFS period length: 24 ms with <= 8 runnable tasks, otherwise
  /// 3 ms * nr_running (§3.2). The sys_namespace update timer uses this.
  SimDuration scheduling_period() const;

  /// Smoothed system load in runnable tasks — the /proc/loadavg analogue
  /// OpenMP's dynamic mode reads. Timescale compressed for simulation.
  double loadavg() const { return loadavg_.value(); }
  void set_loadavg_decay(double decay);

  /// Seed the load average with prior history. The kernel's 15-minute
  /// window spans many benchmark repetitions, so experiments that model a
  /// "warm" machine (§5.2, Figure 10) start from the saturated value
  /// rather than zero.
  void seed_loadavg(double value) { loadavg_.prime(value); }

  /// Register the scheduler's host-wide series (slack, runnable count,
  /// loadavg) with the observability layer. Observation-only.
  void register_trace(obs::TraceRecorder& trace) const;

 private:
  struct Entity {
    std::vector<Schedulable*> consumers;
    CpuTime quota_remaining = kUnlimited;
    SimTime next_refill = 0;
    /// Sub-microsecond allocation remainder carried across ticks, so very
    /// low-weight cgroups still receive their (tiny) share eventually —
    /// CFS's minimum-granularity slices, fluid-model style.
    double fraction_carry = 0.0;
    EntityStats stats;
  };

  void refill_quota(cgroup::CgroupId id, Entity& entity, SimTime now);

  cgroup::Tree& tree_;
  int online_cpus_;
  std::map<cgroup::CgroupId, Entity> entities_;  // ordered => deterministic
  CpuTime total_slack_ = 0;
  CpuTime last_tick_slack_ = 0;
  int nr_running_ = 0;
  /// Long-memory EMA mirroring the kernel's 15-minute loadavg (compressed
  /// to a ~14 s time constant at 1 ms ticks). The slow window is what makes
  /// libgomp's `n_onln - loadavg` heuristic collapse under sustained load.
  Ema loadavg_{0.99993};
};

}  // namespace arv::sched
