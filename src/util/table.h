// ASCII table and CSV rendering for the experiment harness and bench
// binaries. Every figure-reproduction bench prints its series through this so
// the output format is uniform across experiments.
#pragma once

#include <string>
#include <vector>

namespace arv {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimal places.
  void add_row_values(const std::vector<double>& values, int precision = 2);

  std::size_t rows() const { return rows_.size(); }

  /// Render as an aligned ASCII table with a header separator.
  std::string to_ascii() const;

  /// Render as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format bytes with a binary-unit suffix ("1.50GiB").
std::string format_bytes(long long bytes);

/// Format microseconds as a human-readable duration ("1.25s", "3.0ms").
std::string format_duration_us(long long usec);

}  // namespace arv
