#include "src/util/str.h"

#include <cstdarg>
#include <cstdio>

#include "src/util/assert.h"

namespace arv {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  ARV_ASSERT_MSG(needed >= 0, "invalid format string");
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char ch) {
    return ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r';
  };
  while (!text.empty() && is_space(text.front())) {
    text.remove_prefix(1);
  }
  while (!text.empty() && is_space(text.back())) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace arv
