#include "src/util/cpuset.h"

#include <charconv>

#include "src/util/assert.h"

namespace arv {

CpuSet CpuSet::first_n(int n) {
  ARV_ASSERT(n >= 0 && n <= kMaxCpus);
  CpuSet s;
  for (int i = 0; i < n; ++i) {
    s.bits_.set(static_cast<std::size_t>(i));
  }
  return s;
}

namespace {

// Parses a decimal integer prefix of `text`, advancing it. Returns nullopt on
// no digits or overflow.
std::optional<int> parse_int(std::string_view& text) {
  int value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr == text.data()) {
    return std::nullopt;
  }
  text.remove_prefix(static_cast<std::size_t>(ptr - text.data()));
  return value;
}

}  // namespace

std::optional<CpuSet> CpuSet::parse(std::string_view text) {
  CpuSet result;
  // Trim surrounding whitespace/newline (sysfs files end in '\n').
  while (!text.empty() && (text.back() == '\n' || text.back() == ' ')) {
    text.remove_suffix(1);
  }
  while (!text.empty() && text.front() == ' ') {
    text.remove_prefix(1);
  }
  if (text.empty()) {
    return result;
  }
  while (true) {
    const auto lo = parse_int(text);
    if (!lo || *lo < 0 || *lo >= kMaxCpus) {
      return std::nullopt;
    }
    int hi = *lo;
    if (!text.empty() && text.front() == '-') {
      text.remove_prefix(1);
      const auto parsed_hi = parse_int(text);
      if (!parsed_hi || *parsed_hi < *lo || *parsed_hi >= kMaxCpus) {
        return std::nullopt;
      }
      hi = *parsed_hi;
    }
    for (int cpu = *lo; cpu <= hi; ++cpu) {
      result.set(cpu);
    }
    if (text.empty()) {
      return result;
    }
    if (text.front() != ',') {
      return std::nullopt;
    }
    text.remove_prefix(1);
  }
}

void CpuSet::set(int cpu) {
  ARV_ASSERT(cpu >= 0 && cpu < kMaxCpus);
  bits_.set(static_cast<std::size_t>(cpu));
}

void CpuSet::clear(int cpu) {
  ARV_ASSERT(cpu >= 0 && cpu < kMaxCpus);
  bits_.reset(static_cast<std::size_t>(cpu));
}

bool CpuSet::contains(int cpu) const {
  if (cpu < 0 || cpu >= kMaxCpus) {
    return false;
  }
  return bits_.test(static_cast<std::size_t>(cpu));
}

int CpuSet::span() const {
  for (int i = kMaxCpus - 1; i >= 0; --i) {
    if (bits_.test(static_cast<std::size_t>(i))) {
      return i + 1;
    }
  }
  return 0;
}

CpuSet CpuSet::operator&(const CpuSet& other) const {
  CpuSet s;
  s.bits_ = bits_ & other.bits_;
  return s;
}

CpuSet CpuSet::operator|(const CpuSet& other) const {
  CpuSet s;
  s.bits_ = bits_ | other.bits_;
  return s;
}

std::string CpuSet::to_string() const {
  std::string out;
  int run_start = -1;
  for (int cpu = 0; cpu <= kMaxCpus; ++cpu) {
    const bool present = cpu < kMaxCpus && contains(cpu);
    if (present && run_start < 0) {
      run_start = cpu;
    } else if (!present && run_start >= 0) {
      if (!out.empty()) {
        out += ',';
      }
      out += std::to_string(run_start);
      if (cpu - 1 > run_start) {
        out += '-';
        out += std::to_string(cpu - 1);
      }
      run_start = -1;
    }
  }
  return out;
}

}  // namespace arv
