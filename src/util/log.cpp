#include "src/util/log.h"

#include <cstdio>

namespace arv {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::log(LogLevel level, std::string_view subsystem, std::string_view message) {
  if (!enabled(level)) {
    return;
  }
  std::string line = strf("[%s] %.*s: %.*s\n", level_name(level),
                          static_cast<int>(subsystem.size()), subsystem.data(),
                          static_cast<int>(message.size()), message.data());
  const std::lock_guard<std::mutex> lock(emit_mu_);
  if (sink_ != nullptr) {
    sink_->append(line);
  } else {
    std::fputs(line.c_str(), stderr);
  }
}

}  // namespace arv
