#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/assert.h"

namespace arv {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = x;
    max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::reset() { *this = RunningStats{}; }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al.'s parallel combination of Welford accumulators.
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Ema::add(double sample) {
  if (!primed_) {
    value_ = sample;
    primed_ = true;
    return;
  }
  value_ = decay_ * value_ + (1.0 - decay_) * sample;
}

void Ema::reset() {
  value_ = 0.0;
  primed_ = false;
}

double percentile(std::vector<double> samples, double p) {
  ARV_ASSERT(p >= 0.0 && p <= 100.0);
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) {
    return samples.front();
  }
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace arv
