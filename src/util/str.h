// String formatting and small string helpers.
//
// libstdc++ 12 does not ship <format>, so arv uses a checked printf-style
// formatter. The gnu_printf attribute makes the compiler verify argument
// types against the format string at every call site.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace arv {

/// printf into a std::string.
[[gnu::format(gnu_printf, 1, 2)]] std::string strf(const char* fmt, ...);

/// Split on a delimiter; empty fields preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Strip leading/trailing whitespace (space, tab, newline).
std::string_view trim(std::string_view text);

}  // namespace arv
