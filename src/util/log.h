// Minimal leveled logger.
//
// The simulator is chatty at kTrace (per-tick scheduler decisions) which is
// priceless when debugging model behaviour but must cost nothing when off, so
// level checks happen before message formatting.
#pragma once

#include <mutex>
#include <string>
#include <string_view>

#include "src/util/str.h"

namespace arv {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  /// Process-wide logger used by all subsystems.
  static Logger& global();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Redirect output to an in-memory buffer (for tests); nullptr restores
  /// stderr output.
  void capture_to(std::string* sink) { sink_ = sink; }

  /// Thread-safe: host engines step in parallel under the cluster's worker
  /// pool, so concurrent emissions (e.g. two hosts OOM-killing in the same
  /// tick) serialize on an internal mutex. Level checks stay lock-free.
  void log(LogLevel level, std::string_view subsystem, std::string_view message);

 private:
  LogLevel level_ = LogLevel::kWarn;
  std::string* sink_ = nullptr;
  std::mutex emit_mu_;  ///< guards sink_ appends / stderr writes
};

/// Printf-style logging; the level check precedes formatting.
#define ARV_LOG(level, subsystem, ...)                                        \
  do {                                                                        \
    if (::arv::Logger::global().enabled(::arv::LogLevel::level)) {            \
      ::arv::Logger::global().log(::arv::LogLevel::level, subsystem,          \
                                  ::arv::strf(__VA_ARGS__));                  \
    }                                                                         \
  } while (false)

}  // namespace arv
