// Fundamental value types shared by every arv subsystem.
//
// All simulated time is integer microseconds (SimTime); all memory is integer
// bytes (Bytes). Integer arithmetic keeps the simulation deterministic and
// platform-independent — there is no floating-point time anywhere in the
// kernel-model layers.
#pragma once

#include <cstdint>
#include <limits>

namespace arv {

/// Simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time, also in microseconds.
using SimDuration = std::int64_t;

/// Memory quantities in bytes. Signed so that deltas are representable.
using Bytes = std::int64_t;

/// CPU time in microseconds. One simulated core contributes `dt`
/// microseconds of CpuTime per tick of length `dt`.
using CpuTime = std::int64_t;

namespace units {

inline constexpr SimDuration usec = 1;
inline constexpr SimDuration msec = 1000;
inline constexpr SimDuration sec = 1000 * 1000;
inline constexpr SimDuration minute = 60 * sec;

inline constexpr Bytes KiB = 1024;
inline constexpr Bytes MiB = 1024 * KiB;
inline constexpr Bytes GiB = 1024 * MiB;

/// Page size used by the memory model (matches x86-64 base pages).
inline constexpr Bytes page = 4 * KiB;

}  // namespace units

/// Sentinel for "no limit" knobs (cfs_quota_us = -1, memory.limit = max...).
inline constexpr std::int64_t kUnlimited = std::numeric_limits<std::int64_t>::max();

/// Round `b` up to the next whole page.
constexpr Bytes page_align_up(Bytes b) {
  return (b + units::page - 1) / units::page * units::page;
}

/// Integer ceiling division for non-negative operands.
constexpr std::int64_t ceil_div(std::int64_t num, std::int64_t den) {
  return (num + den - 1) / den;
}

}  // namespace arv
