#include "src/util/table.h"

#include <algorithm>

#include "src/util/str.h"

#include "src/util/assert.h"

namespace arv {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ARV_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ARV_ASSERT_MSG(cells.size() == headers_.size(), "row arity must match header");
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) {
    cells.push_back(strf("%.*f", precision, v));
  }
  add_row(std::move(cells));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += c == 0 ? "| " : " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (const std::size_t w : widths) {
    sep.append(w + 2, '-');
    sep += '|';
  }
  out += sep + "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        line += ',';
      }
      line += csv_escape(row[c]);
    }
    line += '\n';
    return line;
  };
  std::string out = render(headers_);
  for (const auto& row : rows_) {
    out += render(row);
  }
  return out;
}

std::string format_bytes(long long bytes) {
  const char* suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t idx = 0;
  while (value >= 1024.0 && idx + 1 < std::size(suffixes)) {
    value /= 1024.0;
    ++idx;
  }
  if (idx == 0) {
    return strf("%lldB", bytes);
  }
  return strf("%.2f%s", value, suffixes[idx]);
}

std::string format_duration_us(long long usec) {
  if (usec >= 1000 * 1000) {
    return strf("%.2fs", static_cast<double>(usec) / 1e6);
  }
  if (usec >= 1000) {
    return strf("%.2fms", static_cast<double>(usec) / 1e3);
  }
  return strf("%lldus", usec);
}

}  // namespace arv
