// LatencyHistogram — a bounded, mergeable, log-bucketed latency sketch.
//
// util::percentile copies the full sample vector on every call; at the
// workload engine's scale (millions of requests per simulated day) both the
// copy and the per-sample storage are unaffordable, and the old reservoir cap
// silently truncated exactly the tail the percentiles are supposed to
// measure. This histogram stores one counter per logarithmic bucket instead:
//
//   * HDR-style bucketing — values below 2^kSubBucketBits are exact; above,
//     each power-of-two octave splits into kSubBuckets linear sub-buckets, so
//     the relative width of any bucket is at most 1/kSubBuckets (6.25%).
//   * Bounded — at most kBucketCount counters whatever the value range
//     (full non-negative int64), so memory is O(1) per stream.
//   * Mergeable — merge() adds counters element-wise; it is exact,
//     commutative, and associative, so per-replica histograms can be folded
//     across migrations, crashes, and fleet-level aggregation in any order
//     (the same contract RunningStats::merge provides for moments).
//
// Everything is integer, so percentiles are bit-identical across platforms
// and thread counts — the histogram sits inside the byte-identical-trace
// contract. percentile() reports the bucket's upper bound (conservative:
// never below the true nearest-rank sample, at most 1/kSubBuckets above).
#pragma once

#include <array>
#include <cstdint>

namespace arv::util {

class LatencyHistogram {
 public:
  /// Sub-buckets per octave; the relative error bound is 1/kSubBuckets.
  static constexpr int kSubBucketBits = 4;
  static constexpr std::int64_t kSubBuckets = std::int64_t{1} << kSubBucketBits;
  /// Highest bucket index + 1 for 63-bit non-negative values (msb <= 62).
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kSubBuckets) * (62 - kSubBucketBits + 1) +
      static_cast<std::size_t>(kSubBuckets);

  /// Record one sample (negative values clamp to 0).
  void record(std::int64_t value);
  /// Record `n` samples of the same value (batch injection fast path).
  void record_n(std::int64_t value, std::uint64_t n);

  /// Fold `other` into this histogram. Exact: bucket counts, count, sum,
  /// min and max all combine losslessly.
  void merge(const LatencyHistogram& other);

  void reset();

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  double mean() const;
  /// Exact extrema of the recorded samples (0 when empty).
  std::int64_t min() const { return count_ > 0 ? min_ : 0; }
  std::int64_t max() const { return count_ > 0 ? max_ : 0; }

  /// Nearest-rank percentile, p in [0, 100]. Returns the upper bound of the
  /// bucket holding the rank-th sample: >= the true sample and within a
  /// factor (1 + 1/kSubBuckets) of it. 0 when empty.
  std::int64_t percentile(double p) const;

  /// Samples recorded with a value strictly greater than `threshold`,
  /// counting only buckets that lie entirely above it (an under-count by at
  /// most the one straddling bucket) — the SLO latency-violation probe.
  std::uint64_t count_above(std::int64_t threshold) const;

  // --- windowed (delta) views ------------------------------------------------
  // A cumulative histogram snapshotted at round boundaries gives an exact
  // per-round distribution: bucket counts only ever grow, so subtracting the
  // previous round's snapshot bucket-wise isolates the samples recorded in
  // between. `baseline` must be an earlier snapshot of the same (possibly
  // merged) stream — every bucket of `baseline` must be <= this one's.

  /// Samples recorded since `baseline` was captured.
  std::uint64_t count_since(const LatencyHistogram& baseline) const;
  /// Nearest-rank percentile over only the samples recorded since
  /// `baseline` — the overload controller's round-latency signal. 0 when no
  /// samples landed in between.
  std::int64_t percentile_since(const LatencyHistogram& baseline,
                                double p) const;

  // --- bucket geometry (exposed for the error-bound tests) -------------------
  static std::size_t bucket_of(std::int64_t value);
  /// Smallest / largest value mapping to bucket `index`.
  static std::int64_t bucket_lower(std::size_t index);
  static std::int64_t bucket_upper(std::size_t index);

 private:
  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace arv::util
