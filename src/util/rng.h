// Deterministic pseudo-random number generation.
//
// The simulation must be bit-for-bit reproducible across runs and platforms,
// so we ship our own small generator (xoshiro256** seeded via splitmix64)
// instead of relying on the standard library's unspecified distributions.
#pragma once

#include <cstdint>

#include "src/util/assert.h"

namespace arv {

/// xoshiro256** PRNG. Deterministic, fast, and good enough for workload
/// jitter; not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-seed the full 256-bit state from a single word via splitmix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool chance(double p);

  /// Multiplicative jitter: value * U[1-spread, 1+spread].
  double jitter(double value, double spread);

 private:
  std::uint64_t state_[4];
};

}  // namespace arv
