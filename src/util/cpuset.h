// CpuSet — a fixed-capacity CPU affinity mask with the kernel's list syntax.
//
// Mirrors Linux's cpumask plus the "0-3,8,10-11" textual format used by
// cpuset.cpus and /sys/devices/system/cpu/online.
#pragma once

#include <bitset>
#include <optional>
#include <string>
#include <string_view>

namespace arv {

class CpuSet {
 public:
  /// Maximum number of simulated CPUs per host.
  static constexpr int kMaxCpus = 256;

  CpuSet() = default;

  /// Mask with CPUs [0, n) set — the usual "first n CPUs online" shape.
  static CpuSet first_n(int n);

  /// Full mask of `total` CPUs.
  static CpuSet all(int total) { return first_n(total); }

  /// Parse the kernel list format ("0-3,8"). Empty string => empty mask.
  /// Returns nullopt on malformed input or CPUs >= kMaxCpus.
  static std::optional<CpuSet> parse(std::string_view text);

  void set(int cpu);
  void clear(int cpu);
  bool contains(int cpu) const;
  int count() const { return static_cast<int>(bits_.count()); }
  bool empty() const { return bits_.none(); }

  /// Highest set CPU index + 1, or 0 when empty.
  int span() const;

  CpuSet operator&(const CpuSet& other) const;
  CpuSet operator|(const CpuSet& other) const;
  bool operator==(const CpuSet& other) const = default;

  /// Render in kernel list format ("0-3,8"); empty mask renders as "".
  std::string to_string() const;

 private:
  std::bitset<kMaxCpus> bits_;
};

}  // namespace arv
