#include "src/util/rng.h"

namespace arv {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& word : state_) {
    word = splitmix64(seed);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ARV_ASSERT(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t raw = next_u64();
  while (raw >= limit) {
    raw = next_u64();
  }
  return lo + static_cast<std::int64_t>(raw % range);
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform() < p;
}

double Rng::jitter(double value, double spread) {
  return value * uniform(1.0 - spread, 1.0 + spread);
}

}  // namespace arv
