// Small statistics helpers used by the scheduler (load averages), the
// experiment harness (series summaries), and tests (distribution checks).
#pragma once

#include <cstddef>
#include <vector>

namespace arv {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void reset();

  /// Fold another accumulator into this one (parallel/partitioned streams,
  /// e.g. per-replica request stats aggregated cluster-wide).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance; 0 when n < 2.
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exponentially weighted moving average, the same shape the kernel uses for
/// /proc/loadavg: next = decay * prev + (1 - decay) * sample.
class Ema {
 public:
  /// `decay` in (0, 1); closer to 1 means a longer memory.
  explicit Ema(double decay) : decay_(decay) {}

  void add(double sample);
  double value() const { return value_; }
  bool primed() const { return primed_; }
  void reset();

  /// Force the current value (e.g. seeding a load average with history).
  void prime(double value) {
    value_ = value;
    primed_ = true;
  }

 private:
  double decay_;
  double value_ = 0.0;
  bool primed_ = false;
};

/// Percentile over a copy of the samples (p in [0, 100], nearest-rank).
double percentile(std::vector<double> samples, double p);

}  // namespace arv
