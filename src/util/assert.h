// Internal invariant checking.
//
// ARV_ASSERT is active in all build types: the simulation layers lean on it
// to document and enforce model invariants (conservation of CPU time, page
// accounting balance, ...). Violations indicate a bug in arv itself, never a
// user error, so the failure is loud and fatal.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace arv::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "arv: invariant violated: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace arv::detail

#define ARV_ASSERT(expr)                                                \
  (static_cast<bool>(expr)                                              \
       ? static_cast<void>(0)                                           \
       : ::arv::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define ARV_ASSERT_MSG(expr, msg)                                    \
  (static_cast<bool>(expr)                                           \
       ? static_cast<void>(0)                                        \
       : ::arv::detail::assert_fail(#expr, __FILE__, __LINE__, msg))
