#include "src/util/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/util/assert.h"

namespace arv::util {

std::size_t LatencyHistogram::bucket_of(std::int64_t value) {
  if (value < 0) {
    value = 0;
  }
  if (value < 2 * kSubBuckets) {
    return static_cast<std::size_t>(value);  // width-1 buckets: exact
  }
  const int msb =
      63 - std::countl_zero(static_cast<std::uint64_t>(value));
  const int shift = msb - kSubBucketBits;
  return static_cast<std::size_t>(
      (static_cast<std::int64_t>(msb - kSubBucketBits) * kSubBuckets) +
      (value >> shift));
}

std::int64_t LatencyHistogram::bucket_lower(std::size_t index) {
  ARV_ASSERT(index < kBucketCount);
  if (index < static_cast<std::size_t>(2 * kSubBuckets)) {
    return static_cast<std::int64_t>(index);
  }
  const std::int64_t block = static_cast<std::int64_t>(index) / kSubBuckets;
  const std::int64_t sub = static_cast<std::int64_t>(index) % kSubBuckets;
  const int shift = static_cast<int>(block) - 1;
  return (kSubBuckets + sub) << shift;
}

std::int64_t LatencyHistogram::bucket_upper(std::size_t index) {
  ARV_ASSERT(index < kBucketCount);
  if (index < static_cast<std::size_t>(2 * kSubBuckets)) {
    return static_cast<std::int64_t>(index);
  }
  const std::int64_t block = static_cast<std::int64_t>(index) / kSubBuckets;
  const int shift = static_cast<int>(block) - 1;
  return bucket_lower(index) + (std::int64_t{1} << shift) - 1;
}

void LatencyHistogram::record(std::int64_t value) { record_n(value, 1); }

void LatencyHistogram::record_n(std::int64_t value, std::uint64_t n) {
  if (n == 0) {
    return;
  }
  if (value < 0) {
    value = 0;
  }
  counts_[bucket_of(value)] += n;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_ += value * static_cast<std::int64_t>(n);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::reset() { *this = LatencyHistogram{}; }

double LatencyHistogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::int64_t LatencyHistogram::percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Nearest rank, 1-based: the same convention util::percentile uses.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      // The true sample lies inside this bucket; report its upper bound,
      // clamped to the exact max for the final bucket of the distribution.
      return std::min(bucket_upper(i), max_);
    }
  }
  return max_;
}

std::uint64_t LatencyHistogram::count_above(std::int64_t threshold) const {
  if (count_ == 0 || threshold >= max_) {
    return 0;
  }
  std::uint64_t above = 0;
  for (std::size_t i = bucket_of(threshold < 0 ? 0 : threshold);
       i < kBucketCount; ++i) {
    if (bucket_lower(i) > threshold) {
      above += counts_[i];
    }
  }
  return above;
}

std::uint64_t LatencyHistogram::count_since(
    const LatencyHistogram& baseline) const {
  ARV_ASSERT_MSG(count_ >= baseline.count_,
                 "baseline is not an earlier snapshot of this stream");
  return count_ - baseline.count_;
}

std::int64_t LatencyHistogram::percentile_since(
    const LatencyHistogram& baseline, double p) const {
  const std::uint64_t window = count_since(baseline);
  if (window == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(window))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    ARV_ASSERT(counts_[i] >= baseline.counts_[i]);
    seen += counts_[i] - baseline.counts_[i];
    if (seen >= rank) {
      // max_ bounds the whole stream, so it also bounds the window.
      return std::min(bucket_upper(i), max_);
    }
  }
  return max_;
}

}  // namespace arv::util
