// Experiment harness: declarative multi-container scenarios.
//
// Every figure in §5 is some arrangement of "N containers with these cgroup
// limits, each running this workload under this JVM/OpenMP configuration;
// run to completion; report exec/GC time". JvmScenario and OmpScenario build
// that arrangement on a fresh simulated Host and run it deterministically.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/autoscale.h"
#include "src/cluster/cluster.h"
#include "src/cluster/faults.h"
#include "src/cluster/overload.h"
#include "src/cluster/profile.h"
#include "src/cluster/rebalancer.h"
#include "src/cluster/recovery.h"
#include "src/cluster/router.h"
#include "src/cluster/scheduler.h"
#include "src/container/container.h"
#include "src/jvm/jvm.h"
#include "src/load/driver.h"
#include "src/load/slo.h"
#include "src/load/trace_spec.h"
#include "src/omp/omp_runtime.h"
#include "src/server/server_runtime.h"
#include "src/workloads/hogs.h"

namespace arv::harness {

struct JvmInstanceConfig {
  container::ContainerConfig container;
  jvm::JvmFlags flags;
  jvm::JavaWorkload workload;

  /// Select the same registered adaptation policy for CPU and memory.
  /// Returns *this for builder-style chaining.
  JvmInstanceConfig& use_policy(const std::string& policy) {
    container.view_params.cpu_policy = policy;
    container.view_params.mem_policy = policy;
    return *this;
  }
};

struct JvmRunResult {
  std::string container;
  std::string benchmark;
  jvm::JvmStats stats;
};

class JvmScenario {
 public:
  explicit JvmScenario(const container::HostConfig& host_config = {});

  /// Add one container+JVM pair; returns its index.
  std::size_t add(const JvmInstanceConfig& config);

  /// Add a background sysbench-style CPU hog in its own container.
  void add_cpu_hog(const container::ContainerConfig& config, int threads,
                   SimDuration cpu_budget);

  /// Add a background memory hog in its own container.
  void add_mem_hog(const container::ContainerConfig& config, Bytes footprint,
                   Bytes charge_per_sec);

  /// Run until every JVM reaches a terminal state (completed / OOM / killed)
  /// or `deadline` of simulated time passes. Hogs do not gate completion.
  void run(SimDuration deadline = 3600 * units::sec);

  /// Like run(), but returns false instead of aborting when the deadline
  /// expires — for experiments where a configuration is *expected* to hang
  /// (e.g. the thrashing vanilla JVMs of Figure 12(c)).
  bool try_run(SimDuration deadline);

  container::Host& host() { return *host_; }
  container::ContainerRuntime& runtime() { return *runtime_; }
  jvm::Jvm& jvm(std::size_t index) { return *jvms_.at(index); }
  std::size_t size() const { return jvms_.size(); }

  std::vector<JvmRunResult> results() const;

 private:
  std::unique_ptr<container::Host> host_;
  std::unique_ptr<container::ContainerRuntime> runtime_;
  std::vector<container::Container*> containers_;
  std::vector<std::unique_ptr<jvm::Jvm>> jvms_;
  std::vector<std::unique_ptr<workloads::CpuHog>> cpu_hogs_;
  std::vector<std::unique_ptr<workloads::MemHog>> mem_hogs_;
  int hog_counter_ = 0;
};

struct OmpInstanceConfig {
  container::ContainerConfig container;
  omp::TeamStrategy strategy = omp::TeamStrategy::kStatic;
  omp::OmpWorkload workload;
  int fixed_threads = 0;

  /// Select the same registered adaptation policy for CPU and memory.
  OmpInstanceConfig& use_policy(const std::string& policy) {
    container.view_params.cpu_policy = policy;
    container.view_params.mem_policy = policy;
    return *this;
  }
};

struct OmpRunResult {
  std::string container;
  std::string benchmark;
  omp::OmpStats stats;
};

class OmpScenario {
 public:
  explicit OmpScenario(const container::HostConfig& host_config = {});

  std::size_t add(const OmpInstanceConfig& config);
  void run(SimDuration deadline = 3600 * units::sec);

  container::Host& host() { return *host_; }
  omp::OmpProcess& process(std::size_t index) { return *processes_.at(index); }
  std::size_t size() const { return processes_.size(); }

  std::vector<OmpRunResult> results() const;

 private:
  std::unique_ptr<container::Host> host_;
  std::unique_ptr<container::ContainerRuntime> runtime_;
  std::vector<container::Container*> containers_;
  std::vector<std::unique_ptr<omp::OmpProcess>> processes_;
};

/// Declarative multi-host fleet: hosts + placed pods + optional router and
/// rebalancer, on one deterministic Cluster. The cluster-layer analogue of
/// JvmScenario — build the fleet, run it, read the aggregate stats.
class FleetScenario {
 public:
  explicit FleetScenario(cluster::ClusterConfig config = {});

  /// Add one host; its tick is forced to the cluster tick. Returns the index.
  int add_host(container::HostConfig host_config = {});

  /// Select the placement strategy the strategy-less place_* overloads use
  /// ("requests", "effective", "profile", or any registered name). The
  /// initial default is "effective".
  void use_placement(std::string strategy);

  /// Place one pod through the named strategy ("requests", "effective",
  /// "profile", or any registered name). Returns the pod id, or -1 when
  /// unschedulable.
  int place_pod(const std::string& strategy, container::K8sResources resources,
                cluster::WorkloadFactory factory = {});
  /// Same, through the use_placement() default.
  int place_pod(container::K8sResources resources,
                cluster::WorkloadFactory factory = {});

  /// Place a WorkerPoolServer replica pod and (when the router is enabled)
  /// enroll it in the rotation. Returns the pod id, or -1.
  int place_web_pod(const std::string& strategy,
                    container::K8sResources resources,
                    server::WebConfig web = {});
  /// Same, through the use_placement() default.
  int place_web_pod(container::K8sResources resources,
                    server::WebConfig web = {});

  /// Attach per-pod usage profiling (percentiles, burstiness, per-service
  /// correlation). The "profile" placement strategy and the rebalancer's
  /// profiled victim selection need this; enable before placing pods so the
  /// windows start filling immediately.
  void enable_profiles(cluster::ProfileConfig config = {});

  /// Route an open-loop stream at `arrivals_per_sec` across the web replicas
  /// placed so far and later. Call before placing web pods.
  void enable_router(double arrivals_per_sec);
  /// Same, with the full retry/breaker configuration.
  void enable_router(cluster::RouterConfig config);

  /// Activate corrective migration. Call after every add_host().
  void enable_rebalancer(cluster::RebalanceConfig config = {});

  /// Activate failure recovery: a FailureDetector that fails pods over off
  /// dead hosts plus a RestartManager that restarts crashed pods in place
  /// with CrashLoopBackOff. Call after every add_host().
  void enable_recovery(cluster::DetectorConfig detector = {},
                       cluster::RestartConfig restart = {});

  /// Replay a fault plan against the fleet. Call after the pods whose ids
  /// the plan names exist (fire-time lookups tolerate missing pods but a
  /// plan full of skips tests nothing).
  void enable_faults(cluster::FaultPlan plan);

  /// Scale one service's replica count from router-observed demand vs
  /// per-replica effective capacity. Requires enable_router() first; new
  /// replicas clone `replica_template` (cpu_mode included) and auto-enroll.
  /// Adopt seed replicas via hpa()->adopt(pod_id).
  void enable_hpa(cluster::PodSpec replica_template, server::WebConfig web,
                  cluster::HpaConfig config = {});

  // --- multi-tenant workload engine (src/load, DESIGN.md §14) ---------------
  /// Declare a tenant: one service with its own RequestRouter (so the
  /// per-request conservation identities, breakers, and HPA all stay
  /// per-tenant). The router's self-generated rate is forced to 0 — tenants
  /// are driven by the trace engine. Call before placing the tenant's pods.
  void add_tenant(const std::string& name,
                  cluster::RouterConfig router = {});

  /// Place a replica pod for `tenant` and enroll it in the tenant's router.
  /// Returns the pod id, or -1 when unschedulable.
  int place_tenant_web_pod(const std::string& tenant,
                           container::K8sResources resources,
                           server::WebConfig web = {},
                           cluster::PodSpec spec_template = {});

  /// Replay a compiled trace: every tenant named in it that was declared via
  /// add_tenant() is bound to its router. Call after add_tenant().
  void use_trace(load::CompiledTrace trace, load::DriverConfig config = {});

  /// Declare a tenant's SLO (creates the SloAccountant on first use). Call
  /// after use_trace() so the accountant reads post-injection rounds. With
  /// the admission controller enabled, the tenant's criticality class is
  /// derived from the declared availability objective.
  void declare_slo(const std::string& tenant, load::SloTarget target = {},
                   load::SloConfig config = {});

  /// Arm the overload control plane (see overload.h): the plain router and
  /// every tenant declared so far (and later) enroll under one
  /// AdmissionController — front-door shedding, the fleet-wide retry
  /// budget, adaptive per-replica concurrency limits, and brownout.
  void enable_admission(cluster::AdmissionConfig config = {});

  /// Per-tenant HPA over the tenant's router. The template's service (and
  /// name, if empty) default to the tenant name.
  void enable_tenant_hpa(const std::string& tenant,
                         cluster::PodSpec replica_template,
                         server::WebConfig web,
                         cluster::HpaConfig config = {});

  /// Rewrite every pod's cgroup limits live from observed usage percentiles.
  void enable_vpa(cluster::VpaConfig config = {});

  /// Size the fleet: uncordon parked hosts under load, cordon + drain idle
  /// ones. Park spare machines with cluster().cordon_host(i, true) first.
  void enable_cluster_autoscaler(cluster::CaConfig config = {});

  void run(SimDuration duration) { cluster_.run_for(duration); }

  cluster::Cluster& cluster() { return cluster_; }
  cluster::ClusterScheduler& scheduler() { return scheduler_; }
  cluster::RequestRouter* router() { return router_.get(); }
  cluster::RequestRouter* tenant_router(const std::string& tenant);
  cluster::HorizontalAutoscaler* tenant_hpa(const std::string& tenant);
  load::OpenLoopDriver* driver() { return driver_.get(); }
  load::SloAccountant* slo() { return slo_.get(); }
  cluster::AdmissionController* admission() { return admission_.get(); }
  cluster::Rebalancer* rebalancer() { return rebalancer_.get(); }
  cluster::FailureDetector* detector() { return detector_.get(); }
  cluster::RestartManager* restarts() { return restarts_.get(); }
  cluster::FaultInjector* injector() { return injector_.get(); }
  cluster::HorizontalAutoscaler* hpa() { return hpa_.get(); }
  cluster::VerticalRecommender* vpa() { return vpa_.get(); }
  cluster::ClusterAutoscaler* cluster_autoscaler() { return ca_.get(); }
  cluster::ProfileStore* profiles() { return profiles_.get(); }

 private:
  struct Tenant {
    std::string name;
    std::unique_ptr<cluster::RequestRouter> router;
    std::unique_ptr<cluster::HorizontalAutoscaler> hpa;
  };

  Tenant* find_tenant(const std::string& name);

  cluster::Cluster cluster_;
  cluster::ClusterScheduler scheduler_;
  std::string default_strategy_ = "effective";
  std::unique_ptr<cluster::ProfileStore> profiles_;
  std::unique_ptr<cluster::RequestRouter> router_;
  std::vector<Tenant> tenants_;  ///< declaration order = injection order
  std::unique_ptr<load::OpenLoopDriver> driver_;
  std::unique_ptr<load::SloAccountant> slo_;
  std::unique_ptr<cluster::AdmissionController> admission_;
  std::unique_ptr<cluster::Rebalancer> rebalancer_;
  std::unique_ptr<cluster::FailureDetector> detector_;
  std::unique_ptr<cluster::RestartManager> restarts_;
  std::unique_ptr<cluster::FaultInjector> injector_;
  std::unique_ptr<cluster::HorizontalAutoscaler> hpa_;
  std::unique_ptr<cluster::VerticalRecommender> vpa_;
  std::unique_ptr<cluster::ClusterAutoscaler> ca_;
};

/// Samples one JVM's heap geometry every `interval` — Figure 12's series.
class HeapTimeline {
 public:
  HeapTimeline(container::Host& host, const jvm::Jvm& jvm, SimDuration interval);

  const std::vector<jvm::HeapSample>& samples() const { return samples_; }

 private:
  void schedule_next();

  container::Host& host_;
  const jvm::Jvm& jvm_;
  SimDuration interval_;
  std::vector<jvm::HeapSample> samples_;
};

}  // namespace arv::harness
